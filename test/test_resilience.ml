(* Tests for the engine's resilience layer: deterministic fault
   injection, retry/backoff, cooperative cancellation, the write-ahead
   journal, and the hardened cache disk format. *)

module H = Helpers
module T = Tt_core.Tree
module E = Tt_engine.Executor
module J = Tt_engine.Job
module Fault = Tt_engine.Fault
module Retry = Tt_engine.Retry
module Journal = Tt_engine.Journal
module Cache = Tt_engine.Cache
module Cancel = Tt_util.Cancel

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* A small but non-trivial job mix over deterministic random trees. *)
let test_jobs () =
  let trees = H.tree_list ~seed:5 ~count:6 ~size_max:25 ~max_f:20 ~max_n:8 in
  List.concat_map
    (fun tree ->
      [ J.make tree (J.Min_memory J.Minmem);
        J.make tree (J.Min_memory J.Postorder);
        J.make tree (J.Min_io { policy = Tt_core.Minio.First_fit; budget = J.Fraction 0.5 })
      ])
    trees

(* A retry policy whose backoff is fast enough for tests. *)
let fast_retry ?(retries = 8) () =
  Retry.create ~retries ~base_delay_s:0.0005 ~max_delay_s:0.002 ()

(* ------------------------------------------------------------- retry *)

let test_retry_schedule_deterministic () =
  let p = Retry.create ~retries:5 ~seed:3 () in
  let a = Retry.delays p ~key:"job-a" and b = Retry.delays p ~key:"job-a" in
  Alcotest.(check (list (float 0.))) "same key, same schedule" a b;
  Alcotest.(check int) "length = retries" 5 (List.length a);
  let c = Retry.delays p ~key:"job-b" in
  Alcotest.(check bool) "different key decorrelates" true (a <> c);
  List.iter
    (fun d ->
      Alcotest.(check bool) "within jitter bounds" true
        (d >= 0. && d <= p.Retry.max_delay_s))
    a;
  (* the un-jittered ramp doubles until the cap; jitter is +/-50%, so
     delay k+2 must exceed delay k's floor *)
  Alcotest.(check (list (float 0.))) "no retries, no schedule" []
    (Retry.delays Retry.none ~key:"job-a")

let test_retry_classification () =
  Alcotest.(check bool) "timeout is terminal" true
    (Retry.classify (J.Timed_out 1.0) = Retry.Terminal);
  Alcotest.(check bool) "invalid argument is terminal" true
    (Retry.classify (J.Crashed "Invalid_argument(\"x\")") = Retry.Terminal);
  Alcotest.(check bool) "other crashes retryable" true
    (Retry.classify (J.Crashed "Stack overflow") = Retry.Retryable);
  Alcotest.(check bool) "injected faults retryable" true
    (Retry.classify_exn (Fault.Injected "x") = Retry.Retryable);
  Alcotest.(check bool) "cancellation terminal" true
    (Retry.classify_exn Cancel.Cancelled = Retry.Terminal);
  Alcotest.(check bool) "Invalid_argument exn terminal" true
    (Retry.classify_exn (Invalid_argument "x") = Retry.Terminal)

(* ------------------------------------------------------------- fault *)

let test_fault_roll_deterministic () =
  let f =
    match Fault.of_string "crash=0.3,io=0.2,delay=0.2,seed=7" with
    | Ok f -> f
    | Error e -> Alcotest.failf "of_string: %s" e
  in
  for attempt = 1 to 5 do
    let a = Fault.roll f ~key:"some-job" ~attempt in
    let b = Fault.roll f ~key:"some-job" ~attempt in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d reproducible" attempt)
      true (a = b)
  done;
  (* attempts re-roll: with these rates some attempt must differ from
     attempt 1 across a spread of keys *)
  let differs =
    List.exists
      (fun k ->
        let key = "job-" ^ string_of_int k in
        Fault.roll f ~key ~attempt:1 <> Fault.roll f ~key ~attempt:2)
      (List.init 32 Fun.id)
  in
  Alcotest.(check bool) "retries re-roll the decision" true differs;
  let quiet = Fault.create ~seed:7 () in
  Alcotest.(check bool) "all-zero rates never fire" true
    (List.for_all
       (fun k -> Fault.roll quiet ~key:(string_of_int k) ~attempt:1 = None)
       (List.init 50 Fun.id));
  let certain = Fault.create ~crash:1.0 ~seed:7 () in
  Alcotest.(check bool) "rate 1 always fires" true
    (List.for_all
       (fun k -> Fault.roll certain ~key:(string_of_int k) ~attempt:1 = Some Fault.Crash)
       (List.init 50 Fun.id));
  Alcotest.(check bool) "disk decision reproducible" true
    (Fault.disk_fails f ~op:"read" ~key:"k" = Fault.disk_fails f ~op:"read" ~key:"k")

let test_fault_spec_errors () =
  let bad s =
    match Fault.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "crash=2";
  bad "crash=0.6,io=0.6";
  bad "crash";
  bad "warp=0.1";
  bad "seed=x";
  match Fault.of_string "crash=0.25,seed=9" with
  | Error e -> Alcotest.failf "rejected valid spec: %s" e
  | Ok f -> (
      match Fault.of_string (Fault.to_string f) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "to_string not parseable: %s" e)

(* ------------------------------------------------------- cancellation *)

let test_cancellation_honored () =
  let tree = List.hd (H.tree_list ~seed:11 ~count:1 ~size_max:40 ~max_f:25 ~max_n:9) in
  let cancelled = Cancel.create () in
  Cancel.cancel cancelled;
  let raises name f =
    match f () with
    | _ -> Alcotest.failf "%s ignored a cancelled token" name
    | exception Cancel.Cancelled -> ()
  in
  (* Minmem.run drives Explore.explore, so this covers both *)
  raises "Minmem.run" (fun () -> Tt_core.Minmem.run ~cancel:cancelled tree);
  raises "Minio_search.run" (fun () ->
      let rng = Tt_util.Rng.create 1 in
      Tt_core.Minio_search.run ~cancel:cancelled ~rng tree
        ~memory:(T.max_mem_req tree));
  raises "Brute_force.min_memory" (fun () ->
      Tt_core.Brute_force.min_memory ~cancel:cancelled tree);
  raises "Minio_exact.given_order" (fun () ->
      let _, order = Tt_core.Minmem.run tree in
      Tt_core.Minio_exact.given_order ~cancel:cancelled tree
        ~memory:(T.max_mem_req tree) ~order);
  (* an already-expired deadline cancels on the first poll *)
  let expired = Cancel.create ~deadline_after:0. () in
  raises "deadline token" (fun () -> Tt_core.Minmem.run ~cancel:expired tree)

let test_executor_timeout_is_terminal () =
  let jobs = [ List.hd (test_jobs ()) ] in
  let exec = E.create ~timeout:0. ~retry:(fast_retry ()) () in
  let reports, summary = E.run_batch exec jobs in
  (match reports.(0).E.result with
  | Error (J.Timed_out _) -> ()
  | r -> Alcotest.failf "expected a timeout, got %s" (J.result_to_string r));
  Alcotest.(check int) "timeouts are not retried" 1 reports.(0).E.attempts;
  Alcotest.(check int) "no retries counted" 0 summary.E.retries

(* ---------------------------------------------------- chaos invariant *)

let digest_of ?faults ?(retry = Retry.none) ?journal ?completed ~domains jobs =
  let exec = E.create ~domains ?faults ~retry ?journal ?completed () in
  let reports, summary = E.run_batch exec jobs in
  (E.results_digest reports, summary)

let test_chaos_digest_equality () =
  let jobs = test_jobs () in
  let clean, s0 = digest_of ~domains:2 jobs in
  Alcotest.(check int) "clean run has no errors" 0 s0.E.errors;
  let faults = Fault.create ~crash:0.3 ~io_error:0.1 ~delay:0.1 ~seed:7 () in
  let chaotic, s1 = digest_of ~faults ~retry:(fast_retry ()) ~domains:2 jobs in
  Alcotest.(check int) "chaos run retries to zero errors" 0 s1.E.errors;
  Alcotest.(check bool) "faults actually fired" true (s1.E.retries > 0);
  Alcotest.(check string) "digest identical to fault-free run" clean chaotic;
  (* and the chaos run itself replays bit-identically *)
  let replay, s2 = digest_of ~faults ~retry:(fast_retry ()) ~domains:4 jobs in
  Alcotest.(check string) "chaos replay digest" chaotic replay;
  Alcotest.(check int) "chaos replay retry count" s1.E.retries s2.E.retries

let test_retries_exhausted_deterministically () =
  let jobs = [ List.hd (test_jobs ()) ] in
  let faults = Fault.create ~crash:1.0 ~seed:1 () in
  let run () =
    let exec = E.create ~faults ~retry:(fast_retry ~retries:2 ()) () in
    let reports, _ = E.run_batch exec jobs in
    reports.(0)
  in
  let a = run () and b = run () in
  (match a.E.result with
  | Error (J.Crashed msg) ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions the injection" msg)
        true (H.contains msg "Injected")
  | r -> Alcotest.failf "expected a crash, got %s" (J.result_to_string r));
  Alcotest.(check int) "all attempts used" 3 a.E.attempts;
  Alcotest.(check bool) "identical across runs" true
    (J.equal_result a.E.result b.E.result)

(* ----------------------------------------------------------- journal *)

let test_result_json_round_trip () =
  let results : J.result list =
    [ Ok (J.Memory { peak = 42; order = [| 2; 0; 1 |] });
      Ok (J.Io { in_core = 10; memory = 7; io = Some 3 });
      Ok (J.Io { in_core = 10; memory = 2; io = None });
      Ok (J.Sched { memory = 9; makespan = Some 5; peak = Some 8 });
      Ok (J.Sched { memory = 9; makespan = None; peak = None });
      Error (J.Timed_out 1.25);
      Error (J.Crashed "Stack overflow")
    ]
  in
  List.iter
    (fun r ->
      let json = J.result_to_json r in
      let text = Tt_engine.Telemetry.Json.to_string json in
      match Tt_engine.Telemetry.Json.of_string text with
      | Error e -> Alcotest.failf "reparse %S: %s" text e
      | Ok json' -> (
          match J.result_of_json json' with
          | Error e -> Alcotest.failf "decode %S: %s" text e
          | Ok r' ->
              Alcotest.(check bool)
                (Printf.sprintf "round trip %s" (J.result_to_string r))
                true
                (J.equal_result r r'
                && (* equal_result ignores the timeout duration; check it *)
                match (r, r') with
                | Error (J.Timed_out a), Error (J.Timed_out b) -> a = b
                | _ -> true)))
    results

let test_journal_crash_resume_round_trip () =
  let jobs = test_jobs () in
  let path = Filename.temp_file "tt_journal" ".jnl" in
  let corpus = "corpus-digest-1" in
  (* first run journals everything *)
  let jnl = Journal.create path ~corpus in
  let clean, _ = digest_of ~journal:jnl ~domains:2 jobs in
  Journal.close jnl;
  (* simulate a crash mid-write: keep the header and half the entries,
     then a torn final line *)
  let lines = String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all) in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  let keep = 1 + ((List.length lines - 1) / 2) in
  let kept = List.filteri (fun i _ -> i < keep) lines in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Printf.fprintf oc "%s\n" l) kept;
      output_string oc "{\"id\":\"torn");
  (* resume: recorded jobs are not recomputed, the rest are, and the
     batch digest is unchanged *)
  (match Journal.load_or_create path ~corpus with
  | Error e -> Alcotest.failf "load_or_create: %s" e
  | Ok (jnl, completed) ->
      Alcotest.(check int) "recovered up to the torn line" (keep - 1)
        (Hashtbl.length completed);
      let resumed_digest, summary =
        digest_of ~journal:jnl ~completed ~domains:2 jobs
      in
      Journal.close jnl;
      Alcotest.(check int) "resumed jobs" (keep - 1) summary.E.resumed;
      Alcotest.(check string) "resume preserves the digest" clean resumed_digest);
  (* a second resume finds every job recorded *)
  (match Journal.load_or_create path ~corpus with
  | Error e -> Alcotest.failf "second load: %s" e
  | Ok (jnl, completed) ->
      Journal.close jnl;
      Alcotest.(check int) "journal now complete" (List.length jobs)
        (Hashtbl.length completed));
  Sys.remove path

let test_journal_rejects_wrong_corpus () =
  let path = Filename.temp_file "tt_journal" ".jnl" in
  let jnl = Journal.create path ~corpus:"digest-a" in
  Journal.record jnl ~id:"x" ~label:"x" (Error (J.Crashed "boom"));
  Journal.close jnl;
  (match Journal.load_or_create path ~corpus:"digest-b" with
  | Ok _ -> Alcotest.fail "accepted a journal for a different corpus"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%S explains the mismatch" e)
        true (H.contains e "corpus"));
  (* not a journal at all *)
  Out_channel.with_open_text path (fun oc -> output_string oc "junk\n");
  (match Journal.load_or_create path ~corpus:"digest-a" with
  | Ok _ -> Alcotest.fail "accepted junk"
  | Error _ -> ());
  Sys.remove path

(* ------------------------------------------------------ cache hardening *)

let cache_file dir key = Filename.concat dir key

let test_cache_corruption_is_a_miss () =
  let dir = temp_dir "tt_cache" in
  let computes = ref 0 in
  let value () = incr computes; "payload" in
  let c1 : string Cache.t = Cache.create ~persist:dir () in
  let v, hit = Cache.find_or_compute c1 ~key:"k1" value in
  Alcotest.(check string) "computed" "payload" v;
  Alcotest.(check bool) "first is a miss" false hit;
  (* a fresh cache over the same directory hits from disk *)
  let c2 : string Cache.t = Cache.create ~persist:dir () in
  let v2, hit2 = Cache.find_or_compute c2 ~key:"k1" value in
  Alcotest.(check bool) "disk hit" true (hit2 && v2 = "payload");
  (* flip one payload byte: the digest check must reject the entry *)
  let path = cache_file dir "k1" in
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string bytes in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x01));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  let c3 : string Cache.t = Cache.create ~persist:dir () in
  Alcotest.(check (option string)) "bit flip is a miss" None (Cache.find c3 "k1");
  Alcotest.(check int) "corruption counted" 1 (Cache.corrupt c3);
  (* the recompute path overwrites the corrupt entry *)
  let v3, hit3 = Cache.find_or_compute c3 ~key:"k1" value in
  Alcotest.(check bool) "recomputed" true ((not hit3) && v3 = "payload");
  let c4 : string Cache.t = Cache.create ~persist:dir () in
  Alcotest.(check (option string)) "healed on disk" (Some "payload")
    (Cache.find c4 "k1");
  (* foreign and truncated files are rejected the same way *)
  Out_channel.with_open_bin (cache_file dir "k2") (fun oc ->
      output_string oc "not a cache entry");
  Out_channel.with_open_bin (cache_file dir "k3") (fun oc ->
      output_string oc "TTCACHE1");
  Alcotest.(check (option string)) "foreign file" None (Cache.find c4 "k2");
  Alcotest.(check (option string)) "truncated file" None (Cache.find c4 "k3");
  Alcotest.(check int) "both counted" 2 (Cache.corrupt c4);
  rm_rf dir

let test_cache_disk_faults () =
  let dir = temp_dir "tt_cache_faults" in
  let faults = Fault.create ~io_error:1.0 ~seed:1 () in
  let c : string Cache.t = Cache.create ~persist:dir ~faults () in
  let _ = Cache.find_or_compute c ~key:"k1" (fun () -> "v") in
  Alcotest.(check bool) "write suppressed" false
    (Sys.file_exists (cache_file dir "k1"));
  (* value still served from memory *)
  let _, hit = Cache.find_or_compute c ~key:"k1" (fun () -> "v") in
  Alcotest.(check bool) "memory level unaffected" true hit;
  (* a healthy writer, then a reader whose reads always fail *)
  let healthy : string Cache.t = Cache.create ~persist:dir () in
  let _ = Cache.find_or_compute healthy ~key:"k2" (fun () -> "v2") in
  let broken : string Cache.t = Cache.create ~persist:dir ~faults () in
  Alcotest.(check (option string)) "read fault is a miss" None
    (Cache.find broken "k2");
  rm_rf dir

let () =
  H.run "resilience"
    [ ( "retry",
        [ H.case "deterministic backoff schedule" test_retry_schedule_deterministic;
          H.case "classification" test_retry_classification
        ] );
      ( "faults",
        [ H.case "deterministic rolls" test_fault_roll_deterministic;
          H.case "spec parsing" test_fault_spec_errors
        ] );
      ( "cancellation",
        [ H.case "honored by every long solver" test_cancellation_honored;
          H.case "executor timeout is terminal" test_executor_timeout_is_terminal
        ] );
      ( "chaos",
        [ H.case "digest equals fault-free run" test_chaos_digest_equality;
          H.case "exhausted retries are deterministic"
            test_retries_exhausted_deterministically
        ] );
      ( "journal",
        [ H.case "result json round trip" test_result_json_round_trip;
          H.case "write, crash, resume" test_journal_crash_resume_round_trip;
          H.case "corpus mismatch refused" test_journal_rejects_wrong_corpus
        ] );
      ( "cache",
        [ H.case "corruption is a deterministic miss" test_cache_corruption_is_a_miss;
          H.case "injected disk faults" test_cache_disk_faults
        ] )
    ]
