(* Shared test utilities: deterministic tree generators, QCheck
   arbitraries and alcotest glue. *)

module T = Tt_core.Tree

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let case name f = Alcotest.test_case name `Quick f

(* --- deterministic random trees ----------------------------------------- *)

let random_tree ~rng ~size_max ~max_f ~max_n =
  let size = Tt_util.Rng.int_incl rng 1 size_max in
  T.random ~rng ~size ~max_f ~max_n

let tree_list ~seed ~count ~size_max ~max_f ~max_n =
  let rng = Tt_util.Rng.create seed in
  List.init count (fun _ -> random_tree ~rng ~size_max ~max_f ~max_n)

(* --- QCheck arbitraries -------------------------------------------------- *)

(* A tree encoded by a seed + size bound, printable and shrink-free (the
   seed form keeps counterexamples reproducible). *)
let arb_tree ?(size_max = 12) ?(max_f = 12) ?(max_n = 6) () =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        random_tree ~rng ~size_max ~max_f ~max_n)
      (QCheck.Gen.int_bound 1_000_000)
  in
  QCheck.make ~print:T.to_string gen

(* A tree together with a valid traversal of it. *)
let arb_tree_with_order ?(size_max = 12) ?(max_f = 12) ?(max_n = 6) () =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        let tree = random_tree ~rng ~size_max ~max_f ~max_n in
        let order = Tt_core.Traversal.random_order ~rng tree in
        (tree, order))
      (QCheck.Gen.int_bound 1_000_000)
  in
  let print (t, o) =
    Printf.sprintf "%s | order %s" (T.to_string t)
      (String.concat " " (Array.to_list (Array.map string_of_int o)))
  in
  QCheck.make ~print gen

let arb_int_list ?(len = 30) ?(max_v = 100) () =
  QCheck.(list_of_size (Gen.int_bound len) (int_bound max_v))

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  m = 0 || go 0


(* --- Prometheus exposition conformance ----------------------------------- *)

(* Shared format checker for every [to_prometheus] in the tree: every
   sample belongs to a declared metric family, exactly one TYPE line
   per family, no duplicate series, every value a number. Guards
   against the classic scrape breakers (duplicate names, samples
   without TYPE) as counters get added over time. *)
let check_prometheus_conformance ?(min_samples = 10) text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let types = Hashtbl.create 16 in
  let series_seen = Hashtbl.create 64 in
  let sample_count = ref 0 in
  List.iter
    (fun line ->
      if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match
          String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
        with
        | [ "#"; "TYPE"; name; kind ] ->
            Alcotest.(check bool)
              ("exactly one TYPE for " ^ name)
              false (Hashtbl.mem types name);
            Alcotest.(check bool)
              ("known kind for " ^ name)
              true
              (List.mem kind [ "counter"; "gauge"; "summary"; "histogram" ]);
            Hashtbl.add types name kind
        | _ -> Alcotest.failf "malformed TYPE line: %s" line
      end
      else if line.[0] = '#' then ()  (* HELP / comments: free-form *)
      else begin
        incr sample_count;
        let sp =
          match String.rindex_opt line ' ' with
          | Some i -> i
          | None -> Alcotest.failf "malformed sample line: %s" line
        in
        let series = String.sub line 0 sp in
        let value = String.sub line (sp + 1) (String.length line - sp - 1) in
        Alcotest.(check bool)
          ("numeric value in " ^ line)
          true
          (match float_of_string_opt value with Some _ -> true | None -> false);
        Alcotest.(check bool)
          ("no duplicate series " ^ series)
          false (Hashtbl.mem series_seen series);
        Hashtbl.add series_seen series ();
        let name =
          match String.index_opt series '{' with
          | Some i -> String.sub series 0 i
          | None -> series
        in
        (* A summary's _sum/_count samples belong to the base family. *)
        let base =
          if Hashtbl.mem types name then name
          else
            let strip suffix =
              if String.ends_with ~suffix name then
                Some
                  (String.sub name 0 (String.length name - String.length suffix))
              else None
            in
            match (strip "_sum", strip "_count") with
            | Some b, _ when Hashtbl.mem types b -> b
            | _, Some b when Hashtbl.mem types b -> b
            | _ -> name
        in
        Alcotest.(check bool) ("sample " ^ name ^ " has a TYPE") true
          (Hashtbl.mem types base)
      end)
    lines;
  Alcotest.(check bool) "exposes a useful number of samples" true
    (!sample_count >= min_samples)

(* --- common assertions --------------------------------------------------- *)

let check_valid_traversal tree order =
  Alcotest.(check bool) "valid traversal" true (Tt_core.Traversal.is_valid_order tree order)

let run name suites = Alcotest.run name suites
