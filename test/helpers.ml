(* Shared test utilities: deterministic tree generators, QCheck
   arbitraries and alcotest glue. *)

module T = Tt_core.Tree

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let case name f = Alcotest.test_case name `Quick f

(* --- deterministic random trees ----------------------------------------- *)

let random_tree ~rng ~size_max ~max_f ~max_n =
  let size = Tt_util.Rng.int_incl rng 1 size_max in
  T.random ~rng ~size ~max_f ~max_n

let tree_list ~seed ~count ~size_max ~max_f ~max_n =
  let rng = Tt_util.Rng.create seed in
  List.init count (fun _ -> random_tree ~rng ~size_max ~max_f ~max_n)

(* --- QCheck arbitraries -------------------------------------------------- *)

(* A tree encoded by a seed + size bound, printable and shrink-free (the
   seed form keeps counterexamples reproducible). *)
let arb_tree ?(size_max = 12) ?(max_f = 12) ?(max_n = 6) () =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        random_tree ~rng ~size_max ~max_f ~max_n)
      (QCheck.Gen.int_bound 1_000_000)
  in
  QCheck.make ~print:T.to_string gen

(* A tree together with a valid traversal of it. *)
let arb_tree_with_order ?(size_max = 12) ?(max_f = 12) ?(max_n = 6) () =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        let tree = random_tree ~rng ~size_max ~max_f ~max_n in
        let order = Tt_core.Traversal.random_order ~rng tree in
        (tree, order))
      (QCheck.Gen.int_bound 1_000_000)
  in
  let print (t, o) =
    Printf.sprintf "%s | order %s" (T.to_string t)
      (String.concat " " (Array.to_list (Array.map string_of_int o)))
  in
  QCheck.make ~print gen

let arb_int_list ?(len = 30) ?(max_v = 100) () =
  QCheck.(list_of_size (Gen.int_bound len) (int_bound max_v))

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  m = 0 || go 0

(* --- common assertions --------------------------------------------------- *)

let check_valid_traversal tree order =
  Alcotest.(check bool) "valid traversal" true (Tt_core.Traversal.is_valid_order tree order)

let run name suites = Alcotest.run name suites
