(* The huge-tree tier: flat trees must be bit-identical to the [Tree.t]
   kernels they transcribe, the certified Minmem_approx bounds must
   really sandwich the exact optimum (gap 0 wherever the exact answer is
   affordable), the segment truncations must preserve the canonical
   invariants, and the streaming generators must be deterministic across
   runs and domain counts. *)

module T = Tt_core.Tree
module Ft = Tt_core.Flat_tree
module Ma = Tt_core.Minmem_approx
module Seg = Tt_core.Segments
module Traversal = Tt_core.Traversal
module Liu = Tt_core.Liu_exact
module Huge = Tt_workloads.Huge
module H = Helpers

(* the parity corpus of test_perf_parity: every family the paper's
   experiments exercise, with index-hashed weights *)
let hash_weight i m = 1 + (i * 2654435761) land max_int mod m

let reweight ~max_f t =
  T.map_weights ~f:(fun i -> hash_weight i max_f) ~n:(fun i -> hash_weight (i + 1) 7 - 1) t

let family_instances =
  let module I = Tt_core.Instances in
  [ ("chain-stair", reweight ~max_f:401 (I.chain ~length:120 ~f:1 ~n:0));
    ("binary-rand", reweight ~max_f:401 (I.complete_binary ~levels:6 ~f:1 ~n:0));
    ("star", I.star ~branches:60 ~f_root:3 ~f_leaf:7 ~n:5);
    ("harpoon", I.harpoon_nested ~branches:2 ~levels:5 ~m:64 ~eps:3);
    ("caterpillar", reweight ~max_f:97 (I.caterpillar ~length:40 ~leaves_per_node:3 ~f:7 ~n:3));
    ("random", T.random ~rng:(Tt_util.Rng.create 97) ~size:150 ~max_f:50 ~max_n:9)
  ]

(* --- conversion ---------------------------------------------------------- *)

let test_roundtrip () =
  List.iter
    (fun (name, tree) ->
      let ft = Ft.of_tree tree in
      Alcotest.(check bool) (name ^ " roundtrip") true (T.equal tree (Ft.to_tree ft));
      Alcotest.(check (array int)) (name ^ " depth") (T.depth tree) (Ft.depth ft);
      Alcotest.(check (array int))
        (name ^ " bottom-up")
        (T.bottom_up_order tree) (Ft.bottom_up_order ft);
      Alcotest.(check int) (name ^ " height") (T.height tree) (Ft.height ft);
      Alcotest.(check int) (name ^ " max-mem-req") (T.max_mem_req tree) (Ft.max_mem_req ft);
      Alcotest.(check int) (name ^ " total-f") (T.total_f tree) (Ft.total_f ft);
      for i = 0 to T.size tree - 1 do
        Alcotest.(check int)
          (Printf.sprintf "%s mem-req %d" name i)
          (T.mem_req tree i) (Ft.mem_req ft i);
        Alcotest.(check bool)
          (Printf.sprintf "%s leaf %d" name i)
          (T.is_leaf tree i) (Ft.is_leaf ft i)
      done)
    family_instances

let test_of_arrays_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  let ok = Alcotest.(check bool) in
  ok "empty" true (raises (fun () -> Ft.of_arrays ~parent:[||] ~f:[||] ~n:[||]));
  ok "length mismatch" true
    (raises (fun () -> Ft.of_arrays ~parent:[| -1 |] ~f:[| 1; 2 |] ~n:[| 0 |]));
  ok "negative f" true
    (raises (fun () -> Ft.of_arrays ~parent:[| -1 |] ~f:[| -3 |] ~n:[| 0 |]));
  ok "two roots" true
    (raises (fun () -> Ft.of_arrays ~parent:[| -1; -1 |] ~f:[| 1; 1 |] ~n:[| 0; 0 |]));
  ok "no root" true
    (raises (fun () -> Ft.of_arrays ~parent:[| 1; 0 |] ~f:[| 1; 1 |] ~n:[| 0; 0 |]));
  ok "out of range" true
    (raises (fun () -> Ft.of_arrays ~parent:[| -1; 7 |] ~f:[| 1; 1 |] ~n:[| 0; 0 |]));
  ok "self-loop" true
    (raises (fun () -> Ft.of_arrays ~parent:[| -1; 1 |] ~f:[| 1; 1 |] ~n:[| 0; 0 |]));
  ok "cycle" true
    (raises (fun () ->
         Ft.of_arrays ~parent:[| -1; 2; 3; 1 |] ~f:[| 1; 1; 1; 1 |] ~n:[| 0; 0; 0; 0 |]));
  ok "valid chain" true
    (match Ft.of_arrays ~parent:[| -1; 0; 1 |] ~f:[| 0; 2; 3 |] ~n:[| 1; 0; 2 |] with
    | ft -> Ft.size ft = 3 && ft.Ft.root = 0
    | exception _ -> false)

(* --- kernel parity -------------------------------------------------------- *)

let test_kernel_parity_families () =
  List.iter
    (fun (name, tree) ->
      let ft = Ft.of_tree tree in
      let em, eo = Tt_core.Postorder_opt.run tree in
      let gm, go = Ft.postorder_run ft in
      Alcotest.(check int) (name ^ " postorder mem") em gm;
      Alcotest.(check (array int)) (name ^ " postorder order") eo go;
      let lm, lo = Liu.run tree in
      let fm, fo = Ft.liu_run ft in
      Alcotest.(check int) (name ^ " liu mem") lm fm;
      Alcotest.(check (array int)) (name ^ " liu order") lo fo)
    family_instances

let prop_kernel_parity_random =
  H.qcheck ~count:300 "flat kernels bit-identical to Tree.t kernels"
    (H.arb_tree ~size_max:60 ())
    (fun tree ->
      let ft = Ft.of_tree tree in
      Tt_core.Postorder_opt.run tree = Ft.postorder_run ft
      && Liu.run tree = Ft.liu_run ft
      && T.bottom_up_order tree = Ft.bottom_up_order ft
      && T.equal tree (Ft.to_tree ft))

let prop_peak_parity =
  H.qcheck ~count:200 "flat peak simulation matches Traversal.peak"
    (H.arb_tree_with_order ~size_max:40 ())
    (fun (tree, order) ->
      Ft.peak (Ft.of_tree tree) order = Traversal.peak tree order)

(* --- segment truncation --------------------------------------------------- *)

(* Liu subtree profiles of random trees are a rich source of canonical
   profiles; truncating them at aggressive caps must preserve the
   canonical invariants, the final valley (the subtree's output size),
   the node coverage, and bracket the original peak from the right
   sides. *)
let prop_truncate_invariants =
  H.qcheck ~count:300 "truncations stay canonical and bracket the peak"
    (QCheck.pair (H.arb_tree ~size_max:40 ()) QCheck.(2 -- 5))
    (fun (tree, cap) ->
      let profiles = Liu.profiles tree in
      Array.for_all
        (fun prof ->
          let tl = Seg.truncate_lower prof ~cap in
          let tu = Seg.truncate_upper prof ~cap in
          Seg.check_canonical tl && Seg.check_canonical tu
          && Seg.length tl <= cap
          && Seg.length tu <= cap
          && Seg.peak tl <= Seg.peak prof
          && Seg.peak tu = Seg.peak prof
          && Seg.final_valley tl = Seg.final_valley prof
          && Seg.final_valley tu = Seg.final_valley prof
          && Seg.nodes tu = Seg.nodes prof
          && List.sort compare (Seg.nodes tl) = List.sort compare (Seg.nodes prof))
        profiles)

let test_truncate_cap_errors () =
  let prof = Seg.singleton ~hill:5 ~valley:2 ~node:0 in
  Alcotest.check_raises "lower cap<2" (Invalid_argument "Segments.truncate: cap < 2")
    (fun () -> ignore (Seg.truncate_lower prof ~cap:1));
  Alcotest.check_raises "upper cap<2" (Invalid_argument "Segments.truncate: cap < 2")
    (fun () -> ignore (Seg.truncate_upper prof ~cap:1))

(* --- certified bounds ----------------------------------------------------- *)

let test_bounds_exact_small () =
  List.iter
    (fun (name, tree) ->
      let b = Ma.run_tree tree in
      let opt = Liu.min_memory tree in
      Alcotest.(check int) (name ^ " lower") opt b.Ma.lower;
      Alcotest.(check int) (name ^ " upper") opt b.Ma.upper;
      Alcotest.(check bool) (name ^ " exact") true b.Ma.exact;
      Alcotest.(check (float 0.)) (name ^ " gap") 0. (Ma.gap b);
      H.check_valid_traversal tree b.Ma.order;
      Alcotest.(check int) (name ^ " order peak") opt (Traversal.peak tree b.Ma.order))
    family_instances

let prop_bounds_exact_small =
  H.qcheck ~count:200 "gap 0 wherever the exact answer is affordable"
    (H.arb_tree ~size_max:50 ())
    (fun tree ->
      let b = Ma.run_tree tree in
      let opt = Liu.min_memory tree in
      b.Ma.lower = opt && b.Ma.upper = opt && b.Ma.exact && Ma.gap b = 0.)

(* force the approximate path with brutal caps: the sandwich must hold
   no matter how hard the profiles are truncated *)
let prop_bounds_sandwich =
  H.qcheck ~count:300 "lower <= Minmem.min_memory <= upper under truncation"
    (QCheck.pair (H.arb_tree ~size_max:45 ()) QCheck.(2 -- 6))
    (fun (tree, cap) ->
      let opt = Liu.min_memory tree in
      let b =
        Ma.run_tree ~exact_threshold:0 ~seg_cap:cap ~tol:0. ~max_rounds:2 tree
      in
      b.Ma.lower <= opt && opt <= b.Ma.upper
      && Traversal.is_valid_order tree b.Ma.order
      && Traversal.peak tree b.Ma.order = b.Ma.upper
      && ((not b.Ma.exact) || b.Ma.lower = b.Ma.upper))

(* with a cap no profile reaches, the relaxation is vacuous: the numeric
   lower-bound pass must reproduce Liu's exact optimum bit for bit —
   this pins the number-only transcription of the segment calculus *)
let prop_lb_exact_when_uncapped =
  H.qcheck ~count:300 "uncapped numeric lower bound equals Liu exactly"
    (H.arb_tree ~size_max:60 ())
    (fun tree ->
      let b =
        Ma.run_tree ~exact_threshold:0 ~seg_cap:1_000_000 ~tol:0. ~max_rounds:0 tree
      in
      b.Ma.lower = Liu.min_memory tree)

(* --- generator determinism ------------------------------------------------ *)

let generators =
  [ ("caterpillar", fun ~domains ~p ~seed -> Huge.caterpillar ~domains ~p ~seed ());
    ("binary", fun ~domains ~p ~seed -> Huge.binary ~domains ~p ~seed ());
    ("random", fun ~domains ~p ~seed -> Huge.random_attach ~domains ~p ~seed ())
  ]

let test_generator_determinism () =
  List.iter
    (fun (name, build) ->
      (* same seed, two runs: identical digests *)
      let a = Ft.digest (build ~domains:1 ~p:200_000 ~seed:11) in
      let b = Ft.digest (build ~domains:1 ~p:200_000 ~seed:11) in
      Alcotest.(check string) (name ^ " rerun") a b;
      (* 1 vs N domains: identical instance *)
      let par = Ft.digest (build ~domains:4 ~p:200_000 ~seed:11) in
      Alcotest.(check string) (name ^ " 1-vs-4 domains") a par;
      (* a different seed changes the instance *)
      let other = Ft.digest (build ~domains:1 ~p:200_000 ~seed:12) in
      Alcotest.(check bool) (name ^ " seed sensitivity") true (a <> other))
    generators

let test_generator_shapes () =
  List.iter
    (fun (name, build) ->
      let ft = build ~domains:2 ~p:50_000 ~seed:3 in
      Alcotest.(check int) (name ^ " size") 50_000 (Ft.size ft);
      (* of_arrays validated the structure; cross-check via Tree.make *)
      let tree = Ft.to_tree ft in
      Alcotest.(check bool) (name ^ " roundtrip") true (T.equal tree (Ft.to_tree (Ft.of_tree tree))))
    generators

let test_digest_ints () =
  let a = Ft.digest_ints (Array.init 100_000 (fun i -> i * 7)) in
  let b = Ft.digest_ints (Array.init 100_000 (fun i -> i * 7)) in
  Alcotest.(check string) "stable" a b;
  let c = Ft.digest_ints (Array.init 100_000 (fun i -> i * 7 + (if i = 99_999 then 1 else 0))) in
  Alcotest.(check bool) "last-entry sensitivity" true (a <> c);
  (* chunked chaining must not collide length-prefix boundaries *)
  Alcotest.(check bool) "length sensitivity" true
    (Ft.digest_ints [| 1; 2 |] <> Ft.digest_ints [| 1; 2; 0 |])

(* --- stack safety at depth ------------------------------------------------ *)

(* p = 5M deep caterpillar (~1.7M levels): every flat path — validation
   climb, BFS, counting sort, postorder emission, bounded Liu, peak
   simulation — must run without growing the OCaml stack. This is the
   smoke test the recursive implementations could not survive. *)
let test_deep_caterpillar_5m () =
  let p = 5_000_000 in
  let ft = Huge.caterpillar ~p ~seed:5 () in
  Alcotest.(check int) "size" p (Ft.size ft);
  Alcotest.(check bool) "deep" true (Ft.height ft > 1_000_000);
  let b = Ma.run ft in
  Alcotest.(check bool) "bounds ordered" true (b.Ma.lower <= b.Ma.upper);
  Alcotest.(check bool) "certified gap within pinned threshold" true
    (Ma.gap b <= 0.05);
  Alcotest.(check int) "upper is the order's simulated peak" b.Ma.upper
    (Ft.peak ft b.Ma.order)

(* Deep chains through the two paths the audit rewrote iteratively:
   Tree.pp's preorder walk and Amalgamation's head resolution (a fully
   merged chain makes its compression path O(n) long). Both previously
   recursed once per level and overflowed well below this size. *)
let test_deep_pp () =
  let p = 2_000_000 in
  let parent = Array.init p (fun i -> i - 1) in
  let t = T.make ~parent ~f:(Array.make p 1) ~n:(Array.make p 0) in
  let sink = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  T.pp sink t;
  Format.pp_print_flush sink ()

let test_deep_amalgamation () =
  let n = 2_000_000 in
  (* etree convention: parents have larger indices; strictly decreasing
     col counts towards the root make every merge "perfect", collapsing
     the whole chain into one group *)
  let parent = Array.init n (fun i -> if i = n - 1 then -1 else i + 1) in
  let col_counts = Array.init n (fun i -> n - i) in
  let a = Tt_etree.Amalgamation.run ~parent ~col_counts ~limit:max_int in
  Alcotest.(check int) "one group" 1 (Array.length a.Tt_etree.Amalgamation.groups);
  Alcotest.(check int) "group_of covers every vertex" 0
    (Array.fold_left max 0 a.Tt_etree.Amalgamation.group_of)

let () =
  H.run "flat"
    [ ( "conversion",
        [ H.case "family roundtrips" test_roundtrip;
          H.case "of_arrays validation" test_of_arrays_validation
        ] );
      ( "parity",
        [ H.case "family instances" test_kernel_parity_families;
          prop_kernel_parity_random;
          prop_peak_parity
        ] );
      ( "truncation",
        [ prop_truncate_invariants; H.case "cap errors" test_truncate_cap_errors ] );
      ( "bounds",
        [ H.case "exact on families" test_bounds_exact_small;
          prop_bounds_exact_small;
          prop_bounds_sandwich;
          prop_lb_exact_when_uncapped
        ] );
      ( "generators",
        [ H.case "determinism across runs and domains" test_generator_determinism;
          H.case "shapes validate" test_generator_shapes;
          H.case "digest_ints" test_digest_ints
        ] );
      ( "deep",
        [ H.case "caterpillar p=5M end to end" test_deep_caterpillar_5m;
          H.case "pp on a 2M chain" test_deep_pp;
          H.case "amalgamation head on a 2M chain" test_deep_amalgamation
        ] )
    ]
