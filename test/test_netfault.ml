(* Tests for the netfault chaos proxy: spec parsing, decision
   determinism, transparent passthrough, and the headline invariant —
   a seeded load run through an injecting proxy converges to the same
   order-insensitive value digest as a clean run. *)

module N = Tt_server.Netfault
module Srv = Tt_server.Server
module L = Tt_server.Loadgen
module E = Tt_engine.Executor
module H = Helpers

(* ------------------------------------------------------------- specs *)

let test_spec_round_trip () =
  let f =
    N.create_faults ~drop:0.05 ~truncate:0.03 ~stall:0.1 ~split:0.3
      ~max_stall_s:0.02 ~window:128 ~seed:9 ()
  in
  (match N.faults_of_string (N.faults_to_string f) with
  | Ok g -> Alcotest.(check bool) "round trips" true (g = f)
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  (match N.faults_of_string "seed=3" with
  | Ok g ->
      Alcotest.(check bool) "defaults are transparent" true
        (g = { N.none with N.seed = 3 })
  | Error e -> Alcotest.failf "minimal spec: %s" e);
  (* [truncate] is a synonym for [trunc]. *)
  match (N.faults_of_string "trunc=0.2,seed=1", N.faults_of_string "truncate=0.2,seed=1") with
  | Ok a, Ok b -> Alcotest.(check bool) "trunc synonym" true (a = b)
  | _ -> Alcotest.fail "synonym spec rejected"

let test_spec_errors () =
  let expect_error spec =
    match N.faults_of_string spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad spec %S" spec
  in
  expect_error "warp=0.5";
  expect_error "drop=1.5";
  expect_error "drop=-0.1";
  expect_error "drop=0.6,stall=0.6";  (* rates sum past 1 *)
  expect_error "window=0";
  expect_error "drop=x";
  expect_error "drop";
  Alcotest.check_raises "create_faults validates too"
    (Invalid_argument "Netfault.create_faults: rates sum to more than 1")
    (fun () -> ignore (N.create_faults ~drop:0.7 ~split:0.7 ~seed:0 ()))

(* ---------------------------------------------------------- decisions *)

let test_decision_determinism () =
  let f =
    N.create_faults ~drop:0.2 ~truncate:0.2 ~stall:0.2 ~split:0.2 ~seed:42 ()
  in
  (* Pure: the same coordinates always yield the same action. *)
  for conn = 0 to 5 do
    List.iter
      (fun dir ->
        for window = 0 to 20 do
          let a = N.decision f ~conn ~dir ~window in
          let b = N.decision f ~conn ~dir ~window in
          Alcotest.(check string) "deterministic" (N.describe a) (N.describe b)
        done)
      [ `Up; `Down ]
  done;
  (* With rates this high, 252 decisions must inject something, and
     distinct coordinates must not all agree (the seed really keys per
     coordinate, not globally). *)
  let actions =
    List.concat_map
      (fun conn ->
        List.init 21 (fun window ->
            N.decision f ~conn ~dir:`Up ~window))
      [ 0; 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "some faults injected" true
    (List.exists (fun a -> a <> N.Forward) actions);
  Alcotest.(check bool) "some windows forward" true
    (List.exists (fun a -> a = N.Forward) actions);
  (* All-zero rates are a transparent wire. *)
  for window = 0 to 50 do
    Alcotest.(check bool) "none is transparent" true
      (N.decision N.none ~conn:0 ~dir:`Up ~window = N.Forward)
  done

(* ------------------------------------------------------- passthrough *)

let entries =
  [| "gen grid2d size=10 :: minmem; liu";
     "gen banded size=40 :: liu; postorder";
     "gen tridiagonal size=48 :: minmem"
  |]

let expected_value_digest () =
  let jobs =
    match
      Tt_engine.Manifest.parse (String.concat "\n" (Array.to_list entries))
    with
    | Ok jobs -> jobs
    | Error e -> Alcotest.failf "manifest: %s" e
  in
  let reports, _ = E.run_batch (E.create ~domains:1 ()) jobs in
  E.value_digest reports

let with_server ?config f =
  let t = Srv.create ?config () in
  Srv.start t;
  Fun.protect ~finally:(fun () -> Srv.shutdown t) (fun () -> f t)

(* A zero-rate proxy in front of a live server is invisible: every
   request succeeds and the digest matches the direct batch engine. *)
let test_transparent_passthrough () =
  let expected = expected_value_digest () in
  with_server (fun srv ->
      let p = N.create ~upstream_port:(Srv.port srv) () in
      N.start p;
      Fun.protect
        ~finally:(fun () -> N.shutdown p)
        (fun () ->
          let s =
            L.run
              { L.default_config with
                L.port = N.port p;
                connections = 1;
                requests = 30;
                seed = 2;
                entries
              }
          in
          Alcotest.(check int) "all ok" 30 s.L.ok;
          Alcotest.(check bool) "digest parity" true
            (s.L.value_digest = Some expected);
          let st = N.stats p in
          Alcotest.(check int) "one connection proxied" 1 st.N.connections;
          Alcotest.(check int) "nothing injected" 0 (N.injected st);
          Alcotest.(check bool) "bytes actually flowed" true
            (st.N.forwarded_bytes > 0)))

(* The headline invariant: a seeded load run through an injecting
   proxy, with retries and idempotency keys, converges to the same
   value digest as a clean run — and the proxy really did inject. *)
let test_chaos_digest_parity () =
  let expected = expected_value_digest () in
  with_server (fun srv ->
      let clean =
        L.run
          { L.default_config with
            L.port = Srv.port srv;
            connections = 2;
            requests = 60;
            seed = 7;
            entries;
            tag = "nfclean"
          }
      in
      Alcotest.(check bool) "clean run matches batch engine" true
        (clean.L.value_digest = Some expected);
      let faults =
        N.create_faults ~drop:0.04 ~truncate:0.03 ~stall:0.08 ~split:0.25
          ~max_stall_s:0.01 ~seed:13 ()
      in
      let chaos =
        L.run
          { L.default_config with
            L.port = Srv.port srv;
            connections = 2;
            requests = 60;
            seed = 7;
            entries;
            tag = "nfchaos";
            chaos = Some faults;
            retry =
              Tt_engine.Retry.create ~retries:8 ~base_delay_s:0.005
                ~max_delay_s:0.05 ~seed:5 ()
          }
      in
      Alcotest.(check int) "every request eventually succeeded" 60 chaos.L.ok;
      Alcotest.(check bool) "no lost replies" true (chaos.L.errors = []);
      Alcotest.(check bool) "same value digest as the clean run" true
        (chaos.L.value_digest = clean.L.value_digest);
      (match chaos.L.proxy with
      | None -> Alcotest.fail "chaos run must report proxy stats"
      | Some st ->
          Alcotest.(check bool) "faults were actually injected" true
            (N.injected st >= 1));
      (* The server never saw a half-open mess it couldn't clean up. *)
      let m = Tt_server.Metrics.snapshot (Srv.metrics srv) in
      Alcotest.(check int) "no connections leaked" 0 m.connections_active)

(* ------------------------------------------------------------- gates *)

let wait_until ?(timeout_s = 5.) pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let no_leaked_connections srv =
  wait_until (fun () ->
      (Tt_server.Metrics.snapshot (Srv.metrics srv)).Tt_server.Metrics
        .connections_active = 0)

(* Severing is symmetric by construction — one gate cuts both
   directions at once. While severed every request dies as a transport
   failure; after healing, the same workload through the same proxy
   converges to the clean digest and nothing is left half-open. *)
let test_gate_sever_heal () =
  let expected = expected_value_digest () in
  with_server (fun srv ->
      let p = N.create ~upstream_port:(Srv.port srv) () in
      N.start p;
      Fun.protect
        ~finally:(fun () -> N.shutdown p)
        (fun () ->
          Alcotest.(check bool) "starts open" true (N.gate p = N.Gate_open);
          N.set_gate p N.Gate_severed;
          let failed =
            try
              Tt_server.Client.with_connection ~port:(N.port p)
                ~read_timeout_s:1.0 (fun c ->
                  match Tt_server.Client.solve c entries.(0) with
                  | Ok _ -> false
                  | Error _ -> true)
            with Unix.Unix_error _ | Failure _ -> true
          in
          Alcotest.(check bool) "request during partition fails" true failed;
          N.set_gate p N.Gate_open;
          let s =
            L.run
              { L.default_config with
                L.port = N.port p;
                connections = 2;
                requests = 40;
                seed = 3;
                entries;
                tag = "nfheal";
                retry =
                  Tt_engine.Retry.create ~retries:6 ~base_delay_s:0.01
                    ~max_delay_s:0.05 ~seed:4 ()
              }
          in
          Alcotest.(check int) "all ok after heal" 40 s.L.ok;
          Alcotest.(check bool) "digest parity restored" true
            (s.L.value_digest = Some expected);
          let st = N.stats p in
          Alcotest.(check bool) "severed connections counted" true
            (st.N.severed >= 1);
          Alcotest.(check bool) "no leaked connections" true
            (no_leaked_connections srv)))

(* A stalled gate parks bytes instead of cutting: the client's read
   times out while the gate is closed, and traffic flows again the
   moment it reopens. *)
let test_gate_stall_resume () =
  let expected = expected_value_digest () in
  with_server (fun srv ->
      let p = N.create ~upstream_port:(Srv.port srv) () in
      N.start p;
      Fun.protect
        ~finally:(fun () -> N.shutdown p)
        (fun () ->
          N.set_gate p N.Gate_stalled;
          let timed_out =
            try
              Tt_server.Client.with_connection ~port:(N.port p)
                ~read_timeout_s:0.3 (fun c ->
                  match Tt_server.Client.solve c entries.(0) with
                  | Ok _ -> false
                  | Error _ -> true)
            with Unix.Unix_error _ | Failure _ -> true
          in
          Alcotest.(check bool) "read times out while stalled" true timed_out;
          N.set_gate p N.Gate_open;
          let s =
            L.run
              { L.default_config with
                L.port = N.port p;
                connections = 1;
                requests = 10;
                seed = 5;
                entries;
                tag = "nfstall"
              }
          in
          Alcotest.(check int) "all ok after reopen" 10 s.L.ok;
          Alcotest.(check bool) "digest parity after reopen" true
            (s.L.value_digest = Some expected);
          Alcotest.(check bool) "no leaked connections" true
            (no_leaked_connections srv)))

let () =
  H.run "netfault"
    [ ( "spec",
        [ H.case "round trip" test_spec_round_trip;
          H.case "errors" test_spec_errors
        ] );
      ("decision", [ H.case "determinism" test_decision_determinism ]);
      ( "proxy",
        [ H.case "transparent passthrough" test_transparent_passthrough;
          H.case "chaos digest parity" test_chaos_digest_parity
        ] );
      ( "gate",
        [ H.case "sever and heal" test_gate_sever_heal;
          H.case "stall and resume" test_gate_stall_resume
        ] )
    ]
