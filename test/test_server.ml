(* Tests for the tt_server network layer: protocol codec round trips,
   the bounded admission queue, metrics, and end-to-end behaviour of a
   live server — digest parity with the batch engine, concurrent load,
   overload rejection, deadlines and graceful drain. *)

module P = Tt_server.Protocol
module Adm = Tt_server.Admission
module M = Tt_server.Metrics
module Srv = Tt_server.Server
module C = Tt_server.Client
module L = Tt_server.Loadgen
module E = Tt_engine.Executor
module J = Tt_engine.Job
module H = Helpers

let all_error_codes =
  [ P.Bad_frame; P.Bad_request; P.Unsupported_version; P.Overloaded;
    P.Deadline_exceeded; P.Shutting_down; P.Internal ]

(* ----------------------------------------------------------- protocol *)

let test_error_code_strings () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        ("round trip " ^ P.error_code_to_string c)
        true
        (P.error_code_of_string (P.error_code_to_string c) = Some c))
    all_error_codes;
  Alcotest.(check bool) "unknown code" true (P.error_code_of_string "nope" = None)

let test_request_round_trip () =
  List.iter
    (fun op ->
      let req = { P.id = "r-1"; op } in
      match P.decode_request (P.encode_request req) with
      | Ok got -> Alcotest.(check bool) "request round trips" true (got = req)
      | Error (_, _, msg) -> Alcotest.failf "decode failed: %s" msg)
    [ P.Ping; P.Stats; P.Shutdown;
      P.Solve { entry = "gen grid2d size=8 :: minmem"; timeout_s = None };
      P.Solve { entry = "tree \"x :: y\""; timeout_s = Some 2.5 }
    ]

let test_request_decode_errors () =
  let expect line id code =
    match P.decode_request line with
    | Ok _ -> Alcotest.failf "accepted %S" line
    | Error (got_id, got_code, _) ->
        Alcotest.(check bool) ("id of " ^ line) true (got_id = id);
        Alcotest.(check string) ("code of " ^ line)
          (P.error_code_to_string code)
          (P.error_code_to_string got_code)
  in
  expect "not json" None P.Bad_frame;
  expect "[1,2]" None P.Bad_frame;
  expect {|{"id":"x","op":"ping"}|} (Some "x") P.Unsupported_version;
  expect {|{"v":2,"id":"x","op":"ping"}|} (Some "x") P.Unsupported_version;
  expect {|{"v":1,"id":"x","op":"warp"}|} (Some "x") P.Bad_request;
  expect {|{"v":1,"op":"ping"}|} None P.Bad_request;
  expect {|{"v":1,"id":"x","op":"solve"}|} (Some "x") P.Bad_request

let sample_reports =
  [ { P.job_id = "aaaa"; label = "m"; spec = "min-memory:minmem";
      result = Ok (J.Memory { peak = 42; order = [| 2; 0; 1 |] });
      cache_hit = false; wall_s = 0.25 };
    { P.job_id = "bbbb"; label = "io"; spec = "min-io";
      result = Ok (J.Io { in_core = 10; memory = 8; io = None });
      cache_hit = true; wall_s = 0.5 };
    { P.job_id = "cccc"; label = "s"; spec = "schedule";
      result = Ok (J.Sched { memory = 9; makespan = Some 7; peak = Some 9 });
      cache_hit = false; wall_s = 1.5 };
    { P.job_id = "dddd"; label = "t"; spec = "min-memory:liu";
      result = Error (J.Timed_out 0.125); cache_hit = false; wall_s = 0.125 };
    { P.job_id = "eeee"; label = "c"; spec = "min-memory:liu";
      result = Error (J.Crashed "Failure(\"boom\")"); cache_hit = false;
      wall_s = 0.75 }
  ]

let check_response_round_trip resp =
  match P.decode_response (P.encode_response resp) with
  | Error e -> Alcotest.failf "decode_response: %s" e
  | Ok got ->
      Alcotest.(check bool) "req_id round trips" true (got.P.req_id = resp.P.req_id);
      (match (got.P.body, resp.P.body) with
      | P.Results a, P.Results b ->
          Alcotest.(check int) "report count" (List.length b) (List.length a);
          List.iter2
            (fun (x : P.job_report) (y : P.job_report) ->
              Alcotest.(check string) "job_id" y.P.job_id x.P.job_id;
              Alcotest.(check bool) "result" true
                (J.equal_result x.P.result y.P.result);
              Alcotest.(check bool) "cache_hit" y.P.cache_hit x.P.cache_hit)
            a b
      | b1, b2 -> Alcotest.(check bool) "body round trips" true (b1 = b2))

let test_response_round_trip () =
  check_response_round_trip { P.req_id = Some "r9"; body = P.Results sample_reports };
  check_response_round_trip { P.req_id = Some "r0"; body = P.Pong };
  check_response_round_trip { P.req_id = Some "r1"; body = P.Draining };
  check_response_round_trip
    { P.req_id = Some "r2";
      body =
        P.Stats_reply
          (Tt_engine.Telemetry.Json.Obj
             [ ("server", Tt_engine.Telemetry.Json.Int 1) ])
    };
  List.iter
    (fun code ->
      check_response_round_trip
        { P.req_id = None; body = P.Refused { code; msg = "why \"quoted\"" } };
      check_response_round_trip
        { P.req_id = Some "e"; body = P.Refused { code; msg = "" } })
    all_error_codes

let test_digests () =
  (* The sequence digest is order-sensitive, the value digest is not and
     ignores duplicates — the properties the load generator relies on. *)
  let rev = List.rev sample_reports in
  Alcotest.(check bool) "sequence digest is order-sensitive" false
    (P.sequence_digest sample_reports = P.sequence_digest rev);
  Alcotest.(check string) "value digest is order-insensitive"
    (P.value_digest sample_reports) (P.value_digest rev);
  Alcotest.(check string) "value digest ignores duplicates"
    (P.value_digest sample_reports)
    (P.value_digest (sample_reports @ sample_reports));
  (* Wire round trip preserves both digests: the [result] field is the
     lossless Job.result_to_json rendering. *)
  let resp = { P.req_id = Some "d"; body = P.Results sample_reports } in
  match P.decode_response (P.encode_response resp) with
  | Ok { P.body = P.Results got; _ } ->
      Alcotest.(check string) "digest survives the wire"
        (P.sequence_digest sample_reports)
        (P.sequence_digest got)
  | _ -> Alcotest.fail "round trip failed"

(* ---------------------------------------------------------- admission *)

let test_admission_fifo () =
  let q = Adm.create ~capacity:8 in
  List.iter (fun i -> Alcotest.(check bool) "push" true (Adm.try_push q i)) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Adm.length q);
  Alcotest.(check bool) "fifo" true
    (Adm.pop q = Some 1 && Adm.pop q = Some 2 && Adm.pop q = Some 3)

let test_admission_bounds () =
  let q = Adm.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Adm.try_push q 1);
  Alcotest.(check bool) "push 2" true (Adm.try_push q 2);
  Alcotest.(check bool) "push 3 rejected" false (Adm.try_push q 3);
  Alcotest.(check bool) "pop frees a slot" true (Adm.pop q = Some 1);
  Alcotest.(check bool) "push 4" true (Adm.try_push q 4);
  Alcotest.(check bool) "wraps around" true
    (Adm.pop q = Some 2 && Adm.pop q = Some 4);
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Admission.create: capacity < 1") (fun () ->
      ignore (Adm.create ~capacity:0))

let test_admission_close () =
  let q = Adm.create ~capacity:4 in
  ignore (Adm.try_push q 1);
  ignore (Adm.try_push q 2);
  Adm.close q;
  Alcotest.(check bool) "closed refuses pushes" false (Adm.try_push q 3);
  Alcotest.(check bool) "queued items still delivered" true
    (Adm.pop q = Some 1 && Adm.pop q = Some 2);
  Alcotest.(check bool) "then None" true (Adm.pop q = None);
  (* A consumer blocked in pop is released by close. *)
  let q2 : int Adm.t = Adm.create ~capacity:1 in
  let d = Domain.spawn (fun () -> Adm.pop q2) in
  Unix.sleepf 0.02;
  Adm.close q2;
  Alcotest.(check bool) "blocked pop released with None" true (Domain.join d = None)

(* ------------------------------------------------------------ metrics *)

let test_metrics_counters () =
  let m = M.create () in
  M.connection_opened m;
  M.connection_opened m;
  M.connection_closed m;
  M.request m `Solve;
  M.request m `Solve;
  M.request m `Ping;
  M.request m `Stats;
  M.response_ok m;
  M.response_error m ~code:"overloaded";
  M.response_error m ~code:"overloaded";
  M.job m ~cache_hit:true ~error:false ~wall_s:0.5;
  M.job m ~cache_hit:false ~error:true ~wall_s:0.25;
  let s = M.snapshot m in
  Alcotest.(check int) "opened" 2 s.M.connections_opened;
  Alcotest.(check int) "active" 1 s.M.connections_active;
  Alcotest.(check int) "solve" 2 s.M.requests_solve;
  Alcotest.(check int) "ping" 1 s.M.requests_ping;
  Alcotest.(check int) "stats" 1 s.M.requests_stats;
  Alcotest.(check int) "ok" 1 s.M.responses_ok;
  Alcotest.(check bool) "errors by code" true
    (s.M.errors = [ ("overloaded", 2) ]);
  Alcotest.(check int) "jobs" 2 s.M.jobs;
  Alcotest.(check int) "job errors" 1 s.M.job_errors;
  Alcotest.(check int) "cache hits" 1 s.M.job_cache_hits;
  Alcotest.(check (float 1e-9)) "job wall" 0.75 s.M.job_wall_s

let test_metrics_latency () =
  let m = M.create ~latency_window:64 () in
  for i = 1 to 100 do
    M.observe_solve m ~latency_s:(float_of_int i /. 100.)
  done;
  let s = M.snapshot m in
  Alcotest.(check int) "lifetime count" 100 s.M.latency.M.count;
  Alcotest.(check int) "window is the ring size" 64 s.M.latency.M.window;
  Alcotest.(check (float 1e-9)) "lifetime max" 1.0 s.M.latency.M.max_s;
  Alcotest.(check (float 1e-9)) "lifetime mean" 0.505 s.M.latency.M.mean_s;
  Alcotest.(check bool) "percentiles ordered" true
    (s.M.latency.M.p50_s <= s.M.latency.M.p95_s
    && s.M.latency.M.p95_s <= s.M.latency.M.p99_s
    && s.M.latency.M.p99_s <= s.M.latency.M.max_s)

let test_metrics_prometheus () =
  let m = M.create () in
  M.request m `Solve;
  M.response_error m ~code:"overloaded";
  M.observe_solve m ~latency_s:0.5;
  let text = M.to_prometheus (M.snapshot m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (H.contains text needle))
    [ {|tt_server_requests_total{op="solve"} 1|};
      {|tt_server_responses_error_total{code="overloaded"} 1|};
      {|tt_server_solve_latency_seconds{quantile="0.5"} 0.5|};
      "tt_server_solve_latency_seconds_count 1";
      "# TYPE tt_server_requests_total counter"
    ]

(* --------------------------------------------------------- end to end *)

let with_server ?config f =
  let t = Srv.create ?config () in
  Srv.start t;
  Fun.protect ~finally:(fun () -> Srv.shutdown t) (fun () -> f t)

let entries =
  [ "gen grid2d size=10 :: minmem; liu";
    "gen banded size=40 :: liu; postorder";
    "gen tridiagonal size=48 :: minmem; minio policy=first-fit budget=50%"
  ]

let local_jobs () =
  match Tt_engine.Manifest.parse (String.concat "\n" entries) with
  | Ok jobs -> jobs
  | Error e -> Alcotest.failf "manifest: %s" e

let test_ping_and_stats () =
  with_server (fun srv ->
      C.with_connection ~port:(Srv.port srv) (fun c ->
          Alcotest.(check bool) "pong" true (C.call c P.Ping = Ok P.Pong);
          match C.call c P.Stats with
          | Ok (P.Stats_reply j) ->
              Alcotest.(check bool) "has server section" true
                (Tt_engine.Telemetry.Json.member "server" j <> None)
          | _ -> Alcotest.fail "expected a stats reply"))

(* The acceptance criterion: results over the wire are byte-identical to
   `treetrav batch` on the same jobs — same sequence digest. *)
let test_digest_parity_with_batch () =
  let jobs = local_jobs () in
  let reports, _ = E.run_batch (E.create ~domains:1 ()) jobs in
  let expected = E.results_digest reports in
  with_server (fun srv ->
      C.with_connection ~port:(Srv.port srv) (fun c ->
          let all =
            List.concat_map
              (fun entry ->
                match C.solve c entry with
                | Ok r -> r
                | Error e -> Alcotest.failf "solve %S: %s" entry e)
              entries
          in
          Alcotest.(check int) "job count" (List.length jobs) (List.length all);
          Alcotest.(check string) "sequence digest matches treetrav batch"
            expected (P.sequence_digest all)))

let test_concurrent_loadgen () =
  let jobs = local_jobs () in
  let reports, _ = E.run_batch (E.create ~domains:1 ()) jobs in
  let expected_value = E.value_digest reports in
  with_server (fun srv ->
      let s =
        L.run
          { L.default_config with
            L.port = Srv.port srv;
            connections = 3;
            requests = 120;
            seed = 5;
            entries = Array.of_list entries
          }
      in
      Alcotest.(check int) "all requests issued" 120 s.L.requests;
      Alcotest.(check int) "all ok" 120 s.L.ok;
      Alcotest.(check bool) "no protocol errors" true (s.L.errors = []);
      Alcotest.(check int) "no transport errors" 0 s.L.transport_errors;
      Alcotest.(check bool) "value digest matches the batch engine" true
        (s.L.value_digest = Some expected_value);
      (* Server-side metrics agree with the client's observations:
         same request count, and the server's request latency (receipt
         to reply) cannot exceed what the client measured end-to-end. *)
      let m = M.snapshot (Srv.metrics srv) in
      Alcotest.(check int) "server counted every solve" 120 m.M.requests_solve;
      Alcotest.(check int) "server replied ok to every solve" 120 m.M.responses_ok;
      Alcotest.(check int) "server observed every latency" 120 m.M.latency.M.count;
      Alcotest.(check bool) "server p50 <= client p50" true
        (m.M.latency.M.p50_s <= s.L.p50_s +. 0.005))

let test_overload () =
  let config =
    { Srv.default_config with Srv.workers = 1; queue_capacity = 1 }
  in
  (* The first request pins the single worker for ~100ms: an explicit tree
     (cheap to parse on the I/O domain) with ten distinct jobs (expensive to
     solve, and each spec distinct so the result cache cannot help).  The 29
     follow-ups are tiny and admitted in a few milliseconds, so with
     [queue_capacity = 1] all but one of them must bounce as [Overloaded]. *)
  let slow_entry =
    let rng = Tt_util.Rng.create 7 in
    let tree = Tt_core.Tree.random ~rng ~size:20_000 ~max_f:40 ~max_n:20 in
    Printf.sprintf
      "tree \"%s\" :: minmem; liu; postorder; \
       minio policy=first-fit budget=25%%; minio policy=first-fit budget=75%%; \
       minio policy=best-fill budget=25%%; minio policy=best-fill budget=75%%; \
       minio policy=lsnf budget=25%%; minio policy=lsnf budget=75%%; \
       schedule procs=4 mem=1.5"
      (Tt_core.Tree.to_string tree)
  in
  let tiny_entry k = Printf.sprintf "gen grid2d size=6 seed=%d :: minmem" k in
  with_server ~config (fun srv ->
      C.with_connection ~port:(Srv.port srv) (fun c ->
          let n = 30 in
          let ids =
            List.init n (fun k ->
                let id = C.fresh_id c in
                let entry = if k = 0 then slow_entry else tiny_entry k in
                C.send c
                  { P.id; op = P.Solve { entry; timeout_s = None } };
                id)
          in
          let seen = Hashtbl.create 32 in
          let ok = ref 0 and overloaded = ref 0 and other = ref 0 in
          for _ = 1 to n do
            match C.recv c with
            | Error e -> Alcotest.failf "recv: %s" e
            | Ok { P.req_id; body } ->
                let id = Option.get req_id in
                Alcotest.(check bool) ("id answered once: " ^ id) false
                  (Hashtbl.mem seen id);
                Hashtbl.add seen id ();
                (match body with
                | P.Results _ -> incr ok
                | P.Refused { code = P.Overloaded; _ } -> incr overloaded
                | _ -> incr other)
          done;
          List.iter
            (fun id ->
              Alcotest.(check bool) ("reply for " ^ id) true (Hashtbl.mem seen id))
            ids;
          Alcotest.(check int) "every reply is ok or overloaded" 0 !other;
          Alcotest.(check bool) "some requests succeeded" true (!ok >= 1);
          Alcotest.(check bool) "full queue rejected some" true (!overloaded >= 1);
          Alcotest.(check int) "nothing lost, nothing duplicated" n (!ok + !overloaded)))

let test_deadline_exceeded () =
  with_server (fun srv ->
      C.with_connection ~port:(Srv.port srv) (fun c ->
          match
            C.call c
              (P.Solve
                 { entry = "gen grid2d size=10 :: minmem"; timeout_s = Some 0. })
          with
          | Ok (P.Refused { code = P.Deadline_exceeded; _ }) -> ()
          | Ok _ -> Alcotest.fail "a zero deadline must be refused"
          | Error e -> Alcotest.failf "call: %s" e))

let test_graceful_drain () =
  let config = { Srv.default_config with Srv.workers = 1 } in
  let srv = Srv.create ~config () in
  Srv.start srv;
  let port = Srv.port srv in
  C.with_connection ~port (fun c ->
      (* Pipeline work, then a shutdown frame: every admitted request
         must still be answered with real results. *)
      let solve_ids =
        List.init 3 (fun _ ->
            let id = C.fresh_id c in
            C.send c
              { P.id;
                op =
                  P.Solve
                    { entry = "gen grid2d size=12 :: minmem; liu";
                      timeout_s = None
                    }
              };
            id)
      in
      let shutdown_id = C.fresh_id c in
      C.send c { P.id = shutdown_id; op = P.Shutdown };
      let results = ref 0 and draining = ref 0 in
      for _ = 1 to 4 do
        match C.recv c with
        | Error e -> Alcotest.failf "recv during drain: %s" e
        | Ok { P.req_id; body } -> (
            match body with
            | P.Results _ ->
                Alcotest.(check bool) "results id" true
                  (List.mem (Option.get req_id) solve_ids);
                incr results
            | P.Draining ->
                Alcotest.(check bool) "draining id" true
                  (req_id = Some shutdown_id);
                incr draining
            | _ -> Alcotest.fail "unexpected body during drain")
      done;
      Alcotest.(check int) "all admitted solves completed" 3 !results;
      Alcotest.(check int) "shutdown acknowledged" 1 !draining;
      (* A solve sent after the drain began is refused, not dropped. *)
      match C.call c (P.Solve { entry = "gen grid2d size=8 :: minmem"; timeout_s = None }) with
      | Ok (P.Refused { code = P.Shutting_down; _ }) | Error _ ->
          (* Error covers the race where the server already closed the
             connection after draining it. *)
          ()
      | Ok _ -> Alcotest.fail "draining server accepted new work");
  Srv.shutdown srv;
  (* The listener is gone: new connections are refused. *)
  match C.connect ~port () with
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
  | c ->
      C.close c;
      Alcotest.fail "listener still accepting after shutdown"

let () =
  H.run "server"
    [ ( "protocol",
        [ H.case "error codes" test_error_code_strings;
          H.case "request round trip" test_request_round_trip;
          H.case "request decode errors" test_request_decode_errors;
          H.case "response round trip" test_response_round_trip;
          H.case "digests" test_digests
        ] );
      ( "admission",
        [ H.case "fifo" test_admission_fifo;
          H.case "bounds" test_admission_bounds;
          H.case "close" test_admission_close
        ] );
      ( "metrics",
        [ H.case "counters" test_metrics_counters;
          H.case "latency" test_metrics_latency;
          H.case "prometheus" test_metrics_prometheus
        ] );
      ( "server",
        [ H.case "ping and stats" test_ping_and_stats;
          H.case "digest parity with batch" test_digest_parity_with_batch;
          H.case "concurrent loadgen" test_concurrent_loadgen;
          H.case "overload rejection" test_overload;
          H.case "deadline exceeded" test_deadline_exceeded;
          H.case "graceful drain" test_graceful_drain
        ] )
    ]
