(* Tests for the tt_server network layer: protocol codec round trips,
   the bounded admission queue, metrics, and end-to-end behaviour of a
   live server — digest parity with the batch engine, concurrent load,
   overload rejection, deadlines and graceful drain. *)

module P = Tt_server.Protocol
module Adm = Tt_server.Admission
module M = Tt_server.Metrics
module Srv = Tt_server.Server
module C = Tt_server.Client
module L = Tt_server.Loadgen
module E = Tt_engine.Executor
module J = Tt_engine.Job
module H = Helpers

let all_error_codes =
  [ P.Bad_frame; P.Bad_request; P.Unsupported_version; P.Overloaded;
    P.Deadline_exceeded; P.Shutting_down; P.Internal ]

(* ----------------------------------------------------------- protocol *)

let test_error_code_strings () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        ("round trip " ^ P.error_code_to_string c)
        true
        (P.error_code_of_string (P.error_code_to_string c) = Some c))
    all_error_codes;
  Alcotest.(check bool) "unknown code" true (P.error_code_of_string "nope" = None)

let test_request_round_trip () =
  List.iter
    (fun op ->
      let req = { P.id = "r-1"; op } in
      match P.decode_request (P.encode_request req) with
      | Ok got -> Alcotest.(check bool) "request round trips" true (got = req)
      | Error (_, _, msg) -> Alcotest.failf "decode failed: %s" msg)
    [ P.Ping; P.Stats; P.Shutdown;
      P.Peek { key = "deadbeef00112233" };
      P.Solve
        { entry = "gen grid2d size=8 :: minmem"; timeout_s = None; idem = None; priority = P.Interactive };
      P.Solve
        { entry = "tree \"x :: y\"";
          timeout_s = Some 2.5;
          idem = None;
          priority = P.Batch
        };
      P.Solve
        { entry = "gen grid2d size=8 :: minmem";
          timeout_s = Some 1.;
          idem = Some "key-42";
          priority = P.Interactive
        }
    ]

let test_request_decode_errors () =
  let expect line id code =
    match P.decode_request line with
    | Ok _ -> Alcotest.failf "accepted %S" line
    | Error (got_id, got_code, _) ->
        Alcotest.(check bool) ("id of " ^ line) true (got_id = id);
        Alcotest.(check string) ("code of " ^ line)
          (P.error_code_to_string code)
          (P.error_code_to_string got_code)
  in
  expect "not json" None P.Bad_frame;
  expect "[1,2]" None P.Bad_frame;
  expect {|{"id":"x","op":"ping"}|} (Some "x") P.Unsupported_version;
  expect {|{"v":2,"id":"x","op":"ping"}|} (Some "x") P.Unsupported_version;
  expect {|{"v":1,"id":"x","op":"warp"}|} (Some "x") P.Bad_request;
  expect {|{"v":1,"op":"ping"}|} None P.Bad_request;
  expect {|{"v":1,"id":"x","op":"solve"}|} (Some "x") P.Bad_request;
  expect {|{"v":1,"id":"x","op":"peek"}|} (Some "x") P.Bad_request;
  expect {|{"v":1,"id":"x","op":"peek","key":7}|} (Some "x") P.Bad_request;
  (* [idem] is optional but must be a string when present. *)
  expect {|{"v":1,"id":"x","op":"solve","entry":"e","idem":7}|} (Some "x")
    P.Bad_request;
  match P.decode_request {|{"v":1,"id":"x","op":"solve","entry":"e"}|} with
  | Ok { P.op = P.Solve { idem = None; _ }; _ } -> ()
  | _ -> Alcotest.fail "absent idem must decode as None"

let sample_reports =
  [ { P.job_id = "aaaa"; label = "m"; spec = "min-memory:minmem";
      result = Ok (J.Memory { peak = 42; order = [| 2; 0; 1 |] });
      cache_hit = false; wall_s = 0.25 };
    { P.job_id = "bbbb"; label = "io"; spec = "min-io";
      result = Ok (J.Io { in_core = 10; memory = 8; io = None });
      cache_hit = true; wall_s = 0.5 };
    { P.job_id = "cccc"; label = "s"; spec = "schedule";
      result = Ok (J.Sched { memory = 9; makespan = Some 7; peak = Some 9 });
      cache_hit = false; wall_s = 1.5 };
    { P.job_id = "dddd"; label = "t"; spec = "min-memory:liu";
      result = Error (J.Timed_out 0.125); cache_hit = false; wall_s = 0.125 };
    { P.job_id = "eeee"; label = "c"; spec = "min-memory:liu";
      result = Error (J.Crashed "Failure(\"boom\")"); cache_hit = false;
      wall_s = 0.75 }
  ]

let check_response_round_trip resp =
  match P.decode_response (P.encode_response resp) with
  | Error e -> Alcotest.failf "decode_response: %s" e
  | Ok got ->
      Alcotest.(check bool) "req_id round trips" true (got.P.req_id = resp.P.req_id);
      (match (got.P.body, resp.P.body) with
      | P.Results a, P.Results b ->
          Alcotest.(check int) "report count" (List.length b) (List.length a);
          List.iter2
            (fun (x : P.job_report) (y : P.job_report) ->
              Alcotest.(check string) "job_id" y.P.job_id x.P.job_id;
              Alcotest.(check bool) "result" true
                (J.equal_result x.P.result y.P.result);
              Alcotest.(check bool) "cache_hit" y.P.cache_hit x.P.cache_hit)
            a b
      | b1, b2 -> Alcotest.(check bool) "body round trips" true (b1 = b2))

let test_response_round_trip () =
  check_response_round_trip { P.req_id = Some "r9"; body = P.Results sample_reports };
  check_response_round_trip { P.req_id = Some "r0"; body = P.Pong };
  check_response_round_trip { P.req_id = Some "p0"; body = P.Peeked None };
  check_response_round_trip
    { P.req_id = Some "p1";
      body = P.Peeked (Some (J.Memory { peak = 42; order = [| 2; 0; 1 |] }))
    };
  check_response_round_trip { P.req_id = Some "r1"; body = P.Draining };
  check_response_round_trip
    { P.req_id = Some "r2";
      body =
        P.Stats_reply
          (Tt_engine.Telemetry.Json.Obj
             [ ("server", Tt_engine.Telemetry.Json.Int 1) ])
    };
  List.iter
    (fun code ->
      check_response_round_trip
        { P.req_id = None; body = P.Refused { code; msg = "why \"quoted\"" } };
      check_response_round_trip
        { P.req_id = Some "e"; body = P.Refused { code; msg = "" } })
    all_error_codes

let test_digests () =
  (* The sequence digest is order-sensitive, the value digest is not and
     ignores duplicates — the properties the load generator relies on. *)
  let rev = List.rev sample_reports in
  Alcotest.(check bool) "sequence digest is order-sensitive" false
    (P.sequence_digest sample_reports = P.sequence_digest rev);
  Alcotest.(check string) "value digest is order-insensitive"
    (P.value_digest sample_reports) (P.value_digest rev);
  Alcotest.(check string) "value digest ignores duplicates"
    (P.value_digest sample_reports)
    (P.value_digest (sample_reports @ sample_reports));
  (* Wire round trip preserves both digests: the [result] field is the
     lossless Job.result_to_json rendering. *)
  let resp = { P.req_id = Some "d"; body = P.Results sample_reports } in
  match P.decode_response (P.encode_response resp) with
  | Ok { P.body = P.Results got; _ } ->
      Alcotest.(check string) "digest survives the wire"
        (P.sequence_digest sample_reports)
        (P.sequence_digest got)
  | _ -> Alcotest.fail "round trip failed"

(* ---------------------------------------------------------- admission *)

let test_admission_fifo () =
  let q = Adm.create ~capacity:8 in
  List.iter (fun i -> Alcotest.(check bool) "push" true (Adm.try_push q i)) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Adm.length q);
  Alcotest.(check bool) "fifo" true
    (Adm.pop q = Some 1 && Adm.pop q = Some 2 && Adm.pop q = Some 3)

let test_admission_bounds () =
  let q = Adm.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Adm.try_push q 1);
  Alcotest.(check bool) "push 2" true (Adm.try_push q 2);
  Alcotest.(check bool) "push 3 rejected" false (Adm.try_push q 3);
  Alcotest.(check bool) "pop frees a slot" true (Adm.pop q = Some 1);
  Alcotest.(check bool) "push 4" true (Adm.try_push q 4);
  Alcotest.(check bool) "wraps around" true
    (Adm.pop q = Some 2 && Adm.pop q = Some 4);
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Admission.create: capacity < 1") (fun () ->
      ignore (Adm.create ~capacity:0))

let test_admission_close () =
  let q = Adm.create ~capacity:4 in
  ignore (Adm.try_push q 1);
  ignore (Adm.try_push q 2);
  Adm.close q;
  Alcotest.(check bool) "closed refuses pushes" false (Adm.try_push q 3);
  Alcotest.(check bool) "queued items still delivered" true
    (Adm.pop q = Some 1 && Adm.pop q = Some 2);
  Alcotest.(check bool) "then None" true (Adm.pop q = None);
  (* A consumer blocked in pop is released by close. *)
  let q2 : int Adm.t = Adm.create ~capacity:1 in
  let d = Domain.spawn (fun () -> Adm.pop q2) in
  Unix.sleepf 0.02;
  Adm.close q2;
  Alcotest.(check bool) "blocked pop released with None" true (Domain.join d = None)

(* ------------------------------------------------------------ metrics *)

let test_metrics_counters () =
  let m = M.create () in
  M.connection_opened m;
  M.connection_opened m;
  M.connection_closed m;
  M.request m `Solve;
  M.request m `Solve;
  M.request m `Ping;
  M.request m `Stats;
  M.response_ok m;
  M.response_error m ~code:"overloaded";
  M.response_error m ~code:"overloaded";
  M.job m ~cache_hit:true ~error:false ~wall_s:0.5;
  M.job m ~cache_hit:false ~error:true ~wall_s:0.25;
  let s = M.snapshot m in
  Alcotest.(check int) "opened" 2 s.M.connections_opened;
  Alcotest.(check int) "active" 1 s.M.connections_active;
  Alcotest.(check int) "solve" 2 s.M.requests_solve;
  Alcotest.(check int) "ping" 1 s.M.requests_ping;
  Alcotest.(check int) "stats" 1 s.M.requests_stats;
  Alcotest.(check int) "ok" 1 s.M.responses_ok;
  Alcotest.(check bool) "errors by code" true
    (s.M.errors = [ ("overloaded", 2) ]);
  Alcotest.(check int) "jobs" 2 s.M.jobs;
  Alcotest.(check int) "job errors" 1 s.M.job_errors;
  Alcotest.(check int) "cache hits" 1 s.M.job_cache_hits;
  Alcotest.(check (float 1e-9)) "job wall" 0.75 s.M.job_wall_s

let test_metrics_latency () =
  let m = M.create ~latency_window:64 () in
  for i = 1 to 100 do
    M.observe_solve m ~latency_s:(float_of_int i /. 100.)
  done;
  let s = M.snapshot m in
  Alcotest.(check int) "lifetime count" 100 s.M.latency.M.count;
  Alcotest.(check int) "window is the ring size" 64 s.M.latency.M.window;
  Alcotest.(check (float 1e-9)) "lifetime max" 1.0 s.M.latency.M.max_s;
  Alcotest.(check (float 1e-9)) "lifetime mean" 0.505 s.M.latency.M.mean_s;
  Alcotest.(check bool) "percentiles ordered" true
    (s.M.latency.M.p50_s <= s.M.latency.M.p95_s
    && s.M.latency.M.p95_s <= s.M.latency.M.p99_s
    && s.M.latency.M.p99_s <= s.M.latency.M.max_s)

let test_metrics_prometheus () =
  let m = M.create () in
  M.request m `Solve;
  M.response_error m ~code:"overloaded";
  M.observe_solve m ~latency_s:0.5;
  M.worker_restart m;
  M.idle_eviction m;
  M.replay_hit m;
  M.write_overflow m;
  M.shed m ~reason:"brownout" ~priority:"batch";
  M.shed m ~reason:"limit" ~priority:"interactive";
  M.shed m ~reason:"limit" ~priority:"interactive";
  M.deadline_exceeded m;
  M.set_admission m ~queue_depth:3 ~admitted:5 ~limit:8;
  let text = M.to_prometheus (M.snapshot m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (H.contains text needle))
    [ {|tt_server_requests_total{op="solve"} 1|};
      {|tt_server_responses_error_total{code="overloaded"} 1|};
      {|tt_server_solve_latency_seconds{quantile="0.5"} 0.5|};
      "tt_server_solve_latency_seconds_count 1";
      "# TYPE tt_server_requests_total counter";
      "tt_server_worker_restarts_total 1";
      "tt_server_idle_evictions_total 1";
      "tt_server_replay_hits_total 1";
      "tt_server_write_overflows_total 1";
      {|tt_server_sheds_total{reason="brownout",priority="batch"} 1|};
      {|tt_server_sheds_total{reason="limit",priority="interactive"} 2|};
      "tt_server_deadline_exceeded_total 1";
      "# TYPE tt_server_admission_queue_depth gauge";
      "tt_server_admission_queue_depth 3";
      "tt_server_admission_admitted 5";
      "tt_server_admission_limit 8"
    ]

(* Exposition-format conformance, via the shared checker in
   {!Helpers} (the shard tier's metrics run the same one). *)
let test_prometheus_conformance () =
  let m = M.create () in
  M.connection_opened m;
  M.connection_closed m;
  M.request m `Solve;
  M.request m `Ping;
  M.request m `Stats;
  M.request m `Shutdown;
  M.request m `Peek;
  M.response_ok m;
  M.response_error m ~code:"overloaded";
  M.response_error m ~code:"bad_request";
  M.job m ~cache_hit:true ~error:false ~wall_s:0.25;
  M.job m ~cache_hit:false ~error:true ~wall_s:0.5;
  M.observe_solve m ~latency_s:0.125;
  M.worker_restart m;
  M.idle_eviction m;
  M.replay_hit m;
  M.write_overflow m;
  M.shed m ~reason:"queue_wait" ~priority:"interactive";
  M.shed m ~reason:"brownout" ~priority:"batch";
  M.deadline_exceeded m;
  M.set_admission m ~queue_depth:2 ~admitted:4 ~limit:6;
  H.check_prometheus_conformance ~min_samples:11 (M.to_prometheus (M.snapshot m))

(* ------------------------------------------------------------- replay *)

module R = Tt_server.Replay

let test_replay_cache () =
  let r = R.create ~capacity:2 in
  Alcotest.(check bool) "miss on empty" true (R.find r "a" = None);
  R.put r "a" P.Pong;
  R.put r "b" P.Draining;
  Alcotest.(check bool) "hit a" true (R.find r "a" = Some P.Pong);
  Alcotest.(check bool) "hit b" true (R.find r "b" = Some P.Draining);
  (* A key is written once: the first body wins. *)
  R.put r "a" P.Draining;
  Alcotest.(check bool) "first body kept" true (R.find r "a" = Some P.Pong);
  (* Capacity 2: inserting c evicts the oldest key (a). *)
  R.put r "c" P.Pong;
  Alcotest.(check bool) "oldest evicted" true (R.find r "a" = None);
  Alcotest.(check bool) "b survives" true (R.find r "b" <> None);
  Alcotest.(check bool) "c cached" true (R.find r "c" <> None);
  Alcotest.(check int) "length bounded" 2 (R.length r);
  Alcotest.(check int) "evictions counted" 1 (R.evictions r);
  Alcotest.(check int) "capacity" 2 (R.capacity r);
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Replay.create: capacity < 1") (fun () ->
      ignore (R.create ~capacity:0))

(* --------------------------------------------------------- end to end *)

let with_server ?config f =
  let t = Srv.create ?config () in
  Srv.start t;
  Fun.protect ~finally:(fun () -> Srv.shutdown t) (fun () -> f t)

let entries =
  [ "gen grid2d size=10 :: minmem; liu";
    "gen banded size=40 :: liu; postorder";
    "gen tridiagonal size=48 :: minmem; minio policy=first-fit budget=50%"
  ]

let local_jobs () =
  match Tt_engine.Manifest.parse (String.concat "\n" entries) with
  | Ok jobs -> jobs
  | Error e -> Alcotest.failf "manifest: %s" e

let test_ping_and_stats () =
  with_server (fun srv ->
      C.with_connection ~port:(Srv.port srv) (fun c ->
          Alcotest.(check bool) "pong" true (C.call c P.Ping = Ok P.Pong);
          match C.call c P.Stats with
          | Ok (P.Stats_reply j) ->
              Alcotest.(check bool) "has server section" true
                (Tt_engine.Telemetry.Json.member "server" j <> None)
          | _ -> Alcotest.fail "expected a stats reply"))

(* The acceptance criterion: results over the wire are byte-identical to
   `treetrav batch` on the same jobs — same sequence digest. *)
let test_digest_parity_with_batch () =
  let jobs = local_jobs () in
  let reports, _ = E.run_batch (E.create ~domains:1 ()) jobs in
  let expected = E.results_digest reports in
  with_server (fun srv ->
      C.with_connection ~port:(Srv.port srv) (fun c ->
          let all =
            List.concat_map
              (fun entry ->
                match C.solve c entry with
                | Ok r -> r
                | Error e -> Alcotest.failf "solve %S: %s" entry e)
              entries
          in
          Alcotest.(check int) "job count" (List.length jobs) (List.length all);
          Alcotest.(check string) "sequence digest matches treetrav batch"
            expected (P.sequence_digest all)))

let test_concurrent_loadgen () =
  let jobs = local_jobs () in
  let reports, _ = E.run_batch (E.create ~domains:1 ()) jobs in
  let expected_value = E.value_digest reports in
  with_server (fun srv ->
      let s =
        L.run
          { L.default_config with
            L.port = Srv.port srv;
            connections = 3;
            requests = 120;
            seed = 5;
            entries = Array.of_list entries
          }
      in
      Alcotest.(check int) "all requests issued" 120 s.L.requests;
      Alcotest.(check int) "all ok" 120 s.L.ok;
      Alcotest.(check bool) "no protocol errors" true (s.L.errors = []);
      Alcotest.(check int) "no transport errors" 0 s.L.transport_errors;
      Alcotest.(check bool) "value digest matches the batch engine" true
        (s.L.value_digest = Some expected_value);
      (* Server-side metrics agree with the client's observations:
         same request count, and the server's request latency (receipt
         to reply) cannot exceed what the client measured end-to-end. *)
      let m = M.snapshot (Srv.metrics srv) in
      Alcotest.(check int) "server counted every solve" 120 m.M.requests_solve;
      Alcotest.(check int) "server replied ok to every solve" 120 m.M.responses_ok;
      Alcotest.(check int) "server observed every latency" 120 m.M.latency.M.count;
      Alcotest.(check bool) "server p50 <= client p50" true
        (m.M.latency.M.p50_s <= s.L.p50_s +. 0.005))

let test_loadgen_transport_breakdown () =
  (* A vacated port: every request dies at connect, and the summary
     buckets the failures by kind instead of only counting them. *)
  let dead_port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let p =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    in
    Unix.close fd;
    p
  in
  let s =
    L.run
      { L.default_config with
        L.port = dead_port;
        connections = 1;
        requests = 3;
        read_timeout_s = 1.;
        connect_timeout_s = Some 1.
      }
  in
  Alcotest.(check int) "all transport errors" 3 s.L.transport_errors;
  Alcotest.(check int) "breakdown sums to the total" 3
    (List.fold_left (fun a (_, n) -> a + n) 0 s.L.transport_breakdown);
  Alcotest.(check bool) "refused connections classified" true
    (List.mem_assoc "connect_refused" s.L.transport_breakdown);
  Alcotest.(check bool) "summary prints the breakdown" true
    (H.contains (L.summary_to_string s) "transport: connect_refused=3")

let test_overload () =
  let config =
    { Srv.default_config with Srv.workers = 1; queue_capacity = 1 }
  in
  (* The first request pins the single worker for ~100ms: an explicit tree
     (cheap to parse on the I/O domain) with ten distinct jobs (expensive to
     solve, and each spec distinct so the result cache cannot help).  The 29
     follow-ups are tiny and admitted in a few milliseconds, so with
     [queue_capacity = 1] all but one of them must bounce as [Overloaded]. *)
  let slow_entry =
    let rng = Tt_util.Rng.create 7 in
    let tree = Tt_core.Tree.random ~rng ~size:20_000 ~max_f:40 ~max_n:20 in
    Printf.sprintf
      "tree \"%s\" :: minmem; liu; postorder; \
       minio policy=first-fit budget=25%%; minio policy=first-fit budget=75%%; \
       minio policy=best-fill budget=25%%; minio policy=best-fill budget=75%%; \
       minio policy=lsnf budget=25%%; minio policy=lsnf budget=75%%; \
       schedule procs=4 mem=1.5"
      (Tt_core.Tree.to_string tree)
  in
  let tiny_entry k = Printf.sprintf "gen grid2d size=6 seed=%d :: minmem" k in
  with_server ~config (fun srv ->
      C.with_connection ~port:(Srv.port srv) (fun c ->
          let n = 30 in
          let ids =
            List.init n (fun k ->
                let id = C.fresh_id c in
                let entry = if k = 0 then slow_entry else tiny_entry k in
                C.send c
                  { P.id;
                    op = P.Solve { entry; timeout_s = None; idem = None; priority = P.Interactive }
                  };
                id)
          in
          let seen = Hashtbl.create 32 in
          let ok = ref 0 and overloaded = ref 0 and other = ref 0 in
          for _ = 1 to n do
            match C.recv c with
            | Error e -> Alcotest.failf "recv: %s" e
            | Ok { P.req_id; body } ->
                let id = Option.get req_id in
                Alcotest.(check bool) ("id answered once: " ^ id) false
                  (Hashtbl.mem seen id);
                Hashtbl.add seen id ();
                (match body with
                | P.Results _ -> incr ok
                | P.Refused { code = P.Overloaded; _ } -> incr overloaded
                | _ -> incr other)
          done;
          List.iter
            (fun id ->
              Alcotest.(check bool) ("reply for " ^ id) true (Hashtbl.mem seen id))
            ids;
          Alcotest.(check int) "every reply is ok or overloaded" 0 !other;
          Alcotest.(check bool) "some requests succeeded" true (!ok >= 1);
          Alcotest.(check bool) "full queue rejected some" true (!overloaded >= 1);
          Alcotest.(check int) "nothing lost, nothing duplicated" n (!ok + !overloaded)))

let test_deadline_exceeded () =
  with_server (fun srv ->
      C.with_connection ~port:(Srv.port srv) (fun c ->
          match
            C.call c
              (P.Solve
                 { entry = "gen grid2d size=10 :: minmem";
                   timeout_s = Some 0.;
                   idem = None;
                   priority = P.Interactive
                 })
          with
          | Ok (P.Refused { code = P.Deadline_exceeded; _ }) -> ()
          | Ok _ -> Alcotest.fail "a zero deadline must be refused"
          | Error e -> Alcotest.failf "call: %s" e))

let test_graceful_drain () =
  let config = { Srv.default_config with Srv.workers = 1 } in
  let srv = Srv.create ~config () in
  Srv.start srv;
  let port = Srv.port srv in
  C.with_connection ~port (fun c ->
      (* Pipeline work, then a shutdown frame: every admitted request
         must still be answered with real results. *)
      let solve_ids =
        List.init 3 (fun _ ->
            let id = C.fresh_id c in
            C.send c
              { P.id;
                op =
                  P.Solve
                    { entry = "gen grid2d size=12 :: minmem; liu";
                      timeout_s = None;
                      idem = None;
                      priority = P.Interactive
                    }
              };
            id)
      in
      let shutdown_id = C.fresh_id c in
      C.send c { P.id = shutdown_id; op = P.Shutdown };
      let results = ref 0 and draining = ref 0 in
      for _ = 1 to 4 do
        match C.recv c with
        | Error e -> Alcotest.failf "recv during drain: %s" e
        | Ok { P.req_id; body } -> (
            match body with
            | P.Results _ ->
                Alcotest.(check bool) "results id" true
                  (List.mem (Option.get req_id) solve_ids);
                incr results
            | P.Draining ->
                Alcotest.(check bool) "draining id" true
                  (req_id = Some shutdown_id);
                incr draining
            | _ -> Alcotest.fail "unexpected body during drain")
      done;
      Alcotest.(check int) "all admitted solves completed" 3 !results;
      Alcotest.(check int) "shutdown acknowledged" 1 !draining;
      (* A solve sent after the drain began is refused, not dropped. *)
      match
        C.call c
          (P.Solve
             { entry = "gen grid2d size=8 :: minmem";
               timeout_s = None;
               idem = None;
               priority = P.Interactive
             })
      with
      | Ok (P.Refused { code = P.Shutting_down; _ }) | Error _ ->
          (* Error covers the race where the server already closed the
             connection after draining it. *)
          ()
      | Ok _ -> Alcotest.fail "draining server accepted new work");
  Srv.shutdown srv;
  (* The listener is gone: new connections are refused. *)
  match C.connect ~port () with
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
  | c ->
      C.close c;
      Alcotest.fail "listener still accepting after shutdown"

(* A request smeared across many tiny TCP writes (with flushes and
   delays between them) is reassembled into one frame, decoded once,
   and replied to exactly once. *)
let test_partial_frame_reassembly () =
  with_server (fun srv ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_loopback, Srv.port srv));
          let line =
            P.encode_request
              { P.id = "frag";
                op =
                  P.Solve
                    { entry = "gen grid2d size=8 :: minmem";
                      timeout_s = None;
                      idem = None;
                      priority = P.Interactive
                    }
              }
            ^ "\n"
          in
          let len = String.length line in
          let i = ref 0 in
          while !i < len do
            let n = min 5 (len - !i) in
            assert (Unix.write_substring fd line !i n = n);
            i := !i + n;
            Unix.sleepf 0.002
          done;
          (* Exactly one reply line comes back... *)
          let buf = Bytes.create 65536 in
          let acc = Buffer.create 256 in
          let deadline = Unix.gettimeofday () +. 5. in
          while
            (not (String.contains (Buffer.contents acc) '\n'))
            && Unix.gettimeofday () < deadline
          do
            match Unix.select [ fd ] [] [] 0.5 with
            | [], _, _ -> ()
            | _ ->
                let n = Unix.read fd buf 0 (Bytes.length buf) in
                if n = 0 then Alcotest.fail "server closed before replying";
                Buffer.add_subbytes acc buf 0 n
          done;
          let text = Buffer.contents acc in
          (match String.index_opt text '\n' with
          | None -> Alcotest.fail "no reply within 5s"
          | Some nl -> (
              Alcotest.(check int) "single reply line" nl
                (String.length text - 1);
              match P.decode_response (String.sub text 0 nl) with
              | Ok { P.req_id = Some "frag"; body = P.Results _ } -> ()
              | Ok _ -> Alcotest.fail "unexpected reply to fragmented solve"
              | Error e -> Alcotest.failf "undecodable reply: %s" e));
          (* ... and no second one follows. *)
          (match Unix.select [ fd ] [] [] 0.2 with
          | [], _, _ -> ()
          | _ ->
              Alcotest.(check int) "no extra bytes" 0
                (Unix.read fd buf 0 (Bytes.length buf)));
          let m = M.snapshot (Srv.metrics srv) in
          Alcotest.(check int) "decoded exactly one solve" 1 m.M.requests_solve;
          Alcotest.(check int) "replied exactly once" 1 m.M.responses_ok))

let test_idle_eviction () =
  let config = { Srv.default_config with Srv.idle_timeout_s = 0.2 } in
  with_server ~config (fun srv ->
      let c = C.connect ~read_timeout_s:5. ~port:(Srv.port srv) () in
      Fun.protect
        ~finally:(fun () -> C.close c)
        (fun () ->
          Alcotest.(check bool) "alive" true (C.call c P.Ping = Ok P.Pong);
          (* Go quiet past the timeout: the server must cut us loose. *)
          (match C.recv c with
          | Error _ -> ()  (* EOF once evicted *)
          | Ok _ -> Alcotest.fail "unsolicited reply from idle server");
          let m = M.snapshot (Srv.metrics srv) in
          Alcotest.(check bool) "eviction counted" true
            (m.M.idle_evictions >= 1);
          (* The EOF the client just saw races the server's gauge
             decrement by a few microseconds — poll briefly. *)
          let deadline = Unix.gettimeofday () +. 2. in
          let rec active () =
            let n = (M.snapshot (Srv.metrics srv)).M.connections_active in
            if n > 0 && Unix.gettimeofday () < deadline then begin
              Unix.sleepf 0.01;
              active ()
            end
            else n
          in
          Alcotest.(check int) "connection reaped" 0 (active ())))

let test_max_inflight () =
  (* One worker pinned by a slow request, [max_inflight = 1]: further
     pipelined solves on the same connection bounce as overloaded even
     though the admission queue has room. *)
  let config =
    { Srv.default_config with
      Srv.workers = 1;
      queue_capacity = 64;
      max_inflight = 1
    }
  in
  let slow_entry =
    let rng = Tt_util.Rng.create 21 in
    let tree = Tt_core.Tree.random ~rng ~size:20_000 ~max_f:40 ~max_n:20 in
    Printf.sprintf
      "tree \"%s\" :: minmem; liu; postorder; \
       minio policy=first-fit budget=25%%; minio policy=best-fill budget=75%%; \
       schedule procs=4 mem=1.5"
      (Tt_core.Tree.to_string tree)
  in
  with_server ~config (fun srv ->
      C.with_connection ~port:(Srv.port srv) (fun c ->
          let n = 6 in
          let ids =
            List.init n (fun k ->
                let id = C.fresh_id c in
                let entry =
                  if k = 0 then slow_entry
                  else Printf.sprintf "gen grid2d size=6 seed=%d :: minmem" k
                in
                C.send c
                  { P.id;
                    op = P.Solve { entry; timeout_s = None; idem = None; priority = P.Interactive }
                  };
                id)
          in
          let seen = Hashtbl.create 16 in
          let ok = ref 0 and overloaded = ref 0 in
          for _ = 1 to n do
            match C.recv c with
            | Error e -> Alcotest.failf "recv: %s" e
            | Ok { P.req_id; body } -> (
                let id = Option.get req_id in
                Alcotest.(check bool) ("one reply for " ^ id) false
                  (Hashtbl.mem seen id);
                Hashtbl.add seen id ();
                match body with
                | P.Results _ -> incr ok
                | P.Refused { code = P.Overloaded; msg } ->
                    Alcotest.(check bool) "refusal names the in-flight limit"
                      true (H.contains msg "in-flight");
                    incr overloaded
                | _ -> Alcotest.fail "unexpected reply body")
          done;
          List.iter
            (fun id ->
              Alcotest.(check bool) ("reply for " ^ id) true
                (Hashtbl.mem seen id))
            ids;
          Alcotest.(check bool) "cap rejected some" true (!overloaded >= 1);
          Alcotest.(check int) "nothing lost" n (!ok + !overloaded)))

let test_replay_dedup () =
  with_server (fun srv ->
      C.with_connection ~port:(Srv.port srv) (fun c ->
          let entry = "gen grid2d size=10 :: minmem; liu" in
          let first =
            match C.solve c ~idem:"dup-1" entry with
            | Ok r -> r
            | Error e -> Alcotest.failf "first solve: %s" e
          in
          let second =
            match C.solve c ~idem:"dup-1" entry with
            | Ok r -> r
            | Error e -> Alcotest.failf "replayed solve: %s" e
          in
          Alcotest.(check string) "replay returns the identical body"
            (P.sequence_digest first) (P.sequence_digest second);
          Alcotest.(check bool) "wall times replayed verbatim" true
            (List.map (fun r -> r.P.wall_s) first
            = List.map (fun r -> r.P.wall_s) second);
          (* A different key executes afresh. *)
          (match C.solve c ~idem:"dup-2" entry with
          | Ok r ->
              Alcotest.(check string) "same results under a new key"
                (P.sequence_digest first) (P.sequence_digest r)
          | Error e -> Alcotest.failf "fresh-key solve: %s" e);
          let m = M.snapshot (Srv.metrics srv) in
          Alcotest.(check int) "one replay hit" 1 m.M.replay_hits;
          (* The replayed request never reached the engine: only two
             executions' worth of jobs ran. *)
          Alcotest.(check int) "replay skipped the engine" 4 m.M.jobs))

let test_worker_crash_supervision () =
  (* Every admitted request rolls a 30% chance of killing its worker
     domain; the supervisor answers [internal] for the in-flight
     request and respawns. Client-side retries (fresh admission, fresh
     roll) must then land every request, with at least one restart
     observed and exactly one reply per request id. *)
  let faults =
    match Tt_engine.Fault.of_string "crash=0.3,seed=11" with
    | Ok f -> f
    | Error e -> Alcotest.failf "fault spec: %s" e
  in
  let config =
    { Srv.default_config with Srv.workers = 2; worker_faults = Some faults }
  in
  with_server ~config (fun srv ->
      let session =
        C.open_session ~port:(Srv.port srv)
          ~retry:
            (Tt_engine.Retry.create ~retries:10 ~base_delay_s:0.005
               ~max_delay_s:0.05 ~seed:3 ())
          ~tag:"crash" ()
      in
      Fun.protect
        ~finally:(fun () -> C.close_session session)
        (fun () ->
          for i = 1 to 20 do
            let entry =
              Printf.sprintf "gen grid2d size=8 seed=%d :: minmem" i
            in
            match C.session_solve session entry with
            | Ok _ -> ()
            | Error f ->
                Alcotest.failf "request %d lost to faults: %s" i
                  (C.failure_to_string f)
          done);
      let m = M.snapshot (Srv.metrics srv) in
      Alcotest.(check bool) "at least one worker restart" true
        (m.M.worker_restarts >= 1);
      Alcotest.(check bool) "crashes were answered with internal" true
        (List.mem_assoc "internal" m.M.errors))

let test_worker_wedge_supervision () =
  (* Injected delays up to 1.5s against a 0.2s deadline and 0.15s
     wedge grace: wedged workers are detected, their requests answered
     [internal], and replacements staffed. Every request gets exactly
     one reply (results, deadline_exceeded, or internal). *)
  let faults =
    match Tt_engine.Fault.of_string "delay=1.0,max-delay=1.5,seed=4" with
    | Ok f -> f
    | Error e -> Alcotest.failf "fault spec: %s" e
  in
  let config =
    { Srv.default_config with
      Srv.workers = 1;
      wedge_grace_s = 0.15;
      worker_faults = Some faults
    }
  in
  with_server ~config (fun srv ->
      C.with_connection ~read_timeout_s:10. ~port:(Srv.port srv) (fun c ->
          let outcomes = Hashtbl.create 8 in
          let bump k =
            Hashtbl.replace outcomes k
              (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes k))
          in
          for i = 1 to 6 do
            let entry =
              Printf.sprintf "gen grid2d size=8 seed=%d :: minmem" i
            in
            match C.call c (P.Solve { entry; timeout_s = Some 0.2; idem = None; priority = P.Interactive }) with
            | Ok (P.Results _) -> bump "ok"
            | Ok (P.Refused { code; _ }) -> bump (P.error_code_to_string code)
            | Ok _ -> Alcotest.fail "unexpected reply body"
            | Error e -> Alcotest.failf "request %d: %s" i e
          done;
          let total = Hashtbl.fold (fun _ v a -> a + v) outcomes 0 in
          Alcotest.(check int) "exactly one reply per request" 6 total;
          Hashtbl.iter
            (fun k _ ->
              Alcotest.(check bool) ("outcome " ^ k) true
                (List.mem k [ "ok"; "deadline_exceeded"; "internal" ]))
            outcomes);
      let m = M.snapshot (Srv.metrics srv) in
      Alcotest.(check bool) "wedged worker replaced" true
        (m.M.worker_restarts >= 1))

let test_client_read_timeout () =
  (* A listener that accepts (via backlog) but never replies: the
     client's read deadline must fire instead of hanging forever. *)
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close lfd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt lfd Unix.SO_REUSEADDR true;
      Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen lfd 4;
      let port =
        match Unix.getsockname lfd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> Alcotest.fail "no port"
      in
      let c = C.connect ~read_timeout_s:0.2 ~port () in
      Fun.protect
        ~finally:(fun () -> C.close c)
        (fun () ->
          let t0 = Unix.gettimeofday () in
          match C.call c P.Ping with
          | Ok _ -> Alcotest.fail "a silent server cannot produce a reply"
          | Error msg ->
              Alcotest.(check bool) "timeout is reported as such" true
                (H.contains msg "timed out");
              Alcotest.(check bool) "returned promptly" true
                (Unix.gettimeofday () -. t0 < 5.)))

let test_stats_sections () =
  with_server (fun srv ->
      C.with_connection ~port:(Srv.port srv) (fun c ->
          (match C.solve c "gen grid2d size=8 :: minmem" with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "solve: %s" e);
          match C.call c P.Stats with
          | Ok (P.Stats_reply j) ->
              let module Json = Tt_engine.Telemetry.Json in
              let int_at section field =
                match
                  Option.bind (Json.member section j) (Json.member field)
                with
                | Some (Json.Int n) -> n
                | _ -> Alcotest.failf "missing %s.%s" section field
              in
              Alcotest.(check bool) "admission.pushed counted" true
                (int_at "admission" "pushed" >= 1);
              Alcotest.(check int) "admission.rejected" 0
                (int_at "admission" "rejected");
              Alcotest.(check bool) "admission.high_watermark" true
                (int_at "admission" "high_watermark" >= 1);
              Alcotest.(check bool) "replay.capacity present" true
                (int_at "replay" "capacity" >= 1)
          | _ -> Alcotest.fail "expected a stats reply"))

let () =
  H.run "server"
    [ ( "protocol",
        [ H.case "error codes" test_error_code_strings;
          H.case "request round trip" test_request_round_trip;
          H.case "request decode errors" test_request_decode_errors;
          H.case "response round trip" test_response_round_trip;
          H.case "digests" test_digests
        ] );
      ( "admission",
        [ H.case "fifo" test_admission_fifo;
          H.case "bounds" test_admission_bounds;
          H.case "close" test_admission_close
        ] );
      ( "metrics",
        [ H.case "counters" test_metrics_counters;
          H.case "latency" test_metrics_latency;
          H.case "prometheus" test_metrics_prometheus;
          H.case "prometheus conformance" test_prometheus_conformance
        ] );
      ("replay", [ H.case "bounded cache" test_replay_cache ]);
      ( "server",
        [ H.case "ping and stats" test_ping_and_stats;
          H.case "digest parity with batch" test_digest_parity_with_batch;
          H.case "concurrent loadgen" test_concurrent_loadgen;
          H.case "loadgen transport breakdown" test_loadgen_transport_breakdown;
          H.case "overload rejection" test_overload;
          H.case "deadline exceeded" test_deadline_exceeded;
          H.case "graceful drain" test_graceful_drain;
          H.case "partial frame reassembly" test_partial_frame_reassembly;
          H.case "idle eviction" test_idle_eviction;
          H.case "max inflight per connection" test_max_inflight;
          H.case "replay dedup" test_replay_dedup;
          H.case "stats sections" test_stats_sections
        ] );
      ( "supervision",
        [ H.case "worker crash" test_worker_crash_supervision;
          H.case "worker wedge" test_worker_wedge_supervision
        ] );
      ("client", [ H.case "read timeout" test_client_read_timeout ])
    ]
