(* Tests for the batch engine: cache behaviour, executor determinism
   across domain counts, crash isolation, telemetry JSONL and the batch
   manifest parser. *)

module T = Tt_core.Tree
module E = Tt_engine.Executor
module J = Tt_engine.Job
module C = Tt_engine.Cache
module H = Helpers

let some_tree seed = List.hd (H.tree_list ~seed ~count:1 ~size_max:30 ~max_f:12 ~max_n:6)

(* A small mixed-spec batch over a seeded corpus: every spec family,
   with deliberate duplicates so the cache has something to do. *)
let mixed_jobs ?(seed = 11) ?(trees = 8) () =
  let ts = H.tree_list ~seed ~count:trees ~size_max:40 ~max_f:15 ~max_n:8 in
  List.concat_map
    (fun t ->
      [ J.make t (J.Min_memory J.Minmem);
        J.make t (J.Min_memory J.Liu);
        J.make t (J.Min_memory J.Postorder);
        J.make t (J.Min_io { policy = Tt_core.Minio.First_fit; budget = J.Fraction 0.5 });
        J.make t (J.Min_io { policy = Tt_core.Minio.Lsnf; budget = J.Fraction 0.25 });
        J.make t (J.Schedule { procs = 4; mem_factor = 1.5 });
        J.make t (J.Min_memory J.Minmem) (* duplicate: must hit *)
      ])
    ts

(* ------------------------------------------------------------ job ids *)

let test_job_id_content_addressing () =
  let t1 = some_tree 3 in
  let t2 = T.map_weights ~f:(fun i -> t1.T.f.(i)) ~n:(fun i -> t1.T.n.(i)) t1 in
  let j spec tree = J.id (J.make tree spec) in
  Alcotest.(check string)
    "same tree, same spec => same id"
    (j (J.Min_memory J.Liu) t1)
    (j (J.Min_memory J.Liu) t2);
  Alcotest.(check bool)
    "label does not change the id" true
    (J.id (J.make ~label:"a" t1 (J.Min_memory J.Liu))
    = J.id (J.make ~label:"b" t1 (J.Min_memory J.Liu)));
  let bumped =
    T.map_weights ~f:(fun i -> t1.T.f.(i) + if i = 0 then 1 else 0)
      ~n:(fun i -> t1.T.n.(i))
      t1
  in
  Alcotest.(check bool)
    "one f_i changed => different id" false
    (j (J.Min_memory J.Liu) t1 = j (J.Min_memory J.Liu) bumped);
  Alcotest.(check bool)
    "different spec => different id" false
    (j (J.Min_memory J.Liu) t1 = j (J.Min_memory J.Minmem) t1)

(* -------------------------------------------------------------- cache *)

let test_cache_hit_miss_counters () =
  let c : int C.t = C.create () in
  let calls = ref 0 in
  let v, hit = C.find_or_compute c ~key:"a" (fun () -> incr calls; 1) in
  Alcotest.(check (pair int bool)) "first is a miss" (1, false) (v, hit);
  let v, hit = C.find_or_compute c ~key:"a" (fun () -> incr calls; 2) in
  Alcotest.(check (pair int bool)) "second is a hit with the old value" (1, true) (v, hit);
  let _ = C.find_or_compute c ~key:"b" (fun () -> incr calls; 3) in
  Alcotest.(check int) "computation ran once per distinct key" 2 !calls;
  Alcotest.(check (pair int int)) "counters" (1, 2) (C.hits c, C.misses c);
  Alcotest.(check int) "length" 2 (C.length c);
  C.clear c;
  Alcotest.(check (pair int int)) "cleared" (0, 0) (C.hits c, C.misses c)

let test_cache_exception_not_inserted () =
  let c : int C.t = C.create () in
  (try ignore (C.find_or_compute c ~key:"k" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "nothing inserted" 0 (C.length c);
  Alcotest.(check int) "the failed attempt was a miss" 1 (C.misses c);
  let v, hit = C.find_or_compute c ~key:"k" (fun () -> 7) in
  Alcotest.(check (pair int bool)) "recomputes after failure" (7, false) (v, hit)

let test_cache_same_tree_twice () =
  (* the ISSUE's contract: same tree submitted twice hits; a tree
     differing in one f_i misses; counters match. *)
  let exec = E.create ~domains:1 () in
  let t1 = some_tree 5 in
  let job = J.make t1 (J.Min_memory J.Minmem) in
  let reports, _ = E.run_batch exec [ job; job ] in
  Alcotest.(check bool) "first computes" false reports.(0).E.cache_hit;
  Alcotest.(check bool) "second hits" true reports.(1).E.cache_hit;
  let bumped =
    T.map_weights ~f:(fun i -> t1.T.f.(i) + if i = 0 then 1 else 0)
      ~n:(fun i -> t1.T.n.(i))
      t1
  in
  let reports, _ = E.run_batch exec [ J.make bumped (J.Min_memory J.Minmem) ] in
  Alcotest.(check bool) "perturbed tree misses" false reports.(0).E.cache_hit;
  Alcotest.(check (pair int int)) "counters match" (1, 2)
    (C.hits (E.cache exec), C.misses (E.cache exec))

let test_cache_shares_minmem_preprocessing () =
  let exec = E.create ~domains:1 () in
  let t = some_tree 9 in
  let io policy = J.make t (J.Min_io { policy; budget = J.Fraction 0.5 }) in
  let reports, summary =
    E.run_batch exec
      [ io Tt_core.Minio.First_fit; io Tt_core.Minio.Lsnf; J.make t (J.Min_memory J.Minmem) ]
  in
  (* 3 distinct job keys (all misses), but the second and third jobs
     reuse the first job's MinMem preprocessing from the cache. *)
  Alcotest.(check int) "two preprocessing hits" 2 summary.E.cache_hits;
  Alcotest.(check bool) "explicit MinMem job reuses preprocessing" true
    reports.(2).E.cache_hit;
  match (reports.(0).E.result, reports.(1).E.result) with
  | Ok (J.Io { memory = m1; _ }), Ok (J.Io { memory = m2; _ }) ->
      Alcotest.(check int) "same derived budget" m1 m2
  | _ -> Alcotest.fail "expected Io outcomes"

let test_cache_persistence () =
  let dir = Filename.temp_file "tt_cache" "" in
  Sys.remove dir;
  let t = some_tree 13 in
  let job = J.make t (J.Min_memory J.Liu) in
  let exec1 = E.create ~cache:(C.create ~persist:dir ()) () in
  let r1 = E.run exec1 [ job ] in
  (* fresh in-memory cache, same directory: must hit the disk level *)
  let exec2 = E.create ~cache:(C.create ~persist:dir ()) () in
  let reports, _ = E.run_batch exec2 [ job ] in
  Alcotest.(check bool) "disk hit across executors" true reports.(0).E.cache_hit;
  Alcotest.(check bool) "same result" true
    (J.equal_result (List.hd r1) reports.(0).E.result)

(* ----------------------------------------------------------- executor *)

let check_reports_match (a : E.report array) (b : E.report array) =
  Alcotest.(check int) "same length" (Array.length a) (Array.length b);
  Array.iteri
    (fun i (ra : E.report) ->
      let rb = b.(i) in
      Alcotest.(check string) "same job at same slot" (J.id ra.E.job) (J.id rb.E.job);
      if not (J.equal_result ra.E.result rb.E.result) then
        Alcotest.failf "job %d (%s): %s <> %s" i ra.E.job.J.label
          (J.result_to_string ra.E.result)
          (J.result_to_string rb.E.result))
    a

let test_determinism_across_domains () =
  let jobs = mixed_jobs () in
  let run domains = fst (E.run_batch (E.create ~domains ()) jobs) in
  let seq = run 1 in
  check_reports_match seq (run 4);
  check_reports_match seq (run (E.default_domains ()))

let test_crash_isolated () =
  (* Parallel.list_schedule raises Invalid_argument on procs = 0; the
     executor must degrade that job alone to Error. *)
  let t = some_tree 21 in
  let good = J.make t (J.Min_memory J.Postorder) in
  let crash = J.make t (J.Schedule { procs = 0; mem_factor = 1.5 }) in
  List.iter
    (fun domains ->
      let exec = E.create ~domains () in
      let reports, summary = E.run_batch exec [ good; crash; good ] in
      (match reports.(1).E.result with
      | Error (J.Crashed msg) ->
          Alcotest.(check bool) "message mentions the exception" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "expected Crashed for the bad job");
      (match (reports.(0).E.result, reports.(2).E.result) with
      | Ok _, Ok _ -> ()
      | _ -> Alcotest.fail "good jobs must survive a crashing neighbour");
      Alcotest.(check int) "one error counted" 1 summary.E.errors)
    [ 1; 4 ]

let test_results_in_submission_order () =
  let jobs = mixed_jobs ~seed:7 ~trees:5 () in
  let exec = E.create ~domains:4 () in
  let reports, _ = E.run_batch exec jobs in
  List.iteri
    (fun i job ->
      Alcotest.(check string) "slot i holds job i" (J.id job) (J.id reports.(i).E.job))
    jobs

(* ---------------------------------------------------------- telemetry *)

let test_telemetry_jsonl () =
  let path = Filename.temp_file "tt_telemetry" ".jsonl" in
  Tt_engine.Telemetry.with_file path (fun sink ->
      let exec = E.create ~domains:2 ~telemetry:sink () in
      ignore (E.run_batch exec (mixed_jobs ~seed:3 ~trees:3 ())));
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per job plus the batch summary" 22 (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "line is a JSON object" true
        (String.length line > 1 && line.[0] = '{' && line.[String.length line - 1] = '}');
      Alcotest.(check bool) "line has an event field" true
        (H.contains line "\"event\":"))
    lines;
  let batch = List.nth lines (List.length lines - 1) in
  List.iter
    (fun key -> Alcotest.(check bool) ("batch has " ^ key) true (H.contains batch key))
    [ "\"event\":\"batch\""; "\"cache_hits\""; "\"utilization\""; "\"busy_s\"" ];
  Sys.remove path

let test_json_escaping () =
  let module Json = Tt_engine.Telemetry.Json in
  Alcotest.(check string) "escapes" "{\"a\\\"b\":\"x\\n\\u0001\"}"
    (Json.to_string (Json.Obj [ ("a\"b", Json.String "x\n\001") ]));
  Alcotest.(check string) "non-finite floats are null" "[null,null,1.5]"
    (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity; Json.Float 1.5 ]))

(* ------------------------------------------------- Json round tripping *)

module Json = Tt_engine.Telemetry.Json

(* What to_string normalizes away: non-finite floats render as null
   (JSON has no inf/nan) and integral floats print without a point, so
   they parse back as Int. *)
let rec json_normal = function
  | Json.Float f when not (Float.is_finite f) -> Json.Null
  | Json.Float f when Float.is_integer f -> Json.Int (int_of_float f)
  | Json.List l -> Json.List (List.map json_normal l)
  | Json.Obj kvs -> Json.Obj (List.map (fun (k, v) -> (k, json_normal v)) kvs)
  | j -> j

let gen_json =
  let open QCheck.Gen in
  (* arbitrary bytes: exercises the escaper on control characters,
     quotes, backslashes and high (raw UTF-8) bytes alike *)
  let str = string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 12) in
  let leaf =
    frequency
      [ (1, return Json.Null);
        (2, map (fun b -> Json.Bool b) bool);
        (4, map (fun i -> Json.Int i) (int_range (-1_000_000) 1_000_000));
        (* decimal-literal floats, at most 7 significant digits: the
           %.12g rendering reproduces them exactly *)
        ( 4,
          map2
            (fun m e -> Json.Float (float_of_int m /. (10. ** float_of_int e)))
            (int_range (-999_999) 999_999) (int_bound 4) );
        (1, oneofl [ Json.Float nan; Json.Float infinity; Json.Float neg_infinity ]);
        (4, map (fun s -> Json.String s) str)
      ]
  in
  let rec go n =
    if n = 0 then leaf
    else
      frequency
        [ (3, leaf);
          (1, map (fun l -> Json.List l) (list_size (int_bound 4) (go (n / 2))));
          ( 1,
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_bound 4) (pair str (go (n / 2)))) )
        ]
  in
  sized (fun n -> go (min n 16))

let prop_json_round_trip =
  H.qcheck ~count:500 "of_string (to_string v) = Ok (normal v)"
    (QCheck.make ~print:Json.to_string gen_json)
    (fun v ->
      let n = json_normal v in
      Json.of_string (Json.to_string v) = Ok n
      (* normalization is idempotent: re-encoding the parse is stable *)
      && Json.of_string (Json.to_string n) = Ok n)

let test_json_unicode_degradation () =
  (* \u escapes above 0xFF degrade to '?'; at or below they are bytes *)
  Alcotest.(check bool) "U+0100 degrades" true
    (Json.of_string {|"\u0100"|} = Ok (Json.String "?"));
  Alcotest.(check bool) "U+00E9 is a byte" true
    (Json.of_string {|"\u00e9"|} = Ok (Json.String "\233"));
  Alcotest.(check bool) "escaped controls round trip" true
    (Json.of_string (Json.to_string (Json.String "\000\031\"\\")) =
     Ok (Json.String "\000\031\"\\"))

let test_json_malformed_offsets () =
  let expect_err s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error for %S carries an offset (%s)" s e)
          true (H.contains e "offset")
  in
  List.iter expect_err
    [ ""; "{"; "["; {|{"a":1|}; "[1,]"; {|{"a" 1}|}; {|"unterminated|};
      "truz"; "nul"; {|{"a":}|}; {|{:1}|}; "[1 2]"; {|"bad \escape"|} ]

(* -------------------------------------------------------- cache bound *)

let test_cache_eviction () =
  let c : int C.t = C.create ~max_entries:2 () in
  let get k = C.find_or_compute c ~key:k (fun () -> int_of_string k) in
  ignore (get "1");
  ignore (get "2");
  Alcotest.(check int) "no eviction while under the bound" 0 (C.evictions c);
  ignore (get "1");
  (* "1" was just touched, so "2" is the least-recently-used victim *)
  ignore (get "3");
  Alcotest.(check int) "one eviction" 1 (C.evictions c);
  Alcotest.(check int) "table stays bounded" 2 (C.length c);
  Alcotest.(check bool) "LRU victim dropped" true (C.find c "2" = None);
  Alcotest.(check bool) "recently touched entry kept" true (C.find c "1" = Some 1);
  let _, hit = get "2" in
  Alcotest.(check bool) "an evicted key recomputes" false hit;
  Alcotest.check_raises "max_entries < 1"
    (Invalid_argument "Cache.create: max_entries < 1") (fun () ->
      ignore (C.create ~max_entries:0 () : int C.t))

let test_cache_eviction_disk_backed () =
  (* Persisted files are never evicted: an evicted entry degrades to a
     disk hit, not a recomputation. *)
  let dir = Filename.temp_file "tt_cache_evict" "" in
  Sys.remove dir;
  let c : int C.t = C.create ~persist:dir ~max_entries:1 () in
  ignore (C.find_or_compute c ~key:"a" (fun () -> 1));
  ignore (C.find_or_compute c ~key:"b" (fun () -> 2));
  Alcotest.(check int) "insert over the bound evicts" 1 (C.evictions c);
  let v, hit =
    C.find_or_compute c ~key:"a" (fun () -> Alcotest.fail "recomputed")
  in
  Alcotest.(check bool) "evicted entry served from disk" true hit;
  Alcotest.(check int) "disk value intact" 1 v

(* ----------------------------------------------------------- manifest *)

let test_manifest_parse () =
  let t = some_tree 2 in
  let text =
    Printf.sprintf
      "# a comment\n\n\
       gen grid2d size=8 :: minmem; liu ; postorder\n\
       gen grid2d size=8 seed=42 :: minio policy=lsnf budget=25%%; minio policy=3 budget=100\n\
       tree \"%s\" :: schedule procs=2 mem=1.5  # trailing comment\n"
      (T.to_string t)
  in
  match Tt_engine.Manifest.parse text with
  | Error e -> Alcotest.failf "unexpected parse error: %s" e
  | Ok jobs ->
      Alcotest.(check int) "six jobs" 6 (List.length jobs);
      let specs = List.map (fun (j : J.t) -> J.spec_to_string j.J.spec) jobs in
      Alcotest.(check (list string)) "specs"
        [ "min-memory:minmem";
          "min-memory:liu";
          "min-memory:postorder";
          "min-io:LSNF:frac=0.25";
          "min-io:Best 3 Comb.:words=100";
          "schedule:procs=2:mem=1.5"
        ]
        specs;
      (* the two gen lines denote the same matrix: same tree digest *)
      let d (j : J.t) = J.tree_digest j.J.tree in
      Alcotest.(check string) "same source resolves to the same tree"
        (d (List.nth jobs 0)) (d (List.nth jobs 3));
      let last = List.nth jobs 5 in
      Alcotest.(check string) "tree literal round-trips"
        (T.to_string t) (T.to_string last.J.tree)

let test_manifest_errors () =
  let check_error text fragment =
    match Tt_engine.Manifest.parse text with
    | Ok _ -> Alcotest.failf "expected an error for %S" text
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S (got %S)" text fragment e)
          true (H.contains e fragment)
  in
  check_error "gen grid2d size=8" "line 1";
  check_error "\nfoo bar :: minmem" "line 2";
  check_error "gen grid2d :: fly" "unknown job";
  check_error "gen warp :: minmem" "unknown matrix kind";
  check_error "gen grid2d bogus=1 :: minmem" "unknown key";
  check_error "gen grid2d :: minio policy=nope" "unknown policy";
  (* every malformed line is reported, not just the first *)
  let text = "gen warp :: minmem\ngen grid2d size=6 :: minmem\ngen grid2d :: fly\n" in
  check_error text "line 1";
  check_error text "line 3";
  match Tt_engine.Manifest.parse text with
  | Ok _ -> Alcotest.fail "expected errors"
  | Error e ->
      Alcotest.(check int) "one entry per bad line" 2
        (List.length (String.split_on_char '\n' e))

let test_manifest_runs_through_engine () =
  let text =
    "gen grid2d size=6 :: minmem; minio policy=first-fit budget=0%\n\
     gen tridiagonal size=12 :: postorder\n"
  in
  match Tt_engine.Manifest.parse text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok jobs -> (
      let results = E.run (E.create ~domains:2 ()) jobs in
      Alcotest.(check int) "three results" 3 (List.length results);
      match results with
      | [ Ok (J.Memory { peak; _ }); Ok (J.Io { in_core; memory; io }); Ok (J.Memory _) ]
        ->
          Alcotest.(check int) "budget 0% is the working-set floor"
            (T.max_mem_req (List.nth jobs 1).J.tree)
            memory;
          Alcotest.(check bool) "floor budget is feasible" true (io <> None);
          Alcotest.(check int) "io job derives from the minmem peak" peak in_core
      | _ -> Alcotest.fail "unexpected result shapes")

let test_manifest_sched_jobs () =
  let text =
    "gen grid2d size=8 :: par-schedule algo=booking procs=4 mem=1.0; \
     par-schedule procs=2; par-schedule algo=split procs=4 mem=2.0\n\
     gen tridiagonal size=16 :: pareto procs=4 steps=5; pareto procs=2\n"
  in
  match Tt_engine.Manifest.parse text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok jobs ->
      let specs = List.map (fun (j : J.t) -> J.spec_to_string j.J.spec) jobs in
      Alcotest.(check (list string)) "specs"
        [ "par-schedule:booking:procs=4:mem=1";
          "par-schedule:booking:procs=2:mem=1.5";
          "par-schedule:split:procs=4:mem=2";
          "pareto:procs=4:steps=5";
          "pareto:procs=2:steps=8"
        ]
        specs;
      (* run them and round-trip every result through the telemetry JSON *)
      let results = E.run (E.create ~domains:2 ()) jobs in
      Alcotest.(check int) "five results" 5 (List.length results);
      List.iter
        (fun r ->
          (match r with
          | Ok (J.Par_sched { makespan; _ }) ->
              Alcotest.(check bool) "feasible at >= the optimum" true
                (makespan <> None)
          | Ok (J.Pareto { points; _ }) ->
              Alcotest.(check bool) "sweep produced points" true (points <> [])
          | Ok _ -> Alcotest.fail "unexpected outcome kind"
          | Error (J.Timed_out s) -> Alcotest.failf "job timed out after %.1fs" s
          | Error (J.Crashed msg) -> Alcotest.failf "job crashed: %s" msg);
          match J.result_of_json (J.result_to_json r) with
          | Ok r' ->
              Alcotest.(check bool) "json round trip" true
                (match (r, r') with
                | Ok a, Ok b -> J.equal_outcome a b
                | Error a, Error b -> a = b
                | _ -> false)
          | Error e -> Alcotest.failf "round trip: %s" e)
        results

let test_manifest_approx_jobs () =
  let text =
    "gen grid2d size=8 :: minmem-approx; minmem-approx cap=4 tol=0.1; minmem\n"
  in
  match Tt_engine.Manifest.parse text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok jobs -> (
      let specs = List.map (fun (j : J.t) -> J.spec_to_string j.J.spec) jobs in
      Alcotest.(check (list string)) "specs"
        [ "minmem-approx:cap=8:tol=0.01";
          "minmem-approx:cap=4:tol=0.1";
          "min-memory:minmem"
        ]
        specs;
      (* distinct params -> distinct content addresses *)
      Alcotest.(check bool) "params are part of the job identity" false
        (J.id (List.nth jobs 0) = J.id (List.nth jobs 1));
      let results = E.run (E.create ~domains:2 ()) jobs in
      match results with
      | [ Ok (J.Approx { lower = la; upper = ua; exact = ea; order; _ });
          Ok (J.Approx { lower = lb; upper = ub; exact = eb; _ });
          Ok (J.Memory { peak = opt; _ })
        ] ->
          (* this tree is far below the exact threshold, so the bounds
             collapse onto the exact optimum for any cap/tol *)
          List.iter
            (fun (lower, upper, exact) ->
              Alcotest.(check int) "lower is the exact optimum" opt lower;
              Alcotest.(check int) "upper is the exact optimum" opt upper;
              Alcotest.(check bool) "certified exact" true exact)
            [ (la, ua, ea); (lb, ub, eb) ];
          let tree = (List.nth jobs 0).J.tree in
          Alcotest.(check int) "order achieves the reported peak" ua
            (Tt_core.Traversal.peak tree order);
          List.iter
            (fun r ->
              match J.result_of_json (J.result_to_json r) with
              | Ok r' ->
                  Alcotest.(check bool) "json round trip" true
                    (J.equal_result r r')
              | Error e -> Alcotest.failf "round trip: %s" e)
            results
      | _ -> Alcotest.fail "unexpected result shapes")

let test_manifest_approx_errors () =
  let check_error text fragment =
    match Tt_engine.Manifest.parse text with
    | Ok _ -> Alcotest.failf "expected an error for %S" text
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S (got %S)" text fragment e)
          true (H.contains e fragment)
  in
  check_error "gen grid2d :: minmem-approx cap=1" "cap must be >= 2";
  check_error "gen grid2d :: minmem-approx tol=-0.5" "tol must be >= 0";
  check_error "gen grid2d :: minmem-approx steps=3" "unknown key"

let () =
  H.run "engine"
    [ ( "job",
        [ H.case "content addressing" test_job_id_content_addressing ] );
      ( "cache",
        [ H.case "hit/miss counters" test_cache_hit_miss_counters;
          H.case "exception not inserted" test_cache_exception_not_inserted;
          H.case "same tree twice" test_cache_same_tree_twice;
          H.case "shared minmem preprocessing" test_cache_shares_minmem_preprocessing;
          H.case "disk persistence" test_cache_persistence;
          H.case "bounded eviction" test_cache_eviction;
          H.case "eviction with a disk level" test_cache_eviction_disk_backed
        ] );
      ( "executor",
        [ H.case "determinism 1 vs N domains" test_determinism_across_domains;
          H.case "crash isolation" test_crash_isolated;
          H.case "submission order" test_results_in_submission_order
        ] );
      ( "telemetry",
        [ H.case "jsonl shape" test_telemetry_jsonl;
          H.case "json escaping" test_json_escaping;
          prop_json_round_trip;
          H.case "json unicode degradation" test_json_unicode_degradation;
          H.case "json malformed offsets" test_json_malformed_offsets
        ] );
      ( "manifest",
        [ H.case "parse" test_manifest_parse;
          H.case "errors" test_manifest_errors;
          H.case "end to end" test_manifest_runs_through_engine;
          H.case "sched jobs" test_manifest_sched_jobs;
          H.case "minmem-approx jobs" test_manifest_approx_jobs;
          H.case "minmem-approx errors" test_manifest_approx_errors
        ] )
    ]
