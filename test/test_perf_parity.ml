(* Differential tests for the hot-path optimizations: the indexed MinIO
   candidate set, the array-backed segment calculus, the postorder
   child-sort reuse and the Explore cut compaction must be
   {e behaviour-identical} to the straightforward implementations they
   replaced — same traversals, same tau vectors, same I/O volumes, same
   floats — since the benchmark digests in BENCH_CORE.json are compared
   across PRs. Each reference below is a verbatim transcription of the
   pre-optimization code. *)

module T = Tt_core.Tree
module Traversal = Tt_core.Traversal
module Io_schedule = Tt_core.Io_schedule
module Minio = Tt_core.Minio
module H = Helpers

(* the pre-optimization bottom-up order: polymorphic sort by decreasing
   depth (unstable within a level, unlike the counting sort that replaced
   it — the references prove the results do not depend on that order) *)
let seed_bottom_up t =
  let d = T.depth t in
  let order = Array.init (T.size t) (fun i -> i) in
  Array.sort (fun a b -> compare d.(b) d.(a)) order;
  order

(* --- reference MinIO: O(p) rescan + sort per deficit event -------------- *)

let ref_select policy s deficit =
  let total = Array.fold_left (fun acc (_, f) -> acc + f) 0 s in
  if total < deficit then None
  else begin
    let chosen = ref [] in
    let remaining = ref deficit in
    let available = Array.map (fun x -> (true, x)) s in
    let take i =
      let _, (_, f) = available.(i) in
      available.(i) <- (false, snd available.(i));
      chosen := i :: !chosen;
      remaining := !remaining - f
    in
    let lsnf_rest () =
      Array.iteri
        (fun i (free, (_, f)) -> if free && !remaining > 0 && f > 0 then take i)
        available
    in
    (match policy with
    | Minio.Lsnf -> lsnf_rest ()
    | Minio.First_fit -> begin
        let found = ref false in
        Array.iteri
          (fun i (free, (_, f)) ->
            if free && (not !found) && f >= !remaining then begin
              found := true;
              take i
            end)
          available;
        if not !found then lsnf_rest ()
      end
    | Minio.Best_fit ->
        let progress = ref true in
        while !remaining > 0 && !progress do
          let best = ref (-1) in
          let best_d = ref max_int in
          Array.iteri
            (fun i (free, (_, f)) ->
              if free && f > 0 then begin
                let d = abs (!remaining - f) in
                if d < !best_d then begin
                  best_d := d;
                  best := i
                end
              end)
            available;
          if !best < 0 then progress := false else take !best
        done;
        if !remaining > 0 then lsnf_rest ()
    | Minio.First_fill ->
        let progress = ref true in
        while !remaining > 0 && !progress do
          let found = ref (-1) in
          Array.iteri
            (fun i (free, (_, f)) ->
              if free && !found < 0 && f > 0 && f < !remaining then found := i)
            available;
          if !found < 0 then progress := false else take !found
        done;
        if !remaining > 0 then lsnf_rest ()
    | Minio.Best_fill ->
        let progress = ref true in
        while !remaining > 0 && !progress do
          let best = ref (-1) in
          let best_f = ref (-1) in
          Array.iteri
            (fun i (free, (_, f)) ->
              if free && f > 0 && f < !remaining && f > !best_f then begin
                best_f := f;
                best := i
              end)
            available;
          if !best < 0 then progress := false else take !best
        done;
        if !remaining > 0 then lsnf_rest ()
    | Minio.Best_k k ->
        let progress = ref true in
        while !remaining > 0 && !progress do
          let front = ref [] in
          Array.iteri
            (fun i (free, (_, f)) ->
              if free && f > 0 && List.length !front < k then front := (i, f) :: !front)
            available;
          let front = Array.of_list (List.rev !front) in
          let m = Array.length front in
          if m = 0 then progress := false
          else begin
            let best_mask = ref 0 and best_d = ref max_int and best_sum = ref 0 in
            for mask = 1 to (1 lsl m) - 1 do
              let sum = ref 0 in
              for b = 0 to m - 1 do
                if mask land (1 lsl b) <> 0 then sum := !sum + snd front.(b)
              done;
              let d = abs (!remaining - !sum) in
              if d < !best_d || (d = !best_d && !sum > !best_sum) then begin
                best_d := d;
                best_sum := !sum;
                best_mask := mask
              end
            done;
            if !best_sum = 0 then progress := false
            else
              for b = 0 to m - 1 do
                if !best_mask land (1 lsl b) <> 0 then take (fst front.(b))
              done
          end
        done;
        if !remaining > 0 then lsnf_rest ());
    Some !chosen
  end

let ref_minio_run tree ~memory ~order policy =
  let p = T.size tree in
  let pos = Array.make p 0 in
  Array.iteri (fun step i -> pos.(i) <- step) order;
  let tau = Array.make p Io_schedule.never in
  let resident = Array.make p false in
  let evicted = Array.make p false in
  resident.(tree.T.root) <- true;
  let mavail = ref (memory - tree.T.f.(tree.T.root)) in
  let feasible = ref true in
  let step = ref 0 in
  while !feasible && !step < p do
    let k = !step in
    let j = order.(k) in
    let need = T.mem_req tree j - if evicted.(j) then 0 else tree.T.f.(j) in
    if need > !mavail then begin
      let deficit = need - !mavail in
      let cand = ref [] in
      for i = 0 to p - 1 do
        if resident.(i) && i <> j && tree.T.f.(i) > 0 then
          cand := (i, tree.T.f.(i)) :: !cand
      done;
      let s =
        Array.of_list (List.sort (fun (a, _) (b, _) -> compare pos.(b) pos.(a)) !cand)
      in
      match ref_select policy s deficit with
      | None -> feasible := false
      | Some indices ->
          List.iter
            (fun idx ->
              let i, fi = s.(idx) in
              resident.(i) <- false;
              evicted.(i) <- true;
              tau.(i) <- k;
              mavail := !mavail + fi)
            indices
    end;
    if !feasible then begin
      if evicted.(j) then begin
        evicted.(j) <- false;
        resident.(j) <- false;
        mavail := !mavail - tree.T.f.(j)
      end
      else resident.(j) <- false;
      mavail := !mavail + tree.T.f.(j) - T.sum_children_f tree j;
      Array.iter (fun c -> resident.(c) <- true) tree.T.children.(j);
      incr step
    end
  done;
  if !feasible then Some { Io_schedule.order; tau } else None

let ref_divisible_lower_bound tree ~memory ~order =
  let p = T.size tree in
  let pos = Array.make p 0 in
  Array.iteri (fun step i -> pos.(i) <- step) order;
  let resident = Array.make p 0.0 in
  resident.(tree.T.root) <- float_of_int tree.T.f.(tree.T.root);
  let resident_total = ref resident.(tree.T.root) in
  let io = ref 0.0 in
  let feasible = ref true in
  let step = ref 0 in
  while !feasible && !step < p do
    let j = order.(!step) in
    let fj = float_of_int tree.T.f.(j) in
    let bring = fj -. resident.(j) in
    resident.(j) <- fj;
    resident_total := !resident_total +. bring;
    let working = float_of_int (tree.T.n.(j) + T.sum_children_f tree j) +. fj in
    let excess = !resident_total -. fj +. working -. float_of_int memory in
    if excess > 1e-9 then begin
      let cand = ref [] in
      for i = 0 to p - 1 do
        if i <> j && resident.(i) > 0.0 then cand := i :: !cand
      done;
      let cand = List.sort (fun a b -> compare pos.(b) pos.(a)) !cand in
      let remaining = ref excess in
      List.iter
        (fun i ->
          if !remaining > 1e-9 then begin
            let take = min resident.(i) !remaining in
            resident.(i) <- resident.(i) -. take;
            resident_total := !resident_total -. take;
            io := !io +. take;
            remaining := !remaining -. take
          end)
        cand;
      if !remaining > 1e-9 then feasible := false
    end;
    if !feasible then begin
      resident_total := !resident_total -. resident.(j);
      resident.(j) <- 0.0;
      Array.iter
        (fun c ->
          resident.(c) <- float_of_int tree.T.f.(c);
          resident_total := !resident_total +. resident.(c))
        tree.T.children.(j);
      incr step
    end
  done;
  if !feasible then Some !io else None

(* --- reference segment calculus: the list-backed implementation --------- *)

module Ref_seg = struct
  type seg = { hill : int; valley : int; nodes : int list }

  let cost s = s.hill - s.valley

  let fuse a b =
    { hill = max a.hill b.hill; valley = b.valley; nodes = a.nodes @ b.nodes }

  let canonicalize segments =
    let push stack s =
      let rec go stack s =
        match stack with
        | top :: rest when cost s >= cost top || top.valley >= s.valley ->
            go rest (fuse top s)
        | _ -> s :: stack
      in
      go stack s
    in
    List.rev (List.fold_left push [] segments)

  let merge profiles =
    match profiles with
    | [] -> []
    | [ p ] -> p
    | _ ->
        let arr = Array.of_list (List.map Array.of_list profiles) in
        let k = Array.length arr in
        let idx = Array.make k 0 in
        let contrib = Array.make k 0 in
        let total = ref 0 in
        let heap = Tt_util.Int_heap.create k in
        for c = 0 to k - 1 do
          if Array.length arr.(c) > 0 then
            Tt_util.Int_heap.insert heap c (-cost arr.(c).(0))
        done;
        let out = ref [] in
        while not (Tt_util.Int_heap.is_empty heap) do
          let c, _ = Tt_util.Int_heap.pop_min heap in
          let s = arr.(c).(idx.(c)) in
          let base = !total - contrib.(c) in
          out :=
            { hill = s.hill + base; valley = s.valley + base; nodes = s.nodes }
            :: !out;
          total := base + s.valley;
          contrib.(c) <- s.valley;
          idx.(c) <- idx.(c) + 1;
          if idx.(c) < Array.length arr.(c) then
            Tt_util.Int_heap.insert heap c (-cost arr.(c).(idx.(c)))
        done;
        canonicalize (List.rev !out)

  let append_parent prof ~hill ~valley ~node =
    canonicalize (prof @ [ { hill; valley; nodes = [ node ] } ])

  let peak prof = List.fold_left (fun acc s -> max acc s.hill) 0 prof
  let nodes prof = List.concat_map (fun s -> s.nodes) prof

  (* the list-backed Liu, using the reference calculus end to end *)
  let liu_run t =
    let p = T.size t in
    let prof = Array.make p [] in
    Array.iter
      (fun i ->
        let merged =
          merge (Array.to_list (Array.map (fun c -> prof.(c)) t.T.children.(i)))
        in
        prof.(i) <-
          append_parent merged ~hill:(T.mem_req t i) ~valley:t.T.f.(i) ~node:i)
      (seed_bottom_up t);
    let root_profile = prof.(t.T.root) in
    (peak root_profile, Array.of_list (List.rev (nodes root_profile)))
end

(* convert an optimized profile into the reference shape for comparison *)
let seg_shape prof =
  List.map
    (fun (s : Tt_core.Segments.segment) ->
      { Ref_seg.hill = s.hill;
        valley = s.valley;
        nodes = Tt_core.Segments.seq_to_list s.seq
      })
    (Tt_core.Segments.to_list prof)

(* --- reference postorder: child lists re-sorted at every use ------------ *)

let ref_postorder_run t =
  let p = T.size t in
  let bottom_up = seed_bottom_up t in
  let sorted_children peaks i =
    let cs = Array.copy t.T.children.(i) in
    Array.sort
      (fun a b -> compare (peaks.(a) - t.T.f.(a)) (peaks.(b) - t.T.f.(b)))
      cs;
    cs
  in
  let peaks = Array.make p 0 in
  Array.iter
    (fun i ->
      let cs = sorted_children peaks i in
      let best = ref (T.mem_req t i) in
      let pending = ref (Array.fold_left (fun acc c -> acc + t.T.f.(c)) 0 cs) in
      Array.iter
        (fun c ->
          pending := !pending - t.T.f.(c);
          let v = peaks.(c) + !pending in
          if v > !best then best := v)
        cs;
      peaks.(i) <- !best)
    bottom_up;
  let order = Array.make p (-1) in
  let k = ref 0 in
  let stack = ref [ t.T.root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
        stack := rest;
        order.(!k) <- i;
        incr k;
        let cs = sorted_children peaks i in
        for j = Array.length cs - 1 downto 0 do
          stack := cs.(j) :: !stack
        done
  done;
  (peaks.(t.T.root), order)

(* --- instances and memory levels ---------------------------------------- *)

let hash_weight i m = 1 + (i * 2654435761) land max_int mod m

let reweight ~max_f t =
  T.map_weights ~f:(fun i -> hash_weight i max_f) ~n:(fun i -> hash_weight (i + 1) 7 - 1) t

let family_instances =
  let module I = Tt_core.Instances in
  [ ("chain-stair", reweight ~max_f:401 (I.chain ~length:120 ~f:1 ~n:0));
    ("binary-rand", reweight ~max_f:401 (I.complete_binary ~levels:6 ~f:1 ~n:0));
    ("star", I.star ~branches:60 ~f_root:3 ~f_leaf:7 ~n:5);
    ("harpoon", I.harpoon_nested ~branches:2 ~levels:5 ~m:64 ~eps:3);
    ("caterpillar", reweight ~max_f:97 (I.caterpillar ~length:40 ~leaves_per_node:3 ~f:7 ~n:3));
    ("random", T.random ~rng:(Tt_util.Rng.create 97) ~size:150 ~max_f:50 ~max_n:9)
  ]

(* memory levels from below the feasibility floor up to the peak *)
let memory_levels tree order =
  let floor = T.max_mem_req tree in
  let peak = Traversal.peak tree order in
  List.sort_uniq compare
    [ floor - 1; floor; floor + ((peak - floor + 3) / 4); (floor + peak) / 2; peak ]

let same_schedule (a : Io_schedule.t option) (b : Io_schedule.t option) =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> a.Io_schedule.order = b.Io_schedule.order && a.tau = b.tau
  | _ -> false

let orders_for tree =
  [ Traversal.top_down_order tree;
    Traversal.random_order ~rng:(Tt_util.Rng.create 13) tree
  ]

let test_minio_families () =
  List.iter
    (fun (name, tree) ->
      List.iter
        (fun order ->
          List.iter
            (fun memory ->
              List.iter
                (fun (pname, policy) ->
                  let expect = ref_minio_run tree ~memory ~order policy in
                  let got = Minio.run tree ~memory ~order policy in
                  Alcotest.(check bool)
                    (Printf.sprintf "%s/%s mem=%d" name pname memory)
                    true
                    (same_schedule expect got))
                Minio.all_policies;
              let lb_ref = ref_divisible_lower_bound tree ~memory ~order in
              let lb = Minio.divisible_lower_bound tree ~memory ~order in
              Alcotest.(check bool)
                (Printf.sprintf "%s/divisible-lb mem=%d" name memory)
                true
                (lb_ref = lb))
            (memory_levels tree order))
        (orders_for tree))
    family_instances

let prop_minio_random =
  H.qcheck ~count:150 "minio policies match the rescan reference"
    (H.arb_tree_with_order ~size_max:40 ())
    (fun (tree, order) ->
      List.for_all
        (fun memory ->
          List.for_all
            (fun (_, policy) ->
              same_schedule
                (ref_minio_run tree ~memory ~order policy)
                (Minio.run tree ~memory ~order policy))
            Minio.all_policies
          && ref_divisible_lower_bound tree ~memory ~order
             = Minio.divisible_lower_bound tree ~memory ~order)
        (memory_levels tree order))

(* every eviction the heuristics make must still be a valid schedule *)
let prop_minio_schedules_valid =
  H.qcheck ~count:100 "optimized schedules stay valid"
    (H.arb_tree_with_order ~size_max:25 ())
    (fun (tree, order) ->
      List.for_all
        (fun memory ->
          List.for_all
            (fun (_, policy) ->
              match Minio.run tree ~memory ~order policy with
              | None -> false
              | Some s -> (
                  match Io_schedule.check tree ~memory s with
                  | Io_schedule.Feasible _ -> true
                  | _ -> false))
            Minio.all_policies)
        (List.filter (fun m -> m >= T.max_mem_req tree) (memory_levels tree order)))

let prop_segments_merge_reference =
  H.qcheck ~count:200 "array merge matches the list-backed reference"
    (QCheck.pair QCheck.(int_bound 1_000_000) QCheck.(1 -- 5))
    (fun (seed, k) ->
      let rng = Tt_util.Rng.create seed in
      let raw () =
        let len = Tt_util.Rng.int_incl rng 0 8 in
        let v = ref 0 in
        List.init len (fun i ->
            let hill = !v + Tt_util.Rng.int_incl rng 0 10 in
            let valley = Tt_util.Rng.int_incl rng 0 hill in
            v := valley;
            { Ref_seg.hill; valley; nodes = [ (i * 10) + Tt_util.Rng.int_incl rng 0 9 ] })
      in
      let raws = List.init k (fun _ -> raw ()) in
      let to_opt raw =
        Tt_core.Segments.canonicalize
          (List.map
             (fun (s : Ref_seg.seg) ->
               { Tt_core.Segments.hill = s.hill;
                 valley = s.valley;
                 seq =
                   List.fold_left
                     (fun acc x -> Tt_core.Segments.seq_cat acc (Tt_core.Segments.seq_single x))
                     Tt_core.Segments.seq_empty s.nodes
               })
             raw)
      in
      let expect = Ref_seg.merge (List.map Ref_seg.canonicalize raws) in
      let got = Tt_core.Segments.merge (List.map to_opt raws) in
      seg_shape got = expect)

let test_liu_families () =
  List.iter
    (fun (name, tree) ->
      let em, eo = Ref_seg.liu_run tree in
      let gm, go = Tt_core.Liu_exact.run tree in
      Alcotest.(check int) (name ^ " mem") em gm;
      Alcotest.(check (array int)) (name ^ " order") eo go)
    family_instances

let prop_liu_random =
  H.qcheck ~count:150 "liu matches the list-backed reference"
    (H.arb_tree ~size_max:40 ())
    (fun tree -> Ref_seg.liu_run tree = Tt_core.Liu_exact.run tree)

let test_postorder_families () =
  List.iter
    (fun (name, tree) ->
      let em, eo = ref_postorder_run tree in
      let gm, go = Tt_core.Postorder_opt.run tree in
      Alcotest.(check int) (name ^ " mem") em gm;
      Alcotest.(check (array int)) (name ^ " order") eo go)
    family_instances

let prop_postorder_random =
  H.qcheck ~count:200 "postorder matches the re-sorting reference"
    (H.arb_tree ~size_max:40 ())
    (fun tree -> ref_postorder_run tree = Tt_core.Postorder_opt.run tree)

(* Explore's cut compaction fires on wide nodes (star: every leaf explored
   in the first pass leaves only tombstones). The optimum and traversal
   validity pin its behaviour. *)
let test_minmem_wide () =
  List.iter
    (fun (name, tree) ->
      let mem, order = Tt_core.Minmem.run tree in
      H.check_valid_traversal tree order;
      Alcotest.(check int) (name ^ " peak") mem (Traversal.peak tree order);
      Alcotest.(check int) (name ^ " optimal") (Tt_core.Liu_exact.min_memory tree) mem)
    family_instances

(* --- the supporting structures: Ordered_set and Dynarray compaction ----- *)

(* model-based test against a plain sorted list; capacities around
   multiples of the 63-bit word size exercise the tower boundaries, and
   queries beyond the universe exercise the clamping of [pred] *)
let prop_ordered_set_model =
  H.qcheck ~count:300 "Ordered_set matches a sorted-list model"
    QCheck.(pair (int_bound 1_000_000) (1 -- 160))
    (fun (seed, n) ->
      let module Os = Tt_util.Ordered_set in
      let rng = Tt_util.Rng.create seed in
      (* bias towards the word-size boundaries *)
      let n = match n mod 5 with 0 -> 63 | 1 -> 126 | _ -> n in
      let os = Os.create n in
      let model = ref [] in
      let ok = ref true in
      let check b = if not b then ok := false in
      for _ = 1 to 200 do
        let x = Tt_util.Rng.int_incl rng 0 (n - 1) in
        (match Tt_util.Rng.int_incl rng 0 2 with
        | 0 ->
            Os.add os x;
            if not (List.mem x !model) then
              model := List.sort compare (x :: !model)
        | 1 ->
            Os.remove os x;
            model := List.filter (fun y -> y <> x) !model
        | _ -> ());
        let q = Tt_util.Rng.int_incl rng (-1) (n + 2) in
        let largest_below i =
          List.fold_left (fun acc y -> if y < i then Some y else acc) None !model
        in
        let smallest_above i =
          List.fold_left
            (fun acc y -> match acc with Some _ -> acc | None -> if y > i then Some y else None)
            None !model
        in
        check (Os.cardinal os = List.length !model);
        check (Os.is_empty os = (!model = []));
        check (Os.mem os x = List.mem x !model);
        check (Os.max_elt os = largest_below n);
        check (Os.min_elt os = smallest_above (-1));
        check (Os.pred os q = largest_below (min q n));
        check (Os.succ os q = smallest_above q);
        check (Os.to_desc_list os = List.rev !model)
      done;
      !ok)

(* the regression that motivated the clamp fix: [pred] at or above the
   universe bound when the bound is an exact multiple of the word size *)
let test_ordered_set_pred_clamp () =
  let module Os = Tt_util.Ordered_set in
  List.iter
    (fun n ->
      let os = Os.create n in
      Alcotest.(check (option int)) "pred empty" None (Os.pred os n);
      Os.add os (n - 1);
      Os.add os 0;
      Alcotest.(check (option int)) "pred at bound" (Some (n - 1)) (Os.pred os n);
      Alcotest.(check (option int)) "pred above bound" (Some (n - 1)) (Os.pred os (n + 5));
      Alcotest.(check (option int)) "succ at top" None (Os.succ os (n - 1));
      Alcotest.(check (option int)) "succ clamps negative" (Some 0) (Os.succ os (-7)))
    [ 1; 62; 63; 64; 126; 189; 200 ]

let prop_filter_in_place_stable =
  H.qcheck ~count:300 "Dynarray filter_in_place = List.filter"
    (H.arb_int_list ~len:60 ~max_v:20 ())
    (fun l ->
      let module D = Tt_util.Dynarray_compat in
      let d = D.create () in
      List.iter (fun x -> D.add_last d x) l;
      D.filter_in_place (fun x -> x mod 3 <> 0) d;
      let got = ref [] in
      D.iter (fun x -> got := x :: !got) d;
      List.rev !got = List.filter (fun x -> x mod 3 <> 0) l)

let () =
  H.run "perf_parity"
    [ ( "minio",
        [ H.case "family instances x policies x memory" test_minio_families;
          prop_minio_random;
          prop_minio_schedules_valid
        ] );
      ("segments", [ prop_segments_merge_reference ]);
      ( "liu",
        [ H.case "family instances" test_liu_families; prop_liu_random ] );
      ( "postorder",
        [ H.case "family instances" test_postorder_families; prop_postorder_random ] );
      ("minmem", [ H.case "wide cuts" test_minmem_wide ]);
      ( "structures",
        [ prop_ordered_set_model;
          H.case "pred clamp at word-size bounds" test_ordered_set_pred_clamp;
          prop_filter_in_place_stable
        ] )
    ]
