(* Tests for the tt_sched parallel scheduling tier: the booking
   guarantee (never a deadlock at the sequential optimum), the splitting
   scheduler, the Pareto sweep, and — adversarially — the independent
   validator, which must reject every mutation class applied to a valid
   schedule. *)

module T = Tt_core.Tree
module P = Tt_core.Parallel
module S = Tt_sched
module H = Helpers

let arb_tree_procs = QCheck.pair (H.arb_tree ~size_max:14 ()) (QCheck.int_range 1 4)

let event_of_node (s : P.schedule) node =
  let found = ref None in
  Array.iter (fun (e : P.event) -> if e.P.node = node then found := Some e) s.P.events;
  Option.get !found

let start_of_node s node = (event_of_node s node).P.start

(* --- booking: the guarantee ---------------------------------------------- *)

let prop_booking_never_deadlocks =
  H.qcheck ~count:300 "booking succeeds at exactly the sequential optimum"
    arb_tree_procs (fun (t, procs) ->
      let work = S.Work.default t in
      let memory = Tt_core.Minmem.min_memory t in
      match S.Booking.run t ~procs ~memory ~work with
      | None -> false
      | Some (order, s) -> (
          match S.Validate.check ~activation:order t ~memory ~work s with
          | Ok () -> true
          | Error _ -> false))

let prop_greedy_fallback_never_fails =
  H.qcheck ~count:300
    "list_schedule never returns None for memory >= the optimum"
    arb_tree_procs (fun (t, procs) ->
      let work = S.Work.default t in
      let memory = Tt_core.Minmem.min_memory t in
      match P.list_schedule t ~procs ~memory ~work with
      | None -> false
      | Some s ->
          s.P.peak_memory <= memory
          && S.Validate.check t ~memory ~work s = Ok ())

let test_booking_corpus () =
  (* the guarantee on real assembly trees, not just random ones *)
  let corpus =
    Tt_workloads.Dataset.small_corpus ~seed:42
    |> List.filter (fun (i : Tt_workloads.Dataset.instance) -> T.size i.tree <= 150)
  in
  Alcotest.(check bool) "corpus has small instances" true (List.length corpus >= 3);
  List.iter
    (fun (inst : Tt_workloads.Dataset.instance) ->
      let t = inst.tree in
      let work = S.Work.default t in
      let memory = Tt_core.Minmem.min_memory t in
      match S.Booking.run t ~procs:4 ~memory ~work with
      | None -> Alcotest.failf "booking deadlocked on %s at the optimum" inst.name
      | Some (order, s) -> (
          match S.Validate.check ~activation:order t ~memory ~work s with
          | Ok () -> ()
          | Error v ->
              Alcotest.failf "%s: %s" inst.name (S.Validate.violation_to_string v)))
    corpus

let test_booking_below_optimum () =
  (* below the activation order's peak the loop must report None, not spin *)
  let t = Tt_core.Instances.star ~branches:4 ~f_root:2 ~f_leaf:3 ~n:1 in
  let work = S.Work.default t in
  let memory = Tt_core.Minmem.min_memory t - 1 in
  match S.Booking.run t ~procs:2 ~memory ~work with
  | None -> ()
  | Some _ -> Alcotest.fail "booking claimed success below the optimum"

(* --- splitting ------------------------------------------------------------ *)

let prop_split_validates =
  H.qcheck ~count:300 "split schedules pass the validator at their own peak"
    arb_tree_procs (fun (t, procs) ->
      let work = S.Work.default t in
      let s = S.Split.run t ~procs ~work in
      S.Validate.check t ~memory:s.P.peak_memory ~work s = Ok ())

let prop_split_one_proc_sequential =
  H.qcheck ~count:200 "one processor degenerates to the sequential makespan"
    (H.arb_tree ~size_max:14 ()) (fun t ->
      let work = S.Work.default t in
      let s = S.Split.run t ~procs:1 ~work in
      s.P.makespan = P.sequential_makespan t ~work)

let prop_split_respects_bounds =
  H.qcheck ~count:200 "critical path <= split makespan <= sequential sum"
    arb_tree_procs (fun (t, procs) ->
      let work = S.Work.default t in
      let s = S.Split.run t ~procs ~work in
      P.critical_path t ~work <= s.P.makespan
      && s.P.makespan <= P.sequential_makespan t ~work)

(* --- Pareto sweep --------------------------------------------------------- *)

let prop_pareto_deterministic =
  H.qcheck ~count:50 "two identical sweeps produce the same digest"
    (QCheck.pair (H.arb_tree ~size_max:10 ()) (QCheck.int_range 1 4))
    (fun (t, procs) ->
      let work = S.Work.default t in
      let a = S.Pareto.sweep ~steps:4 t ~procs ~work in
      let b = S.Pareto.sweep ~steps:4 t ~procs ~work in
      S.Pareto.digest a = S.Pareto.digest b)

let prop_pareto_frontier_non_dominated =
  H.qcheck ~count:50 "the frontier is the non-dominated subset"
    (QCheck.pair (H.arb_tree ~size_max:10 ()) (QCheck.int_range 1 4))
    (fun (t, procs) ->
      let work = S.Work.default t in
      let points = S.Pareto.sweep ~steps:4 t ~procs ~work in
      let front = S.Pareto.frontier points in
      let dominates (a : S.Pareto.point) (b : S.Pareto.point) =
        a.peak <= b.peak && a.makespan <= b.makespan
        && (a.peak < b.peak || a.makespan < b.makespan)
      in
      (* no sweep point strictly dominates a frontier point … *)
      List.for_all
        (fun fp -> not (List.exists (fun p -> dominates p fp) points))
        front
      (* … and the frontier is sorted: peaks up, makespans strictly down *)
      && fst
           (List.fold_left
              (fun (ok, prev) (p : S.Pareto.point) ->
                match prev with
                | None -> (ok, Some p)
                | Some (q : S.Pareto.point) ->
                    (ok && q.peak < p.peak && q.makespan > p.makespan, Some p))
              (true, None) front))

let prop_pareto_budgets_span =
  H.qcheck ~count:100 "budgets start at the optimum and rise monotonically"
    (H.arb_tree ~size_max:12 ()) (fun t ->
      let b = S.Pareto.budgets t ~steps:5 in
      let lo = Tt_core.Minmem.min_memory t in
      let hi = max lo (T.total_f t) in
      Array.length b >= 1
      && b.(0) = lo
      && b.(Array.length b - 1) <= hi
      && fst
           (Array.fold_left
              (fun (ok, prev) v -> ((ok && v > prev), v))
              (true, lo - 1) b))

(* --- the validator under mutation ----------------------------------------
   Each property takes a schedule the validator accepts, applies one
   mutation class, and demands rejection — ideally with the violation
   that names the broken rule. *)

let booking_fixture (t, procs) =
  let work = S.Work.default t in
  let memory = Tt_core.Minmem.min_memory t in
  match S.Booking.run t ~procs ~memory ~work with
  | None -> QCheck.assume_fail ()
  | Some (order, s) -> (order, s, work)

let prop_validator_rejects_precedence_break =
  H.qcheck ~count:200 "moving a child onto its parent's start is a precedence break"
    arb_tree_procs (fun (t, procs) ->
      QCheck.assume (T.size t >= 2);
      let _, s, work = booking_fixture (t, procs) in
      (* the last event of a booking schedule is never the root (the root
         starts first in any out-tree traversal), so it has a parent *)
      let q = Array.length s.P.events in
      let victim = s.P.events.(q - 1).P.node in
      QCheck.assume (t.T.parent.(victim) >= 0);
      let parent = t.T.parent.(victim) in
      let parent_start =
        let found = ref 0 in
        Array.iter
          (fun (e : P.event) -> if e.P.node = parent then found := e.P.start)
          s.P.events;
        !found
      in
      let bad =
        { s with
          P.events =
            Array.map
              (fun (e : P.event) ->
                if e.P.node = victim then
                  { e with P.start = parent_start;
                    finish = parent_start + work victim }
                else e)
              s.P.events
        }
      in
      match S.Validate.check t ~memory:max_int ~work bad with
      | Error (S.Validate.Precedence _) -> true
      | _ -> false)

let prop_validator_rejects_budget_shrink =
  H.qcheck ~count:200 "shrinking the budget below the observed peak is a memory violation"
    arb_tree_procs (fun (t, procs) ->
      let _, s, work = booking_fixture (t, procs) in
      let peak = S.Validate.peak_usage t s in
      QCheck.assume (peak > 0);
      match S.Validate.check t ~memory:(peak - 1) ~work s with
      | Error (S.Validate.Memory _) -> true
      | _ -> false)

let prop_validator_rejects_proc_overlap =
  H.qcheck ~count:200 "collapsing processors onto one is an overlap"
    (QCheck.pair (H.arb_tree ~size_max:14 ()) (QCheck.int_range 2 4))
    (fun (t, procs) ->
      let work = S.Work.default t in
      let memory = (4 * T.total_f t) + (4 * T.max_mem_req t) + 16 in
      let s =
        match P.list_schedule t ~procs ~memory ~work with
        | Some s -> s
        | None -> QCheck.assume_fail ()
      in
      (* only meaningful when two tasks actually run concurrently *)
      let overlapping =
        Array.exists
          (fun (a : P.event) ->
            Array.exists
              (fun (b : P.event) ->
                a.P.node <> b.P.node && a.P.start < b.P.finish
                && b.P.start < a.P.finish)
              s.P.events)
          s.P.events
      in
      QCheck.assume overlapping;
      let bad =
        { s with
          P.events = Array.map (fun (e : P.event) -> { e with P.proc = 0 }) s.P.events
        }
      in
      match S.Validate.check t ~memory ~work bad with
      | Error (S.Validate.Overlap _) -> true
      | _ -> false)

let prop_validator_rejects_booking_perturbation =
  H.qcheck ~count:200 "perturbing the activation order breaks the booking discipline"
    arb_tree_procs (fun (t, procs) ->
      QCheck.assume (T.size t >= 3);
      let order, s, work = booking_fixture (t, procs) in
      let memory = Tt_core.Minmem.min_memory t in
      let start_of = Array.make (T.size t) 0 in
      Array.iter (fun (e : P.event) -> start_of.(e.P.node) <- e.P.start) s.P.events;
      (* find adjacent positions that may be swapped while remaining a
         valid traversal (not parent/child) and whose starts strictly
         rise — the swapped order then reads decreasing starts *)
      let p = Array.length order in
      let k = ref (-1) in
      for i = 1 to p - 1 do
        if
          !k < 0
          && t.T.parent.(order.(i)) <> order.(i - 1)
          && start_of.(order.(i)) > start_of.(order.(i - 1))
        then k := i
      done;
      QCheck.assume (!k >= 0);
      let perturbed = Array.copy order in
      let tmp = perturbed.(!k) in
      perturbed.(!k) <- perturbed.(!k - 1);
      perturbed.(!k - 1) <- tmp;
      match S.Validate.check ~activation:perturbed t ~memory ~work s with
      | Error (S.Validate.Booking _) -> true
      | _ -> false)

let prop_validator_rejects_event_swap =
  H.qcheck ~count:200 "swapping a parent/child pair of time slots is rejected"
    arb_tree_procs (fun (t, procs) ->
      QCheck.assume (T.size t >= 2);
      let _, s, work = booking_fixture (t, procs) in
      let q = Array.length s.P.events in
      let victim = s.P.events.(q - 1).P.node in
      QCheck.assume (t.T.parent.(victim) >= 0);
      let parent = t.T.parent.(victim) in
      QCheck.assume (start_of_node s parent < start_of_node s victim);
      let bad =
        { s with
          P.events =
            Array.map
              (fun (e : P.event) ->
                if e.P.node = victim then { (event_of_node s parent) with P.node = victim }
                else if e.P.node = parent then
                  { (event_of_node s victim) with P.node = parent }
                else e)
              s.P.events
        }
      in
      S.Validate.check t ~memory:max_int ~work bad <> Ok ())

let prop_validator_rejects_duplicate_node =
  H.qcheck ~count:200 "duplicating a node is malformed" arb_tree_procs
    (fun (t, procs) ->
      QCheck.assume (T.size t >= 2);
      let _, s, work = booking_fixture (t, procs) in
      let first = s.P.events.(0).P.node in
      let bad =
        { s with
          P.events =
            Array.mapi
              (fun k (e : P.event) ->
                if k = 1 then { e with P.node = first } else e)
              s.P.events
        }
      in
      match S.Validate.check t ~memory:max_int ~work bad with
      | Error (S.Validate.Malformed _) -> true
      | _ -> false)

let () =
  H.run "sched"
    [ ( "booking",
        [ prop_booking_never_deadlocks;
          prop_greedy_fallback_never_fails;
          H.case "corpus guarantee" test_booking_corpus;
          H.case "below optimum" test_booking_below_optimum
        ] );
      ( "split",
        [ prop_split_validates;
          prop_split_one_proc_sequential;
          prop_split_respects_bounds
        ] );
      ( "pareto",
        [ prop_pareto_deterministic;
          prop_pareto_frontier_non_dominated;
          prop_pareto_budgets_span
        ] );
      ( "validator mutations",
        [ prop_validator_rejects_precedence_break;
          prop_validator_rejects_budget_shrink;
          prop_validator_rejects_proc_overlap;
          prop_validator_rejects_booking_perturbation;
          prop_validator_rejects_event_swap;
          prop_validator_rejects_duplicate_node
        ] )
    ]
