(* Unit and property tests for the tt_util containers. *)

module D = Tt_util.Dynarray_compat
module H = Helpers

(* ------------------------------------------------------------- dynarray *)

let test_dynarray_basic () =
  let a = D.create () in
  Alcotest.(check bool) "empty" true (D.is_empty a);
  D.add_last a 1;
  D.add_last a 2;
  D.add_last a 3;
  Alcotest.(check int) "length" 3 (D.length a);
  Alcotest.(check int) "get 0" 1 (D.get a 0);
  Alcotest.(check int) "last" 3 (D.last a);
  D.set a 1 9;
  Alcotest.(check (list int)) "to_list" [ 1; 9; 3 ] (D.to_list a);
  Alcotest.(check int) "pop" 3 (D.pop_last a);
  Alcotest.(check int) "length after pop" 2 (D.length a);
  D.clear a;
  Alcotest.(check bool) "cleared" true (D.is_empty a)

let test_dynarray_errors () =
  let a = D.of_list [ 1; 2 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Dynarray_compat.get: index 5 out of [0,2)")
    (fun () -> ignore (D.get a 5));
  let e = D.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Dynarray_compat.pop_last: empty")
    (fun () -> ignore (D.pop_last e));
  Alcotest.check_raises "make negative" (Invalid_argument "Dynarray_compat.make")
    (fun () -> ignore (D.make (-1) 0))

let test_dynarray_append () =
  let a = D.of_list [ 1; 2 ] and b = D.of_list [ 3; 4; 5 ] in
  D.append a b;
  Alcotest.(check (list int)) "append" [ 1; 2; 3; 4; 5 ] (D.to_list a);
  D.append_array a [| 6 |];
  Alcotest.(check (list int)) "append_array" [ 1; 2; 3; 4; 5; 6 ] (D.to_list a)

let prop_dynarray_model =
  H.qcheck "dynarray behaves like a list" (H.arb_int_list ())
    (fun l ->
      let a = D.create () in
      List.iter (D.add_last a) l;
      D.to_list a = l
      && D.length a = List.length l
      && Array.to_list (D.to_array a) = l
      && D.fold_left (fun acc x -> acc + x) 0 a = List.fold_left ( + ) 0 l
      && D.to_list (D.map succ a) = List.map succ l)

let prop_dynarray_push_pop =
  H.qcheck "dynarray push/pop round trip" (H.arb_int_list ())
    (fun l ->
      let a = D.create () in
      List.iter (D.add_last a) l;
      let popped = List.init (List.length l) (fun _ -> D.pop_last a) in
      popped = List.rev l && D.is_empty a)

(* ------------------------------------------------------------- int heap *)

let prop_heapsort =
  H.qcheck "heap sorts like List.sort"
    QCheck.(list_of_size (Gen.int_bound 40) (int_bound 1000))
    (fun keys ->
      let n = List.length keys in
      let h = Tt_util.Int_heap.create n in
      List.iteri (fun i k -> Tt_util.Int_heap.insert h i k) keys;
      let out = List.init n (fun _ -> snd (Tt_util.Int_heap.pop_min h)) in
      out = List.sort compare keys)

let prop_heap_update =
  H.qcheck "heap update (decrease/increase key) keeps order"
    QCheck.(pair (list_of_size (Gen.int_bound 25) (int_bound 100))
              (list_of_size (Gen.int_bound 25) (int_bound 100)))
    (fun (keys, updates) ->
      let n = List.length keys in
      QCheck.assume (n > 0);
      let h = Tt_util.Int_heap.create n in
      List.iteri (fun i k -> Tt_util.Int_heap.insert h i k) keys;
      let model = Array.of_list keys in
      List.iteri
        (fun j k ->
          let x = j mod n in
          Tt_util.Int_heap.update h x k;
          model.(x) <- k)
        updates;
      let out = List.init n (fun _ -> snd (Tt_util.Int_heap.pop_min h)) in
      out = List.sort compare (Array.to_list model))

let test_heap_ops () =
  let h = Tt_util.Int_heap.create 10 in
  Tt_util.Int_heap.insert h 3 7;
  Tt_util.Int_heap.insert h 5 2;
  Alcotest.(check bool) "mem" true (Tt_util.Int_heap.mem h 3);
  Alcotest.(check int) "key" 7 (Tt_util.Int_heap.key h 3);
  Alcotest.(check (pair int int)) "min" (5, 2) (Tt_util.Int_heap.min_elt h);
  Tt_util.Int_heap.remove h 5;
  Alcotest.(check (pair int int)) "min after remove" (3, 7) (Tt_util.Int_heap.min_elt h);
  Alcotest.check_raises "duplicate insert"
    (Invalid_argument "Int_heap.insert: duplicate element") (fun () ->
      Tt_util.Int_heap.insert h 3 1);
  Tt_util.Int_heap.remove h 3;
  Alcotest.(check bool) "empty" true (Tt_util.Int_heap.is_empty h);
  Alcotest.check_raises "pop empty" Not_found (fun () ->
      ignore (Tt_util.Int_heap.pop_min h))

(* --------------------------------------------------------- disjoint set *)

let prop_disjoint_set =
  H.qcheck "union-find agrees with naive labels"
    QCheck.(list_of_size (Gen.int_bound 60) (pair (int_bound 19) (int_bound 19)))
    (fun unions ->
      let n = 20 in
      let s = Tt_util.Disjoint_set.create n in
      let label = Array.init n (fun i -> i) in
      let relabel a b =
        let la = label.(a) and lb = label.(b) in
        if la <> lb then
          Array.iteri (fun i l -> if l = lb then label.(i) <- la) label
      in
      List.iter
        (fun (a, b) ->
          ignore (Tt_util.Disjoint_set.union s a b);
          relabel a b)
        unions;
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Tt_util.Disjoint_set.same s a b <> (label.(a) = label.(b)) then ok := false
        done
      done;
      let classes = List.sort_uniq compare (Array.to_list label) in
      !ok && Tt_util.Disjoint_set.count s = List.length classes)

(* ------------------------------------------------------------------ rng *)

let test_rng_determinism () =
  let a = Tt_util.Rng.create 7 and b = Tt_util.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Tt_util.Rng.int a 1000) (Tt_util.Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Tt_util.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Tt_util.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of bounds: %d" v;
    let w = Tt_util.Rng.int_incl rng (-3) 3 in
    if w < -3 || w > 3 then Alcotest.failf "int_incl out of bounds: %d" w;
    let f = Tt_util.Rng.float rng 2.5 in
    if f < 0. || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Tt_util.Rng.int rng 0))

let test_rng_shuffle () =
  let rng = Tt_util.Rng.create 9 in
  let a = Array.init 50 (fun i -> i) in
  Tt_util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted;
  (* all bounded draws hit every residue eventually *)
  let seen = Array.make 5 false in
  for _ = 1 to 200 do
    seen.(Tt_util.Rng.int rng 5) <- true
  done;
  Alcotest.(check (array bool)) "all residues reachable" (Array.make 5 true) seen

let test_rng_split () =
  let rng = Tt_util.Rng.create 11 in
  let a = Tt_util.Rng.split rng in
  let b = Tt_util.Rng.split rng in
  (* split streams should differ from each other *)
  let va = List.init 10 (fun _ -> Tt_util.Rng.int a 1000) in
  let vb = List.init 10 (fun _ -> Tt_util.Rng.int b 1000) in
  Alcotest.(check bool) "independent streams differ" true (va <> vb)

(* --------------------------------------------------------------- bitset *)

let prop_bitset_model =
  H.qcheck "bitset behaves like a set of ints"
    QCheck.(list_of_size (Gen.int_bound 80) (pair bool (int_bound 63)))
    (fun ops ->
      let b = Tt_util.Bitset.create 64 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, x) ->
          if add then begin
            Tt_util.Bitset.add b x;
            Hashtbl.replace model x ()
          end
          else begin
            Tt_util.Bitset.remove b x;
            Hashtbl.remove model x
          end)
        ops;
      let expected = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model []) in
      Tt_util.Bitset.to_list b = expected
      && Tt_util.Bitset.cardinal b = List.length expected
      && List.for_all (Tt_util.Bitset.mem b) expected)

let test_bitset_ops () =
  let b = Tt_util.Bitset.create 100 in
  Tt_util.Bitset.add b 0;
  Tt_util.Bitset.add b 63;
  Tt_util.Bitset.add b 64;
  Tt_util.Bitset.add b 99;
  Alcotest.(check (list int)) "word boundaries" [ 0; 63; 64; 99 ] (Tt_util.Bitset.to_list b);
  let c = Tt_util.Bitset.copy b in
  Tt_util.Bitset.remove b 63;
  Alcotest.(check bool) "copy independent" true (Tt_util.Bitset.mem c 63);
  Alcotest.(check bool) "not equal" false (Tt_util.Bitset.equal b c);
  Tt_util.Bitset.clear b;
  Alcotest.(check int) "cleared" 0 (Tt_util.Bitset.cardinal b);
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset.add: out of range")
    (fun () -> Tt_util.Bitset.add b 100)

(* ----------------------------------------------------------------- rope *)

let prop_rope_model =
  H.qcheck "rope concatenation flattens like lists"
    QCheck.(list_of_size (Gen.int_bound 20) (H.arb_int_list ~len:8 ()))
    (fun chunks ->
      let rope =
        List.fold_left
          (fun acc l -> Tt_util.Rope.cat acc (Tt_util.Rope.of_array (Array.of_list l)))
          Tt_util.Rope.empty chunks
      in
      let expected = List.concat chunks in
      Tt_util.Rope.to_list rope = expected
      && Tt_util.Rope.length rope = List.length expected)

let test_rope_deep () =
  (* left-leaning rope of 100_000 elements: to_array must not overflow *)
  let r = ref Tt_util.Rope.empty in
  for i = 0 to 99_999 do
    r := Tt_util.Rope.snoc !r i
  done;
  let a = Tt_util.Rope.to_array !r in
  Alcotest.(check int) "length" 100_000 (Array.length a);
  Alcotest.(check int) "first" 0 a.(0);
  Alcotest.(check int) "last" 99_999 a.(99_999)

(* ------------------------------------------------------------ statistics *)

let test_statistics () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Tt_util.Statistics.mean xs);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 1.25) (Tt_util.Statistics.stddev xs);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "min_max" (1., 4.)
    (Tt_util.Statistics.min_max xs);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Tt_util.Statistics.median xs);
  Alcotest.(check (float 1e-9)) "quantile 0" 1. (Tt_util.Statistics.quantile xs 0.);
  Alcotest.(check (float 1e-9)) "quantile 1" 4. (Tt_util.Statistics.quantile xs 1.);
  Alcotest.(check (float 1e-9)) "fraction" 0.5
    (Tt_util.Statistics.fraction (fun x -> x > 2.) xs);
  Alcotest.(check (float 1e-9)) "geometric mean of equal" 3.
    (Tt_util.Statistics.geometric_mean [| 3.; 3.; 3. |]);
  Alcotest.(check bool) "mean of empty is nan" true
    (Float.is_nan (Tt_util.Statistics.mean [||]))

let prop_quantile_monotone =
  H.qcheck "quantiles are monotone"
    QCheck.(list_of_size (Gen.return 20) (int_bound 1000))
    (fun l ->
      let xs = Array.of_list (List.map float_of_int l) in
      let q1 = Tt_util.Statistics.quantile xs 0.25 in
      let q2 = Tt_util.Statistics.quantile xs 0.5 in
      let q3 = Tt_util.Statistics.quantile xs 0.75 in
      q1 <= q2 && q2 <= q3)

(* ----------------------------------------------------------------- timer *)

let test_timer () =
  let r, dt = Tt_util.Timer.time (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check bool) "non-negative" true (dt >= 0.);
  let r2, per = Tt_util.Timer.time_repeat ~min_time:0.001 (fun () -> 7) in
  Alcotest.(check int) "repeat result" 7 r2;
  Alcotest.(check bool) "per-run positive" true (per > 0.)

let test_timer_wall_clock () =
  (* Timer.now is wall-clock time: blocking (no CPU burned) must still
     advance it. Sys.time, the old clock, would report ~0 here. *)
  let t0 = Tt_util.Timer.now () in
  let (), dt = Tt_util.Timer.time (fun () -> Unix.sleepf 0.02) in
  let t1 = Tt_util.Timer.now () in
  Alcotest.(check bool) "a sleep counts as elapsed time" true (dt >= 0.015);
  Alcotest.(check bool) "now advances across the sleep" true (t1 -. t0 >= 0.015)

(* ---------------------------------------------------------------- cancel *)

let test_cancel_linked () =
  let module Cancel = Tt_util.Cancel in
  let parent = Cancel.create () in
  let child = Cancel.linked ~parent () in
  Alcotest.(check bool) "fresh child not cancelled" false (Cancel.cancelled child);
  Cancel.cancel parent;
  Alcotest.(check bool) "parent cancellation propagates" true (Cancel.cancelled child);
  let expired = Cancel.linked ~deadline_after:(-1.) () in
  Alcotest.(check bool) "own deadline still applies" true (Cancel.cancelled expired);
  let p2 = Cancel.create () in
  let c2 = Cancel.linked ~parent:p2 () in
  Cancel.cancel c2;
  Alcotest.(check bool) "child cancel does not propagate up" false
    (Cancel.cancelled p2)

let () =
  H.run "util"
    [ ( "dynarray",
        [ H.case "basic" test_dynarray_basic;
          H.case "errors" test_dynarray_errors;
          H.case "append" test_dynarray_append;
          prop_dynarray_model;
          prop_dynarray_push_pop
        ] );
      ("int_heap", [ H.case "ops" test_heap_ops; prop_heapsort; prop_heap_update ]);
      ("disjoint_set", [ prop_disjoint_set ]);
      ( "rng",
        [ H.case "determinism" test_rng_determinism;
          H.case "bounds" test_rng_bounds;
          H.case "shuffle" test_rng_shuffle;
          H.case "split" test_rng_split
        ] );
      ("bitset", [ H.case "ops" test_bitset_ops; prop_bitset_model ]);
      ("rope", [ H.case "deep" test_rope_deep; prop_rope_model ]);
      ("statistics", [ H.case "basics" test_statistics; prop_quantile_monotone ]);
      ("timer", [ H.case "time" test_timer; H.case "wall clock" test_timer_wall_clock ]);
      ("cancel", [ H.case "linked tokens" test_cancel_linked ])
    ]
