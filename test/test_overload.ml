(* Property tests for the pure overload-control layer: the AIMD
   limiter, the CoDel-style shed decision, the budget-aware hedge
   rules, the windowed RTT quantile — and the retry schedule's
   deadline-budget clamp. Everything here runs on explicit inputs (a
   fake clock where time matters), so these are the deterministic
   counterparts of what the chaos-overload gate exercises end to
   end. *)

module O = Tt_server.Overload
module P = Tt_server.Protocol
module Retry = Tt_engine.Retry
module H = Helpers

(* ------------------------------------------------------------ limiter *)

let test_limiter_loss_decreases () =
  let l = O.Limiter.create ~initial:10. ~max_limit:10. () in
  Alcotest.(check int) "initial" 10 (O.Limiter.limit l);
  O.Limiter.on_loss l;
  Alcotest.(check int) "one loss multiplies by 0.7" 7 (O.Limiter.limit l);
  O.Limiter.on_loss l;
  Alcotest.(check int) "second loss compounds" 4 (O.Limiter.limit l)

let test_limiter_success_additive () =
  let l = O.Limiter.create ~initial:4. ~max_limit:100. () in
  (* Additive increase is scaled by the current window: ~limit
     successes grow the window by ~1 slot, never more. *)
  for _ = 1 to 4 do
    O.Limiter.on_success l
  done;
  Alcotest.(check bool) "four successes at limit 4 add at most 1" true
    (O.Limiter.limit l <= 5);
  O.Limiter.on_success l;
  Alcotest.(check int) "five successes cross the next slot" 5
    (O.Limiter.limit l)

let test_limiter_floor_and_cap () =
  let l = O.Limiter.create ~initial:2. ~max_limit:3. () in
  for _ = 1 to 50 do
    O.Limiter.on_loss l
  done;
  Alcotest.(check int) "losses never push below 1" 1 (O.Limiter.limit l);
  for _ = 1 to 500 do
    O.Limiter.on_success l
  done;
  Alcotest.(check int) "successes never exceed max_limit" 3
    (O.Limiter.limit l)

let test_limiter_invalid_args () =
  Alcotest.check_raises "min_limit < 1"
    (Invalid_argument "Limiter.create: min_limit < 1") (fun () ->
      ignore (O.Limiter.create ~min_limit:0.5 ~initial:2. ~max_limit:4. ()));
  Alcotest.check_raises "decrease outside (0,1)"
    (Invalid_argument "Limiter.create: decrease not in (0, 1)") (fun () ->
      ignore (O.Limiter.create ~decrease:1.0 ~initial:2. ~max_limit:4. ()))

(* Any interleaving of successes and losses keeps the window inside
   [1, max] — the invariant the server's admission depends on. *)
let prop_limiter_bounded =
  H.qcheck ~count:300 "limiter stays within [1, max] under any history"
    QCheck.(pair (int_bound 30) (small_list bool))
    (fun (max_l, ops) ->
      let max_limit = float_of_int (1 + max_l) in
      let l = O.Limiter.create ~initial:(max_limit /. 2.) ~max_limit () in
      List.for_all
        (fun success ->
          if success then O.Limiter.on_success l else O.Limiter.on_loss l;
          let v = O.Limiter.limit l in
          v >= 1 && v <= int_of_float max_limit)
        ops)

(* ----------------------------------------------------------- shedding *)

let shed = O.shed_decision ~batch_headroom:0.75

let test_shed_queue_wait_beats_budget () =
  (* est_wait > remaining ⇒ CoDel shed, regardless of window room. *)
  Alcotest.(check bool) "sheds when wait exceeds budget" true
    (shed ~limit:10 ~admitted:0 ~est_wait_s:2.0 ~remaining_s:(Some 1.0)
       ~priority:P.Interactive
    = Some O.Queue_wait);
  Alcotest.(check bool) "admits when wait fits budget" true
    (shed ~limit:10 ~admitted:0 ~est_wait_s:0.5 ~remaining_s:(Some 1.0)
       ~priority:P.Interactive
    = None);
  Alcotest.(check bool) "no deadline, no queue-wait shed" true
    (shed ~limit:10 ~admitted:0 ~est_wait_s:1000. ~remaining_s:None
       ~priority:P.Interactive
    = None)

(* Monotone in the queue-wait estimate: once a (remaining, priority,
   window) state sheds at wait w, it sheds at every w' >= w. *)
let prop_shed_monotone_in_wait =
  H.qcheck ~count:500 "shed decision monotone in est_wait_s"
    QCheck.(
      quad (int_bound 20) (int_bound 25) (pair pos_float pos_float) bool)
    (fun (limit, admitted, (w, dw), batch) ->
      let priority = if batch then P.Batch else P.Interactive in
      let remaining = Some 1.0 in
      let at wait =
        shed ~limit ~admitted ~est_wait_s:wait ~remaining_s:remaining
          ~priority
      in
      match at w with
      | None -> true  (* admitted at w says nothing about w' > w *)
      | Some _ -> at (w +. dw) <> None)

let test_shed_brownout_batch_first () =
  (* In-flight work at 75% of the window: batch sheds, interactive
     still admits — the brownout ordering the nemesis checks. *)
  let args = (10, 8, 0.0, Some 1.0) in
  let limit, admitted, est_wait_s, remaining_s = args in
  Alcotest.(check bool) "batch browns out" true
    (shed ~limit ~admitted ~est_wait_s ~remaining_s ~priority:P.Batch
    = Some O.Brownout);
  Alcotest.(check bool) "interactive rides the headroom" true
    (shed ~limit ~admitted ~est_wait_s ~remaining_s ~priority:P.Interactive
    = None)

(* Whenever batch is admitted, interactive is admitted in the same
   state: brownout only ever removes batch traffic. *)
let prop_shed_batch_sheds_first =
  H.qcheck ~count:500 "interactive never sheds while batch admits"
    QCheck.(triple (int_bound 20) (int_bound 25) pos_float)
    (fun (limit, admitted, w) ->
      let at priority =
        shed ~limit ~admitted ~est_wait_s:w ~remaining_s:(Some 1.0)
          ~priority
      in
      match at P.Batch with None -> at P.Interactive = None | Some _ -> true)

let test_shed_limit_full_window () =
  Alcotest.(check bool) "window full sheds interactive too" true
    (shed ~limit:4 ~admitted:4 ~est_wait_s:0. ~remaining_s:None
       ~priority:P.Interactive
    = Some O.Limit)

(* ------------------------------------------------------------ hedging *)

let test_should_hedge_budget_rule () =
  Alcotest.(check bool) "budget covers successor RTT" true
    (O.should_hedge ~remaining_s:(Some 0.5) ~successor_rtt_s:0.1);
  Alcotest.(check bool) "budget below successor RTT never hedges" false
    (O.should_hedge ~remaining_s:(Some 0.05) ~successor_rtt_s:0.1);
  Alcotest.(check bool) "no deadline always qualifies" true
    (O.should_hedge ~remaining_s:None ~successor_rtt_s:10.)

let prop_should_hedge_never_doomed =
  H.qcheck ~count:500 "hedge never fires when budget < successor RTT"
    QCheck.(pair pos_float pos_float)
    (fun (remaining, rtt) ->
      (not (O.should_hedge ~remaining_s:(Some remaining) ~successor_rtt_s:rtt))
      || remaining > rtt)

let test_hedge_gate_deterministic () =
  let keys = List.init 64 (fun i -> Printf.sprintf "key-%d" i) in
  let pass seed = List.map (fun k -> O.hedge_gate ~seed ~key:k ~ratio:0.5) keys in
  Alcotest.(check (list bool)) "same seed, same verdicts" (pass 7) (pass 7);
  Alcotest.(check bool) "different seed reshuffles" true (pass 7 <> pass 8);
  Alcotest.(check bool) "ratio 0 admits nothing" true
    (List.for_all not (List.map (fun k -> O.hedge_gate ~seed:7 ~key:k ~ratio:0.) keys));
  Alcotest.(check bool) "ratio 1 admits everything" true
    (List.for_all Fun.id (List.map (fun k -> O.hedge_gate ~seed:7 ~key:k ~ratio:1.) keys))

(* -------------------------------------------------------------- rtt *)

let test_rtt_min_samples () =
  let r = O.Rtt.create () in
  for _ = 1 to 7 do
    O.Rtt.observe r 0.01
  done;
  Alcotest.(check bool) "below min_samples refuses to estimate" true
    (O.Rtt.quantile r 0.95 = None);
  O.Rtt.observe r 0.01;
  Alcotest.(check bool) "at min_samples answers" true
    (O.Rtt.quantile r 0.95 <> None)

let test_rtt_window_quantile () =
  let r = O.Rtt.create ~cap:8 () in
  (* Old observations fall out of the window: fill with 1.0 then push
     eight fast samples — the p95 must reflect only the recent ones. *)
  for _ = 1 to 8 do
    O.Rtt.observe r 1.0
  done;
  for _ = 1 to 8 do
    O.Rtt.observe r 0.001
  done;
  (match O.Rtt.quantile r 0.95 with
  | Some q -> Alcotest.(check bool) "window evicts stale tail" true (q < 0.01)
  | None -> Alcotest.fail "expected a quantile");
  Alcotest.(check int) "count capped at window" 8 (O.Rtt.count r)

let prop_rtt_quantile_in_range =
  H.qcheck ~count:300 "windowed quantile is an observed sample"
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 8 80) pos_float) (float_bound_inclusive 1.0))
    (fun (xs, q) ->
      let r = O.Rtt.create () in
      List.iter (O.Rtt.observe r) xs;
      match O.Rtt.quantile r q with
      | None -> false
      | Some v -> List.exists (fun x -> x = v) xs)

(* ------------------------------------------------- retry budget clamp *)

let policy = Retry.create ~retries:6 ~base_delay_s:0.1 ~max_delay_s:2.0 ~jitter:0.5 ~seed:3 ()

let test_retry_budget_clamp () =
  (* The regression the deadline work fixed: a backoff schedule must
     never sleep past the request's remaining budget. *)
  let key = "job-under-deadline" in
  let all = Retry.delays policy ~key in
  let within = Retry.delays_within policy ~key ~budget_s:0.25 in
  Alcotest.(check bool) "clamped schedule is a prefix" true
    (within = List.filteri (fun i _ -> i < List.length within) all);
  Alcotest.(check bool) "cumulative sleep fits the budget" true
    (List.fold_left ( +. ) 0. within <= 0.25);
  Alcotest.(check (list (float 1e-9))) "zero budget sleeps never" []
    (Retry.delays_within policy ~key ~budget_s:0.)

let prop_retry_budget_never_exceeded =
  H.qcheck ~count:300 "delays_within never outspends its budget"
    QCheck.(pair small_string pos_float)
    (fun (key, budget) ->
      let ds = Retry.delays_within policy ~key ~budget_s:budget in
      List.fold_left ( +. ) 0. ds <= budget
      && List.for_all (fun d -> d >= 0.) ds)

(* ---------------------------------------------------------------- ema *)

let test_ema () =
  Alcotest.(check (float 1e-9)) "None seeds with the observation" 0.42
    (O.ema ~alpha:0.2 ~prev:None 0.42);
  Alcotest.(check (float 1e-9)) "step moves alpha of the gap" 1.2
    (O.ema ~alpha:0.2 ~prev:(Some 1.0) 2.0)

let () =
  H.run "overload"
    [ ( "limiter",
        [ H.case "loss decreases multiplicatively" test_limiter_loss_decreases;
          H.case "success increases additively" test_limiter_success_additive;
          H.case "floor 1, cap max" test_limiter_floor_and_cap;
          H.case "invalid arguments" test_limiter_invalid_args;
          prop_limiter_bounded
        ] );
      ( "shed",
        [ H.case "queue-wait beats budget" test_shed_queue_wait_beats_budget;
          H.case "brownout sheds batch first" test_shed_brownout_batch_first;
          H.case "full window sheds all" test_shed_limit_full_window;
          prop_shed_monotone_in_wait;
          prop_shed_batch_sheds_first
        ] );
      ( "hedge",
        [ H.case "budget rule" test_should_hedge_budget_rule;
          H.case "gate is seeded and bounded" test_hedge_gate_deterministic;
          prop_should_hedge_never_doomed
        ] );
      ( "rtt",
        [ H.case "min samples" test_rtt_min_samples;
          H.case "windowed quantile" test_rtt_window_quantile;
          prop_rtt_quantile_in_range
        ] );
      ( "retry-budget",
        [ H.case "schedule clamped to budget" test_retry_budget_clamp;
          prop_retry_budget_never_exceeded
        ] );
      ("ema", [ H.case "seeding and stepping" test_ema ])
    ]
