(* Tests for the hill-valley segment calculus behind Liu's exact
   algorithm. *)

module S = Tt_core.Segments
module H = Helpers

let seg h v nodes =
  { S.hill = h;
    valley = v;
    seq = List.fold_left (fun acc x -> S.seq_cat acc (S.seq_single x)) S.seq_empty nodes
  }

(* raw-list observations, for comparing a canonicalized profile against
   the segment list it was built from *)
let raw_peak p = List.fold_left (fun acc s -> max acc s.S.hill) 0 p

let raw_final_valley p =
  match List.rev p with [] -> 0 | s :: _ -> s.S.valley

let raw_nodes p = List.concat_map (fun s -> S.seq_to_list s.S.seq) p

(* random raw profiles: start at 0, each step climbs then descends *)
let arb_raw_profile =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        let len = Tt_util.Rng.int_incl rng 1 12 in
        let v = ref 0 in
        List.init len (fun i ->
            let hill = !v + Tt_util.Rng.int_incl rng 0 10 in
            let valley = Tt_util.Rng.int_incl rng 0 hill in
            v := valley;
            seg hill valley [ i ]))
      (QCheck.Gen.int_bound 1_000_000)
  in
  let print p =
    String.concat ";"
      (List.map (fun s -> Printf.sprintf "(%d,%d)" s.S.hill s.S.valley) p)
  in
  QCheck.make ~print gen

let prop_canonicalize_invariant =
  H.qcheck "canonicalize establishes the invariant" arb_raw_profile (fun p ->
      S.check_canonical (S.canonicalize p))

let prop_canonicalize_preserves =
  H.qcheck "canonicalize preserves peak, final valley and nodes" arb_raw_profile
    (fun p ->
      let c = S.canonicalize p in
      S.peak c = raw_peak p
      && S.final_valley c = raw_final_valley p
      && S.nodes c = raw_nodes p)

let prop_canonicalize_idempotent =
  H.qcheck "canonicalize is idempotent" arb_raw_profile (fun p ->
      let c = S.canonicalize p in
      S.equal (S.canonicalize (S.to_list c)) c)

let prop_rev_nodes =
  H.qcheck "rev_nodes is nodes reversed" arb_raw_profile (fun p ->
      let c = S.canonicalize p in
      S.rev_nodes c = List.rev (S.nodes c))

let test_canonicalize_cases () =
  (* cost rule: (5,1) cost 4 then (9,2) cost 7 must fuse *)
  let c = S.canonicalize [ seg 5 1 [ 0 ]; seg 9 2 [ 1 ] ] in
  Alcotest.(check int) "fused length" 1 (S.length c);
  Alcotest.(check int) "fused hill" 9 (S.peak c);
  Alcotest.(check int) "fused valley" 2 (S.final_valley c);
  Alcotest.(check (list int)) "fused nodes" [ 0; 1 ] (S.nodes c);
  (* valley rule: (33,9) then (16,3): costs decrease but 9 >= 3 -> fuse *)
  let c2 = S.canonicalize [ seg 33 9 [ 0 ]; seg 16 3 [ 1 ] ] in
  Alcotest.(check int) "suffix-min fused" 1 (S.length c2);
  Alcotest.(check int) "suffix-min hill" 33 (S.peak c2);
  Alcotest.(check int) "suffix-min valley" 3 (S.final_valley c2);
  (* both strictly improving: stays split *)
  let c3 = S.canonicalize [ seg 10 1 [ 0 ]; seg 8 5 [ 1 ] ] in
  Alcotest.(check int) "kept split" 2 (S.length c3)

let test_merge_two_chains () =
  (* the counterexample that motivated the suffix-minima rule: chain A =
     [(33,3);(25,17)], chain B = [(27,4)]; optimal interleave peak 33 *)
  let a = S.canonicalize [ seg 33 3 [ 0 ]; seg 25 17 [ 1 ] ] in
  let b = S.canonicalize [ seg 27 4 [ 2 ] ] in
  let m = S.merge [ a; b ] in
  Alcotest.(check bool) "canonical" true (S.check_canonical m);
  Alcotest.(check int) "peak 33" 33 (S.peak m);
  Alcotest.(check int) "final valley" (17 + 4) (S.final_valley m);
  (* order: A1 first (cost 30), then B (cost 23) on base 3 -> hill 30 *)
  Alcotest.(check (list int)) "node order" [ 0; 2; 1 ] (S.nodes m)

let test_merge_disjoint_costs () =
  let a = S.canonicalize [ seg 10 2 [ 0 ] ]
  and b = S.canonicalize [ seg 6 1 [ 1 ] ] in
  let m = S.merge [ a; b ] in
  (* a first (cost 8), b at base 2: hill 8 < 10, so peak 10 *)
  Alcotest.(check int) "peak" 10 (S.peak m);
  Alcotest.(check (list int)) "order by cost" [ 0; 1 ] (S.nodes m)

let test_merge_empty () =
  Alcotest.(check int) "empty merge" 0 (S.peak (S.merge []));
  let a = S.canonicalize [ seg 5 1 [ 0 ] ] in
  Alcotest.(check bool) "single merge unchanged" true (S.equal (S.merge [ a ]) a)

let prop_merge_canonical =
  H.qcheck "merging canonical profiles is canonical"
    (QCheck.pair arb_raw_profile arb_raw_profile) (fun (p, q) ->
      S.check_canonical (S.merge [ S.canonicalize p; S.canonicalize q ]))

let prop_merge_final_valley =
  H.qcheck "merged final valley = sum of the chains' final valleys"
    (QCheck.pair arb_raw_profile arb_raw_profile) (fun (p, q) ->
      let a = S.canonicalize p and b = S.canonicalize q in
      S.final_valley (S.merge [ a; b ]) = S.final_valley a + S.final_valley b)

let prop_merge_peak_lower_bound =
  H.qcheck "merged peak >= each chain's peak"
    (QCheck.pair arb_raw_profile arb_raw_profile) (fun (p, q) ->
      let a = S.canonicalize p and b = S.canonicalize q in
      let m = S.merge [ a; b ] in
      S.peak m >= S.peak a && S.peak m >= S.peak b)

let test_append_parent () =
  let prof = S.canonicalize [ seg 10 4 [ 0 ] ] in
  let p = S.append_parent prof ~hill:12 ~valley:2 ~node:9 in
  Alcotest.(check bool) "canonical" true (S.check_canonical p);
  Alcotest.(check int) "peak" 12 (S.peak p);
  Alcotest.(check int) "valley" 2 (S.final_valley p);
  Alcotest.(check (list int)) "nodes" [ 0; 9 ] (S.nodes p);
  Alcotest.check_raises "hill < valley"
    (Invalid_argument "Segments.append_parent: hill < valley") (fun () ->
      ignore (S.append_parent prof ~hill:1 ~valley:5 ~node:9))

let prop_append_parent_matches_canonicalize =
  (* the suffix cascade must agree with re-canonicalizing from scratch *)
  H.qcheck "append_parent = canonicalize of the extended list"
    (QCheck.pair arb_raw_profile (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun (p, (a, b)) ->
      let prof = S.canonicalize p in
      let hill = max a b and valley = min a b in
      S.equal
        (S.append_parent prof ~hill ~valley ~node:99)
        (S.canonicalize (S.to_list prof @ [ seg hill valley [ 99 ] ])))

let test_of_step_profile () =
  (* profile 10 -> 2, 8 -> 5: two genuine segments *)
  let p = S.of_step_profile ~usage:[| 10; 8 |] ~after:[| 2; 5 |] ~order:[| 0; 1 |] in
  Alcotest.(check int) "segments" 2 (S.length p);
  Alcotest.(check int) "peak" 10 (S.peak p);
  (* ascending profile 8 -> 5, 10 -> 2 fuses *)
  let q = S.of_step_profile ~usage:[| 8; 10 |] ~after:[| 5; 2 |] ~order:[| 0; 1 |] in
  Alcotest.(check int) "fused" 1 (S.length q)

let prop_rope_cat_order =
  H.qcheck "seq_cat concatenates in order"
    (QCheck.pair (H.arb_int_list ~len:10 ()) (H.arb_int_list ~len:10 ()))
    (fun (a, b) ->
      let build l =
        List.fold_left (fun acc x -> S.seq_cat acc (S.seq_single x)) S.seq_empty l
      in
      S.seq_to_list (S.seq_cat (build a) (build b)) = a @ b)

let () =
  H.run "segments"
    [ ( "canonicalize",
        [ H.case "cases" test_canonicalize_cases;
          prop_canonicalize_invariant;
          prop_canonicalize_preserves;
          prop_canonicalize_idempotent;
          prop_rev_nodes
        ] );
      ( "merge",
        [ H.case "two chains counterexample" test_merge_two_chains;
          H.case "disjoint costs" test_merge_disjoint_costs;
          H.case "empty" test_merge_empty;
          prop_merge_canonical;
          prop_merge_final_valley;
          prop_merge_peak_lower_bound
        ] );
      ( "construction",
        [ H.case "append_parent" test_append_parent;
          prop_append_parent_matches_canonicalize;
          H.case "of_step_profile" test_of_step_profile;
          prop_rope_cat_order
        ] )
    ]
