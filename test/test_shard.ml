(* Tests for the tt_shard tier: ring placement properties (balance,
   minimal disruption), cluster-map parsing, the cache fetch level,
   peek over the wire, shard metrics exposition, and end-to-end
   cluster behaviour — digest parity with a single shard, failover
   under a mid-run kill with zero lost admitted requests, and
   cross-shard cache peering. *)

module R = Tt_shard.Ring
module SM = Tt_shard.Metrics
module Cl = Tt_shard.Cluster
module SC = Tt_shard.Shard_client
module P = Tt_server.Protocol
module C = Tt_server.Client
module L = Tt_server.Loadgen
module Srv = Tt_server.Server
module J = Tt_engine.Job
module H = Helpers

let mk_nodes n =
  List.init n (fun i ->
      { R.name = Printf.sprintf "s%d" i; host = "127.0.0.1"; port = 7000 + i })

let keys n = List.init n (fun i -> Printf.sprintf "key-%d" i)

(* --------------------------------------------------------------- ring *)

let test_ring_owner_deterministic () =
  (* Same config, independently built (different node order, different
     ports) — identical placement. Ports and hosts must not matter:
     the router and the peer hook see different ephemeral ports for
     the same logical ring. *)
  let a = R.create (mk_nodes 4) in
  let b =
    R.create
      (List.rev_map
         (fun (n : R.node) -> { n with R.port = n.R.port + 1000 })
         (mk_nodes 4))
  in
  List.iter
    (fun k ->
      Alcotest.(check string) ("owner of " ^ k) (R.owner a k).R.name
        (R.owner b k).R.name)
    (keys 500)

let test_ring_successors () =
  let r = R.create (mk_nodes 5) in
  List.iter
    (fun k ->
      let succ = R.successors r k in
      Alcotest.(check int) "all nodes, once each" 5 (List.length succ);
      Alcotest.(check int) "distinct" 5
        (List.length (List.sort_uniq compare succ));
      Alcotest.(check string) "owner first" (R.owner r k).R.name
        (List.hd succ).R.name)
    (keys 100)

(* Satellite property: at the default 64 vnodes, ownership is balanced
   within a factor-of-two of fair share. *)
let test_ring_balance () =
  List.iter
    (fun nodes ->
      let r = R.create (mk_nodes nodes) in
      let counts = Hashtbl.create nodes in
      let total = 6000 in
      List.iter
        (fun k ->
          let o = (R.owner r k).R.name in
          Hashtbl.replace counts o
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)))
        (keys total);
      let fair = float_of_int total /. float_of_int nodes in
      List.iter
        (fun (n : R.node) ->
          let c = Option.value ~default:0 (Hashtbl.find_opt counts n.R.name) in
          let share = float_of_int c /. fair in
          if share < 0.5 || share > 2.0 then
            Alcotest.failf "%d nodes: %s owns %.2fx fair share" nodes n.R.name
              share)
        (R.nodes r))
    [ 2; 3; 5; 8 ]

(* Satellite property: removing one shard remaps only the keys it
   owned — everyone else's placement is untouched, and the orphaned
   share is about 1/n. *)
let test_ring_minimal_disruption () =
  let nodes = 4 in
  let r = R.create (mk_nodes nodes) in
  let removed = "s2" in
  let r' = R.remove r removed in
  Alcotest.(check int) "one fewer node" (nodes - 1)
    (List.length (R.nodes r'));
  let total = 4000 and moved = ref 0 and orphaned = ref 0 in
  List.iter
    (fun k ->
      let before = (R.owner r k).R.name and after = (R.owner r' k).R.name in
      if before = removed then begin
        incr orphaned;
        Alcotest.(check bool) "orphan rehomed" false (after = removed)
      end
      else if after <> before then incr moved)
    (keys total);
  Alcotest.(check int) "only the removed node's keys move" 0 !moved;
  let share = float_of_int !orphaned /. (float_of_int total /. float_of_int nodes) in
  Alcotest.(check bool) "orphaned share is ~1/n" true
    (share > 0.5 && share < 2.0)

let test_ring_map_round_trip () =
  let r = R.create ~vnodes:32 (mk_nodes 3) in
  (match R.of_string ~vnodes:32 (R.to_string r) with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok r' ->
      Alcotest.(check string) "map round trips" (R.to_string r)
        (R.to_string r');
      List.iter
        (fun k ->
          Alcotest.(check string) "placement survives" (R.owner r k).R.name
            (R.owner r' k).R.name)
        (keys 200));
  (* Anonymous form: names assigned by input position. *)
  (match R.of_string "127.0.0.1:7100,127.0.0.1:7101" with
  | Error e -> Alcotest.failf "anonymous map: %s" e
  | Ok r ->
      Alcotest.(check string) "positional names" "s0=127.0.0.1:7100,s1=127.0.0.1:7101"
        (R.to_string r));
  List.iter
    (fun bad ->
      match R.of_string bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ ""; "127.0.0.1"; "host:notaport"; "a=1.2.3.4:70000"; ":7000";
      "x=127.0.0.1:1,x=127.0.0.1:2" ]

let test_ring_invalid () =
  (match R.create [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty ring accepted");
  match R.remove (R.create (mk_nodes 1)) "s0" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "removed the last node"

(* -------------------------------------------------------- cache fetch *)

let test_cache_fetch_level () =
  let module Cache = Tt_engine.Cache in
  let fetched = ref [] in
  let cache =
    Cache.create
      ~fetch:(fun key ->
        fetched := key :: !fetched;
        if key = "remote" then Some 42 else None)
      ()
  in
  let computes = ref 0 in
  let compute v () = incr computes; v in
  (* Fetch satisfies the miss: no compute, counted as a hit, and the
     value is now local (the second lookup does not re-fetch). *)
  Alcotest.(check bool) "peer value is a hit" true
    (Cache.find_or_compute cache ~key:"remote" (compute 0) = (42, true));
  Alcotest.(check int) "no compute" 0 !computes;
  Alcotest.(check bool) "peer value cached" true
    (Cache.find_or_compute cache ~key:"remote" (compute 0) = (42, true));
  Alcotest.(check bool) "fetched once" true
    (List.length !fetched = 1);
  (* Fetch miss degrades to the local compute. *)
  Alcotest.(check bool) "local compute" true
    (Cache.find_or_compute cache ~key:"local" (compute 7) = (7, false));
  Alcotest.(check int) "computed once" 1 !computes;
  (* [find] never consults the fetch hook — it is what answers peeks,
     so a peek must not cascade into another peek. *)
  fetched := [];
  Alcotest.(check bool) "find is local-only" true
    (Cache.find cache "elsewhere" = None);
  Alcotest.(check bool) "find did not fetch" true (!fetched = []);
  (* A throwing hook is a miss, not a crash. *)
  let bomb = Cache.create ~fetch:(fun _ -> failwith "peer down") () in
  Alcotest.(check bool) "hook failure degrades" true
    (Cache.find_or_compute bomb ~key:"k" (compute 9) = (9, false))

(* ------------------------------------------------------- peek op *)

let test_peek_over_wire () =
  let config = { Srv.default_config with Srv.port = 0; workers = 1 } in
  let cache = Tt_engine.Cache.create () in
  let server = Srv.create ~config ~cache () in
  Srv.start server;
  Fun.protect
    ~finally:(fun () -> Srv.shutdown server)
    (fun () ->
      let entry = "gen grid2d size=8 :: liu" in
      let key =
        match Tt_engine.Manifest.parse entry with
        | Ok (job :: _) -> J.id job
        | _ -> Alcotest.fail "entry must parse"
      in
      C.with_connection ~port:(Srv.port server) (fun conn ->
          (* Before the solve: a peek is a clean miss. *)
          (match C.call conn (P.Peek { key }) with
          | Ok (P.Peeked None) -> ()
          | _ -> Alcotest.fail "expected a miss before solving");
          (match C.solve conn entry with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "solve: %s" e);
          (* After: the cached outcome comes back, equal to a direct
             cache read. *)
          match C.call conn (P.Peek { key }) with
          | Ok (P.Peeked (Some outcome)) ->
              Alcotest.(check bool) "peek equals cache" true
                (Tt_engine.Cache.find cache key = Some outcome)
          | _ -> Alcotest.fail "expected a hit after solving"))

(* ------------------------------------------------------ shard metrics *)

let test_shard_metrics () =
  let m = SM.create () in
  SM.forward m ~shard:"s0";
  SM.forward m ~shard:"s0";
  SM.forward m ~shard:"s1";
  SM.failover m;
  SM.reject m;
  SM.peer_hit m;
  SM.peer_miss m;
  SM.hedge m ~outcome:"won";
  SM.hedge m ~outcome:"won";
  SM.hedge m ~outcome:"lost";
  SM.deadline_reject m;
  let s = SM.snapshot m in
  Alcotest.(check int) "forwards total" 3 s.SM.forwards_total;
  Alcotest.(check bool) "per-shard forwards" true
    (s.SM.forwards = [ ("s0", 2); ("s1", 1) ]);
  Alcotest.(check int) "failovers" 1 s.SM.failovers;
  let text = SM.to_prometheus s in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (H.contains text needle))
    [ {|tt_shard_forwards_total{shard="s0"} 2|};
      {|tt_shard_forwards_total{shard="s1"} 1|};
      "tt_shard_failovers_total 1";
      "tt_shard_rejects_total 1";
      "tt_shard_unrouted_total 0";
      "tt_shard_peer_hits_total 1";
      "tt_shard_peer_misses_total 1";
      {|tt_shard_hedges_total{outcome="won"} 2|};
      {|tt_shard_hedges_total{outcome="lost"} 1|};
      "tt_shard_deadline_exceeded_total 1"
    ];
  (* Same exposition-format conformance gate as the server metrics. *)
  H.check_prometheus_conformance ~min_samples:7 text

(* ------------------------------------------------------------ cluster *)

let drive_loadgen ?(connections = 2) ?(requests = 40) ~port ~tag () =
  L.run
    { L.default_config with
      L.port;
      connections;
      requests;
      seed = 7;
      retry = Tt_engine.Retry.create ~retries:6 ~seed:7 ();
      read_timeout_s = 10.;
      connect_timeout_s = Some 2.;
      tag
    }

(* The headline invariant: a 3-shard cluster that loses a shard
   mid-run still answers every admitted request, observes at least one
   failover, and lands the same value digest as one shard alone. *)
let test_cluster_failover_digest_parity () =
  let single = Cl.start ~shards:1 ~workers:2 () in
  let s1 =
    Fun.protect
      ~finally:(fun () -> Cl.stop single)
      (fun () -> drive_loadgen ~port:(Cl.router_port single) ~tag:"one" ())
  in
  Alcotest.(check int) "single: all ok" 40 s1.L.ok;
  let c = Cl.start ~shards:3 ~workers:2 ~kill_after:(1, 12) () in
  let s3 =
    Fun.protect
      ~finally:(fun () -> Cl.stop c)
      (fun () -> drive_loadgen ~port:(Cl.router_port c) ~tag:"three" ())
  in
  Alcotest.(check int) "cluster: zero lost admitted requests" 40 s3.L.ok;
  Alcotest.(check int) "cluster: no transport errors" 0 s3.L.transport_errors;
  Alcotest.(check bool) "cluster: no refusals" true (s3.L.errors = []);
  let snap = Cl.snapshot c in
  Alcotest.(check bool) "shard was killed" false (Cl.shard_alive c 1);
  Alcotest.(check bool) "observed at least one failover" true
    (snap.SM.failovers >= 1);
  Alcotest.(check int) "nothing unroutable" 0 snap.SM.unrouted;
  match (s1.L.value_digest, s3.L.value_digest) with
  | Some a, Some b -> Alcotest.(check string) "value digest parity" a b
  | _ -> Alcotest.fail "missing value digest"

(* Peering: shard B, solving a multi-job entry whose later job was
   already computed on shard A, pulls A's result over a peek instead
   of recomputing — visible as a cache_hit in B's report and a peer
   hit in B's metrics. *)
let test_cluster_cache_peering () =
  (* Pick a tree size whose liu-job owner differs from the owner of
     the minmem-led entry that also contains it. Placement is a pure
     function of names + vnodes, so this search is deterministic and
     settles on the first candidate almost always. *)
  let ring = R.create (mk_nodes 3) in
  let ids size =
    let entry = Printf.sprintf "gen grid2d size=%d :: minmem; liu" size in
    match Tt_engine.Manifest.parse entry with
    | Ok [ m; l ] -> (J.id m, J.id l)
    | _ -> Alcotest.fail "unexpected parse"
  in
  let size =
    List.find
      (fun s ->
        let m, l = ids s in
        (R.owner ring m).R.name <> (R.owner ring l).R.name)
      [ 8; 9; 10; 11; 12; 13; 14; 15; 16 ]
  in
  let _, liu_id = ids size in
  let c = Cl.start ~shards:3 ~workers:1 () in
  Fun.protect
    ~finally:(fun () -> Cl.stop c)
    (fun () ->
      C.with_connection ~port:(Cl.router_port c) (fun conn ->
          (* Warm the liu job on its owner... *)
          (match C.solve conn (Printf.sprintf "gen grid2d size=%d :: liu" size) with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "warm solve: %s" e);
          (* ...then solve the minmem-led entry on a different shard. *)
          match
            C.solve conn
              (Printf.sprintf "gen grid2d size=%d :: minmem; liu" size)
          with
          | Error e -> Alcotest.failf "peered solve: %s" e
          | Ok reports -> (
              match
                List.find_opt (fun r -> r.P.job_id = liu_id) reports
              with
              | None -> Alcotest.fail "liu report missing"
              | Some r ->
                  Alcotest.(check bool) "peered job is a cache hit" true
                    r.P.cache_hit));
      let snap = Cl.snapshot c in
      Alcotest.(check bool) "at least one peer hit" true
        (snap.SM.peer_hits >= 1))

(* The shard-aware client routes directly on the ring (no router hop)
   and agrees with the routed path on results. *)
let test_shard_client_direct () =
  let c = Cl.start ~shards:3 ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Cl.stop c)
    (fun () ->
      let routed = drive_loadgen ~port:(Cl.router_port c) ~tag:"via-router" () in
      let metrics = SM.create () in
      let direct =
        L.run
          { L.default_config with
            L.requests = 40;
            connections = 2;
            seed = 7;
            read_timeout_s = 10.;
            tag = "direct";
            solver =
              Some
                (SC.loadgen_solver ~connect_timeout_s:2.
                   ~retry:(Tt_engine.Retry.create ~retries:3 ~seed:7 ())
                   ~metrics (Cl.ring c))
          }
      in
      Alcotest.(check int) "direct: all ok" 40 direct.L.ok;
      Alcotest.(check int) "direct: no transport errors" 0
        direct.L.transport_errors;
      Alcotest.(check bool) "direct routing reached the shards" true
        ((SM.snapshot metrics).SM.forwards_total >= 40);
      match (routed.L.value_digest, direct.L.value_digest) with
      | Some a, Some b ->
          Alcotest.(check string) "router and direct agree" a b
      | _ -> Alcotest.fail "missing value digest")

(* Router odds and ends over one connection: ping, stats shape,
   unparseable entries refused at the router, restart re-binds. *)
let test_router_misc_and_restart () =
  let c = Cl.start ~shards:2 ~workers:1 () in
  Fun.protect
    ~finally:(fun () -> Cl.stop c)
    (fun () ->
      C.with_connection ~port:(Cl.router_port c) (fun conn ->
          (match C.call conn P.Ping with
          | Ok P.Pong -> ()
          | _ -> Alcotest.fail "ping");
          (match C.call conn P.Stats with
          | Ok (P.Stats_reply json) ->
              Alcotest.(check bool) "router stats section" true
                (Tt_engine.Telemetry.Json.member "router" json <> None)
          | _ -> Alcotest.fail "stats");
          (match C.solve conn "gen nosuch size=4 :: minmem" with
          | Error msg ->
              Alcotest.(check bool) "refused at router" true
                (H.contains msg "bad_request")
          | Ok _ -> Alcotest.fail "bad entry accepted");
          (* Kill a shard, restart it on the same port, and solve
             again: the cache survives the restart. *)
          let port_before = Cl.shard_port c 0 in
          (match C.solve conn "gen banded size=16 :: liu" with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "pre-restart solve: %s" e);
          Cl.kill_shard c 0;
          Alcotest.(check bool) "shard down" false (Cl.shard_alive c 0);
          Cl.restart_shard c 0;
          Alcotest.(check bool) "shard back" true (Cl.shard_alive c 0);
          Alcotest.(check int) "same port" port_before (Cl.shard_port c 0);
          match C.solve conn "gen banded size=16 :: liu" with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "post-restart solve: %s" e))

let () =
  H.run "tt_shard"
    [ ( "ring",
        [ H.case "deterministic placement" test_ring_owner_deterministic;
          H.case "successors" test_ring_successors;
          H.case "balance at 64 vnodes" test_ring_balance;
          H.case "minimal disruption" test_ring_minimal_disruption;
          H.case "cluster map round trip" test_ring_map_round_trip;
          H.case "invalid configs" test_ring_invalid
        ] );
      ( "cache",
        [ H.case "fetch level" test_cache_fetch_level;
          H.case "peek over the wire" test_peek_over_wire
        ] );
      ("metrics", [ H.case "shard counters + exposition" test_shard_metrics ]);
      ( "cluster",
        [ H.case "failover digest parity" test_cluster_failover_digest_parity;
          H.case "cache peering" test_cluster_cache_peering;
          H.case "shard-aware client" test_shard_client_direct;
          H.case "router misc + restart" test_router_misc_and_restart
        ] )
    ]
