(* Tests for the memory-constrained parallel list scheduler. *)

module T = Tt_core.Tree
module P = Tt_core.Parallel
module H = Helpers

let unit_work _ = 1
let node_work t i = 1 + abs t.T.n.(i)

let big_memory t = (4 * T.total_f t) + (4 * T.max_mem_req t) + 16

let prop_schedule_validates =
  H.qcheck ~count:200 "schedules pass the independent validator"
    (QCheck.pair (H.arb_tree ~size_max:14 ()) (QCheck.int_range 1 4))
    (fun (t, procs) ->
      let work = node_work t in
      match P.list_schedule t ~procs ~memory:(big_memory t) ~work with
      | None -> false
      | Some s -> P.validate t ~memory:(big_memory t) ~work s)

let prop_makespan_bounds =
  H.qcheck ~count:200 "critical path <= makespan <= sequential sum"
    (QCheck.pair (H.arb_tree ~size_max:14 ()) (QCheck.int_range 1 4))
    (fun (t, procs) ->
      let work = node_work t in
      match P.list_schedule t ~procs ~memory:(big_memory t) ~work with
      | None -> false
      | Some s ->
          P.critical_path t ~work <= s.P.makespan
          && s.P.makespan <= P.sequential_makespan t ~work
          (* the area bound: procs * makespan covers the total work *)
          && procs * s.P.makespan >= P.sequential_makespan t ~work)

let prop_one_proc_is_sequential =
  H.qcheck "one processor with ample memory = sequential sum"
    (H.arb_tree ~size_max:14 ()) (fun t ->
      let work = node_work t in
      match P.list_schedule t ~procs:1 ~memory:(big_memory t) ~work with
      | None -> false
      | Some s -> s.P.makespan = P.sequential_makespan t ~work)

let prop_many_procs_hit_critical_path =
  H.qcheck "unbounded processors with ample memory = critical path"
    (H.arb_tree ~size_max:14 ()) (fun t ->
      let work = node_work t in
      match P.list_schedule t ~procs:(T.size t) ~memory:(big_memory t) ~work with
      | None -> false
      | Some s -> s.P.makespan = P.critical_path t ~work)

let prop_memory_throttles_parallelism =
  H.qcheck ~count:100 "peak memory respects the budget even at the sequential optimum"
    (H.arb_tree ~size_max:12 ()) (fun t ->
      let work = unit_work in
      let m_small = Tt_core.Minmem.min_memory t in
      let m_big = big_memory t in
      match
        ( P.list_schedule t ~procs:4 ~memory:m_small ~work,
          P.list_schedule t ~procs:4 ~memory:m_big ~work )
      with
      | Some small, Some big ->
          (* the booking fallback makes the optimum always feasible; with
             unit work and ample memory the greedy critical-path rule is
             Hu's algorithm, so [big] is optimal and bounds [small] *)
          small.P.peak_memory <= m_small
          && big.P.makespan <= small.P.makespan
          && P.critical_path t ~work <= small.P.makespan
          && small.P.makespan <= P.sequential_makespan t ~work
      | _ -> false (* None is impossible at memory >= the optimum *))

let test_chain_no_parallelism () =
  (* a chain has no parallelism at all *)
  let t = Tt_core.Instances.chain ~length:9 ~f:2 ~n:1 in
  match P.list_schedule t ~procs:4 ~memory:1000 ~work:(fun _ -> 3) with
  | Some s ->
      Alcotest.(check int) "makespan = sequential" 27 s.P.makespan;
      Alcotest.(check int) "critical path too" 27 (P.critical_path t ~work:(fun _ -> 3))
  | None -> Alcotest.fail "schedule failed"

let test_star_speedup () =
  (* a star with b leaves: root then b independent unit tasks *)
  let t = Tt_core.Instances.star ~branches:6 ~f_root:1 ~f_leaf:1 ~n:0 in
  let work _ = 1 in
  (match P.list_schedule t ~procs:3 ~memory:1000 ~work with
  | Some s -> Alcotest.(check int) "1 + ceil(6/3)" 3 s.P.makespan
  | None -> Alcotest.fail "failed");
  match P.list_schedule t ~procs:6 ~memory:1000 ~work with
  | Some s -> Alcotest.(check int) "full fan-out" 2 s.P.makespan
  | None -> Alcotest.fail "failed"

let test_memory_serializes_star () =
  (* star with big leaf working sets: memory for only one leaf at a time *)
  let t = Tt_core.Instances.star ~branches:4 ~f_root:0 ~f_leaf:2 ~n:10 in
  let work _ = 5 in
  (* leaf working set: f 2 + n 10 = 12; all files alive: 8.
     memory 8 + 12 = 20 allows exactly one leaf running *)
  match P.list_schedule t ~procs:4 ~memory:20 ~work with
  | Some s ->
      Alcotest.(check bool) "memory-bound: serialized" true (s.P.makespan >= 5 * 5)
  | None -> Alcotest.fail "failed"

let test_validation_rejects_broken_schedules () =
  let t = Tt_core.Instances.chain ~length:2 ~f:1 ~n:0 in
  let work _ = 1 in
  let s = Option.get (P.list_schedule t ~procs:1 ~memory:100 ~work) in
  Alcotest.(check bool) "good" true (P.validate t ~memory:100 ~work s);
  (* break precedence: child starts at 0 *)
  let bad =
    { s with
      P.events =
        Array.map
          (fun e ->
            if e.P.node = 1 then { e with P.start = 0; finish = 1 } else e)
          s.P.events
    }
  in
  Alcotest.(check bool) "precedence violation caught" false
    (P.validate t ~memory:100 ~work bad);
  (* break memory: claim a tiny budget *)
  Alcotest.(check bool) "memory violation caught" false
    (P.validate t ~memory:1 ~work s)

let test_bad_arguments () =
  let t = Tt_core.Instances.chain ~length:2 ~f:1 ~n:0 in
  Alcotest.check_raises "procs" (Invalid_argument "Parallel.list_schedule: procs < 1")
    (fun () -> ignore (P.list_schedule t ~procs:0 ~memory:10 ~work:(fun _ -> 1)));
  Alcotest.check_raises "work" (Invalid_argument "Parallel.list_schedule: work < 1")
    (fun () -> ignore (P.list_schedule t ~procs:1 ~memory:10 ~work:(fun _ -> 0)))

let () =
  H.run "parallel"
    [ ( "properties",
        [ prop_schedule_validates;
          prop_makespan_bounds;
          prop_one_proc_is_sequential;
          prop_many_procs_hit_critical_path;
          prop_memory_throttles_parallelism
        ] );
      ( "cases",
        [ H.case "chain" test_chain_no_parallelism;
          H.case "star speedup" test_star_speedup;
          H.case "memory serializes" test_memory_serializes_star;
          H.case "validator" test_validation_rejects_broken_schedules;
          H.case "arguments" test_bad_arguments
        ] )
    ]
