(* Tests for the self-healing layer: breaker state machine on an
   injected clock, health op over the wire, ring-epoch invalidation of
   the router's sweep memo, supervised restart, live join/leave, plan
   determinism of the nemesis schedule, and a small end-to-end nemesis
   run gating digest parity. *)

module P = Tt_server.Protocol
module Client = Tt_server.Client
module Sh = Tt_shard
module H = Helpers

(* ----------------------------------------------------------- breaker *)

(* Drive the breaker through its whole state machine on a fake clock:
   threshold failures open it, the deadline passes, exactly one trial
   is granted, and the trial's outcome decides closed vs re-opened
   with a longer delay. *)
let test_breaker_state_machine () =
  let clock = ref 0. in
  let metrics = Sh.Metrics.create () in
  (* Zero jitter so the open deadlines are exact powers of the base. *)
  let retry =
    Tt_engine.Retry.create ~retries:4 ~base_delay_s:0.1 ~max_delay_s:0.4
      ~jitter:0. ~seed:1 ()
  in
  let h =
    Sh.Health.create ~threshold:3 ~retry ~now:(fun () -> !clock) ~metrics ()
  in
  let shard = "s0" in
  Alcotest.(check bool) "closed allows" true (Sh.Health.allow h shard);
  Sh.Health.failure h shard;
  Sh.Health.failure h shard;
  Alcotest.(check bool) "still closed below threshold" true
    (Sh.Health.state h shard = Sh.Health.Breaker_closed);
  Sh.Health.failure h shard;
  Alcotest.(check bool) "opens at threshold" true
    (Sh.Health.state h shard = Sh.Health.Breaker_open);
  Alcotest.(check bool) "open refuses" false (Sh.Health.allow h shard);
  (* First open interval is the base delay (jitter 0). *)
  clock := 0.05;
  Alcotest.(check bool) "still open before deadline" false
    (Sh.Health.allow h shard);
  clock := 0.11;
  Alcotest.(check bool) "deadline grants one trial" true
    (Sh.Health.allow h shard);
  Alcotest.(check bool) "half-open" true
    (Sh.Health.state h shard = Sh.Health.Breaker_half_open);
  Alcotest.(check bool) "second caller is refused the trial" false
    (Sh.Health.allow h shard);
  (* Failed trial re-opens with the next, doubled delay. *)
  Sh.Health.failure h shard;
  Alcotest.(check bool) "failed trial re-opens" true
    (Sh.Health.state h shard = Sh.Health.Breaker_open);
  clock := !clock +. 0.11;
  Alcotest.(check bool) "doubled delay not yet up" false
    (Sh.Health.allow h shard);
  clock := !clock +. 0.11;
  Alcotest.(check bool) "second trial granted" true
    (Sh.Health.allow h shard);
  (* Successful trial closes and resets everything. *)
  Sh.Health.success h shard;
  Alcotest.(check bool) "closes on trial success" true
    (Sh.Health.state h shard = Sh.Health.Breaker_closed);
  Alcotest.(check bool) "closed allows again" true (Sh.Health.allow h shard);
  let v = List.hd (Sh.Health.views h) in
  Alcotest.(check int) "two opens counted" 2 v.Sh.Health.opens;
  Alcotest.(check int) "one close counted" 1 v.Sh.Health.closes;
  (* A refusal-style success while closed keeps the failure count at
     zero — partial failure runs never accumulate across successes. *)
  Sh.Health.failure h shard;
  Sh.Health.success h shard;
  Sh.Health.failure h shard;
  Sh.Health.failure h shard;
  Alcotest.(check bool) "successes reset the consecutive count" true
    (Sh.Health.state h shard = Sh.Health.Breaker_closed);
  (* Metrics carry the transitions. *)
  let m = Sh.Metrics.snapshot metrics in
  Alcotest.(check int) "metrics opens" 2 m.Sh.Metrics.breaker_opens;
  Alcotest.(check int) "metrics closes" 1 m.Sh.Metrics.breaker_closes;
  Sh.Health.forget h shard;
  Alcotest.(check (list string)) "forget drops the view" []
    (List.map (fun v -> v.Sh.Health.shard) (Sh.Health.views h))

(* ------------------------------------------------------- health wire *)

let test_health_wire_round_trip () =
  (* Request side. *)
  let encoded = P.encode_request { P.id = "r6"; op = P.Health } in
  (match P.decode_request encoded with
  | Ok { P.id = "r6"; op = P.Health } -> ()
  | Ok _ -> Alcotest.fail "health request decoded to something else"
  | Error (_, _, e) -> Alcotest.failf "health request: %s" e);
  (* Live server answers it with a health object. *)
  let srv = Tt_server.Server.create () in
  Tt_server.Server.start srv;
  Fun.protect
    ~finally:(fun () -> Tt_server.Server.shutdown srv)
    (fun () ->
      Client.with_connection ~port:(Tt_server.Server.port srv) (fun c ->
          match Client.call c P.Health with
          | Ok (P.Health_reply (Tt_engine.Telemetry.Json.Obj fields)) ->
              Alcotest.(check bool) "reports a role" true
                (List.mem_assoc "role" fields);
              Alcotest.(check bool) "reports draining" true
                (List.mem_assoc "draining" fields)
          | Ok _ -> Alcotest.fail "unexpected health reply body"
          | Error e -> Alcotest.failf "health call: %s" e))

(* The typed unavailable code survives the wire. *)
let test_unavailable_round_trip () =
  Alcotest.(check string) "to_string" "unavailable"
    (P.error_code_to_string P.Unavailable);
  match P.error_code_of_string "unavailable" with
  | Some P.Unavailable -> ()
  | _ -> Alcotest.fail "unavailable does not parse back"

(* ------------------------------------------------- ring epoch + memo *)

(* Regression for the routing memo: a memoized sweep order must not
   survive a ring reconfiguration. *)
let test_router_memo_epoch_invalidation () =
  let mk name port = { Sh.Ring.name; host = "127.0.0.1"; port } in
  let a = mk "a" 6101 and b = mk "b" 6102 and c = mk "c" 6103 in
  let router = Sh.Router.create ~ring:(Sh.Ring.create [ a; b; c ]) () in
  Fun.protect
    ~finally:(fun () -> Sh.Router.shutdown router)
    (fun () ->
      let key = "some-job-id" in
      let before = Sh.Router.plan router key in
      Alcotest.(check int) "epoch starts at 0" 0 (Sh.Router.epoch router);
      Alcotest.(check int) "full sweep order" 3 (List.length before);
      (* Memo hit: same plan object again. *)
      Alcotest.(check bool) "memo is stable within an epoch" true
        (Sh.Router.plan router key == before);
      (* Drop whichever node owns the key; the memoized order must not
         resurface it. *)
      let owner = List.hd before in
      let survivors = List.filter (fun n -> n != owner) [ a; b; c ] in
      Sh.Router.reconfigure router (Sh.Ring.create survivors);
      Alcotest.(check int) "epoch bumped" 1 (Sh.Router.epoch router);
      let after = Sh.Router.plan router key in
      Alcotest.(check int) "replanned against the new ring" 2
        (List.length after);
      Alcotest.(check bool) "departed node no longer planned" false
        (List.exists (fun n -> n.Sh.Ring.name = owner.Sh.Ring.name) after);
      (* Breaker state of the departed shard was forgotten. *)
      Alcotest.(check bool) "breaker forgotten" false
        (List.exists
           (fun v -> v.Sh.Health.shard = owner.Sh.Ring.name)
           (Sh.Health.views (Sh.Router.health router))))

(* ------------------------------------------------------- supervision *)

let wait_until ?(timeout_s = 10.) pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

(* Kill a shard under supervision: it must come back on the same port
   with restart + downtime telemetry, and the cluster-wide Prometheus
   exposition (breaker/restart/epoch families included) must stay
   conformant. *)
let test_supervised_restart () =
  let events = ref [] in
  let mu = Mutex.create () in
  let t =
    Sh.Cluster.start ~shards:2 ~workers:1 ~supervise:true
      ~restart_delay_s:0.1
      ~on_event:(fun e ->
        Mutex.lock mu;
        events := e :: !events;
        Mutex.unlock mu)
      ()
  in
  Fun.protect
    ~finally:(fun () -> Sh.Cluster.stop t)
    (fun () ->
      let port_before = Sh.Cluster.shard_port t 1 in
      Sh.Cluster.kill_shard t 1;
      Alcotest.(check bool) "shard restarts" true
        (wait_until (fun () -> Sh.Cluster.shard_alive t 1));
      Alcotest.(check int) "same port after restart" port_before
        (Sh.Cluster.shard_port t 1);
      let snap = Sh.Cluster.snapshot t in
      Alcotest.(check bool) "restart counted" true
        (snap.Sh.Metrics.restarts_total >= 1);
      Alcotest.(check bool) "downtime recorded" true
        (snap.Sh.Metrics.downtime_s > 0.);
      let evs = Mutex.lock mu; let e = !events in Mutex.unlock mu; e in
      Alcotest.(check bool) "down event observed" true
        (List.exists (function Sh.Cluster.Shard_down "s1" -> true | _ -> false) evs);
      Alcotest.(check bool) "restart event observed" true
        (List.exists
           (function Sh.Cluster.Shard_restarted ("s1", _) -> true | _ -> false)
           evs);
      H.check_prometheus_conformance (Sh.Cluster.prometheus t))

(* ---------------------------------------------------------- join/leave *)

let solve_ok port entry idem =
  Client.with_connection ~port (fun c ->
      match Client.solve c ~idem entry with
      | Ok reports -> reports
      | Error e -> Alcotest.failf "solve %S: %s" entry e)

let test_live_join_and_leave () =
  let t = Sh.Cluster.start ~shards:2 ~workers:1 () in
  Fun.protect
    ~finally:(fun () -> Sh.Cluster.stop t)
    (fun () ->
      let port = Sh.Cluster.router_port t in
      let entry = "gen grid2d size=10 :: minmem; liu" in
      let before = P.value_digest (solve_ok port entry "jl-0") in
      Alcotest.(check int) "epoch 0 at boot" 0 (Sh.Cluster.ring_epoch t);
      let i = Sh.Cluster.join t in
      Alcotest.(check int) "join returns the new index" 2 i;
      Alcotest.(check int) "join bumps the epoch" 1 (Sh.Cluster.ring_epoch t);
      Alcotest.(check int) "ring grew" 3
        (List.length (Sh.Ring.nodes (Sh.Cluster.ring t)));
      let after_join = P.value_digest (solve_ok port entry "jl-1") in
      Alcotest.(check string) "same values after join" before after_join;
      Sh.Cluster.leave t 0;
      Alcotest.(check int) "leave bumps the epoch" 2 (Sh.Cluster.ring_epoch t);
      Alcotest.(check bool) "left shard is out of the ring" false
        (Sh.Cluster.shard_in_ring t 0);
      Alcotest.(check bool) "left shard is down" false
        (Sh.Cluster.shard_alive t 0);
      Alcotest.(check int) "ring shrank" 2
        (List.length (Sh.Ring.nodes (Sh.Cluster.ring t)));
      let after_leave = P.value_digest (solve_ok port entry "jl-2") in
      Alcotest.(check string) "same values after leave" before after_leave;
      (* Idempotent; and the last nodes are protected. *)
      Sh.Cluster.leave t 0;
      Alcotest.(check int) "re-leave is a no-op" 2 (Sh.Cluster.ring_epoch t))

(* ----------------------------------------------------------- schedule *)

let test_plan_determinism () =
  let cfg = Sh.Nemesis.default_config in
  let p1 = Sh.Nemesis.plan cfg and p2 = Sh.Nemesis.plan cfg in
  Alcotest.(check string) "same seed, same plan"
    (Sh.Nemesis.plan_to_string p1)
    (Sh.Nemesis.plan_to_string p2);
  let other = Sh.Nemesis.plan { cfg with seed = cfg.seed + 1 } in
  Alcotest.(check bool) "different seed, different plan" true
    (Sh.Nemesis.plan_to_string other <> Sh.Nemesis.plan_to_string p1)

(* Replay each plan over a model of the cluster and check the safety
   rules the runner depends on: one disturbance in flight at a time,
   joins bounded by max_shards, leaves never below two ring members,
   faults only aimed at in-ring shards, and coverage of all three
   fault classes on long enough schedules. *)
let test_plan_wellformed () =
  List.iter
    (fun seed ->
      let cfg =
        { Sh.Nemesis.default_config with seed; steps = 14; shards = 3 }
      in
      let faults = Sh.Nemesis.plan cfg in
      Alcotest.(check int) "plan length" 14 (List.length faults);
      let ring = ref [ 0; 1; 2 ] in
      let total = ref 3 in
      let gated = ref None in
      let kills = ref 0 and cuts = ref 0 and members = ref 0 in
      List.iter
        (fun f ->
          (match !gated with
          | Some g ->
              Alcotest.(check bool)
                (Printf.sprintf "seed %d: gate healed before next fault" seed)
                true
                (f = Sh.Nemesis.Heal g)
          | None ->
              Alcotest.(check bool)
                (Printf.sprintf "seed %d: no spurious heal" seed)
                true
                (match f with Sh.Nemesis.Heal _ -> false | _ -> true));
          match f with
          | Sh.Nemesis.Kill i ->
              incr kills;
              Alcotest.(check bool) "kill targets ring member" true
                (List.mem i !ring)
          | Sh.Nemesis.Stall i | Sh.Nemesis.Partition i ->
              incr cuts;
              Alcotest.(check bool) "cut targets ring member" true
                (List.mem i !ring);
              gated := Some i
          | Sh.Nemesis.Heal _ -> gated := None
          | Sh.Nemesis.Join ->
              incr members;
              ring := !ring @ [ !total ];
              incr total;
              Alcotest.(check bool) "join respects max_shards" true
                (!total <= cfg.Sh.Nemesis.max_shards)
          | Sh.Nemesis.Leave i ->
              incr members;
              Alcotest.(check bool) "leave targets ring member" true
                (List.mem i !ring);
              ring := List.filter (fun j -> j <> i) !ring;
              Alcotest.(check bool) "leave keeps two ring members" true
                (List.length !ring >= 2))
        faults;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d covers kill/cut/membership" seed)
        true
        (!kills >= 1 && !cuts >= 1 && !members >= 1))
    [ 1; 2; 3; 11; 29 ]

(* ---------------------------------------------------------- end to end *)

(* A small nemesis run: every invariant that does not depend on the
   schedule length — digest parity, zero contradicted replies, full
   recovery, a supervised restart — must hold. The full acceptance
   gate (breaker cycle + ring change too) is `make chaos-nemesis`. *)
let test_nemesis_small_run () =
  let cfg =
    { Sh.Nemesis.default_config with
      seed = 11;
      steps = 4;
      requests = 120;
      connections = 2;
      step_gap_s = 0.3
    }
  in
  let r = Sh.Nemesis.run cfg in
  Alcotest.(check bool) "digest parity" true r.Sh.Nemesis.digest_match;
  Alcotest.(check int) "no admitted reply contradicted" 0
    r.Sh.Nemesis.lost_admitted;
  Alcotest.(check bool) "recovered within bound" true r.Sh.Nemesis.recovered;
  Alcotest.(check bool) "supervised restart happened" true
    (r.Sh.Nemesis.restarts >= 1);
  Alcotest.(check bool) "ring changed" true (r.Sh.Nemesis.ring_epoch >= 1)

let () =
  H.run "nemesis"
    [ ( "breaker",
        [ H.case "state machine on an injected clock"
            test_breaker_state_machine
        ] );
      ( "wire",
        [ H.case "health round trip" test_health_wire_round_trip;
          H.case "unavailable code" test_unavailable_round_trip
        ] );
      ( "router",
        [ H.case "memo invalidated on epoch change"
            test_router_memo_epoch_invalidation
        ] );
      ("supervisor", [ H.case "restart with telemetry" test_supervised_restart ]);
      ("membership", [ H.case "live join and leave" test_live_join_and_leave ]);
      ( "schedule",
        [ H.case "plan determinism" test_plan_determinism;
          H.case "plan wellformedness" test_plan_wellformed
        ] );
      ("run", [ H.case "small seeded run" test_nemesis_small_run ])
    ]
