(* Tests for the hand-written Matrix Market parser and writer. *)

module MM = Tt_sparse.Matrix_market
module S = Tt_sparse
module H = Helpers

let parse ?expand_symmetry s = MM.parse_string ?expand_symmetry s

let test_coordinate_real_general () =
  let text =
    "%%MatrixMarket matrix coordinate real general\n\
     % a comment\n\
     \n\
     3 3 4\n\
     1 1 2.0\n\
     2 1 -1.5\n\
     3 3 4\n\
     1 3 1e-2\n"
  in
  let header, t = parse text in
  Alcotest.(check int) "nrows" 3 header.MM.nrows;
  Alcotest.(check int) "nnz" 4 header.MM.nnz;
  Alcotest.(check bool) "format" true (header.MM.format = MM.Coordinate);
  let a = S.Csr.of_triplet t in
  Alcotest.(check (float 1e-12)) "entry" (-1.5) (S.Csr.get a 1 0);
  Alcotest.(check (float 1e-12)) "scientific" 0.01 (S.Csr.get a 0 2)

let test_coordinate_pattern () =
  let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n" in
  let header, t = parse text in
  Alcotest.(check bool) "field" true (header.MM.field = MM.Pattern);
  let a = S.Csr.of_triplet t in
  Alcotest.(check (float 0.)) "pattern value" 1. (S.Csr.get a 0 1)

let test_coordinate_symmetric_expansion () =
  let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 5\n2 1 2\n3 2 7\n" in
  let _, t = parse text in
  let a = S.Csr.of_triplet t in
  Alcotest.(check int) "expanded nnz" 5 (S.Csr.nnz a);
  Alcotest.(check (float 0.)) "mirrored" 2. (S.Csr.get a 0 1);
  Alcotest.(check bool) "is symmetric" true (S.Csr.is_symmetric a);
  (* without expansion: only the stored triangle *)
  let _, raw = parse ~expand_symmetry:false text in
  Alcotest.(check int) "raw nnz" 3 (S.Triplet.nnz raw)

let test_skew_expansion () =
  let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3\n" in
  let _, t = parse text in
  let a = S.Csr.of_triplet t in
  Alcotest.(check (float 0.)) "lower" 3. (S.Csr.get a 1 0);
  Alcotest.(check (float 0.)) "negated mirror" (-3.) (S.Csr.get a 0 1)

let test_complex_real_part () =
  let text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 2.5 -1\n" in
  let _, t = parse text in
  let a = S.Csr.of_triplet t in
  Alcotest.(check (float 0.)) "real part" 2.5 (S.Csr.get a 0 0)

let test_integer_field () =
  let text = "%%MatrixMarket matrix coordinate integer general\n1 2 1\n1 2 7\n" in
  let _, t = parse text in
  Alcotest.(check (float 0.)) "integer" 7. (S.Csr.get (S.Csr.of_triplet t) 0 1)

let test_array_format () =
  let text = "%%MatrixMarket matrix array real general\n2 2\n1\n0\n3\n4\n" in
  let header, t = parse text in
  Alcotest.(check bool) "format" true (header.MM.format = MM.Array_format);
  let a = S.Csr.of_triplet t in
  (* column-major listing; zero dropped *)
  Alcotest.(check int) "nnz" 3 (S.Csr.nnz a);
  Alcotest.(check (float 0.)) "a(0,0)" 1. (S.Csr.get a 0 0);
  Alcotest.(check (float 0.)) "a(0,1)" 3. (S.Csr.get a 0 1);
  Alcotest.(check (float 0.)) "a(1,1)" 4. (S.Csr.get a 1 1)

let test_array_symmetric () =
  (* lower triangle per column: col 1 = (1,1),(2,1); col 2 = (2,2) *)
  let text = "%%MatrixMarket matrix array real symmetric\n2 2\n5\n2\n6\n" in
  let _, t = parse text in
  let a = S.Csr.of_triplet t in
  Alcotest.(check (float 0.)) "diag" 5. (S.Csr.get a 0 0);
  Alcotest.(check (float 0.)) "mirror" 2. (S.Csr.get a 0 1);
  Alcotest.(check (float 0.)) "lower" 2. (S.Csr.get a 1 0);
  Alcotest.(check (float 0.)) "second diag" 6. (S.Csr.get a 1 1)

let expect_error ~line text =
  match parse text with
  | exception MM.Parse_error { line = l; _ } ->
      Alcotest.(check int) "error line" line l
  | _ -> Alcotest.failf "accepted %S" text

let test_errors () =
  expect_error ~line:1 "%%NotMM matrix coordinate real general\n1 1 1\n1 1 1\n";
  expect_error ~line:1 "%%MatrixMarket matrix funny real general\n1 1 1\n1 1 1\n";
  expect_error ~line:1 "%%MatrixMarket matrix coordinate real sometimes\n1 1 0\n";
  expect_error ~line:2 "%%MatrixMarket matrix coordinate real general\nnot a size\n";
  expect_error ~line:3 "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n";
  expect_error ~line:3 "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n";
  expect_error ~line:3 "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 abc\n";
  (* truncated entry list: reported at the (empty) final line *)
  expect_error ~line:4 "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"

let expect_message ~line ~fragment text =
  match parse text with
  | exception MM.Parse_error { line = l; message } ->
      Alcotest.(check int) "error line" line l;
      Alcotest.(check bool)
        (Printf.sprintf "message %S mentions %S" message fragment)
        true (H.contains message fragment)
  | _ -> Alcotest.failf "accepted %S" text

let test_hardened_rejections () =
  let banner = "%%MatrixMarket matrix coordinate real general\n" in
  (* non-finite values would silently poison every downstream weight *)
  expect_message ~line:3 ~fragment:"non-finite" (banner ^ "1 1 1\n1 1 nan\n");
  expect_message ~line:3 ~fragment:"non-finite" (banner ^ "1 1 1\n1 1 inf\n");
  expect_message ~line:3 ~fragment:"non-finite" (banner ^ "1 1 1\n1 1 -infinity\n");
  (* dimensions must be positive, the entry count non-negative *)
  expect_message ~line:2 ~fragment:"non-positive" (banner ^ "0 3 0\n");
  expect_message ~line:2 ~fragment:"non-positive" (banner ^ "3 0 0\n");
  expect_message ~line:2 ~fragment:"non-positive" (banner ^ "-2 3 1\n1 1 1\n");
  expect_message ~line:2 ~fragment:"negative entry count" (banner ^ "2 2 -1\n");
  (* 1-based indices outside the declared shape, including zero *)
  expect_message ~line:3 ~fragment:"outside" (banner ^ "2 2 1\n0 1 1.0\n");
  expect_message ~line:3 ~fragment:"outside" (banner ^ "2 2 1\n1 3 1.0\n");
  (* unrepresentable integers are overflow, not garbage *)
  expect_message ~line:2 ~fragment:"overflows"
    (banner ^ "99999999999999999999 1 1\n1 1 1\n");
  expect_message ~line:3 ~fragment:"overflows"
    (banner ^ "2 2 1\n1 99999999999999999999 1.0\n");
  expect_message ~line:3 ~fragment:"not an integer" (banner ^ "2 2 1\nx 1 1.0\n")

let test_write_read_round_trip () =
  let a = S.Spgen.grid2d 6 in
  let text = MM.to_string a in
  let header, t = parse text in
  Alcotest.(check bool) "general" true (header.MM.symmetry = MM.General);
  let b = S.Csr.of_triplet t in
  Alcotest.(check bool) "pattern" true (S.Csr.equal_pattern a b);
  Alcotest.(check bool) "values" true (a.S.Csr.values = b.S.Csr.values)

let test_write_symmetric_round_trip () =
  let a = S.Spgen.grid2d_9pt 5 in
  let text = MM.to_string ~symmetry:MM.Symmetric a in
  let _, t = parse text in
  let b = S.Csr.of_triplet t in
  Alcotest.(check bool) "pattern restored via expansion" true (S.Csr.equal_pattern a b)

let test_write_file_round_trip () =
  let a = S.Spgen.tridiagonal 10 in
  let path = Filename.temp_file "tt_mm" ".mtx" in
  MM.write_file path a;
  let _, t = MM.read_file path in
  Sys.remove path;
  Alcotest.(check bool) "file round trip" true
    (S.Csr.equal_pattern a (S.Csr.of_triplet t))

let prop_round_trip =
  H.qcheck ~count:100 "write -> parse round trip on random matrices"
    (QCheck.map
       (fun seed ->
         let rng = Tt_util.Rng.create seed in
         S.Spgen.random_sym ~rng ~n:(Tt_util.Rng.int_incl rng 1 20) ~nnz_per_row:2.0)
       QCheck.(int_bound 1_000_000))
    (fun a ->
      let _, t = parse (MM.to_string a) in
      let b = S.Csr.of_triplet t in
      S.Csr.equal_pattern a b
      && Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-12) a.S.Csr.values
           b.S.Csr.values)

let () =
  H.run "matrix_market"
    [ ( "parsing",
        [ H.case "coordinate real" test_coordinate_real_general;
          H.case "pattern" test_coordinate_pattern;
          H.case "symmetric expansion" test_coordinate_symmetric_expansion;
          H.case "skew expansion" test_skew_expansion;
          H.case "complex" test_complex_real_part;
          H.case "integer" test_integer_field;
          H.case "array" test_array_format;
          H.case "array symmetric" test_array_symmetric
        ] );
      ( "errors",
        [ H.case "malformed inputs" test_errors;
          H.case "hardened rejections" test_hardened_rejections
        ] );
      ( "round trips",
        [ H.case "general" test_write_read_round_trip;
          H.case "symmetric" test_write_symmetric_round_trip;
          H.case "file" test_write_file_round_trip;
          prop_round_trip
        ] )
    ]
