(* The command-line front end.

     treetrav generate --kind grid2d --size 20 -o grid.mtx
     treetrav analyze grid.mtx --ordering mindeg --amalgamation 4
     treetrav schedule grid.mtx --memory 120%   (MinIO planning)
     treetrav corpus --scale 1                  (describe the bench corpus)
     treetrav batch jobs.manifest --jobs 4      (engine batch execution)  *)

open Cmdliner

module S = Tt_sparse

(* ------------------------------------------------------------- helpers *)

let load_matrix path =
  let _header, t = S.Matrix_market.read_file path in
  S.Csr.of_triplet t

let ordering_conv =
  let parse = function
    | "natural" -> Ok Tt_workloads.Pipeline.Natural
    | "rcm" -> Ok Tt_workloads.Pipeline.Rcm
    | "mindeg" -> Ok Tt_workloads.Pipeline.Min_degree
    | "nd" -> Ok Tt_workloads.Pipeline.Nested_dissection
    | s -> Error (`Msg ("unknown ordering: " ^ s))
  in
  Arg.conv (parse, fun ppf o -> Fmt.string ppf (Tt_workloads.Pipeline.ordering_name o))

let policy_conv =
  let parse s =
    match
      List.find_opt
        (fun (name, _) ->
          String.lowercase_ascii name
          = String.lowercase_ascii (String.map (fun c -> if c = '-' then ' ' else c) s))
        Tt_core.Minio.all_policies
    with
    | Some (_, p) -> Ok p
    | None -> (
        match int_of_string_opt s with
        | Some k when k >= 1 -> Ok (Tt_core.Minio.Best_k k)
        | _ -> Error (`Msg ("unknown policy: " ^ s)))
  in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (Tt_core.Minio.policy_name p))

(* ------------------------------------------------------------ generate *)

let generate kind size seed output =
  let rng = Tt_util.Rng.create seed in
  let m =
    match kind with
    | "grid2d" -> S.Spgen.grid2d size
    | "grid9" -> S.Spgen.grid2d_9pt size
    | "grid3d" -> S.Spgen.grid3d size
    | "banded" -> S.Spgen.banded ~rng ~n:size ~bandwidth:(max 2 (size / 50)) ~fill:0.4
    | "random" -> S.Spgen.random_sym ~rng ~n:size ~nnz_per_row:3.0
    | "arrow" -> S.Spgen.block_arrow ~n:size ~blocks:8 ~border:(max 2 (size / 40))
    | "powerlaw" -> S.Spgen.power_law ~rng ~n:size ~edges_per_node:2
    | "tridiagonal" -> S.Spgen.tridiagonal size
    | other -> failwith ("unknown kind: " ^ other)
  in
  S.Matrix_market.write_file ~symmetry:S.Matrix_market.Symmetric output m;
  Printf.printf "wrote %s: n = %d, nnz = %d (coordinate real symmetric)\n" output
    m.S.Csr.nrows (S.Csr.nnz m);
  0

let generate_cmd =
  let kind =
    Arg.(
      value
      & opt string "grid2d"
      & info [ "kind"; "k" ] ~docv:"KIND"
          ~doc:
            "Matrix family: grid2d, grid9, grid3d, banded, random, arrow, powerlaw, \
             tridiagonal.")
  in
  let size =
    Arg.(value & opt int 20 & info [ "size"; "n" ] ~docv:"N" ~doc:"Size parameter.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let output =
    Arg.(value & opt string "matrix.mtx" & info [ "output"; "o" ] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic SPD matrix in Matrix Market form.")
    Term.(const generate $ kind $ size $ seed $ output)

(* ------------------------------------------------------------- analyze *)

let analyze path ordering amalgamation =
  let m = load_matrix path in
  let asm = Tt_workloads.Pipeline.assembly_tree ~ordering ~amalgamation m in
  let tree = asm.Tt_etree.Assembly.tree in
  Printf.printf "matrix: n = %d, nnz = %d\n" m.S.Csr.nrows (S.Csr.nnz m);
  Printf.printf "assembly tree (%s, amalgamation %d): %s\n"
    (Tt_workloads.Pipeline.ordering_name ordering)
    amalgamation
    (Tt_workloads.Pipeline.stats asm);
  let po, _ = Tt_core.Postorder_opt.run tree in
  let (opt, order), rounds = ((Tt_core.Minmem.run tree), Tt_core.Minmem.iterations tree) in
  Printf.printf "memory: best postorder %d, optimal %d (%s; MinMem rounds: %d)\n" po opt
    (if po = opt then "postorder is optimal"
     else Printf.sprintf "postorder +%.2f%%" (100. *. (float_of_int po /. float_of_int opt -. 1.)))
    rounds;
  (match Tt_core.Traversal.check tree ~memory:opt order with
  | Tt_core.Traversal.Feasible _ -> ()
  | _ -> prerr_endline "internal error: optimal traversal failed validation");
  0

let analyze_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mtx") in
  let ordering =
    Arg.(
      value
      & opt ordering_conv Tt_workloads.Pipeline.Min_degree
      & info [ "ordering" ] ~docv:"ORD" ~doc:"natural, rcm, mindeg or nd.")
  in
  let amalgamation =
    Arg.(value & opt int 4 & info [ "amalgamation"; "a" ] ~docv:"K"
           ~doc:"Relaxed amalgamation limit (paper: 1, 2, 4, 16).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"MinMemory analysis of a Matrix Market file's assembly tree.")
    Term.(const analyze $ path $ ordering $ amalgamation)

(* ------------------------------------------------------------ schedule *)

let schedule path ordering amalgamation memory_pct policy =
  let m = load_matrix path in
  let asm = Tt_workloads.Pipeline.assembly_tree ~ordering ~amalgamation m in
  let tree = asm.Tt_etree.Assembly.tree in
  let opt = Tt_core.Minmem.min_memory tree in
  let floor = Tt_core.Tree.max_mem_req tree in
  let memory =
    floor + int_of_float (float_of_int (opt - floor) *. memory_pct /. 100.)
  in
  Printf.printf "tree: %s\n" (Tt_workloads.Pipeline.stats asm);
  Printf.printf "in-core optimum %d, working-set floor %d, budget %d (%.0f%%)\n" opt
    floor memory memory_pct;
  let plan = Tt_core.Planner.plan ~policy tree ~memory in
  Printf.printf "%s\n" (Tt_core.Planner.describe plan);
  (match plan with
  | Tt_core.Planner.Out_of_core { schedule = sched; io; _ } ->
      let evictions =
        Array.fold_left
          (fun acc t -> if t <> Tt_core.Io_schedule.never then acc + 1 else acc)
          0 sched.Tt_core.Io_schedule.tau
      in
      Printf.printf "%d files evicted; I/O is %.1f%% of the tree's total file volume\n"
        evictions
        (100. *. float_of_int io /. float_of_int (max 1 (Tt_core.Tree.total_f tree)))
  | _ -> ());
  0

let schedule_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mtx") in
  let ordering =
    Arg.(
      value
      & opt ordering_conv Tt_workloads.Pipeline.Min_degree
      & info [ "ordering" ] ~docv:"ORD")
  in
  let amalgamation =
    Arg.(value & opt int 4 & info [ "amalgamation"; "a" ] ~docv:"K")
  in
  let memory =
    Arg.(
      value
      & opt float 50.
      & info [ "memory"; "m" ] ~docv:"PCT"
          ~doc:
            "Memory budget as a percentage of the gap between the working-set floor \
             and the in-core optimum (0 = floor, 100 = optimum).")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Tt_core.Minio.First_fit
      & info [ "policy"; "p" ] ~docv:"POLICY"
          ~doc:"lsnf, 'first fit', 'best fit', 'first fill', 'best fill', or K for Best-K.")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Plan an out-of-core traversal under a memory budget.")
    Term.(const schedule $ path $ ordering $ amalgamation $ memory $ policy)

(* ---------------------------------------------------------------- sched *)

let sched path kind size seed ordering amalgamation procs steps algo mem =
  let m =
    match path with
    | Some p -> load_matrix p
    | None -> (
        let rng = Tt_util.Rng.create seed in
        match kind with
        | "grid2d" -> S.Spgen.grid2d size
        | "grid9" -> S.Spgen.grid2d_9pt size
        | "grid3d" -> S.Spgen.grid3d size
        | "banded" ->
            S.Spgen.banded ~rng ~n:size ~bandwidth:(max 2 (size / 50)) ~fill:0.4
        | "random" -> S.Spgen.random_sym ~rng ~n:size ~nnz_per_row:3.0
        | "arrow" ->
            S.Spgen.block_arrow ~n:size ~blocks:8 ~border:(max 2 (size / 40))
        | "powerlaw" -> S.Spgen.power_law ~rng ~n:size ~edges_per_node:2
        | "tridiagonal" -> S.Spgen.tridiagonal size
        | other -> failwith ("unknown kind: " ^ other))
  in
  let asm = Tt_workloads.Pipeline.assembly_tree ~ordering ~amalgamation m in
  let tree = asm.Tt_etree.Assembly.tree in
  let work = Tt_sched.Work.default tree in
  let seq = Tt_core.Parallel.sequential_makespan tree ~work in
  let cp = Tt_core.Parallel.critical_path tree ~work in
  let minmem = Tt_core.Minmem.min_memory tree in
  Printf.printf "tree: %s\n" (Tt_workloads.Pipeline.stats asm);
  Printf.printf
    "procs %d; sequential makespan %d, critical path %d; minmem %d, total_f \
     %d\n"
    procs seq cp minmem
    (Tt_core.Tree.total_f tree);
  let speedup makespan = float_of_int seq /. float_of_int makespan in
  match algo with
  | None ->
      (* full memory/makespan sweep; '*' marks the Pareto frontier *)
      let points = Tt_sched.Pareto.sweep ~steps tree ~procs ~work in
      let frontier = Tt_sched.Pareto.frontier points in
      Printf.printf "%-9s %10s %10s %10s %8s\n" "algo" "budget" "makespan"
        "peak" "speedup";
      List.iter
        (fun (p : Tt_sched.Pareto.point) ->
          Printf.printf "%-9s %10d %10d %10d %7.2fx%s\n" p.algo p.budget
            p.makespan p.peak (speedup p.makespan)
            (if List.mem p frontier then " *" else ""))
        points;
      Printf.printf "frontier: %d of %d points\n" (List.length frontier)
        (List.length points);
      Printf.printf "pareto digest: %s\n" (Tt_sched.Pareto.digest points);
      0
  | Some name -> (
      match Tt_engine.Job.par_algo_of_string name with
      | None ->
          Printf.eprintf
            "sched: unknown --algo %S (expected greedy, booking or split)\n"
            name;
          2
      | Some algo -> (
          let memory = int_of_float (mem *. float_of_int minmem) in
          Printf.printf "budget: %d words (%.2f x minmem)\n" memory mem;
          let described =
            match algo with
            | Tt_engine.Job.Greedy ->
                Option.map
                  (fun s -> (s, Tt_sched.Validate.check tree ~memory ~work s))
                  (Tt_core.Parallel.list_schedule tree ~procs ~memory ~work)
            | Tt_engine.Job.Booking ->
                Option.map (fun (order, s) ->
                    (s, Tt_sched.Validate.check ~activation:order tree ~memory ~work s))
                  (Tt_sched.Booking.run tree ~procs ~memory ~work)
            | Tt_engine.Job.Split ->
                let s = Tt_sched.Split.run tree ~procs ~work in
                Some
                  ( s,
                    Tt_sched.Validate.check tree
                      ~memory:(max memory s.Tt_core.Parallel.peak_memory)
                      ~work s )
          in
          match described with
          | None ->
              Printf.printf "no schedule at this budget (minmem %d)\n" minmem;
              1
          | Some (s, verdict) -> (
              Printf.printf "makespan %d (%.2fx speedup), peak %d%s\n"
                s.Tt_core.Parallel.makespan
                (speedup s.Tt_core.Parallel.makespan)
                s.Tt_core.Parallel.peak_memory
                (if s.Tt_core.Parallel.peak_memory > memory then
                   " (over budget: split trades memory for makespan)"
                 else "");
              match verdict with
              | Ok () ->
                  print_endline "validator: ok";
                  0
              | Error v ->
                  Printf.printf "validator: FAILED (%s)\n"
                    (Tt_sched.Validate.violation_to_string v);
                  1)))

let sched_cmd =
  let path = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.mtx") in
  let kind =
    Arg.(value & opt string "grid2d"
         & info [ "kind"; "k" ] ~docv:"KIND"
             ~doc:"Generated matrix family when no FILE.mtx is given.")
  in
  let size = Arg.(value & opt int 20 & info [ "size" ] ~docv:"N") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let ordering =
    Arg.(
      value
      & opt ordering_conv Tt_workloads.Pipeline.Min_degree
      & info [ "ordering" ] ~docv:"ORD")
  in
  let amalgamation =
    Arg.(value & opt int 4 & info [ "amalgamation"; "a" ] ~docv:"K")
  in
  let procs =
    Arg.(value & opt int 4 & info [ "procs" ] ~docv:"N" ~doc:"Processors.")
  in
  let steps =
    Arg.(value & opt int 8
         & info [ "steps" ] ~docv:"K"
             ~doc:"Budget points in the Pareto sweep (minmem to total_f).")
  in
  let algo =
    Arg.(value & opt (some string) None
         & info [ "algo" ] ~docv:"ALGO"
             ~doc:"Run one scheduler (greedy, booking or split) at --mem \
                   instead of the full Pareto sweep.")
  in
  let mem =
    Arg.(value & opt float 1.5
         & info [ "mem" ] ~docv:"F"
             ~doc:"Budget as a multiple of the MinMem optimum (with --algo).")
  in
  Cmd.v
    (Cmd.info "sched"
       ~doc:
         "Memory-bounded parallel scheduling: per-instance memory/makespan \
          Pareto sweep, or one scheduler at one budget.")
    Term.(const sched $ path $ kind $ size $ seed $ ordering $ amalgamation
          $ procs $ steps $ algo $ mem)

(* -------------------------------------------------------------- corpus *)

let corpus scale seed export =
  (match export with
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter
        (fun (name, m) ->
          let path = Filename.concat dir (name ^ ".mtx") in
          S.Matrix_market.write_file ~symmetry:S.Matrix_market.Symmetric path m;
          Printf.printf "wrote %s (n = %d, nnz = %d)\n" path m.S.Csr.nrows (S.Csr.nnz m))
        (Tt_workloads.Dataset.matrices ~scale ~seed ())
  | None ->
      let insts = Tt_workloads.Dataset.corpus ~scale ~seed () in
      Printf.printf "%d instances (scale %d, seed %d)\n" (List.length insts) scale seed;
      List.iter
        (fun (i : Tt_workloads.Dataset.instance) ->
          Printf.printf "%-24s p=%d\n" i.name (Tt_core.Tree.size i.tree))
        insts);
  0

let corpus_cmd =
  let scale = Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let export =
    Arg.(value & opt (some string) None
         & info [ "export" ] ~docv:"DIR"
             ~doc:"Write the corpus matrices to DIR in Matrix Market form.")
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"List or export the benchmark corpus.")
    Term.(const corpus $ scale $ seed $ export)

(* --------------------------------------------------------------- batch *)

let batch manifest jobs timeout telemetry cache_dir faults retries journal
    resume =
  let module E = Tt_engine.Executor in
  let module J = Tt_engine.Job in
  let fail msg =
    Printf.eprintf "%s\n" msg;
    Error 1
  in
  let ( let* ) = Result.bind in
  let run () =
    let* text =
      match In_channel.with_open_text manifest In_channel.input_all with
      | text -> Ok text
      | exception Sys_error e -> fail e
    in
    let* batch_jobs =
      match Tt_engine.Manifest.parse text with
      | Ok jobs -> Ok jobs
      | Error e -> fail (Printf.sprintf "%s: %s" manifest e)
    in
    let* faults =
      match faults with
      | None -> Ok None
      | Some spec -> (
          match Tt_engine.Fault.of_string spec with
          | Ok f -> Ok (Some f)
          | Error e -> fail (Printf.sprintf "--faults %s: %s" spec e))
    in
    (* The journal is keyed by the manifest text: resuming against an
       edited manifest would silently skip jobs whose meaning changed. *)
    let corpus = Digest.to_hex (Digest.string text) in
    let* jstate =
      match (journal, resume) with
      | Some _, Some _ -> fail "--journal and --resume are mutually exclusive"
      | Some path, None -> Ok (Some (Tt_engine.Journal.create path ~corpus, None))
      | None, Some path -> (
          match Tt_engine.Journal.load_or_create path ~corpus with
          | Ok (j, completed) -> Ok (Some (j, Some completed))
          | Error e -> fail (Printf.sprintf "--resume %s: %s" path e))
      | None, None -> Ok None
    in
    let jnl = Option.map fst jstate in
    let completed = Option.bind jstate snd in
    let retry =
      if retries = 0 then Tt_engine.Retry.none
      else Tt_engine.Retry.create ~retries ()
    in
    let sink = Option.map Tt_engine.Telemetry.to_file telemetry in
    let domains = if jobs = 0 then E.default_domains () else jobs in
    let exec =
      E.create ~domains ?timeout
        ~cache:(Tt_engine.Cache.create ?persist:cache_dir ?faults ())
        ?telemetry:sink ?faults ~retry ?journal:jnl ?completed ()
    in
    let reports, summary = E.run_batch exec batch_jobs in
    Array.iteri
      (fun i (r : E.report) ->
        Printf.printf "%4d  %-44s %-10s %s%s\n" i r.E.job.J.label
          (String.sub (J.id r.E.job) 0 10)
          (J.result_to_string r.E.result)
          (if r.E.resumed then "  [resumed]"
           else if r.E.cache_hit then "  [cached]"
           else Printf.sprintf "  (%.3fs)" r.E.wall))
      reports;
    Printf.printf
      "%d jobs on %d domain(s) in %.2fs (utilization %.0f%%), cache: %d hits \
       / %d misses, %d retries, %d resumed, %d errors\n"
      summary.E.jobs domains summary.E.wall
      (100. *. E.utilization summary)
      summary.E.cache_hits summary.E.cache_misses summary.E.retries
      summary.E.resumed summary.E.errors;
    Printf.printf "results digest: %s\n" (E.results_digest reports);
    (match telemetry with
    | Some f -> Printf.printf "telemetry written to %s\n" f
    | None -> ());
    Option.iter Tt_engine.Telemetry.close sink;
    Option.iter Tt_engine.Journal.close jnl;
    Ok (if summary.E.errors > 0 then 1 else 0)
  in
  match run () with Ok code | Error code -> code

let batch_cmd =
  let manifest =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MANIFEST"
         ~doc:"Job manifest: one '<source> :: <job> [; <job>]*' entry per line \
               (see the README's treetrav batch section for the grammar).")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Engine domains (0 = one per core, capped at 8).")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Degrade jobs exceeding this wall time to errors \
                   (detected on completion; the batch continues).")
  in
  let telemetry =
    Arg.(value & opt (some string) None
         & info [ "telemetry" ] ~docv:"FILE" ~doc:"Write JSONL telemetry to FILE.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persist solver results to DIR, shared across invocations.")
  in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Inject deterministic faults, e.g. \
                   'crash=0.3,io=0.1,delay=0.2,seed=7'. Decisions are a pure \
                   function of (seed, job id, attempt), so chaos runs \
                   reproduce exactly.")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry crashed/fault-injected jobs up to N times with \
                   deterministic capped exponential backoff.")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Write a fresh write-ahead journal of completed results to \
                   FILE (flushed per job, so a killed run can be resumed).")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"FILE"
             ~doc:"Resume from (and keep appending to) the journal at FILE: \
                   jobs it records are not recomputed. Refused if the \
                   manifest changed since the journal was written.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run a manifest of solver jobs on the multicore batch engine.")
    Term.(const batch $ manifest $ jobs $ timeout $ telemetry $ cache_dir
          $ faults $ retries $ journal $ resume)

(* --------------------------------------------------------------- serve *)

let serve host port workers queue deadline timeout cache_dir max_entries
    telemetry retries idle_timeout max_inflight replay_capacity wedge_grace
    worker_faults =
  let module Srv = Tt_server.Server in
  let worker_faults =
    match worker_faults with
    | None -> None
    | Some spec -> (
        match Tt_engine.Fault.of_string spec with
        | Ok f -> Some f
        | Error e ->
            Printf.eprintf "serve: bad --worker-faults spec: %s\n" e;
            exit 2)
  in
  let config =
    { Srv.default_config with
      Srv.host;
      port;
      workers;
      queue_capacity = queue;
      max_deadline_s = deadline;
      idle_timeout_s = idle_timeout;
      max_inflight;
      replay_capacity;
      wedge_grace_s = wedge_grace;
      worker_faults
    }
  in
  let retry =
    if retries = 0 then Tt_engine.Retry.none
    else Tt_engine.Retry.create ~retries ()
  in
  let sink = Option.map Tt_engine.Telemetry.to_file telemetry in
  let cache = Tt_engine.Cache.create ?persist:cache_dir ?max_entries () in
  let t =
    Srv.create ~config ~cache ~retry ?telemetry:sink ?job_timeout:timeout ()
  in
  Printf.printf "listening on %s:%d (%d workers, queue %d, deadline %.1fs)\n"
    host (Srv.port t) (max 1 workers) queue deadline;
  flush stdout;
  let stop_signal _ = Srv.request_shutdown t in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal);
  Srv.run t;
  Option.iter Tt_engine.Telemetry.close sink;
  print_string
    (Tt_server.Metrics.to_prometheus (Tt_server.Metrics.snapshot (Srv.metrics t)));
  Printf.printf "drained cleanly\n";
  0

let serve_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
         ~doc:"Bind address.")
  in
  let port =
    Arg.(value & opt int 7411
         & info [ "port"; "p" ] ~docv:"PORT"
             ~doc:"TCP port (0 picks an ephemeral port, printed on startup).")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers"; "w" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission queue capacity; further solve requests are \
                   refused with the 'overloaded' error code.")
  in
  let deadline =
    Arg.(value & opt float 30.
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Per-request deadline ceiling and default.")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Engine per-job timeout (as in treetrav batch).")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persist solver results to DIR, shared across requests \
                   and invocations.")
  in
  let max_entries =
    Arg.(value & opt (some int) None
         & info [ "max-entries" ] ~docv:"N"
             ~doc:"Bound the in-memory result cache to N entries \
                   (least-recently-used eviction). Default: unbounded.")
  in
  let telemetry =
    Arg.(value & opt (some string) None
         & info [ "telemetry" ] ~docv:"FILE" ~doc:"Write JSONL telemetry to FILE.")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N" ~doc:"Engine retry budget per job.")
  in
  let idle_timeout =
    Arg.(value & opt float 300.
         & info [ "idle-timeout" ] ~docv:"SECONDS"
             ~doc:"Evict connections idle this long with nothing in flight \
                   (0 disables).")
  in
  let max_inflight =
    Arg.(value & opt int 32
         & info [ "max-inflight" ] ~docv:"N"
             ~doc:"Per-connection cap on unreplied solve requests; past it \
                   solves are refused with 'overloaded'.")
  in
  let replay_capacity =
    Arg.(value & opt int 1024
         & info [ "replay-capacity" ] ~docv:"N"
             ~doc:"Bound on the idempotency replay cache (FIFO eviction).")
  in
  let wedge_grace =
    Arg.(value & opt float 5.
         & info [ "wedge-grace" ] ~docv:"SECONDS"
             ~doc:"Grace beyond a request's deadline before its worker is \
                   declared wedged and replaced.")
  in
  let worker_faults =
    Arg.(value & opt (some string) None
         & info [ "worker-faults" ] ~docv:"SPEC"
             ~doc:"Chaos hook: roll this fault spec (as in treetrav batch \
                   --faults, e.g. 'crash=0.15,seed=5') once per admitted \
                   request — crash/io kill the worker domain (exercising \
                   supervision), delay wedges it.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the batch engine over TCP (newline-delimited JSON; \
             SIGINT/SIGTERM drain gracefully).")
    Term.(const serve $ host $ port $ workers $ queue $ deadline $ timeout
          $ cache_dir $ max_entries $ telemetry $ retries $ idle_timeout
          $ max_inflight $ replay_capacity $ wedge_grace $ worker_faults)

(* ------------------------------------------------------------- request *)

let manifest_entries text =
  (* One solve request per manifest entry line, comments and blanks
     skipped exactly like [Manifest.parse] would. *)
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some line)

let request host port op manifest timeout =
  let module C = Tt_server.Client in
  let module P = Tt_server.Protocol in
  let module J = Tt_engine.Job in
  try
    C.with_connection ~host ~port (fun c ->
        match op with
        | "ping" -> (
            match C.call c P.Ping with
            | Ok P.Pong ->
                print_endline "pong";
                0
            | Ok _ | Error _ ->
                prerr_endline "unexpected reply to ping";
                1)
        | "stats" -> (
            match C.call c P.Stats with
            | Ok (P.Stats_reply j) ->
                print_endline (Tt_engine.Telemetry.Json.to_string j);
                0
            | Ok _ | Error _ ->
                prerr_endline "unexpected reply to stats";
                1)
        | "shutdown" -> (
            match C.call c P.Shutdown with
            | Ok P.Draining ->
                print_endline "draining";
                0
            | Ok _ | Error _ ->
                prerr_endline "unexpected reply to shutdown";
                1)
        | "solve" -> (
            match manifest with
            | None ->
                prerr_endline "request: --op solve needs a MANIFEST argument";
                1
            | Some path ->
                let text = In_channel.with_open_text path In_channel.input_all in
                let entries = manifest_entries text in
                let failures = ref 0 in
                let all =
                  List.concat_map
                    (fun entry ->
                      match C.solve c ?timeout_s:timeout entry with
                      | Ok reports -> reports
                      | Error e ->
                          Printf.eprintf "entry %S refused: %s\n" entry e;
                          incr failures;
                          [])
                    entries
                in
                List.iteri
                  (fun i (r : P.job_report) ->
                    Printf.printf "%4d  %-44s %-10s %s%s\n" i r.P.label
                      (String.sub r.P.job_id 0 10)
                      (J.result_to_string r.P.result)
                      (if r.P.cache_hit then "  [cached]"
                       else Printf.sprintf "  (%.3fs)" r.P.wall_s))
                  all;
                Printf.printf "results digest: %s\n" (P.sequence_digest all);
                if !failures > 0 then 1 else 0)
        | other ->
            Printf.eprintf "request: unknown --op %s\n" other;
            1)
  with
  | Unix.Unix_error (e, _, _) ->
      Printf.eprintf "request: cannot reach %s:%d: %s\n" host port
        (Unix.error_message e);
      1
  | Sys_error e ->
      Printf.eprintf "request: %s\n" e;
      1

let request_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST")
  in
  let port =
    Arg.(value & opt int 7411 & info [ "port"; "p" ] ~docv:"PORT")
  in
  let op =
    Arg.(value & opt string "solve"
         & info [ "op" ] ~docv:"OP" ~doc:"solve, ping, stats or shutdown.")
  in
  let manifest =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"MANIFEST"
         ~doc:"Manifest whose entries are sent as solve requests, in \
               order, over one connection — the printed results digest \
               matches 'treetrav batch MANIFEST'.")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-request deadline.")
  in
  Cmd.v
    (Cmd.info "request" ~doc:"Send one client request to a running server.")
    Term.(const request $ host $ port $ op $ manifest $ timeout)

(* ------------------------------------------------------------- loadgen *)

let loadgen host port connections requests seed timeout rate open_loop
    batch_share entries_file mix chaos retries read_timeout connect_timeout
    tag cluster =
  let module L = Tt_server.Loadgen in
  if batch_share < 0. || batch_share > 1. then begin
    prerr_endline "loadgen: --priority-mix must be in [0, 1]";
    exit 2
  end;
  let entries =
    match entries_file with
    | Some path ->
        let text = In_channel.with_open_text path In_channel.input_all in
        Array.of_list (manifest_entries text)
    | None -> (
        match L.entries_of_mix mix with
        | Some entries -> entries
        | None ->
            Printf.eprintf "loadgen: unknown --mix %S (expected %s)\n" mix
              (String.concat ", " (List.map fst L.mixes));
            exit 2)
  in
  let chaos =
    match chaos with
    | None -> None
    | Some spec -> (
        match Tt_server.Netfault.faults_of_string spec with
        | Ok f -> Some f
        | Error e ->
            Printf.eprintf "loadgen: bad --chaos spec: %s\n" e;
            exit 2)
  in
  if Array.length entries = 0 then begin
    prerr_endline "loadgen: entries file has no manifest entries";
    1
  end
  else begin
    if chaos <> None && cluster <> None then begin
      prerr_endline "loadgen: --chaos and --cluster are incompatible";
      exit 2
    end;
    let retry =
      if retries = 0 then Tt_engine.Retry.none
      else Tt_engine.Retry.create ~retries ~seed ()
    in
    (* --cluster MAP swaps the per-connection client for a shard-aware
       one routing directly on the ring — no router hop. Shared shard
       metrics let the run report observed forwards/failovers. *)
    let shard_metrics, solver =
      match cluster with
      | None -> (None, None)
      | Some map -> (
          match Tt_shard.Ring.of_string map with
          | Error e ->
              Printf.eprintf "loadgen: bad --cluster map: %s\n" e;
              exit 2
          | Ok ring ->
              let m = Tt_shard.Metrics.create () in
              ( Some m,
                Some
                  (Tt_shard.Shard_client.loadgen_solver
                     ?connect_timeout_s:connect_timeout
                     ~read_timeout_s:read_timeout ~retry ~metrics:m ring) ))
    in
    let cfg =
      { L.host;
        port;
        connections;
        requests;
        seed;
        entries;
        timeout_s = timeout;
        mode =
          (* --open-loop is a total target rate, split across the
             connections; --rate is already per-connection. *)
          (match (open_loop, rate) with
          | Some total, _ -> L.Open (total /. float_of_int (max 1 connections))
          | None, Some r -> L.Open r
          | None, None -> L.Closed);
        batch_share;
        retry;
        read_timeout_s = read_timeout;
        connect_timeout_s = connect_timeout;
        chaos;
        tag;
        solver
      }
    in
    let s = L.run cfg in
    print_string (L.summary_to_string s);
    Option.iter
      (fun m ->
        let snap = Tt_shard.Metrics.snapshot m in
        Printf.printf "cluster: %d forwards, %d failovers, %d unrouted\n"
          snap.Tt_shard.Metrics.forwards_total snap.Tt_shard.Metrics.failovers
          snap.Tt_shard.Metrics.unrouted)
      shard_metrics;
    if s.L.transport_errors > 0 then 1 else 0
  end

let loadgen_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST")
  in
  let port =
    Arg.(value & opt int 7411 & info [ "port"; "p" ] ~docv:"PORT")
  in
  let connections =
    Arg.(value & opt int 2
         & info [ "connections"; "c" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let requests =
    Arg.(value & opt int 100
         & info [ "requests"; "n" ] ~docv:"N" ~doc:"Total solve requests.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-request deadline.")
  in
  let rate =
    Arg.(value & opt (some float) None
         & info [ "rate" ] ~docv:"RPS"
             ~doc:"Open-loop target rate per connection (requests/second); \
                   default is closed-loop.")
  in
  let open_loop =
    Arg.(value & opt (some float) None
         & info [ "open-loop" ] ~docv:"RPS"
             ~doc:"Open-loop target rate for the whole run (requests/second \
                   across all connections — the overload drill's knob); \
                   overrides --rate.")
  in
  let batch_share =
    Arg.(value & opt float 0.
         & info [ "priority-mix"; "batch-share" ] ~docv:"FRAC"
             ~doc:"Fraction of requests sent at batch priority (0 to 1, \
                   default 0 — all interactive). Batch traffic sheds first \
                   under overload; the summary breaks goodput down per \
                   class.")
  in
  let entries_file =
    Arg.(value & opt (some file) None
         & info [ "entries" ] ~docv:"MANIFEST"
             ~doc:"Draw solve entries from this manifest instead of the \
                   built-in mixed workload (overrides --mix).")
  in
  let mix =
    Arg.(value & opt string "core"
         & info [ "mix" ] ~docv:"MIX"
             ~doc:"Built-in entry mix: 'core' (the classic solver jobs), \
                   'sched' (par-schedule and pareto jobs), or 'all'. The \
                   summary's jobs line breaks results down per kind.")
  in
  let chaos =
    Arg.(value & opt (some string) None
         & info [ "chaos" ] ~docv:"SPEC"
             ~doc:"Route traffic through an in-process seeded fault proxy, \
                   e.g. 'drop=0.05,trunc=0.03,stall=0.1,split=0.3,seed=9'. \
                   Pair with --retries so requests survive the faults.")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Client-side retry budget per request (capped exponential \
                   backoff; retried solves are deduplicated server-side via \
                   idempotency keys).")
  in
  let read_timeout =
    Arg.(value & opt float 30.
         & info [ "read-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-reply read deadline; a timed-out read counts as a \
                   transport error and triggers a retry.")
  in
  let connect_timeout =
    Arg.(value & opt (some float) None
         & info [ "connect-timeout" ] ~docv:"SECONDS"
             ~doc:"Bound on establishing each connection; a dead-but-routable \
                   endpoint otherwise blocks for the kernel's SYN-retry \
                   budget.")
  in
  let tag =
    Arg.(value & opt string "lg"
         & info [ "tag" ] ~docv:"TAG"
             ~doc:"Idempotency-key namespace. Two runs against one server \
                   must use distinct tags (or the second run is answered \
                   from the first's replay cache).")
  in
  let cluster =
    Arg.(value & opt (some string) None
         & info [ "cluster" ] ~docv:"MAP"
             ~doc:"Route directly on a shard ring instead of one endpoint: \
                   MAP is 'name=host:port,...' (names optional). Each \
                   connection runs a shard-aware client with failover; \
                   --host/--port are ignored. Incompatible with --chaos.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a running server with a deterministic seeded workload.")
    Term.(const loadgen $ host $ port $ connections $ requests $ seed
          $ timeout $ rate $ open_loop $ batch_share $ entries_file $ mix
          $ chaos $ retries $ read_timeout $ connect_timeout $ tag $ cluster)


(* ------------------------------------------------------------- cluster *)

let cluster shards workers vnodes port queue no_peering kill_shard
    kill_after supervise restart_delay join_after leave_shard leave_after =
  let module Cl = Tt_shard.Cluster in
  if shards < 1 then begin
    prerr_endline "cluster: --shards must be at least 1";
    exit 2
  end;
  let kill_after =
    match kill_after with
    | None -> None
    | Some n ->
        if kill_shard < 0 || kill_shard >= shards then begin
          prerr_endline "cluster: --kill-shard out of range";
          exit 2
        end;
        Some (kill_shard, n)
  in
  (match leave_after with
  | Some _ when leave_shard < 0 || leave_shard >= shards ->
      prerr_endline "cluster: --leave-shard out of range";
      exit 2
  | _ -> ());
  let router_config = { Tt_shard.Router.default_config with port } in
  let server_config =
    { Tt_server.Server.default_config with queue_capacity = queue }
  in
  let on_event e =
    Printf.printf "event: %s\n" (Cl.event_to_string e);
    flush stdout
  in
  let t =
    Cl.start ~shards ~workers ?vnodes ~peering:(not no_peering) ~supervise
      ~restart_delay_s:restart_delay ~on_event ~router_config ~server_config
      ?kill_after ()
  in
  Printf.printf "cluster: %d shards behind router 127.0.0.1:%d%s\n" shards
    (Cl.router_port t)
    (if supervise then " (supervised)" else "");
  Printf.printf "map: %s\n" (Tt_shard.Ring.to_string (Cl.ring t));
  flush stdout;
  (* --join/--leave-after-requests: live membership drills triggered
     by the router's forward count — deterministic under load, like
     --kill-after-requests. *)
  let membership_watch =
    match (join_after, leave_after) with
    | None, None -> None
    | _ ->
        Some
          (Domain.spawn (fun () ->
               let forwards () =
                 (Cl.snapshot t).Tt_shard.Metrics.forwards_total
               in
               let join_pending = ref join_after in
               let leave_pending = ref leave_after in
               while
                 (not (Cl.stopped t))
                 && (!join_pending <> None || !leave_pending <> None)
               do
                 let n = forwards () in
                 (match !join_pending with
                 | Some k when n >= k ->
                     join_pending := None;
                     ignore (Cl.join t)
                 | _ -> ());
                 (match !leave_pending with
                 | Some k when n >= k ->
                     leave_pending := None;
                     (try Cl.leave t leave_shard
                      with Invalid_argument e ->
                        Printf.printf "leave refused: %s\n" e;
                        flush stdout)
                 | _ -> ());
                 Unix.sleepf 0.02
               done))
  in
  let stop_signal _ = Cl.request_stop t in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal);
  (* Park until a signal lands or a client shutdown frame stops the
     router; teardown is graceful either way. *)
  while not (Cl.stopped t) do
    try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Option.iter Domain.join membership_watch;
  Cl.stop t;
  print_string (Cl.prometheus t);
  Printf.printf "cluster drained cleanly\n";
  0

let cluster_cmd =
  let shards =
    Arg.(value & opt int 3
         & info [ "shards" ] ~docv:"N" ~doc:"Shard servers to run.")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers"; "w" ] ~docv:"N" ~doc:"Worker domains per shard.")
  in
  let vnodes =
    Arg.(value & opt (some int) None
         & info [ "vnodes" ] ~docv:"N"
             ~doc:"Virtual nodes per shard on the hash ring (default 64).")
  in
  let port =
    Arg.(value & opt int 0
         & info [ "port"; "p" ] ~docv:"PORT"
             ~doc:"Router port (0 picks an ephemeral port, printed on \
                   startup; shards always bind ephemeral ports).")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N" ~doc:"Admission queue per shard.")
  in
  let no_peering =
    Arg.(value & flag
         & info [ "no-peering" ]
             ~doc:"Disable cross-shard cache peeking (each shard computes \
                   every miss locally).")
  in
  let kill_shard =
    Arg.(value & opt int 0
         & info [ "kill-shard" ] ~docv:"I"
             ~doc:"Which shard --kill-after-requests takes down.")
  in
  let kill_after =
    Arg.(value & opt (some int) None
         & info [ "kill-after-requests" ] ~docv:"N"
             ~doc:"Chaos hook: gracefully kill --kill-shard once the router \
                   has forwarded N ops — a deterministic mid-run shard \
                   failure for failover drills.")
  in
  let supervise =
    Arg.(value & flag
         & info [ "supervise" ]
             ~doc:"Self-heal: a supervisor domain restarts dead shards on \
                   their original port with their cache after \
                   --restart-delay seconds.")
  in
  let restart_delay =
    Arg.(value & opt float 0.3
         & info [ "restart-delay" ] ~docv:"S"
             ~doc:"How long a shard stays down before the supervisor \
                   restarts it.")
  in
  let join_after =
    Arg.(value & opt (some int) None
         & info [ "join-after-requests" ] ~docv:"N"
             ~doc:"Membership drill: boot and ring-add one new shard once \
                   the router has forwarded N ops.")
  in
  let leave_shard =
    Arg.(value & opt int 0
         & info [ "leave-shard" ] ~docv:"I"
             ~doc:"Which shard --leave-after-requests removes.")
  in
  let leave_after =
    Arg.(value & opt (some int) None
         & info [ "leave-after-requests" ] ~docv:"N"
             ~doc:"Membership drill: gracefully remove --leave-shard from \
                   the ring once the router has forwarded N ops.")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Run N local shards behind a consistent-hash router \
             (SIGINT/SIGTERM drain gracefully).")
    Term.(const cluster $ shards $ workers $ vnodes $ port $ queue
          $ no_peering $ kill_shard $ kill_after $ supervise $ restart_delay
          $ join_after $ leave_shard $ leave_after)

(* ------------------------------------------------------------- nemesis *)

let nemesis seed steps shards max_shards requests connections step_gap
    restart_delay plan_only =
  let module N = Tt_shard.Nemesis in
  let cfg =
    { N.default_config with
      seed;
      steps;
      shards;
      max_shards;
      requests;
      connections;
      step_gap_s = step_gap;
      restart_delay_s = restart_delay
    }
  in
  match N.plan cfg with
  | exception Invalid_argument e ->
      Printf.eprintf "nemesis: %s\n" e;
      2
  | faults ->
      if plan_only then begin
        (* Schedule only, no cluster: printed twice and diffed by
           `make chaos-nemesis` to assert seed determinism. *)
        print_string (N.plan_to_string faults);
        0
      end
      else begin
        Printf.printf "nemesis: seed %d, %d steps against %d shards\n" seed
          steps shards;
        flush stdout;
        let r = N.run cfg in
        print_string (N.report_to_string r);
        match N.check r with
        | Ok () ->
            Printf.printf "nemesis invariants hold\n";
            0
        | Error e ->
            Printf.printf "nemesis FAILED: %s\n" e;
            1
      end

let nemesis_cmd =
  let seed =
    Arg.(value & opt int Tt_shard.Nemesis.default_config.seed
         & info [ "seed" ] ~docv:"N"
             ~doc:"Schedule seed — the whole fault sequence is a pure \
                   function of it.")
  in
  let steps =
    Arg.(value & opt int Tt_shard.Nemesis.default_config.steps
         & info [ "steps" ] ~docv:"N" ~doc:"Schedule length.")
  in
  let shards =
    Arg.(value & opt int Tt_shard.Nemesis.default_config.shards
         & info [ "shards" ] ~docv:"N" ~doc:"Initial ring size (at least 2).")
  in
  let max_shards =
    Arg.(value & opt int Tt_shard.Nemesis.default_config.max_shards
         & info [ "max-shards" ] ~docv:"N"
             ~doc:"Joins are only scheduled below this.")
  in
  let requests =
    Arg.(value & opt int Tt_shard.Nemesis.default_config.requests
         & info [ "requests" ] ~docv:"N"
             ~doc:"Load issued while the schedule runs.")
  in
  let connections =
    Arg.(value & opt int Tt_shard.Nemesis.default_config.connections
         & info [ "connections" ] ~docv:"N" ~doc:"Load-generator domains.")
  in
  let step_gap =
    Arg.(value & opt float Tt_shard.Nemesis.default_config.step_gap_s
         & info [ "step-gap" ] ~docv:"S"
             ~doc:"Wall-clock gap between schedule steps.")
  in
  let restart_delay =
    Arg.(value & opt float Tt_shard.Nemesis.default_config.restart_delay_s
         & info [ "restart-delay" ] ~docv:"S"
             ~doc:"Supervisor restart delay — long enough for breakers to \
                   open while a shard is down.")
  in
  let plan_only =
    Arg.(value & flag
         & info [ "plan-only" ]
             ~doc:"Print the seeded fault schedule and exit without \
                   running a cluster.")
  in
  Cmd.v
    (Cmd.info "nemesis"
       ~doc:"Drive a seeded deterministic fault schedule (kill / stall / \
             partition / join / leave) against a supervised local cluster \
             under load, then check digest parity, zero lost admitted \
             requests and bounded recovery.")
    Term.(const nemesis $ seed $ steps $ shards $ max_shards $ requests
          $ connections $ step_gap $ restart_delay $ plan_only)

(* ------------------------------------------------------------ overload *)

let overload seed shards workers queue requests connections batch_share
    deadline overdrive floor =
  let module O = Tt_shard.Overload_nemesis in
  let cfg =
    { O.default_config with
      seed;
      shards;
      workers;
      queue_capacity = queue;
      requests;
      connections;
      batch_share;
      deadline_s = deadline;
      overdrive;
      interactive_floor = floor
    }
  in
  Printf.printf "overload: seed %d, %d shards, %.1fx overdrive, %.2fs budget\n"
    seed shards overdrive deadline;
  flush stdout;
  match O.run cfg with
  | exception Invalid_argument e ->
      Printf.eprintf "overload: %s\n" e;
      2
  | r -> (
      print_string (O.report_to_string r);
      match O.check r with
      | Ok () ->
          Printf.printf "overload invariants hold\n";
          0
      | Error e ->
          Printf.printf "overload FAILED: %s\n" e;
          1)

let overload_cmd =
  let d = Tt_shard.Overload_nemesis.default_config in
  let seed =
    Arg.(value & opt int d.seed
         & info [ "seed" ] ~docv:"N"
             ~doc:"Run seed — idems, priorities and the hedge gate are \
                   pure functions of it.")
  in
  let shards =
    Arg.(value & opt int d.shards
         & info [ "shards" ] ~docv:"N" ~doc:"Ring size (at least 2).")
  in
  let workers =
    Arg.(value & opt int d.workers
         & info [ "workers" ] ~docv:"N" ~doc:"Worker domains per shard.")
  in
  let queue =
    Arg.(value & opt int d.queue_capacity
         & info [ "queue" ] ~docv:"N" ~doc:"Per-shard admission queue bound.")
  in
  let requests =
    Arg.(value & opt int d.requests
         & info [ "requests" ] ~docv:"N" ~doc:"Overload-phase request volume.")
  in
  let connections =
    Arg.(value & opt int d.connections
         & info [ "connections" ] ~docv:"N"
             ~doc:"Overload-phase client domains.")
  in
  let batch_share =
    Arg.(value & opt float d.batch_share
         & info [ "batch-share" ] ~docv:"FRAC"
             ~doc:"Fraction of overload traffic sent priority=batch.")
  in
  let deadline =
    Arg.(value & opt float d.deadline_s
         & info [ "deadline" ] ~docv:"S" ~doc:"Per-request budget.")
  in
  let overdrive =
    Arg.(value & opt float d.overdrive
         & info [ "overdrive" ] ~docv:"X"
             ~doc:"Offered rate as a multiple of the measured capacity.")
  in
  let floor =
    Arg.(value & opt float d.interactive_floor
         & info [ "interactive-floor" ] ~docv:"FRAC"
             ~doc:"Minimum interactive goodput fraction the gate demands.")
  in
  Cmd.v
    (Cmd.info "overload"
       ~doc:"Drive a cluster at a multiple of its measured capacity with \
             one shard stalled, then check every loss was typed, every \
             completion met its deadline and matched a clean oracle, batch \
             shed before interactive, and at least one hedge won.")
    Term.(const overload $ seed $ shards $ workers $ queue $ requests
          $ connections $ batch_share $ deadline $ overdrive $ floor)

(* ---------------------------------------------------------------- perf *)

let perf quick reps out kernels =
  let module MB = Tt_profile.Microbench in
  let mode = if quick then Tt_workloads.Perf_suite.Quick else Tt_workloads.Perf_suite.Full in
  let reps =
    match reps with Some r -> r | None -> Tt_workloads.Perf_suite.default_reps mode
  in
  let specs = Tt_workloads.Perf_suite.specs mode in
  let specs =
    match kernels with
    | [] -> specs
    | prefixes ->
        List.filter
          (fun (s : MB.spec) ->
            List.exists
              (fun p ->
                String.length s.MB.kernel >= String.length p
                && String.sub s.MB.kernel 0 (String.length p) = p)
              prefixes)
          specs
  in
  if specs = [] then begin
    prerr_endline "perf: no kernels match the given --kernel filters";
    1
  end
  else begin
    let results =
      MB.measure ~reps
        ~progress:(fun l -> Printf.printf "[perf] %s\n%!" l)
        specs
    in
    print_string (MB.render results);
    (match out with
    | Some path ->
        MB.write_json path results;
        Printf.printf "wrote %s (%d kernels, %d timed reps each)\n" path
          (List.length results) reps
    | None -> ());
    0
  end

let perf_cmd =
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"CI-smoke instance sizes (seconds) instead of the \
                   paper-scale suite.")
  in
  let reps =
    Arg.(value & opt (some int) None
         & info [ "reps" ] ~docv:"N"
             ~doc:"Timed repetitions per kernel (default 5, or 3 with \
                   $(b,--quick)).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Also write the machine-readable BENCH_CORE.json to FILE.")
  in
  let kernels =
    Arg.(value & opt_all string []
         & info [ "kernel" ] ~docv:"PREFIX"
             ~doc:"Only run kernels whose name starts with PREFIX \
                   (repeatable), e.g. 'minio/' or 'liu'.")
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:"Benchmark the core solvers on seeded instances; every timing \
             row carries a result digest, so runs double as regression \
             witnesses.")
    Term.(const perf $ quick $ reps $ out $ kernels)

(* --------------------------------------------------------- chaos-proxy *)

let chaos_proxy port upstream_host upstream_port faults =
  let module N = Tt_server.Netfault in
  let faults =
    match faults with
    | None -> N.none
    | Some spec -> (
        match N.faults_of_string spec with
        | Ok f -> f
        | Error e ->
            Printf.eprintf "chaos-proxy: bad --faults spec: %s\n" e;
            exit 2)
  in
  let p = N.create ~faults ~port ~upstream_host ~upstream_port () in
  Printf.printf "proxying 127.0.0.1:%d -> %s:%d (%s)\n" (N.port p)
    upstream_host upstream_port (N.faults_to_string faults);
  flush stdout;
  let stop_signal _ = N.request_stop p in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal);
  N.run p;
  let s = N.stats p in
  Printf.printf
    "proxy stats: %d conns, %d drops, %d truncations, %d stalls, %d splits, \
     %d bytes\n"
    s.N.connections s.N.drops s.N.truncations s.N.stalls s.N.splits
    s.N.forwarded_bytes;
  0

let chaos_proxy_cmd =
  let port =
    Arg.(value & opt int 0
         & info [ "port"; "p" ] ~docv:"PORT"
             ~doc:"Listening port (0 picks an ephemeral port, printed on \
                   startup).")
  in
  let upstream_host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "upstream-host" ] ~docv:"HOST")
  in
  let upstream_port =
    Arg.(required & opt (some int) None
         & info [ "upstream-port" ] ~docv:"PORT"
             ~doc:"The real server to forward to.")
  in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Seeded fault spec, e.g. \
                   'drop=0.05,trunc=0.03,stall=0.1,split=0.3,max-stall=0.02,\
                   window=256,seed=9'. Defaults to a transparent proxy.")
  in
  Cmd.v
    (Cmd.info "chaos-proxy"
       ~doc:"Run a deterministic TCP fault-injection proxy in front of a \
             server (SIGINT/SIGTERM stop it and print stats).")
    Term.(const chaos_proxy $ port $ upstream_host $ upstream_port $ faults)

let () =
  let doc = "memory-optimal tree traversals for sparse matrix factorization" in
  let info = Cmd.info "treetrav" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ generate_cmd; analyze_cmd; schedule_cmd; sched_cmd; corpus_cmd;
            batch_cmd; serve_cmd; request_cmd; loadgen_cmd; cluster_cmd;
            nemesis_cmd; overload_cmd; perf_cmd; chaos_proxy_cmd ]))
