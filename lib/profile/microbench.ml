type spec = {
  kernel : string;
  instance : string;
  p : int;
  max_reps : int;
  run : unit -> string;
}

type result = {
  kernel : string;
  instance : string;
  p : int;
  reps : int;
  median_ms : float;
  p90_ms : float;
  min_ms : float;
  mean_ms : float;
  digest : string;
  top_heap_words : int;
  minor_words : float;
  major_words : float;
}

exception Digest_mismatch of { kernel : string; instance : string }

let measure_spec ?(reps = 5) ?(warmup = 1) (spec : spec) =
  if reps < 1 then invalid_arg "Microbench.measure: reps < 1";
  (* expensive specs (huge family: one run is tens of seconds) cap their
     own repetitions; the warmup is folded into the cap so a max_reps = 1
     spec runs exactly once *)
  let reps = if spec.max_reps > 0 then min reps spec.max_reps else reps in
  let warmup =
    if spec.max_reps > 0 then min warmup (max 0 (spec.max_reps - reps))
    else warmup
  in
  (* warmup runs establish the digest and touch the allocator/caches;
     every later run must reproduce it bit for bit *)
  let digest = ref "" in
  let observe payload =
    let d = Digest.to_hex (Digest.string payload) in
    if !digest = "" then digest := d
    else if d <> !digest then
      raise (Digest_mismatch { kernel = spec.kernel; instance = spec.instance })
  in
  for _ = 1 to warmup do
    observe (Sys.opaque_identity (spec.run ()))
  done;
  let samples = Array.make reps 0.0 in
  let minor = Array.make reps 0.0 in
  let major = Array.make reps 0.0 in
  for r = 0 to reps - 1 do
    let before = Gc.quick_stat () in
    let payload, dt = Tt_util.Timer.time spec.run in
    let after = Gc.quick_stat () in
    observe payload;
    samples.(r) <- dt *. 1000.0;
    minor.(r) <- after.Gc.minor_words -. before.Gc.minor_words;
    major.(r) <- after.Gc.major_words -. before.Gc.major_words
  done;
  { kernel = spec.kernel;
    instance = spec.instance;
    p = spec.p;
    reps;
    median_ms = Tt_util.Statistics.median samples;
    p90_ms = Tt_util.Statistics.quantile samples 0.90;
    min_ms = fst (Tt_util.Statistics.min_max samples);
    mean_ms = Tt_util.Statistics.mean samples;
    digest = !digest;
    top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
    minor_words = Tt_util.Statistics.median minor;
    major_words = Tt_util.Statistics.median major }

let measure ?reps ?warmup ?(progress = fun _ -> ()) specs =
  List.map
    (fun (spec : spec) ->
      progress (Printf.sprintf "%s / %s (p=%d)" spec.kernel spec.instance spec.p);
      measure_spec ?reps ?warmup spec)
    specs

(* --- JSON ---------------------------------------------------------------
   Hand-rolled: every field is a known-safe string (kernel/instance names
   contain no characters needing escapes beyond the conservative pass
   below) or a number. The output is stable across runs of the same
   binary so that BENCH_CORE.json files diff cleanly between PRs — no
   timestamps, no host data. *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* /2 adds the allocation fields (top_heap_words, minor_words,
   major_words). The change is purely additive — readers of /1 documents
   that index by field name keep working on both versions. *)
let schema = "tt-bench-core/2"

let to_json results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "{\"schema\": \"%s\",\n \"results\": [\n" schema);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"kernel\": \"%s\", \"instance\": \"%s\", \"p\": %d, \"reps\": %d, \
            \"median_ms\": %.6f, \"p90_ms\": %.6f, \"min_ms\": %.6f, \
            \"mean_ms\": %.6f, \"result_digest\": \"%s\", \
            \"top_heap_words\": %d, \"minor_words\": %.0f, \"major_words\": %.0f}"
           (json_escape r.kernel) (json_escape r.instance) r.p r.reps r.median_ms
           r.p90_ms r.min_ms r.mean_ms (json_escape r.digest) r.top_heap_words
           r.minor_words r.major_words))
    results;
  Buffer.add_string buf "\n ]}\n";
  Buffer.contents buf

let write_json path results =
  let oc = open_out path in
  output_string oc (to_json results);
  close_out oc

let render results =
  Table.render
    ~header:[ "kernel"; "instance"; "p"; "median ms"; "p90 ms"; "digest" ]
    (List.map
       (fun r ->
         [ r.kernel;
           r.instance;
           string_of_int r.p;
           Printf.sprintf "%.3f" r.median_ms;
           Printf.sprintf "%.3f" r.p90_ms;
           String.sub r.digest 0 12
         ])
       results)
