(** Reproducible per-kernel micro-benchmarks.

    A {!spec} names one (kernel, instance) pair and provides a thunk
    whose return value is a canonical string describing the kernel's
    {e result} (traversal digest, peak, I/O volume, …). {!measure} times
    the thunk over several repetitions, checks that every repetition
    reproduces the same result digest, and reduces the wall-clock
    samples with {!Tt_util.Statistics}. {!to_json} renders the
    machine-readable [BENCH_CORE.json] trajectory consumed by later PRs
    to diff performance: deliberately free of timestamps and host data
    so files diff cleanly. *)

type spec = {
  kernel : string;  (** e.g. ["minio/first-fit"]. *)
  instance : string;  (** e.g. ["chain-50000"]. *)
  p : int;  (** Instance size (tree nodes). *)
  run : unit -> string;  (** One full kernel run; returns the result payload. *)
}

type result = {
  kernel : string;
  instance : string;
  p : int;
  reps : int;
  median_ms : float;
  p90_ms : float;
  min_ms : float;
  mean_ms : float;
  digest : string;  (** MD5 hex of the (identical) per-rep payloads. *)
}

exception Digest_mismatch of { kernel : string; instance : string }
(** Raised when two repetitions of one spec disagree — a kernel whose
    result is not a pure function of its input is not benchmarkable. *)

val measure_spec : ?reps:int -> ?warmup:int -> spec -> result
(** Time one spec: [warmup] untimed runs (default 1), then [reps] timed
    runs (default 5). @raise Digest_mismatch on nondeterminism. *)

val measure :
  ?reps:int -> ?warmup:int -> ?progress:(string -> unit) -> spec list -> result list
(** [measure specs] runs every spec in order; [progress] is called with
    a human-readable label before each one. *)

val schema : string
(** The JSON schema tag, ["tt-bench-core/1"]. *)

val to_json : result list -> string
(** Render results as the [BENCH_CORE.json] document. *)

val write_json : string -> result list -> unit
(** [write_json path results] writes {!to_json} to [path]. *)

val render : result list -> string
(** Human-readable table of the same data. *)
