(** Reproducible per-kernel micro-benchmarks.

    A {!spec} names one (kernel, instance) pair and provides a thunk
    whose return value is a canonical string describing the kernel's
    {e result} (traversal digest, peak, I/O volume, …). {!measure} times
    the thunk over several repetitions, checks that every repetition
    reproduces the same result digest, and reduces the wall-clock
    samples with {!Tt_util.Statistics}. {!to_json} renders the
    machine-readable [BENCH_CORE.json] trajectory consumed by later PRs
    to diff performance: deliberately free of timestamps and host data
    so files diff cleanly. *)

type spec = {
  kernel : string;  (** e.g. ["minio/first-fit"]. *)
  instance : string;  (** e.g. ["chain-50000"]. *)
  p : int;  (** Instance size (tree nodes). *)
  max_reps : int;
      (** Cap on total executions (warmup included) regardless of the
          [reps] argument; [0] means uncapped. The huge family sets [1]
          so a p = 10M kernel runs exactly once. *)
  run : unit -> string;  (** One full kernel run; returns the result payload. *)
}

type result = {
  kernel : string;
  instance : string;
  p : int;
  reps : int;
  median_ms : float;
  p90_ms : float;
  min_ms : float;
  mean_ms : float;
  digest : string;  (** MD5 hex of the (identical) per-rep payloads. *)
  top_heap_words : int;
      (** [Gc.top_heap_words] after the spec's runs — the process-wide
          heap high-water mark in words, monotone across a session. *)
  minor_words : float;  (** Median minor allocation per rep, in words. *)
  major_words : float;  (** Median major allocation per rep, in words. *)
}

exception Digest_mismatch of { kernel : string; instance : string }
(** Raised when two repetitions of one spec disagree — a kernel whose
    result is not a pure function of its input is not benchmarkable. *)

val measure_spec : ?reps:int -> ?warmup:int -> spec -> result
(** Time one spec: [warmup] untimed runs (default 1), then [reps] timed
    runs (default 5), both clipped by the spec's [max_reps]. Per-rep
    minor/major allocation is measured with [Gc.quick_stat] deltas.
    @raise Digest_mismatch on nondeterminism. *)

val measure :
  ?reps:int -> ?warmup:int -> ?progress:(string -> unit) -> spec list -> result list
(** [measure specs] runs every spec in order; [progress] is called with
    a human-readable label before each one. *)

val schema : string
(** The JSON schema tag, ["tt-bench-core/2"]. Version 2 added the
    allocation fields; the change is additive, so readers of version 1
    documents keep working. *)

val to_json : result list -> string
(** Render results as the [BENCH_CORE.json] document. *)

val write_json : string -> result list -> unit
(** [write_json path results] writes {!to_json} to [path]. *)

val render : result list -> string
(** Human-readable table of the same data. *)
