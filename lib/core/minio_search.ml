type outcome = {
  order : int array;
  schedule : Io_schedule.t;
  io : int;
  source : string;
}

(* A postorder with uniformly shuffled child orders: emitted iteratively
   to survive deep chains. *)
let shuffled_postorder ~rng t =
  let p = Tree.size t in
  let order = Array.make p (-1) in
  let k = ref 0 in
  let stack = ref [ t.Tree.root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
        stack := rest;
        order.(!k) <- i;
        incr k;
        let cs = Array.copy t.Tree.children.(i) in
        Tt_util.Rng.shuffle rng cs;
        Array.iter (fun c -> stack := c :: !stack) cs
  done;
  order

let candidates ~rng ~attempts t =
  let fixed =
    [ ("postorder", snd (Postorder_opt.run t));
      ("liu", snd (Liu_exact.run t));
      ("minmem", snd (Minmem.run t))
    ]
  in
  let perturbed =
    List.init attempts (fun k ->
        (Printf.sprintf "postorder~%d" k, shuffled_postorder ~rng t))
  in
  let random =
    List.init attempts (fun k ->
        (Printf.sprintf "random~%d" k, Traversal.random_order ~rng t))
  in
  fixed @ perturbed @ random

let run ?(cancel = Tt_util.Cancel.never) ?(policy = Minio.First_fit)
    ?(attempts = 8) ~rng t ~memory =
  List.fold_left
    (fun best (source, order) ->
      Tt_util.Cancel.check cancel;
      match Minio.run t ~memory ~order policy with
      | None -> best
      | Some schedule -> (
          let io = Io_schedule.io_volume t schedule in
          match best with
          | Some b when b.io <= io -> best
          | _ -> Some { order; schedule; io; source }))
    None
    (candidates ~rng ~attempts t)
