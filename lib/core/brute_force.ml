(* States of the search are bitmasks of executed nodes; the ready set and
   its total file size are recomputed per state (p is tiny). *)

let ready_info t mask =
  let p = Tree.size t in
  let ready = ref [] in
  let sum = ref 0 in
  for i = 0 to p - 1 do
    let executed = mask land (1 lsl i) <> 0 in
    let produced =
      if i = t.Tree.root then true else mask land (1 lsl t.Tree.parent.(i)) <> 0
    in
    if produced && not executed then begin
      ready := i :: !ready;
      sum := !sum + t.Tree.f.(i)
    end
  done;
  (!ready, !sum)

let min_memory ?(cancel = Tt_util.Cancel.never) t =
  let p = Tree.size t in
  if p > 22 then invalid_arg "Brute_force.min_memory: tree too large";
  let full = (1 lsl p) - 1 in
  let best = Hashtbl.create 1024 in
  let module Pq = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let queue = ref (Pq.singleton (0, 0)) in
  Hashtbl.replace best 0 0;
  let answer = ref max_int in
  while !answer = max_int && not (Pq.is_empty !queue) do
    Tt_util.Cancel.check cancel;
    let ((cost, mask) as elt) = Pq.min_elt !queue in
    queue := Pq.remove elt !queue;
    if cost <= Hashtbl.find best mask then
      if mask = full then answer := cost
      else begin
        let ready, sum = ready_info t mask in
        List.iter
          (fun i ->
            let usage = sum + t.Tree.n.(i) + Tree.sum_children_f t i in
            let cost' = max cost usage in
            let mask' = mask lor (1 lsl i) in
            let known = try Hashtbl.find best mask' with Not_found -> max_int in
            if cost' < known then begin
              Hashtbl.replace best mask' cost';
              queue := Pq.add (cost', mask') !queue
            end)
          ready
      end
  done;
  !answer

let min_memory_postorder t =
  Postorder_opt.all_postorders t
  |> List.map (Traversal.peak t)
  |> List.fold_left min max_int

let feasible_with_evictions t ~memory order ~evicted =
  let p = Tree.size t in
  let is_evicted i = i <> t.Tree.root && evicted.(i) in
  (* resident = total size of in-memory ready files *)
  let resident = ref (t.Tree.f.(t.Tree.root)) in
  let ok = ref true in
  (match Traversal.is_valid_order t order with
  | false -> ok := false
  | true ->
      for k = 0 to p - 1 do
        if !ok then begin
          let i = order.(k) in
          let out = Tree.sum_children_f t i in
          let extra_in = if is_evicted i then t.Tree.f.(i) else 0 in
          let usage = !resident + extra_in + t.Tree.n.(i) + out in
          if usage > memory then ok := false
          else begin
            if not (is_evicted i) then resident := !resident - t.Tree.f.(i);
            let kept =
              Array.fold_left
                (fun acc c -> if is_evicted c then acc else acc + t.Tree.f.(c))
                0 t.Tree.children.(i)
            in
            resident := !resident + kept
          end
        end
      done);
  !ok

let min_io_given_order ?(cancel = Tt_util.Cancel.never) t ~memory order =
  let p = Tree.size t in
  if p > 20 then invalid_arg "Brute_force.min_io_given_order: tree too large";
  if not (Traversal.is_valid_order t order) then
    invalid_arg "Brute_force.min_io_given_order: invalid order";
  (* enumerate eviction sets over non-root nodes *)
  let others = List.filter (fun i -> i <> t.Tree.root) (List.init p (fun i -> i)) in
  let others = Array.of_list others in
  let m = Array.length others in
  let best = ref None in
  let evicted = Array.make p false in
  for mask = 0 to (1 lsl m) - 1 do
    Tt_util.Cancel.check cancel;
    let io = ref 0 in
    for b = 0 to m - 1 do
      let on = mask land (1 lsl b) <> 0 in
      evicted.(others.(b)) <- on;
      if on then io := !io + t.Tree.f.(others.(b))
    done;
    let promising = match !best with None -> true | Some b -> !io < b in
    if promising && feasible_with_evictions t ~memory order ~evicted then
      best := Some !io
  done;
  !best

let min_io ?cancel t ~memory =
  let p = Tree.size t in
  if p > 9 then invalid_arg "Brute_force.min_io: tree too large";
  List.fold_left
    (fun acc order ->
      match (acc, min_io_given_order ?cancel t ~memory order) with
      | None, r | r, None -> r
      | Some a, Some b -> Some (min a b))
    None (Traversal.all_orders t)
