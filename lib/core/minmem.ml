module R = Tt_util.Rope

let run_counting ?cancel t =
  let p = Tree.size t in
  let mpeak_tbl = Array.make p Explore.infinity_mem in
  let cache = Explore.make_cache t in
  let mavail = ref 0 in
  let mpeak = ref (Tree.max_mem_req t) in
  let cut = ref [] in
  let trav = ref R.empty in
  let rounds = ref 0 in
  while !mpeak < Explore.infinity_mem do
    mavail := !mpeak;
    incr rounds;
    let r =
      Explore.explore ?cancel t ~mpeak_tbl ~cache t.Tree.root ~mavail:!mavail
        ~linit:!cut ~trinit:!trav
    in
    if r.Explore.m_cut = Explore.infinity_mem then
      (* cannot happen: mavail >= MemReq(root) from the first round on *)
      invalid_arg "Minmem.run: root entry failed";
    cut := r.Explore.cut;
    trav := r.Explore.trav;
    mpeak := r.Explore.mpeak
  done;
  ((!mavail, R.to_array !trav), !rounds)

let run ?cancel t = fst (run_counting ?cancel t)
let min_memory t = fst (run t)
let iterations t = snd (run_counting t)
