type t = {
  parent : int array;
  children : int array array;
  f : int array;
  n : int array;
  root : int;
}

let children_of_parents parent =
  let p = Array.length parent in
  let counts = Array.make p 0 in
  Array.iter (fun par -> if par >= 0 then counts.(par) <- counts.(par) + 1) parent;
  let children = Array.map (fun c -> Array.make c (-1)) counts in
  let fill = Array.make p 0 in
  (* iterate in index order so children arrays are sorted increasingly *)
  for i = 0 to p - 1 do
    let par = parent.(i) in
    if par >= 0 then begin
      children.(par).(fill.(par)) <- i;
      fill.(par) <- fill.(par) + 1
    end
  done;
  children

let make ~parent ~f ~n =
  let p = Array.length parent in
  if p = 0 then invalid_arg "Tree.make: empty tree";
  if Array.length f <> p || Array.length n <> p then
    invalid_arg "Tree.make: array length mismatch";
  Array.iteri
    (fun i fi -> if fi < 0 then invalid_arg (Printf.sprintf "Tree.make: f.(%d) < 0" i))
    f;
  let root = ref (-1) in
  Array.iteri
    (fun i par ->
      if par = -1 then begin
        if !root >= 0 then invalid_arg "Tree.make: several roots";
        root := i
      end
      else if par < 0 || par >= p then invalid_arg "Tree.make: parent out of range"
      else if par = i then invalid_arg "Tree.make: self-loop")
    parent;
  if !root < 0 then invalid_arg "Tree.make: no root";
  (* acyclicity: walk up from each node with a visitation stamp *)
  let state = Array.make p 0 in
  (* 0 = unvisited, 1 = on current path, 2 = validated *)
  for i = 0 to p - 1 do
    let rec climb j path =
      if state.(j) = 1 then invalid_arg "Tree.make: cycle in parent pointers"
      else if state.(j) = 0 then begin
        state.(j) <- 1;
        let path = j :: path in
        if parent.(j) >= 0 then climb parent.(j) path
        else List.iter (fun k -> state.(k) <- 2) path
      end
      else List.iter (fun k -> state.(k) <- 2) path
    in
    if state.(i) = 0 then climb i []
  done;
  { parent = Array.copy parent;
    children = children_of_parents parent;
    f = Array.copy f;
    n = Array.copy n;
    root = !root }

let of_parents parent =
  let p = Array.length parent in
  make ~parent ~f:(Array.make p 0) ~n:(Array.make p 0)

let size t = Array.length t.parent

let sum_children_f t i =
  Array.fold_left (fun acc j -> acc + t.f.(j)) 0 t.children.(i)

let mem_req t i = t.f.(i) + t.n.(i) + sum_children_f t i

let max_mem_req t =
  let best = ref min_int in
  for i = 0 to size t - 1 do
    let r = mem_req t i in
    if r > !best then best := r
  done;
  !best

let total_f t = Array.fold_left ( + ) 0 t.f
let is_leaf t i = Array.length t.children.(i) = 0

let depth t =
  let p = size t in
  let d = Array.make p (-1) in
  d.(t.root) <- 0;
  (* parents can have larger indices than children, so BFS from the root *)
  let queue = Queue.create () in
  Queue.add t.root queue;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    Array.iter
      (fun j ->
        d.(j) <- d.(i) + 1;
        Queue.add j queue)
      t.children.(i)
  done;
  d

let height t = Array.fold_left max 0 (depth t)

let bottom_up_order t =
  let p = size t in
  let d = depth t in
  (* counting sort on depth, deepest bucket first: children always come
     before their parent, ascending node index within a depth level.
     A comparison sort here is a measurable share of Liu's runtime. *)
  let maxd = Array.fold_left max 0 d in
  let start = Array.make (maxd + 1) 0 in
  Array.iter (fun dv -> start.(dv) <- start.(dv) + 1) d;
  let acc = ref 0 in
  for dv = maxd downto 0 do
    let c = start.(dv) in
    start.(dv) <- !acc;
    acc := !acc + c
  done;
  let order = Array.make p 0 in
  for i = 0 to p - 1 do
    let dv = d.(i) in
    order.(start.(dv)) <- i;
    start.(dv) <- start.(dv) + 1
  done;
  order

let subtree_sizes t =
  let p = size t in
  let sz = Array.make p 1 in
  (* process nodes in decreasing depth so children are done first *)
  let d = depth t in
  let order = Array.init p (fun i -> i) in
  Array.sort (fun a b -> compare d.(b) d.(a)) order;
  Array.iter
    (fun i -> if t.parent.(i) >= 0 then sz.(t.parent.(i)) <- sz.(t.parent.(i)) + sz.(i))
    order;
  sz

let map_weights ~f ~n t =
  make ~parent:t.parent ~f:(Array.init (size t) f) ~n:(Array.init (size t) n)

let equal a b = a.parent = b.parent && a.f = b.f && a.n = b.n

let pp ppf t =
  let d = depth t in
  (* explicit stack: depth-first preorder without recursing down the
     tree, so printing survives chains deeper than the call stack. The
     indent is capped so a deep chain costs O(p) output, not O(p²). *)
  let max_indent = 64 in
  let stack = ref [ t.root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
        stack := rest;
        Format.fprintf ppf "%s%d [f=%d n=%d]@\n"
          (String.make (min max_indent (2 * d.(i))) ' ')
          i t.f.(i) t.n.(i);
        let cs = t.children.(i) in
        for j = Array.length cs - 1 downto 0 do
          stack := cs.(j) :: !stack
        done
  done

let to_dot ?label t =
  let label =
    match label with
    | Some f -> f
    | None -> fun i -> Printf.sprintf "%d\\nn=%d" i t.n.(i)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph tree {\n  node [shape=box];\n";
  for i = 0 to size t - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" i (label i));
    if t.parent.(i) >= 0 then
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%d\"];\n" t.parent.(i) i t.f.(i))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_string t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int (size t));
  for i = 0 to size t - 1 do
    Buffer.add_string buf (Printf.sprintf " %d:%d:%d" t.parent.(i) t.f.(i) t.n.(i))
  done;
  Buffer.contents buf

let of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [] -> invalid_arg "Tree.of_string: empty"
  | count :: rest ->
      let p = try int_of_string count with _ -> invalid_arg "Tree.of_string: bad count" in
      if List.length rest <> p then invalid_arg "Tree.of_string: wrong node count";
      let parent = Array.make p 0 and f = Array.make p 0 and n = Array.make p 0 in
      List.iteri
        (fun i field ->
          match String.split_on_char ':' field with
          | [ a; b; c ] -> begin
              try
                parent.(i) <- int_of_string a;
                f.(i) <- int_of_string b;
                n.(i) <- int_of_string c
              with _ -> invalid_arg "Tree.of_string: bad integer"
            end
          | _ -> invalid_arg "Tree.of_string: bad field")
        rest;
      make ~parent ~f ~n

let random ~rng ~size:p ~max_f ~max_n =
  if p <= 0 then invalid_arg "Tree.random: size must be positive";
  let parent = Array.make p (-1) in
  for i = 1 to p - 1 do
    parent.(i) <- Tt_util.Rng.int rng i
  done;
  let f = Array.init p (fun i -> if i = 0 then Tt_util.Rng.int_incl rng 0 max_f
                                  else Tt_util.Rng.int_incl rng 1 (max max_f 1)) in
  let n = Array.init p (fun _ -> Tt_util.Rng.int_incl rng 0 (max max_n 0)) in
  make ~parent ~f ~n

let random_shape ~rng ~size:p ~max_degree =
  if p <= 0 then invalid_arg "Tree.random_shape: size must be positive";
  if max_degree < 1 then invalid_arg "Tree.random_shape: max_degree must be >= 1";
  let parent = Array.make p (-1) in
  let degree = Array.make p 0 in
  for i = 1 to p - 1 do
    (* rejection sample a parent with available arity; node i-1 always has
       arity available in the worst case of a chain *)
    let rec attach () =
      let cand = Tt_util.Rng.int rng i in
      if degree.(cand) < max_degree then cand
      else attach ()
    in
    let par = if degree.(i - 1) < max_degree then attach () else i - 1 in
    parent.(i) <- par;
    degree.(par) <- degree.(par) + 1
  done;
  of_parents parent
