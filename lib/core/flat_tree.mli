(** Succinct flat tree representation for huge instances (p ≥ 10M).

    {!Tree.t} stores one child array per node — fine up to a few hundred
    thousand nodes, but at p = 10M the per-node boxing (an array header
    per node plus pointer indirections) dominates both memory and cache
    behaviour. A flat tree packs the same information into five
    preallocated int arrays:

    - [parent] — as in {!Tree.t};
    - [child_off]/[child] — CSR adjacency: the children of [i] are
      [child.(child_off.(i)) .. child.(child_off.(i + 1) - 1)], sorted
      by increasing index (the same order {!Tree.t} maintains);
    - [f]/[n] — the paper's weights (Equation (1)).

    Zero per-node records, O(p) construction, and every traversal here is
    iterative — no OCaml stack frame grows with tree height, so chains of
    10M nodes are safe.

    The hot kernels ({!postorder_run}, {!liu_run}, {!peak}) are direct
    transcriptions of {!Postorder_opt.run}, {!Liu_exact.run} and
    {!Traversal.peak} reading the CSR arrays: they visit children in the
    identical order, apply the identical comparison sorts and the
    identical {!Segments} calculus, so their results are bit-identical to
    the [Tree.t] kernels (pinned by the parity tests). *)

type t = private {
  parent : int array;  (** [parent.(i)] is [i]'s parent, [-1] for the root. *)
  child_off : int array;  (** CSR offsets, length [p + 1]. *)
  child : int array;  (** CSR children, length [p - 1], increasing per node. *)
  f : int array;  (** Input-file sizes [f_i >= 0]. *)
  n : int array;  (** Execution-file sizes [n_i], possibly negative. *)
  root : int;  (** The unique node with [parent = -1]. *)
}
(** A validated flat tree. Values are created only through the
    constructors below, so a [t] is always a well-formed tree. *)

val of_arrays : parent:int array -> f:int array -> n:int array -> t
(** [of_arrays ~parent ~f ~n] validates in O(p) (single root, in-range
    acyclic parents, [f >= 0]) and builds the CSR adjacency. The arrays
    are {e taken over without copying} — at 10M nodes a defensive copy
    would double the footprint — so the caller must not mutate them
    afterwards.
    @raise Invalid_argument on malformed input (same conditions as
    {!Tree.make}). *)

val of_tree : Tree.t -> t
(** Lossless conversion; O(p). *)

val to_tree : t -> Tree.t
(** Lossless inverse of {!of_tree}; O(p). Intended for parity tests and
    small trees — it materializes per-node child arrays. *)

val size : t -> int
(** Number of nodes [p]. *)

val degree : t -> int -> int
(** Number of children of node [i]. *)

val is_leaf : t -> int -> bool
(** Whether node [i] has no children. *)

val sum_children_f : t -> int -> int
(** Total size of the output files of node [i]. *)

val mem_req : t -> int -> int
(** Equation (1): [f i + n i + sum of f j over children j]. *)

val max_mem_req : t -> int
(** [max_i mem_req t i] — the trivial lower bound on any traversal. *)

val total_f : t -> int
(** Sum of all input-file sizes. *)

val depth : t -> int array
(** Distance from the root (root = 0); iterative BFS with a preallocated
    ring, O(p). Equal to {!Tree.depth} on the converted tree. *)

val height : t -> int
(** Longest root-to-leaf path length in edges. *)

val bottom_up_order : t -> int array
(** Nodes by decreasing depth, ascending index within a level — the same
    counting sort as {!Tree.bottom_up_order}, so the orders are
    identical. O(p). *)

val postorder_run : t -> int * int array
(** Best postorder traversal — flat transcription of
    {!Postorder_opt.run}: children sorted by increasing [P(c) - f(c)],
    emission with an explicit stack. Bit-identical to the [Tree.t]
    kernel. O(p log p). *)

val postorder_best_memory : t -> int
(** Peak of {!postorder_run}. *)

val liu_run : t -> int * int array
(** Liu's exact MinMemory — flat transcription of {!Liu_exact.run} over
    the same {!Segments} calculus, children merged in identical order.
    Bit-identical to the [Tree.t] kernel. Worst-case O(p²) like the
    original; prefer {!Minmem_approx} beyond a few hundred thousand
    nodes. *)

val liu_min_memory : t -> int
(** Peak of {!liu_run}. *)

val peak : t -> int array -> int
(** Iterative simulation of a traversal's peak memory — flat
    transcription of {!Traversal.peak}.
    @raise Invalid_argument if the order is not a valid traversal. *)

val digest : t -> string
(** Hex digest of the complete structure and weights, computed over
    fixed-size chunks so no O(p)-byte intermediate string is built. Two
    trees digest equal iff parents, weights and root agree — the anchor
    of the generator-determinism tests. *)

val digest_ints : int array -> string
(** Chunked hex digest of an int array — used to summarize multi-million
    entry traversal orders in benchmark payloads without serializing
    them. *)
