type node_seq = Empty | Single of int | Cat of node_seq * node_seq

let seq_empty = Empty
let seq_single i = Single i

let seq_cat a b =
  match (a, b) with Empty, x -> x | x, Empty -> x | _ -> Cat (a, b)

let seq_to_list s =
  (* explicit worklist to stay stack-safe on chain-shaped ropes *)
  let acc = ref [] in
  let work = ref [ s ] in
  (* collect in reverse by walking right-to-left *)
  while !work <> [] do
    match !work with
    | [] -> ()
    | Empty :: rest -> work := rest
    | Single i :: rest ->
        acc := i :: !acc;
        work := rest
    | Cat (a, b) :: rest -> work := b :: a :: rest
  done;
  (* we pushed b before a, so nodes were visited right-to-left and [acc]
     is already in left-to-right order *)
  !acc

type segment = { hill : int; valley : int; seq : node_seq }

(* A canonical profile, stored flat. The array is exact-length and never
   mutated after construction, so profiles can be shared freely (merge
   returns a single input unchanged, Liu's release path just drops
   references). *)
type t = segment array

let cost s = s.hill - s.valley

let fuse a b =
  { hill = max a.hill b.hill; valley = b.valley; seq = seq_cat a.seq b.seq }

let empty = [||]
let length = Array.length
let to_list = Array.to_list

let equal a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri
         (fun i s ->
           let u = b.(i) in
           if
             not
               (s.hill = u.hill && s.valley = u.valley
               && seq_to_list s.seq = seq_to_list u.seq)
           then ok := false)
         a;
       !ok
     end

(* Push [s] onto the canonical stack [buf.(0 .. n-1)] and return the new
   length. Two fusion rules: (1) costs must strictly decrease — one never
   pauses before a segment at least as expensive as its predecessor;
   (2) valleys must strictly increase (suffix-minima decomposition) —
   pausing at a valley that a later segment descends below is never
   useful, and increasing valleys are exactly the property that makes the
   decreasing-cost merge rule of {!merge} optimal (see the exchange
   argument in the tests). *)
let push_canonical buf n s =
  let n = ref n and s = ref s in
  while
    !n > 0
    &&
    let top = buf.(!n - 1) in
    cost !s >= cost top || top.valley >= !s.valley
  do
    decr n;
    s := fuse buf.(!n) !s
  done;
  buf.(!n) <- !s;
  !n + 1

let dummy = { hill = 0; valley = 0; seq = Empty }

let canonicalize segments =
  match segments with
  | [] -> [||]
  | _ ->
      let buf = Array.make (List.length segments) dummy in
      let n = List.fold_left (fun n s -> push_canonical buf n s) 0 segments in
      Array.sub buf 0 n

let singleton ~hill ~valley ~node =
  if hill < valley then invalid_arg "Segments.singleton: hill < valley";
  [| { hill; valley; seq = seq_single node } |]

(* Two-way interleave, the overwhelmingly common case (binary nodes).
   Emission order replicates the heap of the general case exactly: the
   heap keys on negated cost and breaks ties on the smaller child index,
   so child [a] goes first whenever [cost a >= cost b]. *)
let merge2 a b =
  let la = Array.length a and lb = Array.length b in
  let buf = Array.make (la + lb) dummy in
  let n = ref 0 in
  let ia = ref 0 and ib = ref 0 in
  let contrib_a = ref 0 and contrib_b = ref 0 in
  let total = ref 0 in
  while !ia < la || !ib < lb do
    let from_a =
      !ia < la && (!ib >= lb || cost a.(!ia) >= cost b.(!ib))
    in
    let s, contrib = if from_a then (a.(!ia), contrib_a) else (b.(!ib), contrib_b) in
    let base = !total - !contrib in
    n :=
      push_canonical buf !n
        { hill = s.hill + base; valley = s.valley + base; seq = s.seq };
    total := base + s.valley;
    contrib := s.valley;
    if from_a then incr ia else incr ib
  done;
  Array.sub buf 0 !n

let merge_array arr =
  match Array.length arr with
  | 0 -> [||]
  | 1 -> arr.(0)
  | 2 -> merge2 arr.(0) arr.(1)
  | k ->
      let total_len = Array.fold_left (fun acc p -> acc + Array.length p) 0 arr in
      if total_len = 0 then [||]
      else begin
        let idx = Array.make k 0 in
        (* current retained contribution of each child (0 before its first
           segment completes) *)
        let contrib = Array.make k 0 in
        let total = ref 0 in
        (* max-heap on segment cost: Int_heap is a min-heap, so negate *)
        let heap = Tt_util.Int_heap.create k in
        for c = 0 to k - 1 do
          if Array.length arr.(c) > 0 then
            Tt_util.Int_heap.insert heap c (-cost arr.(c).(0))
        done;
        (* emit straight through the canonical stack: child profiles are
           consumed in place and no intermediate list is built *)
        let buf = Array.make total_len dummy in
        let n = ref 0 in
        while not (Tt_util.Int_heap.is_empty heap) do
          let c, _ = Tt_util.Int_heap.pop_min heap in
          let s = arr.(c).(idx.(c)) in
          let base = !total - contrib.(c) in
          n :=
            push_canonical buf !n
              { hill = s.hill + base; valley = s.valley + base; seq = s.seq };
          total := base + s.valley;
          contrib.(c) <- s.valley;
          idx.(c) <- idx.(c) + 1;
          if idx.(c) < Array.length arr.(c) then
            Tt_util.Int_heap.insert heap c (-cost arr.(c).(idx.(c)))
        done;
        Array.sub buf 0 !n
      end

let merge profiles =
  match profiles with
  | [] -> [||]
  | [ p ] -> p
  | _ -> merge_array (Array.of_list profiles)

let append_parent prof ~hill ~valley ~node =
  if hill < valley then invalid_arg "Segments.append_parent: hill < valley";
  (* [prof] is canonical, so the fuse cascade only reaches a suffix: keep
     the untouched prefix with one blit instead of re-canonicalizing *)
  let n = ref (Array.length prof) in
  let s = ref { hill; valley; seq = seq_single node } in
  while
    !n > 0
    &&
    let top = prof.(!n - 1) in
    cost !s >= cost top || top.valley >= !s.valley
  do
    decr n;
    s := fuse prof.(!n) !s
  done;
  let out = Array.make (!n + 1) !s in
  Array.blit prof 0 out 0 !n;
  out

let peak prof = Array.fold_left (fun acc s -> max acc s.hill) 0 prof

(* Both truncations keep the canonical prefix (costs strictly decrease,
   so the first cap-1 segments are the costliest) and summarize the tail
   in one segment ending at the exact final valley v_m. Canonicity of
   the result is structural: the prefix is untouched, v_{cap-1} < v_m
   because valleys strictly increase, and the summary segment's cost is
   strictly below cost cap-1 — zero for the minorant, and for the fused
   majorant max_j (v_j + c_j) - v_m < c_cap since v_j <= v_m with
   equality only at j = m. *)
let truncate_with prof ~cap ~tail =
  if cap < 2 then invalid_arg "Segments.truncate: cap < 2";
  let m = Array.length prof in
  if m <= cap then prof
  else begin
    let keep = cap - 1 in
    let out = Array.make cap dummy in
    Array.blit prof 0 out 0 keep;
    out.(keep) <- tail keep;
    out
  end

let truncate_lower prof ~cap =
  truncate_with prof ~cap ~tail:(fun keep ->
      (* the tail's executions are claimed at the final valley: pausing
         lower than the original is always sound for a lower bound, and
         the single zero-cost hop lands exactly on the exact output
         size. Sequences are irrelevant on the lower-bound pass but are
         concatenated anyway so the invariant "a profile carries its
         subtree's nodes" survives. *)
      let m = Array.length prof in
      let v = prof.(m - 1).valley in
      let seq = ref Empty in
      for j = keep to m - 1 do
        seq := seq_cat !seq prof.(j).seq
      done;
      { hill = v; valley = v; seq = !seq })

let truncate_upper prof ~cap =
  truncate_with prof ~cap ~tail:(fun keep ->
      (* fusing the tail forbids pausing inside it: the claimed hill is
         the max tail hill, and the recorded node sequence executes the
         tail contiguously, which any scheduler may do *)
      let m = Array.length prof in
      let hill = ref prof.(keep).hill in
      let seq = ref prof.(keep).seq in
      for j = keep + 1 to m - 1 do
        if prof.(j).hill > !hill then hill := prof.(j).hill;
        seq := seq_cat !seq prof.(j).seq
      done;
      { hill = !hill; valley = prof.(m - 1).valley; seq = !seq })

let final_valley prof =
  let n = Array.length prof in
  if n = 0 then 0 else prof.(n - 1).valley

let nodes prof =
  (* single accumulator over all ropes: segments last-to-first, each rope
     right-to-left, so prepending yields execution order directly *)
  let acc = ref [] in
  for i = Array.length prof - 1 downto 0 do
    let work = ref [ prof.(i).seq ] in
    while !work <> [] do
      match !work with
      | [] -> ()
      | Empty :: rest -> work := rest
      | Single x :: rest ->
          acc := x :: !acc;
          work := rest
      | Cat (a, b) :: rest -> work := b :: a :: rest
    done
  done;
  !acc

let iter_nodes prof f =
  (* forward walk over all ropes in execution order, no intermediate
     lists — callers that know the node count fill arrays directly *)
  Array.iter
    (fun seg ->
      let work = ref [ seg.seq ] in
      while !work <> [] do
        match !work with
        | [] -> ()
        | Empty :: rest -> work := rest
        | Single x :: rest ->
            f x;
            work := rest
        | Cat (a, b) :: rest -> work := a :: b :: rest
      done)
    prof

let rev_nodes prof =
  (* forward walk, prepending, gives reversed order *)
  let acc = ref [] in
  iter_nodes prof (fun x -> acc := x :: !acc);
  !acc

let check_canonical prof =
  let n = Array.length prof in
  let ok = ref true in
  for i = 0 to n - 1 do
    let s = prof.(i) in
    if s.hill < s.valley then ok := false;
    if i + 1 < n then begin
      let b = prof.(i + 1) in
      if not (cost s > cost b && s.valley < b.valley) then ok := false
    end
  done;
  !ok

let of_step_profile ~usage ~after ~order =
  let len = Array.length usage in
  if len = 0 then [||]
  else begin
    let buf = Array.make len dummy in
    let n = ref 0 in
    Array.iteri
      (fun k u ->
        n :=
          push_canonical buf !n
            { hill = u; valley = after.(k); seq = seq_single order.(k) })
      usage;
    Array.sub buf 0 !n
  end
