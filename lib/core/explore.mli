(** The [Explore] tree-exploration routine — Algorithm 3 of the paper.

    [Explore] descends from a node with a fixed amount of available
    memory and greedily improves a {e cut}: the set of subtree roots whose
    input files are still resident. A cut member [j] is substituted by the
    best cut of its own subtree whenever exploring below [j] reaches a
    state occupying at most [f j] (so the substitution cannot increase the
    cut's footprint); members are (re-)explored only when the available
    memory minus the rest of the cut reaches their recorded peak
    requirement, which guarantees progress and termination.

    On return, either the whole subtree was traversed (empty cut,
    occupation 0, peak requirement ∞) or the cut is the minimal-occupation
    state reachable with the given memory, together with the minimum extra
    memory needed to visit one more node.

    The paper speeds the algorithm up by resuming the root exploration
    from the previous round's cut ([Linit]/[Trinit] in Algorithm 3). This
    implementation applies that mechanism at {e every} node through a
    per-node {!cache} of reached cuts: a subtree's cut state is
    self-contained and its traversal prefix remains feasible when the
    available memory grows, so a later call with at least as much memory
    resumes instead of starting from scratch. *)

type result = {
  m_cut : int;
      (** Total file size of the final cut — the minimal reachable memory
          occupation; {!infinity_mem} when the entry node itself cannot
          execute. *)
  cut : int list;
      (** The cut: roots of the unprocessed subtrees (empty when the whole
          subtree was traversed). *)
  mpeak : int;
      (** Minimum memory with which a further node becomes reachable;
          always greater than the memory the exploration ran with.
          {!infinity_mem} when the subtree is fully traversed. *)
  trav : Tt_util.Rope.t;
      (** The traversal realizing the cut, starting at the entry node
          (a rope: cut substitutions concatenate subtree traversals in
          O(1)). *)
}

type cache
(** Per-node resume states, owned by a {!Minmem.run} invocation. *)

val make_cache : Tree.t -> cache
(** A fresh, empty cache for the given tree. *)

val infinity_mem : int
(** [max_int], standing for the paper's ∞. *)

val explore :
  ?cancel:Tt_util.Cancel.t ->
  Tree.t ->
  mpeak_tbl:int array ->
  cache:cache ->
  int ->
  mavail:int ->
  linit:int list ->
  trinit:Tt_util.Rope.t ->
  result
(** [explore t ~mpeak_tbl ~cache i ~mavail ~linit ~trinit] runs
    Algorithm 3 from node [i] with [mavail] memory. [mpeak_tbl] is the
    per-node table of last-known peak requirements, updated in place
    (size [Tree.size t], initialized to {!infinity_mem} by the caller). A
    non-empty [linit] resumes from a previously returned cut with its
    accumulated traversal [trinit] (which is then mutated and returned);
    an empty [linit] starts fresh by executing [i]. The [cancel] token
    (default {!Tt_util.Cancel.never}) is polled on entry and once per
    improvement round; an expired token raises
    {!Tt_util.Cancel.Cancelled}. *)
