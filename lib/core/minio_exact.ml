(* Branch and bound over eviction schedules for a fixed traversal. See
   the interface for the search-space argument (deficit-step branching is
   complete) and the pruning scheme. *)

let given_order ?(cancel = Tt_util.Cancel.never) ?(node_budget = 2_000_000) t
    ~memory ~order =
  let p = Tree.size t in
  if not (Traversal.is_valid_order t order) then
    invalid_arg "Minio_exact.given_order: invalid order";
  let pos = Array.make p 0 in
  Array.iteri (fun step i -> pos.(i) <- step) order;
  (* incumbent: the best of the six heuristics (None -> infeasible, and
     the heuristics are complete w.r.t. feasibility because LSNF evicts
     everything evictable) *)
  let incumbent =
    List.fold_left
      (fun acc (_, pol) ->
        match (acc, Minio.io_volume t ~memory ~order pol) with
        | None, r | r, None -> r
        | Some a, Some b -> Some (min a b))
      None Minio.all_policies
  in
  match incumbent with
  | None -> None
  | Some ub ->
      let best = ref ub in
      let nodes = ref 0 in
      (* divisible lower bound for the residual instance: fractional
         eviction, furthest-use-first, starting at [step] with the given
         residence state. Only *new* eviction volume is counted. *)
      let divisible_lb step resident out mavail0 =
        let amount = Array.make p 0.0 in
        let produced i =
          i = t.Tree.root || pos.(t.Tree.parent.(i)) < step
        in
        let total = ref 0.0 in
        for i = 0 to p - 1 do
          if produced i && pos.(i) >= step && resident.(i) && not out.(i) then begin
            amount.(i) <- float_of_int t.Tree.f.(i);
            total := !total +. amount.(i)
          end
        done;
        ignore mavail0;
        let io = ref 0.0 in
        let memf = float_of_int memory in
        (try
           for k = step to p - 1 do
             let j = order.(k) in
             let fj = float_of_int t.Tree.f.(j) in
             let bring = fj -. amount.(j) in
             amount.(j) <- fj;
             total := !total +. bring;
             let working =
               float_of_int (t.Tree.n.(j) + Tree.sum_children_f t j) +. fj
             in
             let excess = !total -. fj +. working -. memf in
             if excess > 1e-9 then begin
               let cand = ref [] in
               for i = 0 to p - 1 do
                 if i <> j && amount.(i) > 0.0 then cand := i :: !cand
               done;
               let cand = List.sort (fun a b -> compare pos.(b) pos.(a)) !cand in
               let remaining = ref excess in
               List.iter
                 (fun i ->
                   if !remaining > 1e-9 then begin
                     let take = Float.min amount.(i) !remaining in
                     amount.(i) <- amount.(i) -. take;
                     total := !total -. take;
                     io := !io +. take;
                     remaining := !remaining -. take
                   end)
                 cand;
               if !remaining > 1e-9 then raise Exit
             end;
             total := !total -. amount.(j);
             amount.(j) <- 0.0;
             Array.iter
               (fun c ->
                 amount.(c) <- float_of_int t.Tree.f.(c);
                 total := !total +. amount.(c))
               t.Tree.children.(j)
           done;
           ()
         with Exit -> io := infinity);
        !io
      in
      (* depth-first search; [solve] owns fresh copies of the state *)
      let rec solve step resident out mavail io =
        incr nodes;
        Tt_util.Cancel.check cancel;
        if !nodes > node_budget then
          failwith "Minio_exact.given_order: node budget exhausted";
        if io < !best then begin
          let resident = Array.copy resident and out = Array.copy out in
          let mavail = ref mavail in
          let k = ref step in
          let stuck = ref false in
          while (not !stuck) && !k < p do
            let j = order.(!k) in
            let need =
              Tree.mem_req t j - if out.(j) then 0 else t.Tree.f.(j)
            in
            if need <= !mavail then begin
              if out.(j) then begin
                out.(j) <- false;
                mavail := !mavail - t.Tree.f.(j)
              end
              else resident.(j) <- false;
              mavail := !mavail + t.Tree.f.(j) - Tree.sum_children_f t j;
              Array.iter (fun c -> resident.(c) <- true) t.Tree.children.(j);
              incr k
            end
            else stuck := true
          done;
          if not !stuck then begin
            if io < !best then best := io
          end
          else begin
            (* deficit at step !k: prune with the divisible bound, then
               branch over covering subsets, latest use first *)
            let lb = divisible_lb !k resident out !mavail in
            if float_of_int io +. lb < float_of_int !best -. 1e-6 then begin
              let j = order.(!k) in
              let need =
                Tree.mem_req t j - if out.(j) then 0 else t.Tree.f.(j)
              in
              let cand = ref [] in
              for i = 0 to p - 1 do
                if resident.(i) && i <> j && t.Tree.f.(i) > 0 then cand := i :: !cand
              done;
              let cand =
                Array.of_list (List.sort (fun a b -> compare pos.(b) pos.(a)) !cand)
              in
              let suffix = Array.make (Array.length cand + 1) 0 in
              for idx = Array.length cand - 1 downto 0 do
                suffix.(idx) <- suffix.(idx + 1) + t.Tree.f.(cand.(idx))
              done;
              let rec choose idx deficit io_now =
                if deficit <= 0 then solve !k resident out !mavail io_now
                else if idx >= Array.length cand then ()
                else if io_now + deficit >= !best then
                  (* even a perfect fit cannot beat the incumbent *)
                  ()
                else begin
                  (* option 1: evict cand.(idx) *)
                  let i = cand.(idx) in
                  let fi = t.Tree.f.(i) in
                  resident.(i) <- false;
                  out.(i) <- true;
                  mavail := !mavail + fi;
                  choose (idx + 1) (deficit - fi) (io_now + fi);
                  resident.(i) <- true;
                  out.(i) <- false;
                  mavail := !mavail - fi;
                  (* option 2: skip it, if the rest can still cover *)
                  if suffix.(idx + 1) >= deficit then choose (idx + 1) deficit io_now
                end
              in
              choose 0 (need - !mavail) io
            end
          end
        end
      in
      let resident = Array.make p false in
      let out = Array.make p false in
      resident.(t.Tree.root) <- true;
      solve 0 resident out (memory - t.Tree.f.(t.Tree.root)) 0;
      Some !best

let optimality_gap t ~memory ~order =
  match given_order t ~memory ~order with
  | None -> []
  | Some exact ->
      List.filter_map
        (fun (_, pol) ->
          match Minio.io_volume t ~memory ~order pol with
          | Some io -> Some (pol, io, exact)
          | None -> None)
        Minio.all_policies
