(** Exponential exact oracles, used only by tests and by the small-scale
    validation benches. They are derived directly from Definitions 1–4,
    independently of any of the paper's algorithmic insights, and thus
    serve as ground truth for {!Postorder_opt}, {!Liu_exact}, {!Minmem}
    and {!Minio}. *)

val min_memory : ?cancel:Tt_util.Cancel.t -> Tree.t -> int
(** Exact MinMemory by a shortest-bottleneck-path search over ready-set
    states (Dijkstra on the state graph with max-cost composition).
    Exponential state space — intended for trees of ≲ 20 nodes. The
    [cancel] token is polled once per dequeued state; an expired token
    raises {!Tt_util.Cancel.Cancelled}.
    @raise Invalid_argument if the tree has more than 22 nodes. *)

val min_memory_postorder : Tree.t -> int
(** Exact best-postorder memory by enumerating all child permutations.
    @raise Invalid_argument if the tree has more than 9 nodes. *)

val min_io : ?cancel:Tt_util.Cancel.t -> Tree.t -> memory:int -> int option
(** Exact MinIO: the least write volume over all traversals and all
    eviction sets, or [None] when even full eviction cannot make the tree
    feasible (i.e. [memory < max_mem_req]). Enumerates valid traversals ×
    subsets of evicted nodes; eviction timing is canonical
    (write-at-production, read-at-consumption), which is optimal for a
    fixed evicted set.
    @raise Invalid_argument if the tree has more than 9 nodes. *)

val min_io_given_order :
  ?cancel:Tt_util.Cancel.t -> Tree.t -> memory:int -> int array -> int option
(** Exact MinIO for a fixed traversal (problem (i) of Theorem 2), by
    enumeration over evicted sets.
    @raise Invalid_argument if the tree has more than 20 nodes. *)

val feasible_with_evictions : Tree.t -> memory:int -> int array -> evicted:bool array -> bool
(** Whether the traversal fits in [memory] when exactly the nodes with
    [evicted.(i)] have their input files written out at production and
    read back at consumption. The canonical-timing simulator underlying
    {!min_io}; exposed for tests against {!Io_schedule.check}. *)
