(** The [MinMem] exact MinMemory algorithm — Algorithm 4, the paper's
    main algorithmic contribution.

    [MinMem] drives {!Explore}: starting from the trivial lower bound
    [max_i MemReq i], it repeatedly re-explores the tree with exactly the
    memory that the previous attempt reported as necessary to visit one
    more node, resuming each time from the previously reached cut. The
    available memory therefore only ever takes values that are exact
    peak requirements of partial states, and the first value with which
    the exploration completes is the optimal memory.

    Same worst-case complexity as Liu's exact algorithm, O(p²), but
    faster in practice on assembly trees (reproduced by the Figure 6
    bench). *)

val run : ?cancel:Tt_util.Cancel.t -> Tree.t -> int * int array
(** [run t] is [(memory, order)]: the optimal memory over all traversals
    and a traversal achieving it. The [cancel] token is polled by the
    underlying {!Explore} rounds; an expired token raises
    {!Tt_util.Cancel.Cancelled}. *)

val min_memory : Tree.t -> int
(** First component of {!run}. *)

val iterations : Tree.t -> int
(** Number of [Explore] rounds performed by {!run} — exposed for the
    complexity experiments. *)
