module R = Tt_util.Rope
module D = Tt_util.Dynarray_compat

type result = { m_cut : int; cut : int list; mpeak : int; trav : R.t }

type cache_entry = { mutable avail : int; mutable cut : int list; mutable trav : R.t }

type cache = {
  entries : cache_entry option array;
  (* per-node membership stamps for the cut of the currently running
     call; every call draws a fresh token, so recursive calls can share
     the array (their cuts are disjoint) *)
  tokens : int array;
  mutable next_token : int;
}

let infinity_mem = max_int

let make_cache t =
  { entries = Array.make (Tree.size t) None;
    tokens = Array.make (Tree.size t) 0;
    next_token = 1 }

(* Algorithm 3, with two engineering refinements over the pseudocode:
   - the paper's Linit/Trinit resume mechanism is applied at every node
     rather than only at the root, through a per-node cache of reached
     cuts: a subtree's cut state is self-contained and its traversal
     prefix remains feasible when the available memory grows, so a later
     call with at least as much memory resumes instead of recomputing
     (cross-checked against the exponential oracle in the tests);
   - the cut is a growable array with tombstones and O(1) substitution,
     so wide nodes (stars) do not degenerate to quadratic time. *)
let rec explore ?(cancel = Tt_util.Cancel.never) t ~mpeak_tbl ~cache i ~mavail
    ~linit ~trinit =
  Tt_util.Cancel.check cancel;
  let fi = t.Tree.f.(i) and ni = t.Tree.n.(i) in
  let resume = linit <> [] in
  if (not resume) && Tree.is_leaf t i && ni + fi <= mavail then
    { m_cut = 0; cut = []; mpeak = infinity_mem; trav = R.singleton i }
  else begin
    let mem_req = fi + ni + Tree.sum_children_f t i in
    if (not resume) && mem_req > mavail then
      { m_cut = infinity_mem; cut = []; mpeak = mem_req; trav = R.empty }
    else begin
      let token = cache.next_token in
      cache.next_token <- token + 1;
      (* the cut: live members carry [token] in [cache.tokens] *)
      let members = D.create () in
      let sum_cut = ref 0 in
      (* count of live entries: a node is added at most once per call, so
         adds and removes track the tombstone density exactly *)
      let live = ref 0 in
      let add v =
        D.add_last members v;
        cache.tokens.(v) <- token;
        incr live;
        sum_cut := !sum_cut + t.Tree.f.(v)
      in
      let alive v = cache.tokens.(v) = token in
      let remove v =
        cache.tokens.(v) <- 0;
        decr live;
        sum_cut := !sum_cut - t.Tree.f.(v)
      in
      if resume then List.iter add linit else Array.iter add t.Tree.children.(i);
      let trav = ref (if resume then trinit else R.singleton i) in
      (* lines 12-19: improve the cut until no member is explorable *)
      let collect_candidates () =
        let cs = ref [] in
        D.iter
          (fun j ->
            if alive j && mavail - (!sum_cut - t.Tree.f.(j)) >= mpeak_tbl.(j) then
              cs := j :: !cs)
          members;
        !cs
      in
      let candidates = ref [] in
      let first_pass = ref true in
      let continue_ = ref true in
      while !continue_ do
        Tt_util.Cancel.check cancel;
        (* compact once tombstones dominate, so candidate collection on
           wide nodes scans the live cut rather than its whole history;
           the filter is stable, so iteration order — and therefore every
           result — is unchanged *)
        if D.length members > 16 && D.length members > 2 * !live then
          D.filter_in_place alive members;
        (* the first pass explores every initial member (the pseudocode's
           Candidates <- L_i), later passes only the promising ones *)
        candidates :=
          if !first_pass then begin
            first_pass := false;
            let cs = ref [] in
            D.iter (fun j -> if alive j then cs := j :: !cs) members;
            !cs
          end
          else collect_candidates ();
        if !candidates = [] then continue_ := false
        else
          List.iter
            (fun j ->
              let avail_j = mavail - (!sum_cut - t.Tree.f.(j)) in
              let r = explore_cached ~cancel t ~mpeak_tbl ~cache j ~mavail:avail_j in
              mpeak_tbl.(j) <- r.mpeak;
              if r.m_cut <= t.Tree.f.(j) then begin
                remove j;
                List.iter add r.cut;
                trav := R.cat !trav r.trav;
                cache.entries.(j) <- None
              end)
            !candidates
      done;
      (* lines 20-22 *)
      let cut = ref [] in
      let mpeak = ref infinity_mem in
      D.iter
        (fun j ->
          if alive j then begin
            cut := j :: !cut;
            (* release the stamp so unrelated later calls start clean *)
            if mpeak_tbl.(j) <> infinity_mem then
              mpeak := min !mpeak (mpeak_tbl.(j) + (!sum_cut - t.Tree.f.(j)))
          end)
        members;
      let final_sum = !sum_cut in
      List.iter (fun j -> cache.tokens.(j) <- 0) !cut;
      { m_cut = final_sum; cut = !cut; mpeak = !mpeak; trav = !trav }
    end
  end

(* Resume from the cached cut when the memory is at least what the cached
   state was reached with; refresh the cache with the new state when the
   subtree stays unfinished. *)
and explore_cached ?cancel t ~mpeak_tbl ~cache j ~mavail =
  let resumed, linit, trinit =
    match cache.entries.(j) with
    | Some c when mavail >= c.avail -> (true, c.cut, c.trav)
    | _ -> (false, [], R.empty)
  in
  let r = explore ?cancel t ~mpeak_tbl ~cache j ~mavail ~linit ~trinit in
  if r.m_cut <> infinity_mem && r.cut <> [] then begin
    match cache.entries.(j) with
    | Some c ->
        (* a fresh recompute at smaller memory resets the resume bar *)
        c.avail <- (if resumed then max c.avail mavail else mavail);
        c.cut <- r.cut;
        c.trav <- r.trav
    | None -> cache.entries.(j) <- Some { avail = mavail; cut = r.cut; trav = r.trav }
  end;
  r
