type policy = Lsnf | First_fit | Best_fit | First_fill | Best_fill | Best_k of int

let policy_name = function
  | Lsnf -> "LSNF"
  | First_fit -> "First Fit"
  | Best_fit -> "Best Fit"
  | First_fill -> "First Fill"
  | Best_fill -> "Best Fill"
  | Best_k k -> Printf.sprintf "Best %d Comb." k

let all_policies =
  List.map
    (fun p -> (policy_name p, p))
    [ Lsnf; First_fit; Best_fit; First_fill; Best_fill; Best_k 5 ]

module Os = Tt_util.Ordered_set

(* --- indexed candidate set ----------------------------------------------
   The eviction candidates at step [k] are the resident produced files
   other than the executing node's input, ordered latest next use first —
   descending traversal position. Rebuilding and re-sorting that list at
   every deficit event costs O(p log p) per event and makes a traversal
   quadratic, so the set is maintained incrementally instead, keyed by
   position (candidates always sit strictly after the current step, so no
   query needs a range restriction):

   - [os]: the positions themselves, an {!Tt_util.Ordered_set} with
     O(log p) navigation — enough for LSNF walks and Best-K fronts;
   - [maxf] / [minf]: segment trees over positions answering "rightmost
     position with f >= d" (First Fit) and "... with f < d" (First Fill)
     in O(log p);
   - [byf]: the positions partitioned by file size — an ordered set of
     present sizes plus one position set per size — turning Best Fit's
     closest-size and Best Fill's largest-below-deficit searches into
     floor/ceiling lookups.

   Only the parts the active policy needs are allocated. Every query
   returns the same file the previous linear scans chose, tie-breaks
   included: those scans ran over descending positions, so "first hit"
   always meant "largest position". *)

module Max_tree = struct
  (* max of f over positions; absent = 0 *)
  type t = { a : int array; m : int }

  let create p =
    let m = ref 1 in
    while !m < p do m := !m * 2 done;
    { a = Array.make (2 * !m) 0; m = !m }

  let set t q v =
    let i = ref (t.m + q) in
    t.a.(!i) <- v;
    i := !i lsr 1;
    while !i >= 1 do
      t.a.(!i) <- max t.a.(2 * !i) t.a.((2 * !i) + 1);
      i := !i lsr 1
    done

  (* rightmost position whose file is at least [thr] *)
  let rightmost_ge t thr =
    if t.a.(1) < thr then None
    else begin
      let i = ref 1 in
      while !i < t.m do
        i := if t.a.((2 * !i) + 1) >= thr then (2 * !i) + 1 else 2 * !i
      done;
      Some (!i - t.m)
    end
end

module Min_tree = struct
  (* min of f over positions; absent = max_int *)
  type t = { a : int array; m : int }

  let create p =
    let m = ref 1 in
    while !m < p do m := !m * 2 done;
    { a = Array.make (2 * !m) max_int; m = !m }

  let set t q v =
    let i = ref (t.m + q) in
    t.a.(!i) <- v;
    i := !i lsr 1;
    while !i >= 1 do
      t.a.(!i) <- min t.a.(2 * !i) t.a.((2 * !i) + 1);
      i := !i lsr 1
    done

  (* rightmost position whose file is strictly below [thr] *)
  let rightmost_lt t thr =
    if t.a.(1) >= thr then None
    else begin
      let i = ref 1 in
      while !i < t.m do
        i := if t.a.((2 * !i) + 1) < thr then (2 * !i) + 1 else 2 * !i
      done;
      Some (!i - t.m)
    end
end

type byf = { fvals : Os.t; classes : (int, Os.t) Hashtbl.t }

type cands = {
  order : int array; (* position -> node *)
  pos : int array; (* node -> position *)
  f : int array;
  os : Os.t;
  mutable total : int;
  maxf : Max_tree.t option;
  minf : Min_tree.t option;
  byf : byf option;
}

let make_cands tree ~order ~pos policy =
  let p = Array.length order in
  let maxf = match policy with First_fit -> Some (Max_tree.create p) | _ -> None in
  let minf = match policy with First_fill -> Some (Min_tree.create p) | _ -> None in
  let byf =
    match policy with
    | Best_fit | Best_fill ->
        let fmax = Array.fold_left max 0 tree.Tree.f in
        Some { fvals = Os.create (fmax + 1); classes = Hashtbl.create 64 }
    | _ -> None
  in
  { order; pos; f = tree.Tree.f; os = Os.create p; total = 0; maxf; minf; byf }

let class_of c byf fv =
  match Hashtbl.find_opt byf.classes fv with
  | Some s -> s
  | None ->
      let s = Os.create (Os.capacity c.os) in
      Hashtbl.add byf.classes fv s;
      s

(* register node [i]'s file when it becomes resident (no-op if empty) *)
let cand_add c i =
  let fv = c.f.(i) in
  if fv > 0 then begin
    let q = c.pos.(i) in
    Os.add c.os q;
    c.total <- c.total + fv;
    (match c.maxf with Some t -> Max_tree.set t q fv | None -> ());
    (match c.minf with Some t -> Min_tree.set t q fv | None -> ());
    match c.byf with
    | Some b ->
        let s = class_of c b fv in
        if Os.is_empty s then Os.add b.fvals fv;
        Os.add s q
    | None -> ()
  end

(* retire the candidate at position [q]; it must be a member *)
let cand_remove_pos c q =
  let fv = c.f.(c.order.(q)) in
  Os.remove c.os q;
  c.total <- c.total - fv;
  (match c.maxf with Some t -> Max_tree.set t q 0 | None -> ());
  (match c.minf with Some t -> Min_tree.set t q max_int | None -> ());
  match c.byf with
  | Some b ->
      let s = class_of c b fv in
      Os.remove s q;
      if Os.is_empty s then Os.remove b.fvals fv
  | None -> ()

let cand_drop c i =
  let q = c.pos.(i) in
  if Os.mem c.os q then cand_remove_pos c q

(* --- policy selection ---------------------------------------------------
   [evict c policy deficit apply] frees at least [deficit] — the caller
   has already checked [c.total >= deficit] — calling [apply node size]
   for each evicted file. *)

let evict c policy deficit apply =
  let rem = ref deficit in
  let take q =
    let i = c.order.(q) in
    let fv = c.f.(i) in
    cand_remove_pos c q;
    rem := !rem - fv;
    apply i fv
  in
  let take_max () =
    match Os.max_elt c.os with Some q -> take q | None -> assert false
  in
  let lsnf_rest () =
    while !rem > 0 && not (Os.is_empty c.os) do
      take_max ()
    done
  in
  match policy with
  | Lsnf -> lsnf_rest ()
  | First_fit -> (
      (* first file at least as large as the deficit; LSNF otherwise *)
      let maxf = match c.maxf with Some t -> t | None -> assert false in
      match Max_tree.rightmost_ge maxf !rem with
      | Some q -> take q
      | None -> lsnf_rest ())
  | First_fill ->
      (* repeatedly the first file strictly smaller than the deficit *)
      let minf = match c.minf with Some t -> t | None -> assert false in
      let progress = ref true in
      while !rem > 0 && !progress do
        match Min_tree.rightmost_lt minf !rem with
        | Some q -> take q
        | None -> progress := false
      done;
      if !rem > 0 then lsnf_rest ()
  | Best_fit ->
      (* repeatedly the file with size closest to the remaining deficit;
         ties broken towards the latest use — the floor and ceiling size
         classes cover the two possible distances, and within (and
         between) classes the largest position wins *)
      let b = match c.byf with Some b -> b | None -> assert false in
      while !rem > 0 && not (Os.is_empty c.os) do
        let fv =
          match (Os.pred b.fvals (!rem + 1), Os.succ b.fvals (!rem - 1)) with
          | Some lo, None -> lo
          | None, Some hi -> hi
          | Some lo, Some hi ->
              let dl = !rem - lo and dh = hi - !rem in
              if dl < dh then lo
              else if dh < dl then hi
              else begin
                match (Os.max_elt (class_of c b lo), Os.max_elt (class_of c b hi)) with
                | Some ql, Some qh -> if ql > qh then lo else hi
                | _ -> assert false
              end
          | None, None -> assert false
        in
        match Os.max_elt (class_of c b fv) with
        | Some q -> take q
        | None -> assert false
      done
      (* candidates exhausted with a residual deficit leave nothing for
         the LSNF fallback to do *)
  | Best_fill ->
      (* repeatedly the largest file strictly smaller than the deficit *)
      let b = match c.byf with Some b -> b | None -> assert false in
      let progress = ref true in
      while !rem > 0 && !progress do
        match Os.pred b.fvals !rem with
        | None -> progress := false
        | Some fv -> (
            match Os.max_elt (class_of c b fv) with
            | Some q -> take q
            | None -> assert false)
      done;
      if !rem > 0 then lsnf_rest ()
  | Best_k k ->
      (* repeatedly the subset of the k latest-used files whose total is
         closest to the deficit; ties prefer the larger total so the
         loop always progresses *)
      let progress = ref true in
      while !rem > 0 && !progress do
        let rec collect q acc cnt =
          if cnt = k then List.rev acc
          else
            match q with
            | None -> List.rev acc
            | Some q ->
                collect (Os.pred c.os q) ((q, c.f.(c.order.(q))) :: acc) (cnt + 1)
        in
        let front = Array.of_list (collect (Os.max_elt c.os) [] 0) in
        let m = Array.length front in
        if m = 0 then progress := false
        else begin
          let best_mask = ref 0 and best_d = ref max_int and best_sum = ref 0 in
          for mask = 1 to (1 lsl m) - 1 do
            let sum = ref 0 in
            for b = 0 to m - 1 do
              if mask land (1 lsl b) <> 0 then sum := !sum + snd front.(b)
            done;
            let d = abs (!rem - !sum) in
            if d < !best_d || (d = !best_d && !sum > !best_sum) then begin
              best_d := d;
              best_sum := !sum;
              best_mask := mask
            end
          done;
          if !best_sum = 0 then progress := false
          else
            for b = 0 to m - 1 do
              if !best_mask land (1 lsl b) <> 0 then take (fst front.(b))
            done
        end
      done;
      if !rem > 0 then lsnf_rest ()

(* --- simulation --------------------------------------------------------- *)

let run tree ~memory ~order policy =
  let p = Tree.size tree in
  if not (Traversal.is_valid_order tree order) then
    invalid_arg "Minio.run: invalid traversal";
  let pos = Array.make p 0 in
  Array.iteri (fun step i -> pos.(i) <- step) order;
  let tau = Array.make p Io_schedule.never in
  (* resident ready files; evicted.(i) set when the file is out *)
  let resident = Array.make p false in
  let evicted = Array.make p false in
  let c = make_cands tree ~order ~pos policy in
  resident.(tree.Tree.root) <- true;
  cand_add c tree.Tree.root;
  let mavail = ref (memory - tree.Tree.f.(tree.Tree.root)) in
  let feasible = ref true in
  let step = ref 0 in
  while !feasible && !step < p do
    let k = !step in
    let j = order.(k) in
    (* j's own input is never an eviction candidate, and the execution
       below consumes it: retire it from the candidate set up front *)
    cand_drop c j;
    (* total free memory that executing j requires: its working set minus
       its input file if the latter is already resident *)
    let need = Tree.mem_req tree j - if evicted.(j) then 0 else tree.Tree.f.(j) in
    if need > !mavail then begin
      let deficit = need - !mavail in
      if c.total < deficit then feasible := false
      else
        evict c policy deficit (fun i fi ->
            resident.(i) <- false;
            evicted.(i) <- true;
            tau.(i) <- k;
            mavail := !mavail + fi)
    end;
    if !feasible then begin
      (* read j's input back if needed, execute, produce children files *)
      if evicted.(j) then begin
        evicted.(j) <- false;
        resident.(j) <- false;
        mavail := !mavail - tree.Tree.f.(j)
      end
      else resident.(j) <- false;
      mavail := !mavail + tree.Tree.f.(j) - Tree.sum_children_f tree j;
      Array.iter
        (fun ch ->
          resident.(ch) <- true;
          cand_add c ch)
        tree.Tree.children.(j);
      incr step
    end
  done;
  if !feasible then Some { Io_schedule.order; tau } else None

let io_volume tree ~memory ~order policy =
  Option.map (Io_schedule.io_volume tree) (run tree ~memory ~order policy)

let divisible_lower_bound tree ~memory ~order =
  let p = Tree.size tree in
  if not (Traversal.is_valid_order tree order) then
    invalid_arg "Minio.divisible_lower_bound: invalid traversal";
  let pos = Array.make p 0 in
  Array.iteri (fun step i -> pos.(i) <- step) order;
  (* resident fraction (in size units) of each produced, unconsumed file;
     [os] tracks the positions with a positive fraction so each eviction
     event walks only the files it touches instead of re-sorting them all *)
  let resident = Array.make p 0.0 in
  resident.(tree.Tree.root) <- float_of_int tree.Tree.f.(tree.Tree.root);
  let resident_total = ref resident.(tree.Tree.root) in
  let os = Os.create p in
  if resident.(tree.Tree.root) > 0.0 then Os.add os pos.(tree.Tree.root);
  let io = ref 0.0 in
  let feasible = ref true in
  let step = ref 0 in
  while !feasible && !step < p do
    let k = !step in
    let j = order.(k) in
    (* j's own input is consumed below, never a candidate *)
    Os.remove os k;
    let fj = float_of_int tree.Tree.f.(j) in
    (* bring j's input fully back, then make room for the working set *)
    let bring = fj -. resident.(j) in
    resident.(j) <- fj;
    resident_total := !resident_total +. bring;
    let working =
      float_of_int (tree.Tree.n.(j) + Tree.sum_children_f tree j) +. fj
    in
    let excess = !resident_total -. fj +. working -. float_of_int memory in
    if excess > 1e-9 then begin
      (* evict [excess] units from the files used latest *)
      let remaining = ref excess in
      let exhausted = ref false in
      while !remaining > 1e-9 && not !exhausted do
        match Os.max_elt os with
        | None -> exhausted := true
        | Some q ->
            let i = order.(q) in
            let take = min resident.(i) !remaining in
            resident.(i) <- resident.(i) -. take;
            resident_total := !resident_total -. take;
            io := !io +. take;
            remaining := !remaining -. take;
            if resident.(i) <= 0.0 then Os.remove os q
      done;
      if !remaining > 1e-9 then feasible := false
    end;
    if !feasible then begin
      (* consume j's input, produce the children files *)
      resident_total := !resident_total -. resident.(j);
      resident.(j) <- 0.0;
      Array.iter
        (fun ch ->
          resident.(ch) <- float_of_int tree.Tree.f.(ch);
          resident_total := !resident_total +. resident.(ch);
          if resident.(ch) > 0.0 then Os.add os pos.(ch))
        tree.Tree.children.(j);
      incr step
    end
  done;
  if !feasible then Some !io else None
