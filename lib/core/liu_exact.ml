(* Compute the canonical profile of every subtree, bottom-up. When
   [release] is set, children profiles are dropped as soon as their parent
   is combined, keeping live memory proportional to the tree's width. *)
let compute ~release t =
  let p = Tree.size t in
  let prof : Segments.t array = Array.make p Segments.empty in
  Array.iter
    (fun i ->
      let merged =
        Segments.merge_array (Array.map (fun c -> prof.(c)) t.Tree.children.(i))
      in
      (* executing i (in-tree direction): all children files are live, the
         execution and output files are allocated, then the children files
         are freed, leaving f i *)
      prof.(i) <-
        Segments.append_parent merged ~hill:(Tree.mem_req t i) ~valley:t.Tree.f.(i)
          ~node:i;
      if release then
        Array.iter (fun c -> prof.(c) <- Segments.empty) t.Tree.children.(i))
    (Tree.bottom_up_order t);
  prof

let profiles t = compute ~release:false t

let run t =
  let p = Tree.size t in
  let prof = compute ~release:true t in
  let root_profile = prof.(t.Tree.root) in
  (* the profile lists nodes in the in-tree direction; the traversal
     wants root-first — fill the array backwards during the walk *)
  let order = Array.make p 0 in
  let k = ref p in
  Segments.iter_nodes root_profile (fun i ->
      decr k;
      order.(!k) <- i);
  (Segments.peak root_profile, order)

let min_memory t = fst (run t)
