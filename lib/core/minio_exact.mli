(** Exact MinIO for a {e fixed} traversal by branch and bound.

    Problem (i) of Theorem 2 is NP-complete, so no polynomial algorithm is
    expected; this solver still pushes the practical reach far beyond the
    2^p subset enumeration of {!Brute_force.min_io_given_order} by
    exploiting two structural facts:

    - evictions may be assumed to happen only at {e deficit steps} (an
      eviction performed earlier than needed can be postponed to the
      deficit it serves without changing the volume), and at a deficit
      one never evicts a file that is read back before the next deficit;
    - the divisible relaxation ({!Minio.divisible_lower_bound}) of the
      residual instance lower-bounds the remaining integral cost, giving
      an admissible pruning bound; the incumbent is initialized with the
      best of the paper's six heuristics.

    The search branches, at each deficit, on evict/keep decisions for the
    resident candidates in latest-use-first order. Worst case remains
    exponential; in practice trees of 30–60 nodes solve instantly, which
    is enough to measure the heuristics' true optimality gap (reported by
    the bench's [minio-gap] section). *)

val given_order :
  ?cancel:Tt_util.Cancel.t ->
  ?node_budget:int ->
  Tree.t ->
  memory:int ->
  order:int array ->
  int option
(** Least I/O volume over all eviction schedules for this traversal;
    [None] if infeasible. [node_budget] (default [2_000_000]) caps the
    number of explored search nodes. The [cancel] token is polled once
    per search node; an expired token raises
    {!Tt_util.Cancel.Cancelled}.
    @raise Invalid_argument if the order is invalid.
    @raise Failure if the budget is exhausted before the search
    completes (the instance is genuinely hard). *)

val optimality_gap :
  Tree.t -> memory:int -> order:int array -> (Minio.policy * int * int) list
(** For every paper heuristic: [(policy, heuristic I/O, exact I/O)] on
    the given instance (only when both are feasible). *)
