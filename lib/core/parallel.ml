type event = { node : int; proc : int; start : int; finish : int }
type schedule = { events : event array; makespan : int; peak_memory : int }

let levels t ~work =
  (* bottom level: work i + max over children levels *)
  let p = Tree.size t in
  let lvl = Array.make p 0 in
  let d = Tree.depth t in
  let order = Array.init p (fun i -> i) in
  Array.sort (fun a b -> compare d.(b) d.(a)) order;
  Array.iter
    (fun i ->
      let below = Array.fold_left (fun acc c -> max acc lvl.(c)) 0 t.Tree.children.(i) in
      lvl.(i) <- work i + below)
    order;
  lvl

let critical_path t ~work = (levels t ~work).(t.Tree.root)

let sequential_makespan t ~work =
  let acc = ref 0 in
  for i = 0 to Tree.size t - 1 do
    acc := !acc + work i
  done;
  !acc

let booking_schedule ?order t ~procs ~memory ~work =
  if procs < 1 then invalid_arg "Parallel.booking_schedule: procs < 1";
  let p = Tree.size t in
  for i = 0 to p - 1 do
    if work i < 1 then invalid_arg "Parallel.booking_schedule: work < 1"
  done;
  let order =
    match order with
    | None -> snd (Minmem.run t)
    | Some o ->
        if not (Traversal.is_valid_order t o) then
          invalid_arg "Parallel.booking_schedule: order is not a traversal";
        o
  in
  let extra i = t.Tree.n.(i) + Tree.sum_children_f t i in
  (* state: tasks start strictly in [order]; [next] is the first unstarted
     position. Booking = the whole working set [extra i] is charged at
     start, so a started task can always finish. *)
  let next = ref 0 in
  let finished = Array.make p false in
  let usage = ref t.Tree.f.(t.Tree.root) in
  let peak = ref !usage in
  let free_procs = ref (List.init procs (fun k -> k)) in
  let heap = Tt_util.Int_heap.create p in
  let proc_of = Array.make p (-1) in
  let start_of = Array.make p 0 in
  let events = Tt_util.Dynarray_compat.create () in
  let time = ref 0 in
  let done_count = ref 0 in
  let deadlock = ref false in
  let try_start () =
    let blocked = ref false in
    while (not !blocked) && !next < p do
      let i = order.(!next) in
      let par = t.Tree.parent.(i) in
      match !free_procs with
      | pr :: rest
        when (par < 0 || finished.(par)) && !usage + extra i <= memory ->
          free_procs := rest;
          usage := !usage + extra i;
          if !usage > !peak then peak := !usage;
          proc_of.(i) <- pr;
          start_of.(i) <- !time;
          Tt_util.Int_heap.insert heap i (!time + work i);
          incr next
      | _ -> blocked := true
    done
  in
  try_start ();
  while (not !deadlock) && !done_count < p do
    if Tt_util.Int_heap.is_empty heap then deadlock := true
    else begin
      let i, finish = Tt_util.Int_heap.pop_min heap in
      time := finish;
      (* complete every task finishing at this instant *)
      let completed = ref [ i ] in
      let continue_ = ref true in
      while !continue_ do
        match Tt_util.Int_heap.min_elt heap with
        | j, fj when fj = finish ->
            ignore (Tt_util.Int_heap.pop_min heap);
            completed := j :: !completed
        | _ -> continue_ := false
        | exception Not_found -> continue_ := false
      done;
      List.iter
        (fun j ->
          incr done_count;
          finished.(j) <- true;
          Tt_util.Dynarray_compat.add_last events
            { node = j; proc = proc_of.(j); start = start_of.(j); finish };
          free_procs := proc_of.(j) :: !free_procs;
          usage := !usage - extra j - t.Tree.f.(j) + Tree.sum_children_f t j)
        !completed;
      try_start ()
    end
  done;
  if !deadlock then None
  else begin
    let evs = Tt_util.Dynarray_compat.to_array events in
    Array.sort (fun a b -> compare (a.start, a.node) (b.start, b.node)) evs;
    let makespan = Array.fold_left (fun acc e -> max acc e.finish) 0 evs in
    Some { events = evs; makespan; peak_memory = !peak }
  end

let list_schedule ?priority t ~procs ~memory ~work =
  if procs < 1 then invalid_arg "Parallel.list_schedule: procs < 1";
  let p = Tree.size t in
  for i = 0 to p - 1 do
    if work i < 1 then invalid_arg "Parallel.list_schedule: work < 1"
  done;
  let prio =
    match priority with Some f -> Array.init p f | None -> levels t ~work
  in
  let extra i = t.Tree.n.(i) + Tree.sum_children_f t i in
  (* state *)
  let ready = ref [ t.Tree.root ] in
  let usage = ref t.Tree.f.(t.Tree.root) in
  let peak = ref !usage in
  let free_procs = ref (List.init procs (fun k -> k)) in
  (* running tasks as a finish-time min-heap over task ids *)
  let heap = Tt_util.Int_heap.create p in
  let proc_of = Array.make p (-1) in
  let start_of = Array.make p 0 in
  let events = Tt_util.Dynarray_compat.create () in
  let time = ref 0 in
  let done_count = ref 0 in
  let deadlock = ref false in
  let try_start () =
    (* start ready tasks in priority order while a processor and the
       memory allow; tasks that do not fit are skipped (greedy holes) *)
    let sorted = List.sort (fun a b -> compare (prio.(b), a) (prio.(a), b)) !ready in
    let remaining = ref [] in
    List.iter
      (fun i ->
        match !free_procs with
        | pr :: rest when !usage + extra i <= memory ->
            free_procs := rest;
            usage := !usage + extra i;
            if !usage > !peak then peak := !usage;
            proc_of.(i) <- pr;
            start_of.(i) <- !time;
            Tt_util.Int_heap.insert heap i (!time + work i)
        | _ -> remaining := i :: !remaining)
      sorted;
    ready := !remaining
  in
  try_start ();
  while (not !deadlock) && !done_count < p do
    if Tt_util.Int_heap.is_empty heap then deadlock := true
    else begin
      let i, finish = Tt_util.Int_heap.pop_min heap in
      time := finish;
      (* complete every task finishing at this instant *)
      let completed = ref [ i ] in
      let continue_ = ref true in
      while !continue_ do
        match Tt_util.Int_heap.min_elt heap with
        | j, fj when fj = finish ->
            ignore (Tt_util.Int_heap.pop_min heap);
            completed := j :: !completed
        | _ -> continue_ := false
        | exception Not_found -> continue_ := false
      done;
      List.iter
        (fun j ->
          incr done_count;
          Tt_util.Dynarray_compat.add_last events
            { node = j; proc = proc_of.(j); start = start_of.(j); finish };
          free_procs := proc_of.(j) :: !free_procs;
          (* extras and the consumed input die; children files are born *)
          usage := !usage - extra j - t.Tree.f.(j) + Tree.sum_children_f t j;
          ready := Array.to_list t.Tree.children.(j) @ !ready)
        !completed;
      try_start ()
    end
  done;
  if !deadlock then
    (* A greedy prefix stranded too many open files — the parallel
       MinMemory phenomenon. Replay with the booking discipline along a
       memory-optimal activation order: succeeds for every budget at
       least the sequential optimum. *)
    booking_schedule t ~procs ~memory ~work
  else begin
    let evs = Tt_util.Dynarray_compat.to_array events in
    Array.sort (fun a b -> compare (a.start, a.node) (b.start, b.node)) evs;
    let makespan = Array.fold_left (fun acc e -> max acc e.finish) 0 evs in
    Some { events = evs; makespan; peak_memory = !peak }
  end

let validate t ~memory ~work s =
  let p = Tree.size t in
  Array.length s.events = p
  &&
  let finish_of = Array.make p (-1) in
  let ok = ref true in
  Array.iter
    (fun e ->
      if e.node < 0 || e.node >= p || finish_of.(e.node) >= 0 then ok := false
      else begin
        if e.finish - e.start <> work e.node then ok := false;
        finish_of.(e.node) <- e.finish
      end)
    s.events;
  (* precedence *)
  Array.iter
    (fun e ->
      let par = t.Tree.parent.(e.node) in
      if par >= 0 then begin
        let pf =
          Array.fold_left
            (fun acc e' -> if e'.node = par then e'.finish else acc)
            (-1) s.events
        in
        if e.start < pf then ok := false
      end)
    s.events;
  (* processor exclusivity *)
  Array.iter
    (fun e ->
      Array.iter
        (fun e' ->
          if e.node <> e'.node && e.proc = e'.proc && e.start < e'.finish
             && e'.start < e.finish
          then ok := false)
        s.events)
    s.events;
  (* memory at every start instant (usage is piecewise constant and only
     increases at task starts) *)
  let usage_at time =
    let u = ref 0 in
    (* running extras *)
    Array.iter
      (fun e ->
        if e.start <= time && time < e.finish then
          u := !u + t.Tree.n.(e.node) + Tree.sum_children_f t e.node)
      s.events;
    (* alive files: parent finished, node not finished *)
    for i = 0 to p - 1 do
      let born =
        if i = t.Tree.root then 0
        else
          Array.fold_left
            (fun acc e -> if e.node = t.Tree.parent.(i) then e.finish else acc)
            max_int s.events
      in
      if born <= time && finish_of.(i) > time then u := !u + t.Tree.f.(i)
    done;
    !u
  in
  Array.iter (fun e -> if usage_at e.start > memory then ok := false) s.events;
  if s.makespan <> Array.fold_left (fun acc e -> max acc e.finish) 0 s.events then
    ok := false;
  !ok
