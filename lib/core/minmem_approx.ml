type bounds = {
  lower : int;
  upper : int;
  order : int array;
  seg_cap : int;
  rounds : int;
  exact : bool;
}

let gap b =
  if b.upper = 0 then 0.
  else float_of_int (b.upper - b.lower) /. float_of_int b.upper

(* ------------------------------------------------------------------ *)
(* Lower bound: bounded-profile Liu on numbers only. Profiles are the
   canonical hill/valley pairs of [Segments], packed per node as
   [|h0; v0; h1; v1; ...|] — no segment records and no node ropes, so
   the pass allocates a few dozen bytes per node instead of retaining an
   O(p) rope structure. The push/merge/append rules below transcribe
   [Segments.push_canonical], [merge2], [merge_array] and
   [append_parent]; with an unbounded cap the computed root peak equals
   [Liu_exact.min_memory] exactly (pinned by the property tests). *)

(* push (h, v) onto the canonical stack [buf.(0 .. 2n-1)], fusing while
   costs fail to strictly decrease or valleys fail to strictly increase;
   returns the new segment count *)
let npush buf n h v =
  let n = ref n and h = ref h in
  let continue_ = ref true in
  while !continue_ && !n > 0 do
    let th = buf.(2 * !n - 2) and tv = buf.(2 * !n - 1) in
    if !h - v >= th - tv || tv >= v then begin
      decr n;
      if th > !h then h := th
    end
    else continue_ := false
  done;
  buf.(2 * !n) <- !h;
  buf.(2 * !n + 1) <- v;
  !n + 1

let nmerge2 a b buf =
  let la = Array.length a / 2 and lb = Array.length b / 2 in
  let n = ref 0 in
  let ia = ref 0 and ib = ref 0 in
  let ca = ref 0 and cb = ref 0 in
  let total = ref 0 in
  while !ia < la || !ib < lb do
    let from_a =
      !ia < la
      && (!ib >= lb
         || a.(2 * !ia) - a.((2 * !ia) + 1) >= b.(2 * !ib) - b.((2 * !ib) + 1))
    in
    let h, v, contrib =
      if from_a then (a.(2 * !ia), a.((2 * !ia) + 1), ca)
      else (b.(2 * !ib), b.((2 * !ib) + 1), cb)
    in
    let base = !total - !contrib in
    n := npush buf !n (h + base) (v + base);
    total := base + v;
    contrib := v;
    if from_a then incr ia else incr ib
  done;
  !n

let nmerge_k arr buf =
  let k = Array.length arr in
  let idx = Array.make k 0 in
  let contrib = Array.make k 0 in
  let total = ref 0 in
  let segs c = Array.length arr.(c) / 2 in
  let cost_of c i = arr.(c).(2 * i) - arr.(c).((2 * i) + 1) in
  let heap = Tt_util.Int_heap.create k in
  for c = 0 to k - 1 do
    if segs c > 0 then Tt_util.Int_heap.insert heap c (-cost_of c 0)
  done;
  let n = ref 0 in
  while not (Tt_util.Int_heap.is_empty heap) do
    let c, _ = Tt_util.Int_heap.pop_min heap in
    let i = idx.(c) in
    let h = arr.(c).(2 * i) and v = arr.(c).((2 * i) + 1) in
    let base = !total - contrib.(c) in
    n := npush buf !n (h + base) (v + base);
    total := base + v;
    contrib.(c) <- v;
    idx.(c) <- i + 1;
    if idx.(c) < segs c then Tt_util.Int_heap.insert heap c (-cost_of c idx.(c))
  done;
  !n

(* returns (certified lower bound, whether any truncation happened) *)
let lower_bound (t : Flat_tree.t) ~cap =
  let p = Flat_tree.size t in
  let child_off = t.Flat_tree.child_off and child = t.Flat_tree.child in
  let f = t.Flat_tree.f in
  let prof : int array array = Array.make p [||] in
  let truncated = ref false in
  let peak = ref 0 in
  (* shared scratch, regrown on demand: one merge is live at a time *)
  let scratch = ref (Array.make 64 0) in
  let ensure len = if Array.length !scratch < len then scratch := Array.make len 0 in
  Array.iter
    (fun i ->
      let off = child_off.(i) in
      let deg = child_off.(i + 1) - off in
      let total_segs = ref 1 in
      for k = off to off + deg - 1 do
        total_segs := !total_segs + (Array.length prof.(child.(k)) / 2)
      done;
      ensure (2 * !total_segs);
      let buf = !scratch in
      let n =
        match deg with
        | 0 -> 0
        | 1 ->
            let a = prof.(child.(off)) in
            Array.blit a 0 buf 0 (Array.length a);
            Array.length a / 2
        | 2 -> nmerge2 prof.(child.(off)) prof.(child.(off + 1)) buf
        | _ -> nmerge_k (Array.init deg (fun k -> prof.(child.(off + k)))) buf
      in
      let hill = Flat_tree.mem_req t i and valley = f.(i) in
      if hill < valley then
        invalid_arg "Minmem_approx.lower_bound: mem_req < f";
      let n = npush buf n hill valley in
      if i = t.Flat_tree.root then
        (* the relaxed optimum is the root's pre-truncation peak *)
        for j = 0 to n - 1 do
          if buf.(2 * j) > !peak then peak := buf.(2 * j)
        done
      else begin
        let m = if n <= cap then n else cap in
        let out = Array.make (2 * m) 0 in
        if n <= cap then Array.blit buf 0 out 0 (2 * n)
        else begin
          (* minorant truncation: keep the cap-1 costliest segments, park
             the tail at the final valley with a zero-cost segment *)
          truncated := true;
          Array.blit buf 0 out 0 (2 * (cap - 1));
          let vm = buf.((2 * n) - 1) in
          out.((2 * cap) - 2) <- vm;
          out.((2 * cap) - 1) <- vm
        end;
        prof.(i) <- out;
        for k = off to off + deg - 1 do
          prof.(child.(k)) <- [||]
        done
      end)
    (Flat_tree.bottom_up_order t);
  (!peak, !truncated)

(* ------------------------------------------------------------------ *)
(* Upper bound refinement: bounded-profile Liu with majorant truncation,
   carrying real node ropes so a concrete traversal can be emitted. The
   emitted order is valid by construction (truncation only concatenates
   adjacent segments, preserving the children-before-parent in-tree
   order), and its peak is measured by simulation — the certificate does
   not rest on the truncation argument. *)

let bounded_upper_order (t : Flat_tree.t) ~cap =
  let p = Flat_tree.size t in
  let child_off = t.Flat_tree.child_off and child = t.Flat_tree.child in
  let prof : Segments.t array = Array.make p Segments.empty in
  Array.iter
    (fun i ->
      let off = child_off.(i) in
      let deg = child_off.(i + 1) - off in
      let merged =
        Segments.merge_array (Array.init deg (fun k -> prof.(child.(off + k))))
      in
      let appended =
        Segments.append_parent merged ~hill:(Flat_tree.mem_req t i)
          ~valley:t.Flat_tree.f.(i) ~node:i
      in
      prof.(i) <- Segments.truncate_upper appended ~cap;
      if i <> t.Flat_tree.root then
        for k = off to off + deg - 1 do
          prof.(child.(k)) <- Segments.empty
        done)
    (Flat_tree.bottom_up_order t);
  let order = Array.make p 0 in
  let k = ref p in
  Segments.iter_nodes prof.(t.Flat_tree.root) (fun i ->
      decr k;
      order.(!k) <- i);
  order

(* ------------------------------------------------------------------ *)

let run ?(seg_cap = 8) ?(tol = 0.01) ?(max_rounds = 3)
    ?(exact_threshold = 20_000) t =
  if seg_cap < 2 then invalid_arg "Minmem_approx.run: seg_cap < 2";
  if tol < 0. then invalid_arg "Minmem_approx.run: tol < 0";
  if max_rounds < 0 then invalid_arg "Minmem_approx.run: max_rounds < 0";
  let p = Flat_tree.size t in
  if p <= exact_threshold then begin
    let peak, order = Flat_tree.liu_run t in
    { lower = peak; upper = peak; order; seg_cap = 0; rounds = 0; exact = true }
  end
  else begin
    let cap = ref seg_cap in
    let lb, lb_truncated =
      let l, tr = lower_bound t ~cap:!cap in
      (ref l, ref tr)
    in
    let ub, order0 = Flat_tree.postorder_run t in
    let best_ub = ref ub and best_order = ref order0 in
    let gap_ok () =
      float_of_int (!best_ub - !lb) <= tol *. float_of_int !best_ub
    in
    let rounds = ref 0 in
    while (not (gap_ok ())) && !rounds < max_rounds do
      incr rounds;
      (* try a certified traversal from the majorant pass at this cap *)
      let order' = bounded_upper_order t ~cap:!cap in
      let pk = Flat_tree.peak t order' in
      if pk < !best_ub then begin
        best_ub := pk;
        best_order := order'
      end;
      if not (gap_ok ()) then begin
        cap := !cap * 4;
        if !lb_truncated then begin
          let l, tr = lower_bound t ~cap:!cap in
          if l > !lb then lb := l;
          lb_truncated := tr
        end
      end
    done;
    {
      lower = !lb;
      upper = !best_ub;
      order = !best_order;
      seg_cap = !cap;
      rounds = !rounds;
      exact = (not !lb_truncated) && !lb = !best_ub;
    }
  end

let run_tree ?seg_cap ?tol ?max_rounds ?exact_threshold tree =
  run ?seg_cap ?tol ?max_rounds ?exact_threshold (Flat_tree.of_tree tree)
