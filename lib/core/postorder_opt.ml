(* Children of [i] sorted by increasing P(c) - f(c): the child processed
   first suffers the largest pending-sibling sum, so it must be the one
   whose peak exceeds its own file the least. (This is the reversal of
   Liu's decreasing rule for bottom-up in-trees.) *)
let sorted_children t peaks i =
  let cs = Array.copy t.Tree.children.(i) in
  Array.sort
    (fun a b -> Int.compare (peaks.(a) - t.Tree.f.(a)) (peaks.(b) - t.Tree.f.(b)))
    cs;
  cs

let peaks_with t order_of =
  let p = Tree.size t in
  let peaks = Array.make p 0 in
  Array.iter
    (fun i ->
      let cs = order_of i in
      let best = ref (Tree.mem_req t i) in
      (* pending = sum of f over children not yet processed *)
      let pending = ref (Array.fold_left (fun acc c -> acc + t.Tree.f.(c)) 0 cs) in
      Array.iter
        (fun c ->
          pending := !pending - t.Tree.f.(c);
          let v = peaks.(c) + !pending in
          if v > !best then best := v)
        cs;
      peaks.(i) <- !best)
    (Tree.bottom_up_order t);
  peaks

(* Bottom-up computation of the optimal subtree peaks: the children must
   be sorted with the peaks computed so far, so the array is filled in
   place (children strictly before parents). The sorted children arrays
   are kept so that traversal emission reuses them instead of sorting
   every child list a second time. *)
let subtree_peaks_sorted t =
  let p = Tree.size t in
  let peaks = Array.make p 0 in
  let sorted = Array.make p [||] in
  Array.iter
    (fun i ->
      let cs = sorted_children t peaks i in
      sorted.(i) <- cs;
      let best = ref (Tree.mem_req t i) in
      let pending = ref (Array.fold_left (fun acc c -> acc + t.Tree.f.(c)) 0 cs) in
      Array.iter
        (fun c ->
          pending := !pending - t.Tree.f.(c);
          let v = peaks.(c) + !pending in
          if v > !best then best := v)
        cs;
      peaks.(i) <- !best)
    (Tree.bottom_up_order t);
  (peaks, sorted)

let subtree_peaks t = fst (subtree_peaks_sorted t)

let run t =
  let p = Tree.size t in
  let peaks, sorted = subtree_peaks_sorted t in
  (* emit the traversal: explicit stack to survive deep chains *)
  let order = Array.make p (-1) in
  let k = ref 0 in
  let stack = ref [ t.Tree.root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
        stack := rest;
        order.(!k) <- i;
        incr k;
        let cs = sorted.(i) in
        (* children must be popped in sorted order: push in reverse *)
        for j = Array.length cs - 1 downto 0 do
          stack := cs.(j) :: !stack
        done
  done;
  (peaks.(t.Tree.root), order)

let best_memory t = fst (run t)

let peak_with_child_order t order_of =
  let peaks = peaks_with t order_of in
  peaks.(t.Tree.root)

let all_postorders t =
  let p = Tree.size t in
  if p > 9 then invalid_arg "Postorder_opt.all_postorders: tree too large";
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y <> x) l in
            List.map (fun perm -> x :: perm) (permutations rest))
          l
  in
  (* all traversals of the subtree rooted at i, each as a node list *)
  let rec subtree i =
    let cs = Array.to_list t.Tree.children.(i) in
    let child_seqs = List.map subtree cs in
    (* for each permutation of children, all combinations of their
       sub-traversals *)
    let perms = permutations (List.mapi (fun idx c -> (idx, c)) cs) in
    List.concat_map
      (fun perm ->
        let rec combine = function
          | [] -> [ [] ]
          | (idx, _) :: rest ->
              let seqs = List.nth child_seqs idx in
              List.concat_map
                (fun tail -> List.map (fun s -> s @ tail) seqs)
                (combine rest)
        in
        List.map (fun body -> i :: body) (combine perm))
      perms
  in
  List.map Array.of_list (subtree t.Tree.root)
