(** Searching over traversals for MinIO.

    Figure 8 of the paper shows that the traversal fed to the eviction
    heuristics matters as much as the heuristic itself (PostOrder beats
    the memory-optimal MinMem traversal out of core). This module turns
    that observation into a tool: generate a portfolio of candidate
    traversals — the three algorithmic sources, postorders with perturbed
    child orders, and random traversals — evaluate each with a policy,
    and keep the best.

    This is a practical upper-bound procedure for the NP-complete MinIO
    problem (Theorem 2), complementing the divisible lower bound of
    {!Minio.divisible_lower_bound}; the bench's [fig8] section reports
    how much it gains over the fixed sources. *)

type outcome = {
  order : int array;  (** The best traversal found. *)
  schedule : Io_schedule.t;  (** Its eviction schedule. *)
  io : int;  (** Its I/O volume. *)
  source : string;  (** Which candidate family produced it. *)
}

val candidates :
  rng:Tt_util.Rng.t -> attempts:int -> Tree.t -> (string * int array) list
(** The portfolio: ["postorder"], ["liu"], ["minmem"], plus [attempts]
    perturbed postorders (["postorder~k"]: each node's children order is
    randomly shuffled) and [attempts] uniformly random traversals
    (["random~k"]). *)

val run :
  ?cancel:Tt_util.Cancel.t ->
  ?policy:Minio.policy ->
  ?attempts:int ->
  rng:Tt_util.Rng.t ->
  Tree.t ->
  memory:int ->
  outcome option
(** Best (traversal, schedule) over the portfolio under [policy] (default
    {!Minio.First_fit}; [attempts] defaults to 8). [None] when no
    candidate is feasible, i.e. [memory < max_mem_req]. Deterministic
    given the generator state. The [cancel] token is polled once per
    candidate evaluation; an expired token raises
    {!Tt_util.Cancel.Cancelled}. *)
