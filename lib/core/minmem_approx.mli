(** Certified approximate MinMemory for huge trees — near-linear lower
    and upper bounds sandwiching the exact optimum.

    The paper's exact algorithms ({!Minmem}, {!Liu_exact}) are
    worst-case O(p²); beyond a few hundred thousand nodes they stop
    being practical. This module instead runs {e bounded-profile Liu}:
    the same hill–valley calculus ({!Segments}), but every subtree
    profile is truncated to at most [seg_cap] segments after each
    combination step, which caps the per-node work and makes the whole
    pass near-linear (O(p · seg_cap · log(max degree))).

    Truncating in two directions yields a certificate:

    - {b lower}: minorant truncation ({!Segments.truncate_lower})
      relaxes the instance — every real schedule maps to a relaxed
      schedule with pointwise smaller or equal memory — so the relaxed
      optimum computed bottom-up is a guaranteed lower bound on the true
      optimal peak. When no profile ever exceeds the cap the relaxation
      is vacuous and the bound {e is} the exact Liu optimum.
    - {b upper}: the best-postorder traversal ({!Postorder_opt} on the
      flat representation, O(p log p)) gives a first upper bound; if the
      gap is still above [tol], majorant truncation
      ({!Segments.truncate_upper}) produces a concrete traversal whose
      simulated peak — measured by {!Flat_tree.peak}, so certified
      independently of any theory — refines it.

    Refinement multiplies [seg_cap] and repeats, up to [max_rounds]
    times or until the relative gap drops below [tol]. Trees with at
    most [exact_threshold] nodes bypass all of this and get the exact
    Liu answer (gap 0).

    The contract, pinned by the property tests: for every result,
    [lower <= opt <= upper] where [opt] is the exact MinMemory, and
    [order] is a valid traversal with simulated peak exactly [upper]. *)

type bounds = {
  lower : int;  (** Certified lower bound on the optimal peak. *)
  upper : int;  (** Simulated peak of [order] — a certified upper bound. *)
  order : int array;  (** A valid traversal achieving [upper]. *)
  seg_cap : int;  (** Final segment cap in force (0 on the exact path). *)
  rounds : int;  (** Refinement rounds actually run. *)
  exact : bool;  (** [lower = upper = opt] provably (no truncation, or
                     the exact path). *)
}

val gap : bounds -> float
(** Relative certified gap [(upper - lower) / upper]; [0.] when
    [upper = 0]. *)

val run :
  ?seg_cap:int ->
  ?tol:float ->
  ?max_rounds:int ->
  ?exact_threshold:int ->
  Flat_tree.t ->
  bounds
(** [run t] computes certified bounds. Defaults: [seg_cap = 8]
    (quadrupled each refinement round), [tol = 0.01], [max_rounds = 3],
    [exact_threshold = 20_000].
    @raise Invalid_argument if [seg_cap < 2], [tol < 0.] or
    [max_rounds < 0]. *)

val run_tree :
  ?seg_cap:int ->
  ?tol:float ->
  ?max_rounds:int ->
  ?exact_threshold:int ->
  Tree.t ->
  bounds
(** {!run} after {!Flat_tree.of_tree} — convenience for engine jobs that
    hold a {!Tree.t}. *)
