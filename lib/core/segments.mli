(** Hill–valley segment calculus — the substrate of Liu's exact
    MinMemory algorithm (Liu 1987, "An application of generalized tree
    pebbling to sparse matrix factorization"; §IV-B of the paper).

    The memory profile of a (bottom-up, in-tree) traversal of a subtree
    starts at 0, ends at the subtree's output size, and oscillates in
    between. Splitting it at its {e suffix minima} yields {e segments}
    [(hill, valley)]: the profile climbs to [hill], then descends to
    [valley]. A profile is kept {e canonical}, meaning two monotonicity
    properties hold simultaneously:

    - costs [hill - valley] strictly decrease: one never pauses before a
      segment at least as expensive as its predecessor (fusing on cost
      ties is required for the merge theorem, see the tie analysis in the
      tests);
    - valleys strictly increase (suffix-minima decomposition): pausing at
      a valley that a later segment descends below is never useful. This
      property makes the exchange argument behind {!merge} independent of
      the chains' current contributions: with increasing valleys the
      relative-cost comparison reduces to the absolute cost
      [hill - valley].

    Liu's combination theorem: an optimal traversal of a node is obtained
    by interleaving the canonical segments of its children's optimal
    profiles in non-increasing cost order (a k-way merge, which preserves
    each child's internal order because canonical costs decrease within a
    child), then appending the node's own execution. The peak of the whole
    tree is the maximum hill of the root's canonical profile. *)

type node_seq
(** Sequence of node indices with O(1) concatenation (a rope), so that
    traversal reconstruction stays O(p) per tree level even on chains. *)

val seq_empty : node_seq
(** The empty sequence. *)

val seq_single : int -> node_seq
(** One-element sequence. *)

val seq_cat : node_seq -> node_seq -> node_seq
(** O(1) concatenation. *)

val seq_to_list : node_seq -> int list
(** Flatten, left to right, in O(length). *)

type segment = {
  hill : int;  (** Maximum memory reached within the segment. *)
  valley : int;  (** Memory retained when the segment completes. *)
  seq : node_seq;  (** Nodes executed by the segment, in order. *)
}
(** One hill–valley segment; memory values are absolute within the
    subtree's own profile. Invariant: [hill >= valley]. *)

type t
(** A canonical profile: costs [hill - valley] strictly decreasing,
    valleys strictly increasing. Backed by an exact-length flat array
    that is never mutated after construction, so profiles are shared
    freely (in particular {!merge} on a single profile returns it
    unchanged). Compare with {!equal}, not [(=)]. *)

val cost : segment -> int
(** [hill - valley]. *)

val empty : t
(** The empty profile. *)

val length : t -> int
(** Number of segments. *)

val to_list : t -> segment list
(** The segments, first to last — for tests and debugging. *)

val equal : t -> t -> bool
(** Segment-wise equality (hills, valleys and flattened node
    sequences). *)

val canonicalize : segment list -> t
(** Fuse adjacent segments until costs strictly decrease. The input must
    be a profile read left to right (each segment starting where the
    previous one ended). *)

val singleton : hill:int -> valley:int -> node:int -> t
(** Profile of a single execution. *)

val merge : t list -> t
(** Interleave sibling profiles by non-increasing segment cost. The
    result is expressed absolutely w.r.t. the sum of the children's
    contributions (each idle child contributes its current valley) and is
    canonical. *)

val merge_array : t array -> t
(** {!merge} on an array of profiles — the natural call from a tree's
    children array, avoiding the intermediate list. A single profile is
    returned unchanged; two children take a specialized heap-free
    interleave. *)

val append_parent : t -> hill:int -> valley:int -> node:int -> t
(** [append_parent prof ~hill ~valley ~node] extends a merged children
    profile with the parent's execution (absolute values) and
    re-canonicalizes. *)

val peak : t -> int
(** Maximum hill: the minimum memory needed to run the profile; 0 for
    the empty profile. (Canonical profiles have decreasing costs, not
    necessarily decreasing hills.) *)

val truncate_lower : t -> cap:int -> t
(** Minorant truncation to at most [cap] segments: the [cap - 1]
    costliest segments (the canonical prefix) are kept verbatim and the
    cheap tail is replaced by one zero-cost segment sitting at the final
    valley. The result is canonical and {e dominates the original from
    below}: any schedule of the original profile maps to a schedule of
    the truncated one with pointwise smaller or equal claimed memory, so
    propagating truncated profiles through {!merge}/{!append_parent}
    yields a certified {e lower} bound on the exact optimal peak. The
    final valley (the subtree's output size) is preserved exactly.
    Profiles with at most [cap] segments are returned unchanged.
    @raise Invalid_argument if [cap < 2]. *)

val truncate_upper : t -> cap:int -> t
(** Majorant truncation to at most [cap] segments: the [cap - 1]
    costliest segments are kept verbatim and the cheap tail segments are
    fused into a single segment (hill = max tail hill, valley = final
    valley, node sequence = tail concatenation). Fusing only removes
    pause points, so any schedule built from truncated profiles is
    realizable by the original subtrees within the claimed memory:
    propagating through {!merge}/{!append_parent} yields a certified
    {e upper} bound together with a concrete traversal achieving it.
    Profiles with at most [cap] segments are returned unchanged.
    @raise Invalid_argument if [cap < 2]. *)

val final_valley : t -> int
(** Valley of the last segment; 0 for the empty profile. *)

val nodes : t -> int list
(** All nodes of the profile, in execution order. *)

val rev_nodes : t -> int list
(** [nodes] in reverse, without the extra [List.rev] — callers that want
    the out-tree (root-first) direction use this directly. *)

val iter_nodes : t -> (int -> unit) -> unit
(** Apply a function to every node in execution order, without building
    any list. *)

val check_canonical : t -> bool
(** Whether costs strictly decrease and hills dominate valleys — the
    representation invariant, exposed for property tests. *)

val of_step_profile : usage:int array -> after:int array -> order:int array -> t
(** Build the canonical profile of an arbitrary traversal from its
    per-step usage ([usage.(k)] while executing [order.(k)]) and retained
    memory after each step ([after.(k)]). Used by tests to compare
    algorithmic profiles with simulated ones. *)
