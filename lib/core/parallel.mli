(** Memory-constrained parallel tree traversal — the direction the
    paper's conclusion sketches ("multicore platforms … call for
    memory-aware computational kernels at every level"), built on the
    same Equation (1) model.

    Tasks now carry a duration; [procs] workers execute ready tasks
    concurrently under a shared memory budget. While task [i] runs it
    holds its whole working set [MemReq i]; a produced-but-unstarted file
    holds [f i], exactly as in the sequential model — a parallel schedule
    with one processor and the sequential peak of memory degenerates to a
    traversal.

    {!list_schedule} is a greedy event-driven list scheduler: at every
    completion time it starts ready tasks in priority order (longest
    critical path first by default) as long as a processor and the memory
    both allow. The result is validated step by step; the bench's
    [parallel] section sweeps processors × memory over the corpus and
    shows the memory-bound speedup saturation.

    {!booking_schedule} is the deadlock-free variant from the
    successor papers (Marchal–Sinnen–Vivien 2012): tasks start strictly
    in the order of a memory-feasible sequential traversal, each booking
    its whole working set against the budget. The [tt_sched] library
    builds the splitting scheduler and the memory/makespan Pareto sweep
    on top of these two primitives. *)

type event = {
  node : int;  (** The task. *)
  proc : int;  (** Worker index in [0, procs). *)
  start : int;  (** Start time. *)
  finish : int;  (** Completion time ([start + work node]). *)
}

type schedule = {
  events : event array;  (** One event per task, in start order. *)
  makespan : int;  (** Completion time of the last task. *)
  peak_memory : int;  (** Maximum memory in use at any instant. *)
}

val list_schedule :
  ?priority:(int -> int) ->
  Tree.t ->
  procs:int ->
  memory:int ->
  work:(int -> int) ->
  schedule option
(** Greedy schedule of the out-tree with [procs] workers within [memory]
    words. [work i >= 1] is task [i]'s duration; [priority] defaults to
    the critical-path (bottom) level (higher runs first).

    {b Guarantee.} When the greedy start rule deadlocks — a greedy
    prefix strands too many open files, just as greedy sequential
    traversals can (the MinMemory phenomenon) — the scheduler falls back
    to {!booking_schedule} along a MinMem-optimal activation order, so
    [None] is only possible when [memory < Minmem.min_memory tree]: for
    any budget at least the sequential optimum a schedule is always
    returned.
    @raise Invalid_argument if [procs < 1] or some [work i < 1]. *)

val booking_schedule :
  ?order:int array ->
  Tree.t ->
  procs:int ->
  memory:int ->
  work:(int -> int) ->
  schedule option
(** Memory-booking list scheduler. Tasks {e start} strictly in the
    activation order [order] (a valid traversal; defaults to the
    MinMem-optimal order of {!Minmem.run}): position [k] starts as soon
    as its parent has finished, a processor is free, and its whole
    working set fits the budget — the booking discipline. Concurrency
    comes from positions [k, k+1, …] starting at the same instant.

    {b Deadlock-freedom.} Whenever the loop quiesces, the started tasks
    form a finished prefix of [order], so memory in use equals the
    sequential traversal's alive-file state and the next activation
    needs exactly the sequential step's footprint — at most
    [Traversal.peak t order]. Hence the result is [Some] for every
    [memory >= Traversal.peak t order] (with the default order, every
    [memory >= Minmem.min_memory t]); one processor and that budget
    degenerate to the sequential traversal itself.
    @raise Invalid_argument if [procs < 1], some [work i < 1], or
    [order] is not a valid traversal of the tree. *)

val critical_path : Tree.t -> work:(int -> int) -> int
(** Length of the heaviest root-to-leaf chain — a makespan lower bound
    with unlimited processors and memory. *)

val sequential_makespan : Tree.t -> work:(int -> int) -> int
(** Sum of all durations — the single-processor makespan. *)

val validate : Tree.t -> memory:int -> work:(int -> int) -> schedule -> bool
(** Independent re-check of a schedule: precedence (a task starts after
    its parent finishes), processor exclusivity, and the memory bound at
    every time instant. Used by the tests. *)
