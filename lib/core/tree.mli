(** Tree-shaped workflows with file weights — the application model of
    Section III of the paper.

    A tree has [p] nodes numbered [0 .. p-1]. Following the paper we store
    it as an {e out-tree}: the root is executed first and every other node
    becomes ready when its parent has been executed. Node [i] carries

    - [f i] — the size of its {e input file}, produced by its parent
      (for the root: input from the outside world, possibly [0]);
    - [n i] — the size of its {e execution file}, the extra memory held
      only while [i] runs. [n i] may be negative: the model reductions of
      §III-C (pebble game with replacement, Liu's two-node model) encode
      their memory behaviour with negative execution files.

    The memory needed to execute [i] is
    [MemReq i = f i + n i + sum of f j over children j] (Equation (1)).

    The same data structure serves for {e in-trees} (multifrontal assembly
    trees, processed leaves-to-root): §III-C shows that reversing a valid
    in-tree traversal yields a valid out-tree traversal of the same tree
    and vice versa, with identical peak memory — see
    {!Transform.reverse_traversal}. *)

type t = private {
  parent : int array;  (** [parent.(i)] is [i]'s parent, [-1] for the root. *)
  children : int array array;  (** Children lists, consistent with [parent]. *)
  f : int array;  (** Input-file sizes [f_i >= 0]. *)
  n : int array;  (** Execution-file sizes [n_i], possibly negative. *)
  root : int;  (** The unique node with [parent = -1]. *)
}
(** A weighted rooted tree. Values are created only through {!make} (or
    {!of_parents}), which validates the structure, so a [t] is always a
    well-formed tree. *)

val make : parent:int array -> f:int array -> n:int array -> t
(** [make ~parent ~f ~n] builds and validates a tree.
    @raise Invalid_argument if the arrays disagree in length, if there is
    not exactly one root, if the parent pointers contain a cycle or go out
    of range, or if some [f.(i) < 0]. *)

val of_parents : int array -> t
(** Structure-only tree: all [f] and [n] set to [0]. *)

val size : t -> int
(** Number of nodes [p]. *)

val mem_req : t -> int -> int
(** [mem_req t i] is Equation (1):
    [f i + n i + sum of f j over children j]. *)

val max_mem_req : t -> int
(** [max_i mem_req t i] — the trivial lower bound on the memory needed by
    any traversal. *)

val sum_children_f : t -> int -> int
(** Total size of the output files of node [i]. *)

val total_f : t -> int
(** Sum of all input-file sizes (an upper bound on any reasonable peak
    when all [n] are 0). *)

val is_leaf : t -> int -> bool
(** Whether node [i] has no children. *)

val depth : t -> int array
(** [depth t] gives each node's distance from the root (root = 0). *)

val bottom_up_order : t -> int array
(** All nodes ordered by decreasing depth (ascending index within one
    level), so children are always processed before their parent without
    recursion. Counting sort, O(p). *)

val height : t -> int
(** Longest root-to-leaf path length (in edges); 0 for a single node. *)

val subtree_sizes : t -> int array
(** [.(i)] is the number of nodes in the subtree rooted at [i]. *)

val map_weights : f:(int -> int) -> n:(int -> int) -> t -> t
(** New tree with the same shape, [f] and [n] rewritten pointwise from the
    node index. *)

val equal : t -> t -> bool
(** Structural equality of shape and weights. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, one node per line with indentation. *)

val to_dot : ?label:(int -> string) -> t -> string
(** Graphviz rendering. The default label shows the node id and its
    weights; edges are annotated with the input-file sizes. *)

val to_string : t -> string
(** Compact single-line textual form, parseable by {!of_string}. *)

val of_string : string -> t
(** Parse the {!to_string} format.
    @raise Invalid_argument on malformed input. *)

val random : rng:Tt_util.Rng.t -> size:int -> max_f:int -> max_n:int -> t
(** Uniformly attach each node [i >= 1] to a random earlier node; weights
    [f] drawn from [1..max_f], [n] from [0..max_n]. The root gets [f] in
    [0..max_f]. Used pervasively by property tests. *)

val random_shape :
  rng:Tt_util.Rng.t -> size:int -> max_degree:int -> t
(** Random tree with bounded arity and zero weights, for shape-sensitive
    tests. *)
