type t = {
  parent : int array;
  child_off : int array;
  child : int array;
  f : int array;
  n : int array;
  root : int;
}

let size t = Array.length t.parent

(* CSR adjacency from the parent array: counting pass, prefix sum, fill
   pass in increasing node index — children end up sorted increasingly
   within each parent, exactly the order [Tree.children_of_parents]
   produces. *)
let csr_of_parents parent =
  let p = Array.length parent in
  let child_off = Array.make (p + 1) 0 in
  for i = 0 to p - 1 do
    let par = parent.(i) in
    if par >= 0 then child_off.(par + 1) <- child_off.(par + 1) + 1
  done;
  for i = 0 to p - 1 do
    child_off.(i + 1) <- child_off.(i + 1) + child_off.(i)
  done;
  let child = Array.make (max (p - 1) 0) 0 in
  let cursor = Array.sub child_off 0 p in
  for i = 0 to p - 1 do
    let par = parent.(i) in
    if par >= 0 then begin
      child.(cursor.(par)) <- i;
      cursor.(par) <- cursor.(par) + 1
    end
  done;
  (child_off, child)

let of_arrays ~parent ~f ~n =
  let p = Array.length parent in
  if p = 0 then invalid_arg "Flat_tree.of_arrays: empty tree";
  if Array.length f <> p || Array.length n <> p then
    invalid_arg "Flat_tree.of_arrays: array length mismatch";
  for i = 0 to p - 1 do
    if f.(i) < 0 then
      invalid_arg (Printf.sprintf "Flat_tree.of_arrays: f.(%d) < 0" i)
  done;
  let root = ref (-1) in
  for i = 0 to p - 1 do
    let par = parent.(i) in
    if par = -1 then begin
      if !root >= 0 then invalid_arg "Flat_tree.of_arrays: several roots";
      root := i
    end
    else if par < 0 || par >= p then
      invalid_arg "Flat_tree.of_arrays: parent out of range"
    else if par = i then invalid_arg "Flat_tree.of_arrays: self-loop"
  done;
  if !root < 0 then invalid_arg "Flat_tree.of_arrays: no root";
  (* acyclicity by iterative stamp climbing: byte states are 0 =
     unvisited, 1 = on current path, 2 = validated. Each node is climbed
     through at most twice, so the whole check is O(p) with no recursion
     and only one byte per node of scratch. *)
  let state = Bytes.make p '\000' in
  for i = 0 to p - 1 do
    if Bytes.get state i = '\000' then begin
      let j = ref i in
      let stop = ref false in
      while not !stop do
        match Bytes.get state !j with
        | '\000' ->
            Bytes.set state !j '\001';
            let par = parent.(!j) in
            if par < 0 then stop := true else j := par
        | '\001' ->
            invalid_arg "Flat_tree.of_arrays: cycle in parent pointers"
        | _ -> stop := true
      done;
      (* second climb retires the freshly marked path *)
      let j = ref i in
      while Bytes.get state !j = '\001' do
        Bytes.set state !j '\002';
        let par = parent.(!j) in
        if par >= 0 then j := par
      done
    end
  done;
  let child_off, child = csr_of_parents parent in
  { parent; child_off; child; f; n; root = !root }

let of_tree (t : Tree.t) =
  (* [Tree.t] is validated on construction and its arrays are never
     mutated afterwards, so the structure can be rebuilt without a second
     validation pass; only the CSR adjacency is materialized *)
  let child_off, child = csr_of_parents t.Tree.parent in
  {
    parent = t.Tree.parent;
    child_off;
    child;
    f = t.Tree.f;
    n = t.Tree.n;
    root = t.Tree.root;
  }

let to_tree t = Tree.make ~parent:t.parent ~f:t.f ~n:t.n
let degree t i = t.child_off.(i + 1) - t.child_off.(i)
let is_leaf t i = degree t i = 0

let sum_children_f t i =
  let acc = ref 0 in
  for k = t.child_off.(i) to t.child_off.(i + 1) - 1 do
    acc := !acc + t.f.(t.child.(k))
  done;
  !acc

let mem_req t i = t.f.(i) + t.n.(i) + sum_children_f t i

let max_mem_req t =
  let best = ref min_int in
  for i = 0 to size t - 1 do
    let r = mem_req t i in
    if r > !best then best := r
  done;
  !best

let total_f t = Array.fold_left ( + ) 0 t.f

let depth t =
  let p = size t in
  let d = Array.make p (-1) in
  (* BFS with a preallocated int ring — every node enters the queue
     exactly once, so a flat array of size p suffices *)
  let queue = Array.make p 0 in
  d.(t.root) <- 0;
  queue.(0) <- t.root;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let i = queue.(!head) in
    incr head;
    for k = t.child_off.(i) to t.child_off.(i + 1) - 1 do
      let j = t.child.(k) in
      d.(j) <- d.(i) + 1;
      queue.(!tail) <- j;
      incr tail
    done
  done;
  d

let height t = Array.fold_left max 0 (depth t)

let bottom_up_order t =
  let p = size t in
  let d = depth t in
  (* counting sort on depth, deepest bucket first — the exact code of
     [Tree.bottom_up_order], so the orders agree entry for entry *)
  let maxd = Array.fold_left max 0 d in
  let start = Array.make (maxd + 1) 0 in
  Array.iter (fun dv -> start.(dv) <- start.(dv) + 1) d;
  let acc = ref 0 in
  for dv = maxd downto 0 do
    let c = start.(dv) in
    start.(dv) <- !acc;
    acc := !acc + c
  done;
  let order = Array.make p 0 in
  for i = 0 to p - 1 do
    let dv = d.(i) in
    order.(start.(dv)) <- i;
    start.(dv) <- start.(dv) + 1
  done;
  order

(* ------------------------------------------------------------------ *)
(* Best postorder — transcription of [Postorder_opt] over CSR arrays.
   The child slice is extracted with [Array.sub] and sorted with the
   same comparator, so sorted orders (ties included) are identical. *)

let sorted_children t peaks i =
  let off = t.child_off.(i) in
  let cs = Array.sub t.child off (t.child_off.(i + 1) - off) in
  Array.sort
    (fun a b -> Int.compare (peaks.(a) - t.f.(a)) (peaks.(b) - t.f.(b)))
    cs;
  cs

let subtree_peaks_sorted t =
  let p = size t in
  let peaks = Array.make p 0 in
  let sorted = Array.make p [||] in
  Array.iter
    (fun i ->
      let cs = sorted_children t peaks i in
      sorted.(i) <- cs;
      let best = ref (mem_req t i) in
      let pending = ref (Array.fold_left (fun acc c -> acc + t.f.(c)) 0 cs) in
      Array.iter
        (fun c ->
          pending := !pending - t.f.(c);
          let v = peaks.(c) + !pending in
          if v > !best then best := v)
        cs;
      peaks.(i) <- !best)
    (bottom_up_order t);
  (peaks, sorted)

let postorder_run t =
  let p = size t in
  let peaks, sorted = subtree_peaks_sorted t in
  let order = Array.make p (-1) in
  let k = ref 0 in
  let stack = ref [ t.root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
        stack := rest;
        order.(!k) <- i;
        incr k;
        let cs = sorted.(i) in
        for j = Array.length cs - 1 downto 0 do
          stack := cs.(j) :: !stack
        done
  done;
  (peaks.(t.root), order)

let postorder_best_memory t = fst (postorder_run t)

(* ------------------------------------------------------------------ *)
(* Liu — transcription of [Liu_exact] over CSR arrays. Children profiles
   are gathered in increasing node index, the order [Tree.t] children
   arrays are stored in, so every [Segments] call sees identical input. *)

let liu_compute ~release t =
  let p = size t in
  let prof : Segments.t array = Array.make p Segments.empty in
  Array.iter
    (fun i ->
      let off = t.child_off.(i) in
      let deg = t.child_off.(i + 1) - off in
      let merged =
        Segments.merge_array (Array.init deg (fun k -> prof.(t.child.(off + k))))
      in
      prof.(i) <-
        Segments.append_parent merged ~hill:(mem_req t i) ~valley:t.f.(i)
          ~node:i;
      if release then
        for k = off to off + deg - 1 do
          prof.(t.child.(k)) <- Segments.empty
        done)
    (bottom_up_order t);
  prof

let liu_run t =
  let p = size t in
  let prof = liu_compute ~release:true t in
  let root_profile = prof.(t.root) in
  let order = Array.make p 0 in
  let k = ref p in
  Segments.iter_nodes root_profile (fun i ->
      decr k;
      order.(!k) <- i);
  (Segments.peak root_profile, order)

let liu_min_memory t = fst (liu_run t)

(* ------------------------------------------------------------------ *)

let peak t order =
  let p = size t in
  if Array.length order <> p then invalid_arg "Flat_tree.peak: wrong length";
  let ready = Bytes.make p '\000' in
  let executed = Bytes.make p '\000' in
  Bytes.set ready t.root '\001';
  let ready_f = ref t.f.(t.root) in
  let pk = ref min_int in
  for k = 0 to p - 1 do
    let i = order.(k) in
    if i < 0 || i >= p then invalid_arg "Flat_tree.peak: node out of range";
    if Bytes.get executed i = '\001' then
      invalid_arg "Flat_tree.peak: duplicate node";
    if Bytes.get ready i <> '\001' then
      invalid_arg "Flat_tree.peak: parent not yet executed";
    let out = sum_children_f t i in
    let usage = !ready_f + t.n.(i) + out in
    if usage > !pk then pk := usage;
    Bytes.set executed i '\001';
    Bytes.set ready i '\000';
    ready_f := !ready_f - t.f.(i) + out;
    for c = t.child_off.(i) to t.child_off.(i + 1) - 1 do
      Bytes.set ready t.child.(c) '\001'
    done
  done;
  !pk

(* ------------------------------------------------------------------ *)
(* Chunked digests: ints are folded through MD5 in 64 KiB slices, chained
   by hashing the previous digest with the next slice, so memory stays
   O(1) regardless of p. *)

let chunk_bytes = 65536

let digest_chunked feed =
  let buf = Buffer.create chunk_bytes in
  let acc = ref (Digest.string "tt-flat/1") in
  let flush () =
    if Buffer.length buf > 0 then begin
      acc := Digest.string (!acc ^ Buffer.contents buf);
      Buffer.clear buf
    end
  in
  let add x =
    Buffer.add_int64_le buf (Int64.of_int x);
    if Buffer.length buf >= chunk_bytes then flush ()
  in
  feed add;
  flush ();
  Digest.to_hex !acc

let digest_ints a =
  digest_chunked (fun add ->
      add (Array.length a);
      Array.iter add a)

let digest t =
  digest_chunked (fun add ->
      add (size t);
      add t.root;
      Array.iter add t.parent;
      Array.iter add t.f;
      Array.iter add t.n)
