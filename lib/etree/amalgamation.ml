type group = { members : int list; eta : int; mu : int; parent : int }
type t = { groups : group array; group_of : int array }

let run ~parent ~col_counts ~limit =
  let n = Array.length parent in
  if Array.length col_counts <> n then invalid_arg "Amalgamation.run: length mismatch";
  if limit < 1 then invalid_arg "Amalgamation.run: limit < 1";
  (* every vertex starts as the head of its own group; merging a child
     group into its parent group records [merged.(child_head) = parent_head] *)
  let merged = Array.make n (-1) in
  let eta = Array.make n 1 in
  let child_groups = Array.make n [] in
  for v = n - 1 downto 0 do
    if parent.(v) >= 0 then child_groups.(parent.(v)) <- v :: child_groups.(parent.(v))
  done;
  (* etree parents have larger indices, so increasing order is bottom-up *)
  for j = 0 to n - 1 do
    let merge c =
      merged.(c) <- j;
      eta.(j) <- eta.(j) + eta.(c);
      child_groups.(j) <-
        List.filter (fun x -> x <> c) child_groups.(j) @ child_groups.(c);
      child_groups.(c) <- []
    in
    (* perfect amalgamation: an only child whose column has exactly one
       more entry than its original parent's column, i.e. the two columns
       have the same structure below the parent's diagonal. The
       comparison is against the child's etree parent (a vertex possibly
       already inside the group), not the group head, so genuine
       supernode chains merge and plain chains (where every column has
       the same count) do not cascade. *)
    let rec perfect () =
      match child_groups.(j) with
      | [ c ] when col_counts.(c) = col_counts.(parent.(c)) + 1 ->
          merge c;
          perfect ()
      | _ -> ()
    in
    perfect ();
    (* relaxed amalgamation with the densest child, as long as the merged
       group would not exceed the allowed number of nodes *)
    let rec relaxed () =
      match child_groups.(j) with
      | [] -> ()
      | c0 :: rest ->
          let densest =
            List.fold_left
              (fun best c -> if col_counts.(c) > col_counts.(best) then c else best)
              c0 rest
          in
          if eta.(j) + eta.(densest) <= limit then begin
            merge densest;
            relaxed ()
          end
    in
    relaxed ()
  done;
  (* resolve final heads with path compression; iterative (find root,
     then rewrite the path) — a fully merged chain makes the path O(n)
     long, far beyond the stack at huge p *)
  let head v =
    let r = ref v in
    while merged.(!r) <> -1 do
      r := merged.(!r)
    done;
    let h = !r in
    let v = ref v in
    while merged.(!v) <> -1 do
      let next = merged.(!v) in
      merged.(!v) <- h;
      v := next
    done;
    h
  in
  let group_index = Array.make n (-1) in
  let heads = ref [] in
  let count = ref 0 in
  for v = 0 to n - 1 do
    let h = head v in
    if group_index.(h) = -1 then begin
      group_index.(h) <- !count;
      heads := h :: !heads;
      incr count
    end
  done;
  let heads = Array.of_list (List.rev !heads) in
  let members = Array.make !count [] in
  for v = n - 1 downto 0 do
    let g = group_index.(head v) in
    members.(g) <- v :: members.(g)
  done;
  let groups =
    Array.mapi
      (fun g h ->
        let mems = List.rev members.(g) in
        (* highest (head) first *)
        let parent_group = if parent.(h) = -1 then -1 else group_index.(head parent.(h)) in
        { members = mems; eta = eta.(h); mu = col_counts.(h); parent = parent_group })
      heads
  in
  let group_of = Array.init n (fun v -> group_index.(head v)) in
  { groups; group_of }

let node_weight g = (g.eta * g.eta) + (2 * g.eta * (g.mu - 1))
let edge_weight g = (g.mu - 1) * (g.mu - 1)
