open Tt_core

type mode = Quick | Full

let default_reps = function Quick -> 3 | Full -> 5

(* --- result payloads ----------------------------------------------------
   Each kernel run is reduced to a canonical string capturing its full
   result (not just the scalar), so the benchmark digests double as
   parity witnesses between PRs: any behavioural change to a kernel
   flips the digest even when it does not change the optimum. *)

let buf_ints buf a =
  Array.iter (fun v -> Buffer.add_string buf (string_of_int v); Buffer.add_char buf ';') a

let payload_mem_order (mem, order) =
  let buf = Buffer.create (8 * Array.length order) in
  Buffer.add_string buf (Printf.sprintf "mem=%d\norder=" mem);
  buf_ints buf order;
  Buffer.contents buf

let payload_schedule tree = function
  | None -> "infeasible"
  | Some (s : Io_schedule.t) ->
      let buf = Buffer.create (8 * Array.length s.Io_schedule.tau) in
      Buffer.add_string buf
        (Printf.sprintf "io=%d\ntau=" (Io_schedule.io_volume tree s));
      buf_ints buf s.Io_schedule.tau;
      Buffer.contents buf

let payload_lb = function
  | None -> "infeasible"
  | Some v -> Printf.sprintf "lb=%.9f" v

let payload_parallel = function
  | None -> "infeasible"
  | Some (s : Parallel.schedule) ->
      let buf = Buffer.create (16 * Array.length s.Parallel.events) in
      Buffer.add_string buf
        (Printf.sprintf "makespan=%d\npeak=%d\nevents=" s.Parallel.makespan
           s.Parallel.peak_memory);
      Array.iter
        (fun (e : Parallel.event) ->
          Buffer.add_string buf
            (Printf.sprintf "%d@%d:%d-%d;" e.Parallel.node e.Parallel.proc
               e.Parallel.start e.Parallel.finish))
        s.Parallel.events;
      Buffer.contents buf

(* --- instances ----------------------------------------------------------
   All deterministic: fixed seeds, weights derived from node indices.
   Uniform weights collapse Liu profiles to a couple of segments, which
   hides the profile-calculus cost entirely, so the chain and binary
   families re-weight nodes with a cheap index hash. *)

let hash_weight i m = 1 + (i * 2654435761) land max_int mod m

let reweight ~max_f t =
  Tree.map_weights ~f:(fun i -> hash_weight i max_f) ~n:(fun i -> hash_weight (i + 1) 7 - 1) t

let chain_stair p = reweight ~max_f:4093 (Instances.chain ~length:p ~f:1 ~n:0)

let binary_rand levels =
  reweight ~max_f:4093 (Instances.complete_binary ~levels ~f:1 ~n:0)

let star_flat branches = Instances.star ~branches ~f_root:3 ~f_leaf:7 ~n:5

let harpoon_deep ~branches ~levels =
  Instances.harpoon_nested ~branches ~levels ~m:(1024 * branches) ~eps:3

(* uniform leaf files make every eviction policy pick the same victims;
   re-weighting splits the six policies into distinct schedules *)
let caterpillar ~length ~leaves =
  reweight ~max_f:251 (Instances.caterpillar ~length ~leaves_per_node:leaves ~f:7 ~n:3)

let random_tree ~seed ~size =
  Tree.random ~rng:(Tt_util.Rng.create seed) ~size ~max_f:1000 ~max_n:50

(* MinIO needs a traversal whose peak exceeds the trivial floor, plus a
   memory level strictly between the two so that deficit events actually
   fire. Seeded random traversals leave many files pending (BFS turns
   out to execute leaves promptly on these families, closing the gap),
   so that is what the suite uses. *)
let minio_setup ?(order_seed = 0) tree =
  let order =
    if order_seed = 0 then Traversal.top_down_order tree
    else Traversal.random_order ~rng:(Tt_util.Rng.create order_seed) tree
  in
  let floor = Tree.max_mem_req tree in
  let peak = Traversal.peak tree order in
  let memory = floor + ((peak - floor + 3) / 4) in
  (order, memory)

let policy_slug name =
  String.map (function ' ' -> '-' | c -> Char.lowercase_ascii c) name

type sized = { name : string; tree : Tree.t Lazy.t }

let sized name builder = { name; tree = Lazy.from_fun builder }

let corpus_instances mode =
  let seed = 42 in
  let all = Dataset.small_corpus ~seed in
  let by_size =
    List.sort
      (fun (a : Dataset.instance) b -> compare (Tree.size b.tree) (Tree.size a.tree))
      all
  in
  let take = match mode with Quick -> 1 | Full -> 2 in
  List.filteri (fun i _ -> i < take) by_size
  |> List.map (fun (inst : Dataset.instance) ->
         { name = "corpus/" ^ inst.name; tree = Lazy.from_val inst.tree })

let specs mode =
  let quick = mode = Quick in
  let chain = sized "chain-stair" (fun () -> chain_stair (if quick then 2_000 else 40_000)) in
  let binary = sized "binary-rand" (fun () -> binary_rand (if quick then 10 else 17)) in
  let star = sized "star" (fun () -> star_flat (if quick then 5_000 else 200_000)) in
  let star_mm = sized "star-mm" (fun () -> star_flat (if quick then 2_000 else 30_000)) in
  (* harpoon_nested is exponential in [levels]: b=2, L=14 is ~1e5 nodes *)
  let harpoon =
    sized "harpoon-deep" (fun () ->
        if quick then harpoon_deep ~branches:2 ~levels:6
        else harpoon_deep ~branches:2 ~levels:14)
  in
  let cat =
    sized "caterpillar" (fun () ->
        if quick then caterpillar ~length:600 ~leaves:4
        else caterpillar ~length:10_000 ~leaves:4)
  in
  let rand =
    sized "random" (fun () -> random_tree ~seed:7 ~size:(if quick then 3_000 else 60_000))
  in
  (* the schedulers re-run MinMem per call, so the sched family gets its
     own (smaller) instances rather than the 60k-node ones above *)
  let sched_rand =
    sized "sched-random" (fun () ->
        random_tree ~seed:19 ~size:(if quick then 1_500 else 15_000))
  in
  let sched_cat =
    sized "sched-caterpillar" (fun () ->
        if quick then caterpillar ~length:200 ~leaves:3
        else caterpillar ~length:2_000 ~leaves:3)
  in
  let corpus = corpus_instances mode in
  let spec kernel inst run : Tt_profile.Microbench.spec =
    {
      Tt_profile.Microbench.kernel;
      instance = inst.name;
      p = Tree.size (Lazy.force inst.tree);
      run;
    }
  in
  let on inst kernel f = spec kernel inst (fun () -> f (Lazy.force inst.tree)) in
  let postorder inst = on inst "postorder" (fun t -> payload_mem_order (Postorder_opt.run t)) in
  let liu inst = on inst "liu" (fun t -> payload_mem_order (Liu_exact.run t)) in
  let minmem inst = on inst "minmem" (fun t -> payload_mem_order (Minmem.run t)) in
  let minio_family ?order_seed inst =
    (* order/memory setup is deterministic per instance; share it across
       the six policies so their timings are comparable *)
    let setup =
      Lazy.from_fun (fun () -> minio_setup ?order_seed (Lazy.force inst.tree))
    in
    List.map
      (fun (name, policy) ->
        spec
          ("minio/" ^ policy_slug name)
          inst
          (fun () ->
            let tree = Lazy.force inst.tree in
            let order, memory = Lazy.force setup in
            payload_schedule tree (Minio.run tree ~memory ~order policy)))
      Minio.all_policies
    @ [
        spec "divisible-lb" inst (fun () ->
            let tree = Lazy.force inst.tree in
            let order, memory = Lazy.force setup in
            payload_lb (Minio.divisible_lower_bound tree ~memory ~order));
      ]
  in
  let sched_family inst =
    (* one MinMem run shared by the kernels that schedule along it, so
       the timings isolate the schedulers from the order computation *)
    let procs = 4 in
    let setup =
      Lazy.from_fun (fun () ->
          let t = Lazy.force inst.tree in
          let mem, order = Minmem.run t in
          (t, Tt_sched.Work.default t, mem, order))
    in
    [
      spec "sched/greedy" inst (fun () ->
          let t, work, mem, _ = Lazy.force setup in
          payload_parallel (Parallel.list_schedule t ~procs ~memory:(mem * 3 / 2) ~work));
      spec "sched/booking" inst (fun () ->
          let t, work, mem, order = Lazy.force setup in
          payload_parallel (Parallel.booking_schedule ~order t ~procs ~memory:mem ~work));
      spec "sched/split" inst (fun () ->
          let t, work, _, _ = Lazy.force setup in
          payload_parallel (Some (Tt_sched.Split.run t ~procs ~work)));
      spec "sched/pareto" inst (fun () ->
          let t, work, _, _ = Lazy.force setup in
          Tt_sched.Pareto.(render (sweep ~steps:4 t ~procs ~work)));
    ]
  in
  List.concat
    [
      List.map postorder [ chain; binary; star; harpoon; cat; rand ];
      List.map liu ([ chain; binary; star; harpoon ] @ corpus);
      List.map minmem ([ star_mm; harpoon ] @ corpus);
      minio_family ~order_seed:13 cat;
      minio_family ~order_seed:11 rand;
      sched_family sched_cat;
      sched_family sched_rand;
    ]
