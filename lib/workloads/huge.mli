(** Streaming seeded generators for huge instances (p up to 10⁷ and
    beyond) — the feed of the [huge/*] benchmark family.

    Unlike {!Tt_core.Instances} (which builds a {!Tt_core.Tree.t} with a
    child array per node), these generators write straight into the flat
    parent/weight arrays of {!Tt_core.Flat_tree} — no intermediate lists,
    no per-node allocation, O(p) time and exactly the final arrays'
    memory.

    {b Determinism.} Generation is chunked: the nodes are split into
    fixed 64k-index chunks and each chunk draws from its own
    {!Tt_util.Rng} seeded by [(seed, chunk index)]. Tree {e shape} is a
    pure function of the node index. Consequently the generated tree —
    and hence {!Tt_core.Flat_tree.digest} — depends only on [(family, p,
    seed)]: the same instance is produced run after run and whether the
    chunks are filled by 1 or N domains ([?domains]), which is asserted
    by the determinism tests. *)

val caterpillar : ?domains:int -> p:int -> seed:int -> unit -> Tt_core.Flat_tree.t
(** Deep caterpillar: a spine every third index (so depth ≈ p/3 — at
    p = 10M the tree is ~3.3M levels deep, the stack-safety stress
    shape), each spine node carrying two leaves. Weights [f ∈ 1..64],
    [n ∈ 0..8] drawn per chunk. *)

val binary : ?domains:int -> p:int -> seed:int -> unit -> Tt_core.Flat_tree.t
(** Complete binary shape [parent.(i) = (i-1)/2] (depth ≈ log₂ p) with
    the same chunk-seeded weights — the wide/shallow counterpart. *)

val random_attach : ?domains:int -> p:int -> seed:int -> unit -> Tt_core.Flat_tree.t
(** Uniform random attachment: node [i]'s parent is drawn uniformly from
    [0..i-1] using the chunk generator, giving log-depth trees with
    heavy-tailed degrees. Same chunk-seeded weights. *)
