module Ft = Tt_core.Flat_tree
module Rng = Tt_util.Rng

(* Fixed chunk granularity: determinism across domain counts depends on
   chunk boundaries being a function of p alone, never of [domains]. *)
let chunk_size = 65536

(* Each chunk owns an independent SplitMix stream; the seed combination
   is injective for any realistic chunk count and goes through the
   SplitMix mixer inside [Rng.create], so neighbouring chunks are
   decorrelated. *)
let chunk_rng ~seed c = Rng.create ((seed * 1_000_003) + c)

(* Fill [lo..hi] index ranges of the shared arrays, chunk by chunk.
   Chunks write disjoint index ranges, so domains never race. *)
let fill_chunks ~domains ~p ~seed body =
  let nchunks = (p + chunk_size - 1) / chunk_size in
  let do_chunk c =
    let rng = chunk_rng ~seed c in
    let lo = c * chunk_size in
    let hi = min (p - 1) (lo + chunk_size - 1) in
    body rng lo hi
  in
  if domains <= 1 then
    for c = 0 to nchunks - 1 do
      do_chunk c
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let c = Atomic.fetch_and_add next 1 in
        if c < nchunks then do_chunk c else continue_ := false
      done
    in
    let others = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join others
  end

let max_f = 64
let max_n = 8

(* shape is a pure function of the index; weights come from the chunk
   stream, drawn in a fixed per-node order (parent, f, n) *)
let generate ?(domains = 1) ~p ~seed ~parent_of () =
  if p <= 0 then invalid_arg "Huge.generate: p must be positive";
  let parent = Array.make p 0 in
  let f = Array.make p 0 in
  let n = Array.make p 0 in
  fill_chunks ~domains ~p ~seed (fun rng lo hi ->
      for i = lo to hi do
        parent.(i) <- parent_of rng i;
        f.(i) <- Rng.int_incl rng 1 max_f;
        n.(i) <- Rng.int_incl rng 0 max_n
      done;
      if lo = 0 then f.(0) <- f.(0) - 1 (* allow a zero root input *));
  Ft.of_arrays ~parent ~f ~n

let caterpillar ?domains ~p ~seed () =
  generate ?domains ~p ~seed () ~parent_of:(fun _rng i ->
      if i = 0 then -1
      else if i mod 3 = 0 then i - 3 (* spine -> previous spine node *)
      else i - (i mod 3) (* leaf -> its spine node *))

let binary ?domains ~p ~seed () =
  generate ?domains ~p ~seed () ~parent_of:(fun _rng i ->
      if i = 0 then -1 else (i - 1) / 2)

let random_attach ?domains ~p ~seed () =
  generate ?domains ~p ~seed () ~parent_of:(fun rng i ->
      if i = 0 then -1 else Rng.int rng i)
