(** The core-solver benchmark suite behind [bench --perf] and
    [treetrav perf].

    Seeded, fully deterministic instance families (stair-weighted chains,
    re-weighted complete binary trees, flat stars, nested harpoons,
    caterpillars, random trees, and the largest assembly trees of
    {!Dataset.small_corpus}) crossed with the kernels they stress:

    - [postorder] — {!Tt_core.Postorder_opt.run};
    - [liu] — {!Tt_core.Liu_exact.run} on deep / star / corpus shapes;
    - [minmem] — {!Tt_core.Minmem.run} (Explore rounds);
    - [minio/<policy>] — {!Tt_core.Minio.run} for each of the paper's six
      eviction heuristics, on a seeded-random traversal with memory a
      quarter of the way between the feasibility floor and the traversal
      peak, so deficit events fire throughout;
    - [divisible-lb] — {!Tt_core.Minio.divisible_lower_bound};
    - [sched/<algo>] — the parallel scheduling tier on dedicated
      caterpillar/random instances at 4 processors: [greedy]
      ({!Tt_core.Parallel.list_schedule} at 1.5× the sequential
      optimum), [booking] ({!Tt_core.Parallel.booking_schedule} at
      exactly the optimum, MinMem activation), [split]
      ({!Tt_sched.Split.run}, budget-free) and [pareto]
      ({!Tt_sched.Pareto.sweep}, 4 budget steps).

    Every spec's payload encodes the kernel's {e full} result (traversal,
    tau vector, I/O volume…), so the digests in [BENCH_CORE.json] are
    parity witnesses across optimization PRs, not just timings. *)

type mode =
  | Quick  (** Small sizes — CI smoke (seconds). *)
  | Full  (** Paper-scale sizes, p up to 2·10⁵. *)

val default_reps : mode -> int
(** Suggested repetition count (3 quick, 5 full). *)

val specs : mode -> Tt_profile.Microbench.spec list
(** The full benchmark matrix for the mode. Trees are built lazily and
    shared between the kernels that run on the same instance. *)
