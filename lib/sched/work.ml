let default t =
  let n = t.Tt_core.Tree.n in
  fun i -> 1 + (n.(i) / 8)

let uniform _t _i = 1
