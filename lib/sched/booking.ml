module T = Tt_core.Tree

type activation = Minmem | Top_down | Given of int array

let order_of t = function
  | Minmem -> snd (Tt_core.Minmem.run t)
  | Top_down -> Tt_core.Traversal.top_down_order t
  | Given o -> Array.copy o

let run ?(activation = Minmem) t ~procs ~memory ~work =
  let order = order_of t activation in
  match Tt_core.Parallel.booking_schedule ~order t ~procs ~memory ~work with
  | None -> None
  | Some s -> Some (order, s)

let min_guaranteed t = function
  | Minmem -> Tt_core.Minmem.min_memory t
  | (Top_down | Given _) as a -> Tt_core.Traversal.peak t (order_of t a)
