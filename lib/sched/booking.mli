(** Memory-booking list scheduling (Marchal–Sinnen–Vivien 2012) as a
    subsystem entry point.

    The event loop lives in {!Tt_core.Parallel.booking_schedule} (the
    core needs it for the [list_schedule] fallback); this module picks
    the activation order, runs it, and hands back the order so callers
    can feed it to {!Validate.check}'s booking-discipline check. *)

type activation =
  | Minmem  (** MinMem-optimal traversal — the strongest guarantee. *)
  | Top_down  (** Node order 0,1,…  (a valid top-down order). *)
  | Given of int array  (** Caller-supplied traversal. *)

val order_of : Tt_core.Tree.t -> activation -> int array
(** The concrete activation order ([Given] is copied). *)

val run :
  ?activation:activation ->
  Tt_core.Tree.t ->
  procs:int ->
  memory:int ->
  work:(int -> int) ->
  (int array * Tt_core.Parallel.schedule) option
(** Book-and-start along the activation order (default {!Minmem}).
    Returns the order used together with the schedule; [None] only when
    [memory < min_guaranteed t activation].
    @raise Invalid_argument as {!Tt_core.Parallel.booking_schedule}. *)

val min_guaranteed : Tt_core.Tree.t -> activation -> int
(** The smallest budget for which {!run} is guaranteed to succeed: the
    sequential peak of the activation order
    ({!Tt_core.Minmem.min_memory} for {!Minmem}). *)
