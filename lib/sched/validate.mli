(** Independent schedule validator — the scheduling tier's referee.

    Every schedule emitted by any [tt_sched] algorithm (and by the
    engine's serving path) is re-checked here against the raw
    Equation (1) model, with no state shared with the schedulers:
    well-formedness, precedence (a task starts only after its parent
    finishes — out-tree semantics), processor exclusivity, the booking
    discipline when an activation order is supplied, and the memory
    bound at {e every} instant at which a task runs, reconstructed from
    the events alone. Stronger than [Parallel.validate], and it names
    the violated rule instead of answering [false]. *)

type violation =
  | Malformed of string  (** Not a schedule at all (duplicate node, …). *)
  | Precedence of { node : int; parent : int }
      (** [node] starts before [parent] finishes. *)
  | Overlap of { proc : int; first : int; second : int }
      (** Two tasks overlap on one processor. *)
  | Booking of { position : int; node : int }
      (** Start times are not monotone along the activation order. *)
  | Memory of { time : int; usage : int; budget : int }
      (** The budget is exceeded while tasks run. *)
  | Accounting of string
      (** The carried [makespan]/[peak_memory] fields lie about the
          events. *)

val violation_to_string : violation -> string

val check :
  ?activation:int array ->
  Tt_core.Tree.t ->
  memory:int ->
  work:(int -> int) ->
  Tt_core.Parallel.schedule ->
  (unit, violation) result
(** Full validation of a schedule against tree, budget and duration
    model. With [activation], additionally checks the booking
    discipline: [activation] must be a valid traversal and start times
    must be non-decreasing along it. Returns the first violation found,
    most structural first. *)

val check_exn :
  ?activation:int array ->
  Tt_core.Tree.t ->
  memory:int ->
  work:(int -> int) ->
  Tt_core.Parallel.schedule ->
  unit
(** {!check}, raising [Invalid_argument] with the rendered violation —
    the serving path's guard: a scheduler bug becomes a crashed job,
    never a silently-wrong result. *)

val peak_usage : Tt_core.Tree.t -> Tt_core.Parallel.schedule -> int
(** Maximum memory in use over every instant at which at least one task
    runs, reconstructed from the events (files alive plus running
    extras). The honest peak the splitting scheduler reports. *)

val makespan : Tt_core.Tree.t -> Tt_core.Parallel.schedule -> int
(** Last finish time, reconstructed from the events. *)
