(** Memory/makespan Pareto sweep — the performance-profile methodology
    of the 2014 paper on the Equation (1) corpus.

    For one tree and processor count, sweep memory budgets from the
    sequential optimum {!Tt_core.Minmem.min_memory} (below which no
    algorithm is guaranteed anything) up to {!Tt_core.Tree.total_f}
    (ample for any traversal of an [n = 0] tree), run every scheduler at
    every budget, validate each schedule with {!Validate.check}, and
    report [(budget, makespan, peak)] points. The non-dominated subset
    is the instance's memory/makespan frontier. Everything is
    deterministic; {!digest} fingerprints a sweep for the smoke gates. *)

type point = {
  algo : string;  (** ["greedy"], ["booking"] or ["split"]. *)
  budget : int;  (** Memory budget the scheduler ran under. *)
  makespan : int;
  peak : int;  (** Measured peak — at most [budget]. *)
}

val budgets : Tt_core.Tree.t -> steps:int -> int array
(** [steps] budgets linearly spaced over
    [[min_memory t, max (min_memory t) (total_f t)]], duplicates
    removed (strictly increasing). @raise Invalid_argument if
    [steps < 1]. *)

val sweep :
  ?steps:int ->
  Tt_core.Tree.t ->
  procs:int ->
  work:(int -> int) ->
  point list
(** All points of a sweep (default 8 budget steps): greedy and booking
    at every budget — both always feasible here since budgets start at
    the sequential optimum — plus one budget-free [split] point at its
    own peak. Points appear in deterministic order (budget-major).
    @raise Invalid_argument if any schedule fails validation — a
    scheduler bug must not produce a plot. *)

val frontier : point list -> point list
(** The non-dominated points by [(peak, makespan)], sorted by
    increasing peak (hence strictly decreasing makespan). *)

val point_to_string : point -> string
val render : point list -> string
(** Canonical one-line-per-point rendering (digest input). *)

val digest : point list -> string
(** MD5 hex of {!render} — the seeded-sweep fingerprint checked by
    [make sched-smoke]. *)
