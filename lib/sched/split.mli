(** Postorder-based tree splitting (the SplitSubtrees scheduler of
    Eyraud-Dubois–Marchal–Sinnen–Vivien 2014, read on the out-tree).

    The tree is cut into a sequential {e tail} — the top part containing
    the root — and at most a few × [procs] frontier subtrees. Out-tree
    semantics run the tail first (top-down, one processor), then every
    subtree independently in parallel, each in its own MinMem-optimal
    sequential order, packed onto processors longest-processing-time
    first. The split point is chosen by iterating "move the heaviest
    frontier subtree's root into the tail" and keeping the iteration
    with the best makespan estimate
    [tail_work + max(heaviest subtree, average load)].

    Splitting ignores any memory budget: it trades memory for makespan
    (up to [procs] sequential peaks coexist). The schedule reports its
    honest peak ({!Validate.peak_usage}); callers compare that against
    their budget — the Pareto sweep plots exactly this trade-off. *)

type plan = {
  tail : int array;
      (** Sequential prefix in execution order (a valid top-down order
          of the split-off top part; empty when no split helps). *)
  subtrees : int array;  (** Frontier subtree roots, heaviest first. *)
  assignment : int array;
      (** [assignment.(k)] is the processor of [subtrees.(k)] (LPT). *)
  tail_work : int;  (** Total duration of the tail. *)
}

val plan : Tt_core.Tree.t -> procs:int -> work:(int -> int) -> plan
(** Deterministic split of the tree for [procs] processors.
    @raise Invalid_argument if [procs < 1] or some [work i < 1]. *)

val run :
  ?plan:plan ->
  Tt_core.Tree.t ->
  procs:int ->
  work:(int -> int) ->
  Tt_core.Parallel.schedule
(** Materialize the split as a schedule (computing {!plan} if not
    given). Always succeeds — with one processor it degenerates to a
    sequential traversal. [peak_memory] is the measured
    {!Validate.peak_usage} of the events. *)
