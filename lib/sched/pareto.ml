module T = Tt_core.Tree
module P = Tt_core.Parallel

type point = { algo : string; budget : int; makespan : int; peak : int }

let budgets t ~steps =
  if steps < 1 then invalid_arg "Pareto.budgets: steps < 1";
  let lo = Tt_core.Minmem.min_memory t in
  let hi = max lo (T.total_f t) in
  if steps = 1 || hi = lo then [| lo |]
  else begin
    let out = Array.make steps lo in
    for k = 0 to steps - 1 do
      out.(k) <- lo + ((hi - lo) * k / (steps - 1))
    done;
    (* the integer grid can repeat budgets on tiny ranges; keep firsts *)
    let seen = Hashtbl.create steps in
    Array.to_list out
    |> List.filter (fun b ->
           if Hashtbl.mem seen b then false
           else begin
             Hashtbl.add seen b ();
             true
           end)
    |> Array.of_list
  end

let fail_invalid algo v =
  invalid_arg
    (Printf.sprintf "Pareto.sweep: %s produced an invalid schedule: %s" algo
       (Validate.violation_to_string v))

let sweep ?(steps = 8) t ~procs ~work =
  let _, order = Tt_core.Minmem.run t in
  let points = ref [] in
  let push p = points := p :: !points in
  Array.iter
    (fun budget ->
      (match P.list_schedule t ~procs ~memory:budget ~work with
      | None -> ()
      | Some s -> (
          match Validate.check t ~memory:budget ~work s with
          | Ok () ->
              push
                { algo = "greedy"; budget; makespan = s.P.makespan;
                  peak = s.P.peak_memory }
          | Error v -> fail_invalid "greedy" v));
      match P.booking_schedule ~order t ~procs ~memory:budget ~work with
      | None -> ()
      | Some s -> (
          match Validate.check ~activation:order t ~memory:budget ~work s with
          | Ok () ->
              push
                { algo = "booking"; budget; makespan = s.P.makespan;
                  peak = s.P.peak_memory }
          | Error v -> fail_invalid "booking" v))
    (budgets t ~steps);
  (* splitting is budget-free: one point at its own peak *)
  let s = Split.run t ~procs ~work in
  (match Validate.check t ~memory:s.P.peak_memory ~work s with
  | Ok () ->
      push
        { algo = "split"; budget = s.P.peak_memory; makespan = s.P.makespan;
          peak = s.P.peak_memory }
  | Error v -> fail_invalid "split" v);
  List.rev !points

let frontier points =
  let sorted =
    List.sort
      (fun a b ->
        compare (a.peak, a.makespan, a.algo, a.budget)
          (b.peak, b.makespan, b.algo, b.budget))
      points
  in
  let rec keep best acc = function
    | [] -> List.rev acc
    | p :: rest ->
        if p.makespan < best then keep p.makespan (p :: acc) rest
        else keep best acc rest
  in
  keep max_int [] sorted

let point_to_string p =
  Printf.sprintf "%s budget=%d makespan=%d peak=%d" p.algo p.budget p.makespan
    p.peak

let render points = String.concat "\n" (List.map point_to_string points)
let digest points = Digest.to_hex (Digest.string (render points))
