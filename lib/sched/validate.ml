module T = Tt_core.Tree
module P = Tt_core.Parallel

type violation =
  | Malformed of string
  | Precedence of { node : int; parent : int }
  | Overlap of { proc : int; first : int; second : int }
  | Booking of { position : int; node : int }
  | Memory of { time : int; usage : int; budget : int }
  | Accounting of string

let violation_to_string = function
  | Malformed msg -> Printf.sprintf "malformed schedule: %s" msg
  | Precedence { node; parent } ->
      Printf.sprintf "precedence: node %d starts before parent %d finishes" node
        parent
  | Overlap { proc; first; second } ->
      Printf.sprintf "overlap: nodes %d and %d overlap on processor %d" first
        second proc
  | Booking { position; node } ->
      Printf.sprintf
        "booking: node %d (activation position %d) starts before its \
         predecessor"
        node position
  | Memory { time; usage; budget } ->
      Printf.sprintf "memory: %d words in use at time %d, budget %d" usage time
        budget
  | Accounting msg -> Printf.sprintf "accounting: %s" msg

exception Bad of violation

(* Replay the schedule as a sequence of usage deltas grouped by instant:
   the root's input file is alive from time 0, a start books the whole
   extra working set [n i + sum_children_f i], a finish releases the
   extras and the consumed input and leaves the children files alive (net
   delta [-n i - f i]). Returns [(makespan, peak)] where [peak] is the
   maximum usage over every instant at which at least one task runs —
   the honest "memory bound at every instant" measure, independent of
   any scheduler's own accounting. *)
let replay t (s : P.schedule) =
  let q = Array.length s.events in
  let deltas = Array.make (2 * q) (0, 0, 0) in
  Array.iteri
    (fun k (e : P.event) ->
      let extra = t.T.n.(e.node) + T.sum_children_f t e.node in
      deltas.(2 * k) <- (e.start, 1, extra);
      deltas.(2 * k + 1) <- (e.finish, -1, -t.T.n.(e.node) - t.T.f.(e.node)))
    s.events;
  Array.sort compare deltas;
  let usage = ref t.T.f.(t.T.root) in
  let running = ref 0 in
  let peak = ref 0 in
  let peak_time = ref 0 in
  let makespan = ref 0 in
  let k = ref 0 in
  while !k < 2 * q do
    let time, _, _ = deltas.(!k) in
    (* apply every delta at this instant, then observe *)
    while
      !k < 2 * q
      && (let ti, _, _ = deltas.(!k) in ti = time)
    do
      let _, dr, du = deltas.(!k) in
      running := !running + dr;
      usage := !usage + du;
      incr k
    done;
    if !running > 0 && !usage > !peak then begin
      peak := !usage;
      peak_time := time
    end;
    if time > !makespan then makespan := time
  done;
  (!makespan, !peak, !peak_time)

let peak_usage t s =
  let _, peak, _ = replay t s in
  peak

let makespan t s =
  let m, _, _ = replay t s in
  m

let check ?activation t ~memory ~work (s : P.schedule) =
  let p = T.size t in
  try
    if Array.length s.events <> p then
      raise (Bad (Malformed "event count differs from tree size"));
    let start_of = Array.make p (-1) in
    let finish_of = Array.make p (-1) in
    Array.iter
      (fun (e : P.event) ->
        if e.node < 0 || e.node >= p then
          raise (Bad (Malformed "node out of range"));
        if start_of.(e.node) >= 0 then raise (Bad (Malformed "duplicate node"));
        if e.start < 0 then raise (Bad (Malformed "negative start time"));
        if e.proc < 0 then raise (Bad (Malformed "negative processor"));
        if e.finish - e.start <> work e.node then
          raise (Bad (Malformed "duration differs from work"));
        start_of.(e.node) <- e.start;
        finish_of.(e.node) <- e.finish)
      s.events;
    (* precedence: out-tree, so a node may start only after its parent *)
    for i = 0 to p - 1 do
      let par = t.T.parent.(i) in
      if par >= 0 && start_of.(i) < finish_of.(par) then
        raise (Bad (Precedence { node = i; parent = par }))
    done;
    (* processor exclusivity: per processor, sorted runs must not overlap *)
    let by_proc = Hashtbl.create 16 in
    Array.iter
      (fun (e : P.event) ->
        let prev = try Hashtbl.find by_proc e.proc with Not_found -> [] in
        Hashtbl.replace by_proc e.proc (e :: prev))
      s.events;
    Hashtbl.iter
      (fun proc evs ->
        let evs =
          List.sort
            (fun (a : P.event) b -> compare (a.start, a.node) (b.start, b.node))
            evs
        in
        let rec disjoint = function
          | (a : P.event) :: (b :: _ as rest) ->
              if b.start < a.finish then
                raise (Bad (Overlap { proc; first = a.node; second = b.node }));
              disjoint rest
          | _ -> ()
        in
        disjoint evs)
      by_proc;
    (* booking discipline: starts are monotone along the activation order *)
    (match activation with
    | None -> ()
    | Some order ->
        if not (Tt_core.Traversal.is_valid_order t order) then
          raise (Bad (Malformed "activation order is not a traversal"));
        for k = 1 to p - 1 do
          if start_of.(order.(k)) < start_of.(order.(k - 1)) then
            raise (Bad (Booking { position = k; node = order.(k) }))
        done);
    (* memory bound at every instant while at least one task runs *)
    let observed_makespan, observed_peak, peak_time = replay t s in
    if observed_peak > memory then
      raise
        (Bad (Memory { time = peak_time; usage = observed_peak; budget = memory }));
    (* accounting: the carried fields must be consistent with the events *)
    if s.makespan <> observed_makespan then
      raise (Bad (Accounting "makespan differs from last finish time"));
    if s.peak_memory > memory then
      raise (Bad (Accounting "reported peak exceeds the budget"));
    if s.peak_memory < observed_peak then
      raise (Bad (Accounting "reported peak understates observed usage"));
    Ok ()
  with Bad v -> Error v

let check_exn ?activation t ~memory ~work s =
  match check ?activation t ~memory ~work s with
  | Ok () -> ()
  | Error v -> invalid_arg ("Tt_sched.Validate: " ^ violation_to_string v)
