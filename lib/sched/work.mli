(** The scheduling tier's task-duration model.

    Durations are synthetic — the model trees carry file sizes, not
    flop counts — so every consumer (jobs, bench, perf, loadgen) must
    agree on one convention or their result digests diverge. This
    module is that single source of truth. *)

val default : Tt_core.Tree.t -> int -> int
(** [default t i = 1 + n_i / 8]: every task costs at least one unit,
    large frontal matrices cost proportionally more. This is the
    convention the engine's [schedule] jobs have used since they were
    introduced; changing it changes every schedule digest. *)

val uniform : Tt_core.Tree.t -> int -> int
(** Unit durations — makespan counts tasks on the critical resource. *)
