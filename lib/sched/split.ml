module T = Tt_core.Tree
module P = Tt_core.Parallel

type plan = {
  tail : int array;
  subtrees : int array;
  assignment : int array;
  tail_work : int;
}

let subtree_work t ~work =
  let p = T.size t in
  let w = Array.make p 0 in
  Array.iter
    (fun i ->
      w.(i) <-
        Array.fold_left (fun acc c -> acc + w.(c)) (work i) t.T.children.(i))
    (T.bottom_up_order t);
  w

(* Greedy makespan estimate for a candidate frontier: the tail runs
   first on one processor, then the subtrees are sheet-metal packed onto
   [procs] workers — bounded below by both the largest subtree and the
   average load. *)
let estimate ~procs ~tail_work ~max_w ~total_w =
  tail_work + max max_w ((total_w + procs - 1) / procs)

let plan t ~procs ~work =
  if procs < 1 then invalid_arg "Split.plan: procs < 1";
  let p = T.size t in
  for i = 0 to p - 1 do
    if work i < 1 then invalid_arg "Split.plan: work < 1"
  done;
  let w = subtree_work t ~work in
  (* SplitSubtrees (Eyraud-Dubois et al. 2014): repeatedly move the
     heaviest frontier subtree's root into the sequential tail and
     promote its children, keeping the iteration with the best makespan
     estimate. The max-heap keys by negated work; ties break toward the
     smaller node id, so the whole search is deterministic. *)
  let cap = max 8 (4 * procs) in
  let search () =
    let heap = Tt_util.Int_heap.create p in
    Tt_util.Int_heap.insert heap t.T.root (-w.(t.T.root));
    let tail_work = ref 0 in
    let total = ref w.(t.T.root) in
    let pops = ref 0 in
    let best =
      ref
        ( estimate ~procs ~tail_work:0 ~max_w:w.(t.T.root) ~total_w:!total,
          0 )
    in
    let stop = ref false in
    while (not !stop) && Tt_util.Int_heap.length heap < cap do
      let i, _ = Tt_util.Int_heap.min_elt heap in
      if T.is_leaf t i then stop := true
      else begin
        ignore (Tt_util.Int_heap.pop_min heap);
        incr pops;
        tail_work := !tail_work + work i;
        total := !total - work i;
        Array.iter
          (fun c -> Tt_util.Int_heap.insert heap c (-w.(c)))
          t.T.children.(i);
        let max_w = -snd (Tt_util.Int_heap.min_elt heap) in
        let e = estimate ~procs ~tail_work:!tail_work ~max_w ~total_w:!total in
        if e < fst !best then best := (e, !pops)
      end
    done;
    snd !best
  in
  let best_pops = search () in
  (* replay the deterministic search up to the winning iteration to
     materialize the tail (in pop order, a valid top-down prefix) and
     the parallel frontier *)
  let heap = Tt_util.Int_heap.create p in
  Tt_util.Int_heap.insert heap t.T.root (-w.(t.T.root));
  let tail = Array.make best_pops (-1) in
  let tail_work = ref 0 in
  for k = 0 to best_pops - 1 do
    let i, _ = Tt_util.Int_heap.pop_min heap in
    tail.(k) <- i;
    tail_work := !tail_work + work i;
    Array.iter
      (fun c -> Tt_util.Int_heap.insert heap c (-w.(c)))
      t.T.children.(i)
  done;
  let subs = ref [] in
  while not (Tt_util.Int_heap.is_empty heap) do
    let i, _ = Tt_util.Int_heap.pop_min heap in
    subs := i :: !subs
  done;
  let subtrees = Array.of_list (List.rev !subs) in
  (* longest-processing-time assignment of subtrees to processors *)
  let load = Array.make procs 0 in
  let assignment =
    Array.map
      (fun r ->
        let best = ref 0 in
        for q = 1 to procs - 1 do
          if load.(q) < load.(!best) then best := q
        done;
        load.(!best) <- load.(!best) + w.(r);
        !best)
      subtrees
  in
  { tail; subtrees; assignment; tail_work = !tail_work }

(* MinMem-optimal traversal of the subtree rooted at [r], expressed in
   the parent tree's node ids. *)
let subtree_order t r =
  let nodes = ref [] in
  let count = ref 0 in
  let rec visit i =
    nodes := i :: !nodes;
    incr count;
    Array.iter visit t.T.children.(i)
  in
  visit r;
  let nodes = Array.of_list (List.rev !nodes) in
  let q = !count in
  if q = 1 then [| r |]
  else begin
    let index = Hashtbl.create q in
    Array.iteri (fun k i -> Hashtbl.add index i k) nodes;
    let parent =
      Array.map
        (fun i -> if i = r then -1 else Hashtbl.find index t.T.parent.(i))
        nodes
    in
    let f = Array.map (fun i -> t.T.f.(i)) nodes in
    let n = Array.map (fun i -> t.T.n.(i)) nodes in
    let sub = T.make ~parent ~f ~n in
    let _, order = Tt_core.Minmem.run sub in
    Array.map (fun k -> nodes.(k)) order
  end

let run ?plan:given t ~procs ~work =
  if procs < 1 then invalid_arg "Split.run: procs < 1";
  let pl = match given with Some pl -> pl | None -> plan t ~procs ~work in
  let events = Tt_util.Dynarray_compat.create () in
  (* the tail (the split-off top of the tree) runs first, sequentially
     on processor 0 — out-tree semantics: ancestors before subtrees *)
  let time = ref 0 in
  Array.iter
    (fun i ->
      Tt_util.Dynarray_compat.add_last events
        { P.node = i; proc = 0; start = !time; finish = !time + work i };
      time := !time + work i)
    pl.tail;
  let tail_end = !time in
  (* each processor then runs its assigned subtrees back to back, every
     subtree in its own MinMem-optimal sequential order *)
  let cursor = Array.make procs tail_end in
  Array.iteri
    (fun k r ->
      let q = pl.assignment.(k) in
      Array.iter
        (fun i ->
          Tt_util.Dynarray_compat.add_last events
            { P.node = i; proc = q; start = cursor.(q); finish = cursor.(q) + work i };
          cursor.(q) <- cursor.(q) + work i)
        (subtree_order t r))
    pl.subtrees;
  let evs = Tt_util.Dynarray_compat.to_array events in
  Array.sort
    (fun (a : P.event) b -> compare (a.start, a.node) (b.start, b.node))
    evs;
  let makespan = Array.fold_left (fun acc (e : P.event) -> max acc e.finish) 0 evs in
  let draft = { P.events = evs; makespan; peak_memory = 0 } in
  { draft with P.peak_memory = Validate.peak_usage t draft }
