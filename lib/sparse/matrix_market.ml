type format = Coordinate | Array_format
type field = Real | Integer | Complex | Pattern
type symmetry = General | Symmetric | Skew_symmetric | Hermitian

type header = {
  format : format;
  field : field;
  symmetry : symmetry;
  nrows : int;
  ncols : int;
  nnz : int;
}

exception Parse_error of { line : int; message : string }

let fail line message = raise (Parse_error { line; message })

let split_ws s =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) s)
  |> List.filter (fun x -> x <> "")

let parse_header lineno line =
  match split_ws (String.lowercase_ascii line) with
  | banner :: "matrix" :: fmt :: fld :: sym :: [] ->
      if banner <> "%%matrixmarket" then fail lineno "missing %%MatrixMarket banner";
      let format =
        match fmt with
        | "coordinate" -> Coordinate
        | "array" -> Array_format
        | other -> fail lineno ("unknown format: " ^ other)
      in
      let field =
        match fld with
        | "real" -> Real
        | "integer" -> Integer
        | "complex" -> Complex
        | "pattern" -> Pattern
        | other -> fail lineno ("unknown field: " ^ other)
      in
      let symmetry =
        match sym with
        | "general" -> General
        | "symmetric" -> Symmetric
        | "skew-symmetric" -> Skew_symmetric
        | "hermitian" -> Hermitian
        | other -> fail lineno ("unknown symmetry: " ^ other)
      in
      (format, field, symmetry)
  | _ -> fail lineno "malformed banner line"

let int_of lineno s =
  match int_of_string_opt s with
  | Some v -> v
  | None ->
      (* Distinguish overflow from garbage: "99999999999999999999" is
         all digits yet unrepresentable, and deserves a precise message. *)
      let digits =
        let body =
          if String.length s > 0 && (s.[0] = '-' || s.[0] = '+') then
            String.sub s 1 (String.length s - 1)
          else s
        in
        body <> "" && String.for_all (fun c -> c >= '0' && c <= '9') body
      in
      if digits then fail lineno ("integer overflows: " ^ s)
      else fail lineno ("not an integer: " ^ s)

let float_of lineno s =
  match float_of_string_opt s with
  | None -> fail lineno ("not a number: " ^ s)
  | Some v ->
      if Float.is_finite v then v
      else fail lineno ("non-finite value: " ^ s)

(* Number of numeric tokens per data line after the indices. *)
let value_arity = function Pattern -> 0 | Real | Integer -> 1 | Complex -> 2

let parse_string ?(expand_symmetry = true) text =
  let lines = String.split_on_char '\n' text in
  let lines = Array.of_list lines in
  let n_lines = Array.length lines in
  let pos = ref 0 in
  let next_content () =
    (* skip comments (after the banner) and blank lines *)
    let rec go () =
      if !pos >= n_lines then None
      else begin
        let l = String.trim lines.(!pos) in
        incr pos;
        if l = "" || (String.length l > 0 && l.[0] = '%') then go ()
        else Some (!pos, l)
      end
    in
    go ()
  in
  if n_lines = 0 then fail 1 "empty input";
  let banner_line = String.trim lines.(0) in
  pos := 1;
  let format, field, symmetry = parse_header 1 banner_line in
  let size =
    match next_content () with
    | None -> fail n_lines "missing size line"
    | Some (ln, l) -> (ln, split_ws l)
  in
  let size_ln = fst size in
  let nrows, ncols, stated_nnz =
    match (format, size) with
    | Coordinate, (ln, [ r; c; z ]) -> (int_of ln r, int_of ln c, int_of ln z)
    | Array_format, (ln, [ r; c ]) ->
        let r = int_of ln r and c = int_of ln c in
        (r, c, r * c)
    | _, (ln, _) -> fail ln "malformed size line"
  in
  if nrows <= 0 || ncols <= 0 then
    fail size_ln
      (Printf.sprintf "non-positive dimensions: %d x %d" nrows ncols);
  if stated_nnz < 0 then
    fail size_ln (Printf.sprintf "negative entry count: %d" stated_nnz);
  let header = { format; field; symmetry; nrows; ncols; nnz = stated_nnz } in
  let t = Triplet.create ~nrows ~ncols in
  let mirror i j v =
    if expand_symmetry && i <> j then
      match symmetry with
      | General -> ()
      | Symmetric | Hermitian -> Triplet.add t j i v
      | Skew_symmetric -> Triplet.add t j i (-.v)
  in
  (match format with
  | Coordinate ->
      let arity = value_arity field in
      for _ = 1 to stated_nnz do
        match next_content () with
        | None -> fail n_lines "unexpected end of file in entry list"
        | Some (ln, l) -> begin
            match split_ws l with
            | i :: j :: rest when List.length rest = arity ->
                let i = int_of ln i - 1 and j = int_of ln j - 1 in
                if i < 0 || i >= nrows || j < 0 || j >= ncols then
                  fail ln
                    (Printf.sprintf
                       "entry (%d, %d) outside the declared %d x %d shape \
                        (indices are 1-based)"
                       (i + 1) (j + 1) nrows ncols);
                let v =
                  match (field, rest) with
                  | Pattern, [] -> 1.
                  | (Real | Integer), [ x ] -> float_of ln x
                  | Complex, [ re; _im ] -> float_of ln re
                  | _ -> fail ln "wrong number of values"
                in
                Triplet.add t i j v;
                mirror i j v
            | _ -> fail ln "malformed entry line"
          end
      done
  | Array_format ->
      if field = Pattern then fail 1 "array format cannot be pattern";
      let arity = value_arity field in
      (* column-major dense listing; symmetric files list the lower
         triangle of each column only *)
      let expect_for_col j =
        match symmetry with General -> nrows | _ -> nrows - j
      in
      for j = 0 to ncols - 1 do
        let start_row = match symmetry with General -> 0 | _ -> j in
        for k = 0 to expect_for_col j - 1 do
          let i = start_row + k in
          match next_content () with
          | None -> fail n_lines "unexpected end of file in array data"
          | Some (ln, l) -> begin
              match split_ws l with
              | vals when List.length vals = arity ->
                  let v =
                    match (field, vals) with
                    | (Real | Integer), [ x ] -> float_of ln x
                    | Complex, [ re; _im ] -> float_of ln re
                    | _ -> fail ln "wrong number of values"
                  in
                  if v <> 0. then begin
                    (match symmetry with
                    | Skew_symmetric when i = j -> ()
                    | _ -> Triplet.add t i j v);
                    mirror i j v
                  end
              | _ -> fail ln "malformed array value line"
            end
        done
      done);
  (header, t)

let read_file ?expand_symmetry path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse_string ?expand_symmetry content

let field_name = function
  | Real -> "real"
  | Integer -> "integer"
  | Complex -> "complex"
  | Pattern -> "pattern"

let symmetry_name = function
  | General -> "general"
  | Symmetric -> "symmetric"
  | Skew_symmetric -> "skew-symmetric"
  | Hermitian -> "hermitian"

let to_string ?(field = Real) ?(symmetry = General) (a : Csr.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%%%%MatrixMarket matrix coordinate %s %s\n" (field_name field)
       (symmetry_name symmetry));
  let emit = Tt_util.Dynarray_compat.create () in
  for i = 0 to a.Csr.nrows - 1 do
    for k = a.Csr.row_ptr.(i) to a.Csr.row_ptr.(i + 1) - 1 do
      let j = a.Csr.col_idx.(k) in
      let keep = match symmetry with General -> true | _ -> j <= i in
      if keep then
        Tt_util.Dynarray_compat.add_last emit (i, j, a.Csr.values.(k))
    done
  done;
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d\n" a.Csr.nrows a.Csr.ncols
       (Tt_util.Dynarray_compat.length emit));
  Tt_util.Dynarray_compat.iter
    (fun (i, j, v) ->
      match field with
      | Pattern -> Buffer.add_string buf (Printf.sprintf "%d %d\n" (i + 1) (j + 1))
      | Integer ->
          Buffer.add_string buf
            (Printf.sprintf "%d %d %d\n" (i + 1) (j + 1) (int_of_float v))
      | Real ->
          Buffer.add_string buf (Printf.sprintf "%d %d %.17g\n" (i + 1) (j + 1) v)
      | Complex ->
          Buffer.add_string buf (Printf.sprintf "%d %d %.17g 0\n" (i + 1) (j + 1) v))
    emit;
  Buffer.contents buf

let write_file ?field ?symmetry path a =
  let oc = open_out path in
  output_string oc (to_string ?field ?symmetry a);
  close_out oc
