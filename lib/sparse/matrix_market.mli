(** Hand-written Matrix Market (MM) reader and writer.

    Supports the full MM exchange format for matrices:
    [%%MatrixMarket matrix <format> <field> <symmetry>] with
    [format ∈ {coordinate, array}], [field ∈ {real, integer, complex,
    pattern}] and [symmetry ∈ {general, symmetric, skew-symmetric,
    hermitian}]. Complex values keep their real part; pattern entries get
    value [1.]. Indices in the file are 1-based, converted to 0-based
    here. Comment lines ([%...]) and blank lines are skipped.

    The paper's data set is read through this module (the University of
    Florida collection distributes matrices in MM form); the repository's
    synthetic corpus can be exported to MM for interoperability. *)

type format = Coordinate | Array_format
type field = Real | Integer | Complex | Pattern
type symmetry = General | Symmetric | Skew_symmetric | Hermitian

type header = {
  format : format;
  field : field;
  symmetry : symmetry;
  nrows : int;
  ncols : int;
  nnz : int;  (** Stored entries for [Coordinate]; [nrows * ncols] for
                  [Array_format]. *)
}

exception Parse_error of { line : int; message : string }
(** Raised on malformed input, with a 1-based line number. Rejected
    beyond the obvious syntax errors: non-finite values ([nan]/[inf] —
    they would silently poison every downstream weight), non-positive
    dimensions, a negative entry count, indices outside the declared
    shape, and integers too large for the native [int] (reported as
    overflow, not as garbage). *)

val parse_string : ?expand_symmetry:bool -> string -> header * Triplet.t
(** Parse an MM document. With [expand_symmetry] (default [true]),
    symmetric/skew/hermitian storage is expanded to the full pattern
    (mirroring off-diagonal entries, negating them for skew). *)

val read_file : ?expand_symmetry:bool -> string -> header * Triplet.t
(** {!parse_string} on a file's contents.
    @raise Sys_error on I/O failure. *)

val to_string : ?field:field -> ?symmetry:symmetry -> Csr.t -> string
(** Render a matrix in coordinate format. With [symmetry = Symmetric],
    only the lower triangle is emitted (the matrix must be symmetric). *)

val write_file : ?field:field -> ?symmetry:symmetry -> string -> Csr.t -> unit
(** {!to_string} into a file. *)
