module Json = Tt_engine.Telemetry.Json
module Job = Tt_engine.Job

let version = 1
let max_frame_bytes = 1 lsl 20

(* ------------------------------------------------------------- errors *)

type error_code =
  | Bad_frame
  | Bad_request
  | Unsupported_version
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Internal
  | Unavailable

let error_code_to_string = function
  | Bad_frame -> "bad_frame"
  | Bad_request -> "bad_request"
  | Unsupported_version -> "unsupported_version"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"
  | Unavailable -> "unavailable"

let error_code_of_string = function
  | "bad_frame" -> Some Bad_frame
  | "bad_request" -> Some Bad_request
  | "unsupported_version" -> Some Unsupported_version
  | "overloaded" -> Some Overloaded
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | "unavailable" -> Some Unavailable
  | _ -> None

(* ----------------------------------------------------------- requests *)

type priority = Interactive | Batch

let priority_to_string = function
  | Interactive -> "interactive"
  | Batch -> "batch"

let priority_of_string = function
  | "interactive" -> Some Interactive
  | "batch" -> Some Batch
  | _ -> None

type op =
  | Solve of {
      entry : string;
      timeout_s : float option;
      idem : string option;
      priority : priority;
    }
  | Peek of { key : string }
  | Stats
  | Ping
  | Health
  | Shutdown

type request = { id : string; op : op }

let encode_request { id; op } =
  let base = [ ("v", Json.Int version); ("id", Json.String id) ] in
  let fields =
    match op with
    | Solve { entry; timeout_s; idem; priority } ->
        base
        @ [ ("op", Json.String "solve"); ("entry", Json.String entry) ]
        @ (match timeout_s with
          | Some s -> [ ("timeout_s", Json.Float s) ]
          | None -> [])
        @ (match idem with
          | Some k -> [ ("idem", Json.String k) ]
          | None -> [])
        (* Interactive is the default and stays off the wire, so frames
           from pre-priority clients and to pre-priority servers are
           byte-identical to before. *)
        @ (match priority with
          | Interactive -> []
          | Batch -> [ ("priority", Json.String "batch") ])
    | Peek { key } ->
        base @ [ ("op", Json.String "peek"); ("key", Json.String key) ]
    | Stats -> base @ [ ("op", Json.String "stats") ]
    | Ping -> base @ [ ("op", Json.String "ping") ]
    | Health -> base @ [ ("op", Json.String "health") ]
    | Shutdown -> base @ [ ("op", Json.String "shutdown") ]
  in
  Json.to_string (Json.Obj fields)

let float_member key json =
  match Json.member key json with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let decode_request line =
  if String.length line > max_frame_bytes then
    Error (None, Bad_frame, "frame exceeds 1 MiB")
  else
    match Json.of_string line with
    | Error msg -> Error (None, Bad_frame, "bad JSON: " ^ msg)
    | Ok (Json.Obj _ as json) -> (
        let id =
          match Json.member "id" json with
          | Some (Json.String s) -> Some s
          | _ -> None
        in
        let fail code msg = Error (id, code, msg) in
        match Json.member "v" json with
        | Some (Json.Int v) when v = version -> (
            match id with
            | None -> fail Bad_request "missing request id"
            | Some id -> (
                match Json.member "op" json with
                | Some (Json.String "solve") -> (
                    match Json.member "entry" json with
                    | Some (Json.String entry) -> (
                        match Json.member "idem" json with
                        | Some (Json.String _ ) | None -> (
                            let idem =
                              match Json.member "idem" json with
                              | Some (Json.String k) -> Some k
                              | _ -> None
                            in
                            match Json.member "priority" json with
                            | None -> (
                                Ok
                                  { id;
                                    op =
                                      Solve
                                        { entry;
                                          timeout_s =
                                            float_member "timeout_s" json;
                                          idem;
                                          priority = Interactive
                                        }
                                  })
                            | Some (Json.String p) -> (
                                match priority_of_string p with
                                | Some priority ->
                                    Ok
                                      { id;
                                        op =
                                          Solve
                                            { entry;
                                              timeout_s =
                                                float_member "timeout_s" json;
                                              idem;
                                              priority
                                            }
                                      }
                                | None ->
                                    fail Bad_request
                                      ("unknown priority: " ^ p))
                            | Some _ ->
                                fail Bad_request
                                  "priority must be a string when present")
                        | Some _ ->
                            fail Bad_request "idem must be a string when present")
                    | _ -> fail Bad_request "solve needs a string entry")
                | Some (Json.String "peek") -> (
                    match Json.member "key" json with
                    | Some (Json.String key) -> Ok { id; op = Peek { key } }
                    | _ -> fail Bad_request "peek needs a string key")
                | Some (Json.String "stats") -> Ok { id; op = Stats }
                | Some (Json.String "ping") -> Ok { id; op = Ping }
                | Some (Json.String "health") -> Ok { id; op = Health }
                | Some (Json.String "shutdown") -> Ok { id; op = Shutdown }
                | Some (Json.String other) ->
                    fail Bad_request ("unknown op: " ^ other)
                | _ -> fail Bad_request "missing op"))
        | Some (Json.Int v) ->
            fail Unsupported_version (Printf.sprintf "version %d, want %d" v version)
        | _ -> fail Unsupported_version "missing protocol version")
    | Ok _ -> Error (None, Bad_frame, "frame is not a JSON object")

(* ---------------------------------------------------------- responses *)

type job_report = {
  job_id : string;
  label : string;
  spec : string;
  result : Job.result;
  cache_hit : bool;
  wall_s : float;
}

type body =
  | Results of job_report list
  | Peeked of Job.outcome option
  | Stats_reply of Json.t
  | Health_reply of Json.t
  | Pong
  | Draining
  | Refused of { code : error_code; msg : string }

type response = { req_id : string option; body : body }

let report_to_json r =
  Json.Obj
    [ ("job", Json.String r.job_id);
      ("label", Json.String r.label);
      ("spec", Json.String r.spec);
      ("cache_hit", Json.Bool r.cache_hit);
      ("wall_s", Json.Float r.wall_s);
      ("result", Job.result_to_json r.result)
    ]

let report_of_json json =
  let str k =
    match Json.member k json with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "report: missing string %S" k)
  in
  let ( let* ) = Result.bind in
  let* job_id = str "job" in
  let* label = str "label" in
  let* spec = str "spec" in
  let* cache_hit =
    match Json.member "cache_hit" json with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "report: missing cache_hit"
  in
  let* wall_s =
    match float_member "wall_s" json with
    | Some f -> Ok f
    | None -> Error "report: missing wall_s"
  in
  let* result =
    match Json.member "result" json with
    | Some j -> Job.result_of_json j
    | None -> Error "report: missing result"
  in
  Ok { job_id; label; spec; result; cache_hit; wall_s }

let encode_response { req_id; body } =
  let id = match req_id with Some s -> Json.String s | None -> Json.Null in
  let base ok = [ ("v", Json.Int version); ("id", id); ("ok", Json.Bool ok) ] in
  let fields =
    match body with
    | Results reports ->
        base true @ [ ("results", Json.List (List.map report_to_json reports)) ]
    | Peeked outcome ->
        base true
        @ [ ( "peeked",
              Json.Obj
                (( "found",
                   Json.Bool (Option.is_some outcome) )
                 ::
                 (match outcome with
                 | Some o -> [ ("result", Job.result_to_json (Ok o)) ]
                 | None -> [])) )
          ]
    | Stats_reply stats -> base true @ [ ("stats", stats) ]
    | Health_reply health -> base true @ [ ("health", health) ]
    | Pong -> base true @ [ ("pong", Json.Bool true) ]
    | Draining -> base true @ [ ("draining", Json.Bool true) ]
    | Refused { code; msg } ->
        base false
        @ [ ( "error",
              Json.Obj
                [ ("code", Json.String (error_code_to_string code));
                  ("msg", Json.String msg)
                ] )
          ]
  in
  Json.to_string (Json.Obj fields)

let decode_response line =
  let ( let* ) = Result.bind in
  let* json =
    match Json.of_string line with
    | Ok (Json.Obj _ as j) -> Ok j
    | Ok _ -> Error "response is not a JSON object"
    | Error msg -> Error ("bad JSON: " ^ msg)
  in
  let* () =
    match Json.member "v" json with
    | Some (Json.Int v) when v = version -> Ok ()
    | _ -> Error "missing or unsupported protocol version"
  in
  let req_id =
    match Json.member "id" json with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  let* body =
    match Json.member "ok" json with
    | Some (Json.Bool true) when Json.member "peeked" json <> None -> (
        match Json.member "peeked" json with
        | Some (Json.Obj _ as p) -> (
            match Json.member "found" p with
            | Some (Json.Bool false) -> Ok (Peeked None)
            | Some (Json.Bool true) -> (
                match Json.member "result" p with
                | Some j -> (
                    match Job.result_of_json j with
                    | Ok (Ok o) -> Ok (Peeked (Some o))
                    | Ok (Error _) -> Error "peeked result is an error value"
                    | Error e -> Error e)
                | None -> Error "peeked found without a result")
            | _ -> Error "peeked without a boolean found")
        | _ -> Error "peeked is not an object")
    | Some (Json.Bool true) -> (
        match
          ( Json.member "results" json,
            Json.member "stats" json,
            Json.member "health" json,
            Json.member "pong" json,
            Json.member "draining" json )
        with
        | Some (Json.List items), _, _, _, _ ->
            let rec go acc = function
              | [] -> Ok (Results (List.rev acc))
              | item :: rest -> (
                  match report_of_json item with
                  | Ok r -> go (r :: acc) rest
                  | Error e -> Error e)
            in
            go [] items
        | None, Some stats, _, _, _ -> Ok (Stats_reply stats)
        | None, None, Some health, _, _ -> Ok (Health_reply health)
        | None, None, None, Some (Json.Bool true), _ -> Ok Pong
        | None, None, None, None, Some (Json.Bool true) -> Ok Draining
        | _ -> Error "ok response without a recognized payload")
    | Some (Json.Bool false) -> (
        match Json.member "error" json with
        | Some err -> (
            match (Json.member "code" err, Json.member "msg" err) with
            | Some (Json.String code), Some (Json.String msg) -> (
                match error_code_of_string code with
                | Some code -> Ok (Refused { code; msg })
                | None -> Error ("unknown error code: " ^ code))
            | _ -> Error "malformed error object")
        | None -> Error "error response without error object")
    | _ -> Error "missing ok field"
  in
  Ok { req_id; body }

(* ------------------------------------------------------------ digests *)

let pairs reports = List.map (fun r -> (r.job_id, r.result)) reports
let sequence_digest reports = Job.digest_of_results (pairs reports)
let value_digest reports = Job.value_digest_of_results (pairs reports)
