module P = Protocol
module Retry = Tt_engine.Retry

let default_read_timeout_s = 30.

(* ------------------------------------------------------ one connection *)

type t = {
  fd : Unix.file_descr;
  mutable rbuf : string;  (* bytes read but not yet consumed as lines *)
  mutable next_id : int;
  read_timeout_s : float;
  mutable is_closed : bool;
}

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> failwith ("cannot resolve host " ^ host))

(* Bounded connect: non-blocking [connect], wait for writability, then
   read the socket error back. A dead-but-routable endpoint otherwise
   blocks for the kernel's SYN-retry budget (minutes) — too slow for
   failover, which needs to move to the ring successor quickly. *)
let connect_bounded fd addr timeout_s =
  Unix.set_nonblock fd;
  (match Unix.connect fd addr with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
      let deadline = Unix.gettimeofday () +. timeout_s in
      let rec wait () =
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then
          raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
        else
          match Unix.select [] [ fd ] [] remaining with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
          | _, [ _ ], _ -> (
              match Unix.getsockopt_error fd with
              | None -> ()
              | Some e -> raise (Unix.Unix_error (e, "connect", "")))
          | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
      in
      wait ());
  Unix.clear_nonblock fd

let connect ?(host = "127.0.0.1") ?(read_timeout_s = default_read_timeout_s)
    ?connect_timeout_s ~port () =
  (* A write to a connection the server already closed must surface as
     an [Error], not kill the process. *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (match connect_timeout_s with
  | Some s when s <= 0. -> invalid_arg "Client.connect: connect_timeout_s <= 0"
  | _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     let addr = Unix.ADDR_INET (resolve host, port) in
     match connect_timeout_s with
     | None -> Unix.connect fd addr
     | Some s -> connect_bounded fd addr s
   with e ->
     Unix.close fd;
     raise e);
  (* Request/response framing over three hops (client, router, ingress
     proxy): Nagle batching against delayed ACKs adds tens of
     milliseconds per hop to every newline-framed exchange. *)
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  { fd; rbuf = ""; next_id = 0; read_timeout_s; is_closed = false }

let fd t = t.fd

let close t =
  if not t.is_closed then begin
    t.is_closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_connection ?host ?read_timeout_s ?connect_timeout_s ~port f =
  let t = connect ?host ?read_timeout_s ?connect_timeout_s ~port () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let fresh_id t =
  let id = Printf.sprintf "c%d" t.next_id in
  t.next_id <- t.next_id + 1;
  id

let send t req =
  let line = P.encode_request req ^ "\n" in
  let len = String.length line in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring t.fd line !off (len - !off)
  done

(* Pull the first '\n'-terminated line out of [rbuf], reading more from
   the socket (bounded by the read deadline) as needed. Every failure
   mode — EOF, timeout, ECONNRESET and friends — comes back as [Error],
   never as an exception. *)
let recv t =
  let deadline = Unix.gettimeofday () +. t.read_timeout_s in
  let buf = Bytes.create 65536 in
  let rec line () =
    match String.index_opt t.rbuf '\n' with
    | Some i ->
        let raw = String.sub t.rbuf 0 i in
        t.rbuf <- String.sub t.rbuf (i + 1) (String.length t.rbuf - i - 1);
        P.decode_response raw
    | None -> fill ()
  and fill () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0. then
      Error
        (Printf.sprintf "read timed out after %gs waiting for a reply"
           t.read_timeout_s)
    else
      match Unix.select [ t.fd ] [] [] remaining with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | [], _, _ ->
          Error
            (Printf.sprintf "read timed out after %gs waiting for a reply"
               t.read_timeout_s)
      | _ -> (
          match Unix.read t.fd buf 0 (Bytes.length buf) with
          | 0 -> Error "connection closed by server"
          | n ->
              t.rbuf <- t.rbuf ^ Bytes.sub_string buf 0 n;
              line ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
          | exception Sys_error e -> Error e)
  in
  line ()

let call t op =
  let id = fresh_id t in
  (* A send failure may still leave a reply (or an error frame) already
     buffered on the wire, so always attempt the read. *)
  (match send t { P.id; op } with
  | () -> ()
  | exception Sys_error _ -> ()
  | exception Unix.Unix_error _ -> ());
  match recv t with
  | Error _ as e -> e
  | Ok { P.req_id; body } ->
      (* [req_id = None] happens only for unparseable frames — ours are
         well-formed, so any reply on this single-outstanding-request
         connection must echo our id. *)
      if req_id <> None && req_id <> Some id then
        Error
          (Printf.sprintf "response id mismatch: sent %s, got %s" id
             (Option.value ~default:"null" req_id))
      else Ok body

let solve t ?timeout_s ?idem ?(priority = P.Interactive) entry =
  match call t (P.Solve { entry; timeout_s; idem; priority }) with
  | Error _ as e -> e
  | Ok (P.Results reports) -> Ok reports
  | Ok (P.Refused { code; msg }) ->
      Error (Printf.sprintf "%s: %s" (P.error_code_to_string code) msg)
  | Ok (P.Stats_reply _ | P.Health_reply _ | P.Pong | P.Draining | P.Peeked _)
    ->
      Error "unexpected response body for solve"

(* --------------------------------------------------- resilient session *)

type failure =
  | Refused of P.error_code * string
  | Transport of string

let failure_to_string = function
  | Refused (code, msg) ->
      Printf.sprintf "%s: %s" (P.error_code_to_string code) msg
  | Transport msg -> "transport: " ^ msg

type session = {
  s_host : string;
  s_port : int;
  s_read_timeout_s : float;
  s_connect_timeout_s : float option;
  s_retry : Retry.policy;
  s_tag : string;
  mutable s_conn : t option;
  mutable s_seq : int;
}

let open_session ?(host = "127.0.0.1") ?(read_timeout_s = default_read_timeout_s)
    ?connect_timeout_s ?(retry = Retry.none) ?(tag = "s") ~port () =
  { s_host = host;
    s_port = port;
    s_read_timeout_s = read_timeout_s;
    s_connect_timeout_s = connect_timeout_s;
    s_retry = retry;
    s_tag = tag;
    s_conn = None;
    s_seq = 0
  }

let close_session s =
  Option.iter close s.s_conn;
  s.s_conn <- None

let session_drop s =
  close_session s

let session_conn s =
  match s.s_conn with
  | Some c -> Ok c
  | None -> (
      match
        connect ~host:s.s_host ~read_timeout_s:s.s_read_timeout_s
          ?connect_timeout_s:s.s_connect_timeout_s ~port:s.s_port ()
      with
      | c ->
          s.s_conn <- Some c;
          Ok c
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | exception Failure msg -> Error msg)

(* Transient refusals: the server is alive and answered, but retrying
   later can succeed. [Deadline_exceeded] is deliberately {e not} here —
   it is retry-hint-free: the budget is spent, and retrying the same
   request under the same (now smaller) budget can only waste server
   work. Everything else ([Bad_request] & co.) is deterministic —
   retrying would just repeat it. *)
let retryable = function
  | P.Overloaded | P.Internal | P.Unavailable -> true
  | P.Bad_frame | P.Bad_request | P.Unsupported_version | P.Deadline_exceeded
  | P.Shutting_down ->
      false

let session_solve s ?timeout_s ?idem ?(priority = P.Interactive) entry =
  let key =
    match idem with
    | Some k -> k
    | None ->
        let k = Printf.sprintf "%s-%d" s.s_tag s.s_seq in
        s.s_seq <- s.s_seq + 1;
        k
  in
  (* The deadline is absolute, fixed at the first attempt: every retry
     forwards only the budget that remains, and the loop refuses
     locally — without burning a connection or a backoff sleep — once
     the budget is gone. *)
  let deadline =
    Option.map (fun t -> Unix.gettimeofday () +. t) timeout_s
  in
  let remaining () =
    Option.map (fun d -> d -. Unix.gettimeofday ()) deadline
  in
  let deadline_error () =
    Error
      (Refused
         (P.Deadline_exceeded, "deadline budget exhausted before attempt"))
  in
  let attempt () =
    match remaining () with
    | Some r when r <= 0. -> deadline_error ()
    | r -> (
        let op = P.Solve { entry; timeout_s = r; idem = Some key; priority } in
        match session_conn s with
        | Error msg -> Error (Transport msg)
        | Ok c -> (
            match call c op with
            | Error msg ->
                (* The connection is in an unknown state (half-written
                   frame, stale buffered bytes): drop it so the next
                   attempt reconnects. The idempotency key makes the
                   retry safe even if the solve actually ran. *)
                session_drop s;
                Error (Transport msg)
            | Ok (P.Results reports) -> Ok reports
            | Ok (P.Refused { code; msg }) -> Error (Refused (code, msg))
            | Ok
                (P.Stats_reply _ | P.Health_reply _ | P.Pong | P.Draining
                | P.Peeked _) ->
                session_drop s;
                Error (Transport "unexpected response body for solve")))
  in
  (* [Retry.delays] yields the gaps between attempts (one per retry);
     seeding by key keeps each request's backoff schedule deterministic
     and decorrelated from its neighbours'. A sleep that would land
     past the deadline is not taken: the attempt after it could only be
     refused, so the loop returns a terminal [Deadline_exceeded]
     instead of burning the budget asleep. *)
  let rec go delays =
    match attempt () with
    | Ok _ as ok -> ok
    | Error (Refused (code, _)) as e when not (retryable code) -> e
    | Error _ as e -> (
        match delays with
        | [] -> e
        | d :: rest -> (
            match remaining () with
            | Some r when r <= d -> deadline_error ()
            | _ ->
                if d > 0. then Unix.sleepf d;
                go rest))
  in
  go (Retry.delays s.s_retry ~key)
