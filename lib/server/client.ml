module P = Protocol

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
  mutable is_closed : bool;
}

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> failwith ("cannot resolve host " ^ host))

let connect ?(host = "127.0.0.1") ~port () =
  (* A write to a connection the server already closed must surface as
     an [Error], not kill the process. *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (resolve host, port))
   with e ->
     Unix.close fd;
     raise e);
  { fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    next_id = 0;
    is_closed = false
  }

let close t =
  if not t.is_closed then begin
    t.is_closed <- true;
    (* Closing either channel closes the shared descriptor. *)
    try close_out t.oc with Sys_error _ | Unix.Unix_error _ -> ()
  end

let with_connection ?host ~port f =
  let t = connect ?host ~port () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let fresh_id t =
  let id = Printf.sprintf "c%d" t.next_id in
  t.next_id <- t.next_id + 1;
  id

let send t req =
  output_string t.oc (P.encode_request req);
  output_char t.oc '\n';
  flush t.oc

let recv t =
  match input_line t.ic with
  | line -> P.decode_response line
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error e -> Error e

let call t op =
  let id = fresh_id t in
  (match send t { P.id; op } with
  | () -> ()
  | exception Sys_error _ -> ());
  match recv t with
  | Error _ as e -> e
  | Ok { P.req_id; body } ->
      (* [req_id = None] happens only for unparseable frames — ours are
         well-formed, so any reply on this single-outstanding-request
         connection must echo our id. *)
      if req_id <> None && req_id <> Some id then
        Error
          (Printf.sprintf "response id mismatch: sent %s, got %s" id
             (Option.value ~default:"null" req_id))
      else Ok body

let solve t ?timeout_s entry =
  match call t (P.Solve { entry; timeout_s }) with
  | Error _ as e -> e
  | Ok (P.Results reports) -> Ok reports
  | Ok (P.Refused { code; msg }) ->
      Error (Printf.sprintf "%s: %s" (P.error_code_to_string code) msg)
  | Ok (P.Stats_reply _ | P.Pong | P.Draining) ->
      Error "unexpected response body for solve"
