(** The `treetrav serve` wire protocol.

    {b Framing.} One frame per line: a single-line JSON object (the
    subset {!Tt_engine.Telemetry.Json} emits) terminated by ['\n'];
    a trailing ['\r'] is tolerated. Frames longer than
    {!max_frame_bytes} are rejected. Requests and responses both carry
    the protocol version [v] (currently {!version}) and a client-chosen
    request id echoed back verbatim, so clients may pipeline requests
    over one connection and match replies by id. Responses to one
    connection's requests come back on that connection, though —
    because requests run concurrently on worker domains — not
    necessarily in request order.

    {b Requests.}
    {v
    {"v":1,"id":"r1","op":"solve","entry":"gen grid2d size=16 :: minmem; liu","timeout_s":5}
    {"v":1,"id":"r2","op":"stats"}
    {"v":1,"id":"r3","op":"ping"}
    {"v":1,"id":"r4","op":"shutdown"}
    v}
    A [solve] entry is one line of the `treetrav batch` manifest
    grammar (see {!Tt_engine.Manifest}); its jobs run in order on one
    worker. [timeout_s] is the per-request deadline (seconds; 0 means
    already expired), clamped below the server's configured maximum.

    {b Responses.}
    {v
    {"v":1,"id":"r1","ok":true,"results":[{"job":"<hex id>","label":"…",
      "spec":"min-memory:minmem","cache_hit":false,"wall_s":0.0012,
      "result":{"ok":true,"kind":"memory","peak":42,"order":[…]}}]}
    {"v":1,"id":"r2","ok":true,"stats":{…}}
    {"v":1,"id":"r3","ok":true,"pong":true}
    {"v":1,"id":"r4","ok":true,"draining":true}
    {"v":1,"id":null,"ok":false,"error":{"code":"overloaded","msg":"…"}}
    v}
    A [result] field is the lossless {!Tt_engine.Job.result_to_json}
    form, so clients can reproduce the engine's results digest
    byte-for-byte ({!sequence_digest} / {!value_digest}). Error replies
    echo the request id when it could be recovered and [null] when the
    frame never parsed. *)

val version : int
(** Current protocol version (1). Frames carrying any other [v] are
    refused with {!Unsupported_version}. *)

val max_frame_bytes : int
(** Upper bound on one frame's length, terminator excluded (1 MiB). *)

(* ------------------------------------------------------------- errors *)

type error_code =
  | Bad_frame  (** Not a JSON object / oversized / malformed line. *)
  | Bad_request  (** Well-formed JSON, invalid request (bad op, bad
                     manifest entry, missing field). *)
  | Unsupported_version  (** [v] missing or not {!version}. *)
  | Overloaded  (** Admission queue full — retry later, with backoff. *)
  | Deadline_exceeded  (** The request deadline passed while queued. *)
  | Shutting_down  (** Server is draining; no new work admitted. *)
  | Internal  (** Unexpected server-side failure. *)
  | Unavailable
      (** No backend can take the request {e right now} — every shard
          is unreachable or breaker-open (shard tier). Distinct from
          {!Internal}: nothing went wrong with the request itself, and
          retrying after a backoff is expected to succeed once a
          breaker half-opens. *)

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

(* ----------------------------------------------------------- requests *)

type priority = Interactive | Batch
(** Request class for brownout shedding: under overload the server
    sheds [Batch] traffic first, preserving [Interactive] goodput.
    [Interactive] is the default and is omitted from the wire frame, so
    pre-priority clients and servers interoperate byte-identically. *)

val priority_to_string : priority -> string
val priority_of_string : string -> priority option

type op =
  | Solve of {
      entry : string;
      timeout_s : float option;
      idem : string option;
      priority : priority;
    }
      (** [idem] is a client-chosen idempotency key: the server caches
          the successful reply body under it (bounded {!Replay} cache),
          so a retry of the same solve after a lost reply is answered
          from the cache instead of re-admitted — the client may retry
          freely without double execution. [timeout_s] is the remaining
          deadline budget at the sender: each hop converts it to an
          absolute deadline on receipt and rewrites it to
          [deadline - now] when forwarding, so the budget shrinks by
          real elapsed time across hops and retries. [priority] selects
          the brownout class ({!Batch} sheds first). *)
  | Peek of { key : string }
      (** Cache peering (shard tier): does this server's result cache
          hold [key] (a content address, typically a {!Tt_engine.Job}
          id)? Answered inline from the cache — never admitted, never
          computed — so a peer's miss costs one round trip, not a
          solve. Wire form:
          [{"v":1,"id":"r5","op":"peek","key":"<hex id>"}]. *)
  | Stats
  | Ping
  | Health
      (** Cheap liveness/health check, answered inline by the I/O
          domain (never queued): the health monitor's probe op. Wire
          form: [{"v":1,"id":"r6","op":"health"}]. A server replies
          with its drain state; a router replies with ring epoch and
          per-shard breaker states. *)
  | Shutdown

type request = { id : string; op : op }

val encode_request : request -> string
(** One line, no terminator. *)

val decode_request :
  string -> (request, string option * error_code * string) Stdlib.result
(** The error triple is (request id when recoverable, code, message) —
    enough to send a well-addressed error reply even for frames that
    fail validation. *)

(* ---------------------------------------------------------- responses *)

type job_report = {
  job_id : string;
  label : string;
  spec : string;
  result : Tt_engine.Job.result;
  cache_hit : bool;
  wall_s : float;
}

type body =
  | Results of job_report list
  | Peeked of Tt_engine.Job.outcome option
      (** Reply to [peek]: the cached outcome, or [None] on a miss.
          Wire form: [{"v":1,"id":"r5","ok":true,"peeked":{"found":
          true,"result":{…}}}] (the [result] field only when found). *)
  | Stats_reply of Tt_engine.Telemetry.Json.t
  | Health_reply of Tt_engine.Telemetry.Json.t
      (** Reply to [health]: a small role-specific JSON object (a
          server reports its drain flag and queue depth; a router
          reports ring epoch and breaker states). Wire form:
          [{"v":1,"id":"r6","ok":true,"health":{…}}]. *)
  | Pong
  | Draining  (** Acknowledges [shutdown]; the server then drains. *)
  | Refused of { code : error_code; msg : string }

type response = { req_id : string option; body : body }

val encode_response : response -> string
val decode_response : string -> (response, string) Stdlib.result

(* ------------------------------------------------------------ digests *)

val sequence_digest : job_report list -> string
(** {!Tt_engine.Job.digest_of_results} over the reports in order —
    byte-identical to the ["results digest"] line `treetrav batch`
    prints when the same jobs ran in the same order. *)

val value_digest : job_report list -> string
(** Order-insensitive, duplicate-free variant
    ({!Tt_engine.Job.value_digest_of_results}) for concurrent clients. *)
