(** Minimal blocking client for the {!Protocol} wire format.

    One connection, stdlib [Unix] sockets and buffered channels. The
    simple path is {!call}: send one request, block for one reply —
    correct because a single-outstanding-request connection cannot see
    reordering. Pipelined clients (the load generator, the overload
    tests) use {!send} / {!recv} directly and match replies by id. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** [host] defaults to ["127.0.0.1"].
    @raise Unix.Unix_error when the connection is refused. *)

val close : t -> unit
(** Idempotent. *)

val with_connection : ?host:string -> port:int -> (t -> 'a) -> 'a
(** [connect], run, [close] (also on exception). *)

val fresh_id : t -> string
(** Next request id in this connection's [c0], [c1], … sequence. *)

val send : t -> Protocol.request -> unit
(** Write one frame (flushes). *)

val recv : t -> (Protocol.response, string) result
(** Block for the next frame. [Error] on EOF or an undecodable frame. *)

val call : t -> Protocol.op -> (Protocol.body, string) result
(** [send] with a {!fresh_id}, then {!recv}; checks the echoed id. *)

val solve :
  t ->
  ?timeout_s:float ->
  string ->
  (Protocol.job_report list, string) result
(** [solve t entry] runs one manifest entry; flattens [Refused] replies
    into [Error "code: msg"]. *)
