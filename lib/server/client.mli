(** Blocking client for the {!Protocol} wire format, in two layers.

    {b Connection} ({!t}): one socket, stdlib [Unix] only. The simple
    path is {!call}: send one request, block for one reply — correct
    because a single-outstanding-request connection cannot see
    reordering. Pipelined clients (the load generator, the overload
    tests) use {!send} / {!recv} directly and match replies by id.
    Every {!recv} is bounded by a read deadline, and every transport
    failure — EOF, timeout, [ECONNRESET] — surfaces as [Error], never
    as an exception.

    {b Session} ({!session}): a resilient wrapper that owns (and
    replaces) connections. {!session_solve} retries transport failures
    and transient refusals on a {!Tt_engine.Retry} backoff schedule,
    reconnecting as needed, and attaches an idempotency key to every
    solve so a retry after a lost reply is answered from the server's
    replay cache instead of executing twice. *)

type t

val default_read_timeout_s : float
(** 30 s. *)

val connect :
  ?host:string ->
  ?read_timeout_s:float ->
  ?connect_timeout_s:float ->
  port:int ->
  unit ->
  t
(** [host] defaults to ["127.0.0.1"], [read_timeout_s] to
    {!default_read_timeout_s}. [connect_timeout_s] bounds connection
    establishment (non-blocking connect + select): without it, a dead
    but routable endpoint blocks for the kernel's SYN-retry budget —
    minutes — where failover needs to move on in well under a second.
    @raise Unix.Unix_error when the connection is refused, or with
    [ETIMEDOUT] when [connect_timeout_s] expires.
    @raise Invalid_argument when [connect_timeout_s <= 0]. *)

val close : t -> unit
(** Idempotent. *)

val fd : t -> Unix.file_descr
(** The underlying socket, for callers that multiplex several
    connections with [Unix.select] (the shard tier's hedged forward
    races two connections and takes the first readable one). Do not
    read or close it directly — use {!recv} / {!close}. *)

val with_connection :
  ?host:string ->
  ?read_timeout_s:float ->
  ?connect_timeout_s:float ->
  port:int ->
  (t -> 'a) ->
  'a
(** [connect], run, [close] (also on exception). *)

val fresh_id : t -> string
(** Next request id in this connection's [c0], [c1], … sequence. *)

val send : t -> Protocol.request -> unit
(** Write one frame.
    @raise Unix.Unix_error when the connection is gone. *)

val recv : t -> (Protocol.response, string) result
(** Block for the next frame, up to the connection's read timeout.
    [Error] on EOF, timeout, an undecodable frame, or a socket error. *)

val call : t -> Protocol.op -> (Protocol.body, string) result
(** [send] with a {!fresh_id}, then {!recv}; checks the echoed id. A
    send failure still attempts the read (an error reply may already be
    buffered). *)

val solve :
  t ->
  ?timeout_s:float ->
  ?idem:string ->
  ?priority:Protocol.priority ->
  string ->
  (Protocol.job_report list, string) result
(** [solve t entry] runs one manifest entry; flattens [Refused] replies
    into [Error "code: msg"]. [priority] defaults to
    {!Protocol.Interactive}. No retries — see {!session_solve}. *)

(* ----------------------------------------------------------- sessions *)

type failure =
  | Refused of Protocol.error_code * string
      (** The server answered with an error frame. *)
  | Transport of string
      (** The connection failed (refused, reset, EOF, read timeout) —
          whether the solve ran is unknown. *)

val failure_to_string : failure -> string

type session

val open_session :
  ?host:string ->
  ?read_timeout_s:float ->
  ?connect_timeout_s:float ->
  ?retry:Tt_engine.Retry.policy ->
  ?tag:string ->
  port:int ->
  unit ->
  session
(** Never connects eagerly — the first {!session_solve} does. [retry]
    defaults to {!Tt_engine.Retry.none} (single attempt); [tag]
    (default ["s"]) namespaces generated idempotency keys, so two
    sessions hitting the same server must use distinct tags. *)

val close_session : session -> unit
(** Close the current connection, if any. The session remains usable —
    the next solve reconnects. *)

val session_solve :
  session ->
  ?timeout_s:float ->
  ?idem:string ->
  ?priority:Protocol.priority ->
  string ->
  (Protocol.job_report list, failure) result
(** Solve with retries under a propagated deadline. Each solve carries
    an idempotency key ([idem] if given, else ["<tag>-<seq>"]), so
    retries after a lost reply cannot double-execute. [timeout_s]
    fixes an {e absolute} deadline at the first attempt: every retry
    forwards only the remaining budget, a backoff sleep that would
    land past the deadline is never taken (the call returns a terminal
    [Refused (Deadline_exceeded, _)] instead), and an exhausted budget
    refuses locally without touching the network. Transport failures
    drop the connection and reconnect on the next attempt;
    [Overloaded], [Internal] and [Unavailable] refusals are retried on
    the backoff schedule (an [Unavailable] shard tier is expected to
    recover within a breaker half-open interval); deterministic and
    retry-hint-free refusals ([Bad_request], [Deadline_exceeded],
    [Shutting_down], …) return immediately. *)
