(** Bounded server-side replay cache for idempotent solves.

    A client that loses a reply (dropped connection, read timeout)
    cannot tell whether its solve ran; retrying blindly would execute
    it twice. The protocol's [idem] key closes the gap: when a solve
    carrying a key completes successfully, the server stores the reply
    body here, and a later solve with the same key is answered from
    the cache without touching the admission queue or the engine —
    counted as a [replay_hits] metric.

    The cache is bounded (FIFO eviction — keys are written once, so
    insertion order {e is} recency order) and holds only successful
    [Results] bodies: refusals are either transient (retrying should
    re-attempt) or deterministic (re-refusing is cheap and correct).

    Domain-safe: one mutex. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int

val length : t -> int
(** Entries currently cached. *)

val evictions : t -> int
(** Lifetime FIFO evictions. *)

val find : t -> string -> Protocol.body option

val put : t -> string -> Protocol.body -> unit
(** Insert under [key], evicting the oldest entry when full. A key
    already present keeps its first body (concurrent duplicate
    completions are value-equal). *)
