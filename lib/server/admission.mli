(** The bounded admission queue between the accept loop and the worker
    domains.

    Admission control is the server's memory-safety valve: every queued
    request is a future traversal solve with a nontrivial working set,
    so the queue {e rejects} instead of growing when full —
    {!try_push} never blocks and never allocates beyond the fixed ring.
    The caller turns a [false] into an [overloaded] protocol reply; the
    client retries with backoff. This mirrors the fixed-memory
    admission regime of the task-tree scheduling literature (Marchal et
    al.): bounding concurrent admitted work is what keeps the peak
    resident set proportional to [workers + capacity], not to offered
    load.

    Two-class: each item is pushed as interactive (default) or batch,
    into separate internal FIFO rings under one shared capacity, and
    {!pop} always serves interactive first — queued batch work never
    delays an interactive request (the queue-level half of brownout;
    the admission-time half is {!Overload.shed_decision}).

    Domain-safe: one mutex, one condition; producers never wait,
    consumers block in {!pop} until an item or {!close} arrives. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Current depth, both classes combined (racy by nature; exact under
    the internal lock). *)

val try_push : 'a t -> ?batch:bool -> 'a -> bool
(** [false] when the queue is full (shared capacity, both classes) or
    closed. Never blocks. [batch] (default [false]) selects the
    lower-priority ring. *)

val pop : 'a t -> 'a option
(** Blocks until an item is available ([Some]) or the queue is closed
    {e and} drained ([None] — the consumer should exit). Interactive
    items come out first, each class in its own push (FIFO) order. *)

val close : 'a t -> unit
(** Refuse further pushes and wake every blocked consumer. Items already
    queued are still delivered — close-then-drain is what graceful
    shutdown relies on. Idempotent. *)

val closed : 'a t -> bool

type stats = {
  pushed : int;  (** Lifetime successful {!try_push}es. *)
  rejected : int;  (** Lifetime refused pushes (full or closed). *)
  high_watermark : int;  (** Deepest the queue has ever been. *)
}

val stats : 'a t -> stats
(** Lifetime admission counters — the [stats] op's queue observability. *)
