(** The TCP front end: accept loop + worker domains over the batch
    engine.

    Architecture (stdlib [Unix] only — no Lwt/Eio):

    - one {e I/O domain} (the caller of {!run}) owns the listening
      socket and every connection's read side, multiplexed with
      [Unix.select]; it parses frames, answers [ping]/[stats]
      instantly, and admits [solve] work into a bounded
      {!Admission} queue — or rejects it with [overloaded] when the
      queue is full, so offered load can never grow the resident set;
    - [workers] {e worker domains} pop admitted requests and run their
      jobs through a per-request {!Tt_engine.Executor} sharing one
      {!Tt_engine.Cache} / {!Tt_engine.Retry} stack, under a
      per-request {!Tt_util.Cancel} deadline token (a request whose
      deadline passes while queued is refused with
      [deadline_exceeded]; one that is already running degrades its
      remaining jobs to [Timed_out]);
    - responses are written by whichever domain produced them,
      serialized per connection by a mutex, so slow solves never block
      the I/O loop.

    Graceful drain: {!request_shutdown} (or a [shutdown] frame, or the
    CLI's SIGINT/SIGTERM handler) closes the listener, refuses new
    [solve]s with [shutting_down], lets queued and in-flight requests
    finish, joins the workers, then closes every connection — so every
    admitted request gets exactly one reply and journals/telemetry
    flush per job as usual. *)

type config = {
  host : string;  (** Bind address (default ["127.0.0.1"]). *)
  port : int;  (** 0 picks an ephemeral port — read it back with {!port}. *)
  workers : int;  (** Worker domains (default 2; clamped to ≥ 1). *)
  queue_capacity : int;  (** Admission queue bound (default 64). *)
  max_deadline_s : float;
      (** Per-request deadline ceiling and default (seconds, default
          30): a request's [timeout_s] is clamped below it. *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?cache:Tt_engine.Job.outcome Tt_engine.Cache.t ->
  ?retry:Tt_engine.Retry.policy ->
  ?telemetry:Tt_engine.Telemetry.t ->
  ?job_timeout:float ->
  unit ->
  t
(** Binds and listens immediately (so {!port} is valid before {!run}).
    [cache] defaults to a fresh unbounded in-memory cache — a
    long-lived server should pass [Cache.create ~max_entries ()].
    [job_timeout] is the engine's per-job cooperative timeout,
    independent of request deadlines.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually bound port (resolves [port = 0]). *)

val metrics : t -> Metrics.t

val stats_json : t -> Tt_engine.Telemetry.Json.t
(** The [STATS] payload: a ["server"] section (workers, queue depth and
    capacity, draining flag, uptime) plus {!Metrics.to_json}. *)

val run : t -> unit
(** Run accept loop and workers; blocks until drain completes. *)

val start : t -> unit
(** {!run} on a background domain; returns once the server accepts
    connections. Use {!shutdown} to stop and join it. *)

val request_shutdown : t -> unit
(** Begin graceful drain; returns immediately. Safe from any domain and
    from signal handlers. Idempotent. *)

val shutdown : t -> unit
(** {!request_shutdown}, then block until the server has fully stopped
    (all replies written, workers joined, sockets closed). *)
