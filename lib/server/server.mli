(** The TCP front end: accept loop + supervised worker domains over the
    batch engine.

    Architecture (stdlib [Unix] only — no Lwt/Eio):

    - one {e I/O domain} (the caller of {!run}) owns the listening
      socket and every connection's read side, multiplexed with
      [Unix.select]; it parses frames, answers [ping]/[stats]
      instantly, and admits [solve] work into a bounded
      {!Admission} queue — or rejects it with [overloaded] when the
      queue (or the per-connection in-flight cap) is full, so offered
      load can never grow the resident set;
    - [workers] {e worker domains} pop admitted requests and run their
      jobs through a per-request {!Tt_engine.Executor} sharing one
      {!Tt_engine.Cache} / {!Tt_engine.Retry} stack, under a
      per-request {!Tt_util.Cancel} deadline token (a request whose
      deadline passes while queued is refused with
      [deadline_exceeded]; one that is already running degrades its
      remaining jobs to [Timed_out]);
    - responses are buffered per connection and written with
      non-blocking sockets — workers append and flush
      opportunistically, the I/O domain drains the rest on
      writability — so a slow or stalled reader can never block a
      worker, only grow (and eventually overflow) its own write
      buffer.

    {b Supervision.} The I/O domain doubles as the worker supervisor:
    a worker domain that dies (an escaped exception — e.g. an injected
    {!Tt_engine.Fault} crash via [worker_faults]) or {e wedges} (its
    current request exceeds deadline + [wedge_grace_s] without a
    reply) is detected each tick; its in-flight request is answered
    with a typed [internal] error, a replacement domain is staffed,
    and [worker_restarts] is counted. A per-request CAS guarantees
    that whoever answers first — worker, crash handler, or wedge
    supervisor — is the only one that does: {e every admitted request
    gets exactly one reply}, under faults and restarts included.

    {b Idempotent replay.} A [solve] carrying an [idem] key whose
    reply was already computed is answered from a bounded {!Replay}
    cache without re-execution, so client retries after lost replies
    cannot double-execute.

    Graceful drain: {!request_shutdown} (or a [shutdown] frame, or the
    CLI's SIGINT/SIGTERM handler) closes the listener, refuses new
    [solve]s with [shutting_down], lets queued and in-flight requests
    finish (respawning crashed workers as needed so the queue always
    has staff), joins the workers, then closes every connection — so
    every admitted request gets exactly one reply and
    journals/telemetry flush per job as usual. *)

type config = {
  host : string;  (** Bind address (default ["127.0.0.1"]). *)
  port : int;  (** 0 picks an ephemeral port — read it back with {!port}. *)
  workers : int;  (** Worker domains (default 2; clamped to ≥ 1). *)
  queue_capacity : int;  (** Admission queue bound (default 64). *)
  max_deadline_s : float;
      (** Per-request deadline ceiling and default (seconds, default
          30): a request's [timeout_s] is clamped below it. *)
  idle_timeout_s : float;
      (** Evict a connection after this long with no traffic, nothing
          in flight and nothing buffered (default 300; [<= 0]
          disables). Counted as [idle_evictions]. *)
  max_inflight : int;
      (** Per-connection cap on admitted-but-unreplied solves (default
          32); past it, solves are refused [overloaded] — one
          pipelining client cannot monopolize the queue. *)
  max_write_buf : int;
      (** Per-connection write-buffer cap in bytes (default 8 MiB). A
          connection whose reader lets this much pile up is dropped
          (counted as [write_overflows]) rather than held in memory. *)
  replay_capacity : int;
      (** Bound on the idempotency {!Replay} cache (default 1024,
          clamped to ≥ 1; FIFO eviction). *)
  wedge_grace_s : float;
      (** Grace beyond a request's deadline before its worker is
          declared wedged and replaced (default 5). *)
  worker_faults : Tt_engine.Fault.t option;
      (** Chaos hook (default [None]): roll this fault spec once per
          admitted request on the worker about to run it — [Crash] /
          [Io_error] kill the worker domain (exercising crash
          supervision), [Delay] sleeps (exercising wedge detection
          when it outlasts deadline + grace). Seeded and keyed by
          admission sequence, so runs replay deterministically. *)
  batch_headroom : float;
      (** Brownout threshold (default 0.75): a [priority=batch] solve
          is shed [overloaded] once in-flight admitted work reaches
          this fraction of the AIMD limit, reserving the rest of the
          window for interactive traffic. *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?cache:Tt_engine.Job.outcome Tt_engine.Cache.t ->
  ?retry:Tt_engine.Retry.policy ->
  ?telemetry:Tt_engine.Telemetry.t ->
  ?job_timeout:float ->
  unit ->
  t
(** Binds and listens immediately (so {!port} is valid before {!run}).
    [cache] defaults to a fresh unbounded in-memory cache — a
    long-lived server should pass [Cache.create ~max_entries ()].
    [job_timeout] is the engine's per-job cooperative timeout,
    independent of request deadlines.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually bound port (resolves [port = 0]). *)

val metrics : t -> Metrics.t

val stats_json : t -> Tt_engine.Telemetry.Json.t
(** The [STATS] payload: a ["server"] section (workers, queue depth and
    capacity, draining flag, uptime), an ["admission"] section
    (pushed/rejected/high-watermark), a ["replay"] section
    (capacity/entries/evictions), plus {!Metrics.to_json}. *)

val run : t -> unit
(** Run accept loop and workers; blocks until drain completes. *)

val start : t -> unit
(** {!run} on a background domain; returns once the server accepts
    connections. Use {!shutdown} to stop and join it. *)

val request_shutdown : t -> unit
(** Begin graceful drain; returns immediately. Safe from any domain and
    from signal handlers. Idempotent. *)

val shutdown : t -> unit
(** {!request_shutdown}, then block until the server has fully stopped
    (all replies written, workers joined, sockets closed). *)

val stopped : t -> bool
(** Has this server's {!run} loop fully exited (after drain or crash)?
    Safe from any domain — the shard tier's supervisor polls it to
    tell a dead backend from a merely slow one. *)
