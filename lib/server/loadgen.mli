(** Deterministic load generator for [treetrav serve].

    [connections] client domains each open one connection and issue
    their share of [requests] solve frames, drawing manifest entries
    from [entries] with a per-connection {!Tt_util.Rng} stream derived
    from [seed] — so a run is reproducible given the same seed and
    server state, and two connections never share an RNG.

    Two pacing modes:
    - {!Closed}: each connection keeps exactly one request outstanding
      (fire the next as soon as the reply lands) — measures the
      server's sustainable closed-loop throughput;
    - {!Open}: each connection {e schedules} sends at a fixed rate
      (requests/second, per connection) from its start time and sleeps
      until each slot — approximates an open arrival process, so
      latencies include any queueing the server builds up. (Sends
      still wait for the previous reply; a saturated server degrades
      toward closed-loop behaviour rather than unbounded pipelining.)

    The summary aggregates client-side observations: outcome counts by
    error code, end-to-end latency percentiles
    ({!Tt_util.Statistics.quantile}), throughput over the wall of the
    whole run, and the order-insensitive {!Protocol.value_digest} of
    every job result received — comparable against a [treetrav batch]
    run of the same entries. *)

type mode =
  | Closed
  | Open of float  (** Target request rate per connection, requests/s. *)

type config = {
  host : string;
  port : int;
  connections : int;  (** Client domains (≥ 1). *)
  requests : int;  (** Total solve requests across all connections. *)
  seed : int;
  entries : string array;  (** Manifest entries to draw from (≥ 1). *)
  timeout_s : float option;  (** Per-request deadline sent to the server. *)
  mode : mode;
}

val default_config : config
(** 2 connections, 100 requests, seed 42, {!default_entries}, closed
    loop, port 0 (caller must override the port). *)

val default_entries : string array
(** A small mixed workload: generated grids / banded / random sources
    across the solver collection, sized to stay fast per request. *)

type summary = {
  requests : int;  (** Requests actually issued. *)
  ok : int;
  errors : (string * int) list;  (** Error-code → count, sorted. *)
  transport_errors : int;  (** Connection-level failures (EOF, bad frame). *)
  jobs : int;  (** Job reports received across all ok replies. *)
  wall_s : float;
  throughput_rps : float;
  mean_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  max_s : float;  (** Client-side latency stats; [nan]/0 when no samples. *)
  value_digest : string option;
      (** {!Protocol.value_digest} over all received job results; [None]
          when no solve succeeded. *)
}

val run : config -> summary
(** @raise Invalid_argument on a non-positive [connections]/[requests]
    or empty [entries]. *)

val summary_to_string : summary -> string
(** Multi-line human-readable rendering (the [treetrav loadgen]
    output). *)
