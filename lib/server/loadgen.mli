(** Deterministic load generator for [treetrav serve].

    [connections] client domains each run one resilient
    {!Client.session} and issue their share of [requests] solve
    frames, drawing manifest entries from [entries] with a
    per-connection {!Tt_util.Rng} stream derived from [seed] — so a
    run is reproducible given the same seed and server state, and two
    connections never share an RNG. Every request carries a
    deterministic idempotency key (["<tag><seed>-c<conn>-r<i>"]), so
    retries after lost replies are deduplicated server-side.

    Two pacing modes:
    - {!Closed}: each connection keeps exactly one request outstanding
      (fire the next as soon as the reply lands) — measures the
      server's sustainable closed-loop throughput;
    - {!Open}: each connection {e schedules} sends at a fixed rate
      (requests/second, per connection) from its start time and sleeps
      until each slot — approximates an open arrival process, so
      latencies include any queueing the server builds up. (Sends
      still wait for the previous reply; a saturated server degrades
      toward closed-loop behaviour rather than unbounded pipelining.)

    {b Chaos mode.} With [chaos = Some faults], the run interposes a
    {!Netfault} proxy between the clients and the server: connections
    get dropped, stalled, truncated and split per the seeded spec, the
    sessions retry through it on [retry], and the summary carries the
    proxy's injection counters. The headline invariant — asserted by
    [make chaos-net] — is that a chaos run's {!summary.value_digest}
    equals the clean run's: faults change latency, never results.

    The summary aggregates client-side observations: outcome counts by
    error code, end-to-end latency percentiles
    ({!Tt_util.Statistics.quantile}), throughput over the wall of the
    whole run, and the order-insensitive {!Protocol.value_digest} of
    every job result received — comparable against a [treetrav batch]
    run of the same entries. *)

type mode =
  | Closed
  | Open of float  (** Target request rate per connection, requests/s. *)

(* A pluggable per-connection solve path; see {!config.solver}. *)
type solver = {
  sv_solve :
    ?timeout_s:float ->
    ?priority:Protocol.priority ->
    idem:string ->
    string ->
    (Protocol.job_report list, Client.failure) result;
  sv_close : unit -> unit;
}

type config = {
  host : string;
  port : int;
  connections : int;  (** Client domains (≥ 1). *)
  requests : int;  (** Total solve requests across all connections. *)
  seed : int;
  entries : string array;  (** Manifest entries to draw from (≥ 1). *)
  timeout_s : float option;  (** Per-request deadline sent to the server. *)
  mode : mode;
  batch_share : float;
      (** Fraction of requests sent [priority=batch] (default 0), drawn
          per request by a pure hash gate on (seed, connection, index) —
          independent of the entry RNG stream, so turning it on changes
          priorities without changing which entries are drawn. *)
  retry : Tt_engine.Retry.policy;
      (** Session retry policy (default {!Tt_engine.Retry.none}). *)
  read_timeout_s : float;  (** Per-reply read deadline (default 30 s). *)
  connect_timeout_s : float option;
      (** Bound on connection establishment (default [None] =
          blocking); see {!Client.connect}. *)
  chaos : Netfault.faults option;
      (** Interpose a fault proxy with this spec (default [None]). *)
  tag : string;
      (** Idempotency-key namespace (default ["lg"]). Two runs against
          the same server must use distinct tags, or the second is
          answered from the first's replay cache. *)
  solver : (tag:string -> conn:int -> solver) option;
      (** Replace the default {!Client.session} path with a custom one
          per connection — the shard tier passes a ring-routing client
          here ([loadgen --cluster]). Incompatible with [chaos] (the
          proxy fronts one endpoint; custom solvers route elsewhere). *)
}

val default_config : config
(** 2 connections, 100 requests, seed 42, {!default_entries}, closed
    loop, no retries, no chaos, port 0 (caller must override the
    port). *)

val default_entries : string array
(** A small mixed workload: generated grids / banded / random sources
    across the solver collection, sized to stay fast per request. *)

val sched_entries : string array
(** Scheduling-tier traffic: [par-schedule] jobs across all three
    algorithms plus [pareto] sweeps, on the same small sources. *)

val mixes : (string * string array) list
(** The named entry mixes [loadgen --mix] offers: ["core"]
    ({!default_entries}), ["sched"] ({!sched_entries}) and ["all"]
    (their concatenation) — the latter is what the cluster/chaos gates
    run so scheduling traffic crosses the wire paths too. *)

val entries_of_mix : string -> string array option
(** Look a mix up by name. *)

type class_stats = {
  issued : int;
  ok : int;
  shed : int;
      (** Typed [overloaded] / [deadline_exceeded] refusals — the two
          codes overload control sheds with. *)
}

type summary = {
  requests : int;  (** Requests actually issued. *)
  ok : int;
  by_priority : (string * class_stats) list;
      (** Per-priority goodput/shed accounting, sorted by priority
          name. *)
  errors : (string * int) list;  (** Error-code → count, sorted. *)
  transport_errors : int;
      (** Requests whose whole retry schedule was eaten by
          connection-level failures (EOF, reset, read timeout). *)
  transport_breakdown : (string * int) list;
      (** The same failures bucketed by kind ([connect_refused],
          [timeout], [conn_reset], [eof], [other]) — a failover run
          shows {e which} failures occurred, not just how many. *)
  jobs : int;  (** Job reports received across all ok replies. *)
  job_kinds : (string * int) list;
      (** Per-kind job counts ([memory], [io], [sched], [par-sched],
          [pareto], [error]), sorted — the summary's evidence that a
          mix actually exercised every family. *)
  wall_s : float;
  throughput_rps : float;
  mean_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  max_s : float;  (** Client-side latency stats; [nan]/0 when no samples. *)
  value_digest : string option;
      (** {!Protocol.value_digest} over all received job results; [None]
          when no solve succeeded. *)
  proxy : Netfault.stats option;
      (** The fault proxy's counters ([None] unless [chaos] was set). *)
}

val run : config -> summary
(** @raise Invalid_argument on a non-positive [connections]/[requests],
    empty [entries], or [chaos] combined with [solver]. *)

val summary_to_string : summary -> string
(** Multi-line human-readable rendering (the [treetrav loadgen]
    output). *)
