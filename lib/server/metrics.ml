module Json = Tt_engine.Telemetry.Json

type t = {
  mu : Mutex.t;
  ring : float array;  (* recent solve latencies, seconds *)
  mutable conns_opened : int;
  mutable conns_closed : int;
  mutable req_solve : int;
  mutable req_stats : int;
  mutable req_ping : int;
  mutable req_shutdown : int;
  mutable req_peek : int;
  mutable req_health : int;
  mutable ok : int;
  errors : (string, int) Hashtbl.t;
  mutable jobs : int;
  mutable job_errors : int;
  mutable job_cache_hits : int;
  mutable job_wall_s : float;
  mutable lat_count : int;
  mutable lat_sum : float;
  mutable lat_max : float;
  mutable worker_restarts : int;
  mutable idle_evictions : int;
  mutable replay_hits : int;
  mutable write_overflows : int;
  sheds : (string * string, int) Hashtbl.t;  (* (reason, priority) *)
  mutable deadline_exceeded : int;
  mutable admission_queue_depth : int;
  mutable admission_admitted : int;
  mutable admission_limit : int;
}

let create ?(latency_window = 4096) () =
  if latency_window < 1 then invalid_arg "Metrics.create: latency_window < 1";
  { mu = Mutex.create ();
    ring = Array.make latency_window 0.;
    conns_opened = 0;
    conns_closed = 0;
    req_solve = 0;
    req_stats = 0;
    req_ping = 0;
    req_shutdown = 0;
    req_peek = 0;
    req_health = 0;
    ok = 0;
    errors = Hashtbl.create 8;
    jobs = 0;
    job_errors = 0;
    job_cache_hits = 0;
    job_wall_s = 0.;
    lat_count = 0;
    lat_sum = 0.;
    lat_max = 0.;
    worker_restarts = 0;
    idle_evictions = 0;
    replay_hits = 0;
    write_overflows = 0;
    sheds = Hashtbl.create 8;
    deadline_exceeded = 0;
    admission_queue_depth = 0;
    admission_admitted = 0;
    admission_limit = 0
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let connection_opened t = locked t (fun () -> t.conns_opened <- t.conns_opened + 1)
let connection_closed t = locked t (fun () -> t.conns_closed <- t.conns_closed + 1)

let request t op =
  locked t (fun () ->
      match op with
      | `Solve -> t.req_solve <- t.req_solve + 1
      | `Stats -> t.req_stats <- t.req_stats + 1
      | `Ping -> t.req_ping <- t.req_ping + 1
      | `Shutdown -> t.req_shutdown <- t.req_shutdown + 1
      | `Peek -> t.req_peek <- t.req_peek + 1
      | `Health -> t.req_health <- t.req_health + 1)

let response_ok t = locked t (fun () -> t.ok <- t.ok + 1)

let response_error t ~code =
  locked t (fun () ->
      Hashtbl.replace t.errors code
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.errors code)))

let observe_solve t ~latency_s =
  locked t (fun () ->
      t.ring.(t.lat_count mod Array.length t.ring) <- latency_s;
      t.lat_count <- t.lat_count + 1;
      t.lat_sum <- t.lat_sum +. latency_s;
      if latency_s > t.lat_max then t.lat_max <- latency_s)

let shed t ~reason ~priority =
  locked t (fun () ->
      let k = (reason, priority) in
      Hashtbl.replace t.sheds k
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.sheds k)))

let deadline_exceeded t =
  locked t (fun () -> t.deadline_exceeded <- t.deadline_exceeded + 1)

let set_admission t ~queue_depth ~admitted ~limit =
  locked t (fun () ->
      t.admission_queue_depth <- queue_depth;
      t.admission_admitted <- admitted;
      t.admission_limit <- limit)

let worker_restart t = locked t (fun () -> t.worker_restarts <- t.worker_restarts + 1)
let idle_eviction t = locked t (fun () -> t.idle_evictions <- t.idle_evictions + 1)
let replay_hit t = locked t (fun () -> t.replay_hits <- t.replay_hits + 1)
let write_overflow t = locked t (fun () -> t.write_overflows <- t.write_overflows + 1)

let job t ~cache_hit ~error ~wall_s =
  locked t (fun () ->
      t.jobs <- t.jobs + 1;
      if error then t.job_errors <- t.job_errors + 1;
      if cache_hit then t.job_cache_hits <- t.job_cache_hits + 1;
      t.job_wall_s <- t.job_wall_s +. wall_s)

(* ----------------------------------------------------------- snapshot *)

type latency_summary = {
  count : int;
  window : int;
  mean_s : float;
  p50_s : float;
  p90_s : float;
  p95_s : float;
  p99_s : float;
  max_s : float;
}

type snapshot = {
  connections_opened : int;
  connections_active : int;
  requests_solve : int;
  requests_stats : int;
  requests_ping : int;
  requests_shutdown : int;
  requests_peek : int;
  requests_health : int;
  responses_ok : int;
  errors : (string * int) list;
  jobs : int;
  job_errors : int;
  job_cache_hits : int;
  job_wall_s : float;
  worker_restarts : int;
  idle_evictions : int;
  replay_hits : int;
  write_overflows : int;
  sheds : ((string * string) * int) list;
  deadline_exceeded : int;
  admission_queue_depth : int;
  admission_admitted : int;
  admission_limit : int;
  latency : latency_summary;
}

let snapshot t =
  locked t (fun () ->
      let window = min t.lat_count (Array.length t.ring) in
      let samples = Array.sub t.ring 0 window in
      let q p =
        if window = 0 then nan else Tt_util.Statistics.quantile samples p
      in
      { connections_opened = t.conns_opened;
        connections_active = t.conns_opened - t.conns_closed;
        requests_solve = t.req_solve;
        requests_stats = t.req_stats;
        requests_ping = t.req_ping;
        requests_shutdown = t.req_shutdown;
        requests_peek = t.req_peek;
        requests_health = t.req_health;
        responses_ok = t.ok;
        errors =
          List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.errors []);
        jobs = t.jobs;
        job_errors = t.job_errors;
        job_cache_hits = t.job_cache_hits;
        job_wall_s = t.job_wall_s;
        worker_restarts = t.worker_restarts;
        idle_evictions = t.idle_evictions;
        replay_hits = t.replay_hits;
        write_overflows = t.write_overflows;
        sheds =
          List.sort compare
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sheds []);
        deadline_exceeded = t.deadline_exceeded;
        admission_queue_depth = t.admission_queue_depth;
        admission_admitted = t.admission_admitted;
        admission_limit = t.admission_limit;
        latency =
          { count = t.lat_count;
            window;
            mean_s = (if t.lat_count = 0 then nan else t.lat_sum /. float_of_int t.lat_count);
            p50_s = q 0.5;
            p90_s = q 0.9;
            p95_s = q 0.95;
            p99_s = q 0.99;
            max_s = t.lat_max
          }
      })

let to_json s =
  Json.Obj
    [ ( "connections",
        Json.Obj
          [ ("opened", Json.Int s.connections_opened);
            ("active", Json.Int s.connections_active)
          ] );
      ( "requests",
        Json.Obj
          [ ("solve", Json.Int s.requests_solve);
            ("stats", Json.Int s.requests_stats);
            ("ping", Json.Int s.requests_ping);
            ("shutdown", Json.Int s.requests_shutdown);
            ("peek", Json.Int s.requests_peek);
            ("health", Json.Int s.requests_health)
          ] );
      ( "responses",
        Json.Obj
          [ ("ok", Json.Int s.responses_ok);
            ("errors", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.errors))
          ] );
      ( "jobs",
        Json.Obj
          [ ("total", Json.Int s.jobs);
            ("errors", Json.Int s.job_errors);
            ("cache_hits", Json.Int s.job_cache_hits);
            ("wall_s", Json.Float s.job_wall_s)
          ] );
      ( "resilience",
        Json.Obj
          [ ("worker_restarts", Json.Int s.worker_restarts);
            ("idle_evictions", Json.Int s.idle_evictions);
            ("replay_hits", Json.Int s.replay_hits);
            ("write_overflows", Json.Int s.write_overflows)
          ] );
      ( "overload",
        Json.Obj
          [ ( "sheds",
              Json.Obj
                (List.map
                   (fun ((reason, priority), v) ->
                     (reason ^ "/" ^ priority, Json.Int v))
                   s.sheds) );
            ("deadline_exceeded", Json.Int s.deadline_exceeded);
            ("queue_depth", Json.Int s.admission_queue_depth);
            ("admitted", Json.Int s.admission_admitted);
            ("limit", Json.Int s.admission_limit)
          ] );
      ( "latency",
        Json.Obj
          [ ("count", Json.Int s.latency.count);
            ("window", Json.Int s.latency.window);
            ("mean_s", Json.Float s.latency.mean_s);
            ("p50_s", Json.Float s.latency.p50_s);
            ("p90_s", Json.Float s.latency.p90_s);
            ("p95_s", Json.Float s.latency.p95_s);
            ("p99_s", Json.Float s.latency.p99_s);
            ("max_s", Json.Float s.latency.max_s)
          ] )
    ]

let to_prometheus s =
  let b = Buffer.create 1024 in
  let counter name ?(labels = "") v =
    Buffer.add_string b (Printf.sprintf "tt_server_%s%s %d\n" name labels v)  in
  let gauge name ?(labels = "") v =
    Buffer.add_string b
      (Printf.sprintf "tt_server_%s%s %s\n" name labels
         (if Float.is_finite v then Printf.sprintf "%.9g" v else "NaN"))
  in
  let typ name kind =
    Buffer.add_string b (Printf.sprintf "# TYPE tt_server_%s %s\n" name kind)
  in
  typ "connections_opened_total" "counter";
  counter "connections_opened_total" s.connections_opened;
  typ "connections_active" "gauge";
  counter "connections_active" s.connections_active;
  typ "requests_total" "counter";
  counter "requests_total" ~labels:{|{op="solve"}|} s.requests_solve;
  counter "requests_total" ~labels:{|{op="stats"}|} s.requests_stats;
  counter "requests_total" ~labels:{|{op="ping"}|} s.requests_ping;
  counter "requests_total" ~labels:{|{op="shutdown"}|} s.requests_shutdown;
  counter "requests_total" ~labels:{|{op="peek"}|} s.requests_peek;
  counter "requests_total" ~labels:{|{op="health"}|} s.requests_health;
  typ "responses_ok_total" "counter";
  counter "responses_ok_total" s.responses_ok;
  typ "responses_error_total" "counter";
  List.iter
    (fun (code, v) ->
      counter "responses_error_total"
        ~labels:(Printf.sprintf {|{code=%S}|} code)
        v)
    s.errors;
  typ "jobs_total" "counter";
  counter "jobs_total" s.jobs;
  typ "job_errors_total" "counter";
  counter "job_errors_total" s.job_errors;
  typ "job_cache_hits_total" "counter";
  counter "job_cache_hits_total" s.job_cache_hits;
  typ "job_wall_seconds_total" "counter";
  gauge "job_wall_seconds_total" s.job_wall_s;
  typ "worker_restarts_total" "counter";
  counter "worker_restarts_total" s.worker_restarts;
  typ "idle_evictions_total" "counter";
  counter "idle_evictions_total" s.idle_evictions;
  typ "replay_hits_total" "counter";
  counter "replay_hits_total" s.replay_hits;
  typ "write_overflows_total" "counter";
  counter "write_overflows_total" s.write_overflows;
  typ "sheds_total" "counter";
  List.iter
    (fun ((reason, priority), v) ->
      counter "sheds_total"
        ~labels:(Printf.sprintf {|{reason=%S,priority=%S}|} reason priority)
        v)
    s.sheds;
  typ "deadline_exceeded_total" "counter";
  counter "deadline_exceeded_total" s.deadline_exceeded;
  typ "admission_queue_depth" "gauge";
  counter "admission_queue_depth" s.admission_queue_depth;
  typ "admission_admitted" "gauge";
  counter "admission_admitted" s.admission_admitted;
  typ "admission_limit" "gauge";
  counter "admission_limit" s.admission_limit;
  typ "solve_latency_seconds" "summary";
  List.iter
    (fun (q, v) ->
      gauge "solve_latency_seconds" ~labels:(Printf.sprintf {|{quantile="%s"}|} q) v)
    [ ("0.5", s.latency.p50_s);
      ("0.9", s.latency.p90_s);
      ("0.95", s.latency.p95_s);
      ("0.99", s.latency.p99_s)
    ];
  gauge "solve_latency_seconds_sum"
    (if s.latency.count = 0 then 0. else s.latency.mean_s *. float_of_int s.latency.count);
  counter "solve_latency_seconds_count" s.latency.count;
  Buffer.contents b
