(* Bounded idempotency replay cache: key -> completed reply body.

   Keys are client-chosen and inserted exactly once (on first
   completion), so plain FIFO eviction is as good as LRU here and
   needs no recency bookkeeping: the ring holds the insertion order,
   the table holds the bodies. Domain-safe under one mutex — lookups
   happen on the I/O domain, insertions on whichever worker completed
   the solve. *)

type t = {
  mu : Mutex.t;
  capacity : int;
  tbl : (string, Protocol.body) Hashtbl.t;
  order : string Queue.t;  (* insertion order, oldest first *)
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Replay.create: capacity < 1";
  { mu = Mutex.create ();
    capacity;
    tbl = Hashtbl.create (min capacity 64);
    order = Queue.create ();
    evictions = 0
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let capacity t = t.capacity
let length t = locked t (fun () -> Hashtbl.length t.tbl)
let evictions t = locked t (fun () -> t.evictions)

let find t key = locked t (fun () -> Hashtbl.find_opt t.tbl key)

let put t key body =
  locked t (fun () ->
      if Hashtbl.mem t.tbl key then
        (* Concurrent duplicate completion (both attempts were in
           flight); the bodies are value-equal, keep the first. *)
        ()
      else begin
        if Hashtbl.length t.tbl >= t.capacity then begin
          let oldest = Queue.pop t.order in
          Hashtbl.remove t.tbl oldest;
          t.evictions <- t.evictions + 1
        end;
        Hashtbl.replace t.tbl key body;
        Queue.push key t.order
      end)
