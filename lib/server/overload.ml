(* Pure overload-control decisions: AIMD concurrency limiting,
   CoDel-style deadline-aware shedding, and budget-aware hedging. Every
   function here is a pure function of its arguments (plus, for the
   hedge gate, a seed) — no wall clock, no hidden state — so the server
   and router stay deterministic under a fake clock and every behaviour
   is property-testable. *)

(* ------------------------------------------------------ AIMD limiter *)

module Limiter = struct
  type t = {
    mutable limit : float;
    min_limit : float;
    max_limit : float;
    increase : float;  (* additive, per success *)
    decrease : float;  (* multiplicative, per loss *)
  }

  let create ?(min_limit = 1.) ?(increase = 1.) ?(decrease = 0.7) ~initial
      ~max_limit () =
    if min_limit < 1. then invalid_arg "Limiter.create: min_limit < 1";
    if decrease <= 0. || decrease >= 1. then
      invalid_arg "Limiter.create: decrease not in (0, 1)";
    if increase <= 0. then invalid_arg "Limiter.create: increase <= 0";
    let max_limit = Float.max max_limit min_limit in
    let initial = Float.min max_limit (Float.max min_limit initial) in
    { limit = initial; min_limit; max_limit; increase; decrease }

  let limit t = int_of_float t.limit

  (* Additive increase, scaled down by the current limit so the window
     grows by ~1 slot per [limit] successes (TCP-style congestion
     avoidance), capped at [max_limit]. *)
  let on_success t =
    t.limit <-
      Float.min t.max_limit (t.limit +. (t.increase /. Float.max 1. t.limit))

  (* Multiplicative decrease on a loss signal (deadline blown, worker
     wedged), floored at [min_limit] so the server always admits
     something and can probe its way back up. *)
  let on_loss t =
    t.limit <- Float.max t.min_limit (t.limit *. t.decrease)
end

(* ------------------------------------------------- exponential average *)

let ema ~alpha ~prev x =
  match prev with None -> x | Some p -> p +. (alpha *. (x -. p))

(* ----------------------------------------------------------- shedding *)

type shed_reason = Limit | Brownout | Queue_wait

let shed_reason_to_string = function
  | Limit -> "limit"
  | Brownout -> "brownout"
  | Queue_wait -> "queue_wait"

(* Expected wait before a request admitted now starts running: the
   backlog ahead of it divided by service throughput. A zero/unknown
   service-time estimate means no waiting is predicted. *)
let queue_wait_estimate ~depth ~ema_service_s ~workers =
  if depth <= 0 || ema_service_s <= 0. then 0.
  else float_of_int depth *. ema_service_s /. float_of_int (max 1 workers)

(* The shed decision, checked at admission time in order of
   usefulness-to-the-client:

   - [Queue_wait] (CoDel-style): the queue-wait estimate already
     exceeds the request's remaining budget, so admitting it only
     manufactures a deadline_exceeded later — refuse now. Monotone in
     [est_wait_s]: once a given (remaining, priority) sheds at wait w,
     it sheds at every w' >= w.
   - [Brownout]: batch traffic sheds once in-flight work crosses
     [batch_headroom] of the limit, reserving the top of the window for
     interactive traffic.
   - [Limit]: the AIMD window is full.

   Returns [None] to admit. *)
let shed_decision ~limit ~admitted ~batch_headroom ~est_wait_s ~remaining_s
    ~(priority : Protocol.priority) =
  match remaining_s with
  | Some r when est_wait_s > r -> Some Queue_wait
  | _ ->
      if
        priority = Protocol.Batch
        && float_of_int admitted
           >= batch_headroom *. float_of_int (max 1 limit)
      then Some Brownout
      else if admitted >= max 1 limit then Some Limit
      else None

(* ------------------------------------------------------------ hedging *)

(* A hedge is only worth firing when the remaining budget could still
   cover the successor's observed RTT — otherwise the hedge is doomed
   work for the successor. Unknown budget (no deadline) always allows. *)
let should_hedge ~remaining_s ~successor_rtt_s =
  match remaining_s with
  | None -> true
  | Some r -> r > successor_rtt_s

(* Deterministic per-key hedge gate: a pure function of (seed, key)
   admitting roughly [ratio] of candidates. Keeps hedge volume bounded
   and replayable — the same seeded run hedges the same requests. *)
let hedge_gate ~seed ~key ~ratio =
  if ratio >= 1. then true
  else if ratio <= 0. then false
  else begin
    let h = Digest.string (Printf.sprintf "hedge-%d-%s" seed key) in
    let v = ref 0 in
    String.iter (fun c -> v := ((!v * 31) + Char.code c) land 0xFFFFFF) h;
    float_of_int !v /. float_of_int 0xFFFFFF < ratio
  end

(* ------------------------------------------------------ RTT estimator *)

module Rtt = struct
  (* Windowed quantile estimate over the last [cap] observations. Small
     (64 samples) and exact: sorting 64 floats per decision is cheaper
     than a streaming sketch and has no tuning parameters. *)
  type t = {
    samples : float array;
    mutable n : int;  (* total observations ever *)
    cap : int;
  }

  let create ?(cap = 64) () =
    { samples = Array.make (max 1 cap) 0.; n = 0; cap = max 1 cap }

  let observe t x =
    t.samples.(t.n mod t.cap) <- x;
    t.n <- t.n + 1

  let count t = min t.n t.cap

  (* Quantile of the current window, or [None] below [min_samples] —
     hedging on one or two observations would fire on noise. *)
  let quantile ?(min_samples = 8) t q =
    let n = count t in
    if n < min_samples then None
    else begin
      let a = Array.sub t.samples 0 n in
      Array.sort compare a;
      let idx =
        int_of_float (Float.of_int (n - 1) *. Float.max 0. (Float.min 1. q))
      in
      Some a.(idx)
    end
end
