(** Server-side counters and latency percentiles.

    All mutators are domain-safe (one mutex) and cheap enough for the
    per-request hot path. Latencies land in a fixed ring holding the
    most recent [latency_window] solve latencies — a long-lived server
    keeps constant memory, and the percentiles describe {e recent}
    behaviour, which is what an operator watches. Percentiles come from
    {!Tt_util.Statistics.quantile} over a snapshot of the ring; counts
    and sums cover the whole lifetime.

    Two dump formats: {!to_prometheus} (text exposition, one
    [tt_server_*] family per counter) and {!to_json} (the [stats.
    metrics] object of a [STATS] reply — see DESIGN.md for the
    schema). *)

type t

val create : ?latency_window:int -> unit -> t
(** [latency_window] defaults to 4096 samples.
    @raise Invalid_argument when [latency_window < 1]. *)

(* ----------------------------------------------------------- mutators *)

val connection_opened : t -> unit
val connection_closed : t -> unit

val request : t -> [ `Solve | `Stats | `Ping | `Shutdown | `Peek | `Health ] -> unit
(** One received, well-formed request frame. *)

val response_ok : t -> unit

val response_error : t -> code:string -> unit
(** One error reply, keyed by its protocol error code. *)

val observe_solve : t -> latency_s:float -> unit
(** Completion of one [solve] request (ok or not): latency from frame
    receipt to reply written. *)

val job : t -> cache_hit:bool -> error:bool -> wall_s:float -> unit
(** One engine job finished on behalf of a request (the
    {!Tt_engine.Executor} [on_job] hook). *)

val worker_restart : t -> unit
(** One crashed or wedged worker domain detected and replaced. *)

val idle_eviction : t -> unit
(** One connection evicted for exceeding the idle timeout. *)

val replay_hit : t -> unit
(** One solve answered from the idempotency replay cache without
    re-execution. *)

val write_overflow : t -> unit
(** One connection dropped because its reply backlog exceeded the
    write-buffer cap (a reader too slow to keep up). *)

val shed : t -> reason:string -> priority:string -> unit
(** One request shed at admission time, keyed by
    ({!Overload.shed_reason_to_string}, {!Protocol.priority_to_string})
    — the [tt_server_sheds_total{reason,priority}] series. *)

val deadline_exceeded : t -> unit
(** One request refused with [deadline_exceeded] (at admission, at
    dequeue, or after execution outran the budget). *)

val set_admission : t -> queue_depth:int -> admitted:int -> limit:int -> unit
(** Update the admission gauges: current queue depth, the number of
    requests admitted but not yet replied (queued + executing), and the
    current AIMD concurrency limit. *)

(* ----------------------------------------------------------- snapshot *)

type latency_summary = {
  count : int;  (** Lifetime solve completions. *)
  window : int;  (** Samples the percentiles are computed over. *)
  mean_s : float;  (** Lifetime mean; [nan] when count = 0. *)
  p50_s : float;
  p90_s : float;
  p95_s : float;
  p99_s : float;  (** Window percentiles; [nan] when empty. *)
  max_s : float;  (** Lifetime maximum; 0 when count = 0. *)
}

type snapshot = {
  connections_opened : int;
  connections_active : int;
  requests_solve : int;
  requests_stats : int;
  requests_ping : int;
  requests_shutdown : int;
  requests_peek : int;
  requests_health : int;
  responses_ok : int;
  errors : (string * int) list;  (** By code, sorted by code. *)
  jobs : int;
  job_errors : int;
  job_cache_hits : int;
  job_wall_s : float;
  worker_restarts : int;
  idle_evictions : int;
  replay_hits : int;
  write_overflows : int;
  sheds : ((string * string) * int) list;
      (** By (reason, priority), sorted. *)
  deadline_exceeded : int;
  admission_queue_depth : int;  (** Gauge: last reported depth. *)
  admission_admitted : int;  (** Gauge: admitted but not yet replied. *)
  admission_limit : int;  (** Gauge: current AIMD limit. *)
  latency : latency_summary;
}

val snapshot : t -> snapshot

val to_json : snapshot -> Tt_engine.Telemetry.Json.t

val to_prometheus : snapshot -> string
(** Prometheus text exposition ([# TYPE] comments included); quantile
    gauges are labelled [{quantile="0.5"}] etc. *)
