(** Pure overload-control decisions: AIMD concurrency limiting,
    CoDel-style deadline-aware shedding, and budget-aware hedging.

    Everything here is a pure function of its explicit arguments (plus
    a seed for the hedge gate) — no wall clock, no global state — so
    the server's and router's overload behaviour is a deterministic
    function of (seed, clock, observations), property-testable on a
    fake clock, and the chaos-overload gate replays byte-for-byte. *)

(** Adaptive concurrency window, TCP-style: additive increase on
    success ([+increase/limit] per success, so the window grows ~1 slot
    per window of successes), multiplicative decrease on a loss signal
    ([*decrease]), never below [min_limit] (>= 1) and never above
    [max_limit]. The only mutable state is the current window. *)
module Limiter : sig
  type t

  val create :
    ?min_limit:float ->
    ?increase:float ->
    ?decrease:float ->
    initial:float ->
    max_limit:float ->
    unit ->
    t
  (** Defaults: [min_limit] 1, [increase] 1, [decrease] 0.7. [initial]
      is clamped into [min_limit, max_limit].
      @raise Invalid_argument when [min_limit < 1], [increase <= 0], or
      [decrease] outside (0, 1). *)

  val limit : t -> int
  (** Current window, truncated to an integer (>= 1 by construction). *)

  val on_success : t -> unit
  val on_loss : t -> unit
end

val ema : alpha:float -> prev:float option -> float -> float
(** One exponential-moving-average step; [prev = None] seeds with the
    observation itself. *)

type shed_reason = Limit | Brownout | Queue_wait

val shed_reason_to_string : shed_reason -> string
(** ["limit"] / ["brownout"] / ["queue_wait"] — the [reason] label of
    [tt_server_sheds_total]. *)

val queue_wait_estimate :
  depth:int -> ema_service_s:float -> workers:int -> float
(** Expected wait before a request admitted now starts running:
    [depth * ema_service_s / workers]; 0 when the queue is empty or no
    service-time estimate exists yet. *)

val shed_decision :
  limit:int ->
  admitted:int ->
  batch_headroom:float ->
  est_wait_s:float ->
  remaining_s:float option ->
  priority:Protocol.priority ->
  shed_reason option
(** The admission-time shed decision, [None] to admit. Checked in
    order: {!Queue_wait} when [est_wait_s] exceeds the remaining
    deadline budget (CoDel-style — admitting would only manufacture a
    [deadline_exceeded] later; monotone in [est_wait_s]); {!Brownout}
    when a {!Protocol.Batch} request arrives with in-flight work at or
    past [batch_headroom * limit] (batch sheds first, reserving window
    headroom for interactive); {!Limit} when [admitted >= limit]. *)

val should_hedge : remaining_s:float option -> successor_rtt_s:float -> bool
(** A hedge never fires when the remaining budget cannot cover the
    successor's observed RTT — the hedge would be doomed work. A
    request without a deadline always qualifies. *)

val hedge_gate : seed:int -> key:string -> ratio:float -> bool
(** Deterministic per-key hedge admission: a pure function of
    ([seed], [key]) passing roughly [ratio] of keys, so hedge volume is
    bounded and a seeded run hedges the same requests every replay. *)

(** Windowed RTT quantile estimator (last [cap] observations, default
    64). Exact over its window; refuses to estimate below a minimum
    sample count so hedges never fire on noise. *)
module Rtt : sig
  type t

  val create : ?cap:int -> unit -> t
  val observe : t -> float -> unit

  val count : t -> int
  (** Observations currently in the window. *)

  val quantile : ?min_samples:int -> t -> float -> float option
  (** [quantile t 0.95] is the p95 of the window, or [None] while fewer
      than [min_samples] (default 8) observations exist. *)
end
