module P = Protocol
module Json = Tt_engine.Telemetry.Json
module Job = Tt_engine.Job
module Executor = Tt_engine.Executor

type config = {
  host : string;
  port : int;
  workers : int;
  queue_capacity : int;
  max_deadline_s : float;
}

let default_config =
  { host = "127.0.0.1"; port = 0; workers = 2; queue_capacity = 64; max_deadline_s = 30. }

(* One accepted connection. The I/O domain owns the read side ([pending]
   is only touched there); replies may come from any domain and are
   serialized by [wmu]. [inflight] counts admitted-but-unreplied solve
   requests; the connection's fd is closed only by the I/O domain, and
   only once [eof && inflight = 0] — so no domain ever writes to a
   closed descriptor. [eof] only ever flips to [true] (a benign
   monotonic race between reader and writers). *)
type conn = {
  fd : Unix.file_descr;
  wmu : Mutex.t;
  mutable pending : string;
  mutable inflight : int;
  mutable eof : bool;
}

type work = {
  wconn : conn;
  req_id : string;
  jobs : Job.t list;
  deadline : float;  (* absolute, seconds *)
  received : float;
}

type t = {
  config : config;
  cache : Job.outcome Tt_engine.Cache.t;
  retry : Tt_engine.Retry.policy;
  telemetry : Tt_engine.Telemetry.t option;
  job_timeout : float option;
  metrics : Metrics.t;
  queue : work Admission.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  started : float;
  mu : Mutex.t;
  cond : Condition.t;
  mutable conns : conn list;
  mutable running : bool;
  mutable stopped : bool;
  mutable runner : unit Domain.t option;  (* set by [start] *)
}

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> failwith ("cannot resolve host " ^ host))

let create ?(config = default_config) ?cache ?(retry = Tt_engine.Retry.none)
    ?telemetry ?job_timeout () =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (resolve config.host, config.port) in
  (try
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 64
   with e ->
     Unix.close listen_fd;
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  { config = { config with workers = max 1 config.workers };
    cache = (match cache with Some c -> c | None -> Tt_engine.Cache.create ());
    retry;
    telemetry;
    job_timeout;
    metrics = Metrics.create ();
    queue = Admission.create ~capacity:config.queue_capacity;
    listen_fd;
    bound_port;
    wake_r;
    wake_w;
    stop = Atomic.make false;
    started = Unix.gettimeofday ();
    mu = Mutex.create ();
    cond = Condition.create ();
    conns = [];
    running = false;
    stopped = false;
    runner = None
  }

let port t = t.bound_port
let metrics t = t.metrics

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let wake t =
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EBADF), _, _) -> ()

let request_shutdown t =
  Atomic.set t.stop true;
  wake t

let stats_json t =
  Json.Obj
    [ ( "server",
        Json.Obj
          [ ("proto_version", Json.Int P.version);
            ("workers", Json.Int t.config.workers);
            ("queue_capacity", Json.Int (Admission.capacity t.queue));
            ("queue_depth", Json.Int (Admission.length t.queue));
            ("draining", Json.Bool (Atomic.get t.stop));
            ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started))
          ] );
      ("metrics", Metrics.to_json (Metrics.snapshot t.metrics))
    ]

(* ----------------------------------------------------------- replies *)

let write_all conn line =
  let len = String.length line in
  Mutex.lock conn.wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wmu)
    (fun () ->
      try
        let off = ref 0 in
        while !off < len do
          off := !off + Unix.write_substring conn.fd line !off (len - !off)
        done
      with Unix.Unix_error _ ->
        (* Peer went away mid-reply; the I/O domain reaps the
           connection once its inflight count drains. *)
        conn.eof <- true)

let reply t conn req_id body =
  (match body with
  | P.Refused { code; _ } ->
      Metrics.response_error t.metrics ~code:(P.error_code_to_string code)
  | _ -> Metrics.response_ok t.metrics);
  write_all conn (P.encode_response { P.req_id; body } ^ "\n")

(* ------------------------------------------------------------ workers *)

let job_reports reports =
  Array.to_list
    (Array.map
       (fun (r : Executor.report) ->
         { P.job_id = Job.id r.job;
           label = r.job.Job.label;
           spec = Job.spec_to_string r.job.Job.spec;
           result = r.result;
           cache_hit = r.cache_hit;
           wall_s = r.wall
         })
       reports)

let worker t =
  let rec loop () =
    match Admission.pop t.queue with
    | None -> ()
    | Some w ->
        let now = Unix.gettimeofday () in
        let body =
          if now >= w.deadline then
            P.Refused
              { code = P.Deadline_exceeded;
                msg = "deadline passed while queued"
              }
          else
            (* Per-request executor over the shared cache/retry stack:
               one domain (this one), ambient cancel = the request
               deadline. *)
            let cancel =
              Tt_util.Cancel.create ~deadline_after:(w.deadline -. now) ()
            in
            let exec =
              Executor.create ~domains:1 ~cache:t.cache ~retry:t.retry
                ?telemetry:t.telemetry ?timeout:t.job_timeout ~cancel
                ~on_job:(fun ~job:_ ~result ~wall ~cache_hit ->
                  Metrics.job t.metrics ~cache_hit
                    ~error:(Result.is_error result) ~wall_s:wall)
                ()
            in
            match Executor.run_batch exec w.jobs with
            | reports, _ -> P.Results (job_reports reports)
            | exception e ->
                P.Refused { code = P.Internal; msg = Printexc.to_string e }
        in
        (* Record the latency before the reply hits the wire: a client may
           issue STATS the instant it reads this response, and the snapshot
           it gets back must already account for it. *)
        Metrics.observe_solve t.metrics
          ~latency_s:(Unix.gettimeofday () -. w.received);
        reply t w.wconn (Some w.req_id) body;
        locked t (fun () -> w.wconn.inflight <- w.wconn.inflight - 1);
        wake t;
        loop ()
  in
  loop ()

(* ----------------------------------------------------------- frames *)

let handle_solve t conn ~id ~entry ~timeout_s ~received =
  if Atomic.get t.stop then begin
    Metrics.observe_solve t.metrics
      ~latency_s:(Unix.gettimeofday () -. received);
    reply t conn (Some id)
      (P.Refused { code = P.Shutting_down; msg = "server is draining" })
  end
  else
    match Tt_engine.Manifest.parse entry with
    | Error e ->
        Metrics.observe_solve t.metrics
          ~latency_s:(Unix.gettimeofday () -. received);
        reply t conn (Some id) (P.Refused { code = P.Bad_request; msg = e })
    | Ok [] ->
        Metrics.observe_solve t.metrics
          ~latency_s:(Unix.gettimeofday () -. received);
        reply t conn (Some id)
          (P.Refused { code = P.Bad_request; msg = "entry contains no jobs" })
    | Ok jobs ->
        let budget =
          match timeout_s with
          | Some s -> Float.max 0. (Float.min s t.config.max_deadline_s)
          | None -> t.config.max_deadline_s
        in
        let w =
          { wconn = conn;
            req_id = id;
            jobs;
            deadline = received +. budget;
            received
          }
        in
        (* Count the request in-flight before exposing it to workers —
           a worker may pop, reply and decrement before try_push even
           returns. *)
        locked t (fun () -> conn.inflight <- conn.inflight + 1);
        if not (Admission.try_push t.queue w) then begin
          locked t (fun () -> conn.inflight <- conn.inflight - 1);
          Metrics.observe_solve t.metrics
            ~latency_s:(Unix.gettimeofday () -. received);
          reply t conn (Some id)
            (P.Refused
               { code = P.Overloaded;
                 msg =
                   Printf.sprintf "admission queue full (capacity %d)"
                     (Admission.capacity t.queue)
               })
        end

let handle_line t conn line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if line = "" then ()
  else begin
    let received = Unix.gettimeofday () in
    match P.decode_request line with
    | Error (id, code, msg) ->
        reply t conn id (P.Refused { code; msg })
    | Ok { P.id; op = P.Ping } ->
        Metrics.request t.metrics `Ping;
        reply t conn (Some id) P.Pong
    | Ok { P.id; op = P.Stats } ->
        Metrics.request t.metrics `Stats;
        reply t conn (Some id) (P.Stats_reply (stats_json t))
    | Ok { P.id; op = P.Shutdown } ->
        Metrics.request t.metrics `Shutdown;
        reply t conn (Some id) P.Draining;
        request_shutdown t
    | Ok { P.id; op = P.Solve { entry; timeout_s } } ->
        Metrics.request t.metrics `Solve;
        handle_solve t conn ~id ~entry ~timeout_s ~received
  end

let feed t conn chunk =
  let data = if conn.pending = "" then chunk else conn.pending ^ chunk in
  let len = String.length data in
  let rec go start =
    if start >= len then conn.pending <- ""
    else
      match String.index_from_opt data start '\n' with
      | Some i ->
          handle_line t conn (String.sub data start (i - start));
          go (i + 1)
      | None ->
          conn.pending <- String.sub data start (len - start);
          if String.length conn.pending > P.max_frame_bytes then begin
            reply t conn None
              (P.Refused { code = P.Bad_frame; msg = "frame exceeds 1 MiB" });
            conn.eof <- true
          end
  in
  go 0

(* ---------------------------------------------------------- I/O loop *)

let drain_wake_pipe t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

let read_chunk fd =
  let buf = Bytes.create 65536 in
  match Unix.read fd buf 0 65536 with
  | 0 -> None
  | n -> Some (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error _ -> None

let run t =
  locked t (fun () ->
      if t.running || t.stopped then invalid_arg "Server.run: already used";
      t.running <- true);
  let workers = Array.init t.config.workers (fun _ -> Domain.spawn (fun () -> worker t)) in
  let listen_open = ref true in
  let finished = ref false in
  while not !finished do
    let draining = Atomic.get t.stop in
    if draining && !listen_open then begin
      Unix.close t.listen_fd;
      listen_open := false
    end;
    (* Reap connections that are done: read side closed and no admitted
       request still owed a reply. While draining, idle connections are
       done by definition. *)
    let reapable, live =
      locked t (fun () ->
          let r, l =
            List.partition
              (fun c -> (c.eof || draining) && c.inflight = 0)
              t.conns
          in
          t.conns <- l;
          (r, l))
    in
    List.iter
      (fun c ->
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        Metrics.connection_closed t.metrics)
      reapable;
    let inflight_total =
      locked t (fun () -> List.fold_left (fun a c -> a + c.inflight) 0 t.conns)
    in
    if draining && live = [] && inflight_total = 0 && Admission.length t.queue = 0
    then begin
      (* Queue closed only now: everything admitted has been replied
         to, so workers drain their Nones and exit. *)
      Admission.close t.queue;
      Array.iter Domain.join workers;
      finished := true
    end
    else begin
      let read_fds =
        (t.wake_r :: (if !listen_open then [ t.listen_fd ] else []))
        @ List.filter_map (fun c -> if c.eof then None else Some c.fd) live
      in
      match Unix.select read_fds [] [] 0.5 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          List.iter
            (fun fd ->
              if fd = t.wake_r then drain_wake_pipe t
              else if !listen_open && fd = t.listen_fd then begin
                match Unix.accept t.listen_fd with
                | exception Unix.Unix_error _ -> ()
                | cfd, _ ->
                    let c =
                      { fd = cfd;
                        wmu = Mutex.create ();
                        pending = "";
                        inflight = 0;
                        eof = false
                      }
                    in
                    locked t (fun () -> t.conns <- c :: t.conns);
                    Metrics.connection_opened t.metrics
              end
              else
                match List.find_opt (fun c -> c.fd = fd) live with
                | None -> ()
                | Some c when c.eof -> ()
                | Some c -> (
                    match read_chunk fd with
                    | None -> c.eof <- true
                    | Some chunk -> feed t c chunk))
            ready
    end
  done;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  locked t (fun () ->
      t.stopped <- true;
      Condition.broadcast t.cond)

let start t =
  (* The listener is already bound and accepting (backlog) since
     [create]; the background domain just runs the loop. *)
  let d = Domain.spawn (fun () -> run t) in
  locked t (fun () -> t.runner <- Some d)

let shutdown t =
  request_shutdown t;
  let joinable =
    locked t (fun () ->
        if t.running || t.runner <> None then begin
          while not t.stopped do
            Condition.wait t.cond t.mu
          done;
          let d = t.runner in
          t.runner <- None;
          d
        end
        else begin
          t.stopped <- true;
          None
        end)
  in
  Option.iter Domain.join joinable
