module P = Protocol
module Json = Tt_engine.Telemetry.Json
module Job = Tt_engine.Job
module Executor = Tt_engine.Executor
module Fault = Tt_engine.Fault

type config = {
  host : string;
  port : int;
  workers : int;
  queue_capacity : int;
  max_deadline_s : float;
  idle_timeout_s : float;
  max_inflight : int;
  max_write_buf : int;
  replay_capacity : int;
  wedge_grace_s : float;
  worker_faults : Fault.t option;
  batch_headroom : float;
}

let default_config =
  { host = "127.0.0.1";
    port = 0;
    workers = 2;
    queue_capacity = 64;
    max_deadline_s = 30.;
    idle_timeout_s = 300.;
    max_inflight = 32;
    max_write_buf = 8 * 1024 * 1024;
    replay_capacity = 1024;
    wedge_grace_s = 5.;
    worker_faults = None;
    batch_headroom = 0.75
  }

(* One accepted connection. The I/O domain owns the read side ([pending]
   is only touched there); replies may come from any domain and are
   serialized by [wmu], which also guards the write buffer
   ([outq]/[out_off]/[out_len]). The socket is non-blocking: writers
   append to [outq] and flush opportunistically, the I/O domain flushes
   the rest when [select] reports writability — so a slow or stalled
   reader can never block a worker domain, only grow its own buffer up
   to [max_write_buf] (past which the connection is declared [dead]).

   [inflight] counts admitted-but-unreplied solve requests; the fd is
   closed only by the I/O domain, and only once [inflight = 0] — so no
   domain ever writes to a closed (and possibly reused) descriptor.
   [eof] and [dead] only ever flip to [true] (benign monotonic races
   between reader and writers). *)
type conn = {
  fd : Unix.file_descr;
  wmu : Mutex.t;
  outq : string Queue.t;
  mutable out_off : int;  (* bytes of [Queue.peek outq] already written *)
  mutable out_len : int;  (* total unwritten bytes across [outq] *)
  mutable pending : string;
  mutable inflight : int;
  mutable eof : bool;
  mutable dead : bool;
  mutable last_active : float;
}

type work = {
  wconn : conn;
  req_id : string;
  jobs : Job.t list;
  deadline : float;  (* absolute, seconds *)
  received : float;
  priority : P.priority;
  idem : string option;
  seq : int;  (* admission sequence number; the worker-fault roll key *)
  replied : bool Atomic.t;
      (* The exactly-one-reply guard: the worker, the wedge supervisor
         and the crash handler all funnel through a CAS on this flag,
         so whoever wins writes the one reply and decrements
         [inflight]; everyone else no-ops. *)
}

(* One worker domain's supervision cell. The I/O domain replaces the
   whole slot when it retires a wedged worker, so [abandon] tells the
   old domain (which still holds the old slot) to exit, while the
   replacement starts from a fresh slot. *)
type slot = {
  current : work option Atomic.t;
  crashed : bool Atomic.t;
  abandon : bool Atomic.t;
  mutable dom : unit Domain.t option;
}

let fresh_slot () =
  { current = Atomic.make None;
    crashed = Atomic.make false;
    abandon = Atomic.make false;
    dom = None
  }

type t = {
  config : config;
  cache : Job.outcome Tt_engine.Cache.t;
  retry : Tt_engine.Retry.policy;
  telemetry : Tt_engine.Telemetry.t option;
  job_timeout : float option;
  metrics : Metrics.t;
  queue : work Admission.t;
  replay : Replay.t;
  limiter : Overload.Limiter.t;
  admitted : int Atomic.t;  (* queued + executing, not yet replied *)
  mutable ema_service_s : float option;  (* guarded by [mu] *)
  admit_seq : int Atomic.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  started : float;
  mu : Mutex.t;
  cond : Condition.t;
  slots : slot array;
  mutable zombies : unit Domain.t list;  (* retired wedged workers *)
  mutable conns : conn list;
  mutable running : bool;
  mutable stopped : bool;
  mutable runner : unit Domain.t option;  (* set by [start] *)
}

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> failwith ("cannot resolve host " ^ host))

let create ?(config = default_config) ?cache ?(retry = Tt_engine.Retry.none)
    ?telemetry ?job_timeout () =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (resolve config.host, config.port) in
  (try
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 64
   with e ->
     Unix.close listen_fd;
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let config = { config with workers = max 1 config.workers } in
  { config;
    cache = (match cache with Some c -> c | None -> Tt_engine.Cache.create ());
    retry;
    telemetry;
    job_timeout;
    metrics = Metrics.create ();
    queue = Admission.create ~capacity:config.queue_capacity;
    replay = Replay.create ~capacity:(max 1 config.replay_capacity);
    (* The AIMD window starts (and is capped) at queued + executing
       capacity, so an unloaded server behaves exactly like the static
       ring did; only loss signals (blown deadlines, wedges) shrink it
       below that, moving rejection from queue-full to admission
       time. *)
    limiter =
      (let cap = float_of_int (config.queue_capacity + config.workers) in
       Overload.Limiter.create ~initial:cap ~max_limit:cap ());
    admitted = Atomic.make 0;
    ema_service_s = None;
    admit_seq = Atomic.make 0;
    listen_fd;
    bound_port;
    wake_r;
    wake_w;
    stop = Atomic.make false;
    started = Unix.gettimeofday ();
    mu = Mutex.create ();
    cond = Condition.create ();
    slots = Array.init config.workers (fun _ -> fresh_slot ());
    zombies = [];
    conns = [];
    running = false;
    stopped = false;
    runner = None
  }

let port t = t.bound_port
let metrics t = t.metrics

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let stopped t = locked t (fun () -> t.stopped)

let wake t =
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EBADF), _, _) -> ()

let request_shutdown t =
  Atomic.set t.stop true;
  wake t

let stats_json t =
  let astats = Admission.stats t.queue in
  (* Freshen the admission gauges so the [metrics.overload] object a
     client reads is current, not last-reply-time. *)
  Metrics.set_admission t.metrics ~queue_depth:(Admission.length t.queue)
    ~admitted:(Atomic.get t.admitted)
    ~limit:(Overload.Limiter.limit t.limiter);
  Json.Obj
    [ ( "server",
        Json.Obj
          [ ("proto_version", Json.Int P.version);
            ("workers", Json.Int t.config.workers);
            ("queue_capacity", Json.Int (Admission.capacity t.queue));
            ("queue_depth", Json.Int (Admission.length t.queue));
            ("admission_limit", Json.Int (Overload.Limiter.limit t.limiter));
            ("draining", Json.Bool (Atomic.get t.stop));
            ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started))
          ] );
      ( "admission",
        Json.Obj
          [ ("pushed", Json.Int astats.Admission.pushed);
            ("rejected", Json.Int astats.Admission.rejected);
            ("high_watermark", Json.Int astats.Admission.high_watermark)
          ] );
      ( "replay",
        Json.Obj
          [ ("capacity", Json.Int (Replay.capacity t.replay));
            ("entries", Json.Int (Replay.length t.replay));
            ("evictions", Json.Int (Replay.evictions t.replay))
          ] );
      ("metrics", Metrics.to_json (Metrics.snapshot t.metrics))
    ]

(* A health reply must stay cheap — it is the probe op the shard tier's
   breaker sends on every tick, so it reads two flags and the queue
   depth, never the full metrics snapshot. *)
let health_json t =
  Json.Obj
    [ ("role", Json.String "server");
      ("draining", Json.Bool (Atomic.get t.stop));
      ("queue_depth", Json.Int (Admission.length t.queue));
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started))
    ]

(* ----------------------------------------------------------- replies *)

let conn_kill_locked conn =
  conn.dead <- true;
  Queue.clear conn.outq;
  conn.out_off <- 0;
  conn.out_len <- 0

(* Flush as much buffered output as the socket will take without
   blocking. Call with [wmu] held. *)
let try_flush_locked conn =
  let progress = ref true in
  while (not conn.dead) && !progress && not (Queue.is_empty conn.outq) do
    let head = Queue.peek conn.outq in
    let len = String.length head in
    match Unix.write_substring conn.fd head conn.out_off (len - conn.out_off) with
    | n ->
        conn.out_off <- conn.out_off + n;
        conn.out_len <- conn.out_len - n;
        if conn.out_off >= len then begin
          ignore (Queue.pop conn.outq);
          conn.out_off <- 0
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        progress := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* Peer went away mid-reply; the I/O domain reaps the
           connection once its inflight count drains. *)
        conn_kill_locked conn
  done

let conn_send t conn line =
  Mutex.lock conn.wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wmu)
    (fun () ->
      if not conn.dead then begin
        Queue.push line conn.outq;
        conn.out_len <- conn.out_len + String.length line;
        try_flush_locked conn;
        if conn.out_len > t.config.max_write_buf then begin
          (* The reader stopped reading and let [max_write_buf] pile
             up: cut it loose rather than hold the memory. *)
          conn_kill_locked conn;
          Metrics.write_overflow t.metrics
        end
      end);
  (* Leftover bytes (or a fresh corpse) need the I/O domain's
     attention — cheap enough to ping unconditionally. *)
  wake t

let reply t conn req_id body =
  (match body with
  | P.Refused { code; _ } ->
      Metrics.response_error t.metrics ~code:(P.error_code_to_string code)
  | _ -> Metrics.response_ok t.metrics);
  conn_send t conn (P.encode_response { P.req_id; body } ^ "\n")

(* The single exit for admitted work: whoever wins the [replied] CAS
   writes the one reply, feeds the replay cache, and releases the
   inflight slot. Losers (a wedged worker finishing after the
   supervisor already answered, a crash handler racing a wedge
   detector) no-op, so an admitted request gets exactly one reply and
   exactly one decrement. *)
let reply_work ?(loss = false) t w body =
  if Atomic.compare_and_set w.replied false true then begin
    let sojourn = Unix.gettimeofday () -. w.received in
    (* Record the latency before the reply hits the wire: a client may
       issue STATS the instant it reads this response, and the snapshot
       it gets back must already account for it. *)
    Metrics.observe_solve t.metrics ~latency_s:sojourn;
    (* AIMD signals: a blown deadline (refused here or detected by the
       wedge supervisor, which passes [~loss:true]) shrinks the window;
       a served result grows it and feeds the sojourn-time EMA behind
       the queue-wait estimate. Plain crashes are {e not} losses — they
       say nothing about load, and chaos runs inject them freely. *)
    (match body with
    | P.Refused { code = P.Deadline_exceeded; _ } ->
        Metrics.deadline_exceeded t.metrics;
        Overload.Limiter.on_loss t.limiter
    | P.Results _ ->
        if loss then Overload.Limiter.on_loss t.limiter
        else begin
          Overload.Limiter.on_success t.limiter;
          locked t (fun () ->
              t.ema_service_s <-
                Some (Overload.ema ~alpha:0.2 ~prev:t.ema_service_s sojourn))
        end
    | _ -> if loss then Overload.Limiter.on_loss t.limiter);
    (match (body, w.idem) with
    | P.Results _, Some key -> Replay.put t.replay key body
    | _ -> ());
    reply t w.wconn (Some w.req_id) body;
    ignore (Atomic.fetch_and_add t.admitted (-1));
    Metrics.set_admission t.metrics ~queue_depth:(Admission.length t.queue)
      ~admitted:(Atomic.get t.admitted)
      ~limit:(Overload.Limiter.limit t.limiter);
    locked t (fun () -> w.wconn.inflight <- w.wconn.inflight - 1);
    wake t
  end

(* ------------------------------------------------------------ workers *)

let job_reports reports =
  Array.to_list
    (Array.map
       (fun (r : Executor.report) ->
         { P.job_id = Job.id r.job;
           label = r.job.Job.label;
           spec = Job.spec_to_string r.job.Job.spec;
           result = r.result;
           cache_hit = r.cache_hit;
           wall_s = r.wall
         })
       reports)

let process t w =
  (* Chaos hook: a seeded roll per admitted request, keyed by the
     admission sequence number so a client retry (new admission) rolls
     fresh. [Crash]/[Io_error] escape the worker loop — a simulated
     domain death the supervisor must handle; [Delay] simulates a
     wedge. *)
  (match t.config.worker_faults with
  | None -> ()
  | Some f -> (
      match Fault.roll f ~key:(Printf.sprintf "srv:%d" w.seq) ~attempt:1 with
      | Some ((Fault.Crash | Fault.Io_error) as a) ->
          raise (Fault.Injected (Fault.describe a))
      | Some (Fault.Delay d) -> Unix.sleepf d
      | None -> ()));
  let now = Unix.gettimeofday () in
  let body =
    if now >= w.deadline then
      P.Refused
        { code = P.Deadline_exceeded; msg = "deadline passed while queued" }
    else
      (* Per-request executor over the shared cache/retry stack: one
         domain (this one), ambient cancel = the request deadline. *)
      let cancel =
        Tt_util.Cancel.create ~deadline_after:(w.deadline -. now) ()
      in
      let exec =
        Executor.create ~domains:1 ~cache:t.cache ~retry:t.retry
          ?telemetry:t.telemetry ?timeout:t.job_timeout ~cancel
          ~on_job:(fun ~job:_ ~result ~wall ~cache_hit ->
            Metrics.job t.metrics ~cache_hit
              ~error:(Result.is_error result) ~wall_s:wall)
          ()
      in
      match Executor.run_batch exec w.jobs with
      | reports, _ -> P.Results (job_reports reports)
      | exception e ->
          P.Refused { code = P.Internal; msg = Printexc.to_string e }
  in
  reply_work t w body

let rec worker_loop t slot =
  if Atomic.get slot.abandon then ()
  else
    match Admission.pop t.queue with
    | None -> ()
    | Some w ->
        Atomic.set slot.current (Some w);
        process t w;
        Atomic.set slot.current None;
        worker_loop t slot

let worker_body t slot =
  match worker_loop t slot with
  | () -> ()  (* queue closed, or this slot was abandoned *)
  | exception e ->
      (* The domain is dying (injected crash, or a genuine bug escaping
         [process]); answer its request so the invariant holds, flag
         the slot, and let the I/O domain respawn it. *)
      (match Atomic.get slot.current with
      | Some w ->
          reply_work t w
            (P.Refused
               { code = P.Internal;
                 msg = "worker crashed (" ^ Printexc.to_string e ^ "); restarted"
               });
          Atomic.set slot.current None
      | None -> ());
      Atomic.set slot.crashed true;
      wake t

(* Called from the I/O loop each tick: respawn crashed workers, retire
   wedged ones. A {e wedged} worker is one whose current request blew
   through its deadline plus [wedge_grace_s] without replying — the
   supervisor answers [Internal] on its behalf (the CAS suppresses the
   worker's own reply if it ever finishes), abandons the old domain to
   the zombie list, and staffs a fresh slot so capacity is restored.
   Respawning keeps running during drain: queued work still needs
   workers to drain it. *)
let supervise t =
  let now = Unix.gettimeofday () in
  Array.iteri
    (fun i slot ->
      if Atomic.get slot.crashed then begin
        Option.iter Domain.join slot.dom;
        let fresh = fresh_slot () in
        t.slots.(i) <- fresh;
        fresh.dom <- Some (Domain.spawn (fun () -> worker_body t fresh));
        Metrics.worker_restart t.metrics
      end
      else
        match Atomic.get slot.current with
        | Some w
          when (not (Atomic.get w.replied))
               && now > w.deadline +. t.config.wedge_grace_s ->
            reply_work ~loss:true t w
              (P.Refused
                 { code = P.Internal; msg = "worker wedged; replaced" });
            Atomic.set slot.abandon true;
            (match slot.dom with
            | Some d -> t.zombies <- d :: t.zombies
            | None -> ());
            let fresh = fresh_slot () in
            t.slots.(i) <- fresh;
            fresh.dom <- Some (Domain.spawn (fun () -> worker_body t fresh));
            Metrics.worker_restart t.metrics
        | _ -> ())
    t.slots

(* ----------------------------------------------------------- frames *)

let handle_solve t conn ~id ~entry ~timeout_s ~idem ~priority ~received =
  let refuse code msg =
    Metrics.observe_solve t.metrics
      ~latency_s:(Unix.gettimeofday () -. received);
    reply t conn (Some id) (P.Refused { code; msg })
  in
  if Atomic.get t.stop then refuse P.Shutting_down "server is draining"
  else
    (* Idempotent replay: a retry of an already-completed solve is
       answered from the cache — no admission, no execution. *)
    match Option.bind idem (Replay.find t.replay) with
    | Some body ->
        Metrics.replay_hit t.metrics;
        Metrics.observe_solve t.metrics
          ~latency_s:(Unix.gettimeofday () -. received);
        reply t conn (Some id) body
    | None -> (
        let budget =
          match timeout_s with
          | Some s -> Float.max 0. (Float.min s t.config.max_deadline_s)
          | None -> t.config.max_deadline_s
        in
        (* The adaptive admission decision, before any parsing, queue or
           per-connection bookkeeping: a pure function of the AIMD
           window, the in-flight count, the queue-wait estimate and the
           request's remaining budget. Shedding must be the cheapest
           path through the server — entry parsing (matrix generation,
           ordering, etree) costs real CPU, and an overloaded server
           that parses before refusing collapses under the very traffic
           it is trying to turn away. *)
        let limit = Overload.Limiter.limit t.limiter in
        let depth = Admission.length t.queue in
        let est_wait_s =
          Overload.queue_wait_estimate ~depth
            ~ema_service_s:
              (locked t (fun () ->
                   Option.value ~default:0. t.ema_service_s))
            ~workers:t.config.workers
        in
        Metrics.set_admission t.metrics ~queue_depth:depth
          ~admitted:(Atomic.get t.admitted) ~limit;
        match
          Overload.shed_decision ~limit
            ~admitted:(Atomic.get t.admitted)
            ~batch_headroom:t.config.batch_headroom ~est_wait_s
            ~remaining_s:(Some budget) ~priority
        with
        | Some reason -> (
            Metrics.shed t.metrics
              ~reason:(Overload.shed_reason_to_string reason)
              ~priority:(P.priority_to_string priority);
            match reason with
            | Overload.Queue_wait ->
                Metrics.deadline_exceeded t.metrics;
                refuse P.Deadline_exceeded
                  (Printf.sprintf
                     "queue-wait estimate %.3fs exceeds remaining budget %.3fs"
                     est_wait_s budget)
            | Overload.Brownout ->
                refuse P.Overloaded "shedding batch traffic (brownout)"
            | Overload.Limit ->
                refuse P.Overloaded
                  (Printf.sprintf "concurrency limit (%d) reached" limit))
        | None -> (
            match Tt_engine.Manifest.parse entry with
            | Error e -> refuse P.Bad_request e
            | Ok [] -> refuse P.Bad_request "entry contains no jobs"
            | Ok jobs ->
                let w =
                  { wconn = conn;
                    req_id = id;
                    jobs;
                    deadline = received +. budget;
                    received;
                    priority;
                    idem;
                    seq = Atomic.fetch_and_add t.admit_seq 1;
                    replied = Atomic.make false
                  }
                in
                (* Count the request in-flight before exposing it to
                   workers — a worker may pop, reply and decrement before
                   try_push even returns. The same locked section enforces
                   the per-connection cap, so one pipelining client cannot
                   monopolize the queue. *)
                let admitted =
                  locked t (fun () ->
                      if conn.inflight >= t.config.max_inflight then false
                      else begin
                        conn.inflight <- conn.inflight + 1;
                        true
                      end)
                in
                if not admitted then
                  refuse P.Overloaded
                    (Printf.sprintf
                       "per-connection in-flight limit (%d) reached"
                       t.config.max_inflight)
                else begin
                  ignore (Atomic.fetch_and_add t.admitted 1);
                  if
                    not
                      (Admission.try_push t.queue
                         ~batch:(priority = P.Batch) w)
                  then begin
                    (* Roll back through the normal exit so the reply and
                       the decrement stay paired. *)
                    Metrics.shed t.metrics
                      ~reason:
                        (Overload.shed_reason_to_string Overload.Limit)
                      ~priority:(P.priority_to_string priority);
                    reply_work t w
                      (P.Refused
                         { code = P.Overloaded;
                           msg =
                             Printf.sprintf
                               "admission queue full (capacity %d)"
                               (Admission.capacity t.queue)
                         })
                  end
                end))

let handle_line t conn line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if line = "" then ()
  else begin
    let received = Unix.gettimeofday () in
    match P.decode_request line with
    | Error (id, code, msg) -> reply t conn id (P.Refused { code; msg })
    | Ok { P.id; op = P.Ping } ->
        Metrics.request t.metrics `Ping;
        reply t conn (Some id) P.Pong
    | Ok { P.id; op = P.Peek { key } } ->
        (* Cache peering: answered inline from the local cache levels
           (memory + disk) — [Cache.find] never consults the cache's
           own peer hook, so a peek cannot cascade across the ring. *)
        Metrics.request t.metrics `Peek;
        reply t conn (Some id) (P.Peeked (Tt_engine.Cache.find t.cache key))
    | Ok { P.id; op = P.Stats } ->
        Metrics.request t.metrics `Stats;
        reply t conn (Some id) (P.Stats_reply (stats_json t))
    | Ok { P.id; op = P.Health } ->
        Metrics.request t.metrics `Health;
        reply t conn (Some id) (P.Health_reply (health_json t))
    | Ok { P.id; op = P.Shutdown } ->
        Metrics.request t.metrics `Shutdown;
        reply t conn (Some id) P.Draining;
        request_shutdown t
    | Ok { P.id; op = P.Solve { entry; timeout_s; idem; priority } } ->
        Metrics.request t.metrics `Solve;
        handle_solve t conn ~id ~entry ~timeout_s ~idem ~priority ~received
  end

let feed t conn chunk =
  let data = if conn.pending = "" then chunk else conn.pending ^ chunk in
  let len = String.length data in
  let rec go start =
    if start >= len then conn.pending <- ""
    else
      match String.index_from_opt data start '\n' with
      | Some i ->
          handle_line t conn (String.sub data start (i - start));
          go (i + 1)
      | None ->
          conn.pending <- String.sub data start (len - start);
          if String.length conn.pending > P.max_frame_bytes then begin
            reply t conn None
              (P.Refused { code = P.Bad_frame; msg = "frame exceeds 1 MiB" });
            conn.eof <- true
          end
  in
  go 0

(* ---------------------------------------------------------- I/O loop *)

let drain_wake_pipe t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

(* [None] = EOF or a dead socket; [Some ""] = spurious wakeup on a
   non-blocking fd (not EOF!). *)
let read_chunk fd =
  let buf = Bytes.create 65536 in
  match Unix.read fd buf 0 65536 with
  | 0 -> None
  | n -> Some (Bytes.sub_string buf 0 n)
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      Some ""
  | exception Unix.Unix_error _ -> None

let conn_out_pending c =
  Mutex.lock c.wmu;
  let n = if c.dead then 0 else c.out_len in
  Mutex.unlock c.wmu;
  n

let run t =
  locked t (fun () ->
      if t.running || t.stopped then invalid_arg "Server.run: already used";
      t.running <- true);
  Array.iter
    (fun slot -> slot.dom <- Some (Domain.spawn (fun () -> worker_body t slot)))
    t.slots;
  let listen_open = ref true in
  let finished = ref false in
  while not !finished do
    let draining = Atomic.get t.stop in
    if draining && !listen_open then begin
      Unix.close t.listen_fd;
      listen_open := false
    end;
    supervise t;
    (* Evict connections idle past the timeout (nothing in flight,
       nothing buffered, no bytes either way for idle_timeout_s), then
       reap connections that are done: dead, or read side closed with
       no admitted request still owed a reply and no unflushed output.
       While draining, idle connections are done by definition. *)
    let now = Unix.gettimeofday () in
    let reapable, live =
      locked t (fun () ->
          if t.config.idle_timeout_s > 0. then
            List.iter
              (fun c ->
                if
                  (not c.dead) && (not c.eof) && c.inflight = 0
                  && conn_out_pending c = 0
                  && now -. c.last_active > t.config.idle_timeout_s
                then begin
                  c.dead <- true;
                  Metrics.idle_eviction t.metrics
                end)
              t.conns;
          let r, l =
            List.partition
              (fun c ->
                c.inflight = 0
                && (c.dead || ((c.eof || draining) && conn_out_pending c = 0)))
              t.conns
          in
          t.conns <- l;
          (r, l))
    in
    List.iter
      (fun c ->
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        Metrics.connection_closed t.metrics)
      reapable;
    let inflight_total =
      locked t (fun () -> List.fold_left (fun a c -> a + c.inflight) 0 t.conns)
    in
    if draining && live = [] && inflight_total = 0 && Admission.length t.queue = 0
    then begin
      (* Queue closed only now: everything admitted has been replied
         to, so workers drain their Nones and exit. Zombies (retired
         wedged workers) already had their requests answered; joining
         them just waits out their bounded sleeps. *)
      Admission.close t.queue;
      Array.iter (fun slot -> Option.iter Domain.join slot.dom) t.slots;
      List.iter Domain.join (locked t (fun () -> t.zombies));
      finished := true
    end
    else begin
      let read_fds =
        (t.wake_r :: (if !listen_open then [ t.listen_fd ] else []))
        @ List.filter_map
            (fun c -> if c.eof || c.dead then None else Some c.fd)
            live
      in
      let write_fds =
        List.filter_map
          (fun c -> if conn_out_pending c > 0 then Some c.fd else None)
          live
      in
      match Unix.select read_fds write_fds [] 0.5 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready_r, ready_w, _ ->
          List.iter
            (fun fd ->
              match List.find_opt (fun c -> c.fd = fd) live with
              | None -> ()
              | Some c ->
                  Mutex.lock c.wmu;
                  try_flush_locked c;
                  Mutex.unlock c.wmu)
            ready_w;
          List.iter
            (fun fd ->
              if fd = t.wake_r then drain_wake_pipe t
              else if !listen_open && fd = t.listen_fd then begin
                match Unix.accept t.listen_fd with
                | exception Unix.Unix_error _ -> ()
                | cfd, _ ->
                    Unix.set_nonblock cfd;
                    (try Unix.setsockopt cfd Unix.TCP_NODELAY true
                     with Unix.Unix_error _ -> ());
                    let c =
                      { fd = cfd;
                        wmu = Mutex.create ();
                        outq = Queue.create ();
                        out_off = 0;
                        out_len = 0;
                        pending = "";
                        inflight = 0;
                        eof = false;
                        dead = false;
                        last_active = Unix.gettimeofday ()
                      }
                    in
                    locked t (fun () -> t.conns <- c :: t.conns);
                    Metrics.connection_opened t.metrics
              end
              else
                match List.find_opt (fun c -> c.fd = fd) live with
                | None -> ()
                | Some c when c.eof || c.dead -> ()
                | Some c -> (
                    match read_chunk fd with
                    | None -> c.eof <- true
                    | Some "" -> ()
                    | Some chunk ->
                        c.last_active <- Unix.gettimeofday ();
                        feed t c chunk))
            ready_r
    end
  done;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  locked t (fun () ->
      t.stopped <- true;
      Condition.broadcast t.cond)

let start t =
  (* The listener is already bound and accepting (backlog) since
     [create]; the background domain just runs the loop. *)
  let d = Domain.spawn (fun () -> run t) in
  locked t (fun () -> t.runner <- Some d)

let shutdown t =
  request_shutdown t;
  let joinable =
    locked t (fun () ->
        if t.running || t.runner <> None then begin
          while not t.stopped do
            Condition.wait t.cond t.mu
          done;
          let d = t.runner in
          t.runner <- None;
          d
        end
        else begin
          t.stopped <- true;
          None
        end)
  in
  Option.iter Domain.join joinable
