(* Seeded, deterministic in-process TCP fault proxy.

   The proxy sits between a client and the real server and forwards
   bytes in both directions, injecting faults on the way. Like the
   engine's [Tt_engine.Fault], every decision is a pure function of the
   spec — here (seed, connection id, direction, window index), where a
   window is a fixed-size span of the byte stream — so which faults a
   given connection suffers does not depend on read chunking, timing,
   or scheduling. Only *which offsets get exercised* depends on how
   much traffic actually flows. *)

(* ------------------------------------------------------------- faults *)

type faults = {
  drop : float;
  truncate : float;
  stall : float;
  split : float;
  max_stall_s : float;
  window : int;
  seed : int;
}

let none =
  { drop = 0.; truncate = 0.; stall = 0.; split = 0.;
    max_stall_s = 0.02; window = 256; seed = 0 }

let create_faults ?(drop = 0.) ?(truncate = 0.) ?(stall = 0.) ?(split = 0.)
    ?(max_stall_s = 0.02) ?(window = 256) ~seed () =
  let rate what x =
    if x < 0. || x > 1. then
      invalid_arg
        (Printf.sprintf "Netfault.create_faults: %s rate %g not in [0, 1]" what x)
  in
  rate "drop" drop;
  rate "truncate" truncate;
  rate "stall" stall;
  rate "split" split;
  if drop +. truncate +. stall +. split > 1. then
    invalid_arg "Netfault.create_faults: rates sum to more than 1";
  if max_stall_s < 0. then invalid_arg "Netfault.create_faults: negative max_stall_s";
  if window < 1 then invalid_arg "Netfault.create_faults: window < 1";
  { drop; truncate; stall; split; max_stall_s; window; seed }

let faults_to_string f =
  Printf.sprintf "drop=%g,trunc=%g,stall=%g,split=%g,max-stall=%g,window=%d,seed=%d"
    f.drop f.truncate f.stall f.split f.max_stall_s f.window f.seed

let faults_of_string s =
  try
    let drop = ref 0. and trunc = ref 0. and stall = ref 0. and split = ref 0. in
    let max_stall = ref 0.02 and window = ref 256 and seed = ref 0 in
    String.split_on_char ',' s
    |> List.filter (fun tok -> String.trim tok <> "")
    |> List.iter (fun tok ->
           match String.index_opt tok '=' with
           | None -> failwith ("expected key=value, got " ^ tok)
           | Some i ->
               let k = String.trim (String.sub tok 0 i) in
               let v = String.sub tok (i + 1) (String.length tok - i - 1) in
               let f () =
                 match float_of_string_opt v with
                 | Some x -> x
                 | None -> failwith ("bad number " ^ v ^ " for " ^ k)
               in
               let int_ () =
                 match int_of_string_opt v with
                 | Some x -> x
                 | None -> failwith ("bad integer " ^ v ^ " for " ^ k)
               in
               (match k with
               | "drop" -> drop := f ()
               | "trunc" | "truncate" -> trunc := f ()
               | "stall" -> stall := f ()
               | "split" -> split := f ()
               | "max-stall" -> max_stall := f ()
               | "window" -> window := int_ ()
               | "seed" -> seed := int_ ()
               | other -> failwith ("unknown netfault key " ^ other)));
    Ok
      (create_faults ~drop:!drop ~truncate:!trunc ~stall:!stall ~split:!split
         ~max_stall_s:!max_stall ~window:!window ~seed:!seed ())
  with Failure msg | Invalid_argument msg -> Error msg

(* ---------------------------------------------------------- decisions *)

type action =
  | Forward
  | Drop
  | Truncate of int  (* forward at most this many bytes of the window, then drop *)
  | Stall of float
  | Split

type dir = [ `Up | `Down ]

let rng_for seed tag =
  let h = Digest.string tag in
  let v = ref 0 in
  String.iter (fun c -> v := ((!v * 31) + Char.code c) land max_int) h;
  Tt_util.Rng.create (seed lxor !v)

let decision f ~conn ~dir ~window =
  if f.drop = 0. && f.truncate = 0. && f.stall = 0. && f.split = 0. then Forward
  else begin
    let d = match dir with `Up -> "up" | `Down -> "down" in
    let rng = rng_for f.seed (Printf.sprintf "net:%d:%s:%d" conn d window) in
    let u = Tt_util.Rng.float rng 1.0 in
    if u < f.drop then Drop
    else if u < f.drop +. f.truncate then
      Truncate (Tt_util.Rng.int rng f.window)
    else if u < f.drop +. f.truncate +. f.stall then
      Stall (Tt_util.Rng.float rng f.max_stall_s)
    else if u < f.drop +. f.truncate +. f.stall +. f.split then Split
    else Forward
  end

let describe = function
  | Forward -> "forward"
  | Drop -> "drop connection"
  | Truncate n -> Printf.sprintf "truncate after %d bytes" n
  | Stall s -> Printf.sprintf "stall %gs" s
  | Split -> "split into tiny writes"

(* -------------------------------------------------------------- proxy *)

type stats = {
  connections : int;
  drops : int;
  truncations : int;
  stalls : int;
  splits : int;
  forwarded_bytes : int;
  severed : int;
}

let injected s = s.drops + s.truncations + s.stalls + s.splits

(* The partition primitive the nemesis builds on: a dynamic valve in
   front of the per-window fault machinery. Severing or stalling the
   proxy cuts {e both} directions at once, so a partition built from
   one gate per shard ingress is symmetric by construction. *)
type gate = Gate_open | Gate_stalled | Gate_severed

type dir_state = {
  mutable off : int;  (* bytes forwarded in this direction *)
  mutable decided : int;  (* windows whose decision has been applied *)
}

type pair = {
  cid : int;
  cfd : Unix.file_descr;  (* client side *)
  ufd : Unix.file_descr;  (* upstream side *)
  up : dir_state;
  down : dir_state;
}

type t = {
  faults : faults;
  upstream_host : string;
  upstream_port : int;
  listen_fd : Unix.file_descr;
  bound_port : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  mu : Mutex.t;
  cond : Condition.t;
  mutable gate_state : gate;
  mutable pairs : pair list;
  mutable next_cid : int;
  mutable s_connections : int;
  mutable s_drops : int;
  mutable s_truncations : int;
  mutable s_stalls : int;
  mutable s_splits : int;
  mutable s_bytes : int;
  mutable s_severed : int;
  mutable running : bool;
  mutable stopped : bool;
  mutable runner : unit Domain.t option;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> failwith ("cannot resolve host " ^ host))

let create ?(faults = none) ?(host = "127.0.0.1") ?(port = 0)
    ?(upstream_host = "127.0.0.1") ~upstream_port () =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try
     Unix.bind listen_fd (Unix.ADDR_INET (resolve host, port));
     Unix.listen listen_fd 64
   with e ->
     Unix.close listen_fd;
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  { faults;
    upstream_host;
    upstream_port;
    listen_fd;
    bound_port;
    wake_r;
    wake_w;
    stop = Atomic.make false;
    mu = Mutex.create ();
    cond = Condition.create ();
    gate_state = Gate_open;
    pairs = [];
    next_cid = 0;
    s_connections = 0;
    s_drops = 0;
    s_truncations = 0;
    s_stalls = 0;
    s_splits = 0;
    s_bytes = 0;
    s_severed = 0;
    running = false;
    stopped = false;
    runner = None
  }

let port t = t.bound_port

let stats t =
  locked t (fun () ->
      { connections = t.s_connections;
        drops = t.s_drops;
        truncations = t.s_truncations;
        stalls = t.s_stalls;
        splits = t.s_splits;
        forwarded_bytes = t.s_bytes;
        severed = t.s_severed
      })

let wake t =
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EBADF), _, _) -> ()

let gate t = locked t (fun () -> t.gate_state)

(* Takes effect at the proxy loop's next tick ({!wake} makes that
   immediate): fd lifecycle stays on the proxy domain, so a concurrent
   [set_gate] can never close an fd the loop is selecting on. *)
let set_gate t g =
  locked t (fun () -> t.gate_state <- g);
  wake t

(* Blocking write of a slice; Unix_error means the peer is gone. *)
let write_all fd s pos len =
  let off = ref pos in
  let stop = pos + len in
  while !off < stop do
    off := !off + Unix.write_substring fd s !off (stop - !off)
  done

(* Forward [data] in direction [dir] of [pair], applying each newly
   reached window's decision. Returns [false] when the connection must
   be dropped (injected drop/truncation, or the peer vanished). *)
let forward t pair ~dir data =
  let st, dst = match dir with `Up -> (pair.up, pair.ufd) | `Down -> (pair.down, pair.cfd) in
  let len = String.length data in
  let count f = locked t f in
  let rec go start =
    if start >= len then true
    else begin
      let w = st.off / t.faults.window in
      let win_end = (w + 1) * t.faults.window in
      let slice = min (len - start) (win_end - st.off) in
      let act =
        if w >= st.decided then begin
          st.decided <- w + 1;
          decision t.faults ~conn:pair.cid ~dir ~window:w
        end
        else Forward
      in
      match act with
      | Drop ->
          count (fun () -> t.s_drops <- t.s_drops + 1);
          false
      | Truncate k ->
          let n = min k slice in
          (try write_all dst data start n with Unix.Unix_error _ -> ());
          count (fun () ->
              t.s_truncations <- t.s_truncations + 1;
              t.s_bytes <- t.s_bytes + n);
          false
      | Stall s ->
          count (fun () -> t.s_stalls <- t.s_stalls + 1);
          if s > 0. then Unix.sleepf s;
          (match write_all dst data start slice with
          | () ->
              st.off <- st.off + slice;
              count (fun () -> t.s_bytes <- t.s_bytes + slice);
              go (start + slice)
          | exception Unix.Unix_error _ -> false)
      | Split -> (
          (* Dribble the window out in 1–8 byte writes with a short gap
             between them, exercising the receiver's frame reassembly.
             Piece sizes come from a seeded stream of their own, so the
             pattern is reproducible too. *)
          let rng =
            rng_for t.faults.seed
              (Printf.sprintf "split:%d:%s:%d" pair.cid
                 (match dir with `Up -> "up" | `Down -> "down")
                 w)
          in
          count (fun () -> t.s_splits <- t.s_splits + 1);
          match
            let p = ref start in
            let stop = start + slice in
            while !p < stop do
              let n = min (stop - !p) (1 + Tt_util.Rng.int rng 8) in
              write_all dst data !p n;
              p := !p + n;
              if !p < stop then Unix.sleepf 0.001
            done
          with
          | () ->
              st.off <- st.off + slice;
              count (fun () -> t.s_bytes <- t.s_bytes + slice);
              go (start + slice)
          | exception Unix.Unix_error _ -> false)
      | Forward -> (
          match write_all dst data start slice with
          | () ->
              st.off <- st.off + slice;
              count (fun () -> t.s_bytes <- t.s_bytes + slice);
              go (start + slice)
          | exception Unix.Unix_error _ -> false)
    end
  in
  go 0

let close_pair t pair =
  (try Unix.close pair.cfd with Unix.Unix_error _ -> ());
  (try Unix.close pair.ufd with Unix.Unix_error _ -> ());
  locked t (fun () ->
      t.pairs <- List.filter (fun p -> p.cid <> pair.cid) t.pairs)

let accept_one t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error _ -> ()
  | cfd, _ when gate t = Gate_severed ->
      (* Partitioned: the client's connect completes (the listener's
         backlog accepted it) but the conversation dies instantly —
         its first read sees EOF, which is what a transport-level
         partition looks like to the breaker. *)
      (try Unix.close cfd with Unix.Unix_error _ -> ());
      locked t (fun () -> t.s_severed <- t.s_severed + 1)
  | cfd, _ -> (
      let ufd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match
        Unix.connect ufd
          (Unix.ADDR_INET (resolve t.upstream_host, t.upstream_port))
      with
      | () ->
          (try
             Unix.setsockopt cfd Unix.TCP_NODELAY true;
             Unix.setsockopt ufd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          let pair =
            { cid = t.next_cid;
              cfd;
              ufd;
              up = { off = 0; decided = 0 };
              down = { off = 0; decided = 0 }
            }
          in
          t.next_cid <- t.next_cid + 1;
          locked t (fun () ->
              t.pairs <- pair :: t.pairs;
              t.s_connections <- t.s_connections + 1)
      | exception Unix.Unix_error _ ->
          (* Upstream unreachable: the client sees an immediate drop. *)
          (try Unix.close ufd with Unix.Unix_error _ -> ());
          (try Unix.close cfd with Unix.Unix_error _ -> ()))

let drain_wake_pipe t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

let read_chunk fd =
  let buf = Bytes.create 65536 in
  match Unix.read fd buf 0 65536 with
  | 0 -> None
  | n -> Some (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error _ -> None

let run t =
  locked t (fun () ->
      if t.running || t.stopped then invalid_arg "Netfault.run: already used";
      t.running <- true);
  while not (Atomic.get t.stop) do
    (* Apply the gate on the proxy domain, before building the select
       set. Severed: cut every live pair now (both directions at once —
       a symmetric partition) and stop servicing data. Stalled: keep
       pairs alive but stop selecting on them, so in-flight bytes park
       in kernel buffers and flow again the moment the gate reopens. *)
    let g = gate t in
    if g = Gate_severed then begin
      let doomed = locked t (fun () -> t.pairs) in
      List.iter
        (fun p ->
          close_pair t p;
          locked t (fun () -> t.s_severed <- t.s_severed + 1))
        doomed
    end;
    let pairs = locked t (fun () -> t.pairs) in
    let read_fds =
      match g with
      | Gate_open ->
          t.wake_r :: t.listen_fd
          :: List.concat_map (fun p -> [ p.cfd; p.ufd ]) pairs
      | Gate_stalled | Gate_severed -> [ t.wake_r; t.listen_fd ]
    in
    match Unix.select read_fds [] [] 0.5 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            if Atomic.get t.stop then ()
            else if fd = t.wake_r then drain_wake_pipe t
            else if fd = t.listen_fd then accept_one t
            else
              match
                List.find_opt (fun p -> p.cfd = fd || p.ufd = fd) pairs
              with
              | None -> ()
              | Some p -> (
                  let dir = if fd = p.cfd then `Up else `Down in
                  match read_chunk fd with
                  | None -> close_pair t p
                  | Some data ->
                      if not (forward t p ~dir data) then close_pair t p))
          ready
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  List.iter (fun p -> close_pair t p) (locked t (fun () -> t.pairs));
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  locked t (fun () ->
      t.stopped <- true;
      Condition.broadcast t.cond)

let start t =
  let d = Domain.spawn (fun () -> run t) in
  locked t (fun () -> t.runner <- Some d)

let request_stop t =
  Atomic.set t.stop true;
  wake t

let shutdown t =
  Atomic.set t.stop true;
  wake t;
  let joinable =
    locked t (fun () ->
        if t.running || t.runner <> None then begin
          while not t.stopped do
            Condition.wait t.cond t.mu
          done;
          let d = t.runner in
          t.runner <- None;
          d
        end
        else begin
          t.stopped <- true;
          None
        end)
  in
  Option.iter Domain.join joinable
