module P = Protocol

type mode = Closed | Open of float

(* A pluggable per-connection solve path: the default wraps a resilient
   {!Client.session} aimed at (host, port); the shard tier substitutes
   a ring-routing client without Loadgen knowing about rings. *)
type solver = {
  sv_solve :
    ?timeout_s:float ->
    ?priority:P.priority ->
    idem:string ->
    string ->
    (P.job_report list, Client.failure) result;
  sv_close : unit -> unit;
}

type config = {
  host : string;
  port : int;
  connections : int;
  requests : int;
  seed : int;
  entries : string array;
  timeout_s : float option;
  mode : mode;
  batch_share : float;
  retry : Tt_engine.Retry.policy;
  read_timeout_s : float;
  connect_timeout_s : float option;
  chaos : Netfault.faults option;
  tag : string;
  solver : (tag:string -> conn:int -> solver) option;
}

let default_entries =
  [| "gen grid2d size=12 :: minmem; liu";
     "gen grid2d size=16 :: minmem; postorder";
     "gen banded size=48 :: liu; minmem";
     "gen random size=40 seed=7 :: minmem";
     "gen arrow size=32 :: postorder; liu";
     "gen grid2d size=12 :: minio policy=first-fit budget=50%";
     "gen tridiagonal size=64 :: minmem; schedule procs=4 mem=1.5";
     "gen random size=40 seed=7 :: minmem-approx cap=4 tol=0.0";
     "gen grid2d size=16 :: minmem-approx"
  |]

let sched_entries =
  [| "gen grid2d size=12 :: par-schedule algo=booking procs=4 mem=1.0";
     "gen grid2d size=16 :: par-schedule algo=greedy procs=2 mem=1.5";
     "gen banded size=48 :: par-schedule algo=split procs=4 mem=2.0";
     "gen tridiagonal size=64 :: par-schedule algo=booking procs=8 mem=1.2";
     "gen arrow size=32 :: pareto procs=4 steps=5";
     "gen random size=40 seed=7 :: pareto procs=2 steps=4"
  |]

let mixes =
  [ ("core", default_entries);
    ("sched", sched_entries);
    ("all", Array.append default_entries sched_entries)
  ]

let entries_of_mix name = List.assoc_opt name mixes

let default_config =
  { host = "127.0.0.1";
    port = 0;
    connections = 2;
    requests = 100;
    seed = 42;
    entries = default_entries;
    timeout_s = None;
    mode = Closed;
    batch_share = 0.;
    retry = Tt_engine.Retry.none;
    read_timeout_s = Client.default_read_timeout_s;
    connect_timeout_s = None;
    chaos = None;
    tag = "lg";
    solver = None
  }

type class_stats = { issued : int; ok : int; shed : int }

(* What one client domain brings home. [t_pri] keys per-priority
   (issued, ok, shed) triples by priority name; a shed is a typed
   [overloaded] or [deadline_exceeded] refusal — the two codes overload
   control answers with. *)
type tally = {
  mutable issued : int;
  mutable t_ok : int;
  t_errors : (string, int) Hashtbl.t;
  mutable t_transport : int;
  t_transport_kinds : (string, int) Hashtbl.t;
  t_pri : (string, int * int * int) Hashtbl.t;
  mutable lats : float list;
  mutable reports : P.job_report list;
}

let bump h key = Hashtbl.replace h key (1 + Option.value ~default:0 (Hashtbl.find_opt h key))
let count_error tally code = bump tally.t_errors code

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Coarse classification of a transport failure's message, so a summary
   can say {e which} failures ate a request's retry budget — a cluster
   failover run looks very different when they are all connect_refused
   (dead shard) versus read_timeout (wedged one). *)
let transport_kind msg =
  let m = String.lowercase_ascii msg in
  if contains m "refused" then "connect_refused"
  else if contains m "timed out" then "timeout"
  else if contains m "reset" then "conn_reset"
  else if contains m "closed by server" then "eof"
  else "other"

(* One connection's run: [n] requests through a resilient session,
   entries drawn from [rng]. Idempotency keys are deterministic
   ("<tag><seed>-c<conn>-r<i>"), so a chaos run and a clean run of the
   same config deduplicate independently (distinct tags keep them from
   colliding in the server's replay cache). Transport failures that
   survive the whole retry schedule are counted and the run moves on —
   the session reconnects on the next request. *)
let client cfg ~host ~port ~k ~n ~rng =
  let tally =
    { issued = 0;
      t_ok = 0;
      t_errors = Hashtbl.create 8;
      t_transport = 0;
      t_transport_kinds = Hashtbl.create 8;
      t_pri = Hashtbl.create 2;
      lats = [];
      reports = []
    }
  in
  let pri_account priority ~ok ~shed =
    let key = P.priority_to_string priority in
    let i, o, s =
      Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tally.t_pri key)
    in
    Hashtbl.replace tally.t_pri key
      (i + 1, o + (if ok then 1 else 0), s + if shed then 1 else 0)
  in
  let solver =
    match cfg.solver with
    | Some make -> make ~tag:cfg.tag ~conn:k
    | None ->
        let session =
          Client.open_session ~host ~read_timeout_s:cfg.read_timeout_s
            ?connect_timeout_s:cfg.connect_timeout_s ~retry:cfg.retry ~port ()
        in
        { sv_solve =
            (fun ?timeout_s ?priority ~idem entry ->
              Client.session_solve session ?timeout_s ?priority ~idem entry);
          sv_close = (fun () -> Client.close_session session)
        }
  in
  Fun.protect
    ~finally:(fun () -> solver.sv_close ())
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let interval = match cfg.mode with Closed -> 0. | Open r -> 1. /. r in
      for i = 0 to n - 1 do
        (match cfg.mode with
        | Closed -> ()
        | Open _ ->
            let slot = t0 +. (float_of_int i *. interval) in
            let wait = slot -. Unix.gettimeofday () in
            if wait > 0. then Unix.sleepf wait);
        let entry = Tt_util.Rng.pick rng cfg.entries in
        let idem = Printf.sprintf "%s%d-c%d-r%d" cfg.tag cfg.seed k i in
        (* The priority draw is a pure hash gate on (seed, conn, i) —
           independent of the entry RNG stream, so setting a batch
           share changes which requests are batch without changing
           which entries are drawn. *)
        let priority =
          if
            Overload.hedge_gate ~seed:cfg.seed ~key:idem
              ~ratio:cfg.batch_share
          then P.Batch
          else P.Interactive
        in
        tally.issued <- tally.issued + 1;
        let sent = Unix.gettimeofday () in
        match
          solver.sv_solve ?timeout_s:cfg.timeout_s ~priority ~idem entry
        with
        | Ok reports ->
            tally.lats <- (Unix.gettimeofday () -. sent) :: tally.lats;
            tally.t_ok <- tally.t_ok + 1;
            pri_account priority ~ok:true ~shed:false;
            tally.reports <- List.rev_append reports tally.reports
        | Error (Client.Refused (code, _)) ->
            tally.lats <- (Unix.gettimeofday () -. sent) :: tally.lats;
            pri_account priority ~ok:false
              ~shed:
                (match code with
                | P.Overloaded | P.Deadline_exceeded -> true
                | _ -> false);
            count_error tally (P.error_code_to_string code)
        | Error (Client.Transport msg) ->
            tally.t_transport <- tally.t_transport + 1;
            pri_account priority ~ok:false ~shed:false;
            bump tally.t_transport_kinds (transport_kind msg)
      done);
  tally

type summary = {
  requests : int;
  ok : int;
  by_priority : (string * class_stats) list;
  errors : (string * int) list;
  transport_errors : int;
  transport_breakdown : (string * int) list;
  jobs : int;
  job_kinds : (string * int) list;
  wall_s : float;
  throughput_rps : float;
  mean_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  max_s : float;
  value_digest : string option;
  proxy : Netfault.stats option;
}

let run cfg =
  if cfg.connections < 1 then invalid_arg "Loadgen.run: connections < 1";
  if cfg.requests < 1 then invalid_arg "Loadgen.run: requests < 1";
  if Array.length cfg.entries = 0 then invalid_arg "Loadgen.run: no entries";
  if cfg.chaos <> None && cfg.solver <> None then
    invalid_arg
      "Loadgen.run: chaos proxies one (host, port) endpoint; a custom solver \
       routes elsewhere — front the custom endpoints with Netfault directly";
  (* Under --chaos, interpose the seeded fault proxy and aim every
     client at it; the summary then also carries the proxy's injection
     counters, so a run can assert that faults actually fired. *)
  let proxy =
    Option.map
      (fun faults ->
        let p =
          Netfault.create ~faults ~upstream_host:cfg.host
            ~upstream_port:cfg.port ()
        in
        Netfault.start p;
        p)
      cfg.chaos
  in
  let host, port =
    match proxy with
    | Some p -> ("127.0.0.1", Netfault.port p)
    | None -> (cfg.host, cfg.port)
  in
  let finish () =
    Option.map
      (fun p ->
        let s = Netfault.stats p in
        Netfault.shutdown p;
        s)
      proxy
  in
  let run_clients () =
    let per_conn k =
      (* First [requests mod connections] connections take one extra. *)
      (cfg.requests / cfg.connections)
      + (if k < cfg.requests mod cfg.connections then 1 else 0)
    in
    let t0 = Unix.gettimeofday () in
    let domains =
      Array.init cfg.connections (fun k ->
          let n = per_conn k in
          (* Distinct deterministic stream per connection. *)
          let rng = Tt_util.Rng.create ((cfg.seed * 1000003) + k) in
          Domain.spawn (fun () -> client cfg ~host ~port ~k ~n ~rng))
    in
    let tallies = Array.map Domain.join domains in
    (tallies, Unix.gettimeofday () -. t0)
  in
  let tallies, wall_s =
    match run_clients () with
    | r -> r
    | exception e ->
        ignore (finish ());
        raise e
  in
  let proxy_stats = finish () in
  let issued = Array.fold_left (fun a t -> a + t.issued) 0 tallies in
  let ok = Array.fold_left (fun a t -> a + t.t_ok) 0 tallies in
  let transport = Array.fold_left (fun a t -> a + t.t_transport) 0 tallies in
  let merge_tables field =
    let h = Hashtbl.create 8 in
    Array.iter
      (fun t ->
        Hashtbl.iter
          (fun k v ->
            Hashtbl.replace h k (v + Option.value ~default:0 (Hashtbl.find_opt h k)))
          (field t))
      tallies;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])
  in
  let errors = merge_tables (fun t -> t.t_errors) in
  let transport_breakdown = merge_tables (fun t -> t.t_transport_kinds) in
  let reports =
    Array.fold_left (fun a t -> List.rev_append t.reports a) [] tallies
  in
  let job_kinds =
    let kind_of (r : P.job_report) =
      match r.P.result with
      | Ok (Tt_engine.Job.Memory _) -> "memory"
      | Ok (Tt_engine.Job.Io _) -> "io"
      | Ok (Tt_engine.Job.Sched _) -> "sched"
      | Ok (Tt_engine.Job.Par_sched _) -> "par-sched"
      | Ok (Tt_engine.Job.Pareto _) -> "pareto"
      | Ok (Tt_engine.Job.Approx _) -> "approx"
      | Error _ -> "error"
    in
    let h = Hashtbl.create 8 in
    List.iter (fun r -> bump h (kind_of r)) reports;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])
  in
  let lats =
    Array.of_list
      (Array.fold_left (fun a t -> List.rev_append t.lats a) [] tallies)
  in
  let q p =
    if Array.length lats = 0 then nan else Tt_util.Statistics.quantile lats p
  in
  let by_priority =
    let h = Hashtbl.create 2 in
    Array.iter
      (fun t ->
        Hashtbl.iter
          (fun k (i, o, s) ->
            let pi, po, ps =
              Option.value ~default:(0, 0, 0) (Hashtbl.find_opt h k)
            in
            Hashtbl.replace h k (pi + i, po + o, ps + s))
          t.t_pri)
      tallies;
    List.sort compare
      (Hashtbl.fold
         (fun k (i, o, s) acc -> (k, { issued = i; ok = o; shed = s }) :: acc)
         h [])
  in
  { requests = issued;
    ok;
    by_priority;
    errors;
    transport_errors = transport;
    transport_breakdown;
    jobs = List.length reports;
    job_kinds;
    wall_s;
    throughput_rps = (if wall_s > 0. then float_of_int issued /. wall_s else nan);
    mean_s = Tt_util.Statistics.mean lats;
    p50_s = q 0.5;
    p95_s = q 0.95;
    p99_s = q 0.99;
    max_s = (if Array.length lats = 0 then 0. else snd (Tt_util.Statistics.min_max lats));
    value_digest = (if reports = [] then None else Some (P.value_digest reports));
    proxy = proxy_stats
  }

let summary_to_string s =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "requests: %d (ok %d, errors %d, transport errors %d)\n" s.requests s.ok
    (List.fold_left (fun a (_, v) -> a + v) 0 s.errors)
    s.transport_errors;
  (* Per-priority goodput/shed line, only once batch traffic exists —
     an all-interactive run (every pre-overload gate) keeps its output
     byte-identical. *)
  (match s.by_priority with
  | [] | [ ("interactive", _) ] -> ()
  | classes ->
      pf "priority:";
      List.iter
        (fun (name, (c : class_stats)) ->
          pf " %s issued=%d ok=%d shed=%d goodput=%.3f" name c.issued c.ok
            c.shed
            (if c.issued = 0 then 0.
             else float_of_int c.ok /. float_of_int c.issued))
        classes;
      pf "\n");
  (match s.errors with
  | [] -> pf "errors: none\n"
  | errs ->
      pf "errors:";
      List.iter (fun (code, n) -> pf " %s=%d" code n) errs;
      pf "\n");
  (match s.transport_breakdown with
  | [] -> ()
  | kinds ->
      pf "transport:";
      List.iter (fun (kind, n) -> pf " %s=%d" kind n) kinds;
      pf "\n");
  pf "jobs: %d" s.jobs;
  List.iter (fun (kind, n) -> pf " %s=%d" kind n) s.job_kinds;
  pf "\n";
  pf "wall: %.3f s, throughput: %.1f req/s\n" s.wall_s s.throughput_rps;
  pf "latency: mean %.4f s, p50 %.4f s, p95 %.4f s, p99 %.4f s, max %.4f s\n"
    s.mean_s s.p50_s s.p95_s s.p99_s s.max_s;
  (match s.proxy with
  | None -> ()
  | Some p ->
      pf
        "chaos proxy: %d conns, %d drops, %d truncations, %d stalls, %d \
         splits, %d bytes\n"
        p.Netfault.connections p.Netfault.drops p.Netfault.truncations
        p.Netfault.stalls p.Netfault.splits p.Netfault.forwarded_bytes);
  (match s.value_digest with
  | Some d -> pf "value digest: %s\n" d
  | None -> pf "value digest: (no results)\n");
  Buffer.contents b
