(* Two-class bounded admission queue: one shared capacity, two internal
   FIFO rings. [pop] serves the interactive ring first, so queued batch
   work never delays an interactive request — the queue-level half of
   brownout (the admission-time half, shedding batch pushes early,
   lives in {!Overload.shed_decision}). *)

type 'a ring = {
  slots : 'a option array;
  mutable head : int;  (* next pop position *)
  mutable len : int;
}

type 'a t = {
  interactive : 'a ring;
  batch : 'a ring;
  capacity : int;  (* shared across both rings *)
  mutable is_closed : bool;
  mutable pushed : int;
  mutable rejected : int;
  mutable high_watermark : int;
  mu : Mutex.t;
  nonempty : Condition.t;
}

type stats = { pushed : int; rejected : int; high_watermark : int }

let make_ring capacity = { slots = Array.make capacity None; head = 0; len = 0 }

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity < 1";
  { interactive = make_ring capacity;
    batch = make_ring capacity;
    capacity;
    is_closed = false;
    pushed = 0;
    rejected = 0;
    high_watermark = 0;
    mu = Mutex.create ();
    nonempty = Condition.create ()
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let capacity t = t.capacity
let total t = t.interactive.len + t.batch.len
let length t = locked t (fun () -> total t)
let closed t = locked t (fun () -> t.is_closed)

let ring_push r v =
  r.slots.((r.head + r.len) mod Array.length r.slots) <- Some v;
  r.len <- r.len + 1

let ring_pop r =
  let v = r.slots.(r.head) in
  r.slots.(r.head) <- None;
  r.head <- (r.head + 1) mod Array.length r.slots;
  r.len <- r.len - 1;
  v

let try_push t ?(batch = false) v =
  locked t (fun () ->
      if t.is_closed || total t = t.capacity then begin
        t.rejected <- t.rejected + 1;
        false
      end
      else begin
        ring_push (if batch then t.batch else t.interactive) v;
        t.pushed <- t.pushed + 1;
        if total t > t.high_watermark then t.high_watermark <- total t;
        Condition.signal t.nonempty;
        true
      end)

let stats t =
  locked t (fun () ->
      { pushed = t.pushed; rejected = t.rejected; high_watermark = t.high_watermark })

let pop t =
  locked t (fun () ->
      while total t = 0 && not t.is_closed do
        Condition.wait t.nonempty t.mu
      done;
      if t.interactive.len > 0 then ring_pop t.interactive
      else if t.batch.len > 0 then ring_pop t.batch
      else None)

let close t =
  locked t (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.nonempty)
