type 'a t = {
  ring : 'a option array;
  mutable head : int;  (* next pop position *)
  mutable len : int;
  mutable is_closed : bool;
  mutable pushed : int;
  mutable rejected : int;
  mutable high_watermark : int;
  mu : Mutex.t;
  nonempty : Condition.t;
}

type stats = { pushed : int; rejected : int; high_watermark : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity < 1";
  { ring = Array.make capacity None;
    head = 0;
    len = 0;
    is_closed = false;
    pushed = 0;
    rejected = 0;
    high_watermark = 0;
    mu = Mutex.create ();
    nonempty = Condition.create ()
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let capacity t = Array.length t.ring
let length t = locked t (fun () -> t.len)
let closed t = locked t (fun () -> t.is_closed)

let try_push t v =
  locked t (fun () ->
      if t.is_closed || t.len = Array.length t.ring then begin
        t.rejected <- t.rejected + 1;
        false
      end
      else begin
        t.ring.((t.head + t.len) mod Array.length t.ring) <- Some v;
        t.len <- t.len + 1;
        t.pushed <- t.pushed + 1;
        if t.len > t.high_watermark then t.high_watermark <- t.len;
        Condition.signal t.nonempty;
        true
      end)

let stats t =
  locked t (fun () ->
      { pushed = t.pushed; rejected = t.rejected; high_watermark = t.high_watermark })

let pop t =
  locked t (fun () ->
      while t.len = 0 && not t.is_closed do
        Condition.wait t.nonempty t.mu
      done;
      if t.len = 0 then None
      else begin
        let v = t.ring.(t.head) in
        t.ring.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.ring;
        t.len <- t.len - 1;
        v
      end)

let close t =
  locked t (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.nonempty)
