(** Seeded, deterministic in-process TCP fault proxy.

    The proxy listens on a local port, forwards every accepted
    connection to an upstream [host:port], and injects network faults
    on the way: connection drops, truncated writes, stalls, and
    single-byte-dribble splits that exercise frame reassembly.

    {b Determinism.} Mirroring {!Tt_engine.Fault}, every injection
    decision is a pure function of the fault spec — concretely of
    [(seed, connection id, direction, window index)], where connection
    ids are assigned in accept order and a {e window} is a fixed-size
    span of the forwarded byte stream ({!faults.window} bytes).
    Decisions are made once per window as the stream first reaches it,
    so the fault pattern a connection experiences is independent of
    TCP chunking, read sizes, and scheduling; only {e how far} each
    stream gets (and hence which windows are exercised) depends on the
    traffic. Two runs that send the same bytes over the same
    connection order suffer the same faults.

    The proxy runs in one background domain and serializes all
    forwarding — an injected stall blocks every connection for its
    duration, which is deliberate (stalls should be felt) and bounded
    by {!faults.max_stall_s}.

    Used by the chaos tests, [loadgen --chaos], and the
    [treetrav chaos-proxy] subcommand. *)

(* -------------------------------------------------------------- spec *)

type faults = {
  drop : float;  (** P(drop the connection) per window. *)
  truncate : float;  (** P(forward a prefix of the window, then drop). *)
  stall : float;  (** P(pause forwarding) per window. *)
  split : float;  (** P(dribble the window out in 1–8 byte writes). *)
  max_stall_s : float;  (** Stall duration is uniform in [0, max_stall_s]. *)
  window : int;  (** Window size in bytes (decision granularity). *)
  seed : int;
}

val none : faults
(** All rates zero: a transparent proxy. *)

val create_faults :
  ?drop:float ->
  ?truncate:float ->
  ?stall:float ->
  ?split:float ->
  ?max_stall_s:float ->
  ?window:int ->
  seed:int ->
  unit ->
  faults
(** @raise Invalid_argument when a rate is outside [0, 1], the rates
    sum past 1, [max_stall_s < 0], or [window < 1]. *)

val faults_of_string : string -> (faults, string) result
(** Parse a spec like
    ["drop=0.05,trunc=0.03,stall=0.1,split=0.3,max-stall=0.02,window=256,seed=9"].
    Every key is optional; unknown keys are errors. [truncate] is
    accepted as a synonym for [trunc]. *)

val faults_to_string : faults -> string
(** Canonical spec string; round-trips through {!faults_of_string}. *)

(* --------------------------------------------------------- decisions *)

type action =
  | Forward
  | Drop  (** Close both sides of the connection. *)
  | Truncate of int
      (** Forward at most this many bytes of the window, then drop. *)
  | Stall of float  (** Sleep this long, then forward normally. *)
  | Split  (** Forward the window in 1–8 byte writes with 1 ms gaps. *)

type dir = [ `Up | `Down ]
(** [`Up] is client→upstream, [`Down] is upstream→client. *)

val decision : faults -> conn:int -> dir:dir -> window:int -> action
(** The pure decision function the proxy applies — exposed so tests
    can assert determinism directly. All-zero rates always yield
    {!Forward}. *)

val describe : action -> string

(* ------------------------------------------------------------- proxy *)

type t

type stats = {
  connections : int;  (** Accepted client connections. *)
  drops : int;
  truncations : int;
  stalls : int;
  splits : int;
  forwarded_bytes : int;  (** Bytes relayed, both directions. *)
  severed : int;
      (** Pairs cut (plus connects refused) by a {!Gate_severed}
          gate. *)
}

val injected : stats -> int
(** Total injected faults: drops + truncations + stalls + splits
    ([severed] is a gate effect, not a per-window injection). *)

(* ---------------------------------------------------------------- gate *)

type gate =
  | Gate_open  (** Normal forwarding (with the per-window faults). *)
  | Gate_stalled
      (** Stop servicing data: pairs stay open but nothing flows —
          in-flight bytes park in kernel buffers and resume the moment
          the gate reopens. New connections are accepted but equally
          frozen. Clients see read timeouts. *)
  | Gate_severed
      (** Cut the link: every live pair is closed (both directions at
          once — severing is symmetric by construction) and every new
          connection is accepted then immediately closed. Clients see
          EOF/reset. *)

val gate : t -> gate

val set_gate : t -> gate -> unit
(** Thread-safe; applied by the proxy domain at its next tick (woken
    immediately). This is the partition primitive the nemesis builds
    on: one gated proxy per shard ingress makes "partition shard i
    from everyone" [set_gate proxy_i Gate_severed] and "heal"
    [set_gate proxy_i Gate_open]. *)

val create :
  ?faults:faults ->
  ?host:string ->
  ?port:int ->
  ?upstream_host:string ->
  upstream_port:int ->
  unit ->
  t
(** Bind the listening socket immediately (so {!port} is valid before
    {!start}) but do not accept yet. [port] defaults to 0 = ephemeral;
    [host] and [upstream_host] default to ["127.0.0.1"]. *)

val port : t -> int
(** The actually bound listening port. *)

val start : t -> unit
(** Run the proxy loop in a background domain. *)

val run : t -> unit
(** Run the proxy loop on the calling domain until {!shutdown} or
    {!request_stop} stops it. *)

val request_stop : t -> unit
(** Ask the loop to stop; returns immediately. Safe from any domain
    and from signal handlers. Idempotent. *)

val shutdown : t -> unit
(** Stop the loop, close the listener and every open connection, and
    join the {!start} domain. Idempotent. *)

val stats : t -> stats
