type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  mutable dummy : 'a option;
      (* element used to fill unused slots, captured from the first
         insertion so that no [Obj.magic] is needed *)
}

let create () = { data = [||]; size = 0; dummy = None }

let make n x =
  if n < 0 then invalid_arg "Dynarray_compat.make";
  { data = Array.make (max n 1) x; size = n; dummy = Some x }

let length a = a.size
let is_empty a = a.size = 0

let check a i name =
  if i < 0 || i >= a.size then
    invalid_arg (Printf.sprintf "Dynarray_compat.%s: index %d out of [0,%d)" name i a.size)

let get a i =
  check a i "get";
  a.data.(i)

let set a i x =
  check a i "set";
  a.data.(i) <- x

let ensure_capacity a extra x =
  let needed = a.size + extra in
  let cap = Array.length a.data in
  if cap < needed then begin
    let cap' = max needed (max 8 (2 * cap)) in
    let data' = Array.make cap' x in
    Array.blit a.data 0 data' 0 a.size;
    a.data <- data'
  end

let add_last a x =
  (match a.dummy with None -> a.dummy <- Some x | Some _ -> ());
  ensure_capacity a 1 x;
  a.data.(a.size) <- x;
  a.size <- a.size + 1

let append_array a arr =
  Array.iter (add_last a) arr

let append a b =
  for i = 0 to b.size - 1 do
    add_last a b.data.(i)
  done

let pop_last a =
  if a.size = 0 then invalid_arg "Dynarray_compat.pop_last: empty";
  a.size <- a.size - 1;
  let x = a.data.(a.size) in
  (* release the slot for the GC when possible *)
  (match a.dummy with Some d -> a.data.(a.size) <- d | None -> ());
  x

let last a =
  if a.size = 0 then invalid_arg "Dynarray_compat.last: empty";
  a.data.(a.size - 1)

let clear a =
  (match a.dummy with
  | Some d -> Array.fill a.data 0 a.size d
  | None -> ());
  a.size <- 0

let to_array a = Array.sub a.data 0 a.size

let to_list a =
  let rec go i acc = if i < 0 then acc else go (i - 1) (a.data.(i) :: acc) in
  go (a.size - 1) []

let of_array arr =
  if Array.length arr = 0 then create ()
  else { data = Array.copy arr; size = Array.length arr; dummy = Some arr.(0) }

let of_list l = of_array (Array.of_list l)

let iter f a =
  for i = 0 to a.size - 1 do
    f a.data.(i)
  done

let iteri f a =
  for i = 0 to a.size - 1 do
    f i a.data.(i)
  done

let fold_left f acc a =
  let acc = ref acc in
  for i = 0 to a.size - 1 do
    acc := f !acc a.data.(i)
  done;
  !acc

let exists p a =
  let rec go i = i < a.size && (p a.data.(i) || go (i + 1)) in
  go 0

let map f a =
  let b = create () in
  iter (fun x -> add_last b (f x)) a;
  b

let filter_in_place p a =
  (* stable compaction: keep-order write pointer, then release the tail
     slots for the GC *)
  let w = ref 0 in
  for r = 0 to a.size - 1 do
    let x = a.data.(r) in
    if p x then begin
      if !w <> r then a.data.(!w) <- x;
      incr w
    end
  done;
  (match a.dummy with
  | Some d -> Array.fill a.data !w (a.size - !w) d
  | None -> ());
  a.size <- !w
