(** Wall-clock timing for the runtime performance profiles (paper
    Figure 6) and the service layer.

    Clock choice: [Unix.gettimeofday] — {e wall} time, not [Sys.time].
    [Sys.time] reports process CPU time, which stands still while a
    domain blocks (sleeps, socket I/O) and, on OCaml 5 multicore runs,
    sums the CPU of every domain — both wrong for "how long did this
    take". The measured thunk is [Sys.opaque_identity]-protected so the
    compiler cannot hoist the work out of the timed region. *)

val now : unit -> float
(** Current wall-clock time in seconds (Unix epoch). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock time in seconds. *)

val time_repeat : ?min_time:float -> (unit -> 'a) -> 'a * float
(** [time_repeat f] runs [f] repeatedly until at least [min_time] seconds
    (default 0.01) have elapsed and returns the result of the last run and
    the average seconds per run. Stabilizes measurements of sub-millisecond
    algorithms on small trees. *)
