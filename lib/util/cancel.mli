(** Cooperative cancellation/deadline tokens.

    OCaml 5 domains cannot be preempted, so a runaway solver holds its
    domain until it returns. A token makes interruption cooperative: the
    long-running solvers ({!Tt_core.Explore}, [Minio_search],
    [Brute_force], [Minio_exact]) poll the token inside their hot loops
    and raise {!Cancelled} when it has expired, freeing the domain within
    one poll interval instead of at completion.

    A token expires when {!cancel} is called (from any domain — the flag
    is atomic) or when its deadline passes. Deadline clock reads are
    amortized (first poll, then every 64th), so polling in a tight loop
    costs one atomic load. *)

type t

exception Cancelled
(** Raised by {!check} on an expired token. The {!Tt_engine.Executor}
    maps it to [Error (Timed_out _)] for the owning job. *)

val never : t
(** A token that never expires ([cancel] on it is possible but it is
    shared — use {!create} for per-job tokens). Polling it is one atomic
    load; use it as the default when no deadline applies. *)

val create : ?deadline_after:float -> unit -> t
(** A fresh token; with [deadline_after] (seconds from now) it expires on
    its own once the wall clock passes the deadline. *)

val linked : ?parent:t -> ?deadline_after:float -> unit -> t
(** Like {!create}, but the token also expires as soon as [parent] has —
    whichever of the parent, the own deadline, or an explicit {!cancel}
    fires first. This is how a per-request deadline composes with the
    executor's per-job timeout: the job token is linked to the request
    token, so cancelling the request interrupts the running job at its
    next poll. Without [parent] it is exactly {!create}. *)

val cancel : t -> unit
(** Expire the token now. Safe from any domain. *)

val cancelled : t -> bool
(** Poll: has the token expired? Counts towards the clock-read
    amortization. *)

val check : t -> unit
(** @raise Cancelled if the token has expired. *)

val with_deadline : ?timeout:float -> (t -> 'a) -> 'a
(** [with_deadline ?timeout f] runs [f] with a fresh deadline token
    ({!never} when [timeout] is [None]). *)
