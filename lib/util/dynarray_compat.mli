(** Growable arrays.

    OCaml 5.1 does not ship [Stdlib.Dynarray] (it appears in 5.2), so this
    module provides the subset needed throughout the project: amortized
    O(1) [add_last], random access, and conversion to plain arrays. *)

type 'a t
(** A resizable array of ['a]. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty dynamic array. *)

val make : int -> 'a -> 'a t
(** [make n x] is a dynamic array holding [n] copies of [x].
    @raise Invalid_argument if [n < 0]. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool
(** [is_empty a] is [length a = 0]. *)

val get : 'a t -> int -> 'a
(** [get a i] is the [i]-th element. @raise Invalid_argument if out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit
(** [set a i x] replaces the [i]-th element. @raise Invalid_argument if
    out of bounds. *)

val add_last : 'a t -> 'a -> unit
(** Append one element at the end (amortized O(1)). *)

val append_array : 'a t -> 'a array -> unit
(** Append all elements of an array, in order. *)

val append : 'a t -> 'a t -> unit
(** [append a b] appends the contents of [b] at the end of [a]. *)

val pop_last : 'a t -> 'a
(** Remove and return the last element. @raise Invalid_argument if
    empty. *)

val last : 'a t -> 'a
(** Return the last element without removing it. @raise Invalid_argument
    if empty. *)

val clear : 'a t -> unit
(** Remove all elements (keeps the backing storage). *)

val to_array : 'a t -> 'a array
(** Snapshot of the contents as a fresh array. *)

val to_list : 'a t -> 'a list
(** Snapshot of the contents as a list. *)

val of_array : 'a array -> 'a t
(** Dynamic array initialized with a copy of the given array. *)

val of_list : 'a list -> 'a t
(** Dynamic array initialized with the elements of the list. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate over elements, first to last. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit
(** Iterate with indices. *)

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Left fold over elements. *)

val exists : ('a -> bool) -> 'a t -> bool
(** [exists p a] holds iff some element satisfies [p]. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** [map f a] is a fresh dynamic array of the images of [a]'s elements. *)

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only the elements satisfying the predicate, preserving their
    relative order, without allocating. Used to compact tombstoned
    worklists (see {!Tt_core.Explore}). *)
