(* A set of integers over a fixed universe [0, n), stored as a tower of
   bitset levels: level 0 holds one bit per element and each level above
   holds one summary bit per word below. All navigation operations touch
   one word per level, so they cost O(log n) with a base of
   [Sys.int_size] — three levels cover every tree this repo handles. *)

let bits_per_word = Sys.int_size

type t = {
  levels : int array array; (* levels.(0) = element bits, then summaries *)
  n : int;
  mutable card : int;
}

let words_for n = ((n + bits_per_word) - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Ordered_set.create";
  let rec build acc len =
    let words = max 1 (words_for len) in
    let acc = Array.make words 0 :: acc in
    if words = 1 then List.rev acc else build acc words
  in
  { levels = Array.of_list (build [] n); n; card = 0 }

let capacity t = t.n
let cardinal t = t.card
let is_empty t = t.card = 0

let check t i name =
  if i < 0 || i >= t.n then invalid_arg ("Ordered_set." ^ name ^ ": out of range")

let mem t i =
  i >= 0 && i < t.n
  && t.levels.(0).(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i "add";
  if not (mem t i) then begin
    t.card <- t.card + 1;
    let idx = ref i in
    (try
       Array.iter
         (fun words ->
           let w = !idx / bits_per_word and b = !idx mod bits_per_word in
           let before = words.(w) in
           words.(w) <- before lor (1 lsl b);
           (* a word that was already non-empty is already summarized *)
           if before <> 0 then raise Exit;
           idx := w)
         t.levels
     with Exit -> ())
  end

let remove t i =
  if mem t i then begin
    t.card <- t.card - 1;
    let idx = ref i in
    (try
       Array.iter
         (fun words ->
           let w = !idx / bits_per_word and b = !idx mod bits_per_word in
           words.(w) <- words.(w) land lnot (1 lsl b);
           (* summaries above stay valid while the word is non-empty *)
           if words.(w) <> 0 then raise Exit;
           idx := w)
         t.levels
     with Exit -> ())
  end

(* index of the highest set bit; [x] must be non-zero *)
let top_bit x =
  let r = ref 0 and x = ref x in
  if !x lsr 32 <> 0 then begin r := !r + 32; x := !x lsr 32 end;
  if !x lsr 16 <> 0 then begin r := !r + 16; x := !x lsr 16 end;
  if !x lsr 8 <> 0 then begin r := !r + 8; x := !x lsr 8 end;
  if !x lsr 4 <> 0 then begin r := !r + 4; x := !x lsr 4 end;
  if !x lsr 2 <> 0 then begin r := !r + 2; x := !x lsr 2 end;
  if !x lsr 1 <> 0 then r := !r + 1;
  !r

(* index of the lowest set bit; [x] must be non-zero *)
let bottom_bit x = top_bit (x land -x)

(* largest element of level [l] whose word-path runs through word [w];
   every level at or below [l] is guaranteed non-empty under [w] *)
let rec descend t l w =
  let b = top_bit t.levels.(l).(w) in
  let pos = (w * bits_per_word) + b in
  if l = 0 then pos else descend t (l - 1) pos

(* smallest element, same shape *)
let rec descend_min t l w =
  let b = bottom_bit t.levels.(l).(w) in
  let pos = (w * bits_per_word) + b in
  if l = 0 then pos else descend_min t (l - 1) pos

let max_elt t =
  if t.card = 0 then None
  else begin
    let top = Array.length t.levels - 1 in
    Some (descend t top 0)
  end

let min_elt t =
  if t.card = 0 then None
  else begin
    let top = Array.length t.levels - 1 in
    Some (descend_min t top 0)
  end

let pred t i =
  if t.card = 0 then None
  else if i >= t.n then max_elt t (* every member is strictly below [n] *)
  else begin
    if i <= 0 then None
    else begin
      (* climb until a level has a set bit strictly below the path, then
         descend taking the highest bit at each level *)
      let rec climb l idx =
        if l >= Array.length t.levels then None
        else begin
          let w = idx / bits_per_word and b = idx mod bits_per_word in
          let mask = t.levels.(l).(w) land ((1 lsl b) - 1) in
          if mask <> 0 then begin
            let pos = (w * bits_per_word) + top_bit mask in
            Some (if l = 0 then pos else descend t (l - 1) pos)
          end
          else climb (l + 1) w
        end
      in
      climb 0 i
    end
  end

let succ t i =
  if t.card = 0 || i >= t.n - 1 then None
  else begin
    let i = max i (-1) in
    (* mirror of [pred]: mask the bits strictly above the path, else climb *)
    let rec climb l idx =
      if l >= Array.length t.levels then None
      else begin
        let w = idx / bits_per_word and b = idx mod bits_per_word in
        (* [b] can be the top bit of the word: shifting by b+1 would be
           out of range, but the mask is then simply empty *)
        let mask =
          if b = bits_per_word - 1 then 0
          else t.levels.(l).(w) land lnot ((1 lsl (b + 1)) - 1)
        in
        if mask <> 0 then begin
          let pos = (w * bits_per_word) + bottom_bit mask in
          Some (if l = 0 then pos else descend_min t (l - 1) pos)
        end
        else climb (l + 1) w
      end
    in
    if i < 0 then min_elt t else climb 0 i
  end

let to_desc_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some x -> go (x :: acc) (pred t x)
  in
  go [] (max_elt t)

let clear t =
  Array.iter (fun words -> Array.fill words 0 (Array.length words) 0) t.levels;
  t.card <- 0
