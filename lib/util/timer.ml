(* Wall clock, not [Sys.time]: [Sys.time] is *process CPU time*, which
   (a) barely advances while a domain blocks (sleeps, socket reads) and
   (b) under multicore runs accumulates the CPU of *all* domains, so a
   2-domain run would report ~2x the elapsed time. Everything this
   module times — bench sections, server latencies — means elapsed
   wall-clock seconds. *)
let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = Sys.opaque_identity (f ()) in
  let t1 = now () in
  (r, t1 -. t0)

let time_repeat ?(min_time = 0.01) f =
  let t0 = now () in
  let rec loop runs =
    let r = Sys.opaque_identity (f ()) in
    let elapsed = now () -. t0 in
    if elapsed >= min_time then (r, elapsed /. float_of_int runs) else loop (runs + 1)
  in
  loop 1
