(** Ordered set of integers over a fixed universe [0, n), backed by a
    tower of summary bitsets. [add], [remove], [mem], [max_elt] and
    [pred] all cost one word operation per level — O(log n) with base
    [Sys.int_size], i.e. at most three levels for any tree in this
    repository. Used by {!Tt_core.Minio} to keep the eviction-candidate
    set (keyed by latest-use position) incrementally maintained instead
    of rebuilt and re-sorted at every deficit event. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0, n).
    @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int
(** The universe bound [n]. *)

val cardinal : t -> int
(** Number of members, O(1). *)

val is_empty : t -> bool

val mem : t -> int -> bool
(** Membership; out-of-range values are simply absent. *)

val add : t -> int -> unit
(** Insert (idempotent).
    @raise Invalid_argument if the value is outside [0, n). *)

val remove : t -> int -> unit
(** Delete (idempotent, out-of-range values ignored). *)

val max_elt : t -> int option
(** Largest member, or [None] when empty. *)

val min_elt : t -> int option
(** Smallest member, or [None] when empty. *)

val pred : t -> int -> int option
(** [pred t i] is the largest member strictly smaller than [i] (which
    need not be a member; values above the universe are clamped). *)

val succ : t -> int -> int option
(** [succ t i] is the smallest member strictly greater than [i] (which
    need not be a member; negative values are clamped, so [succ t (-1)]
    is {!min_elt}). *)

val to_desc_list : t -> int list
(** All members, largest first — O(card · log n), for tests and debug. *)

val clear : t -> unit
(** Remove every member. *)
