type t = {
  flag : bool Atomic.t;
  deadline : float option;
  mutable polls : int;
  parent : t option;
}

exception Cancelled

let never = { flag = Atomic.make false; deadline = None; polls = 0; parent = None }

let make ?parent ?deadline_after () =
  let deadline =
    Option.map (fun d -> Unix.gettimeofday () +. d) deadline_after
  in
  { flag = Atomic.make false; deadline; polls = 0; parent }

let create ?deadline_after () = make ?deadline_after ()
let linked ?parent ?deadline_after () = make ?parent ?deadline_after ()

let cancel t = Atomic.set t.flag true

(* Clock reads are amortized: the first poll and then every 64th consult
   [gettimeofday]; flag reads happen on every poll. The poll counter is
   only touched by the polling domain, so a plain mutable field is safe
   (a racy increment merely perturbs the amortization, never
   correctness). *)
let poll_mask = 63

let rec cancelled t =
  Atomic.get t.flag
  || (match t.parent with
     | Some p when cancelled p ->
         Atomic.set t.flag true;
         true
     | _ -> false)
  ||
  match t.deadline with
  | None -> false
  | Some d ->
      t.polls <- t.polls + 1;
      (t.polls = 1 || t.polls land poll_mask = 0)
      && Unix.gettimeofday () >= d
      && begin
           Atomic.set t.flag true;
           true
         end

let check t = if cancelled t then raise Cancelled

let with_deadline ?timeout f =
  match timeout with
  | None -> f never
  | Some s -> f (create ~deadline_after:s ())
