(** Cross-shard cache peering: the engine cache's [?fetch] hook.

    A shard that misses locally on a job id asks the id's ring owner
    — the shard the router would have sent it to — whether its cache
    holds the result, via the protocol's [peek] op. Peeks are answered
    inline from the owner's cache ({!Tt_engine.Cache.find}, which
    never consults {e its} fetch hook — no peek cascades) so a miss
    costs one round trip, never a recursive solve.

    This is what makes failover cheap: when a successor inherits a
    dead shard's keys it warms up from its own computes, and when the
    shard comes back it can re-fill from the successor the same way. *)

val default_read_timeout_s : float
(** 0.15 s. A peek is an optimization running on a worker domain: it
    must always be far cheaper than the compute it might save, even
    when the peer has stalled mid-connection. *)

val fetch :
  self:string ->
  ring:Ring.t ->
  ?warm_from_successor:bool ->
  ?connect_timeout_s:float ->
  ?read_timeout_s:float ->
  ?health:Health.t ->
  metrics:Metrics.t ->
  unit ->
  string ->
  Tt_engine.Job.outcome option
(** [fetch ~self ~ring ~metrics () key] peeks [key] at its ring owner
    over a short-lived bounded connection. Returns [None] — degrading
    to a local compute — when this shard ([self], a ring node name) is
    itself the owner, on a peer miss, and on {e any} error (connect
    refused/timeout, read timeout, refusal); hits and misses are
    counted in [metrics]. Thread-safe; called concurrently from worker
    domains.

    [health], when given, is a per-peer circuit breaker consulted
    before and fed after every peek. A peer that {e answers} — hit or
    miss — is healthy; only transport-level silence (connect failure,
    read timeout, reset) counts toward opening. While the breaker is
    open the peek short-circuits to [None] (compute locally) without
    touching the network, so a stalled peer cannot serialize every
    other shard's cache misses behind its read timeout.

    [warm_from_successor] (default [false]) is cache warming for a
    shard that {e joined} an existing ring: when [self] is the owner,
    instead of giving up it peeks the key's second node in sweep order
    — which, because placement is pure in node names, is exactly the
    key's owner before the join. Each warm peek fills this shard's
    cache through the normal [find_or_compute] path, migrating owned
    keys lazily as traffic touches them. *)
