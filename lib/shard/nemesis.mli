(** Deterministic nemesis: a seeded fault schedule driven against a
    live, supervised, proxied {!Cluster} under load.

    {b Determinism.} The schedule is a pure function of the config —
    each step's decision derives from [Digest.string] of
    [(seed, step)] folded over a model of the cluster (ring members,
    open disturbance, coverage debt), mirroring how
    {!Tt_engine.Fault} and {!Tt_server.Netfault} make injection
    decisions. Same seed, same plan, byte for byte — which is what
    [make chaos-nemesis] asserts by diffing two [--plan-only] runs.

    {b Shape of a schedule.} One disturbance in flight at a time: any
    open partition/stall is healed before the next fault fires (two
    overlapping faults could take out every replica of a key for a
    whole step in a quorum-less tier). The first steps pay off a
    {e coverage debt} — at least one kill (exercising the supervisor
    and a breaker open/close cycle), one partition or stall
    (exercising the {!Tt_server.Netfault} gate), and one membership
    change (exercising ring epochs) — then free play, seeded, over
    every feasible fault.

    {b Invariants checked} ({!check}): after the schedule completes
    and the cluster quiesces, a full sweep of the workload yields the
    {e same value digest as a pristine single-shard cluster}; no reply
    admitted during chaos contradicted the clean values; every
    in-ring shard is back up with its breaker closed; and the run
    actually exercised ≥1 supervised restart, ≥1 breaker open and
    close, and ≥1 ring reconfiguration. *)

type fault =
  | Kill of int  (** Graceful shard kill; the supervisor restarts it. *)
  | Stall of int  (** Freeze the shard's ingress ([Gate_stalled]). *)
  | Partition of int  (** Sever it symmetrically ([Gate_severed]). *)
  | Heal of int  (** Reopen its gate. *)
  | Join  (** Boot and ring-add a fresh shard. *)
  | Leave of int  (** Graceful ring departure. *)

val fault_to_string : fault -> string
(** ["kill s1"], ["partition s0"], ["join"], … *)

val plan_to_string : fault list -> string
(** One fault per line — the [--plan-only] output diffed for
    determinism. *)

type config = {
  seed : int;
  steps : int;
  shards : int;  (** Initial ring size (≥ 1; the gate runs with 3). *)
  max_shards : int;  (** [Join] is only scheduled below this. *)
  requests : int;  (** Load issued while the schedule runs. *)
  connections : int;
  step_gap_s : float;  (** Wall-clock gap between schedule steps. *)
  restart_delay_s : float;
      (** Supervisor restart delay — long enough for breakers to open
          while the shard is down, so every kill also exercises a
          breaker cycle. *)
  workers : int;  (** Worker domains per shard. *)
  quiesce_timeout_s : float;
      (** Recovery bound: how long {!run} waits after the schedule for
          all shards up + all breakers closed before declaring the
          run unrecovered. *)
}

val default_config : config
(** Seed 11, 8 steps, 3 shards (max 5), 400 requests on 4
    connections, 0.4 s gap, 0.5 s restart delay. *)

val plan : config -> fault list
(** The schedule alone — pure, no I/O. On a ring too small to shrink
    with joins exhausted (e.g. a 1-shard bench baseline), membership
    steps degrade to kills.
    @raise Invalid_argument on [shards < 1], [max_shards < shards], or
    [steps < 1]. *)

type report = {
  faults : fault list;  (** The plan that ran. *)
  events : Cluster.event list;  (** Runtime observations, in order. *)
  load : Tt_server.Loadgen.summary;
  timeline : (int * int * int) list;
      (** Availability per second of load: (second, ok, errors) — the
          error-rate timeline the bench section reports per shard
          count. *)
  clean_digest : string;  (** Pristine 1-shard reference. *)
  final_digest : string;  (** Post-quiescence full sweep. *)
  digest_match : bool;
  lost_admitted : int;
      (** Ok replies during chaos whose per-entry value digest
          disagreed with the clean reference. *)
  restarts : int;
  breaker_opens : int;
  breaker_closes : int;
  ring_epoch : int;
  recovered : bool;
}

val run : config -> report
(** Build the reference digests on a pristine single-shard cluster,
    then boot a [~proxied ~supervise] cluster, drive {!plan} against
    it while a load generator issues [requests] through resilient
    retrying sessions, heal, wait for quiescence, and sweep. Several
    seconds of wall clock ([steps × step_gap_s] plus recovery).
    @raise Failure when the reference or final sweep itself cannot
    solve (nothing to measure against). *)

val check : report -> (unit, string) result
(** The acceptance gate: digest parity, zero contradicted replies,
    recovery within bound, and ≥1 restart / breaker open / breaker
    close / ring reconfiguration. *)

val report_to_string : report -> string
(** Multi-line rendering (the [treetrav nemesis] output). *)
