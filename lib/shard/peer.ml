module P = Tt_server.Protocol
module Client = Tt_server.Client

let default_read_timeout_s = 5.

(* The hook runs inside [Cache.find_or_compute] on a worker domain, so
   every failure mode must degrade to [None] (= compute locally) and
   every wait must be short: a wedged peer that stalled peeks for the
   full solve time would be slower than just computing. *)
let fetch ~self ~ring ?(connect_timeout_s = Forward.default_connect_timeout_s)
    ?(read_timeout_s = default_read_timeout_s) ~metrics () key =
  let owner = Ring.owner ring key in
  if owner.Ring.name = self then
    (* We are the placement target: nobody else is expected to hold
       this key, and peeking would be a self-connection. *)
    None
  else
    let result =
      try
        Client.with_connection ~host:owner.Ring.host ~read_timeout_s
          ~connect_timeout_s ~port:owner.Ring.port (fun c ->
            match Client.call c (P.Peek { key }) with
            | Ok (P.Peeked r) -> r
            | Ok _ | Error _ -> None)
      with Unix.Unix_error _ | Failure _ -> None
    in
    (match result with
    | Some _ -> Metrics.peer_hit metrics
    | None -> Metrics.peer_miss metrics);
    result
