module P = Tt_server.Protocol
module Client = Tt_server.Client

let default_read_timeout_s = 0.15

(* The hook runs inside [Cache.find_or_compute] on a worker domain, so
   every failure mode must degrade to [None] (= compute locally) and
   every wait must be short: a wedged peer that stalled peeks for the
   full solve time would be slower than just computing. A peer that
   answers "not cached" is healthy ([`Miss]); only transport-level
   silence ([`Unreachable]) should count against it. *)
let peek_node (node : Ring.node) ~connect_timeout_s ~read_timeout_s key =
  try
    Client.with_connection ~host:node.Ring.host ~read_timeout_s
      ~connect_timeout_s ~port:node.Ring.port (fun c ->
        match Client.call c (P.Peek { key }) with
        | Ok (P.Peeked (Some r)) -> `Hit r
        | Ok (P.Peeked None) -> `Miss
        | Ok _ -> `Miss  (* answered, just not what we asked for *)
        | Error _ -> `Unreachable)
  with Unix.Unix_error _ | Failure _ -> `Unreachable

let fetch ~self ~ring ?(warm_from_successor = false)
    ?(connect_timeout_s = Forward.default_connect_timeout_s)
    ?(read_timeout_s = default_read_timeout_s) ?health ~metrics () key =
  let owner = Ring.owner ring key in
  let target =
    if owner.Ring.name <> self then Some owner
    else if not warm_from_successor then
      (* We are the placement target: nobody else is expected to hold
         this key, and peeking would be a self-connection. *)
      None
    else
      (* Late-joined shard warming up: under pure-name placement, a
         key this shard now owns was owned {e before the join} by the
         next distinct node in sweep order — ask it, and the answer
         lands in our cache for every later request of this key. *)
      match Ring.successors ring key with
      | _ :: prev_owner :: _ -> Some prev_owner
      | _ -> None
  in
  match target with
  | None -> None
  | Some node -> (
      (* Peeks are strictly an optimization, so an unreachable peer
         must cost ~zero: the breaker eats the read timeout a few
         times, opens, and every later miss computes locally without
         touching the network until the backoff lets one trial
         through. Without this, a stalled peer turns every cache miss
         on every OTHER shard into a blocked worker — the cluster
         fails over the requests and then peering walks them straight
         back into the stall. *)
      let allowed =
        match health with
        | None -> true
        | Some h -> Health.allow h node.Ring.name
      in
      if not allowed then None
      else
        match peek_node node ~connect_timeout_s ~read_timeout_s key with
        | `Hit r ->
            Option.iter (fun h -> Health.success h node.Ring.name) health;
            Metrics.peer_hit metrics;
            Some r
        | `Miss ->
            Option.iter (fun h -> Health.success h node.Ring.name) health;
            Metrics.peer_miss metrics;
            None
        | `Unreachable ->
            Option.iter (fun h -> Health.failure h node.Ring.name) health;
            Metrics.peer_miss metrics;
            None)
