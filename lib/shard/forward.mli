(** Failover forwarding: one pooled connection per shard, swept in
    ring order, consulting the shared circuit breakers, propagating
    deadline budgets, and (optionally) hedging the owner attempt
    against the ring successor.

    Not thread-safe — the router gives each client connection its own
    pool (connections are cheap; contention on a shared pool is not).
    The optional {!Health} breaker set, the routing planner, and the
    {!hedge_state} {e are} shared across pools, so one connection
    discovering a dead (or slow) shard informs every other connection.

    {b Safety of failover and hedging.} A transport failure — or a
    hedge whose loser was already executing — leaves it unknown whether
    the op ran. Re-sending (or double-sending) is safe because the
    router guarantees every forwarded solve carries an idempotency key:
    a duplicate that lands on the {e same} shard is answered from its
    replay cache, and one that lands on a successor recomputes a
    content-addressed job whose result is deterministic — the value
    digest cannot diverge, the cost is at most one redundant compute. *)

type t

val default_connect_timeout_s : float
(** 1 s — failover must move to a successor in about a second, not sit
    out the kernel's SYN-retry budget. *)

(** {2 Hedge state} *)

type hedge_state
(** Shared (thread-safe) hedging state: per-shard RTT windows
    ({!Tt_server.Overload.Rtt}) plus the seeded gate parameters. Create
    one per router and pass it to every pool. *)

val create_hedge :
  ?ratio:float ->
  ?quantile:float ->
  ?min_trigger_s:float ->
  seed:int ->
  unit ->
  hedge_state
(** [ratio] (default 1.0) bounds hedge volume via the pure
    {!Tt_server.Overload.hedge_gate} — a fraction of keys, the same
    keys every seeded replay. [quantile] (default 0.95) sets the
    trigger: a hedge fires only after the owner has been silent for its
    observed p95. [min_trigger_s] (default 2 ms) floors the trigger so
    cache-hot shards don't hedge on scheduler jitter.
    @raise Invalid_argument when [ratio < 0] or [quantile] outside
    (0, 1]. *)

val hedge_observe : hedge_state -> shard:string -> float -> unit
(** Record one observed RTT (seconds) for [shard]. Pools do this
    automatically on every parsed reply; exposed for tests and
    calibration. *)

val hedge_trigger : hedge_state -> shard:string -> float option
(** [shard]'s current trigger — the configured quantile of its RTT
    window, floored at [min_trigger_s] — or [None] while the window
    has too few samples for the quantile to be meaningful. *)

val create :
  ?connect_timeout_s:float ->
  ?read_timeout_s:float ->
  ?retry:Tt_engine.Retry.policy ->
  ?health:Health.t ->
  ?hedge:hedge_state ->
  ?route:(string -> Ring.node list) ->
  metrics:Metrics.t ->
  Ring.t ->
  t
(** [retry] (default {!Tt_engine.Retry.none}) schedules {e whole-ring}
    sweeps: one sweep per remaining delay after the first, sleeping
    the delay between sweeps, keyed by the routed key.

    [health] (default none): per-shard breakers consulted before every
    attempt — a breaker-open shard is skipped without touching the
    network, and every attempt's outcome is reported back
    ({!Health.success} on {e any} parsed reply, refusals included;
    {!Health.failure} on transport failure).

    [hedge] (default none): enables hedged solves — see {!call}.

    [route] (default [Ring.successors ring]) supplies the sweep order
    per key. The router passes its live epoch-memoized planner here,
    so a pool created before a [join]/[leave] still routes against the
    {e current} ring; [route] is re-consulted on every sweep. *)

val ring : t -> Ring.t
(** The ring passed at creation. Static — a router's live ring is
    behind [route], not this accessor. *)

val close : t -> unit

val call :
  t ->
  key:string ->
  ?deadline:float ->
  Tt_server.Protocol.op ->
  (Tt_server.Protocol.body, Tt_server.Protocol.error_code * string) result
(** Sweep [route key] owner-first. Per node: skip breaker-open shards;
    otherwise connect (bounded) if not pooled, send [op], read the
    reply. Transport failures and routable refusals ([shutting_down],
    [overloaded], [internal], [unavailable] — the shard is useless
    right now but a successor can compute any key) drop that node's
    pooled connection and move on, counting a failover; any other
    reply — success {e or} a deterministic refusal like [bad_request]
    — is returned verbatim.

    {b Deadlines.} [deadline] is {e absolute} ([Unix.gettimeofday]
    clock). Every solve attempt rewrites the op's [timeout_s] to the
    remaining budget, so each hop downstream sees only what is left; a
    sweep stops — and a backoff sleep that would land past the deadline
    is never taken — with [Error (Deadline_exceeded, _)] (counted as a
    deadline reject) the moment the budget runs out.

    {b Hedging.} With a {!hedge_state} and a solve op, the first
    attempted node races the ring successor: after the owner has been
    silent for its observed p95 trigger (and the seeded gate admits the
    key, and the remaining budget covers the successor's observed RTT
    per {!Tt_server.Overload.should_hedge}), the same op — same
    idempotency key — is sent to the successor and the first parsed
    reply wins. The loser's pooled connection is dropped (its reply is
    abandoned; the pool reconnects on next use). Outcomes are counted
    as [tt_shard_hedges_total{outcome="won"|"lost"|"failed"}].

    When every sweep of every backoff round fails, returns — counting
    it as unrouted — [Error (Overloaded, _)] when the last routable
    refusal seen was [overloaded] (the cluster is shedding, not dead),
    a retryable [Error (Unavailable, _)] if the final sweep skipped any
    breaker-open shard, and [Error (Internal, _)] when every shard was
    genuinely tried. *)
