(** Failover forwarding: one pooled connection per shard, swept in
    ring order.

    Not thread-safe — the router gives each client connection its own
    pool (connections are cheap; contention on a shared pool is not).

    {b Safety of failover.} A transport failure leaves it unknown
    whether the op executed. Re-sending is safe because the router
    guarantees every forwarded solve carries an idempotency key: a
    retry that lands on the {e same} shard is answered from its replay
    cache, and one that lands on a successor recomputes a
    content-addressed job whose result is deterministic — the value
    digest cannot diverge, the cost is at most one redundant compute. *)

type t

val default_connect_timeout_s : float
(** 1 s — failover must move to a successor in about a second, not sit
    out the kernel's SYN-retry budget. *)

val create :
  ?connect_timeout_s:float ->
  ?read_timeout_s:float ->
  ?retry:Tt_engine.Retry.policy ->
  metrics:Metrics.t ->
  Ring.t ->
  t
(** [retry] (default {!Tt_engine.Retry.none}) schedules {e whole-ring}
    sweeps: one sweep per remaining delay after the first, sleeping
    the delay between sweeps, keyed by the routed key. *)

val ring : t -> Ring.t
val close : t -> unit

val call :
  t ->
  key:string ->
  Tt_server.Protocol.op ->
  (Tt_server.Protocol.body, Tt_server.Protocol.error_code * string) result
(** Sweep [Ring.successors ring key] owner-first. Per node: connect
    (bounded) if not pooled, send [op], read the reply. Transport
    failures and routable refusals ([shutting_down], [overloaded],
    [internal] — the shard is useless right now but a successor can
    compute any key) drop that node's pooled connection and move on,
    counting a failover; any other reply — success {e or} a
    deterministic refusal like [bad_request] — is returned verbatim.
    When every sweep of every backoff round fails, returns a retryable
    [Error (Internal, _)] and counts it as unrouted. *)
