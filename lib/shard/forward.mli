(** Failover forwarding: one pooled connection per shard, swept in
    ring order, consulting the shared circuit breakers.

    Not thread-safe — the router gives each client connection its own
    pool (connections are cheap; contention on a shared pool is not).
    The optional {!Health} breaker set and the routing planner {e are}
    shared across pools, so one connection discovering a dead shard
    spares every other connection the timeout.

    {b Safety of failover.} A transport failure leaves it unknown
    whether the op executed. Re-sending is safe because the router
    guarantees every forwarded solve carries an idempotency key: a
    retry that lands on the {e same} shard is answered from its replay
    cache, and one that lands on a successor recomputes a
    content-addressed job whose result is deterministic — the value
    digest cannot diverge, the cost is at most one redundant compute. *)

type t

val default_connect_timeout_s : float
(** 1 s — failover must move to a successor in about a second, not sit
    out the kernel's SYN-retry budget. *)

val create :
  ?connect_timeout_s:float ->
  ?read_timeout_s:float ->
  ?retry:Tt_engine.Retry.policy ->
  ?health:Health.t ->
  ?route:(string -> Ring.node list) ->
  metrics:Metrics.t ->
  Ring.t ->
  t
(** [retry] (default {!Tt_engine.Retry.none}) schedules {e whole-ring}
    sweeps: one sweep per remaining delay after the first, sleeping
    the delay between sweeps, keyed by the routed key.

    [health] (default none): per-shard breakers consulted before every
    attempt — a breaker-open shard is skipped without touching the
    network, and every attempt's outcome is reported back
    ({!Health.success} on {e any} parsed reply, refusals included;
    {!Health.failure} on transport failure).

    [route] (default [Ring.successors ring]) supplies the sweep order
    per key. The router passes its live epoch-memoized planner here,
    so a pool created before a [join]/[leave] still routes against the
    {e current} ring; [route] is re-consulted on every sweep. *)

val ring : t -> Ring.t
(** The ring passed at creation. Static — a router's live ring is
    behind [route], not this accessor. *)

val close : t -> unit

val call :
  t ->
  key:string ->
  Tt_server.Protocol.op ->
  (Tt_server.Protocol.body, Tt_server.Protocol.error_code * string) result
(** Sweep [route key] owner-first. Per node: skip breaker-open shards;
    otherwise connect (bounded) if not pooled, send [op], read the
    reply. Transport failures and routable refusals ([shutting_down],
    [overloaded], [internal], [unavailable] — the shard is useless
    right now but a successor can compute any key) drop that node's
    pooled connection and move on, counting a failover; any other
    reply — success {e or} a deterministic refusal like [bad_request]
    — is returned verbatim. When every sweep of every backoff round
    fails, returns — counting it as unrouted — a retryable
    [Error (Unavailable, _)] if the final sweep skipped any
    breaker-open shard, and [Error (Internal, _)] when every shard was
    genuinely tried. *)
