module Server = Tt_server.Server
module Netfault = Tt_server.Netfault
module Cache = Tt_engine.Cache
module Job = Tt_engine.Job

type shard = {
  name : string;
  host : string;
  mutable port : int;  (* server port; fixed after the first bind *)
  cache : Job.outcome Cache.t;  (* owned here: survives restarts *)
  peer_metrics : Metrics.t;
  mutable server : Server.t option;
  mutable proxy : Netfault.t option;  (* ingress proxy when [proxied] *)
  mutable removed : bool;  (* left the ring: supervisor ignores it *)
  mutable down_since : float option;  (* supervisor: first death sighting *)
  mutable joined_late : bool;  (* warm cache from ring successor *)
}

type event =
  | Shard_down of string
  | Shard_restarted of string * float  (* name, downtime seconds *)
  | Shard_joined of string
  | Shard_left of string

let event_to_string = function
  | Shard_down n -> Printf.sprintf "down %s" n
  | Shard_restarted (n, dt) -> Printf.sprintf "restarted %s after %.3fs" n dt
  | Shard_joined n -> Printf.sprintf "joined %s" n
  | Shard_left n -> Printf.sprintf "left %s" n

type t = {
  mutable shards : shard array;
  shards_mu : Mutex.t;
  ring_ref : Ring.t option ref;  (* what the peer hooks read *)
  router : Router.t;
  server_config : Server.config;
  workers : int;
  peering : bool;
  proxied : bool;
  restart_delay_s : float;
  on_event : event -> unit;
  stop : bool Atomic.t;
  mutable watchdog : unit Domain.t option;
  mutable supervisor : unit Domain.t option;
}

let shard_name i = Printf.sprintf "s%d" i

(* The ring address of a shard: its ingress proxy when proxied, the
   server itself otherwise. *)
let ring_node (s : shard) =
  { Ring.name = s.name;
    host = s.host;
    port = (match s.proxy with Some p -> Netfault.port p | None -> s.port)
  }

let mk_shard ~peering ~ring_ref name =
  let peer_metrics = Metrics.create () in
  (* Per-peer breaker for the peek path: lives in the hook's closure,
     so each shard remembers which peers stopped answering and stops
     paying their read timeout on every local cache miss. Far more
     aggressive than the router's forward breaker — a peek is an
     optimization, so one silence opens it (a false open costs one
     local compute, not an error) and reopens back off from a full
     second so trial peeks cannot keep a worker pinned on a peer that
     is stalled rather than down. *)
  let peer_health =
    Health.create ~threshold:1
      ~retry:
        (Tt_engine.Retry.create ~retries:6 ~base_delay_s:1.0 ~max_delay_s:8.0
           ~jitter:0.25 ())
      ~metrics:peer_metrics ()
  in
  (* [rec]ursive knot: the fetch hook needs the shard record (to read
     [joined_late]) which needs the cache which needs the hook — tie it
     through a forward ref. *)
  let self = ref None in
  let fetch key =
    if not peering then None
    else
      match (!ring_ref, !self) with
      | Some ring, Some s ->
          Peer.fetch ~self:name ~ring ~warm_from_successor:s.joined_late
            ~health:peer_health ~metrics:peer_metrics () key
      | _ -> None
  in
  let s =
    { name;
      host = "127.0.0.1";
      port = 0;
      cache = Cache.create ~fetch ();
      peer_metrics;
      server = None;
      proxy = None;
      removed = false;
      down_since = None;
      joined_late = false
    }
  in
  self := Some s;
  s

let boot_server ~server_config ~workers (s : shard) =
  let config =
    { server_config with Server.host = s.host; port = s.port; workers }
  in
  let server = Server.create ~config ~cache:s.cache () in
  s.port <- Server.port server;
  Server.start server;
  s.server <- Some server

let boot_proxy (s : shard) =
  let p = Netfault.create ~upstream_port:s.port () in
  Netfault.start p;
  s.proxy <- Some p

let teardown_shard (s : shard) =
  (match s.server with
  | None -> ()
  | Some server ->
      s.server <- None;
      Server.shutdown server);
  match s.proxy with
  | None -> ()
  | Some p ->
      s.proxy <- None;
      Netfault.shutdown p

let locked t f =
  Mutex.lock t.shards_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.shards_mu) f

let kill_shard t i =
  match t.shards.(i).server with
  | None -> ()
  | Some server ->
      t.shards.(i).server <- None;
      Server.shutdown server

let restart_shard t i =
  let s = t.shards.(i) in
  match s.server with
  | Some _ -> ()
  | None -> boot_server ~server_config:t.server_config ~workers:t.workers s

(* ------------------------------------------------------ supervision *)

(* One supervisor pass: spot dead shards (graceful self-stop included
   — [Server.stopped] — and outright [None] servers from a kill),
   stamp the first sighting, and restart once the shard has been down
   at least [restart_delay_s]. The delay is what lets breakers open
   and failover engage before the shard pops back — a restart-thrash
   guard, and what makes "breaker open → close" observable under the
   nemesis. Restart failures (e.g. the dying server still holds the
   port) are retried next tick. *)
let supervise_once t =
  Array.iteri
    (fun i s ->
      if not s.removed then begin
        let dead =
          match s.server with
          | None -> true
          | Some srv ->
              if Server.stopped srv then begin
                s.server <- None;
                true
              end
              else false
        in
        if dead then begin
          let now = Unix.gettimeofday () in
          match s.down_since with
          | None ->
              s.down_since <- Some now;
              t.on_event (Shard_down s.name)
          | Some since when now -. since >= t.restart_delay_s -> (
              match restart_shard t i with
              | () ->
                  let downtime = Unix.gettimeofday () -. since in
                  s.down_since <- None;
                  Metrics.restart (Router.metrics t.router) ~shard:s.name
                    ~downtime_s:downtime;
                  t.on_event (Shard_restarted (s.name, downtime))
              | exception (Unix.Unix_error _ | Failure _) -> ())
          | Some _ -> ()
        end
      end)
    t.shards

let supervisor_loop t =
  while not (Atomic.get t.stop) do
    locked t (fun () -> supervise_once t);
    Unix.sleepf 0.05
  done

let start_supervisor t =
  match t.supervisor with
  | Some _ -> ()
  | None -> t.supervisor <- Some (Domain.spawn (fun () -> supervisor_loop t))

(* ------------------------------------------------------------ boot *)

let start ?(shards = 3) ?(workers = 2) ?vnodes ?(peering = true)
    ?(proxied = false) ?(supervise = false) ?(restart_delay_s = 0.3)
    ?(on_event = fun _ -> ()) ?router_config
    ?(server_config = Server.default_config) ?kill_after () =
  if shards < 1 then invalid_arg "Cluster.start: shards < 1";
  if restart_delay_s < 0. then
    invalid_arg "Cluster.start: restart_delay_s < 0";
  (* The peer hook closes over the ring, but the ring needs every
     shard's bound port — which an ephemeral bind only yields after
     the server exists. The ref breaks the cycle: caches are built
     against it first, the ring is filled in once all ports are
     known. Until then the hook degrades to local compute. *)
  let ring_ref = ref None in
  let cluster_shards =
    Array.init shards (fun i -> mk_shard ~peering ~ring_ref (shard_name i))
  in
  (match
     Array.iter
       (fun s ->
         boot_server ~server_config ~workers s;
         if proxied then boot_proxy s)
       cluster_shards
   with
  | () -> ()
  | exception e ->
      Array.iter teardown_shard cluster_shards;
      raise e);
  let ring =
    Ring.create ?vnodes
      (Array.to_list (Array.map ring_node cluster_shards))
  in
  ring_ref := Some ring;
  let router =
    match Router.create ?config:router_config ~ring () with
    | r -> r
    | exception e ->
        Array.iter teardown_shard cluster_shards;
        raise e
  in
  Router.start router;
  let t =
    { shards = cluster_shards;
      shards_mu = Mutex.create ();
      ring_ref;
      router;
      server_config;
      workers;
      peering;
      proxied;
      restart_delay_s;
      on_event;
      stop = Atomic.make false;
      watchdog = None;
      supervisor = None
    }
  in
  (match kill_after with
  | None -> ()
  | Some (idx, threshold) ->
      if idx < 0 || idx >= shards then
        invalid_arg "Cluster.start: kill_after shard out of range";
      (* Deterministic mid-run kill: trip on the router's forward
         count, not on wall time, so "killed after ~N requests" holds
         at any load rate. *)
      let d =
        Domain.spawn (fun () ->
            let rec watch () =
              if not (Atomic.get t.stop) then
                if
                  (Metrics.snapshot (Router.metrics router)).Metrics
                    .forwards_total >= threshold
                then
                  Option.iter
                    (fun server ->
                      t.shards.(idx).server <- None;
                      Server.shutdown server)
                    t.shards.(idx).server
                else begin
                  Unix.sleepf 0.02;
                  watch ()
                end
            in
            watch ())
      in
      t.watchdog <- Some d);
  if supervise then start_supervisor t;
  t

let router_port t = Router.port t.router
let stopped t = Router.stopped t.router
let request_stop t = Router.request_shutdown t.router
let ring t = Router.ring t.router
let ring_epoch t = Router.epoch t.router
let router_metrics t = Router.metrics t.router
let size t = Array.length t.shards

let shard_port t i = t.shards.(i).port
let shard_alive t i = t.shards.(i).server <> None
let shard_in_ring t i = not t.shards.(i).removed
let peer_metrics t i = t.shards.(i).peer_metrics

let shard_server_metrics t i =
  Option.map (fun s -> Tt_server.Server.metrics s) t.shards.(i).server

(* ------------------------------------------------------ partitions *)

let set_partition t i g =
  match t.shards.(i).proxy with
  | Some p -> Netfault.set_gate p g
  | None ->
      invalid_arg "Cluster.set_partition: cluster not started with ~proxied"

let partition t i = set_partition t i Netfault.Gate_severed
let heal t i = set_partition t i Netfault.Gate_open

(* ------------------------------------------------------ membership *)

let current_ring t =
  match !(t.ring_ref) with
  | Some r -> r
  | None -> Router.ring t.router

(* Swap in a new ring everywhere that holds one: the peer hooks' ref
   first (they are read per cache miss), then the router (which bumps
   the epoch, invalidating every memoized sweep order). *)
let install_ring t ring' =
  t.ring_ref := Some ring';
  Router.reconfigure t.router ring'

let join t =
  locked t (fun () ->
      let name = shard_name (Array.length t.shards) in
      let s = mk_shard ~peering:t.peering ~ring_ref:t.ring_ref name in
      s.joined_late <- true;
      boot_server ~server_config:t.server_config ~workers:t.workers s;
      if t.proxied then boot_proxy s;
      (match Ring.add (current_ring t) (ring_node s) with
      | ring' ->
          t.shards <- Array.append t.shards [| s |];
          install_ring t ring'
      | exception e ->
          teardown_shard s;
          raise e);
      t.on_event (Shard_joined name);
      Array.length t.shards - 1)

let leave t i =
  locked t (fun () ->
      let s = t.shards.(i) in
      if s.removed then ()
      else begin
        (* Stop routing to it {e before} draining it: requests in
           flight during the drain fail over; requests after the
           reconfigure never see it. *)
        (match Ring.remove (current_ring t) s.name with
        | ring' ->
            s.removed <- true;
            install_ring t ring'
        | exception Invalid_argument _ ->
            invalid_arg "Cluster.leave: cannot remove the last ring node");
        kill_shard t i;
        (match s.proxy with
        | None -> ()
        | Some p ->
            s.proxy <- None;
            Netfault.shutdown p);
        t.on_event (Shard_left s.name)
      end)

(* ------------------------------------------------------- telemetry *)

(* Router counters plus every shard's peer counters in one snapshot —
   the cluster-wide [tt_shard_*] exposition. *)
let snapshot t =
  let r = Metrics.snapshot (Router.metrics t.router) in
  let hits, misses =
    Array.fold_left
      (fun (h, m) s ->
        let p = Metrics.snapshot s.peer_metrics in
        (h + p.Metrics.peer_hits, m + p.Metrics.peer_misses))
      (0, 0) t.shards
  in
  { r with Metrics.peer_hits = hits; peer_misses = misses }

let prometheus t = Metrics.to_prometheus (snapshot t)

let stop t =
  Atomic.set t.stop true;
  Option.iter Domain.join t.watchdog;
  t.watchdog <- None;
  Option.iter Domain.join t.supervisor;
  t.supervisor <- None;
  Router.shutdown t.router;
  Array.iter teardown_shard t.shards
