module Server = Tt_server.Server
module Cache = Tt_engine.Cache
module Job = Tt_engine.Job

type shard = {
  name : string;
  host : string;
  mutable port : int;  (* fixed after the first bind *)
  cache : Job.outcome Cache.t;  (* owned here: survives restarts *)
  peer_metrics : Metrics.t;
  mutable server : Server.t option;
}

type t = {
  shards : shard array;
  ring : Ring.t;
  router : Router.t;
  server_config : Server.config;
  stop : bool Atomic.t;
  mutable watchdog : unit Domain.t option;
}

let shard_name i = Printf.sprintf "s%d" i

let start ?(shards = 3) ?(workers = 2) ?vnodes ?(peering = true)
    ?router_config ?(server_config = Server.default_config) ?kill_after () =
  if shards < 1 then invalid_arg "Cluster.start: shards < 1";
  (* The peer hook closes over the ring, but the ring needs every
     shard's bound port — which an ephemeral bind only yields after
     the server exists. The ref breaks the cycle: caches are built
     against it first, the ring is filled in once all ports are
     known. Until then the hook degrades to local compute. *)
  let ring_ref = ref None in
  let mk_shard i =
    let name = shard_name i in
    let peer_metrics = Metrics.create () in
    let fetch key =
      if not peering then None
      else
        match !ring_ref with
        | None -> None
        | Some ring -> Peer.fetch ~self:name ~ring ~metrics:peer_metrics () key
    in
    { name;
      host = "127.0.0.1";
      port = 0;
      cache = Cache.create ~fetch ();
      peer_metrics;
      server = None
    }
  in
  let cluster_shards = Array.init shards mk_shard in
  let boot (s : shard) =
    let config =
      { server_config with Server.host = s.host; port = s.port; workers }
    in
    let server = Server.create ~config ~cache:s.cache () in
    s.port <- Server.port server;
    Server.start server;
    s.server <- Some server
  in
  (match Array.iter boot cluster_shards with
  | () -> ()
  | exception e ->
      Array.iter
        (fun s -> Option.iter Server.shutdown s.server)
        cluster_shards;
      raise e);
  let ring =
    Ring.create ?vnodes
      (Array.to_list
         (Array.map
            (fun s -> { Ring.name = s.name; host = s.host; port = s.port })
            cluster_shards))
  in
  ring_ref := Some ring;
  let router =
    match Router.create ?config:router_config ~ring () with
    | r -> r
    | exception e ->
        Array.iter
          (fun s -> Option.iter Server.shutdown s.server)
          cluster_shards;
        raise e
  in
  Router.start router;
  let t =
    { shards = cluster_shards;
      ring;
      router;
      server_config;
      stop = Atomic.make false;
      watchdog = None
    }
  in
  (match kill_after with
  | None -> ()
  | Some (idx, threshold) ->
      if idx < 0 || idx >= shards then
        invalid_arg "Cluster.start: kill_after shard out of range";
      (* Deterministic mid-run kill: trip on the router's forward
         count, not on wall time, so "killed after ~N requests" holds
         at any load rate. *)
      let d =
        Domain.spawn (fun () ->
            let rec watch () =
              if not (Atomic.get t.stop) then
                if
                  (Metrics.snapshot (Router.metrics router)).Metrics
                    .forwards_total >= threshold
                then
                  Option.iter
                    (fun server ->
                      t.shards.(idx).server <- None;
                      Server.shutdown server)
                    t.shards.(idx).server
                else begin
                  Unix.sleepf 0.02;
                  watch ()
                end
            in
            watch ())
      in
      t.watchdog <- Some d);
  t

let router_port t = Router.port t.router
let stopped t = Router.stopped t.router
let request_stop t = Router.request_shutdown t.router
let ring t = t.ring
let router_metrics t = Router.metrics t.router
let size t = Array.length t.shards

let shard_port t i = t.shards.(i).port
let shard_alive t i = t.shards.(i).server <> None
let peer_metrics t i = t.shards.(i).peer_metrics

let shard_server_metrics t i =
  Option.map (fun s -> Tt_server.Server.metrics s) t.shards.(i).server

let kill_shard t i =
  match t.shards.(i).server with
  | None -> ()
  | Some server ->
      t.shards.(i).server <- None;
      Server.shutdown server

let restart_shard t i =
  let s = t.shards.(i) in
  match s.server with
  | Some _ -> ()
  | None ->
      let config =
        { t.server_config with
          Server.host = s.host;
          port = s.port;
          workers = t.server_config.Server.workers
        }
      in
      let server = Server.create ~config ~cache:s.cache () in
      Server.start server;
      s.server <- Some server

(* Router counters plus every shard's peer counters in one snapshot —
   the cluster-wide [tt_shard_*] exposition. *)
let snapshot t =
  let r = Metrics.snapshot (Router.metrics t.router) in
  let hits, misses =
    Array.fold_left
      (fun (h, m) s ->
        let p = Metrics.snapshot s.peer_metrics in
        (h + p.Metrics.peer_hits, m + p.Metrics.peer_misses))
      (0, 0) t.shards
  in
  { r with Metrics.peer_hits = hits; peer_misses = misses }

let prometheus t = Metrics.to_prometheus (snapshot t)

let stop t =
  Atomic.set t.stop true;
  Option.iter Domain.join t.watchdog;
  t.watchdog <- None;
  Router.shutdown t.router;
  Array.iter
    (fun s ->
      match s.server with
      | None -> ()
      | Some server ->
          s.server <- None;
          Server.shutdown server)
    t.shards
