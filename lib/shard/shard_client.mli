(** Shard-aware client: route directly from the client given a cluster
    map, skipping the router hop.

    Uses the same routing key as {!Router} (first job id of the parsed
    entry) over the same {!Forward} failover sweep, so direct and
    routed traffic agree on placement and share shard caches. Like a
    {!Tt_server.Client.session}, an instance is single-domain; run one
    per domain ({!loadgen_solver} does). *)

type t

val create :
  ?connect_timeout_s:float ->
  ?read_timeout_s:float ->
  ?retry:Tt_engine.Retry.policy ->
  ?tag:string ->
  ?metrics:Metrics.t ->
  Ring.t ->
  t
(** [retry] schedules failover ring sweeps (see {!Forward.create});
    [tag] (default ["sc"]) namespaces generated idempotency keys;
    [metrics] (fresh by default) may be shared across clients to
    aggregate forward/failover counts. *)

val solve :
  t ->
  ?timeout_s:float ->
  ?idem:string ->
  ?priority:Tt_server.Protocol.priority ->
  string ->
  (Tt_server.Protocol.job_report list, Tt_server.Client.failure) result
(** Route one manifest entry to its owner shard, failing over along
    the ring. Every solve carries an idempotency key ([idem] or
    ["<tag>-<seq>"]) and forwards [priority] (default interactive).
    Unparseable entries are [Refused Bad_request] without touching the
    network; an exhausted sweep surfaces as [Transport] (retryable by
    the caller — re-solving is idempotent). *)

val peek : t -> string -> Tt_engine.Job.outcome option
(** Best-effort cache peek for a job id at its owner (with failover);
    [None] on miss or any error. *)

val metrics : t -> Metrics.t
val close : t -> unit

val loadgen_solver :
  ?connect_timeout_s:float ->
  ?read_timeout_s:float ->
  ?retry:Tt_engine.Retry.policy ->
  ?metrics:Metrics.t ->
  Ring.t ->
  tag:string ->
  conn:int ->
  Tt_server.Loadgen.solver
(** Plug cluster routing into {!Tt_server.Loadgen}: pass
    [Some (loadgen_solver … ring)] as [config.solver] and each load
    connection drives its own Shard_client (tagged ["<tag>-c<conn>"],
    sharing [metrics]). *)
