(** Consistent-hash ring over content-addressed keys.

    Placement is a pure function of (ring configuration, key): every
    component that rebuilds the ring from the same cluster map — the
    router, a shard-aware {!Shard_client}, the {!Peer} fetch hook —
    agrees on the owner of every key. Node order in the input list is
    irrelevant; only names, which position the virtual nodes, matter.

    Keys are arbitrary strings, in practice {!Tt_engine.Job} ids
    (hex digests of tree + spec), so equal jobs land on the same shard
    no matter which client or router forwards them. *)

type node = { name : string; host : string; port : int }

type t

val default_vnodes : int
(** 64 — enough that 2–8 shards balance within a few tens of percent. *)

val create : ?vnodes:int -> node list -> t
(** @raise Invalid_argument on an empty list, duplicate names, or
    [vnodes < 1]. *)

val nodes : t -> node list
(** Canonical (name-sorted) node list. *)

val vnodes : t -> int

val owner : t -> string -> node
(** The node owning [key]: first virtual node clockwise of the key's
    digest. *)

val successors : t -> string -> node list
(** Every node, deduplicated, in ring order starting at the owner —
    the failover sweep order for [key]. [List.hd (successors t key)]
    is [owner t key]. *)

val add : t -> node -> t
(** Ring with one more node, same [vnodes]. Only keys the new node now
    owns change owners (minimal disruption — existing virtual-node
    positions are untouched); under pure-name placement, each such
    key's {e previous} owner is its second node in the new ring's
    {!successors} order, which is what cache warming on join exploits.
    @raise Invalid_argument on a duplicate name. *)

val remove : t -> string -> t
(** Ring with the named node removed, same [vnodes]. Only keys the
    removed node owned change owners (minimal disruption — the other
    nodes' virtual-node positions are untouched).
    @raise Invalid_argument on an unknown name or a one-node ring. *)

(* ------------------------------------------------------- cluster maps *)

val node_to_string : node -> string
(** ["name=host:port"]. *)

val to_string : t -> string
(** Comma-joined {!node_to_string} in canonical order; a valid
    {!of_string} input. *)

val of_string : ?vnodes:int -> string -> (t, string) Stdlib.result
(** Parse ["name=host:port,name=host:port,…"]; the [name=] prefix may
    be omitted, in which case nodes are named [s0], [s1], … by input
    position. *)
