module P = Tt_server.Protocol
module Client = Tt_server.Client
module L = Tt_server.Loadgen

type t = {
  fwd : Forward.t;
  tag : string;
  mutable seq : int;
  memo : (string, (string, string) result) Hashtbl.t;
  metrics : Metrics.t;
}

let create ?connect_timeout_s ?read_timeout_s ?retry ?(tag = "sc") ?metrics
    ring =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  { fwd =
      Forward.create ?connect_timeout_s ?read_timeout_s ?retry ~metrics ring;
    tag;
    seq = 0;
    memo = Hashtbl.create 64;
    metrics
  }

let metrics t = t.metrics
let close t = Forward.close t.fwd

(* Same key function as the router ({!Router}): first job id of the
   parsed entry, memoized — agreement is what makes direct routing and
   routed traffic share shard caches. Not thread-safe: one Shard_client
   per domain, like a {!Client.session}. *)
let route_key t entry =
  match Hashtbl.find_opt t.memo entry with
  | Some r -> r
  | None ->
      let r =
        match Tt_engine.Manifest.parse entry with
        | Error e -> Error e
        | Ok [] -> Error "entry resolves to no jobs"
        | Ok (job :: _) -> Ok (Tt_engine.Job.id job)
      in
      Hashtbl.replace t.memo entry r;
      r

let solve t ?timeout_s ?idem ?(priority = P.Interactive) entry =
  match route_key t entry with
  | Error msg -> Error (Client.Refused (P.Bad_request, msg))
  | Ok key -> (
      let idem =
        match idem with
        | Some k -> k
        | None ->
            let k = Printf.sprintf "%s-%d" t.tag t.seq in
            t.seq <- t.seq + 1;
            k
      in
      let op = P.Solve { entry; timeout_s; idem = Some idem; priority } in
      match Forward.call t.fwd ~key op with
      | Ok (P.Results reports) -> Ok reports
      | Ok (P.Refused { code; msg }) -> Error (Client.Refused (code, msg))
      | Ok
          (P.Stats_reply _ | P.Health_reply _ | P.Pong | P.Draining
          | P.Peeked _) ->
          Error (Client.Transport "unexpected response body for solve")
      | Error (P.Internal, msg) -> Error (Client.Transport msg)
      | Error (code, msg) -> Error (Client.Refused (code, msg)))

let peek t key =
  match Forward.call t.fwd ~key (P.Peek { key }) with
  | Ok (P.Peeked r) -> r
  | Ok _ | Error _ -> None

(* Adapter for [Loadgen.config.solver]: each load connection gets its
   own Shard_client (they are single-domain), all sharing [metrics]. *)
let loadgen_solver ?connect_timeout_s ?read_timeout_s ?retry ?metrics ring =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  fun ~tag ~conn ->
    let sc =
      create ?connect_timeout_s ?read_timeout_s ?retry
        ~tag:(Printf.sprintf "%s-c%d" tag conn)
        ~metrics ring
    in
    { L.sv_solve =
        (fun ?timeout_s ?priority ~idem entry ->
          solve sc ?timeout_s ?priority ~idem entry);
      sv_close = (fun () -> close sc)
    }
