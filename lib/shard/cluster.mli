(** An in-process cluster: N shard servers, peered caches, one router.

    This is the shard tier's harness — the `treetrav cluster`
    subcommand, the chaos gates and the benchmarks all drive it. Each
    shard is a full {!Tt_server.Server} on an ephemeral port whose
    engine cache carries a {!Peer} fetch hook; the {!Router} fronts
    them with one v1-protocol endpoint.

    Shard caches are owned by the cluster, not the server, so
    {!kill_shard} + {!restart_shard} brings a shard back on the same
    port {e with its cache intact} — like a process restart over a
    persisted cache.

    {b Self-healing.} {!start_supervisor} runs a background domain that
    detects dead shards and restarts them after [restart_delay_s],
    emitting {!event}s and restart/downtime telemetry. Supervision is
    opt-in: without it, a killed shard stays dead (which failover tests
    rely on).

    {b Membership.} {!join} and {!leave} reconfigure the ring live —
    every change bumps the router's ring epoch, invalidating its
    memoized sweep orders. A joined shard warms its cache from each
    key's pre-join owner via {!Peer.fetch}'s [warm_from_successor].

    {b Partitions.} With [~proxied:true] every shard sits behind a
    {!Tt_server.Netfault} ingress proxy and {!set_partition} flips its
    gate — the nemesis harness's symmetric-partition primitive. *)

type t

type event =
  | Shard_down of string  (** Supervisor spotted a dead shard. *)
  | Shard_restarted of string * float  (** Name and downtime seconds. *)
  | Shard_joined of string
  | Shard_left of string

val event_to_string : event -> string

val start :
  ?shards:int ->
  ?workers:int ->
  ?vnodes:int ->
  ?peering:bool ->
  ?proxied:bool ->
  ?supervise:bool ->
  ?restart_delay_s:float ->
  ?on_event:(event -> unit) ->
  ?router_config:Router.config ->
  ?server_config:Tt_server.Server.config ->
  ?kill_after:int * int ->
  unit ->
  t
(** Boot [shards] (default 3) servers with [workers] (default 2)
    domains each, build the ring (names [s0]…, [?vnodes]) over their
    bound ports, start the router. [peering] (default [true]) installs
    the cross-shard cache hook. [proxied] (default [false]) puts a
    {!Tt_server.Netfault} ingress proxy in front of every shard and
    builds the ring over the {e proxy} ports, enabling
    {!set_partition}. [supervise] (default [false]) calls
    {!start_supervisor}; [restart_delay_s] (default 0.3) is how long a
    shard must be down before the supervisor restarts it — long enough
    for breakers to open and failover to engage. [on_event] observes
    supervision and membership transitions (called from the acting
    domain; must not block). [server_config] seeds every shard's
    config (host/port/workers overridden). [kill_after:(i, n)] spawns
    a watchdog that gracefully shuts shard [i] down once the router
    has forwarded [n] ops — a deterministic mid-run kill for failover
    tests, counted in forwards rather than wall time.
    @raise Invalid_argument on [shards < 1], [restart_delay_s < 0], or
    an out-of-range [kill_after] index. *)

val router_port : t -> int
(** Point any v1-protocol client here. *)

val stopped : t -> bool
(** Whether the router has been asked to stop (e.g. by a client
    [shutdown] frame) — the CLI's cue to tear the cluster down. *)

val request_stop : t -> unit
(** Flag the router to stop; returns immediately. Safe from signal
    handlers and any domain (it only flips an atomic) — follow with
    {!stop} for the actual teardown. *)

val ring : t -> Ring.t
(** The router's {e current} ring — for shard-aware clients
    ({!Shard_client}) and peer lookups. Changes on {!join}/{!leave}. *)

val ring_epoch : t -> int
(** Starts at 0; +1 per {!join}/{!leave}. *)

val size : t -> int
(** Number of shard slots ever created (including ones that {!leave}d
    — their indices stay valid). *)

val shard_port : t -> int -> int
val shard_alive : t -> int -> bool

val shard_in_ring : t -> int -> bool
(** [false] once the shard has {!leave}d. *)

val kill_shard : t -> int -> unit
(** Graceful drain (queued work finishes; new solves there are refused
    [shutting_down], which the router fails over). Idempotent. Under
    supervision the shard comes back after [restart_delay_s]. *)

val restart_shard : t -> int -> unit
(** Re-bind the same port with the shard's original cache. No-op when
    alive. *)

val start_supervisor : t -> unit
(** Spawn the supervisor domain (idempotent): every 50 ms it scans for
    dead, non-removed shards — killed ones and gracefully self-stopped
    ones alike — and restarts each on its original port with its cache
    once it has been down [restart_delay_s]. Each restart emits
    {!Shard_restarted} and records {!Metrics.restart} (count +
    downtime) on the router's metrics. Restart failures (a dying
    server still holding the port) are retried on the next scan. *)

val join : t -> int
(** Boot one new shard (next [s<i>] name, fresh empty cache, proxied
    iff the cluster is), add it to the ring with {!Ring.add}, and
    reconfigure the router — bumping the ring epoch. Returns the new
    shard's index. The new shard's peer hook runs in
    [warm_from_successor] mode: keys it now owns are lazily pulled
    from their pre-join owner as traffic touches them. *)

val leave : t -> int -> unit
(** Graceful departure: remove the shard from the ring {e first}
    (reconfiguring the router, so no new request routes to it), then
    drain it with {!kill_shard} and mark it removed — the supervisor
    will not resurrect it. Idempotent.
    @raise Invalid_argument when it is the last ring node. *)

val set_partition : t -> int -> Tt_server.Netfault.gate -> unit
(** Flip shard [i]'s ingress gate: [Gate_severed] is a symmetric
    partition (router {e and} peers lose it at once), [Gate_stalled]
    freezes its link, [Gate_open] heals.
    @raise Invalid_argument when the cluster was not started
    [~proxied:true]. *)

val partition : t -> int -> unit
(** [set_partition t i Gate_severed]. *)

val heal : t -> int -> unit
(** [set_partition t i Gate_open]. *)

val router_metrics : t -> Metrics.t
val peer_metrics : t -> int -> Metrics.t
val shard_server_metrics : t -> int -> Tt_server.Metrics.t option

val snapshot : t -> Metrics.snapshot
(** Router counters, with [peer_hits]/[peer_misses] summed across
    shards. *)

val prometheus : t -> string
(** {!Metrics.to_prometheus} of {!snapshot} — the cluster-wide
    [tt_shard_*] exposition. *)

val stop : t -> unit
(** Watchdog, supervisor, router, then every live shard — graceful
    throughout. *)
