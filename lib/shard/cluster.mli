(** An in-process cluster: N shard servers, peered caches, one router.

    This is the shard tier's harness — the `treetrav cluster`
    subcommand, the chaos-cluster gate and the benchmarks all drive
    it. Each shard is a full {!Tt_server.Server} on an ephemeral port
    whose engine cache carries a {!Peer} fetch hook; the {!Router}
    fronts them with one v1-protocol endpoint.

    Shard caches are owned by the cluster, not the server, so
    {!kill_shard} + {!restart_shard} brings a shard back on the same
    port {e with its cache intact} — like a process restart over a
    persisted cache. *)

type t

val start :
  ?shards:int ->
  ?workers:int ->
  ?vnodes:int ->
  ?peering:bool ->
  ?router_config:Router.config ->
  ?server_config:Tt_server.Server.config ->
  ?kill_after:int * int ->
  unit ->
  t
(** Boot [shards] (default 3) servers with [workers] (default 2)
    domains each, build the ring (names [s0]…, [?vnodes]) over their
    bound ports, start the router. [peering] (default [true]) installs
    the cross-shard cache hook. [server_config] seeds every shard's
    config (host/port/workers overridden). [kill_after:(i, n)] spawns
    a watchdog that gracefully shuts shard [i] down once the router
    has forwarded [n] ops — a deterministic mid-run kill for failover
    tests, counted in forwards rather than wall time.
    @raise Invalid_argument on [shards < 1] or an out-of-range
    [kill_after] index. *)

val router_port : t -> int
(** Point any v1-protocol client here. *)

val stopped : t -> bool
(** Whether the router has been asked to stop (e.g. by a client
    [shutdown] frame) — the CLI's cue to tear the cluster down. *)

val request_stop : t -> unit
(** Flag the router to stop; returns immediately. Safe from signal
    handlers and any domain (it only flips an atomic) — follow with
    {!stop} for the actual teardown. *)

val ring : t -> Ring.t
(** For shard-aware clients ({!Shard_client}) and peer lookups. *)

val size : t -> int
val shard_port : t -> int -> int
val shard_alive : t -> int -> bool

val kill_shard : t -> int -> unit
(** Graceful drain (queued work finishes; new solves there are refused
    [shutting_down], which the router fails over). Idempotent. *)

val restart_shard : t -> int -> unit
(** Re-bind the same port with the shard's original cache. No-op when
    alive. *)

val router_metrics : t -> Metrics.t
val peer_metrics : t -> int -> Metrics.t
val shard_server_metrics : t -> int -> Tt_server.Metrics.t option

val snapshot : t -> Metrics.snapshot
(** Router counters, with [peer_hits]/[peer_misses] summed across
    shards. *)

val prometheus : t -> string
(** {!Metrics.to_prometheus} of {!snapshot} — the cluster-wide
    [tt_shard_*] exposition. *)

val stop : t -> unit
(** Watchdog, router, then every live shard — graceful throughout. *)
