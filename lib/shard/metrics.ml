module Json = Tt_engine.Telemetry.Json

type t = {
  mu : Mutex.t;
  forwards : (string, int) Hashtbl.t;  (* shard name -> forwarded ops *)
  mutable failovers : int;
  mutable rejects : int;
  mutable unrouted : int;
  mutable peer_hits : int;
  mutable peer_misses : int;
}

let create () =
  { mu = Mutex.create ();
    forwards = Hashtbl.create 8;
    failovers = 0;
    rejects = 0;
    unrouted = 0;
    peer_hits = 0;
    peer_misses = 0
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let forward t ~shard =
  locked t (fun () ->
      Hashtbl.replace t.forwards shard
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.forwards shard)))

let failover t = locked t (fun () -> t.failovers <- t.failovers + 1)
let reject t = locked t (fun () -> t.rejects <- t.rejects + 1)
let unrouted t = locked t (fun () -> t.unrouted <- t.unrouted + 1)
let peer_hit t = locked t (fun () -> t.peer_hits <- t.peer_hits + 1)
let peer_miss t = locked t (fun () -> t.peer_misses <- t.peer_misses + 1)

type snapshot = {
  forwards : (string * int) list;
  forwards_total : int;
  failovers : int;
  rejects : int;
  unrouted : int;
  peer_hits : int;
  peer_misses : int;
}

let snapshot t =
  locked t (fun () ->
      let forwards =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.forwards [])
      in
      { forwards;
        forwards_total = List.fold_left (fun a (_, v) -> a + v) 0 forwards;
        failovers = t.failovers;
        rejects = t.rejects;
        unrouted = t.unrouted;
        peer_hits = t.peer_hits;
        peer_misses = t.peer_misses
      })

let to_json s =
  Json.Obj
    [ ( "forwards",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.forwards) );
      ("forwards_total", Json.Int s.forwards_total);
      ("failovers", Json.Int s.failovers);
      ("rejects", Json.Int s.rejects);
      ("unrouted", Json.Int s.unrouted);
      ("peer_hits", Json.Int s.peer_hits);
      ("peer_misses", Json.Int s.peer_misses)
    ]

(* Same exposition conventions as {!Tt_server.Metrics.to_prometheus}:
   one [# TYPE] line per family, [%d] counters, quoted label values. *)
let to_prometheus s =
  let b = Buffer.create 512 in
  let counter name ?(labels = "") v =
    Buffer.add_string b (Printf.sprintf "tt_shard_%s%s %d\n" name labels v)
  in
  let typ name kind =
    Buffer.add_string b (Printf.sprintf "# TYPE tt_shard_%s %s\n" name kind)
  in
  typ "forwards_total" "counter";
  List.iter
    (fun (shard, v) ->
      counter "forwards_total" ~labels:(Printf.sprintf {|{shard=%S}|} shard) v)
    s.forwards;
  typ "failovers_total" "counter";
  counter "failovers_total" s.failovers;
  typ "rejects_total" "counter";
  counter "rejects_total" s.rejects;
  typ "unrouted_total" "counter";
  counter "unrouted_total" s.unrouted;
  typ "peer_hits_total" "counter";
  counter "peer_hits_total" s.peer_hits;
  typ "peer_misses_total" "counter";
  counter "peer_misses_total" s.peer_misses;
  Buffer.contents b
