module Json = Tt_engine.Telemetry.Json

type breaker_state = Breaker_closed | Breaker_open | Breaker_half_open

let breaker_state_to_int = function
  | Breaker_closed -> 0
  | Breaker_open -> 1
  | Breaker_half_open -> 2

type t = {
  mu : Mutex.t;
  forwards : (string, int) Hashtbl.t;  (* shard name -> forwarded ops *)
  mutable failovers : int;
  mutable rejects : int;
  mutable unrouted : int;
  mutable peer_hits : int;
  mutable peer_misses : int;
  mutable breaker_opens : int;
  mutable breaker_closes : int;
  breaker_states : (string, breaker_state) Hashtbl.t;
  restarts : (string, int) Hashtbl.t;  (* shard name -> supervised restarts *)
  hedges : (string, int) Hashtbl.t;  (* outcome -> count *)
  mutable deadline_rejects : int;
  mutable downtime_s : float;
  mutable ring_epoch : int;
}

let create () =
  { mu = Mutex.create ();
    forwards = Hashtbl.create 8;
    failovers = 0;
    rejects = 0;
    unrouted = 0;
    peer_hits = 0;
    peer_misses = 0;
    breaker_opens = 0;
    breaker_closes = 0;
    breaker_states = Hashtbl.create 8;
    restarts = Hashtbl.create 8;
    hedges = Hashtbl.create 4;
    deadline_rejects = 0;
    downtime_s = 0.;
    ring_epoch = 0
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let forward t ~shard =
  locked t (fun () ->
      Hashtbl.replace t.forwards shard
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.forwards shard)))

let failover t = locked t (fun () -> t.failovers <- t.failovers + 1)
let reject t = locked t (fun () -> t.rejects <- t.rejects + 1)
let unrouted t = locked t (fun () -> t.unrouted <- t.unrouted + 1)
let peer_hit t = locked t (fun () -> t.peer_hits <- t.peer_hits + 1)
let peer_miss t = locked t (fun () -> t.peer_misses <- t.peer_misses + 1)

let breaker_transition t ~shard state =
  locked t (fun () ->
      (match (Hashtbl.find_opt t.breaker_states shard, state) with
      | (Some Breaker_closed | Some Breaker_half_open | None), Breaker_open ->
          t.breaker_opens <- t.breaker_opens + 1
      | (Some Breaker_open | Some Breaker_half_open), Breaker_closed ->
          t.breaker_closes <- t.breaker_closes + 1
      | _ -> ());
      Hashtbl.replace t.breaker_states shard state)

let breaker_forget t ~shard =
  locked t (fun () -> Hashtbl.remove t.breaker_states shard)

let restart t ~shard ~downtime_s =
  locked t (fun () ->
      Hashtbl.replace t.restarts shard
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.restarts shard));
      t.downtime_s <- t.downtime_s +. Float.max 0. downtime_s)

let hedge t ~outcome =
  locked t (fun () ->
      Hashtbl.replace t.hedges outcome
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.hedges outcome)))

let deadline_reject t =
  locked t (fun () -> t.deadline_rejects <- t.deadline_rejects + 1)

let set_ring_epoch t epoch = locked t (fun () -> t.ring_epoch <- epoch)

type snapshot = {
  forwards : (string * int) list;
  forwards_total : int;
  failovers : int;
  rejects : int;
  unrouted : int;
  peer_hits : int;
  peer_misses : int;
  breaker_opens : int;
  breaker_closes : int;
  breaker_states : (string * breaker_state) list;
  restarts : (string * int) list;
  restarts_total : int;
  hedges : (string * int) list;
  deadline_rejects : int;
  downtime_s : float;
  ring_epoch : int;
}

let snapshot t =
  locked t (fun () ->
      let sorted tbl =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
      in
      let forwards = sorted t.forwards in
      let restarts = sorted t.restarts in
      { forwards;
        forwards_total = List.fold_left (fun a (_, v) -> a + v) 0 forwards;
        failovers = t.failovers;
        rejects = t.rejects;
        unrouted = t.unrouted;
        peer_hits = t.peer_hits;
        peer_misses = t.peer_misses;
        breaker_opens = t.breaker_opens;
        breaker_closes = t.breaker_closes;
        breaker_states = sorted t.breaker_states;
        restarts;
        restarts_total = List.fold_left (fun a (_, v) -> a + v) 0 restarts;
        hedges = sorted t.hedges;
        deadline_rejects = t.deadline_rejects;
        downtime_s = t.downtime_s;
        ring_epoch = t.ring_epoch
      })

let to_json s =
  Json.Obj
    [ ( "forwards",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.forwards) );
      ("forwards_total", Json.Int s.forwards_total);
      ("failovers", Json.Int s.failovers);
      ("rejects", Json.Int s.rejects);
      ("unrouted", Json.Int s.unrouted);
      ("peer_hits", Json.Int s.peer_hits);
      ("peer_misses", Json.Int s.peer_misses);
      ("breaker_opens", Json.Int s.breaker_opens);
      ("breaker_closes", Json.Int s.breaker_closes);
      ( "breaker_states",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Int (breaker_state_to_int v)))
             s.breaker_states) );
      ( "restarts",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.restarts) );
      ("restarts_total", Json.Int s.restarts_total);
      ( "hedges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.hedges) );
      ("deadline_rejects", Json.Int s.deadline_rejects);
      ("downtime_s", Json.Float s.downtime_s);
      ("ring_epoch", Json.Int s.ring_epoch)
    ]

(* Same exposition conventions as {!Tt_server.Metrics.to_prometheus}:
   one [# TYPE] line per family, [%d] counters, quoted label values. *)
let to_prometheus s =
  let b = Buffer.create 512 in
  let counter name ?(labels = "") v =
    Buffer.add_string b (Printf.sprintf "tt_shard_%s%s %d\n" name labels v)
  in
  let typ name kind =
    Buffer.add_string b (Printf.sprintf "# TYPE tt_shard_%s %s\n" name kind)
  in
  typ "forwards_total" "counter";
  List.iter
    (fun (shard, v) ->
      counter "forwards_total" ~labels:(Printf.sprintf {|{shard=%S}|} shard) v)
    s.forwards;
  typ "failovers_total" "counter";
  counter "failovers_total" s.failovers;
  typ "rejects_total" "counter";
  counter "rejects_total" s.rejects;
  typ "unrouted_total" "counter";
  counter "unrouted_total" s.unrouted;
  typ "peer_hits_total" "counter";
  counter "peer_hits_total" s.peer_hits;
  typ "peer_misses_total" "counter";
  counter "peer_misses_total" s.peer_misses;
  typ "breaker_opens_total" "counter";
  counter "breaker_opens_total" s.breaker_opens;
  typ "breaker_closes_total" "counter";
  counter "breaker_closes_total" s.breaker_closes;
  if s.breaker_states <> [] then begin
    typ "breaker_state" "gauge";
    List.iter
      (fun (shard, st) ->
        counter "breaker_state"
          ~labels:(Printf.sprintf {|{shard=%S}|} shard)
          (breaker_state_to_int st))
      s.breaker_states
  end;
  typ "restarts_total" "counter";
  List.iter
    (fun (shard, v) ->
      counter "restarts_total" ~labels:(Printf.sprintf {|{shard=%S}|} shard) v)
    s.restarts;
  typ "hedges_total" "counter";
  List.iter
    (fun (outcome, v) ->
      counter "hedges_total"
        ~labels:(Printf.sprintf {|{outcome=%S}|} outcome)
        v)
    s.hedges;
  typ "deadline_exceeded_total" "counter";
  counter "deadline_exceeded_total" s.deadline_rejects;
  typ "downtime_seconds_total" "counter";
  Buffer.add_string b
    (Printf.sprintf "tt_shard_downtime_seconds_total %.9g\n"
       (if Float.is_finite s.downtime_s then s.downtime_s else 0.));
  typ "ring_epoch" "gauge";
  counter "ring_epoch" s.ring_epoch;
  Buffer.contents b
