module P = Tt_server.Protocol
module Client = Tt_server.Client
module Loadgen = Tt_server.Loadgen
module Netfault = Tt_server.Netfault
module Server = Tt_server.Server
module Retry = Tt_engine.Retry

(* ------------------------------------------------------------- config *)

type config = {
  seed : int;
  shards : int;
  workers : int;  (* worker domains per shard — 1 keeps capacity small *)
  queue_capacity : int;  (* per-shard admission queue (small → sheds) *)
  cal_requests : int;  (* closed-loop calibration volume *)
  cal_connections : int;
  requests : int;  (* overload-phase volume *)
  connections : int;  (* concurrency — must exceed the cluster's AIMD
                         window for admission control to engage *)
  batch_share : float;  (* fraction of overload traffic sent batch *)
  deadline_s : float;  (* per-request budget during overload *)
  overdrive : float;  (* offered rate as a multiple of measured capacity *)
  stall_shard : int;  (* whose ingress gate goes silent *)
  entry_size : int;  (* generated problem size (per-request distinct) *)
  interactive_floor : float;  (* minimum interactive goodput fraction *)
  late_slack_s : float;  (* grace over deadline before an ok is "late" *)
}

let default_config =
  { seed = 17;
    shards = 3;
    workers = 1;
    queue_capacity = 1;
    cal_requests = 48;
    cal_connections = 3;
    requests = 200;
    connections = 6;
    batch_share = 0.3;
    deadline_s = 1.0;
    overdrive = 4.0;
    stall_shard = 0;
    entry_size = 40;
    interactive_floor = 0.15;
    late_slack_s = 0.5
  }

(* Per-request distinct entries, synthesized from the idempotency key.
   Loadgen idems are a pure function of (tag, seed, connection, index),
   so the issued entry set is identical on every run of the same seed —
   which is what lets the gate diff two runs' full-set digests — while
   the per-request generator seed defeats the content-addressed cache:
   at 4x overdrive the shards must actually compute, not replay. *)
let stable_hash s =
  let d = Digest.string ("tt-overload-" ^ s) in
  Char.code d.[0] lor (Char.code d.[1] lsl 8) lor (Char.code d.[2] lsl 16)

let entry_of cfg idem =
  Printf.sprintf "gen random size=%d seed=%d :: minmem" cfg.entry_size
    (stable_hash idem)

(* ------------------------------------------------------- observations *)

(* Client-side ledger, shared by every loadgen connection. Every issued
   request must land in exactly one bucket: ok (late or not), typed shed
   ([overloaded] / [deadline_exceeded]), or untyped loss — the gate's
   headline invariant is that the last bucket stays empty. *)
type obs = {
  o_mu : Mutex.t;
  mutable issued_i : int;
  mutable issued_b : int;
  mutable ok_i : int;
  mutable ok_b : int;
  mutable shed_i : int;
  mutable shed_b : int;
  mutable late : int;
  mutable untyped : int;
  mutable untyped_example : string option;
  o_entries : (string, unit) Hashtbl.t;  (* every entry issued *)
  o_digests : (string, string) Hashtbl.t;  (* entry -> observed digest *)
}

let obs_create () =
  { o_mu = Mutex.create ();
    issued_i = 0;
    issued_b = 0;
    ok_i = 0;
    ok_b = 0;
    shed_i = 0;
    shed_b = 0;
    late = 0;
    untyped = 0;
    untyped_example = None;
    o_entries = Hashtbl.create 64;
    o_digests = Hashtbl.create 64
  }

let o_locked o f =
  Mutex.lock o.o_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock o.o_mu) f

let record_issue o entry priority =
  o_locked o (fun () ->
      Hashtbl.replace o.o_entries entry ();
      match priority with
      | P.Interactive -> o.issued_i <- o.issued_i + 1
      | P.Batch -> o.issued_b <- o.issued_b + 1)

let record_outcome cfg o entry priority elapsed_s ~deadline r =
  o_locked o (fun () ->
      match r with
      | Ok reports ->
          (match priority with
          | P.Interactive -> o.ok_i <- o.ok_i + 1
          | P.Batch -> o.ok_b <- o.ok_b + 1);
          if deadline && elapsed_s > cfg.deadline_s +. cfg.late_slack_s then
            o.late <- o.late + 1;
          Hashtbl.replace o.o_digests entry (P.value_digest reports)
      | Error (Client.Refused ((P.Overloaded | P.Deadline_exceeded), _)) -> (
          match priority with
          | P.Interactive -> o.shed_i <- o.shed_i + 1
          | P.Batch -> o.shed_b <- o.shed_b + 1)
      | Error f ->
          o.untyped <- o.untyped + 1;
          if o.untyped_example = None then
            o.untyped_example <- Some (Client.failure_to_string f))

(* The pluggable loadgen solver: one resilient session per connection,
   entries synthesized from the idem, every outcome recorded. [deadline]
   selects whether lateness is judged (the calibration phase runs
   without budgets). *)
let solver cfg o ~port ~deadline ~read_timeout_s ~tag ~conn =
  let s =
    Client.open_session ~port ~connect_timeout_s:1.0 ~read_timeout_s
      ~retry:Retry.none
      ~tag:(Printf.sprintf "%s-c%d" tag conn)
      ()
  in
  { Loadgen.sv_solve =
      (fun ?timeout_s ?priority ~idem _entry ->
        let entry = entry_of cfg idem in
        let priority = Option.value ~default:P.Interactive priority in
        record_issue o entry priority;
        let t0 = Unix.gettimeofday () in
        let r = Client.session_solve s ?timeout_s ~priority ~idem entry in
        record_outcome cfg o entry priority
          (Unix.gettimeofday () -. t0)
          ~deadline r;
        r);
    sv_close = (fun () -> Client.close_session s)
  }

(* Per-entry reference digests from a pristine 1-shard cluster — the
   oracle for the "completed subset matches the clean run" check and
   for the run-invariant full-set digest the gate diffs. *)
let reference_digests ~workers entries =
  let t = Cluster.start ~shards:1 ~workers ~peering:false () in
  Fun.protect
    ~finally:(fun () -> Cluster.stop t)
    (fun () ->
      Client.with_connection ~port:(Cluster.router_port t)
        ~read_timeout_s:30. (fun c ->
          let tbl = Hashtbl.create 64 in
          let all =
            List.concat_map
              (fun entry ->
                match Client.solve c ~idem:("oref-" ^ entry) entry with
                | Ok reports ->
                    Hashtbl.replace tbl entry (P.value_digest reports);
                    reports
                | Error e ->
                    failwith
                      (Printf.sprintf "overload reference solve %S: %s" entry
                         e))
              entries
          in
          (tbl, P.value_digest all)))

(* ------------------------------------------------------------- report *)

type class_report = { cr_issued : int; cr_ok : int; cr_shed : int }

type report = {
  config : config;
  measured_rps : float;  (* clean closed-loop capacity *)
  offered_rps : float;  (* overdrive x measured *)
  issued : int;
  ok : int;
  sheds : int;
  late : int;
  untyped : int;
  untyped_example : string option;
  interactive : class_report;
  batch : class_report;
  contradicted : int;  (* ok replies disagreeing with the clean oracle *)
  hedge_won : int;
  hedge_lost : int;
  hedge_failed : int;
  router_deadline_rejects : int;
  reference_digest : string;  (* clean digest over ALL issued entries *)
  load : Loadgen.summary;
  wall_s : float;
}

let goodput cr = float_of_int cr.cr_ok /. float_of_int (max 1 cr.cr_issued)

let run cfg =
  if cfg.shards < 2 then invalid_arg "Overload_nemesis.run: shards < 2";
  if cfg.stall_shard < 0 || cfg.stall_shard >= cfg.shards then
    invalid_arg "Overload_nemesis.run: stall_shard out of range";
  if cfg.requests < 1 || cfg.cal_requests < 1 then
    invalid_arg "Overload_nemesis.run: requests < 1";
  if cfg.connections < 1 || cfg.cal_connections < 1 then
    invalid_arg "Overload_nemesis.run: connections < 1";
  if cfg.overdrive <= 0. then invalid_arg "Overload_nemesis.run: overdrive <= 0";
  if cfg.deadline_s <= 0. then
    invalid_arg "Overload_nemesis.run: deadline_s <= 0";
  let server_config =
    { Server.default_config with queue_capacity = cfg.queue_capacity }
  in
  let router_config =
    { Router.default_config with
      connect_timeout_s = 0.25;
      (* The shard-facing read timeout is scaled to shard RTT (p99 is
         tens of milliseconds for this workload), NOT to the client
         deadline: a stalled shard answers nothing, and a sweep that
         waits the whole client budget on a silent node burns the very
         deadline it is trying to meet. Failing fast here is also what
         feeds the breaker, which then routes around the stall. *)
      read_timeout_s = 0.35;
      (* One sweep per request: re-sweeping a shedding cluster is a
         retry storm — it multiplies every refusal into ring-size more
         attempts and starves the work that could have completed. *)
      retry = Retry.none;
      probe_seed = cfg.seed;
      hedge_seed = cfg.seed
    }
  in
  let t =
    Cluster.start ~shards:cfg.shards ~workers:cfg.workers ~proxied:true
      ~router_config ~server_config ()
  in
  let t0 = Unix.gettimeofday () in
  let run_report =
    Fun.protect
      ~finally:(fun () -> Cluster.stop t)
      (fun () ->
        let port = Cluster.router_port t in
        (* Phase 1 — calibrate against the healthy cluster: closed-loop
           throughput is the capacity the overload phase overdrives, and
           the traffic warms every shard's RTT window so the hedge
           triggers are armed before the stall. *)
        let cal_obs = obs_create () in
        let cal =
          Loadgen.run
            { Loadgen.default_config with
              port;
              connections = cfg.cal_connections;
              requests = cfg.cal_requests;
              seed = cfg.seed;
              entries = [| "synthesized-per-request" |];
              tag = "oc";
              read_timeout_s = 30.;
              solver =
                Some (solver cfg cal_obs ~port ~deadline:false
                        ~read_timeout_s:30.)
            }
        in
        if cal_obs.untyped > 0 then
          failwith
            (Printf.sprintf "overload calibration lost %d requests (%s)"
               cal_obs.untyped
               (Option.value ~default:"?" cal_obs.untyped_example));
        let measured_rps = cal.Loadgen.throughput_rps in
        let offered_rps = cfg.overdrive *. measured_rps in
        (* Phase 2 — stall one shard's ingress and overdrive the rest:
           open-loop arrivals at [overdrive] x capacity, every request
           carrying the deadline budget, a batch share riding along to
           exercise brownout. *)
        Cluster.set_partition t cfg.stall_shard Netfault.Gate_stalled;
        let o = obs_create () in
        let rate = Float.max 1. (offered_rps /. float_of_int cfg.connections) in
        let load =
          Loadgen.run
            { Loadgen.default_config with
              port;
              connections = cfg.connections;
              requests = cfg.requests;
              seed = cfg.seed;
              entries = [| "synthesized-per-request" |];
              tag = "ox";
              mode = Loadgen.Open rate;
              timeout_s = Some cfg.deadline_s;
              batch_share = cfg.batch_share;
              read_timeout_s = (cfg.deadline_s +. 2.0);
              solver =
                Some (solver cfg o ~port ~deadline:true
                        ~read_timeout_s:(cfg.deadline_s +. 2.0))
            }
        in
        Cluster.heal t cfg.stall_shard;
        let snap = Cluster.snapshot t in
        (* Phase 3 — oracle: re-solve every issued entry on a pristine
           1-shard cluster; any ok reply from the overloaded run that
           disagrees is a contradiction, and the full-set digest is the
           run-invariant identity the byte-diff gate compares. *)
        let entries =
          List.sort compare
            (Hashtbl.fold (fun e () acc -> e :: acc) o.o_entries [])
        in
        let ref_tbl, reference_digest =
          reference_digests ~workers:cfg.workers entries
        in
        let contradicted =
          Hashtbl.fold
            (fun entry dg acc ->
              match Hashtbl.find_opt ref_tbl entry with
              | Some reference when dg <> reference -> acc + 1
              | _ -> acc)
            o.o_digests 0
        in
        let hedge outcome =
          Option.value ~default:0 (List.assoc_opt outcome snap.Metrics.hedges)
        in
        { config = cfg;
          measured_rps;
          offered_rps;
          issued = o.issued_i + o.issued_b;
          ok = o.ok_i + o.ok_b;
          sheds = o.shed_i + o.shed_b;
          late = o.late;
          untyped = o.untyped;
          untyped_example = o.untyped_example;
          interactive =
            { cr_issued = o.issued_i; cr_ok = o.ok_i; cr_shed = o.shed_i };
          batch = { cr_issued = o.issued_b; cr_ok = o.ok_b; cr_shed = o.shed_b };
          contradicted;
          hedge_won = hedge "won";
          hedge_lost = hedge "lost";
          hedge_failed = hedge "failed";
          router_deadline_rejects = snap.Metrics.deadline_rejects;
          reference_digest;
          load;
          wall_s = 0.
        })
  in
  { run_report with wall_s = Unix.gettimeofday () -. t0 }

(* -------------------------------------------------------------- check *)

(* The acceptance gate `make chaos-overload` asserts: zero untyped
   losses, every ok within its deadline, no contradicted value, proof
   the run actually overloaded (sheds happened, batch shed, a hedge
   won), and the interactive class kept a goodput floor through it. *)
let check r =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if r.untyped > 0 then
    fail "%d untyped losses (e.g. %s)" r.untyped
      (Option.value ~default:"?" r.untyped_example)
  else if r.late > 0 then fail "%d ok replies landed past their deadline" r.late
  else if r.contradicted > 0 then
    fail "%d ok replies contradicted the clean oracle" r.contradicted
  else if r.ok < 1 then fail "no request completed at all"
  else if r.sheds < 1 then
    fail "no request was shed — the run never overloaded"
  else if r.batch.cr_shed < 1 then fail "no batch request was shed"
  else if r.hedge_won < 1 then fail "no hedge won its race"
  else if goodput r.interactive < r.config.interactive_floor then
    fail "interactive goodput %.3f below floor %.3f" (goodput r.interactive)
      r.config.interactive_floor
  else Ok ()

(* ------------------------------------------------------------- render *)

(* The [overload-summary] lines are the byte-diff surface: only
   run-invariant facts — the config, the pass/fail shape of every
   invariant, and the full-set clean digest. Wall-clock-dependent counts
   (goodput, shed totals, hedge counts) are real observations but vary
   run to run; they live in the human section above. *)
let report_to_string r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let c = r.config in
  add "overload: measured %.0f rps clean, offered %.0f rps (%.1fx) \
       across %d connections\n"
    r.measured_rps r.offered_rps c.overdrive c.connections;
  add "load: %d issued, %d ok, %d shed, %d late, %d untyped, wall %.2fs\n"
    r.issued r.ok r.sheds r.late r.untyped r.wall_s;
  add "  interactive: %d issued, %d ok, %d shed (goodput %.3f, floor %.3f)\n"
    r.interactive.cr_issued r.interactive.cr_ok r.interactive.cr_shed
    (goodput r.interactive) c.interactive_floor;
  add "  batch:       %d issued, %d ok, %d shed (goodput %.3f)\n"
    r.batch.cr_issued r.batch.cr_ok r.batch.cr_shed (goodput r.batch);
  add "hedges: %d won, %d lost, %d failed; router deadline rejects %d\n"
    r.hedge_won r.hedge_lost r.hedge_failed r.router_deadline_rejects;
  add "oracle: %d contradicted of %d completed\n" r.contradicted r.ok;
  List.iter (fun (code, n) -> add "  error %-18s %d\n" code n)
    r.load.Loadgen.errors;
  add
    "overload-summary v1 seed=%d shards=%d workers=%d queue=%d requests=%d \
     connections=%d batch-share=%.2f deadline-s=%.2f overdrive=%.1f\n"
    c.seed c.shards c.workers c.queue_capacity c.requests c.connections
    c.batch_share c.deadline_s c.overdrive;
  add
    "overload-summary invariants untyped=%s late=%s contradicted=%s \
     overloaded=%s batch-shed=%s hedge-won=%s interactive-floor=%s\n"
    (if r.untyped = 0 then "none" else "LOST")
    (if r.late = 0 then "none" else "LATE")
    (if r.contradicted = 0 then "none" else "CONTRADICTED")
    (if r.sheds > 0 then "yes" else "NO")
    (if r.batch.cr_shed > 0 then "yes" else "NO")
    (if r.hedge_won > 0 then "yes" else "NO")
    (if goodput r.interactive >= c.interactive_floor then "met" else "MISSED");
  add "overload-summary digest %s\n" r.reference_digest;
  Buffer.contents b
