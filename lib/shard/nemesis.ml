module P = Tt_server.Protocol
module Client = Tt_server.Client
module Loadgen = Tt_server.Loadgen
module Netfault = Tt_server.Netfault
module Retry = Tt_engine.Retry

(* ---------------------------------------------------------- schedule *)

type fault =
  | Kill of int
  | Stall of int
  | Partition of int
  | Heal of int
  | Join
  | Leave of int

let fault_to_string = function
  | Kill i -> Printf.sprintf "kill s%d" i
  | Stall i -> Printf.sprintf "stall s%d" i
  | Partition i -> Printf.sprintf "partition s%d" i
  | Heal i -> Printf.sprintf "heal s%d" i
  | Join -> "join"
  | Leave i -> Printf.sprintf "leave s%d" i

let plan_to_string faults =
  String.concat "" (List.map (fun f -> fault_to_string f ^ "\n") faults)

type config = {
  seed : int;
  steps : int;
  shards : int;  (* initial ring size *)
  max_shards : int;  (* Join is only scheduled below this *)
  requests : int;
  connections : int;
  step_gap_s : float;  (* wall time between schedule steps *)
  restart_delay_s : float;  (* supervisor delay — long enough to open breakers *)
  workers : int;
  quiesce_timeout_s : float;
}

let default_config =
  { seed = 11;
    steps = 8;
    shards = 3;
    max_shards = 5;
    requests = 400;
    connections = 4;
    step_gap_s = 0.4;
    restart_delay_s = 0.5;
    workers = 2;
    quiesce_timeout_s = 15.
  }

(* The per-step random source: a pure function of (seed, step), same
   construction as {!Tt_engine.Fault} and {!Tt_engine.Retry} — so the
   whole schedule is reproducible from the seed alone, which is what
   lets `make chaos-nemesis` diff two [--plan-only] runs byte for
   byte. *)
let roll ~seed ~step =
  let d = Digest.string (Printf.sprintf "tt-nemesis-%d-%d" seed step) in
  Char.code d.[0]
  lor (Char.code d.[1] lsl 8)
  lor (Char.code d.[2] lsl 16)

(* Model of the cluster the schedule evolves against. Indices are
   cluster shard indices: joins allocate [total], leaves keep indices
   valid but out of the ring — mirroring {!Cluster} exactly, so a plan
   replays against a live cluster without translation. *)
type model = {
  m_ring : int list;  (* in-ring shard indices, ascending *)
  m_total : int;  (* shards ever created *)
  m_gated : int option;  (* shard whose ingress gate is not open *)
  m_owed : [ `Kill | `Cut | `Member ] list;
      (* coverage debt: the acceptance gate needs ≥1 supervised
         restart, ≥1 breaker cycle and ≥1 membership change per run,
         so the first steps pay these off before free play begins. *)
}

let pick h xs = List.nth xs (h mod List.length xs)

let step_model cfg m step =
  let h = roll ~seed:cfg.seed ~step in
  match m.m_gated with
  (* An open disturbance is always healed before the next one starts:
     one fault in flight at a time keeps every seed's run convergent
     (quorum-less tier — a second overlapping fault could partition
     every replica of a key at once for the whole gap). *)
  | Some i -> (Heal i, { m with m_gated = None })
  | None -> (
      let kill () =
        let i = pick h m.m_ring in
        (Kill i, m)
      in
      let cut () =
        let i = pick h m.m_ring in
        ((if h land 0x10000 = 0 then Partition i else Stall i),
         { m with m_gated = Some i })
      in
      let join () =
        ( Join,
          { m with m_ring = m.m_ring @ [ m.m_total ]; m_total = m.m_total + 1 }
        )
      in
      let leave () =
        let i = pick h m.m_ring in
        (Leave i, { m with m_ring = List.filter (fun j -> j <> i) m.m_ring })
      in
      let member () =
        if m.m_total < cfg.max_shards then join ()
        else if List.length m.m_ring > 2 then leave ()
        else kill ()
        (* membership frozen (max reached, ring too small to shrink):
           a 1-shard bench run still gets a disturbance this step *)
      in
      match m.m_owed with
      | `Kill :: rest ->
          let f, m' = kill () in
          (f, { m' with m_owed = rest })
      | `Cut :: rest ->
          let f, m' = cut () in
          (f, { m' with m_owed = rest })
      | `Member :: rest ->
          let f, m' = member () in
          (f, { m' with m_owed = rest })
      | [] ->
          let feasible =
            [ kill; cut ]
            @ (if m.m_total < cfg.max_shards then [ join ] else [])
            @ if List.length m.m_ring > 2 then [ leave ] else []
          in
          (pick (h lsr 4) feasible) ())

let plan cfg =
  if cfg.shards < 1 then invalid_arg "Nemesis.plan: shards < 1";
  if cfg.max_shards < cfg.shards then
    invalid_arg "Nemesis.plan: max_shards < shards";
  if cfg.steps < 1 then invalid_arg "Nemesis.plan: steps < 1";
  let m0 =
    { m_ring = List.init cfg.shards Fun.id;
      m_total = cfg.shards;
      m_gated = None;
      m_owed = [ `Kill; `Cut; `Member ]
    }
  in
  let rec go m step acc =
    if step >= cfg.steps then List.rev acc
    else
      let f, m' = step_model cfg m step in
      go m' (step + 1) (f :: acc)
  in
  go m0 0 []

(* ------------------------------------------------------------ runner *)

type report = {
  faults : fault list;
  events : Cluster.event list;  (* runtime observations, in order *)
  load : Loadgen.summary;
  timeline : (int * int * int) list;
      (* (second since load start, ok, errors) — the availability
         timeline the bench section plots per shard count *)
  clean_digest : string;
  final_digest : string;
  digest_match : bool;
  lost_admitted : int;
      (* ok replies whose per-entry value digest disagreed with the
         clean reference — results handed out then contradicted *)
  restarts : int;
  breaker_opens : int;
  breaker_closes : int;
  ring_epoch : int;
  recovered : bool;  (* all in-ring shards alive, all breakers closed *)
}

let retry_policy seed =
  { Retry.retries = 10;
    base_delay_s = 0.05;
    max_delay_s = 0.8;
    jitter = 0.25;
    seed
  }

(* Per-entry reference digests from a pristine 1-shard cluster: the
   oracle both for the final convergence check and for calling out any
   individual reply the chaotic run got wrong. *)
let reference_digests ~workers entries =
  let t = Cluster.start ~shards:1 ~workers ~peering:false () in
  Fun.protect
    ~finally:(fun () -> Cluster.stop t)
    (fun () ->
      Client.with_connection ~port:(Cluster.router_port t) (fun c ->
          let tbl = Hashtbl.create 16 in
          let all =
            Array.to_list entries
            |> List.concat_map (fun entry ->
                   match Client.solve c ~idem:("ref-" ^ entry) entry with
                   | Ok reports ->
                       Hashtbl.replace tbl entry (P.value_digest reports);
                       reports
                   | Error e ->
                       failwith
                         (Printf.sprintf "nemesis reference solve %S: %s"
                            entry e))
          in
          (tbl, P.value_digest all)))

let sweep_digest ~port ~seed entries =
  Client.with_connection ~port ~read_timeout_s:30. (fun c ->
      let all =
        Array.to_list entries
        |> List.concat_map (fun entry ->
               match
                 Client.solve c
                   ~idem:(Printf.sprintf "sweep-%d-%s" seed entry)
                   entry
               with
               | Ok reports -> reports
               | Error e ->
                   failwith
                     (Printf.sprintf "nemesis final sweep %S: %s" entry e))
      in
      P.value_digest all)

let apply_fault t = function
  | Kill i -> Cluster.kill_shard t i
  | Stall i -> Cluster.set_partition t i Netfault.Gate_stalled
  | Partition i -> Cluster.partition t i
  | Heal i -> Cluster.heal t i
  | Join -> ignore (Cluster.join t)
  | Leave i -> Cluster.leave t i

let all_recovered t =
  let snap = Cluster.snapshot t in
  let shards_up =
    List.for_all
      (fun i -> (not (Cluster.shard_in_ring t i)) || Cluster.shard_alive t i)
      (List.init (Cluster.size t) Fun.id)
  in
  let breakers_closed =
    List.for_all
      (fun (_, st) -> st = Metrics.Breaker_closed)
      snap.Metrics.breaker_states
  in
  shards_up && breakers_closed

let wait_recovered t ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if all_recovered t then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.1;
      go ()
    end
  in
  go ()

let run cfg =
  let faults = plan cfg in
  if cfg.requests < 1 then invalid_arg "Nemesis.run: requests < 1";
  let entries = Loadgen.default_entries in
  let clean_tbl, clean_digest =
    reference_digests ~workers:cfg.workers entries
  in
  let events = ref [] in
  let events_mu = Mutex.create () in
  let on_event e =
    Mutex.lock events_mu;
    events := e :: !events;
    Mutex.unlock events_mu
  in
  let router_config =
    { Router.default_config with
      (* Short per-shard deadlines: a stalled ingress must cost a
         request one bounded timeout, not the client-facing 30 s. *)
      connect_timeout_s = 0.25;
      read_timeout_s = 1.0;
      probe_seed = cfg.seed
    }
  in
  let t =
    Cluster.start ~shards:cfg.shards ~workers:cfg.workers ~proxied:true
      ~supervise:true ~restart_delay_s:cfg.restart_delay_s ~on_event
      ~router_config ()
  in
  Fun.protect
    ~finally:(fun () -> Cluster.stop t)
    (fun () ->
      let port = Cluster.router_port t in
      let lost = Atomic.make 0 in
      let record entry reports =
        match Hashtbl.find_opt clean_tbl entry with
        | Some reference when P.value_digest reports <> reference ->
            Atomic.incr lost
        | _ -> ()
      in
      let t0 = Unix.gettimeofday () in
      let buckets = Hashtbl.create 16 in
      let buckets_mu = Mutex.create () in
      let bucket ok =
        let s = int_of_float (Unix.gettimeofday () -. t0) in
        Mutex.lock buckets_mu;
        let o, e = Option.value ~default:(0, 0) (Hashtbl.find_opt buckets s) in
        Hashtbl.replace buckets s (if ok then (o + 1, e) else (o, e + 1));
        Mutex.unlock buckets_mu
      in
      let solver ~tag ~conn =
        let s =
          Client.open_session ~port ~connect_timeout_s:0.5
            ~read_timeout_s:10.
            ~retry:(retry_policy (cfg.seed + conn))
            ~tag:(Printf.sprintf "%s-c%d" tag conn)
            ()
        in
        { Loadgen.sv_solve =
            (fun ?timeout_s ?priority ~idem entry ->
              let r = Client.session_solve s ?timeout_s ?priority ~idem entry in
              (match r with
              | Ok reports ->
                  record entry reports;
                  bucket true
              | Error _ -> bucket false);
              r);
          sv_close = (fun () -> Client.close_session s)
        }
      in
      let lg =
        { Loadgen.default_config with
          port;
          connections = cfg.connections;
          requests = cfg.requests;
          seed = cfg.seed;
          entries;
          tag = "nx";
          solver = Some solver
        }
      in
      let load_domain = Domain.spawn (fun () -> Loadgen.run lg) in
      List.iter
        (fun f ->
          apply_fault t f;
          Unix.sleepf cfg.step_gap_s)
        faults;
      (* Belt and braces: the plan heals every cut it opens, but a
         final sweep over live gates costs nothing and makes the
         quiescence condition independent of schedule endings. *)
      List.iter
        (fun i ->
          if Cluster.shard_in_ring t i then
            try Cluster.heal t i with Invalid_argument _ -> ())
        (List.init (Cluster.size t) Fun.id);
      let load = Domain.join load_domain in
      let recovered = wait_recovered t ~timeout_s:cfg.quiesce_timeout_s in
      let final_digest =
        sweep_digest ~port ~seed:cfg.seed entries
      in
      let snap = Cluster.snapshot t in
      let timeline =
        Hashtbl.fold (fun s (o, e) acc -> (s, o, e) :: acc) buckets []
        |> List.sort compare
      in
      { faults;
        events = List.rev !events;
        load;
        timeline;
        clean_digest;
        final_digest;
        digest_match = final_digest = clean_digest;
        lost_admitted = Atomic.get lost;
        restarts = snap.Metrics.restarts_total;
        breaker_opens = snap.Metrics.breaker_opens;
        breaker_closes = snap.Metrics.breaker_closes;
        ring_epoch = snap.Metrics.ring_epoch;
        recovered
      })

(* The acceptance gate `make chaos-nemesis` asserts: convergence, no
   contradicted reply, and proof the run actually exercised the
   machinery (a schedule that never hurt anything proves nothing). *)
let check r =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if not r.digest_match then
    fail "final digest %s != clean %s" r.final_digest r.clean_digest
  else if r.lost_admitted > 0 then
    fail "%d admitted replies contradicted the clean values" r.lost_admitted
  else if not r.recovered then fail "cluster did not quiesce"
  else if r.restarts < 1 then fail "no supervised restart happened"
  else if r.breaker_opens < 1 then fail "no breaker opened"
  else if r.breaker_closes < 1 then fail "no breaker closed"
  else if r.ring_epoch < 1 then fail "no ring reconfiguration happened"
  else Ok ()

let report_to_string r =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "nemesis schedule (%d steps):\n" (List.length r.faults);
  List.iter (fun f -> add "  %s\n" (fault_to_string f)) r.faults;
  add "events observed:\n";
  List.iter (fun e -> add "  %s\n" (Cluster.event_to_string e)) r.events;
  add "load: %d requests, %d ok, %d transport errors\n" r.load.Loadgen.requests
    r.load.Loadgen.ok r.load.Loadgen.transport_errors;
  List.iter (fun (c, n) -> add "  error %-18s %d\n" c n) r.load.Loadgen.errors;
  add "availability timeline (1 s buckets, ok/err):";
  List.iter (fun (s, o, e) -> add " t+%ds %d/%d" s o e) r.timeline;
  add "\n";
  add "restarts %d  breaker open %d close %d  ring epoch %d\n" r.restarts
    r.breaker_opens r.breaker_closes r.ring_epoch;
  add "digest clean %s\n" r.clean_digest;
  add "digest final %s (%s)\n" r.final_digest
    (if r.digest_match then "match" else "MISMATCH");
  add "lost admitted %d  recovered %b\n" r.lost_admitted r.recovered;
  Buffer.contents b
