module P = Tt_server.Protocol
module Client = Tt_server.Client
module Retry = Tt_engine.Retry

let default_connect_timeout_s = 1.

type t = {
  route : string -> Ring.node list;
  static_ring : Ring.t;
  health : Health.t option;
  conns : (string, Client.t) Hashtbl.t;  (* node name -> live conn *)
  connect_timeout_s : float;
  read_timeout_s : float;
  retry : Retry.policy;
  metrics : Metrics.t;
}

let create ?(connect_timeout_s = default_connect_timeout_s)
    ?(read_timeout_s = Client.default_read_timeout_s) ?(retry = Retry.none)
    ?health ?route ~metrics ring =
  { route =
      (match route with
      | Some f -> f
      | None -> fun key -> Ring.successors ring key);
    static_ring = ring;
    health;
    conns = Hashtbl.create 8;
    connect_timeout_s;
    read_timeout_s;
    retry;
    metrics
  }

let ring t = t.static_ring

let close t =
  Hashtbl.iter (fun _ c -> Client.close c) t.conns;
  Hashtbl.reset t.conns

let drop t name =
  match Hashtbl.find_opt t.conns name with
  | None -> ()
  | Some c ->
      Client.close c;
      Hashtbl.remove t.conns name

let conn t (node : Ring.node) =
  match Hashtbl.find_opt t.conns node.Ring.name with
  | Some c -> Some c
  | None -> (
      match
        Client.connect ~host:node.Ring.host
          ~read_timeout_s:t.read_timeout_s
          ~connect_timeout_s:t.connect_timeout_s ~port:node.Ring.port ()
      with
      | c ->
          Hashtbl.replace t.conns node.Ring.name c;
          Some c
      | exception Unix.Unix_error _ | exception Failure _ -> None)

(* A shard that answered [Shutting_down] (draining), [Overloaded],
   [Internal] or [Unavailable] is useless for this request {e right
   now}, but a successor — which can compute any key, ownership only
   steers the cache — can serve it. Anything else is a property of the
   request (or of its deadline) and is relayed as-is. *)
let routable_refusal = function
  | P.Shutting_down | P.Overloaded | P.Internal | P.Unavailable -> true
  | P.Bad_frame | P.Bad_request | P.Unsupported_version | P.Deadline_exceeded
    ->
      false

let note_success t name =
  match t.health with None -> () | Some h -> Health.success h name

let note_failure t name =
  match t.health with None -> () | Some h -> Health.failure h name

(* One node's verdict inside a sweep. *)
type attempt =
  | Answered of P.body  (* success or a refusal to relay verbatim *)
  | Move_on of string  (* transport failure / routable refusal: next *)

let attempt t node op =
  Metrics.forward t.metrics ~shard:node.Ring.name;
  match conn t node with
  | None ->
      note_failure t node.Ring.name;
      Move_on (node.Ring.name ^ " unreachable")
  | Some c -> (
      match Client.call c op with
      | Error msg ->
          (* Unknown connection state: reconnect on next use. *)
          note_failure t node.Ring.name;
          drop t node.Ring.name;
          Move_on (Printf.sprintf "%s: %s" node.Ring.name msg)
      | Ok (P.Refused { code; _ } as body) ->
          (* Any parsed reply — refusals included — proves the shard's
             transport is alive: the breaker only tracks reachability,
             admission pressure is failover's business. *)
          note_success t node.Ring.name;
          if routable_refusal code then begin
            drop t node.Ring.name;
            Move_on
              (Printf.sprintf "%s refused: %s" node.Ring.name
                 (P.error_code_to_string code))
          end
          else Answered body
      | Ok body ->
          note_success t node.Ring.name;
          Answered body)

let skippable t name =
  match t.health with None -> false | Some h -> not (Health.allow h name)

let call t ~key op =
  let sweep () =
    (* Re-plan every sweep: between backoff rounds the ring may have
       been reconfigured (join/leave) or a breaker may have
       half-opened. *)
    let order = t.route key in
    let skips = ref 0 in
    let rec go first = function
      | [] -> None
      | (node : Ring.node) :: rest ->
          if skippable t node.Ring.name then begin
            incr skips;
            go first rest
          end
          else begin
            if not first then Metrics.failover t.metrics;
            match attempt t node op with
            | Answered body -> Some body
            | Move_on _ -> go false rest
          end
    in
    (go true order, !skips, List.length order)
  in
  let rec rounds delays =
    match sweep () with
    | Some body, _, _ -> Ok body
    | None, skips, tried -> (
        match delays with
        | [] ->
            Metrics.unrouted t.metrics;
            (* [Unavailable] when a breaker spared us any attempt this
               sweep: the backends are known-dead, nothing about the
               request is wrong, and retrying after a backoff is the
               expected recovery. [Internal] when every shard was
               genuinely tried and its transport failed. *)
            if skips > 0 then
              Error
                ( P.Unavailable,
                  Printf.sprintf
                    "no shard available (%d of %d skipped breaker-open)" skips
                    tried )
            else
              Error
                (P.Internal, Printf.sprintf "no shard reachable (tried %d)" tried)
        | d :: rest ->
            if d > 0. then Unix.sleepf d;
            rounds rest)
  in
  rounds (Retry.delays t.retry ~key)
