module P = Tt_server.Protocol
module Client = Tt_server.Client
module Retry = Tt_engine.Retry
module Overload = Tt_server.Overload

let default_connect_timeout_s = 1.

(* ------------------------------------------------- shared hedge state *)

(* Shared across every per-connection pool of a router (hence the
   mutex): one RTT window per shard, plus the seeded gate parameters.
   RTTs observed by any connection inform every connection's hedge
   trigger. *)
type hedge_state = {
  h_mu : Mutex.t;
  h_seed : int;
  h_ratio : float;
  h_quantile : float;
  h_min_trigger_s : float;
  h_rtts : (string, Overload.Rtt.t) Hashtbl.t;
}

let create_hedge ?(ratio = 1.) ?(quantile = 0.95) ?(min_trigger_s = 0.002)
    ~seed () =
  if ratio < 0. then invalid_arg "Forward.create_hedge: ratio < 0";
  if quantile <= 0. || quantile > 1. then
    invalid_arg "Forward.create_hedge: quantile outside (0, 1]";
  { h_mu = Mutex.create ();
    h_seed = seed;
    h_ratio = ratio;
    h_quantile = quantile;
    h_min_trigger_s = min_trigger_s;
    h_rtts = Hashtbl.create 8
  }

let h_locked hs f =
  Mutex.lock hs.h_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock hs.h_mu) f

let hedge_observe hs ~shard rtt_s =
  h_locked hs (fun () ->
      let r =
        match Hashtbl.find_opt hs.h_rtts shard with
        | Some r -> r
        | None ->
            let r = Overload.Rtt.create () in
            Hashtbl.replace hs.h_rtts shard r;
            r
      in
      Overload.Rtt.observe r rtt_s)

(* The per-shard hedge trigger: the configured quantile of its RTT
   window, floored so a cache-hot shard (microsecond replies) doesn't
   make the trigger degenerate. [None] until enough samples exist —
   hedges never fire on noise. *)
let hedge_trigger hs ~shard =
  h_locked hs (fun () ->
      match Hashtbl.find_opt hs.h_rtts shard with
      | None -> None
      | Some r ->
          Option.map
            (fun q -> Float.max hs.h_min_trigger_s q)
            (Overload.Rtt.quantile r hs.h_quantile))

(* --------------------------------------------------------------- pool *)

type t = {
  route : string -> Ring.node list;
  static_ring : Ring.t;
  health : Health.t option;
  hedge : hedge_state option;
  conns : (string, Client.t) Hashtbl.t;  (* node name -> live conn *)
  connect_timeout_s : float;
  read_timeout_s : float;
  retry : Retry.policy;
  metrics : Metrics.t;
}

let create ?(connect_timeout_s = default_connect_timeout_s)
    ?(read_timeout_s = Client.default_read_timeout_s) ?(retry = Retry.none)
    ?health ?hedge ?route ~metrics ring =
  { route =
      (match route with
      | Some f -> f
      | None -> fun key -> Ring.successors ring key);
    static_ring = ring;
    health;
    hedge;
    conns = Hashtbl.create 8;
    connect_timeout_s;
    read_timeout_s;
    retry;
    metrics
  }

let ring t = t.static_ring

let close t =
  Hashtbl.iter (fun _ c -> Client.close c) t.conns;
  Hashtbl.reset t.conns

let drop t name =
  match Hashtbl.find_opt t.conns name with
  | None -> ()
  | Some c ->
      Client.close c;
      Hashtbl.remove t.conns name

let conn t (node : Ring.node) =
  match Hashtbl.find_opt t.conns node.Ring.name with
  | Some c -> Some c
  | None -> (
      match
        Client.connect ~host:node.Ring.host
          ~read_timeout_s:t.read_timeout_s
          ~connect_timeout_s:t.connect_timeout_s ~port:node.Ring.port ()
      with
      | c ->
          Hashtbl.replace t.conns node.Ring.name c;
          Some c
      | exception Unix.Unix_error _ | exception Failure _ -> None)

(* A shard that answered [Shutting_down] (draining), [Overloaded],
   [Internal] or [Unavailable] is useless for this request {e right
   now}, but a successor — which can compute any key, ownership only
   steers the cache — can serve it. Anything else is a property of the
   request (or of its deadline) and is relayed as-is. *)
let routable_refusal = function
  | P.Shutting_down | P.Overloaded | P.Internal | P.Unavailable -> true
  | P.Bad_frame | P.Bad_request | P.Unsupported_version | P.Deadline_exceeded
    ->
      false

let note_success t name =
  match t.health with None -> () | Some h -> Health.success h name

let note_failure t name =
  match t.health with None -> () | Some h -> Health.failure h name

let observe_rtt t name rtt_s =
  match t.hedge with
  | None -> ()
  | Some hs -> hedge_observe hs ~shard:name rtt_s

(* One node's verdict inside a sweep. [Move_on] carries the refusal
   code when the shard answered (rather than its transport failing), so
   an exhausted sweep can relay the cluster-wide condition — a ring
   where every shard said [overloaded] must surface as [overloaded],
   not as a transport-flavoured [internal]. *)
type attempt =
  | Answered of P.body  (* success or a refusal to relay verbatim *)
  | Move_on of string * P.error_code option

let attempt t node op =
  Metrics.forward t.metrics ~shard:node.Ring.name;
  match conn t node with
  | None ->
      note_failure t node.Ring.name;
      Move_on (node.Ring.name ^ " unreachable", None)
  | Some c -> (
      let sent_at = Unix.gettimeofday () in
      match Client.call c op with
      | Error msg ->
          (* Unknown connection state: reconnect on next use. *)
          note_failure t node.Ring.name;
          drop t node.Ring.name;
          Move_on (Printf.sprintf "%s: %s" node.Ring.name msg, None)
      | Ok (P.Refused { code; _ } as body) ->
          (* Any parsed reply — refusals included — proves the shard's
             transport is alive: the breaker only tracks reachability,
             admission pressure is failover's business. *)
          note_success t node.Ring.name;
          observe_rtt t node.Ring.name (Unix.gettimeofday () -. sent_at);
          if routable_refusal code then
            (* The refusal was a complete, parsed reply: the connection
               is clean and stays pooled. Dropping here would make the
               router reconnect per refused request — under overload,
               when nearly every reply is a refusal, that turns shedding
               into a connect storm. *)
            Move_on
              ( Printf.sprintf "%s refused: %s" node.Ring.name
                  (P.error_code_to_string code),
                Some code )
          else Answered body
      | Ok body ->
          note_success t node.Ring.name;
          observe_rtt t node.Ring.name (Unix.gettimeofday () -. sent_at);
          Answered body)

(* --------------------------------------------------- hedged attempt
   Tail-at-scale hedging for the sweep's first (owner) attempt: send to
   the owner, wait its observed p95; if still silent, race a duplicate
   (same idempotency key) against the ring successor and take the first
   parsed reply. The loser's pooled connection carries an outstanding
   reply, so it is dropped — the pool reconnects on next use. Duplicate
   execution is digest-safe: jobs are content-addressed, replies carry
   deterministic values, and the same-key replay cache absorbs the
   same-shard case. *)

type leg = {
  l_conn : Client.t;
  l_id : string;
  l_node : Ring.node;
  l_sent : float;
}

let leg_recv t leg =
  match Client.recv leg.l_conn with
  | Error msg ->
      note_failure t leg.l_node.Ring.name;
      drop t leg.l_node.Ring.name;
      Error (Printf.sprintf "%s: %s" leg.l_node.Ring.name msg)
  | Ok { P.req_id; body } ->
      if req_id <> None && req_id <> Some leg.l_id then begin
        note_failure t leg.l_node.Ring.name;
        drop t leg.l_node.Ring.name;
        Error (leg.l_node.Ring.name ^ ": response id mismatch")
      end
      else begin
        note_success t leg.l_node.Ring.name;
        observe_rtt t leg.l_node.Ring.name
          (Unix.gettimeofday () -. leg.l_sent);
        Ok body
      end

(* Turn a winning leg's body into the attempt verdict (shared with the
   plain path's refusal routing). *)
let leg_verdict _t leg body =
  match body with
  | P.Refused { code; _ } when routable_refusal code ->
      (* Fully-read reply: keep the winning leg's connection pooled
         (losing legs are dropped separately — they still owe a reply). *)
      Move_on
        ( Printf.sprintf "%s refused: %s" leg.l_node.Ring.name
            (P.error_code_to_string code),
          Some code )
  | body -> Answered body

let send_leg t (node : Ring.node) op =
  match conn t node with
  | None ->
      note_failure t node.Ring.name;
      None
  | Some c -> (
      let id = Client.fresh_id c in
      match Client.send c { P.id; op } with
      | () ->
          Some { l_conn = c; l_id = id; l_node = node; l_sent = Unix.gettimeofday () }
      | exception (Unix.Unix_error _ | Sys_error _) ->
          note_failure t node.Ring.name;
          drop t node.Ring.name;
          None)

(* First readable leg within [until], [`Timeout] otherwise. *)
let rec select_legs legs until =
  let tmo = until -. Unix.gettimeofday () in
  if tmo <= 0. then `Timeout
  else
    match Unix.select (List.map (fun l -> Client.fd l.l_conn) legs) [] [] tmo with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_legs legs until
    | exception Unix.Unix_error _ -> `Timeout
    | [], _, _ -> `Timeout
    | ready, _, _ -> (
        match
          List.find_opt (fun l -> List.mem (Client.fd l.l_conn) ready) legs
        with
        | Some l -> `Ready l
        | None -> `Timeout)

(* Race [legs] until one produces a parsed reply or [until] passes. *)
let rec race t legs until =
  match legs with
  | [] -> `All_failed
  | _ -> (
      match select_legs legs until with
      | `Timeout -> `Timed_out legs
      | `Ready leg -> (
          match leg_recv t leg with
          | Ok body -> `Winner (leg, body, List.filter (fun l -> l != leg) legs)
          | Error _ -> race t (List.filter (fun l -> l != leg) legs) until))

(* [failed] distinguishes legs that never answered within the wait
   (report a breaker failure) from race losers (their reply is merely
   abandoned — the shard is healthy, only the connection is burned). *)
let drop_legs ?(failed = false) t legs =
  List.iter
    (fun l ->
      if failed then note_failure t l.l_node.Ring.name;
      drop t l.l_node.Ring.name)
    legs

let hedged_attempt t hs ~key (node : Ring.node) (successor : Ring.node option)
    op ~budget_s =
  Metrics.forward t.metrics ~shard:node.Ring.name;
  match send_leg t node op with
  | None -> Move_on (node.Ring.name ^ " unreachable", None)
  | Some primary -> (
      let race_until =
        primary.l_sent
        +.
        match budget_s with
        | Some r -> Float.max 0.001 (Float.min t.read_timeout_s r)
        | None -> t.read_timeout_s
      in
      (* Fire the hedge only when: the owner's RTT window is warm (its
         trigger exists), the seeded gate admits this key, and the
         remaining budget can cover the successor's observed RTT. All
         three are pure functions of (seed, key, observations). *)
      let plan =
        match successor with
        | Some succ -> (
            match hedge_trigger hs ~shard:node.Ring.name with
            | Some trigger
              when Overload.hedge_gate ~seed:hs.h_seed ~key ~ratio:hs.h_ratio
                   && Overload.should_hedge ~remaining_s:budget_s
                        ~successor_rtt_s:
                          (Option.value ~default:0.
                             (hedge_trigger hs ~shard:succ.Ring.name)) ->
                Some (succ, trigger)
            | _ -> None)
        | _ -> None
      in
      let finish ~fired legs_result =
        let outcome_of leg =
          match fired with
          | false -> None
          | true ->
              Some (if leg.l_node.Ring.name = node.Ring.name then "lost" else "won")
        in
        match legs_result with
        | `Winner (leg, body, losers) ->
            drop_legs t losers;
            Option.iter
              (fun o -> Metrics.hedge t.metrics ~outcome:o)
              (outcome_of leg);
            leg_verdict t leg body
        | `Timed_out legs ->
            drop_legs ~failed:true t legs;
            if fired then Metrics.hedge t.metrics ~outcome:"failed";
            Move_on
              (Printf.sprintf "%s: no reply within budget" node.Ring.name, None)
        | `All_failed ->
            if fired then Metrics.hedge t.metrics ~outcome:"failed";
            Move_on (node.Ring.name ^ ": every hedge leg failed", None)
      in
      match plan with
      | None -> finish ~fired:false (race t [ primary ] race_until)
      | Some (succ, trigger) -> (
          (* Phase 1: give the owner its p95 before spending a hedge. *)
          match race t [ primary ] (primary.l_sent +. trigger) with
          | (`Winner _ | `All_failed) as r -> finish ~fired:false r
          | `Timed_out _ -> (
              Metrics.forward t.metrics ~shard:succ.Ring.name;
              match send_leg t succ op with
              | None -> finish ~fired:false (race t [ primary ] race_until)
              | Some hedge_leg ->
                  finish ~fired:true
                    (race t [ primary; hedge_leg ] race_until))))

let skippable t name =
  match t.health with None -> false | Some h -> not (Health.allow h name)

(* Hedge successors are chosen with the {e read-only} breaker state:
   {!Health.allow} hands out the single half-open trial, and a trial
   consumed by a successor scan that never sends would leak — leaving
   the breaker half-open forever. Only a fully closed shard is worth a
   speculative duplicate anyway. *)
let hedge_candidate t name =
  match t.health with
  | None -> true
  | Some h -> Health.state h name = Health.Breaker_closed

(* --------------------------------------------------------------- call *)

let call t ~key ?deadline op =
  let remaining () =
    Option.map (fun d -> d -. Unix.gettimeofday ()) deadline
  in
  let expired () =
    match remaining () with Some r -> r <= 0. | None -> false
  in
  let deadline_error () =
    Metrics.deadline_reject t.metrics;
    Error (P.Deadline_exceeded, "deadline budget exhausted during forward")
  in
  (* Deadline propagation: the wire carries {e relative} budget, so
     every attempt re-derives it from the absolute deadline — a retry
     after a slow failover forwards only what is left. *)
  let with_budget op =
    match op with
    | P.Solve s -> (
        match remaining () with
        | None -> op
        | Some r -> P.Solve { s with timeout_s = Some r })
    | op -> op
  in
  let hedgeable = match op with P.Solve _ -> true | _ -> false in
  let sweep () =
    (* Re-plan every sweep: between backoff rounds the ring may have
       been reconfigured (join/leave) or a breaker may have
       half-opened. *)
    let order = t.route key in
    let skips = ref 0 in
    let last_code = ref None in
    let rec go first = function
      | [] -> `Exhausted
      | (node : Ring.node) :: rest ->
          if skippable t node.Ring.name then begin
            incr skips;
            go first rest
          end
          else if expired () then `Budget_gone
          else begin
            if not first then Metrics.failover t.metrics;
            let verdict =
              match (first, hedgeable, t.hedge) with
              | true, true, Some hs ->
                  let successor =
                    List.find_opt
                      (fun (n : Ring.node) -> hedge_candidate t n.Ring.name)
                      rest
                  in
                  hedged_attempt t hs ~key node successor (with_budget op)
                    ~budget_s:(remaining ())
              | _ -> attempt t node (with_budget op)
            in
            match verdict with
            | Answered body -> `Got body
            | Move_on (_why, code) ->
                (match code with Some c -> last_code := Some c | None -> ());
                go false rest
          end
    in
    (* Bind the sweep before reading the refs: a tuple literal would
       evaluate right to left and read them before [go] ran. *)
    let verdict = go true order in
    (verdict, !skips, List.length order, !last_code)
  in
  let exhausted_error skips tried last_code =
    Metrics.unrouted t.metrics;
    (* Relay a cluster-wide [Overloaded] as-is — it is retryable and
       tells the client {e why} (shed, not dead). [Unavailable] when a
       breaker spared us any attempt this sweep: the backends are
       known-dead, nothing about the request is wrong, and retrying
       after a backoff is the expected recovery. [Internal] when every
       shard was genuinely tried and its transport failed. *)
    match last_code with
    | Some P.Overloaded ->
        Error
          ( P.Overloaded,
            Printf.sprintf "all shards shedding (tried %d, %d skipped)" tried
              skips )
    | _ ->
        if skips > 0 then
          Error
            ( P.Unavailable,
              Printf.sprintf
                "no shard available (%d of %d skipped breaker-open)" skips
                tried )
        else
          Error
            (P.Internal, Printf.sprintf "no shard reachable (tried %d)" tried)
  in
  let rec rounds delays =
    if expired () then deadline_error ()
    else
      match sweep () with
      | `Got body, _, _, _ -> Ok body
      | `Budget_gone, _, _, _ -> deadline_error ()
      | `Exhausted, skips, tried, last_code -> (
          match delays with
          | [] -> exhausted_error skips tried last_code
          | d :: rest -> (
              (* A backoff sleep that would land past the deadline is
                 never taken — the sweep after it could only be
                 refused, so refuse now without burning the budget
                 asleep. *)
              match remaining () with
              | Some r when r <= d -> deadline_error ()
              | _ ->
                  if d > 0. then Unix.sleepf d;
                  rounds rest))
  in
  rounds (Retry.delays t.retry ~key)
