module P = Tt_server.Protocol
module Client = Tt_server.Client
module Retry = Tt_engine.Retry

let default_connect_timeout_s = 1.

type t = {
  ring : Ring.t;
  conns : (string, Client.t) Hashtbl.t;  (* node name -> live conn *)
  connect_timeout_s : float;
  read_timeout_s : float;
  retry : Retry.policy;
  metrics : Metrics.t;
}

let create ?(connect_timeout_s = default_connect_timeout_s)
    ?(read_timeout_s = Client.default_read_timeout_s) ?(retry = Retry.none)
    ~metrics ring =
  { ring;
    conns = Hashtbl.create 8;
    connect_timeout_s;
    read_timeout_s;
    retry;
    metrics
  }

let ring t = t.ring

let close t =
  Hashtbl.iter (fun _ c -> Client.close c) t.conns;
  Hashtbl.reset t.conns

let drop t name =
  match Hashtbl.find_opt t.conns name with
  | None -> ()
  | Some c ->
      Client.close c;
      Hashtbl.remove t.conns name

let conn t (node : Ring.node) =
  match Hashtbl.find_opt t.conns node.Ring.name with
  | Some c -> Some c
  | None -> (
      match
        Client.connect ~host:node.Ring.host
          ~read_timeout_s:t.read_timeout_s
          ~connect_timeout_s:t.connect_timeout_s ~port:node.Ring.port ()
      with
      | c ->
          Hashtbl.replace t.conns node.Ring.name c;
          Some c
      | exception Unix.Unix_error _ | exception Failure _ -> None)

(* A shard that answered [Shutting_down] (draining), [Overloaded] or
   [Internal] is useless for this request {e right now}, but a
   successor — which can compute any key, ownership only steers the
   cache — can serve it. Anything else is a property of the request
   (or of its deadline) and is relayed as-is. *)
let routable_refusal = function
  | P.Shutting_down | P.Overloaded | P.Internal -> true
  | P.Bad_frame | P.Bad_request | P.Unsupported_version | P.Deadline_exceeded
    ->
      false

(* One node's verdict inside a sweep. *)
type attempt =
  | Answered of P.body  (* success or a refusal to relay verbatim *)
  | Move_on of string  (* transport failure / routable refusal: next *)

let attempt t node op =
  Metrics.forward t.metrics ~shard:node.Ring.name;
  match conn t node with
  | None -> Move_on (node.Ring.name ^ " unreachable")
  | Some c -> (
      match Client.call c op with
      | Error msg ->
          (* Unknown connection state: reconnect on next use. *)
          drop t node.Ring.name;
          Move_on (Printf.sprintf "%s: %s" node.Ring.name msg)
      | Ok (P.Refused { code; _ } as body) ->
          if routable_refusal code then begin
            drop t node.Ring.name;
            Move_on
              (Printf.sprintf "%s refused: %s" node.Ring.name
                 (P.error_code_to_string code))
          end
          else Answered body
      | Ok body -> Answered body)

let call t ~key op =
  let order = Ring.successors t.ring key in
  let sweep () =
    let rec go first = function
      | [] -> None
      | node :: rest -> (
          if not first then Metrics.failover t.metrics;
          match attempt t node op with
          | Answered body -> Some body
          | Move_on _ -> go false rest)
    in
    go true order
  in
  let rec rounds delays =
    match sweep () with
    | Some body -> Ok body
    | None -> (
        match delays with
        | [] ->
            Metrics.unrouted t.metrics;
            Error
              ( P.Internal,
                Printf.sprintf "no shard reachable (tried %d)"
                  (List.length order) )
        | d :: rest ->
            if d > 0. then Unix.sleepf d;
            rounds rest)
  in
  rounds (Retry.delays t.retry ~key)
