(** Per-shard circuit breakers: the router's memory of which backends
    are dead, so failover consults a hash lookup instead of eating a
    connect timeout per request per dead shard.

    State machine (classic three-state breaker):

    - {e closed} — healthy. Every request may try the shard. After
      [threshold] {e consecutive} transport failures the breaker
      opens.
    - {e open} — dead until a deadline. {!allow} answers [false]
      without touching the network. Open durations follow the
      [retry] policy's capped exponential backoff ({!
      Tt_engine.Retry.delays} keyed by the shard name — seeded,
      deterministic per shard); when the schedule runs dry the
      breaker keeps re-opening at the last (capped) delay.
    - {e half-open} — the deadline passed; exactly {e one} caller is
      granted a trial ({!allow} CASes the trial flag), everyone else
      keeps skipping. The trial's {!success} closes the breaker and
      resets the backoff schedule; its {!failure} re-opens with the
      next, longer delay.

    Shared by every {!Forward} pool of a router (thread-safe, one
    mutex): one connection discovering a dead shard spares all the
    others the timeout. Successes and failures are reported by the
    failover sweep itself on real traffic, plus by the router's
    background prober so an {e idle} cluster still detects death and
    recovery. Transitions land in {!Metrics} as
    [tt_shard_breaker_state] / opens / closes. *)

type state = Metrics.breaker_state =
  | Breaker_closed
  | Breaker_open
  | Breaker_half_open

type t

val default_threshold : int
(** 3 consecutive transport failures. *)

val default_retry : Tt_engine.Retry.policy
(** Open durations: 100 ms doubling to a 2 s cap, jitter 0.25,
    8 scheduled delays (then pinned at the cap). *)

val create :
  ?threshold:int ->
  ?retry:Tt_engine.Retry.policy ->
  ?now:(unit -> float) ->
  metrics:Metrics.t ->
  unit ->
  t
(** [now] (default [Unix.gettimeofday]) is injectable so tests drive
    the clock deterministically.
    @raise Invalid_argument when [threshold < 1]. *)

val allow : t -> string -> bool
(** May a request attempt this shard right now? [true] when closed,
    when open-past-deadline (transitions to half-open and grants this
    caller the single trial), or when half-open with the trial free.
    Never blocks, never touches the network. *)

val success : t -> string -> unit
(** The shard answered (including answering with a refusal — it is
    alive). Resets the failure count; closes an open/half-open
    breaker and clears its backoff schedule. *)

val failure : t -> string -> unit
(** A transport-level failure (connect refused/timeout, read timeout,
    reset, EOF). Counts toward [threshold] when closed; re-opens a
    half-open breaker with the next backoff delay; no-op while
    open. *)

val state : t -> string -> state

val forget : t -> string -> unit
(** Drop all breaker state for a shard that left the ring. *)

type view = {
  shard : string;
  view_state : state;
  failures : int;  (** Current consecutive transport failures. *)
  opens : int;  (** Lifetime closed→open transitions. *)
  closes : int;  (** Lifetime reopen→closed recoveries. *)
}

val views : t -> view list
(** All known breakers, sorted by shard name. *)

val to_json : t -> Tt_engine.Telemetry.Json.t
(** Per-shard object for the router's [health] reply:
    [{"shard0":{"state":0,"failures":0,"opens":1,"closes":1},…}]. *)
