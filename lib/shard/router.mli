(** The shard router: one v1-protocol endpoint in front of N shards.

    Speaks {!Tt_server.Protocol} on both sides, so every existing
    client — `treetrav request`, {!Tt_server.Client} sessions, the
    load generator — points at a cluster by changing only the port.

    Per request:
    - [solve]: the entry's {e first job id} (from
      {!Tt_engine.Manifest.parse}, memoized per entry) is the routing
      key; the request is forwarded along the key's failover sweep
      ({!Forward.call}), carrying the client's idempotency key or a
      router-generated one — chosen once per logical request, so every
      re-send of the sweep deduplicates. Entries that fail to parse
      are refused [bad_request] at the router without contacting a
      shard. Multi-job entries run whole on the routed shard; their
      non-first jobs still benefit from peering ({!Peer}), which pulls
      cached results from the shards owning {e their} ids.
    - [peek]: forwarded along the key's sweep.
    - [ping] / [stats]: answered locally ([stats] returns the router's
      view — ring map plus {!Metrics} counters — not a shard's).
    - [shutdown]: acknowledged with [draining], then the router stops
      (shards are not told; stop them via {!Cluster} or directly).

    Concurrency: one accept domain, one domain per client connection,
    each with a private {!Forward} pool. Requests on one connection
    are handled in order (no pipelining across a failover sweep);
    concurrency comes from multiple connections, matching how the
    load generator drives it. *)

type config = {
  host : string;  (** Bind address (default ["127.0.0.1"]). *)
  port : int;  (** 0 picks an ephemeral port — read it with {!port}. *)
  connect_timeout_s : float;
      (** Per-shard connect bound (default
          {!Forward.default_connect_timeout_s}). *)
  read_timeout_s : float;
      (** Per-shard reply deadline (default
          {!Tt_server.Client.default_read_timeout_s}). *)
  retry : Tt_engine.Retry.policy;
      (** Failover sweep schedule (default 3 retries, capped
          exponential backoff): how many times the whole ring is
          re-swept, and the sleeps between sweeps, before a solve is
          refused [internal]. *)
}

val default_config : config

type t

val create : ?config:config -> ring:Ring.t -> unit -> t
(** Binds and listens immediately (so {!port} is valid before
    {!start}).
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
val ring : t -> Ring.t
val metrics : t -> Metrics.t

val stats_json : t -> Tt_engine.Telemetry.Json.t
(** The [stats] reply payload: a ["router"] section (shard count,
    vnodes, cluster map) plus ["shard"] ({!Metrics.to_json}). *)

val start : t -> unit
(** Run the accept loop on a background domain; returns immediately.
    @raise Invalid_argument when already started. *)

val request_shutdown : t -> unit
(** Ask the router to stop; returns immediately. Idempotent, safe
    from any domain. *)

val stopped : t -> bool
(** Whether a stop was requested (by {!request_shutdown} or a client
    [shutdown] frame). *)

val shutdown : t -> unit
(** {!request_shutdown}, then join the accept and connection domains
    and close every socket. Connection domains notice the stop flag
    within their 0.25 s poll tick. *)
