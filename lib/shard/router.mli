(** The shard router: one v1-protocol endpoint in front of N shards,
    with live membership and per-shard circuit breakers.

    Speaks {!Tt_server.Protocol} on both sides, so every existing
    client — `treetrav request`, {!Tt_server.Client} sessions, the
    load generator — points at a cluster by changing only the port.

    Per request:
    - [solve]: the entry's {e first job id} (from
      {!Tt_engine.Manifest.parse}, memoized per entry) is the routing
      key; the request is forwarded along the key's failover sweep
      ({!Forward.call}) against the {e current} ring, carrying the
      client's idempotency key or a router-generated one — chosen once
      per logical request, so every re-send of the sweep deduplicates.
      Entries that fail to parse are refused [bad_request] at the
      router without contacting a shard. Multi-job entries run whole
      on the routed shard; their non-first jobs still benefit from
      peering ({!Peer}), which pulls cached results from the shards
      owning {e their} ids.
    - [peek]: forwarded along the key's sweep.
    - [ping] / [stats] / [health]: answered locally ([stats] returns
      the router's view — ring map, epoch, breaker states,
      {!Metrics} counters — not a shard's; [health] a compact subset).
    - [shutdown]: acknowledged with [draining], then the router stops
      (shards are not told; stop them via {!Cluster} or directly).

    {b Health monitoring.} A background prober ticks every
    [probe_interval_s], sending each shard a cheap seeded [peek]
    (key [probe-<seed>-<tick>], answered inline from the shard's
    cache) on a bounded-timeout connection, reporting the outcome to
    the shared {!Health} breakers. Requests consult the breakers
    before every attempt, so a dead shard costs each request a hash
    lookup instead of a connect timeout — and an idle cluster still
    notices death and recovery within a few probe intervals.

    {b Live membership.} {!reconfigure} swaps the ring atomically and
    bumps the {e ring epoch}. Per-key failover sweep orders are
    memoized ({!plan}) stamped with the epoch that computed them, so
    every memo entry from before the change is stale-checked away —
    no request routes on a ring that no longer exists. Per-connection
    {!Forward} pools re-consult {!plan} on every sweep, so even
    long-lived client connections follow joins and leaves.

    Concurrency: one accept domain, one prober domain, one domain per
    client connection, each connection with a private {!Forward} pool
    sharing the router's breakers and planner. Requests on one
    connection are handled in order (no pipelining across a failover
    sweep); concurrency comes from multiple connections, matching how
    the load generator drives it. *)

type config = {
  host : string;  (** Bind address (default ["127.0.0.1"]). *)
  port : int;  (** 0 picks an ephemeral port — read it with {!port}. *)
  connect_timeout_s : float;
      (** Per-shard connect bound, also the probe timeout (default
          {!Forward.default_connect_timeout_s}). *)
  read_timeout_s : float;
      (** Per-shard reply deadline (default
          {!Tt_server.Client.default_read_timeout_s}). *)
  retry : Tt_engine.Retry.policy;
      (** Failover sweep schedule (default 3 retries, capped
          exponential backoff): how many times the whole ring is
          re-swept, and the sleeps between sweeps, before a solve is
          refused. *)
  probe_interval_s : float;
      (** Health-probe period (default 0.25 s; [<= 0] disables the
          prober — breakers then learn only from request traffic). *)
  probe_seed : int;
      (** Probe keys are [probe-<seed>-<tick>] (default 43). *)
  breaker_threshold : int;
      (** Consecutive transport failures before a shard's breaker
          opens (default {!Health.default_threshold}). *)
  breaker_retry : Tt_engine.Retry.policy;
      (** Breaker open-duration schedule (default
          {!Health.default_retry}). *)
  hedge_seed : int;
      (** Seed of the pure per-key hedge gate (default 29): a seeded
          run hedges the same requests on every replay. *)
  hedge_ratio : float;
      (** Fraction of keys eligible for hedging (default 1.0; 0
          disables hedging entirely). *)
  hedge_quantile : float;
      (** RTT quantile that arms the hedge trigger (default 0.95): a
          solve hedges to the ring successor only after its owner has
          been silent this long). *)
}

val default_config : config

type t

val create : ?config:config -> ring:Ring.t -> unit -> t
(** Binds and listens immediately (so {!port} is valid before
    {!start}).
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
val ring : t -> Ring.t
(** The current ring (changes across {!reconfigure}). *)

val epoch : t -> int
(** The ring epoch: 0 at creation, +1 per {!reconfigure}. *)

val metrics : t -> Metrics.t
val health : t -> Health.t

val reconfigure : t -> Ring.t -> unit
(** Atomically replace the ring and bump the epoch. Safe while
    serving: in-flight sweeps finish their current attempt against the
    old order, then re-plan. Breaker state of departed shards is
    forgotten. The caller ({!Cluster.join} / {!Cluster.leave})
    owns draining and cache warming — this only switches routing. *)

val plan : t -> string -> Ring.node list
(** The failover sweep order for a key against the current ring,
    memoized per key and stamped with the ring epoch (stale entries
    recomputed on first use after {!reconfigure}). This is the
    [route] planner every per-connection forward pool shares; exposed
    for tests. *)

val stats_json : t -> Tt_engine.Telemetry.Json.t
(** The [stats] reply payload: a ["router"] section (shard count,
    vnodes, cluster map, ring epoch, breaker states) plus ["shard"]
    ({!Metrics.to_json}). *)

val health_json : t -> Tt_engine.Telemetry.Json.t
(** The [health] reply payload: role, ring epoch, shard count,
    per-shard breaker views ({!Health.to_json}). *)

val start : t -> unit
(** Run the accept loop and the health prober on background domains;
    returns immediately.
    @raise Invalid_argument when already started. *)

val request_shutdown : t -> unit
(** Ask the router to stop; returns immediately. Idempotent, safe
    from any domain. *)

val stopped : t -> bool
(** Whether a stop was requested (by {!request_shutdown} or a client
    [shutdown] frame). *)

val shutdown : t -> unit
(** {!request_shutdown}, then join the accept, prober and connection
    domains and close every socket. Connection domains notice the
    stop flag within their 0.25 s poll tick. *)
