(** Seeded overload nemesis: drive a proxied cluster past its capacity
    with one shard stalled, and prove the overload-control stack —
    deadline propagation, AIMD admission, brownout, hedged requests —
    degrades {e in the typed, bounded way it promises} rather than by
    losing work.

    The run has three phases:

    + {b Calibrate.} A closed-loop load measures the healthy cluster's
      sustainable throughput and warms every shard's RTT window, so
      the hedge triggers are armed before anything goes wrong.
    + {b Overload.} One shard's ingress gate goes silent
      ({!Tt_server.Netfault.Gate_stalled}); an open-loop load offers
      [overdrive] times the measured capacity, every request carrying
      a [deadline_s] budget and a [batch_share] slice of batch
      traffic. A client-side ledger buckets every request: ok (on time
      or late), typed shed ([overloaded] / [deadline_exceeded]), or
      untyped loss.
    + {b Oracle.} Every issued entry is re-solved on a pristine
      1-shard cluster; any completed reply that disagrees is a
      contradiction, and the full-set value digest is the
      run-invariant identity two runs of the same seed must share.

    Entries are synthesized per request from the loadgen's
    deterministic idempotency keys ([gen random seed=<hash(idem)>]),
    so the issued set is a pure function of the seed — diffable across
    runs — while distinct per-request seeds defeat the
    content-addressed cache and force real work under overdrive.

    {!check} is the [make chaos-overload] gate: zero untyped losses,
    zero late completions, zero contradictions, evidence the run
    actually overloaded (sheds happened, batch shed first, a hedge won
    its race), and interactive goodput above [interactive_floor]. The
    [overload-summary] lines of {!report_to_string} carry only
    run-invariant facts and are diffed byte-for-byte between two runs
    of the same seed. *)

type config = {
  seed : int;  (** Drives loadgen idems, priorities, and hedge gate. *)
  shards : int;  (** Ring size (≥ 2; default 3). *)
  workers : int;  (** Worker domains per shard (default 1). *)
  queue_capacity : int;
      (** Per-shard admission queue (default 1 — tiny, so the AIMD
          window binds at modest concurrency). *)
  cal_requests : int;  (** Calibration volume (default 48). *)
  cal_connections : int;  (** Calibration concurrency (default 3). *)
  requests : int;  (** Overload-phase volume (default 200). *)
  connections : int;
      (** Overload concurrency (default 6) — must exceed the
          cluster-wide admission window for shedding to engage, while
          staying small enough that domain scheduling on a single-core
          box does not dominate the dynamics. *)
  batch_share : float;  (** Fraction sent [priority=batch] (default 0.3). *)
  deadline_s : float;  (** Per-request budget (default 1.0). *)
  overdrive : float;
      (** Offered rate as a multiple of measured capacity (default 4). *)
  stall_shard : int;  (** Which shard's ingress stalls (default 0). *)
  entry_size : int;  (** Generated problem size (default 40). *)
  interactive_floor : float;
      (** Minimum interactive ok/issued fraction (default 0.15). *)
  late_slack_s : float;
      (** Grace over [deadline_s] before an ok reply counts as late
          (default 0.5) — absorbs the final reply's write/read hop. *)
}

val default_config : config

type class_report = { cr_issued : int; cr_ok : int; cr_shed : int }

type report = {
  config : config;
  measured_rps : float;  (** Clean closed-loop capacity. *)
  offered_rps : float;  (** [overdrive * measured_rps]. *)
  issued : int;
  ok : int;
  sheds : int;  (** Typed [overloaded] / [deadline_exceeded] refusals. *)
  late : int;  (** Ok replies past [deadline_s + late_slack_s]. *)
  untyped : int;  (** Everything else — must be zero. *)
  untyped_example : string option;
  interactive : class_report;
  batch : class_report;
  contradicted : int;
      (** Completed replies whose value digest disagrees with the
          pristine oracle. *)
  hedge_won : int;  (** Router hedges whose duplicate reply was used. *)
  hedge_lost : int;
  hedge_failed : int;
  router_deadline_rejects : int;
  reference_digest : string;
      (** Oracle {!Tt_server.Protocol.value_digest} over {e all} issued
          entries — run-invariant for a fixed seed. *)
  load : Tt_server.Loadgen.summary;
  wall_s : float;
}

val goodput : class_report -> float
(** [ok / max 1 issued]. *)

val run : config -> report
(** Boot, calibrate, stall + overload, heal, oracle-check, stop.
    @raise Invalid_argument on [shards < 2], an out-of-range
    [stall_shard], non-positive volumes, [overdrive <= 0] or
    [deadline_s <= 0].
    @raise Failure when the {e calibration} phase (healthy cluster, no
    deadline) loses a request, or the oracle cannot solve an entry. *)

val check : report -> (unit, string) result
(** The acceptance predicate described above. *)

val report_to_string : report -> string
(** Human-readable report followed by the machine-diffable
    [overload-summary] lines (config, invariant verdicts, oracle
    digest — nothing wall-clock-dependent). *)
