module Retry = Tt_engine.Retry

type state = Metrics.breaker_state =
  | Breaker_closed
  | Breaker_open
  | Breaker_half_open

type breaker = {
  mutable st : state;
  mutable consecutive_failures : int;
  mutable open_until : float;  (* valid when st = Breaker_open *)
  mutable next_delays : float list;  (* remaining open durations *)
  mutable last_delay : float;  (* reused once next_delays runs dry *)
  mutable trial_taken : bool;  (* half-open: one probe in flight *)
  mutable opens : int;
  mutable closes : int;
}

type t = {
  mu : Mutex.t;
  threshold : int;
  retry : Retry.policy;
  now : unit -> float;
  metrics : Metrics.t;
  breakers : (string, breaker) Hashtbl.t;
}

let default_threshold = 3

(* Open durations: 100 ms doubling to a 2 s cap. Far below the client
   read timeout — the point of the breaker is that skipping a dead
   shard costs a hash lookup, not a connect timeout, and a recovered
   shard is rediscovered within a couple of seconds. *)
let default_retry =
  Retry.create ~retries:8 ~base_delay_s:0.1 ~max_delay_s:2.0 ~jitter:0.25
    ~seed:29 ()

let create ?(threshold = default_threshold) ?(retry = default_retry)
    ?(now = Unix.gettimeofday) ~metrics () =
  if threshold < 1 then invalid_arg "Health.create: threshold < 1";
  { mu = Mutex.create ();
    threshold;
    retry;
    now;
    metrics;
    breakers = Hashtbl.create 8
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let breaker t shard =
  match Hashtbl.find_opt t.breakers shard with
  | Some b -> b
  | None ->
      let b =
        { st = Breaker_closed;
          consecutive_failures = 0;
          open_until = 0.;
          next_delays = [];
          last_delay = 0.;
          trial_taken = false;
          opens = 0;
          closes = 0
        }
      in
      Hashtbl.replace t.breakers shard b;
      b

(* Call with the lock held. *)
let open_locked t shard b =
  let delay =
    match b.next_delays with
    | d :: rest ->
        b.next_delays <- rest;
        b.last_delay <- d;
        d
    | [] ->
        (* Schedule exhausted: keep re-opening at the cap. *)
        if b.last_delay > 0. then b.last_delay
        else Float.max 0.001 t.retry.Retry.max_delay_s
  in
  b.st <- Breaker_open;
  b.open_until <- t.now () +. delay;
  b.trial_taken <- false;
  b.opens <- b.opens + 1;
  Metrics.breaker_transition t.metrics ~shard Breaker_open

let allow t shard =
  locked t (fun () ->
      let b = breaker t shard in
      match b.st with
      | Breaker_closed -> true
      | Breaker_half_open ->
          (* One probe at a time: the first caller since the breaker
             half-opened carries the trial; everyone else keeps
             skipping until it reports back. *)
          if b.trial_taken then false
          else begin
            b.trial_taken <- true;
            true
          end
      | Breaker_open ->
          if t.now () < b.open_until then false
          else begin
            b.st <- Breaker_half_open;
            b.trial_taken <- true;
            Metrics.breaker_transition t.metrics ~shard Breaker_half_open;
            true
          end)

let success t shard =
  locked t (fun () ->
      let b = breaker t shard in
      b.consecutive_failures <- 0;
      b.trial_taken <- false;
      match b.st with
      | Breaker_closed -> ()
      | Breaker_open | Breaker_half_open ->
          b.st <- Breaker_closed;
          (* A recovered shard earns a fresh backoff schedule. *)
          b.next_delays <- [];
          b.last_delay <- 0.;
          b.closes <- b.closes + 1;
          Metrics.breaker_transition t.metrics ~shard Breaker_closed)

let failure t shard =
  locked t (fun () ->
      let b = breaker t shard in
      match b.st with
      | Breaker_open -> ()  (* already open; nothing new learned *)
      | Breaker_half_open ->
          (* The trial probe failed: re-open with the next (longer)
             delay of this outage's schedule. *)
          b.consecutive_failures <- b.consecutive_failures + 1;
          open_locked t shard b
      | Breaker_closed ->
          b.consecutive_failures <- b.consecutive_failures + 1;
          if b.consecutive_failures >= t.threshold then begin
            b.next_delays <- Retry.delays t.retry ~key:shard;
            open_locked t shard b
          end)

let state t shard = locked t (fun () -> (breaker t shard).st)

let forget t shard =
  locked t (fun () ->
      Hashtbl.remove t.breakers shard;
      Metrics.breaker_forget t.metrics ~shard)

type view = {
  shard : string;
  view_state : state;
  failures : int;
  opens : int;
  closes : int;
}

let views t =
  locked t (fun () ->
      Hashtbl.fold
        (fun shard b acc ->
          { shard;
            view_state = b.st;
            failures = b.consecutive_failures;
            opens = b.opens;
            closes = b.closes
          }
          :: acc)
        t.breakers []
      |> List.sort (fun a b -> compare a.shard b.shard))

let to_json t =
  let module Json = Tt_engine.Telemetry.Json in
  Json.Obj
    (List.map
       (fun v ->
         ( v.shard,
           Json.Obj
             [ ("state", Json.Int (Metrics.breaker_state_to_int v.view_state));
               ("failures", Json.Int v.failures);
               ("opens", Json.Int v.opens);
               ("closes", Json.Int v.closes)
             ] ))
       (views t))
