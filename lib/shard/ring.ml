(* Consistent-hash ring with virtual nodes.

   Placement must be a pure function of (ring configuration, key): the
   router, the shard-aware client and the peer-fetch hook each rebuild
   the ring independently from the same cluster map and must agree on
   every key, or peering asks the wrong shard and failover double-
   routes. So positions are derived only from node names — never from
   insertion order, host addresses or process state.

   Each node contributes [vnodes] points at [Digest.string "name#i"];
   a key lives at [Digest.string key] and is owned by the first point
   clockwise (the 16-byte digests are compared as strings, which is a
   uniform total order — no integer truncation step to get wrong). *)

type node = { name : string; host : string; port : int }

type t = {
  ring_nodes : node array;  (* sorted by name: canonical config order *)
  vnodes : int;
  points : (string * int) array;  (* (position, index into ring_nodes) *)
}

let default_vnodes = 64

let position name i = Digest.string (Printf.sprintf "%s#%d" name i)

let create ?(vnodes = default_vnodes) nodes =
  if nodes = [] then invalid_arg "Ring.create: no nodes";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
  let ring_nodes =
    Array.of_list (List.sort (fun a b -> compare a.name b.name) nodes)
  in
  Array.iteri
    (fun i n ->
      if i > 0 && ring_nodes.(i - 1).name = n.name then
        invalid_arg ("Ring.create: duplicate node name " ^ n.name))
    ring_nodes;
  let points =
    Array.init
      (Array.length ring_nodes * vnodes)
      (fun k ->
        let node = k / vnodes and i = k mod vnodes in
        (position ring_nodes.(node).name i, node))
  in
  Array.sort compare points;
  { ring_nodes; vnodes; points }

let nodes t = Array.to_list t.ring_nodes
let vnodes t = t.vnodes

(* First point with position >= h, wrapping to points.(0). *)
let point_index t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let owner t key = t.ring_nodes.(snd t.points.(point_index t (Digest.string key)))

let successors t key =
  let total = Array.length t.ring_nodes in
  let seen = Array.make total false in
  let start = point_index t (Digest.string key) in
  let acc = ref [] and found = ref 0 and k = ref 0 in
  let npoints = Array.length t.points in
  while !found < total && !k < npoints do
    let idx = snd t.points.((start + !k) mod npoints) in
    if not seen.(idx) then begin
      seen.(idx) <- true;
      acc := t.ring_nodes.(idx) :: !acc;
      incr found
    end;
    incr k
  done;
  List.rev !acc

let add t node =
  if List.exists (fun n -> n.name = node.name) (nodes t) then
    invalid_arg ("Ring.add: duplicate node name " ^ node.name);
  create ~vnodes:t.vnodes (node :: nodes t)

let remove t name =
  match List.filter (fun n -> n.name <> name) (nodes t) with
  | [] -> invalid_arg "Ring.remove: removing the last node"
  | rest when List.length rest = Array.length t.ring_nodes ->
      invalid_arg ("Ring.remove: no node named " ^ name)
  | rest -> create ~vnodes:t.vnodes rest

(* ------------------------------------------------------- cluster maps *)

let node_to_string n = Printf.sprintf "%s=%s:%d" n.name n.host n.port

let to_string t = String.concat "," (List.map node_to_string (nodes t))

let split_on c s =
  String.split_on_char c s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let node_of_string ~index s =
  let name, addr =
    match String.index_opt s '=' with
    | Some i ->
        ( String.sub s 0 i,
          String.sub s (i + 1) (String.length s - i - 1) )
    | None -> (Printf.sprintf "s%d" index, s)
  in
  match String.rindex_opt addr ':' with
  | None -> Error (Printf.sprintf "node %S: want [name=]host:port" s)
  | Some i -> (
      let host = String.sub addr 0 i in
      let port = String.sub addr (i + 1) (String.length addr - i - 1) in
      match int_of_string_opt port with
      | Some port when host <> "" && port > 0 && port < 65536 ->
          Ok { name; host; port }
      | _ -> Error (Printf.sprintf "node %S: bad host or port" s))

let of_string ?vnodes s =
  let rec go index acc = function
    | [] -> (
        match acc with
        | [] -> Error "empty cluster map"
        | acc -> (
            match create ?vnodes (List.rev acc) with
            | t -> Ok t
            | exception Invalid_argument m -> Error m))
    | part :: rest -> (
        match node_of_string ~index part with
        | Ok n -> go (index + 1) (n :: acc) rest
        | Error _ as e -> e)
  in
  go 0 [] (split_on ',' s)
