(** Shard-tier counters — one instance per router (forward/failover
    side) or per shard (peer side); a {!Cluster} holds both kinds.

    All operations are thread-safe; {!snapshot} is consistent (taken
    under the same lock the counters use). *)

type t

type breaker_state = Breaker_closed | Breaker_open | Breaker_half_open
(** Exposition values 0 / 1 / 2 of the [tt_shard_breaker_state]
    gauge. *)

val breaker_state_to_int : breaker_state -> int

val create : unit -> t

val forward : t -> shard:string -> unit
(** An op was handed to [shard] (counted per attempt: a solve that
    fails over counts once per shard tried). *)

val failover : t -> unit
(** The preferred shard failed and the sweep moved to a successor. *)

val reject : t -> unit
(** The router refused a request itself (bad frame, unparseable
    entry) without contacting any shard. *)

val unrouted : t -> unit
(** A full failover sweep (all shards, all backoff rounds) failed;
    the client got a retryable [internal] refusal. *)

val peer_hit : t -> unit
val peer_miss : t -> unit
(** Outcome of one cross-shard cache peek made by this shard's
    {!Peer} fetch hook ({e outgoing} peeks; the receiving side counts
    the same event under its server metrics' [op="peek"]). *)

val breaker_transition : t -> shard:string -> breaker_state -> unit
(** Record [shard]'s breaker entering a state: updates the per-shard
    state gauge and counts any non-open→open transition (including a
    failed half-open trial re-opening) as an open, any non-closed→
    closed as a close. Idempotent for repeated same-state calls. *)

val breaker_forget : t -> shard:string -> unit
(** Drop [shard]'s breaker-state gauge (the shard left the ring). *)

val restart : t -> shard:string -> downtime_s:float -> unit
(** One supervised restart of [shard], down for [downtime_s] (clamped
    to ≥ 0) between death detection and the restart. *)

val hedge : t -> outcome:string -> unit
(** One hedged attempt resolved with [outcome] — ["won"] (the hedge's
    reply was used), ["lost"] (the primary answered first after the
    hedge fired), or ["failed"] (both legs failed and the sweep moved
    on). *)

val deadline_reject : t -> unit
(** A request was refused with [deadline_exceeded] by this tier — its
    budget ran out before (or while) forwarding, so no further shard
    work was attempted. *)

val set_ring_epoch : t -> int -> unit
(** Current ring epoch (bumped by every join/leave reconfiguration). *)

type snapshot = {
  forwards : (string * int) list;  (** per shard name, sorted *)
  forwards_total : int;
  failovers : int;
  rejects : int;
  unrouted : int;
  peer_hits : int;
  peer_misses : int;
  breaker_opens : int;
  breaker_closes : int;
  breaker_states : (string * breaker_state) list;  (** sorted by shard *)
  restarts : (string * int) list;  (** per shard name, sorted *)
  restarts_total : int;
  hedges : (string * int) list;  (** per outcome, sorted *)
  deadline_rejects : int;
  downtime_s : float;
  ring_epoch : int;
}

val snapshot : t -> snapshot
val to_json : snapshot -> Tt_engine.Telemetry.Json.t

val to_prometheus : snapshot -> string
(** Text exposition, families prefixed [tt_shard_]:
    [tt_shard_forwards_total{shard="…"}], [tt_shard_failovers_total],
    [tt_shard_rejects_total], [tt_shard_unrouted_total],
    [tt_shard_peer_hits_total], [tt_shard_peer_misses_total],
    [tt_shard_breaker_opens_total], [tt_shard_breaker_closes_total],
    [tt_shard_breaker_state{shard="…"}] (gauge 0/1/2),
    [tt_shard_restarts_total{shard="…"}],
    [tt_shard_hedges_total{outcome="…"}],
    [tt_shard_deadline_exceeded_total],
    [tt_shard_downtime_seconds_total], [tt_shard_ring_epoch]. *)
