(** Shard-tier counters — one instance per router (forward/failover
    side) or per shard (peer side); a {!Cluster} holds both kinds.

    All operations are thread-safe; {!snapshot} is consistent (taken
    under the same lock the counters use). *)

type t

val create : unit -> t

val forward : t -> shard:string -> unit
(** An op was handed to [shard] (counted per attempt: a solve that
    fails over counts once per shard tried). *)

val failover : t -> unit
(** The preferred shard failed and the sweep moved to a successor. *)

val reject : t -> unit
(** The router refused a request itself (bad frame, unparseable
    entry) without contacting any shard. *)

val unrouted : t -> unit
(** A full failover sweep (all shards, all backoff rounds) failed;
    the client got a retryable [internal] refusal. *)

val peer_hit : t -> unit
val peer_miss : t -> unit
(** Outcome of one cross-shard cache peek made by this shard's
    {!Peer} fetch hook ({e outgoing} peeks; the receiving side counts
    the same event under its server metrics' [op="peek"]). *)

type snapshot = {
  forwards : (string * int) list;  (** per shard name, sorted *)
  forwards_total : int;
  failovers : int;
  rejects : int;
  unrouted : int;
  peer_hits : int;
  peer_misses : int;
}

val snapshot : t -> snapshot
val to_json : snapshot -> Tt_engine.Telemetry.Json.t

val to_prometheus : snapshot -> string
(** Text exposition, families prefixed [tt_shard_]:
    [tt_shard_forwards_total{shard="…"}], [tt_shard_failovers_total],
    [tt_shard_rejects_total], [tt_shard_unrouted_total],
    [tt_shard_peer_hits_total], [tt_shard_peer_misses_total]. *)
