module P = Tt_server.Protocol
module Retry = Tt_engine.Retry
module Json = Tt_engine.Telemetry.Json

type config = {
  host : string;
  port : int;
  connect_timeout_s : float;
  read_timeout_s : float;
  retry : Retry.policy;
}

let default_config =
  { host = "127.0.0.1";
    port = 0;
    connect_timeout_s = Forward.default_connect_timeout_s;
    read_timeout_s = Tt_server.Client.default_read_timeout_s;
    retry = Retry.create ~retries:3 ~seed:11 ()
  }

type t = {
  cfg : config;
  ring : Ring.t;
  lfd : Unix.file_descr;
  bound_port : int;
  metrics : Metrics.t;
  stop : bool Atomic.t;
  idem_seq : int Atomic.t;
  (* entry -> routing key. Routing parses the manifest entry (to get
     the first job's content address), which materializes the matrix
     source — too slow to redo for every request of a repetitive
     workload. Bounded: on overflow new entries are routed unmemoized
     rather than evicting (workloads here have few distinct entries). *)
  route_mu : Mutex.t;
  route_memo : (string, (string, string) result) Hashtbl.t;
  mutable accept_domain : unit Domain.t option;
  conns_mu : Mutex.t;
  mutable conns : unit Domain.t list;
}

let max_route_memo = 4096

let create ?(config = default_config) ~ring () =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lfd Unix.SO_REUSEADDR true;
     Unix.bind lfd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen lfd 64
   with e ->
     Unix.close lfd;
     raise e);
  let bound_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  { cfg = config;
    ring;
    lfd;
    bound_port;
    metrics = Metrics.create ();
    stop = Atomic.make false;
    idem_seq = Atomic.make 0;
    route_mu = Mutex.create ();
    route_memo = Hashtbl.create 64;
    accept_domain = None;
    conns_mu = Mutex.create ();
    conns = []
  }

let port t = t.bound_port
let metrics t = t.metrics
let ring t = t.ring

(* ------------------------------------------------------------- routing *)

let compute_route_key entry =
  match Tt_engine.Manifest.parse entry with
  | Error e -> Error e
  | Ok [] -> Error "entry resolves to no jobs"
  | Ok (job :: _) -> Ok (Tt_engine.Job.id job)

let route_key t entry =
  let memoized =
    Mutex.lock t.route_mu;
    let r = Hashtbl.find_opt t.route_memo entry in
    Mutex.unlock t.route_mu;
    r
  in
  match memoized with
  | Some r -> r
  | None ->
      let r = compute_route_key entry in
      Mutex.lock t.route_mu;
      if Hashtbl.length t.route_memo < max_route_memo then
        Hashtbl.replace t.route_memo entry r;
      Mutex.unlock t.route_mu;
      r

let fresh_idem t =
  Printf.sprintf "rt%d-%d-%d" (Unix.getpid ()) t.bound_port
    (Atomic.fetch_and_add t.idem_seq 1)

let stats_json t =
  Json.Obj
    [ ( "router",
        Json.Obj
          [ ("shards", Json.Int (List.length (Ring.nodes t.ring)));
            ("vnodes", Json.Int (Ring.vnodes t.ring));
            ("map", Json.String (Ring.to_string t.ring))
          ] );
      ("shard", Metrics.to_json (Metrics.snapshot t.metrics))
    ]

(* ---------------------------------------------------------- connection *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let reply fd req_id body =
  match write_all fd (P.encode_response { P.req_id; body } ^ "\n") with
  | () -> true
  | exception (Unix.Unix_error _ | Sys_error _) -> false

let handle_line t fwd fd line =
  match P.decode_request line with
  | Error (req_id, code, msg) ->
      Metrics.reject t.metrics;
      reply fd req_id (P.Refused { code; msg })
  | Ok { P.id; op } -> (
      let req_id = Some id in
      match op with
      | P.Ping -> reply fd req_id P.Pong
      | P.Stats -> reply fd req_id (P.Stats_reply (stats_json t))
      | P.Shutdown ->
          let ok = reply fd req_id P.Draining in
          Atomic.set t.stop true;
          ok
      | P.Peek { key } -> (
          match Forward.call fwd ~key op with
          | Ok body -> reply fd req_id body
          | Error (code, msg) -> reply fd req_id (P.Refused { code; msg }))
      | P.Solve { entry; timeout_s; idem } -> (
          match route_key t entry with
          | Error msg ->
              Metrics.reject t.metrics;
              reply fd req_id (P.Refused { code = P.Bad_request; msg })
          | Ok key -> (
              (* Guarantee an idempotency key before forwarding: it is
                 what makes the failover sweep safe to re-send. Chosen
                 once per logical request, so every attempt of the
                 sweep carries the same key. *)
              let idem =
                Some (match idem with Some k -> k | None -> fresh_idem t)
              in
              let op = P.Solve { entry; timeout_s; idem } in
              match Forward.call fwd ~key op with
              | Ok body -> reply fd req_id body
              | Error (code, msg) ->
                  reply fd req_id (P.Refused { code; msg }))))

let serve_conn t fd =
  let fwd =
    Forward.create ~connect_timeout_s:t.cfg.connect_timeout_s
      ~read_timeout_s:t.cfg.read_timeout_s ~retry:t.cfg.retry
      ~metrics:t.metrics t.ring
  in
  let rbuf = ref "" in
  let buf = Bytes.create 65536 in
  let alive = ref true in
  let rec drain_lines () =
    if !alive then
      match String.index_opt !rbuf '\n' with
      | None -> ()
      | Some i ->
          let line = String.sub !rbuf 0 i in
          rbuf := String.sub !rbuf (i + 1) (String.length !rbuf - i - 1);
          let line =
            (* tolerate CRLF like the server does *)
            if line <> "" && line.[String.length line - 1] = '\r' then
              String.sub line 0 (String.length line - 1)
            else line
          in
          if line <> "" then alive := handle_line t fwd fd line;
          drain_lines ()
  in
  Fun.protect
    ~finally:(fun () ->
      Forward.close fwd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      while !alive && not (Atomic.get t.stop) do
        match Unix.select [ fd ] [] [] 0.25 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ -> ()
        | _ -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> alive := false
            | n ->
                rbuf := !rbuf ^ Bytes.sub_string buf 0 n;
                drain_lines ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception (Unix.Unix_error _ | Sys_error _) -> alive := false)
      done)

let accept_loop t =
  while not (Atomic.get t.stop) do
    match Unix.select [ t.lfd ] [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> Atomic.set t.stop true
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.lfd with
        | fd, _ ->
            let d = Domain.spawn (fun () -> serve_conn t fd) in
            Mutex.lock t.conns_mu;
            t.conns <- d :: t.conns;
            Mutex.unlock t.conns_mu
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            ()
        | exception Unix.Unix_error _ -> Atomic.set t.stop true)
  done

let start t =
  match t.accept_domain with
  | Some _ -> invalid_arg "Router.start: already started"
  | None -> t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t))

let request_shutdown t = Atomic.set t.stop true
let stopped t = Atomic.get t.stop

let shutdown t =
  request_shutdown t;
  Option.iter Domain.join t.accept_domain;
  t.accept_domain <- None;
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  let conns =
    Mutex.lock t.conns_mu;
    let c = t.conns in
    t.conns <- [];
    Mutex.unlock t.conns_mu;
    c
  in
  List.iter Domain.join conns
