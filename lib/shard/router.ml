module P = Tt_server.Protocol
module Retry = Tt_engine.Retry
module Json = Tt_engine.Telemetry.Json

type config = {
  host : string;
  port : int;
  connect_timeout_s : float;
  read_timeout_s : float;
  retry : Retry.policy;
  probe_interval_s : float;
  probe_seed : int;
  breaker_threshold : int;
  breaker_retry : Retry.policy;
  hedge_seed : int;
  hedge_ratio : float;
  hedge_quantile : float;
}

let default_config =
  { host = "127.0.0.1";
    port = 0;
    connect_timeout_s = Forward.default_connect_timeout_s;
    read_timeout_s = Tt_server.Client.default_read_timeout_s;
    retry = Retry.create ~retries:3 ~seed:11 ()
  ; probe_interval_s = 0.25;
    probe_seed = 43;
    breaker_threshold = Health.default_threshold;
    breaker_retry = Health.default_retry;
    hedge_seed = 29;
    hedge_ratio = 1.;
    hedge_quantile = 0.95
  }

type t = {
  cfg : config;
  mutable ring : Ring.t;
  mutable epoch : int;
  ring_mu : Mutex.t;
  lfd : Unix.file_descr;
  bound_port : int;
  metrics : Metrics.t;
  health : Health.t;
  hedge : Forward.hedge_state;
  stop : bool Atomic.t;
  idem_seq : int Atomic.t;
  (* entry -> routing key. Routing parses the manifest entry (to get
     the first job's content address), which materializes the matrix
     source — too slow to redo for every request of a repetitive
     workload. Ring-independent (a content address), so it survives
     reconfiguration. Bounded: on overflow new entries are routed
     unmemoized rather than evicting (workloads here have few distinct
     entries). *)
  route_mu : Mutex.t;
  route_memo : (string, (string, string) result) Hashtbl.t;
  (* key -> (epoch, failover sweep order). This one {e does} depend on
     the ring: every entry is stamped with the epoch that computed it
     and ignored — lazily replaced — after any reconfiguration. *)
  sweep_mu : Mutex.t;
  sweep_memo : (string, int * Ring.node list) Hashtbl.t;
  mutable accept_domain : unit Domain.t option;
  mutable probe_domain : unit Domain.t option;
  conns_mu : Mutex.t;
  mutable conns : unit Domain.t list;
}

let max_route_memo = 4096
let max_sweep_memo = 4096

let create ?(config = default_config) ~ring () =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lfd Unix.SO_REUSEADDR true;
     Unix.bind lfd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen lfd 64
   with e ->
     Unix.close lfd;
     raise e);
  let bound_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let metrics = Metrics.create () in
  { cfg = config;
    ring;
    epoch = 0;
    ring_mu = Mutex.create ();
    lfd;
    bound_port;
    metrics;
    health =
      Health.create ~threshold:config.breaker_threshold
        ~retry:config.breaker_retry ~metrics ();
    hedge =
      Forward.create_hedge ~ratio:config.hedge_ratio
        ~quantile:config.hedge_quantile ~seed:config.hedge_seed ();
    stop = Atomic.make false;
    idem_seq = Atomic.make 0;
    route_mu = Mutex.create ();
    route_memo = Hashtbl.create 64;
    sweep_mu = Mutex.create ();
    sweep_memo = Hashtbl.create 64;
    accept_domain = None;
    probe_domain = None;
    conns_mu = Mutex.create ();
    conns = []
  }

let port t = t.bound_port
let metrics t = t.metrics
let health t = t.health

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let ring t = locked t.ring_mu (fun () -> t.ring)
let epoch t = locked t.ring_mu (fun () -> t.epoch)

let ring_with_epoch t = locked t.ring_mu (fun () -> (t.ring, t.epoch))

let reconfigure t ring' =
  let removed =
    locked t.ring_mu (fun () ->
        let before = List.map (fun n -> n.Ring.name) (Ring.nodes t.ring) in
        let after = List.map (fun n -> n.Ring.name) (Ring.nodes ring') in
        t.ring <- ring';
        t.epoch <- t.epoch + 1;
        Metrics.set_ring_epoch t.metrics t.epoch;
        List.filter (fun n -> not (List.mem n after)) before)
  in
  (* A departed shard must not keep a breaker-state gauge (or worse, a
     half-open trial slot) alive forever. *)
  List.iter (fun name -> Health.forget t.health name) removed

(* ------------------------------------------------------------- routing *)

let compute_route_key entry =
  match Tt_engine.Manifest.parse entry with
  | Error e -> Error e
  | Ok [] -> Error "entry resolves to no jobs"
  | Ok (job :: _) -> Ok (Tt_engine.Job.id job)

let route_key t entry =
  let memoized =
    locked t.route_mu (fun () -> Hashtbl.find_opt t.route_memo entry)
  in
  match memoized with
  | Some r -> r
  | None ->
      let r = compute_route_key entry in
      locked t.route_mu (fun () ->
          if Hashtbl.length t.route_memo < max_route_memo then
            Hashtbl.replace t.route_memo entry r);
      r

(* The failover sweep order for [key] against the {e current} ring —
   the [route] planner every per-connection {!Forward} pool shares.
   Epoch-checked: an entry memoized before a reconfiguration is stale
   and recomputed, so no request routes on a ring that no longer
   exists. *)
let plan t key =
  let current_ring, current_epoch = ring_with_epoch t in
  let memoized =
    locked t.sweep_mu (fun () ->
        match Hashtbl.find_opt t.sweep_memo key with
        | Some (e, order) when e = current_epoch -> Some order
        | Some _ | None -> None)
  in
  match memoized with
  | Some order -> order
  | None ->
      let order = Ring.successors current_ring key in
      locked t.sweep_mu (fun () ->
          if Hashtbl.mem t.sweep_memo key then
            (* Stale-epoch entry: replace in place (no growth). *)
            Hashtbl.replace t.sweep_memo key (current_epoch, order)
          else if Hashtbl.length t.sweep_memo < max_sweep_memo then
            Hashtbl.replace t.sweep_memo key (current_epoch, order));
      order

let fresh_idem t =
  Printf.sprintf "rt%d-%d-%d" (Unix.getpid ()) t.bound_port
    (Atomic.fetch_and_add t.idem_seq 1)

let health_json t =
  let r, e = ring_with_epoch t in
  Json.Obj
    [ ("role", Json.String "router");
      ("ring_epoch", Json.Int e);
      ("shards", Json.Int (List.length (Ring.nodes r)));
      ("breakers", Health.to_json t.health)
    ]

let stats_json t =
  let r, e = ring_with_epoch t in
  Json.Obj
    [ ( "router",
        Json.Obj
          [ ("shards", Json.Int (List.length (Ring.nodes r)));
            ("vnodes", Json.Int (Ring.vnodes r));
            ("map", Json.String (Ring.to_string r));
            ("ring_epoch", Json.Int e);
            ("breakers", Health.to_json t.health)
          ] );
      ("shard", Metrics.to_json (Metrics.snapshot t.metrics))
    ]

(* ------------------------------------------------------------- probing *)

(* One probe pass: every shard the breaker lets us touch gets a cheap
   [peek] op (answered inline from the shard's cache — never queued,
   never computed) on a fresh bounded-timeout connection. This is what
   detects death on an idle cluster and — because {!Health.allow}
   hands the prober the half-open trial — what closes a breaker again
   after the shard comes back, within a bounded number of intervals.
   The probe key is a pure function of (seed, tick): deterministic,
   and recognizable as a probe in shard-side peek counters. *)
let probe_once t ~tick =
  let nodes = Ring.nodes (ring t) in
  List.iter
    (fun (node : Ring.node) ->
      if (not (Atomic.get t.stop)) && Health.allow t.health node.Ring.name
      then begin
        let key = Printf.sprintf "probe-%d-%d" t.cfg.probe_seed tick in
        let timeout = t.cfg.connect_timeout_s in
        match
          Tt_server.Client.with_connection ~host:node.Ring.host
            ~connect_timeout_s:timeout ~read_timeout_s:timeout
            ~port:node.Ring.port (fun c ->
              Tt_server.Client.call c (P.Peek { key }))
        with
        | Ok _ -> Health.success t.health node.Ring.name
        | Error _ -> Health.failure t.health node.Ring.name
        | exception (Unix.Unix_error _ | Failure _ | Sys_error _) ->
            Health.failure t.health node.Ring.name
      end)
    nodes

let probe_loop t =
  let tick = ref 0 in
  while not (Atomic.get t.stop) do
    probe_once t ~tick:!tick;
    incr tick;
    (* Sleep in small slices so shutdown is never held up by a long
       probe interval. *)
    let remaining = ref t.cfg.probe_interval_s in
    while !remaining > 0. && not (Atomic.get t.stop) do
      let slice = Float.min 0.05 !remaining in
      Unix.sleepf slice;
      remaining := !remaining -. slice
    done
  done

(* ---------------------------------------------------------- connection *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let reply fd req_id body =
  match write_all fd (P.encode_response { P.req_id; body } ^ "\n") with
  | () -> true
  | exception (Unix.Unix_error _ | Sys_error _) -> false

let handle_line t fwd fd line =
  match P.decode_request line with
  | Error (req_id, code, msg) ->
      Metrics.reject t.metrics;
      reply fd req_id (P.Refused { code; msg })
  | Ok { P.id; op } -> (
      let req_id = Some id in
      match op with
      | P.Ping -> reply fd req_id P.Pong
      | P.Stats -> reply fd req_id (P.Stats_reply (stats_json t))
      | P.Health -> reply fd req_id (P.Health_reply (health_json t))
      | P.Shutdown ->
          let ok = reply fd req_id P.Draining in
          Atomic.set t.stop true;
          ok
      | P.Peek { key } -> (
          match Forward.call fwd ~key op with
          | Ok body -> reply fd req_id body
          | Error (code, msg) -> reply fd req_id (P.Refused { code; msg }))
      | P.Solve { entry; timeout_s; idem; priority } -> (
          (* The wire carries {e relative} budget; pin it to an
             absolute deadline at receipt, before the (potentially
             slow) route-key parse spends any of it. An already-spent
             budget is refused here — forwarding could only produce a
             deadline_exceeded after wasted shard work. *)
          let deadline =
            Option.map (fun b -> Unix.gettimeofday () +. b) timeout_s
          in
          match timeout_s with
          | Some b when b <= 0. ->
              Metrics.deadline_reject t.metrics;
              reply fd req_id
                (P.Refused
                   { code = P.Deadline_exceeded;
                     msg = "deadline budget exhausted at router"
                   })
          | _ -> (
              match route_key t entry with
              | Error msg ->
                  Metrics.reject t.metrics;
                  reply fd req_id (P.Refused { code = P.Bad_request; msg })
              | Ok key -> (
                  (* Guarantee an idempotency key before forwarding: it
                     is what makes the failover sweep — and the hedged
                     duplicate — safe to re-send. Chosen once per
                     logical request, so every attempt carries the same
                     key. *)
                  let idem =
                    Some (match idem with Some k -> k | None -> fresh_idem t)
                  in
                  let op = P.Solve { entry; timeout_s; idem; priority } in
                  match Forward.call fwd ~key ?deadline op with
                  | Ok body -> reply fd req_id body
                  | Error (code, msg) ->
                      reply fd req_id (P.Refused { code; msg })))))

let serve_conn t fd =
  let fwd =
    Forward.create ~connect_timeout_s:t.cfg.connect_timeout_s
      ~read_timeout_s:t.cfg.read_timeout_s ~retry:t.cfg.retry
      ~health:t.health ~hedge:t.hedge ~route:(plan t) ~metrics:t.metrics
      (ring t)
  in
  let rbuf = ref "" in
  let buf = Bytes.create 65536 in
  let alive = ref true in
  let rec drain_lines () =
    if !alive then
      match String.index_opt !rbuf '\n' with
      | None -> ()
      | Some i ->
          let line = String.sub !rbuf 0 i in
          rbuf := String.sub !rbuf (i + 1) (String.length !rbuf - i - 1);
          let line =
            (* tolerate CRLF like the server does *)
            if line <> "" && line.[String.length line - 1] = '\r' then
              String.sub line 0 (String.length line - 1)
            else line
          in
          if line <> "" then alive := handle_line t fwd fd line;
          drain_lines ()
  in
  Fun.protect
    ~finally:(fun () ->
      Forward.close fwd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      while !alive && not (Atomic.get t.stop) do
        match Unix.select [ fd ] [] [] 0.25 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ -> ()
        | _ -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> alive := false
            | n ->
                rbuf := !rbuf ^ Bytes.sub_string buf 0 n;
                drain_lines ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception (Unix.Unix_error _ | Sys_error _) -> alive := false)
      done)

let accept_loop t =
  while not (Atomic.get t.stop) do
    match Unix.select [ t.lfd ] [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> Atomic.set t.stop true
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.lfd with
        | fd, _ ->
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            let d = Domain.spawn (fun () -> serve_conn t fd) in
            Mutex.lock t.conns_mu;
            t.conns <- d :: t.conns;
            Mutex.unlock t.conns_mu
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            ()
        | exception Unix.Unix_error _ -> Atomic.set t.stop true)
  done

let start t =
  match t.accept_domain with
  | Some _ -> invalid_arg "Router.start: already started"
  | None ->
      t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
      if t.cfg.probe_interval_s > 0. then
        t.probe_domain <- Some (Domain.spawn (fun () -> probe_loop t))

let request_shutdown t = Atomic.set t.stop true
let stopped t = Atomic.get t.stop

let shutdown t =
  request_shutdown t;
  Option.iter Domain.join t.accept_domain;
  t.accept_domain <- None;
  Option.iter Domain.join t.probe_domain;
  t.probe_domain <- None;
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  let conns =
    Mutex.lock t.conns_mu;
    let c = t.conns in
    t.conns <- [];
    Mutex.unlock t.conns_mu;
    c
  in
  List.iter Domain.join conns
