(** The domain pool: batch execution of {!Job.t}s with caching,
    isolation, retries, fault injection and telemetry.

    {!run_batch} distributes the jobs over a fixed pool of [domains]
    OCaml 5 domains (the calling domain is one of them, so [domains = 1]
    spawns nothing and degenerates to a plain sequential loop). Jobs are
    claimed from an atomic counter; results land in a slot array indexed
    by submission position, so the returned reports are {e always} in
    submission order regardless of completion order, and the result
    list is bit-for-bit independent of the domain count — solvers are
    pure, so only scheduling, never values, varies with parallelism.

    Isolation: an exception escaping a job is caught and recorded as
    [Error (Crashed _)] for that job only; the batch continues. A
    [timeout] is enforced {e cooperatively}: each attempt runs under a
    {!Tt_util.Cancel} deadline token that the long-running solvers poll,
    so an overlong job now aborts close to the limit instead of holding
    its domain to completion; jobs that slip past the polls are still
    caught by the post-hoc wall check. Either way the result degrades to
    [Error (Timed_out wall)], which is {e terminal} — never retried.
    Cache hits are never timed out.

    Resilience: with [retry], a retryable failure (a crash, or an
    injected fault from [faults]) is re-attempted up to
    [retry.retries] times, sleeping the deterministic
    {!Retry.delays} backoff between attempts. With [faults], each
    attempt first consults {!Fault.roll} — a pure function of
    (seed, job id, attempt), so chaos runs are reproducible and, because
    solvers are pure and injected failures strike {e before} the
    computation, a chaos run that retries to completion yields a
    {!results_digest} bit-identical to the fault-free run. With
    [journal], every finished job is appended (and flushed) to a
    write-ahead {!Journal}; with [completed] (typically the table
    returned by {!Journal.load_or_create}), jobs already present are
    returned without recomputation and marked [resumed].

    Caching: results are memoized in a shared {!Cache} keyed by
    {!Job.id}. Jobs that need the MinMem traversal as preprocessing
    ([Min_io], [Schedule]) fetch it through the cache under the id of
    the corresponding [Min_memory Minmem] job, so the six MinIO
    policies on one tree share a single MinMem run — and a later
    explicit MinMem job on that tree is a hit, too. *)

type t

type on_job =
  job:Job.t -> result:Job.result -> wall:float -> cache_hit:bool -> unit
(** Observation hook, called once per finished job (computed, cached or
    resumed alike) {e on the worker domain that finished it} — the
    callback must be domain-safe and cheap (it sits on the job hot
    path). This is how the service layer feeds its latency/queue-depth
    metrics without the engine knowing about them. *)

val create :
  ?domains:int ->
  ?timeout:float ->
  ?cache:Job.outcome Cache.t ->
  ?telemetry:Telemetry.t ->
  ?faults:Fault.t ->
  ?retry:Retry.policy ->
  ?journal:Journal.t ->
  ?completed:(string, Job.result) Hashtbl.t ->
  ?cancel:Tt_util.Cancel.t ->
  ?on_job:on_job ->
  unit ->
  t
(** [domains] defaults to 1; it is clamped to at least 1. [cache]
    defaults to a fresh in-memory cache; pass your own to share it
    across batches or persist it (pass [faults] to {!Cache.create} as
    well to chaos-test the disk level). [telemetry], when given,
    receives a ["job"] event per job and a ["batch"] event per
    {!run_batch}. [retry] defaults to {!Retry.none}.

    [cancel] is an ambient {!Tt_util.Cancel} token: every job attempt
    runs under a per-attempt token {e linked} to it, so expiring the
    ambient token (e.g. a service request's deadline passing) degrades
    the in-flight job to [Error (Timed_out _)] at its next poll and
    skips the rest of the batch's computations the same way. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], capped at 8 — the engine's
    jobs are memory-bandwidth-hungry, and beyond that the pool mostly
    adds contention. *)

val domains : t -> int

val cache : t -> Job.outcome Cache.t

type report = {
  job : Job.t;
  result : Job.result;
  wall : float;  (** Seconds spent computing, incl. retries and backoff
                     (≈0 on a cache hit or resumed job). *)
  cache_hit : bool;  (** The job's own result came from the cache. *)
  domain : int;  (** Worker slot in [0, domains). *)
  attempts : int;  (** Attempts actually run (1 normally, 0 if resumed). *)
  resumed : bool;  (** Result came from the [completed] table. *)
}

type summary = {
  jobs : int;
  errors : int;
  wall : float;  (** Whole-batch wall clock. *)
  cache_hits : int;  (** Cache hits during this batch (incl. preprocessing). *)
  cache_misses : int;
  busy : float array;  (** Per-slot busy seconds, length [domains]. *)
  retries : int;  (** Total extra attempts across the batch. *)
  resumed : int;  (** Jobs answered from the [completed] table. *)
}

val utilization : summary -> float
(** Mean busy fraction over the slots, in [0, 1]. *)

val results_digest : report array -> string
(** Hex digest fingerprinting (job id, result value) pairs in report
    order — no timings, so it is stable across runs, domain counts,
    cache states, and injected-fault/retry histories. This is the value
    the chaos target compares between faulty and fault-free runs. *)

val value_digest : report array -> string
(** Like {!results_digest} but order-insensitive and duplicate-free
    ({!Job.value_digest_of_results}): the digest a concurrent service
    run — where request interleaving scrambles completion order — is
    compared against a sequential [treetrav batch] of the same jobs. *)

val run_batch : t -> Job.t list -> report array * summary
(** Reports are in submission order. *)

val run : t -> Job.t list -> Job.result list
(** Just the results of {!run_batch}, in submission order. *)
