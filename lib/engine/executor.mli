(** The domain pool: batch execution of {!Job.t}s with caching,
    isolation and telemetry.

    {!run_batch} distributes the jobs over a fixed pool of [domains]
    OCaml 5 domains (the calling domain is one of them, so [domains = 1]
    spawns nothing and degenerates to a plain sequential loop). Jobs are
    claimed from an atomic counter; results land in a slot array indexed
    by submission position, so the returned reports are {e always} in
    submission order regardless of completion order, and the result
    list is bit-for-bit independent of the domain count — solvers are
    pure, so only scheduling, never values, varies with parallelism.

    Isolation: an exception escaping a job is caught and recorded as
    [Error (Crashed _)] for that job only; the batch continues. A
    [timeout] is enforced {e cooperatively}: OCaml domains cannot be
    preempted, so an overlong job is detected when it returns and its
    result is degraded to [Error (Timed_out wall)] — the batch is never
    killed, but a diverging job will still hold its domain. Cache hits
    are never timed out.

    Caching: results are memoized in a shared {!Cache} keyed by
    {!Job.id}. Jobs that need the MinMem traversal as preprocessing
    ([Min_io], [Schedule]) fetch it through the cache under the id of
    the corresponding [Min_memory Minmem] job, so the six MinIO
    policies on one tree share a single MinMem run — and a later
    explicit MinMem job on that tree is a hit, too. *)

type t

val create :
  ?domains:int ->
  ?timeout:float ->
  ?cache:Job.outcome Cache.t ->
  ?telemetry:Telemetry.t ->
  unit ->
  t
(** [domains] defaults to 1; it is clamped to at least 1. [cache]
    defaults to a fresh in-memory cache; pass your own to share it
    across batches or persist it. [telemetry], when given, receives a
    ["job"] event per job and a ["batch"] event per {!run_batch}. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], capped at 8 — the engine's
    jobs are memory-bandwidth-hungry, and beyond that the pool mostly
    adds contention. *)

val domains : t -> int

val cache : t -> Job.outcome Cache.t

type report = {
  job : Job.t;
  result : Job.result;
  wall : float;  (** Seconds spent computing (≈0 on a cache hit). *)
  cache_hit : bool;  (** The job's own result came from the cache. *)
  domain : int;  (** Worker slot in [0, domains). *)
}

type summary = {
  jobs : int;
  errors : int;
  wall : float;  (** Whole-batch wall clock. *)
  cache_hits : int;  (** Cache hits during this batch (incl. preprocessing). *)
  cache_misses : int;
  busy : float array;  (** Per-slot busy seconds, length [domains]. *)
}

val utilization : summary -> float
(** Mean busy fraction over the slots, in [0, 1]. *)

val run_batch : t -> Job.t list -> report array * summary
(** Reports are in submission order. *)

val run : t -> Job.t list -> Job.result list
(** Just the results of {!run_batch}, in submission order. *)
