module S = Tt_sparse

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* --------------------------------------------------------- small lexing *)

let tokens s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

(* [key=value] pairs after the leading keyword(s). *)
let kv_pairs toks =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
          (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> bad "expected key=value, got %S" tok)
    toks

let lookup ?default pairs key =
  match List.assoc_opt key pairs with
  | Some v -> v
  | None -> (
      match default with Some d -> d | None -> bad "missing %s=..." key)

let check_keys pairs allowed =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then
        bad "unknown key %S (expected one of: %s)" k (String.concat ", " allowed))
    pairs

let int_of ~what s =
  match int_of_string_opt s with Some v -> v | None -> bad "bad %s: %S" what s

let float_of ~what s =
  match float_of_string_opt s with Some v -> v | None -> bad "bad %s: %S" what s

(* ------------------------------------------------------------- sources *)

let ordering_of = function
  | "natural" -> Tt_workloads.Pipeline.Natural
  | "rcm" -> Tt_workloads.Pipeline.Rcm
  | "mindeg" -> Tt_workloads.Pipeline.Min_degree
  | "nd" -> Tt_workloads.Pipeline.Nested_dissection
  | s -> bad "unknown ordering %S" s

let gen_matrix ~kind ~size ~seed =
  let rng = Tt_util.Rng.create seed in
  match kind with
  | "grid2d" -> S.Spgen.grid2d size
  | "grid9" -> S.Spgen.grid2d_9pt size
  | "grid3d" -> S.Spgen.grid3d size
  | "banded" -> S.Spgen.banded ~rng ~n:size ~bandwidth:(max 2 (size / 50)) ~fill:0.4
  | "random" -> S.Spgen.random_sym ~rng ~n:size ~nnz_per_row:3.0
  | "arrow" -> S.Spgen.block_arrow ~n:size ~blocks:8 ~border:(max 2 (size / 40))
  | "powerlaw" -> S.Spgen.power_law ~rng ~n:size ~edges_per_node:2
  | "tridiagonal" -> S.Spgen.tridiagonal size
  | other -> bad "unknown matrix kind %S" other

let tree_of_matrix pairs m =
  let ordering = ordering_of (lookup ~default:"mindeg" pairs "ordering") in
  let amalgamation = int_of ~what:"amalgamation" (lookup ~default:"4" pairs "amalgamation") in
  (Tt_workloads.Pipeline.assembly_tree ~ordering ~amalgamation m).Tt_etree.Assembly.tree

(* Returns [(short_label, tree)]. *)
let parse_source text =
  match tokens text with
  | "file" :: path :: rest ->
      let pairs = kv_pairs rest in
      check_keys pairs [ "ordering"; "amalgamation" ];
      let m =
        match S.Matrix_market.read_file path with
        | exception Sys_error e -> bad "cannot read %s: %s" path e
        | _header, t -> S.Csr.of_triplet t
      in
      (Filename.remove_extension (Filename.basename path), tree_of_matrix pairs m)
  | "gen" :: kind :: rest ->
      let pairs = kv_pairs rest in
      check_keys pairs [ "size"; "seed"; "ordering"; "amalgamation" ];
      let size = int_of ~what:"size" (lookup ~default:"20" pairs "size") in
      let seed = int_of ~what:"seed" (lookup ~default:"42" pairs "seed") in
      ( Printf.sprintf "%s-%d" kind size,
        tree_of_matrix pairs (gen_matrix ~kind ~size ~seed) )
  | "tree" :: rest ->
      let text = String.trim (String.concat " " rest) in
      let text =
        let n = String.length text in
        if n >= 2 && text.[0] = '"' && text.[n - 1] = '"' then String.sub text 1 (n - 2)
        else text
      in
      let tree =
        try Tt_core.Tree.of_string text
        with Invalid_argument e -> bad "bad tree literal: %s" e
      in
      ("tree-" ^ String.sub (Job.tree_digest tree) 0 8, tree)
  | kw :: _ -> bad "unknown source %S (expected file, gen or tree)" kw
  | [] -> bad "empty source"

(* ---------------------------------------------------------------- jobs *)

let policy_of = function
  | "lsnf" -> Tt_core.Minio.Lsnf
  | "first-fit" -> Tt_core.Minio.First_fit
  | "best-fit" -> Tt_core.Minio.Best_fit
  | "first-fill" -> Tt_core.Minio.First_fill
  | "best-fill" -> Tt_core.Minio.Best_fill
  | s -> (
      match int_of_string_opt s with
      | Some k when k >= 1 -> Tt_core.Minio.Best_k k
      | _ -> bad "unknown policy %S" s)

let budget_of s =
  let n = String.length s in
  if n > 1 && s.[n - 1] = '%' then
    Job.Fraction (float_of ~what:"budget" (String.sub s 0 (n - 1)) /. 100.)
  else Job.Words (int_of ~what:"budget" s)

let parse_job_spec text =
  match tokens text with
  | [ "minmem" ] -> Job.Min_memory Job.Minmem
  | [ "liu" ] -> Job.Min_memory Job.Liu
  | [ "postorder" ] -> Job.Min_memory Job.Postorder
  | "minio" :: rest ->
      let pairs = kv_pairs rest in
      check_keys pairs [ "policy"; "budget" ];
      Job.Min_io
        { policy = policy_of (lookup ~default:"first-fit" pairs "policy");
          budget = budget_of (lookup ~default:"50%" pairs "budget")
        }
  | "schedule" :: rest ->
      let pairs = kv_pairs rest in
      check_keys pairs [ "procs"; "mem" ];
      Job.Schedule
        { procs = int_of ~what:"procs" (lookup pairs "procs");
          mem_factor = float_of ~what:"mem" (lookup ~default:"1.5" pairs "mem")
        }
  | "par-schedule" :: rest ->
      let pairs = kv_pairs rest in
      check_keys pairs [ "algo"; "procs"; "mem" ];
      let algo =
        let name = lookup ~default:"booking" pairs "algo" in
        match Job.par_algo_of_string name with
        | Some a -> a
        | None -> bad "unknown algo %S (expected greedy, booking or split)" name
      in
      Job.Par_schedule
        { algo;
          procs = int_of ~what:"procs" (lookup pairs "procs");
          mem_factor = float_of ~what:"mem" (lookup ~default:"1.5" pairs "mem")
        }
  | "pareto" :: rest ->
      let pairs = kv_pairs rest in
      check_keys pairs [ "procs"; "steps" ];
      Job.Pareto_sweep
        { procs = int_of ~what:"procs" (lookup pairs "procs");
          steps = int_of ~what:"steps" (lookup ~default:"8" pairs "steps")
        }
  | "minmem-approx" :: rest ->
      let pairs = kv_pairs rest in
      check_keys pairs [ "cap"; "tol" ];
      let seg_cap = int_of ~what:"cap" (lookup ~default:"8" pairs "cap") in
      if seg_cap < 2 then bad "cap must be >= 2, got %d" seg_cap;
      let tol = float_of ~what:"tol" (lookup ~default:"0.01" pairs "tol") in
      if tol < 0. then bad "tol must be >= 0, got %g" tol;
      Job.Approx_memory { seg_cap; tol }
  | kw :: _ ->
      bad
        "unknown job %S (expected minmem, liu, postorder, minio, schedule, \
         par-schedule, pareto or minmem-approx)"
        kw
  | [] -> bad "empty job spec"

(* ---------------------------------------------------------------- lines *)

let split_on_sep ~sep line =
  (* split on the first occurrence of [sep] *)
  let n = String.length line and m = String.length sep in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = sep then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub line 0 i, String.sub line (i + m) (n - i - m))

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_line line =
  match split_on_sep ~sep:"::" line with
  | None -> bad "expected '<source> :: <job> [; <job>]*'"
  | Some (source, jobs) ->
      let name, tree = parse_source source in
      let specs =
        String.split_on_char ';' jobs
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map parse_job_spec
      in
      if specs = [] then bad "no jobs after '::'";
      List.map
        (fun spec ->
          Job.make ~label:(name ^ " " ^ Job.spec_to_string spec) tree spec)
        specs

(* All malformed lines are reported at once — fixing a manifest should
   take one round trip, not one per bad line. *)
let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc errs lineno = function
    | [] -> (
        match List.rev errs with
        | [] -> Ok (List.concat (List.rev acc))
        | errs -> Error (String.concat "\n" errs))
    | line :: rest -> (
        let line = String.trim (strip_comment line) in
        if line = "" then go acc errs (lineno + 1) rest
        else
          match parse_line line with
          | jobs -> go (jobs :: acc) errs (lineno + 1) rest
          | exception Bad msg ->
              go acc (Printf.sprintf "line %d: %s" lineno msg :: errs) (lineno + 1) rest)
  in
  go [] [] 1 lines

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> parse (In_channel.input_all ic))
