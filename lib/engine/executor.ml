type t = {
  domains : int;
  timeout : float option;
  cache : Job.outcome Cache.t;
  telemetry : Telemetry.t option;
}

let default_domains () = min 8 (Domain.recommended_domain_count ())

let create ?(domains = 1) ?timeout ?cache ?telemetry () =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  { domains = max 1 domains; timeout; cache; telemetry }

let domains t = t.domains
let cache t = t.cache

type report = {
  job : Job.t;
  result : Job.result;
  wall : float;
  cache_hit : bool;
  domain : int;
}

type summary = {
  jobs : int;
  errors : int;
  wall : float;
  cache_hits : int;
  cache_misses : int;
  busy : float array;
}

let utilization s =
  let slots = Array.length s.busy in
  if slots = 0 || s.wall <= 0. then 0.
  else Array.fold_left ( +. ) 0. s.busy /. (float_of_int slots *. s.wall)

(* One job, through the cache. [Min_io] and [Schedule] jobs route their
   MinMem preprocessing through the cache under the id of the equivalent
   [Min_memory Minmem] job, so it is shared across every job on the same
   tree. Returns the outcome and whether the job's own result was a hit. *)
let compute_cached t (job : Job.t) =
  if Job.needs_minmem job then begin
    let pre_job = Job.make job.Job.tree (Job.Min_memory Job.Minmem) in
    let pre, _ =
      Cache.find_or_compute t.cache ~key:(Job.id pre_job) (fun () ->
          Job.compute pre_job)
    in
    let minmem =
      match pre with
      | Job.Memory { peak; order } -> (peak, order)
      | _ -> assert false (* content-addressed: this key is always Memory *)
    in
    Cache.find_or_compute t.cache ~key:(Job.id job) (fun () ->
        Job.compute ~minmem job)
  end
  else
    Cache.find_or_compute t.cache ~key:(Job.id job) (fun () -> Job.compute job)

let run_one t ~slot (job : Job.t) =
  let t0 = Unix.gettimeofday () in
  let result, cache_hit =
    match compute_cached t job with
    | outcome, hit -> (Ok outcome, hit)
    | exception e -> (Error (Job.Crashed (Printexc.to_string e)), false)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let result =
    match (t.timeout, result) with
    | Some limit, Ok _ when (not cache_hit) && wall > limit ->
        Error (Job.Timed_out wall)
    | _ -> result
  in
  (match t.telemetry with
  | None -> ()
  | Some sink ->
      let module J = Telemetry.Json in
      Telemetry.emit sink ~event:"job"
        ([ ("id", J.String (Job.id job));
           ("label", J.String job.Job.label);
           ("spec", J.String (Job.spec_to_string job.Job.spec));
           ("wall_s", J.Float wall);
           ("cache_hit", J.Bool cache_hit);
           ("domain", J.Int slot)
         ]
        @ Job.result_fields result));
  { job; result; wall; cache_hit; domain = slot }

let run_batch t jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let reports = Array.make n None in
  let busy = Array.make t.domains 0. in
  let next = Atomic.make 0 in
  let hits0 = Cache.hits t.cache and misses0 = Cache.misses t.cache in
  let t0 = Unix.gettimeofday () in
  let worker slot =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r = run_one t ~slot jobs.(i) in
        reports.(i) <- Some r;
        busy.(slot) <- busy.(slot) +. r.wall;
        loop ()
      end
    in
    loop ()
  in
  if t.domains = 1 || n <= 1 then worker 0
  else begin
    let spawned = min (t.domains - 1) (n - 1) in
    let others = Array.init spawned (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
    worker 0;
    Array.iter Domain.join others
  end;
  let wall = Unix.gettimeofday () -. t0 in
  let reports = Array.map Option.get reports in
  let errors =
    Array.fold_left
      (fun acc r -> match r.result with Error _ -> acc + 1 | Ok _ -> acc)
      0 reports
  in
  let summary =
    { jobs = n;
      errors;
      wall;
      cache_hits = Cache.hits t.cache - hits0;
      cache_misses = Cache.misses t.cache - misses0;
      busy
    }
  in
  (match t.telemetry with
  | None -> ()
  | Some sink ->
      let module J = Telemetry.Json in
      Telemetry.emit sink ~event:"batch"
        [ ("jobs", J.Int summary.jobs);
          ("errors", J.Int summary.errors);
          ("wall_s", J.Float summary.wall);
          ("domains", J.Int t.domains);
          ("cache_hits", J.Int summary.cache_hits);
          ("cache_misses", J.Int summary.cache_misses);
          ("busy_s", J.List (Array.to_list (Array.map (fun b -> J.Float b) busy)));
          ("utilization", J.Float (utilization summary))
        ]);
  (reports, summary)

let run t jobs =
  let reports, _ = run_batch t jobs in
  Array.to_list (Array.map (fun r -> r.result) reports)
