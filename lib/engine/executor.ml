type t = {
  domains : int;
  timeout : float option;
  cache : Job.outcome Cache.t;
  telemetry : Telemetry.t option;
  faults : Fault.t option;
  retry : Retry.policy;
  journal : Journal.t option;
  completed : (string, Job.result) Hashtbl.t option;
  cancel : Tt_util.Cancel.t option;
  on_job : on_job option;
}

and on_job = job:Job.t -> result:Job.result -> wall:float -> cache_hit:bool -> unit

let default_domains () = min 8 (Domain.recommended_domain_count ())

let create ?(domains = 1) ?timeout ?cache ?telemetry ?faults
    ?(retry = Retry.none) ?journal ?completed ?cancel ?on_job () =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  { domains = max 1 domains;
    timeout;
    cache;
    telemetry;
    faults;
    retry;
    journal;
    completed;
    cancel;
    on_job
  }

let domains t = t.domains
let cache t = t.cache

type report = {
  job : Job.t;
  result : Job.result;
  wall : float;
  cache_hit : bool;
  domain : int;
  attempts : int;
  resumed : bool;
}

type summary = {
  jobs : int;
  errors : int;
  wall : float;
  cache_hits : int;
  cache_misses : int;
  busy : float array;
  retries : int;
  resumed : int;
}

let utilization s =
  let slots = Array.length s.busy in
  if slots = 0 || s.wall <= 0. then 0.
  else Array.fold_left ( +. ) 0. s.busy /. (float_of_int slots *. s.wall)

(* The canonical fingerprint of a batch's results, shared by the bench,
   the CLI and the chaos tests. It covers job identities and result
   values but deliberately no timings (a timeout's measured wall varies
   run to run), so a faulty-but-retried run hashes identically to a
   fault-free one. *)
let result_pairs reports =
  Array.to_list (Array.map (fun r -> (Job.id r.job, r.result)) reports)

let results_digest reports = Job.digest_of_results (result_pairs reports)
let value_digest reports = Job.value_digest_of_results (result_pairs reports)

(* One job, through the cache. [Min_io] and [Schedule] jobs route their
   MinMem preprocessing through the cache under the id of the equivalent
   [Min_memory Minmem] job, so it is shared across every job on the same
   tree. Returns the outcome and whether the job's own result was a hit. *)
let compute_cached t ~cancel (job : Job.t) =
  if Job.needs_minmem job then begin
    let pre_job = Job.make job.Job.tree (Job.Min_memory Job.Minmem) in
    let pre, _ =
      Cache.find_or_compute t.cache ~key:(Job.id pre_job) (fun () ->
          Job.compute ~cancel pre_job)
    in
    let minmem =
      match pre with
      | Job.Memory { peak; order } -> (peak, order)
      | _ -> assert false (* content-addressed: this key is always Memory *)
    in
    Cache.find_or_compute t.cache ~key:(Job.id job) (fun () ->
        Job.compute ~cancel ~minmem job)
  end
  else
    Cache.find_or_compute t.cache ~key:(Job.id job) (fun () ->
        Job.compute ~cancel job)

let emit_job_event t (r : report) =
  match t.telemetry with
  | None -> ()
  | Some sink ->
      let module J = Telemetry.Json in
      Telemetry.emit sink ~event:"job"
        ([ ("id", J.String (Job.id r.job));
           ("label", J.String r.job.Job.label);
           ("spec", J.String (Job.spec_to_string r.job.Job.spec));
           ("wall_s", J.Float r.wall);
           ("cache_hit", J.Bool r.cache_hit);
           ("domain", J.Int r.domain);
           ("attempts", J.Int r.attempts);
           ("resumed", J.Bool r.resumed)
         ]
        @ Job.result_fields r.result)

(* Telemetry event + observation hook, in that order, for every
   finished job (computed, cached, or resumed alike). The hook runs on
   the worker domain that finished the job — observers must be
   domain-safe. *)
let notify t (r : report) =
  emit_job_event t r;
  match t.on_job with
  | None -> ()
  | Some f -> f ~job:r.job ~result:r.result ~wall:r.wall ~cache_hit:r.cache_hit

(* The retry loop for one job. Each attempt: roll the (deterministic)
   fault decision, then compute under a fresh deadline token. Timeouts —
   whether the token fired mid-solve or the post-hoc wall check caught a
   solver that never polls — are terminal: the job already consumed its
   budget. Injected faults and genuine crashes consult [Retry.classify_exn]
   and, while backoff delays remain, sleep and re-roll; the re-roll is
   keyed by the attempt number, so an injected crash does not doom the
   job forever. *)
let run_one t ~slot (job : Job.t) =
  let id = Job.id job in
  let resumed_result =
    match t.completed with
    | Some tbl -> Hashtbl.find_opt tbl id
    | None -> None
  in
  match resumed_result with
  | Some result ->
      let r =
        { job; result; wall = 0.; cache_hit = false; domain = slot;
          attempts = 0; resumed = true }
      in
      notify t r;
      r
  | None ->
      let t0 = Unix.gettimeofday () in
      let delays =
        if t.retry.Retry.retries = 0 then []
        else Retry.delays t.retry ~key:id
      in
      let rec go attempt remaining =
        let a0 = Unix.gettimeofday () in
        let step =
          try
            (match t.faults with
            | None -> ()
            | Some f -> (
                match Fault.roll f ~key:id ~attempt with
                | None -> ()
                | Some (Fault.Delay d) -> Unix.sleepf d
                | Some a -> raise (Fault.Injected (Fault.describe a))));
            let cancel =
              (* Per-attempt token: the job timeout as its own deadline,
                 linked under the executor's ambient token (a service
                 request's deadline) when one is set. *)
              match (t.timeout, t.cancel) with
              | None, None -> Tt_util.Cancel.never
              | timeout, parent ->
                  Tt_util.Cancel.linked ?parent ?deadline_after:timeout ()
            in
            let v, hit = compute_cached t ~cancel job in
            Ok (v, hit)
          with e -> Error e
        in
        let awall = Unix.gettimeofday () -. a0 in
        match step with
        | Ok (v, hit) -> (
            match t.timeout with
            | Some limit when (not hit) && awall > limit ->
                (Error (Job.Timed_out awall), hit, attempt)
            | _ -> (Ok v, hit, attempt))
        | Error Tt_util.Cancel.Cancelled ->
            (Error (Job.Timed_out awall), false, attempt)
        | Error e -> (
            match (Retry.classify_exn e, remaining) with
            | Retry.Retryable, d :: rest ->
                if d > 0. then Unix.sleepf d;
                go (attempt + 1) rest
            | (Retry.Retryable | Retry.Terminal), _ ->
                (Error (Job.Crashed (Printexc.to_string e)), false, attempt))
      in
      let result, cache_hit, attempts = go 1 delays in
      let wall = Unix.gettimeofday () -. t0 in
      (match t.journal with
      | None -> ()
      | Some j -> Journal.record j ~id ~label:job.Job.label result);
      let r =
        { job; result; wall; cache_hit; domain = slot; attempts;
          resumed = false }
      in
      notify t r;
      r

let run_batch t jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let reports = Array.make n None in
  let busy = Array.make t.domains 0. in
  let next = Atomic.make 0 in
  let hits0 = Cache.hits t.cache and misses0 = Cache.misses t.cache in
  let t0 = Unix.gettimeofday () in
  let worker slot =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r = run_one t ~slot jobs.(i) in
        reports.(i) <- Some r;
        busy.(slot) <- busy.(slot) +. r.wall;
        loop ()
      end
    in
    loop ()
  in
  if t.domains = 1 || n <= 1 then worker 0
  else begin
    let spawned = min (t.domains - 1) (n - 1) in
    let others = Array.init spawned (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
    worker 0;
    Array.iter Domain.join others
  end;
  let wall = Unix.gettimeofday () -. t0 in
  let reports = Array.map Option.get reports in
  let errors =
    Array.fold_left
      (fun acc r -> match r.result with Error _ -> acc + 1 | Ok _ -> acc)
      0 reports
  in
  let retries =
    Array.fold_left (fun acc r -> acc + max 0 (r.attempts - 1)) 0 reports
  in
  let resumed =
    Array.fold_left
      (fun acc (r : report) -> if r.resumed then acc + 1 else acc)
      0 reports
  in
  let summary =
    { jobs = n;
      errors;
      wall;
      cache_hits = Cache.hits t.cache - hits0;
      cache_misses = Cache.misses t.cache - misses0;
      busy;
      retries;
      resumed
    }
  in
  (match t.telemetry with
  | None -> ()
  | Some sink ->
      let module J = Telemetry.Json in
      Telemetry.emit sink ~event:"batch"
        [ ("jobs", J.Int summary.jobs);
          ("errors", J.Int summary.errors);
          ("wall_s", J.Float summary.wall);
          ("domains", J.Int t.domains);
          ("cache_hits", J.Int summary.cache_hits);
          ("cache_misses", J.Int summary.cache_misses);
          ("busy_s", J.List (Array.to_list (Array.map (fun b -> J.Float b) busy)));
          ("utilization", J.Float (utilization summary));
          ("retries", J.Int summary.retries);
          ("resumed", J.Int summary.resumed)
        ]);
  (reports, summary)

let run t jobs =
  let reports, _ = run_batch t jobs in
  Array.to_list (Array.map (fun r -> r.result) reports)
