type action = Crash | Io_error | Delay of float

exception Injected of string

type t = {
  crash : float;
  io_error : float;
  delay : float;
  max_delay_s : float;
  seed : int;
}

let create ?(crash = 0.) ?(io_error = 0.) ?(delay = 0.) ?(max_delay_s = 0.01)
    ~seed () =
  let rate what x =
    if x < 0. || x > 1. then
      invalid_arg (Printf.sprintf "Fault.create: %s rate %g not in [0, 1]" what x)
  in
  rate "crash" crash;
  rate "io_error" io_error;
  rate "delay" delay;
  if crash +. io_error +. delay > 1. then
    invalid_arg "Fault.create: rates sum to more than 1";
  { crash; io_error; delay; max_delay_s; seed }

let to_string t =
  Printf.sprintf "crash=%g,io=%g,delay=%g,max-delay=%g,seed=%d" t.crash
    t.io_error t.delay t.max_delay_s t.seed

let of_string s =
  try
    let crash = ref 0. and io = ref 0. and delay = ref 0. in
    let max_delay = ref 0.01 and seed = ref 0 in
    String.split_on_char ',' s
    |> List.filter (fun tok -> String.trim tok <> "")
    |> List.iter (fun tok ->
           match String.index_opt tok '=' with
           | None -> failwith ("expected key=value, got " ^ tok)
           | Some i ->
               let k = String.trim (String.sub tok 0 i) in
               let v = String.sub tok (i + 1) (String.length tok - i - 1) in
               let f () =
                 match float_of_string_opt v with
                 | Some x -> x
                 | None -> failwith ("bad number " ^ v ^ " for " ^ k)
               in
               (match k with
               | "crash" -> crash := f ()
               | "io" | "io-error" -> io := f ()
               | "delay" -> delay := f ()
               | "max-delay" -> max_delay := f ()
               | "seed" -> (
                   match int_of_string_opt v with
                   | Some x -> seed := x
                   | None -> failwith ("bad seed " ^ v))
               | other -> failwith ("unknown fault key " ^ other)));
    Ok
      (create ~crash:!crash ~io_error:!io ~delay:!delay ~max_delay_s:!max_delay
         ~seed:!seed ())
  with Failure msg | Invalid_argument msg -> Error msg

(* The decision for a (key, attempt) pair is a pure function of the spec:
   it does not depend on which domain runs the job, on wall time, or on
   the order jobs are claimed in — that is what makes a chaos run
   reproducible and its retried results bit-identical to a fault-free
   run. *)
let rng_for t tag =
  let h = Digest.string tag in
  let v = ref 0 in
  String.iter (fun c -> v := ((!v * 31) + Char.code c) land max_int) h;
  Tt_util.Rng.create (t.seed lxor !v)

let roll t ~key ~attempt =
  if t.crash = 0. && t.io_error = 0. && t.delay = 0. then None
  else begin
    let rng = rng_for t (Printf.sprintf "job:%s#%d" key attempt) in
    let u = Tt_util.Rng.float rng 1.0 in
    if u < t.crash then Some Crash
    else if u < t.crash +. t.io_error then Some Io_error
    else if u < t.crash +. t.io_error +. t.delay then
      Some (Delay (Tt_util.Rng.float rng t.max_delay_s))
    else None
  end

let disk_fails t ~op ~key =
  t.io_error > 0.
  &&
  let rng = rng_for t (Printf.sprintf "cache:%s:%s" op key) in
  Tt_util.Rng.float rng 1.0 < t.io_error

let describe = function
  | Crash -> "injected crash"
  | Io_error -> "injected I/O error"
  | Delay d -> Printf.sprintf "injected delay of %gs" d
