(** Write-ahead journal of completed job results, for crash-resumable
    batches.

    The journal is a JSONL file: a header line

    {v {"journal":"tt-engine","version":1,"corpus":"<digest>"} v}

    followed by one line per finished job,

    {v {"id":"<job id>","label":"...","result":{...}} v}

    where [result] is {!Job.result_to_json} (lossless — [Memory] orders
    are inlined in full). Each entry is flushed as the job finishes, so
    a killed run leaves every completed result on disk; at worst the
    final line is torn, and recovery simply stops at the first
    unparseable line and recomputes the rest.

    [corpus] is a digest of the job source (the manifest text for
    [treetrav batch], the generation parameters for [bench]). Resuming
    against a journal whose header digest differs is refused — the
    recorded ids would silently miss, or worse, collide with different
    semantics.

    Jobs found in the journal are fed to the {!Executor} as its
    [completed] table: they are returned without recomputation, marked
    [resumed] in the report, and not re-recorded. *)

type t
(** An open journal writer. {!record} is domain-safe. *)

val create : string -> corpus:string -> t
(** Truncate/create [path] and write a fresh header. *)

val load_or_create :
  string ->
  corpus:string ->
  (t * (string, Job.result) Hashtbl.t, string) result
(** Open [path] for resuming: if absent, behaves like {!create} with an
    empty table; if present, validates the header (corpus digest must
    match), reads completed entries up to any torn tail, truncates the
    torn tail away (so appended records start on a fresh line), and
    reopens the file in append mode. *)

val record : t -> id:string -> label:string -> Job.result -> unit
(** Append and flush one completed entry. *)

val close : t -> unit
(** Idempotent. *)
