(** Deterministic, seeded fault injection for chaos runs.

    A fault spec gives independent probabilities for three failure
    modes and a seed. The decision for a given (job id, attempt) pair —
    or (operation, key) pair for the cache's disk level — is a {e pure
    function} of the spec: it does not depend on the domain that runs
    the job, on wall time, or on claim order. Chaos runs are therefore
    reproducible, and because every injected failure is retryable, a
    faulty run that retries to completion produces results bit-identical
    to a fault-free run (the engine's key invariant, asserted by
    [make chaos] and the resilience tests).

    Injection points:
    - the {!Executor} rolls {!roll} before each job attempt: [Crash]
      and [Io_error] raise {!Injected} (classified retryable by
      {!Retry.classify_exn}); [Delay] sleeps a seeded duration first;
    - the {!Cache} consults {!disk_fails} before each persisted read or
      write: a failing read is a deterministic miss, a failing write is
      skipped (the entry is simply recomputed later). *)

type action = Crash | Io_error | Delay of float

exception Injected of string
(** Raised by the executor when a [Crash] or [Io_error] fires; the
    payload is {!describe} of the action. Always retryable. *)

type t

val create :
  ?crash:float ->
  ?io_error:float ->
  ?delay:float ->
  ?max_delay_s:float ->
  seed:int ->
  unit ->
  t
(** Rates default to [0.]; [max_delay_s] (default [0.01]) bounds an
    injected delay.
    @raise Invalid_argument if a rate is outside [0, 1] or the rates
    sum to more than 1. *)

val of_string : string -> (t, string) result
(** Parse a CLI spec, e.g. ["crash=0.3,io=0.1,delay=0.2,seed=7"]. Keys:
    [crash], [io] (alias [io-error]), [delay], [max-delay], [seed];
    all optional (seed defaults to 0). *)

val to_string : t -> string
(** Canonical rendering, parseable by {!of_string}. *)

val roll : t -> key:string -> attempt:int -> action option
(** The executor-level decision for one attempt of one job. [attempt]
    is 1-based, so retries re-roll — a job hit by an injected crash is
    not doomed to crash forever. *)

val disk_fails : t -> op:string -> key:string -> bool
(** The cache-level decision for one disk operation ([op] is ["read"]
    or ["write"]) on one key. *)

val describe : action -> string
