type 'a t = {
  table : (string, 'a) Hashtbl.t;
  mu : Mutex.t;
  persist : string option;
  faults : Fault.t option;
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
}

let create ?persist ?faults () =
  (match persist with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  { table = Hashtbl.create 256;
    mu = Mutex.create ();
    persist;
    faults;
    hits = 0;
    misses = 0;
    corrupt = 0
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Keys are hex digests, but never trust them as path components. *)
let path_of dir key =
  Filename.concat dir
    (String.map (fun c -> if c = '/' || c = '.' || c = '\\' then '_' else c) key)

(* On-disk entry format: an 8-byte magic, the raw 16-byte MD5 digest of
   the payload, then the Marshal payload. The digest makes bit flips,
   truncation and foreign files all land in the same safe place — a
   deterministic miss — instead of reaching [Marshal.from_string], which
   is not robust against corrupt input. *)
let disk_magic = "TTCACHE1"

let injected t ~op ~key =
  match t.faults with
  | None -> false
  | Some f -> Fault.disk_fails f ~op ~key

let disk_read t key =
  match t.persist with
  | None -> None
  | Some dir -> (
      if injected t ~op:"read" ~key then None
      else
        let path = path_of dir key in
        match open_in_bin path with
        | exception Sys_error _ -> None
        | ic ->
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let corrupt () =
                  locked t (fun () -> t.corrupt <- t.corrupt + 1);
                  None
                in
                try
                  let len = in_channel_length ic in
                  let header = 8 + 16 in
                  if len < header then corrupt ()
                  else begin
                    let magic = really_input_string ic 8 in
                    let digest = really_input_string ic 16 in
                    let payload = really_input_string ic (len - header) in
                    if magic <> disk_magic || Digest.string payload <> digest then
                      corrupt ()
                    else Some (Marshal.from_string payload 0)
                  end
                with _ -> corrupt ()))

let disk_write t key v =
  match t.persist with
  | None -> ()
  | Some dir ->
      if injected t ~op:"write" ~key then ()
      else begin
        let path = path_of dir key in
        let tmp = path ^ ".tmp." ^ string_of_int (Domain.self () :> int) in
        try
          let payload = Marshal.to_string v [] in
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc disk_magic;
              output_string oc (Digest.string payload);
              output_string oc payload);
          Sys.rename tmp path
        with Sys_error _ -> ()
      end

let find t key =
  match locked t (fun () -> Hashtbl.find_opt t.table key) with
  | Some v -> Some v
  | None -> (
      match disk_read t key with
      | Some v ->
          locked t (fun () ->
              if not (Hashtbl.mem t.table key) then Hashtbl.add t.table key v);
          Some v
      | None -> None)

let find_or_compute t ~key f =
  match locked t (fun () -> Hashtbl.find_opt t.table key) with
  | Some v ->
      locked t (fun () -> t.hits <- t.hits + 1);
      (v, true)
  | None -> (
      match disk_read t key with
      | Some v ->
          locked t (fun () ->
              t.hits <- t.hits + 1;
              if not (Hashtbl.mem t.table key) then Hashtbl.add t.table key v);
          (v, true)
      | None ->
          locked t (fun () -> t.misses <- t.misses + 1);
          let v = f () in
          locked t (fun () ->
              if not (Hashtbl.mem t.table key) then Hashtbl.add t.table key v);
          disk_write t key v;
          (v, false))

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let corrupt t = locked t (fun () -> t.corrupt)
let length t = locked t (fun () -> Hashtbl.length t.table)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0;
      t.corrupt <- 0)
