type 'a entry = { v : 'a; mutable used : int }

type 'a t = {
  table : (string, 'a entry) Hashtbl.t;
  mu : Mutex.t;
  persist : string option;
  faults : Fault.t option;
  max_entries : int option;
  fetch : (string -> 'a option) option;
  mutable tick : int;  (* logical clock for LRU-ish eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable evictions : int;
}

let create ?persist ?faults ?max_entries ?fetch () =
  (match max_entries with
  | Some m when m < 1 -> invalid_arg "Cache.create: max_entries < 1"
  | _ -> ());
  (match persist with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  { table = Hashtbl.create 256;
    mu = Mutex.create ();
    persist;
    faults;
    max_entries;
    fetch;
    tick = 0;
    hits = 0;
    misses = 0;
    corrupt = 0;
    evictions = 0
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Under the lock. The "LRU-ish" policy: every touch stamps the entry
   with a logical tick; when the table is full, the entry with the
   smallest stamp is dropped. Eviction is an O(n) scan, but n is
   bounded by [max_entries] and inserts are already dominated by the
   solver computation they memoize. Persisted copies are untouched —
   an evicted entry that is still wanted comes back as a disk hit. *)
let touch t entry =
  t.tick <- t.tick + 1;
  entry.used <- t.tick

let evict_if_full t =
  match t.max_entries with
  | Some m when Hashtbl.length t.table >= m ->
      let victim =
        Hashtbl.fold
          (fun k e acc ->
            match acc with
            | Some (_, best) when best <= e.used -> acc
            | _ -> Some (k, e.used))
          t.table None
      in
      Option.iter
        (fun (k, _) ->
          Hashtbl.remove t.table k;
          t.evictions <- t.evictions + 1)
        victim
  | _ -> ()

let insert t key v =
  if not (Hashtbl.mem t.table key) then begin
    evict_if_full t;
    let entry = { v; used = 0 } in
    touch t entry;
    Hashtbl.add t.table key entry
  end

let lookup t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some entry ->
      touch t entry;
      Some entry.v

(* Keys are hex digests, but never trust them as path components. *)
let path_of dir key =
  Filename.concat dir
    (String.map (fun c -> if c = '/' || c = '.' || c = '\\' then '_' else c) key)

(* On-disk entry format: an 8-byte magic, the raw 16-byte MD5 digest of
   the payload, then the Marshal payload. The digest makes bit flips,
   truncation and foreign files all land in the same safe place — a
   deterministic miss — instead of reaching [Marshal.from_string], which
   is not robust against corrupt input. *)
let disk_magic = "TTCACHE1"

let injected t ~op ~key =
  match t.faults with
  | None -> false
  | Some f -> Fault.disk_fails f ~op ~key

let disk_read t key =
  match t.persist with
  | None -> None
  | Some dir -> (
      if injected t ~op:"read" ~key then None
      else
        let path = path_of dir key in
        match open_in_bin path with
        | exception Sys_error _ -> None
        | ic ->
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let corrupt () =
                  locked t (fun () -> t.corrupt <- t.corrupt + 1);
                  None
                in
                try
                  let len = in_channel_length ic in
                  let header = 8 + 16 in
                  if len < header then corrupt ()
                  else begin
                    let magic = really_input_string ic 8 in
                    let digest = really_input_string ic 16 in
                    let payload = really_input_string ic (len - header) in
                    if magic <> disk_magic || Digest.string payload <> digest then
                      corrupt ()
                    else Some (Marshal.from_string payload 0)
                  end
                with _ -> corrupt ()))

let disk_write t key v =
  match t.persist with
  | None -> ()
  | Some dir ->
      if injected t ~op:"write" ~key then ()
      else begin
        let path = path_of dir key in
        let tmp = path ^ ".tmp." ^ string_of_int (Domain.self () :> int) in
        try
          let payload = Marshal.to_string v [] in
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc disk_magic;
              output_string oc (Digest.string payload);
              output_string oc payload);
          Sys.rename tmp path
        with Sys_error _ -> ()
      end

let find t key =
  match locked t (fun () -> lookup t key) with
  | Some v -> Some v
  | None -> (
      match disk_read t key with
      | Some v ->
          locked t (fun () -> insert t key v);
          Some v
      | None -> None)

(* The third cache level: ask [fetch] (a peer, in the shard tier) for
   the value. Runs outside the lock — it is typically a network call —
   and never raises: a failing hook degrades to a local recompute. *)
let fetch_read t key =
  match t.fetch with
  | None -> None
  | Some f -> ( try f key with _ -> None)

let find_or_compute t ~key f =
  match locked t (fun () -> lookup t key) with
  | Some v ->
      locked t (fun () -> t.hits <- t.hits + 1);
      (v, true)
  | None -> (
      match disk_read t key with
      | Some v ->
          locked t (fun () ->
              t.hits <- t.hits + 1;
              insert t key v);
          (v, true)
      | None -> (
          match fetch_read t key with
          | Some v ->
              locked t (fun () ->
                  t.hits <- t.hits + 1;
                  insert t key v);
              disk_write t key v;
              (v, true)
          | None ->
              locked t (fun () -> t.misses <- t.misses + 1);
              let v = f () in
              locked t (fun () -> insert t key v);
              disk_write t key v;
              (v, false)))

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let corrupt t = locked t (fun () -> t.corrupt)
let evictions t = locked t (fun () -> t.evictions)
let length t = locked t (fun () -> Hashtbl.length t.table)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0;
      t.corrupt <- 0;
      t.evictions <- 0)
