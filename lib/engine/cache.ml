type 'a t = {
  table : (string, 'a) Hashtbl.t;
  mu : Mutex.t;
  persist : string option;
  mutable hits : int;
  mutable misses : int;
}

let create ?persist () =
  (match persist with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  { table = Hashtbl.create 256; mu = Mutex.create (); persist; hits = 0; misses = 0 }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Keys are hex digests, but never trust them as path components. *)
let path_of dir key =
  Filename.concat dir
    (String.map (fun c -> if c = '/' || c = '.' || c = '\\' then '_' else c) key)

let disk_read t key =
  match t.persist with
  | None -> None
  | Some dir -> (
      let path = path_of dir key in
      match open_in_bin path with
      | exception Sys_error _ -> None
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> try Some (Marshal.from_channel ic) with _ -> None))

let disk_write t key v =
  match t.persist with
  | None -> ()
  | Some dir -> (
      let path = path_of dir key in
      let tmp = path ^ ".tmp." ^ string_of_int (Domain.self () :> int) in
      try
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> Marshal.to_channel oc v []);
        Sys.rename tmp path
      with Sys_error _ -> ())

let find t key =
  match locked t (fun () -> Hashtbl.find_opt t.table key) with
  | Some v -> Some v
  | None -> (
      match disk_read t key with
      | Some v ->
          locked t (fun () ->
              if not (Hashtbl.mem t.table key) then Hashtbl.add t.table key v);
          Some v
      | None -> None)

let find_or_compute t ~key f =
  match locked t (fun () -> Hashtbl.find_opt t.table key) with
  | Some v ->
      locked t (fun () -> t.hits <- t.hits + 1);
      (v, true)
  | None -> (
      match disk_read t key with
      | Some v ->
          locked t (fun () ->
              t.hits <- t.hits + 1;
              if not (Hashtbl.mem t.table key) then Hashtbl.add t.table key v);
          (v, true)
      | None ->
          locked t (fun () -> t.misses <- t.misses + 1);
          let v = f () in
          locked t (fun () ->
              if not (Hashtbl.mem t.table key) then Hashtbl.add t.table key v);
          disk_write t key v;
          (v, false))

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let length t = locked t (fun () -> Hashtbl.length t.table)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)
