type policy = {
  retries : int;
  base_delay_s : float;
  max_delay_s : float;
  jitter : float;
  seed : int;
}

let none = { retries = 0; base_delay_s = 0.; max_delay_s = 0.; jitter = 0.; seed = 0 }

let create ?(retries = 3) ?(base_delay_s = 0.05) ?(max_delay_s = 1.0)
    ?(jitter = 0.5) ?(seed = 0) () =
  if retries < 0 then invalid_arg "Retry.create: negative retries";
  if base_delay_s < 0. || max_delay_s < 0. then
    invalid_arg "Retry.create: negative delay";
  if jitter < 0. || jitter > 1. then
    invalid_arg "Retry.create: jitter not in [0, 1]";
  { retries; base_delay_s; max_delay_s; jitter; seed }

type class_ = Retryable | Terminal

(* Invalid input deterministically fails again, so retrying it only
   burns the backoff budget; a cooperative timeout already consumed its
   full deadline. Everything else — a genuine crash, an injected fault —
   may be transient. *)
let classify : Job.error -> class_ = function
  | Job.Timed_out _ -> Terminal
  | Job.Crashed msg ->
      if
        String.length msg >= 16
        && String.sub msg 0 16 = "Invalid_argument"
      then Terminal
      else Retryable

let classify_exn : exn -> class_ = function
  | Fault.Injected _ -> Retryable
  | Invalid_argument _ -> Terminal
  | Tt_util.Cancel.Cancelled -> Terminal
  | _ -> Retryable

(* Capped exponential backoff with seeded jitter: delay k (0-based) is
   min(base * 2^k, max) scaled by a factor uniform in [1-jitter,
   1+jitter] drawn from an RNG keyed by (seed, key) — deterministic per
   job, decorrelated across jobs. *)
let delays policy ~key =
  if policy.retries = 0 then []
  else begin
    let h = Digest.string key in
    let v = ref 0 in
    String.iter (fun c -> v := ((!v * 31) + Char.code c) land max_int) h;
    let rng = Tt_util.Rng.create (policy.seed lxor !v) in
    List.init policy.retries (fun k ->
        let d =
          Float.min policy.max_delay_s
            (policy.base_delay_s *. Float.pow 2. (float_of_int k))
        in
        let u = Tt_util.Rng.float rng 1.0 in
        Float.min policy.max_delay_s
          (d *. (1. -. policy.jitter +. (2. *. policy.jitter *. u))))
  end

(* The longest prefix of [delays] whose cumulative sleep fits inside the
   remaining deadline budget. Sleeping past the deadline can never help:
   the attempt after the sleep would be refused anyway, so the caller
   should return a terminal deadline_exceeded instead of burning the
   budget asleep. *)
let delays_within policy ~key ~budget_s =
  if budget_s <= 0. then []
  else begin
    let rec take acc spent = function
      | [] -> List.rev acc
      | d :: rest ->
          if spent +. d > budget_s then List.rev acc
          else take (d :: acc) (spent +. d) rest
    in
    take [] 0. (delays policy ~key)
  end
