(** Per-job retry policy: outcome classification and a deterministic
    capped-exponential-backoff schedule.

    The {!Executor} re-runs a job after a {e retryable} failure — a
    genuine crash or an injected fault ({!Fault.Injected}) — sleeping
    the next delay of {!delays} between attempts. {e Terminal} failures
    (cooperative timeout, invalid input) are returned immediately:
    retrying a deterministic [Invalid_argument] can only reproduce it,
    and a timed-out job already consumed its full deadline.

    The schedule is a pure function of (policy, job id): chaos runs
    replay exactly, and two jobs with different ids decorrelate their
    backoff (no thundering herd on a shared resource). *)

type policy = {
  retries : int;  (** Additional attempts after the first (0 = off). *)
  base_delay_s : float;
  max_delay_s : float;  (** Cap on every delay, pre- and post-jitter. *)
  jitter : float;  (** Relative jitter amplitude in [0, 1]. *)
  seed : int;
}

val none : policy
(** No retries — the executor's default. *)

val create :
  ?retries:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?jitter:float ->
  ?seed:int ->
  unit ->
  policy
(** Defaults: 3 retries, 50 ms base, 1 s cap, 0.5 jitter, seed 0.
    @raise Invalid_argument on negative counts/delays or jitter outside
    [0, 1]. *)

type class_ = Retryable | Terminal

val classify : Job.error -> class_
(** [Timed_out] and [Crashed] with an [Invalid_argument] payload are
    terminal; every other crash is retryable. *)

val classify_exn : exn -> class_
(** Exception-level classification, applied by the executor before the
    exception is rendered into a {!Job.error}: {!Fault.Injected} is
    retryable, [Invalid_argument] and {!Tt_util.Cancel.Cancelled} are
    terminal, anything else retryable. *)

val delays : policy -> key:string -> float list
(** The full backoff schedule for a job (length [retries]): delay [k] is
    [min (base * 2^k) max] jittered by a factor in [1-jitter, 1+jitter]
    drawn from an RNG seeded by ([seed], [key]). Deterministic. *)

val delays_within : policy -> key:string -> budget_s:float -> float list
(** The longest prefix of [delays policy ~key] whose cumulative sleep
    stays within [budget_s] — a backoff that would land past the
    request's remaining deadline budget is dropped along with every
    later one, so the caller returns a terminal [deadline_exceeded]
    instead of sleeping through a budget it can no longer use. A
    non-positive budget yields the empty schedule. Deterministic: a
    prefix of {!delays}, so chaos replays are unchanged while the
    budget covers the whole schedule. *)
