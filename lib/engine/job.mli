(** Typed descriptions of one solver run over one tree.

    A job pairs a {!Tt_core.Tree.t} with a {!spec} saying which solver to
    run and with which parameters. Jobs are pure data — no closures — so
    every job has a deterministic {!id}: the digest of the tree's
    canonical serialization ({!Tt_core.Tree.to_string}) and the spec's
    canonical rendering. Two jobs with the same id denote the same
    computation, which is what makes the {!Cache} content-addressed and
    lets results persist across processes.

    The spec families cover the repo's solver collection:

    - {!spec.Min_memory} — one of the exact/heuristic MinMemory solvers
      ([MinMem], Liu's algorithm, best postorder);
    - {!spec.Min_io} — a MinIO eviction policy under a memory budget,
      along the MinMem-optimal traversal (the traversal is the shared
      preprocessing that the executor caches once per tree);
    - {!spec.Schedule} — the memory-constrained parallel list scheduler
      with [procs] workers and a budget relative to the sequential
      optimum. Task durations are derived deterministically from the
      tree weights ([work i = 1 + n_i / 8] = {!Tt_sched.Work.default});
    - {!spec.Par_schedule} — one scheduler of the [tt_sched] tier
      (greedy, memory-booking, or tree splitting), its schedule checked
      by the independent {!Tt_sched.Validate} before the outcome is
      reported;
    - {!spec.Pareto_sweep} — the full memory/makespan sweep of
      {!Tt_sched.Pareto} over all three schedulers;
    - {!spec.Approx_memory} — certified MinMemory bounds from the
      bounded-profile pass ({!Tt_core.Minmem_approx}), the near-linear
      tier for huge trees where the exact solvers are impractical. *)

type algo = Minmem | Liu | Postorder

type par_algo = Greedy | Booking | Split
(** The [tt_sched] scheduler families: greedy list scheduling
    ({!Tt_core.Parallel.list_schedule}), memory-booking activation-order
    scheduling ({!Tt_sched.Booking}), postorder-based tree splitting
    ({!Tt_sched.Split}). *)

type budget =
  | Fraction of float
      (** Position in the gap between the working-set floor
          [Tree.max_mem_req] (0.0) and the MinMem in-core optimum
          (1.0). *)
  | Words of int  (** Absolute budget in words. *)

type spec =
  | Min_memory of algo
  | Min_io of { policy : Tt_core.Minio.policy; budget : budget }
  | Schedule of { procs : int; mem_factor : float }
      (** Budget is [mem_factor ×] the MinMem in-core optimum. *)
  | Par_schedule of { algo : par_algo; procs : int; mem_factor : float }
      (** One [tt_sched] scheduler under the same budget convention as
          [Schedule]. [Booking] never deadlocks for
          [mem_factor >= 1.0]; [Split] ignores the budget and is
          reported infeasible when its peak overshoots it. *)
  | Pareto_sweep of { procs : int; steps : int }
      (** {!Tt_sched.Pareto.sweep} with [steps] budget points. *)
  | Approx_memory of { seg_cap : int; tol : float }
      (** {!Tt_core.Minmem_approx.run_tree} with the given initial
          segment cap and relative gap tolerance (the remaining
          refinement parameters keep their library defaults). *)

type t = {
  label : string;  (** Display only — not part of the job identity. *)
  tree : Tt_core.Tree.t;
  spec : spec;
}

val make : ?label:string -> Tt_core.Tree.t -> spec -> t
(** [label] defaults to {!spec_to_string}. *)

val spec_to_string : spec -> string
(** Canonical one-token rendering, e.g. ["min-memory:liu"],
    ["min-io:First Fit:frac=0.5"], ["schedule:procs=4:mem=1.5"],
    ["par-schedule:booking:procs=4:mem=1.5"],
    ["pareto:procs=4:steps=8"], ["minmem-approx:cap=8:tol=0.01"]. *)

val algo_name : algo -> string

val par_algo_name : par_algo -> string
(** ["greedy"], ["booking"], ["split"]. *)

val par_algo_of_string : string -> par_algo option
(** Inverse of {!par_algo_name}. *)

val tree_digest : Tt_core.Tree.t -> string
(** Hex digest of the tree's canonical serialization. *)

val id : t -> string
(** Content address: hex digest of tree + spec (label excluded). *)

(* ----------------------------------------------------------- outcomes *)

type outcome =
  | Memory of { peak : int; order : int array }
      (** MinMemory result: optimal/best peak and a traversal
          achieving it. *)
  | Io of { in_core : int; memory : int; io : int option }
      (** MinIO result: the MinMem in-core optimum the budget was
          derived from, the concrete budget in words, and the I/O
          volume ([None] when the instance is infeasible, i.e.
          [memory < max_mem_req]). *)
  | Sched of { memory : int; makespan : int option; peak : int option }
      (** Parallel schedule: budget in words, then makespan and peak
          memory, [None] when the greedy scheduler deadlocks. *)
  | Par_sched of {
      algo : string;  (** {!par_algo_name} of the scheduler that ran. *)
      memory : int;  (** Budget in words. *)
      makespan : int option;  (** [None] when infeasible at the budget. *)
      peak : int option;
          (** Measured peak; for [split] reported even when the
              schedule overshoots the budget. *)
    }
  | Pareto of { procs : int; steps : int; points : Tt_sched.Pareto.point list }
      (** The validated points of a {!Tt_sched.Pareto.sweep}. *)
  | Approx of {
      lower : int;  (** Certified lower bound on the optimal peak. *)
      upper : int;  (** Simulated peak of [order]. *)
      rounds : int;  (** Refinement rounds actually run. *)
      exact : bool;  (** [lower = upper = opt] provably. *)
      order : int array;  (** A valid traversal achieving [upper]. *)
    }
      (** Certified MinMemory bounds ({!Tt_core.Minmem_approx.bounds}),
          with [lower <= opt <= upper] guaranteed. *)

type error =
  | Timed_out of float  (** Wall seconds actually spent. *)
  | Crashed of string  (** Exception rendered by [Printexc]. *)

type result = (outcome, error) Stdlib.result

val compute :
  ?cancel:Tt_util.Cancel.t -> ?minmem:int * int array -> t -> outcome
(** Run the job directly (no cache, no isolation — the {!Executor} adds
    both). [minmem], when given, is a previously computed
    [(peak, order)] of {!Tt_core.Minmem.run} on the same tree; [Min_io]
    and [Schedule] jobs use it instead of recomputing. [cancel] is
    polled cooperatively inside the long-running solvers (the executor
    passes a deadline token to enforce its per-job timeout).
    @raise Tt_util.Cancel.Cancelled when [cancel] fires.
    @raise whatever the underlying solver raises. *)

val needs_minmem : t -> bool
(** Whether {!compute} would run [Minmem.run] as preprocessing — true
    for [Min_io], [Schedule] and [Par_schedule] jobs ([Par_schedule]
    reuses the order as the booking activation order). *)

val equal_outcome : outcome -> outcome -> bool
val equal_result : result -> result -> bool

val result_to_string : result -> string
(** Compact human-readable summary, e.g. ["peak=120"] or
    ["io=34 (budget 96)"]. *)

val outcome_fields : outcome -> (string * Telemetry.Json.t) list
(** Telemetry rendering of an outcome (traversal orders are digested,
    not inlined). *)

val result_fields : result -> (string * Telemetry.Json.t) list

val result_to_json : result -> Telemetry.Json.t
(** Lossless rendering for the {!Journal} — unlike {!result_fields},
    [Memory] orders are inlined in full so a resumed run reproduces the
    exact result. *)

val result_of_json : Telemetry.Json.t -> (result, string) Stdlib.result
(** Inverse of {!result_to_json}. *)

val result_digest_token : result -> string
(** The canonical digest token for one result: [Ok] is the
    {!result_to_json} line, errors are ["timeout"] / ["crash:<msg>"]
    (run-dependent wall measurements dropped). Because
    {!result_to_json} round-trips exactly through
    [Telemetry.Json.of_string], a token recomputed from a decoded wire
    response is byte-identical to the original. *)

val digest_of_results : (string * result) list -> string
(** Hex digest over [(job id, result)] pairs {e in order} — the format
    behind {!Executor.results_digest}, reusable client-side. *)

val value_digest_of_results : (string * result) list -> string
(** Order-insensitive variant: lines are sorted and deduplicated before
    digesting, so two runs that execute the same set of jobs in
    different orders (or with duplicates) compare equal. This is the
    digest the load generator checks against a [treetrav batch] run. *)
