(** The `treetrav batch` manifest: a line-based description of a job
    batch, resolved to {!Job.t}s.

    Grammar (one entry per line; [#] starts a comment, blank lines are
    ignored):

    {v
    <source> :: <job> [; <job>]*

    <source> ::= file PATH [ordering=ORD] [amalgamation=K]
               | gen KIND [size=N] [seed=N] [ordering=ORD] [amalgamation=K]
               | tree "<Tree.to_string form>"
    <job>    ::= minmem | liu | postorder
               | minio policy=POL budget=B
               | schedule procs=N mem=F
               | par-schedule [algo=A] procs=N [mem=F]
               | pareto procs=N [steps=K]
               | minmem-approx [cap=N] [tol=F]
    v}

    [ORD] is [natural], [rcm], [mindeg] or [nd] (default [mindeg]);
    [amalgamation] defaults to 4. [KIND] is any of `treetrav generate`'s
    families ([grid2d], [grid9], [grid3d], [banded], [random], [arrow],
    [powerlaw], [tridiagonal]); [size] defaults to 20, [seed] to 42.
    [POL] is [lsnf], [first-fit], [best-fit], [first-fill], [best-fill]
    or an integer K for Best-K (default [first-fit]). [B] is either
    [P%] — position P/100 in the gap between the working-set floor and
    the in-core optimum — or an absolute word count (default [50%]).
    [A] is a [tt_sched] scheduler: [greedy], [booking] (default) or
    [split]; [mem] is the budget as a multiple of the MinMem in-core
    optimum (default 1.5). [pareto] runs the full memory/makespan sweep
    with [steps] budget points (default 8). [minmem-approx] computes
    certified MinMemory bounds via {!Tt_core.Minmem_approx} with initial
    segment cap [cap >= 2] (default 8) and relative gap tolerance [tol]
    (default 0.01) — the near-linear tier for trees too large for the
    exact solvers.

    Example:

    {v
    # sweep two sources through the whole solver collection
    gen grid2d size=24 :: minmem; liu; postorder
    gen grid2d size=24 :: minio policy=first-fit budget=50%; minio policy=lsnf budget=50%
    file data/pores_1.mtx ordering=rcm :: minmem; schedule procs=4 mem=1.5
    v}

    Each matrix source is materialized once per line via the standard
    pipeline; the engine's cache then deduplicates identical solver
    work across lines (the two [grid2d] lines above share one tree
    digest, so their MinMem runs coincide). *)

val parse : string -> (Job.t list, string) Stdlib.result
(** Parse manifest text. On failure the error reports {e every}
    malformed line, one ["line N: message"] entry per line, joined by
    newlines — one fix round trip, not one per bad line. *)

val load : string -> (Job.t list, string) Stdlib.result
(** {!parse} the contents of a file. *)
