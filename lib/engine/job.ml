module T = Tt_core.Tree

type algo = Minmem | Liu | Postorder
type budget = Fraction of float | Words of int
type par_algo = Greedy | Booking | Split

type spec =
  | Min_memory of algo
  | Min_io of { policy : Tt_core.Minio.policy; budget : budget }
  | Schedule of { procs : int; mem_factor : float }
  | Par_schedule of { algo : par_algo; procs : int; mem_factor : float }
  | Pareto_sweep of { procs : int; steps : int }
  | Approx_memory of { seg_cap : int; tol : float }

type t = { label : string; tree : T.t; spec : spec }

let algo_name = function
  | Minmem -> "minmem"
  | Liu -> "liu"
  | Postorder -> "postorder"

let budget_to_string = function
  | Fraction x -> Printf.sprintf "frac=%g" x
  | Words w -> Printf.sprintf "words=%d" w

let par_algo_name = function
  | Greedy -> "greedy"
  | Booking -> "booking"
  | Split -> "split"

let par_algo_of_string = function
  | "greedy" -> Some Greedy
  | "booking" -> Some Booking
  | "split" -> Some Split
  | _ -> None

let spec_to_string = function
  | Min_memory a -> "min-memory:" ^ algo_name a
  | Min_io { policy; budget } ->
      Printf.sprintf "min-io:%s:%s" (Tt_core.Minio.policy_name policy)
        (budget_to_string budget)
  | Schedule { procs; mem_factor } ->
      Printf.sprintf "schedule:procs=%d:mem=%g" procs mem_factor
  | Par_schedule { algo; procs; mem_factor } ->
      Printf.sprintf "par-schedule:%s:procs=%d:mem=%g" (par_algo_name algo)
        procs mem_factor
  | Pareto_sweep { procs; steps } ->
      Printf.sprintf "pareto:procs=%d:steps=%d" procs steps
  | Approx_memory { seg_cap; tol } ->
      Printf.sprintf "minmem-approx:cap=%d:tol=%g" seg_cap tol

let make ?label tree spec =
  let label = match label with Some l -> l | None -> spec_to_string spec in
  { label; tree; spec }

let tree_digest tree = Digest.to_hex (Digest.string (T.to_string tree))

let id job =
  Digest.to_hex (Digest.string (T.to_string job.tree ^ "|" ^ spec_to_string job.spec))

(* ------------------------------------------------------------ outcomes *)

type outcome =
  | Memory of { peak : int; order : int array }
  | Io of { in_core : int; memory : int; io : int option }
  | Sched of { memory : int; makespan : int option; peak : int option }
  | Par_sched of {
      algo : string;
      memory : int;
      makespan : int option;
      peak : int option;
    }
  | Pareto of { procs : int; steps : int; points : Tt_sched.Pareto.point list }
  | Approx of {
      lower : int;
      upper : int;
      rounds : int;
      exact : bool;
      order : int array;
    }

type error = Timed_out of float | Crashed of string
type result = (outcome, error) Stdlib.result

let needs_minmem job =
  match job.spec with
  | Min_memory _ -> false
  | Min_io _ | Schedule _ | Par_schedule _ -> true
  (* the sweep derives its own budget ladder from scratch; the certified
     bounds exist precisely to avoid the exact solvers *)
  | Pareto_sweep _ | Approx_memory _ -> false

(* The bench's duration convention for the parallel extension: heavier
   execution files mean longer factorization of the front. The formula
   lives in [Tt_sched.Work] so every consumer shares it. *)
let work_of = Tt_sched.Work.default

let budget_words ~floor ~in_core = function
  | Words w -> w
  | Fraction x -> floor + int_of_float (x *. float_of_int (in_core - floor))

let compute ?(cancel = Tt_util.Cancel.never) ?minmem job =
  Tt_util.Cancel.check cancel;
  let minmem_run () =
    match minmem with
    | Some pre -> pre
    | None -> Tt_core.Minmem.run ~cancel job.tree
  in
  match job.spec with
  | Min_memory Minmem ->
      let peak, order = minmem_run () in
      Memory { peak; order }
  | Min_memory Liu ->
      let peak, order = Tt_core.Liu_exact.run job.tree in
      Memory { peak; order }
  | Min_memory Postorder ->
      let peak, order = Tt_core.Postorder_opt.run job.tree in
      Memory { peak; order }
  | Min_io { policy; budget } ->
      let in_core, order = minmem_run () in
      let floor = T.max_mem_req job.tree in
      let memory = budget_words ~floor ~in_core budget in
      let io = Tt_core.Minio.io_volume job.tree ~memory ~order policy in
      Io { in_core; memory; io }
  | Schedule { procs; mem_factor } ->
      let in_core, _ = minmem_run () in
      let memory = int_of_float (mem_factor *. float_of_int in_core) in
      let work = work_of job.tree in
      (match Tt_core.Parallel.list_schedule job.tree ~procs ~memory ~work with
      | Some s ->
          Sched
            { memory;
              makespan = Some s.Tt_core.Parallel.makespan;
              peak = Some s.Tt_core.Parallel.peak_memory
            }
      | None -> Sched { memory; makespan = None; peak = None })
  | Par_schedule { algo; procs; mem_factor } -> (
      let in_core, order = minmem_run () in
      let memory = int_of_float (mem_factor *. float_of_int in_core) in
      let work = work_of job.tree in
      let name = par_algo_name algo in
      let module P = Tt_core.Parallel in
      (* every served schedule passes the independent validator; a
         scheduler bug surfaces as a crashed job, never a wrong digest *)
      match algo with
      | Greedy -> (
          match P.list_schedule job.tree ~procs ~memory ~work with
          | Some s ->
              Tt_sched.Validate.check_exn job.tree ~memory ~work s;
              Par_sched
                { algo = name; memory; makespan = Some s.P.makespan;
                  peak = Some s.P.peak_memory }
          | None -> Par_sched { algo = name; memory; makespan = None; peak = None })
      | Booking -> (
          match P.booking_schedule ~order job.tree ~procs ~memory ~work with
          | Some s ->
              Tt_sched.Validate.check_exn ~activation:order job.tree ~memory
                ~work s;
              Par_sched
                { algo = name; memory; makespan = Some s.P.makespan;
                  peak = Some s.P.peak_memory }
          | None -> Par_sched { algo = name; memory; makespan = None; peak = None })
      | Split ->
          let s = Tt_sched.Split.run job.tree ~procs ~work in
          Tt_sched.Validate.check_exn job.tree
            ~memory:(max memory s.P.peak_memory) ~work s;
          (* splitting ignores the budget; it is infeasible when its
             peak overshoots, but the peak is still reported *)
          let makespan =
            if s.P.peak_memory <= memory then Some s.P.makespan else None
          in
          Par_sched
            { algo = name; memory; makespan; peak = Some s.P.peak_memory })
  | Pareto_sweep { procs; steps } ->
      let work = work_of job.tree in
      let points = Tt_sched.Pareto.sweep ~steps job.tree ~procs ~work in
      Pareto { procs; steps; points }
  | Approx_memory { seg_cap; tol } ->
      let b = Tt_core.Minmem_approx.run_tree ~seg_cap ~tol job.tree in
      Approx
        { lower = b.Tt_core.Minmem_approx.lower;
          upper = b.Tt_core.Minmem_approx.upper;
          rounds = b.Tt_core.Minmem_approx.rounds;
          exact = b.Tt_core.Minmem_approx.exact;
          order = b.Tt_core.Minmem_approx.order
        }

(* ------------------------------------------------------------ equality *)

let equal_outcome a b =
  match (a, b) with
  | Memory x, Memory y -> x.peak = y.peak && x.order = y.order
  | Io x, Io y -> x.in_core = y.in_core && x.memory = y.memory && x.io = y.io
  | Sched x, Sched y ->
      x.memory = y.memory && x.makespan = y.makespan && x.peak = y.peak
  | Par_sched x, Par_sched y ->
      x.algo = y.algo && x.memory = y.memory && x.makespan = y.makespan
      && x.peak = y.peak
  | Pareto x, Pareto y ->
      x.procs = y.procs && x.steps = y.steps && x.points = y.points
  | Approx x, Approx y ->
      x.lower = y.lower && x.upper = y.upper && x.rounds = y.rounds
      && x.exact = y.exact && x.order = y.order
  | _ -> false

let equal_result a b =
  match (a, b) with
  | Ok x, Ok y -> equal_outcome x y
  | Error (Timed_out _), Error (Timed_out _) -> true
  | Error (Crashed x), Error (Crashed y) -> x = y
  | _ -> false

(* ----------------------------------------------------------- rendering *)

let result_to_string = function
  | Ok (Memory { peak; _ }) -> Printf.sprintf "peak=%d" peak
  | Ok (Io { memory; io = Some io; _ }) -> Printf.sprintf "io=%d (budget %d)" io memory
  | Ok (Io { memory; io = None; _ }) -> Printf.sprintf "infeasible (budget %d)" memory
  | Ok (Sched { memory; makespan = Some m; _ }) ->
      Printf.sprintf "makespan=%d (budget %d)" m memory
  | Ok (Sched { memory; makespan = None; _ }) ->
      Printf.sprintf "deadlock (budget %d)" memory
  | Ok (Par_sched { algo; memory; makespan = Some m; peak }) ->
      Printf.sprintf "%s makespan=%d peak=%d (budget %d)" algo m
        (Option.value peak ~default:0) memory
  | Ok (Par_sched { algo; memory; makespan = None; _ }) ->
      Printf.sprintf "%s infeasible (budget %d)" algo memory
  | Ok (Pareto { points; _ }) ->
      Printf.sprintf "pareto %d points, %d on frontier, digest %s"
        (List.length points)
        (List.length (Tt_sched.Pareto.frontier points))
        (String.sub (Tt_sched.Pareto.digest points) 0 8)
  | Ok (Approx { upper; exact = true; _ }) ->
      Printf.sprintf "peak=%d (certified exact)" upper
  | Ok (Approx { lower; upper; _ }) ->
      let gap =
        if upper = 0 then 0.
        else 100. *. float_of_int (upper - lower) /. float_of_int upper
      in
      Printf.sprintf "peak in [%d, %d] (gap %.2f%%)" lower upper gap
  | Error (Timed_out s) -> Printf.sprintf "timed out after %.2fs" s
  | Error (Crashed msg) -> "crashed: " ^ msg

let order_digest order =
  Digest.to_hex
    (Digest.string (String.concat "," (List.map string_of_int (Array.to_list order))))

let outcome_fields outcome =
  let module J = Telemetry.Json in
  match outcome with
  | Memory { peak; order } ->
      [ ("kind", J.String "memory");
        ("peak", J.Int peak);
        ("order_digest", J.String (order_digest order))
      ]
  | Io { in_core; memory; io } ->
      [ ("kind", J.String "io");
        ("in_core", J.Int in_core);
        ("memory", J.Int memory);
        ("io", match io with Some v -> J.Int v | None -> J.Null)
      ]
  | Sched { memory; makespan; peak } ->
      [ ("kind", J.String "sched");
        ("memory", J.Int memory);
        ("makespan", match makespan with Some v -> J.Int v | None -> J.Null);
        ("peak", match peak with Some v -> J.Int v | None -> J.Null)
      ]
  | Par_sched { algo; memory; makespan; peak } ->
      [ ("kind", J.String "par-sched");
        ("algo", J.String algo);
        ("memory", J.Int memory);
        ("makespan", match makespan with Some v -> J.Int v | None -> J.Null);
        ("peak", match peak with Some v -> J.Int v | None -> J.Null)
      ]
  | Pareto { procs; steps; points } ->
      [ ("kind", J.String "pareto");
        ("procs", J.Int procs);
        ("steps", J.Int steps);
        ("points", J.Int (List.length points));
        ("digest", J.String (Tt_sched.Pareto.digest points))
      ]
  | Approx { lower; upper; rounds; exact; order } ->
      [ ("kind", J.String "approx");
        ("lower", J.Int lower);
        ("upper", J.Int upper);
        ("rounds", J.Int rounds);
        ("exact", J.Bool exact);
        ("order_digest", J.String (order_digest order))
      ]

let result_fields result =
  let module J = Telemetry.Json in
  match result with
  | Ok outcome -> ("ok", J.Bool true) :: outcome_fields outcome
  | Error (Timed_out s) ->
      [ ("ok", J.Bool false); ("error", J.String "timeout"); ("after_s", J.Float s) ]
  | Error (Crashed msg) ->
      [ ("ok", J.Bool false); ("error", J.String "crash"); ("message", J.String msg) ]

(* --------------------------------------------------- journal round trip *)

(* Unlike [result_fields] (telemetry, order digested), the journal needs
   the full traversal back, so [Memory] serializes its order inline. *)
let result_to_json result =
  let module J = Telemetry.Json in
  match result with
  | Ok (Memory { peak; order }) ->
      J.Obj
        [ ("ok", J.Bool true);
          ("kind", J.String "memory");
          ("peak", J.Int peak);
          ("order", J.List (Array.to_list (Array.map (fun i -> J.Int i) order)))
        ]
  | Ok (Io { in_core; memory; io }) ->
      J.Obj
        [ ("ok", J.Bool true);
          ("kind", J.String "io");
          ("in_core", J.Int in_core);
          ("memory", J.Int memory);
          ("io", match io with Some v -> J.Int v | None -> J.Null)
        ]
  | Ok (Sched { memory; makespan; peak }) ->
      J.Obj
        [ ("ok", J.Bool true);
          ("kind", J.String "sched");
          ("memory", J.Int memory);
          ("makespan", (match makespan with Some v -> J.Int v | None -> J.Null));
          ("peak", match peak with Some v -> J.Int v | None -> J.Null)
        ]
  | Ok (Par_sched { algo; memory; makespan; peak }) ->
      J.Obj
        [ ("ok", J.Bool true);
          ("kind", J.String "par-sched");
          ("algo", J.String algo);
          ("memory", J.Int memory);
          ("makespan", (match makespan with Some v -> J.Int v | None -> J.Null));
          ("peak", match peak with Some v -> J.Int v | None -> J.Null)
        ]
  | Ok (Pareto { procs; steps; points }) ->
      J.Obj
        [ ("ok", J.Bool true);
          ("kind", J.String "pareto");
          ("procs", J.Int procs);
          ("steps", J.Int steps);
          ("points",
           J.List
             (List.map
                (fun (p : Tt_sched.Pareto.point) ->
                  J.List
                    [ J.String p.algo; J.Int p.budget; J.Int p.makespan;
                      J.Int p.peak ])
                points))
        ]
  | Ok (Approx { lower; upper; rounds; exact; order }) ->
      J.Obj
        [ ("ok", J.Bool true);
          ("kind", J.String "approx");
          ("lower", J.Int lower);
          ("upper", J.Int upper);
          ("rounds", J.Int rounds);
          ("exact", J.Bool exact);
          ("order", J.List (Array.to_list (Array.map (fun i -> J.Int i) order)))
        ]
  | Error (Timed_out s) ->
      J.Obj
        [ ("ok", J.Bool false); ("error", J.String "timeout"); ("after_s", J.Float s) ]
  | Error (Crashed msg) ->
      J.Obj
        [ ("ok", J.Bool false); ("error", J.String "crash"); ("message", J.String msg) ]

let result_of_json json =
  let module J = Telemetry.Json in
  let int_field k =
    match J.member k json with
    | Some (J.Int v) -> Ok v
    | _ -> Error (Printf.sprintf "missing int field %S" k)
  in
  let opt_int_field k =
    match J.member k json with
    | Some (J.Int v) -> Ok (Some v)
    | Some J.Null -> Ok None
    | _ -> Error (Printf.sprintf "missing nullable int field %S" k)
  in
  let bool_field k =
    match J.member k json with
    | Some (J.Bool v) -> Ok v
    | _ -> Error (Printf.sprintf "missing bool field %S" k)
  in
  let order_field () =
    match J.member "order" json with
    | Some (J.List items) ->
        let rec ints acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | J.Int i :: rest -> ints (i :: acc) rest
          | _ -> Error "non-integer in order array"
        in
        ints [] items
    | _ -> Error "missing order array"
  in
  let ( let* ) = Result.bind in
  match J.member "ok" json with
  | Some (J.Bool true) -> (
      match J.member "kind" json with
      | Some (J.String "memory") ->
          let* peak = int_field "peak" in
          let* order = order_field () in
          Ok (Ok (Memory { peak; order }))
      | Some (J.String "approx") ->
          let* lower = int_field "lower" in
          let* upper = int_field "upper" in
          let* rounds = int_field "rounds" in
          let* exact = bool_field "exact" in
          let* order = order_field () in
          Ok (Ok (Approx { lower; upper; rounds; exact; order }))
      | Some (J.String "io") ->
          let* in_core = int_field "in_core" in
          let* memory = int_field "memory" in
          let* io = opt_int_field "io" in
          Ok (Ok (Io { in_core; memory; io }))
      | Some (J.String "sched") ->
          let* memory = int_field "memory" in
          let* makespan = opt_int_field "makespan" in
          let* peak = opt_int_field "peak" in
          Ok (Ok (Sched { memory; makespan; peak }))
      | Some (J.String "par-sched") ->
          let* algo =
            match J.member "algo" json with
            | Some (J.String a) -> Ok a
            | _ -> Error "missing algo field"
          in
          let* memory = int_field "memory" in
          let* makespan = opt_int_field "makespan" in
          let* peak = opt_int_field "peak" in
          Ok (Ok (Par_sched { algo; memory; makespan; peak }))
      | Some (J.String "pareto") ->
          let* procs = int_field "procs" in
          let* steps = int_field "steps" in
          let* points =
            match J.member "points" json with
            | Some (J.List items) ->
                let rec parse acc = function
                  | [] -> Ok (List.rev acc)
                  | J.List [ J.String algo; J.Int budget; J.Int makespan;
                             J.Int peak ]
                    :: rest ->
                      parse
                        ({ Tt_sched.Pareto.algo; budget; makespan; peak }
                        :: acc)
                        rest
                  | _ -> Error "malformed pareto point"
                in
                parse [] items
            | _ -> Error "missing points array"
          in
          Ok (Ok (Pareto { procs; steps; points }))
      | _ -> Error "missing outcome kind")
  | Some (J.Bool false) -> (
      match (J.member "error" json, J.member "after_s" json, J.member "message" json) with
      | Some (J.String "timeout"), Some (J.Float s), _ -> Ok (Error (Timed_out s))
      | Some (J.String "timeout"), Some (J.Int s), _ ->
          Ok (Error (Timed_out (float_of_int s)))
      | Some (J.String "crash"), _, Some (J.String msg) -> Ok (Error (Crashed msg))
      | _ -> Error "malformed error result")
  | _ -> Error "missing ok field"

(* ------------------------------------------------------ result digests *)

(* The canonical per-result digest token. Shared by
   [Executor.results_digest] (server side / batch CLI) and the wire
   protocol's client-side digests, so a digest computed from decoded
   responses is byte-identical to the one `treetrav batch` prints for
   the same jobs. [Ok] renders through [result_to_json] — which
   round-trips exactly through [Telemetry.Json.of_string] — while
   errors drop their run-dependent payloads (measured wall time). *)
let result_digest_token = function
  | Ok _ as ok -> Telemetry.Json.to_string (result_to_json ok)
  | Error (Timed_out _) -> "timeout"
  | Error (Crashed msg) -> "crash:" ^ msg

let digest_of_results pairs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (id, result) ->
      Buffer.add_string buf id;
      Buffer.add_char buf '=';
      Buffer.add_string buf (result_digest_token result);
      Buffer.add_char buf '\n')
    pairs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let value_digest_of_results pairs =
  let lines =
    List.sort_uniq compare
      (List.map (fun (id, r) -> id ^ "=" ^ result_digest_token r) pairs)
  in
  Digest.to_hex (Digest.string (String.concat "\n" lines ^ "\n"))
