module T = Tt_core.Tree

type algo = Minmem | Liu | Postorder
type budget = Fraction of float | Words of int

type spec =
  | Min_memory of algo
  | Min_io of { policy : Tt_core.Minio.policy; budget : budget }
  | Schedule of { procs : int; mem_factor : float }

type t = { label : string; tree : T.t; spec : spec }

let algo_name = function
  | Minmem -> "minmem"
  | Liu -> "liu"
  | Postorder -> "postorder"

let budget_to_string = function
  | Fraction x -> Printf.sprintf "frac=%g" x
  | Words w -> Printf.sprintf "words=%d" w

let spec_to_string = function
  | Min_memory a -> "min-memory:" ^ algo_name a
  | Min_io { policy; budget } ->
      Printf.sprintf "min-io:%s:%s" (Tt_core.Minio.policy_name policy)
        (budget_to_string budget)
  | Schedule { procs; mem_factor } ->
      Printf.sprintf "schedule:procs=%d:mem=%g" procs mem_factor

let make ?label tree spec =
  let label = match label with Some l -> l | None -> spec_to_string spec in
  { label; tree; spec }

let tree_digest tree = Digest.to_hex (Digest.string (T.to_string tree))

let id job =
  Digest.to_hex (Digest.string (T.to_string job.tree ^ "|" ^ spec_to_string job.spec))

(* ------------------------------------------------------------ outcomes *)

type outcome =
  | Memory of { peak : int; order : int array }
  | Io of { in_core : int; memory : int; io : int option }
  | Sched of { memory : int; makespan : int option; peak : int option }

type error = Timed_out of float | Crashed of string
type result = (outcome, error) Stdlib.result

let needs_minmem job =
  match job.spec with Min_memory _ -> false | Min_io _ | Schedule _ -> true

(* The bench's duration convention for the parallel extension: heavier
   execution files mean longer factorization of the front. *)
let work_of tree i = 1 + (tree.T.n.(i) / 8)

let budget_words ~floor ~in_core = function
  | Words w -> w
  | Fraction x -> floor + int_of_float (x *. float_of_int (in_core - floor))

let compute ?(cancel = Tt_util.Cancel.never) ?minmem job =
  Tt_util.Cancel.check cancel;
  let minmem_run () =
    match minmem with
    | Some pre -> pre
    | None -> Tt_core.Minmem.run ~cancel job.tree
  in
  match job.spec with
  | Min_memory Minmem ->
      let peak, order = minmem_run () in
      Memory { peak; order }
  | Min_memory Liu ->
      let peak, order = Tt_core.Liu_exact.run job.tree in
      Memory { peak; order }
  | Min_memory Postorder ->
      let peak, order = Tt_core.Postorder_opt.run job.tree in
      Memory { peak; order }
  | Min_io { policy; budget } ->
      let in_core, order = minmem_run () in
      let floor = T.max_mem_req job.tree in
      let memory = budget_words ~floor ~in_core budget in
      let io = Tt_core.Minio.io_volume job.tree ~memory ~order policy in
      Io { in_core; memory; io }
  | Schedule { procs; mem_factor } ->
      let in_core, _ = minmem_run () in
      let memory = int_of_float (mem_factor *. float_of_int in_core) in
      let work = work_of job.tree in
      (match Tt_core.Parallel.list_schedule job.tree ~procs ~memory ~work with
      | Some s ->
          Sched
            { memory;
              makespan = Some s.Tt_core.Parallel.makespan;
              peak = Some s.Tt_core.Parallel.peak_memory
            }
      | None -> Sched { memory; makespan = None; peak = None })

(* ------------------------------------------------------------ equality *)

let equal_outcome a b =
  match (a, b) with
  | Memory x, Memory y -> x.peak = y.peak && x.order = y.order
  | Io x, Io y -> x.in_core = y.in_core && x.memory = y.memory && x.io = y.io
  | Sched x, Sched y ->
      x.memory = y.memory && x.makespan = y.makespan && x.peak = y.peak
  | _ -> false

let equal_result a b =
  match (a, b) with
  | Ok x, Ok y -> equal_outcome x y
  | Error (Timed_out _), Error (Timed_out _) -> true
  | Error (Crashed x), Error (Crashed y) -> x = y
  | _ -> false

(* ----------------------------------------------------------- rendering *)

let result_to_string = function
  | Ok (Memory { peak; _ }) -> Printf.sprintf "peak=%d" peak
  | Ok (Io { memory; io = Some io; _ }) -> Printf.sprintf "io=%d (budget %d)" io memory
  | Ok (Io { memory; io = None; _ }) -> Printf.sprintf "infeasible (budget %d)" memory
  | Ok (Sched { memory; makespan = Some m; _ }) ->
      Printf.sprintf "makespan=%d (budget %d)" m memory
  | Ok (Sched { memory; makespan = None; _ }) ->
      Printf.sprintf "deadlock (budget %d)" memory
  | Error (Timed_out s) -> Printf.sprintf "timed out after %.2fs" s
  | Error (Crashed msg) -> "crashed: " ^ msg

let order_digest order =
  Digest.to_hex
    (Digest.string (String.concat "," (List.map string_of_int (Array.to_list order))))

let outcome_fields outcome =
  let module J = Telemetry.Json in
  match outcome with
  | Memory { peak; order } ->
      [ ("kind", J.String "memory");
        ("peak", J.Int peak);
        ("order_digest", J.String (order_digest order))
      ]
  | Io { in_core; memory; io } ->
      [ ("kind", J.String "io");
        ("in_core", J.Int in_core);
        ("memory", J.Int memory);
        ("io", match io with Some v -> J.Int v | None -> J.Null)
      ]
  | Sched { memory; makespan; peak } ->
      [ ("kind", J.String "sched");
        ("memory", J.Int memory);
        ("makespan", match makespan with Some v -> J.Int v | None -> J.Null);
        ("peak", match peak with Some v -> J.Int v | None -> J.Null)
      ]

let result_fields result =
  let module J = Telemetry.Json in
  match result with
  | Ok outcome -> ("ok", J.Bool true) :: outcome_fields outcome
  | Error (Timed_out s) ->
      [ ("ok", J.Bool false); ("error", J.String "timeout"); ("after_s", J.Float s) ]
  | Error (Crashed msg) ->
      [ ("ok", J.Bool false); ("error", J.String "crash"); ("message", J.String msg) ]

(* --------------------------------------------------- journal round trip *)

(* Unlike [result_fields] (telemetry, order digested), the journal needs
   the full traversal back, so [Memory] serializes its order inline. *)
let result_to_json result =
  let module J = Telemetry.Json in
  match result with
  | Ok (Memory { peak; order }) ->
      J.Obj
        [ ("ok", J.Bool true);
          ("kind", J.String "memory");
          ("peak", J.Int peak);
          ("order", J.List (Array.to_list (Array.map (fun i -> J.Int i) order)))
        ]
  | Ok (Io { in_core; memory; io }) ->
      J.Obj
        [ ("ok", J.Bool true);
          ("kind", J.String "io");
          ("in_core", J.Int in_core);
          ("memory", J.Int memory);
          ("io", match io with Some v -> J.Int v | None -> J.Null)
        ]
  | Ok (Sched { memory; makespan; peak }) ->
      J.Obj
        [ ("ok", J.Bool true);
          ("kind", J.String "sched");
          ("memory", J.Int memory);
          ("makespan", (match makespan with Some v -> J.Int v | None -> J.Null));
          ("peak", match peak with Some v -> J.Int v | None -> J.Null)
        ]
  | Error (Timed_out s) ->
      J.Obj
        [ ("ok", J.Bool false); ("error", J.String "timeout"); ("after_s", J.Float s) ]
  | Error (Crashed msg) ->
      J.Obj
        [ ("ok", J.Bool false); ("error", J.String "crash"); ("message", J.String msg) ]

let result_of_json json =
  let module J = Telemetry.Json in
  let int_field k =
    match J.member k json with
    | Some (J.Int v) -> Ok v
    | _ -> Error (Printf.sprintf "missing int field %S" k)
  in
  let opt_int_field k =
    match J.member k json with
    | Some (J.Int v) -> Ok (Some v)
    | Some J.Null -> Ok None
    | _ -> Error (Printf.sprintf "missing nullable int field %S" k)
  in
  let ( let* ) = Result.bind in
  match J.member "ok" json with
  | Some (J.Bool true) -> (
      match J.member "kind" json with
      | Some (J.String "memory") ->
          let* peak = int_field "peak" in
          let* order =
            match J.member "order" json with
            | Some (J.List items) ->
                let rec ints acc = function
                  | [] -> Ok (Array.of_list (List.rev acc))
                  | J.Int i :: rest -> ints (i :: acc) rest
                  | _ -> Error "non-integer in order array"
                in
                ints [] items
            | _ -> Error "missing order array"
          in
          Ok (Ok (Memory { peak; order }))
      | Some (J.String "io") ->
          let* in_core = int_field "in_core" in
          let* memory = int_field "memory" in
          let* io = opt_int_field "io" in
          Ok (Ok (Io { in_core; memory; io }))
      | Some (J.String "sched") ->
          let* memory = int_field "memory" in
          let* makespan = opt_int_field "makespan" in
          let* peak = opt_int_field "peak" in
          Ok (Ok (Sched { memory; makespan; peak }))
      | _ -> Error "missing outcome kind")
  | Some (J.Bool false) -> (
      match (J.member "error" json, J.member "after_s" json, J.member "message" json) with
      | Some (J.String "timeout"), Some (J.Float s), _ -> Ok (Error (Timed_out s))
      | Some (J.String "timeout"), Some (J.Int s), _ ->
          Ok (Error (Timed_out (float_of_int s)))
      | Some (J.String "crash"), _, Some (J.String msg) -> Ok (Error (Crashed msg))
      | _ -> Error "malformed error result")
  | _ -> Error "missing ok field"

(* ------------------------------------------------------ result digests *)

(* The canonical per-result digest token. Shared by
   [Executor.results_digest] (server side / batch CLI) and the wire
   protocol's client-side digests, so a digest computed from decoded
   responses is byte-identical to the one `treetrav batch` prints for
   the same jobs. [Ok] renders through [result_to_json] — which
   round-trips exactly through [Telemetry.Json.of_string] — while
   errors drop their run-dependent payloads (measured wall time). *)
let result_digest_token = function
  | Ok _ as ok -> Telemetry.Json.to_string (result_to_json ok)
  | Error (Timed_out _) -> "timeout"
  | Error (Crashed msg) -> "crash:" ^ msg

let digest_of_results pairs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (id, result) ->
      Buffer.add_string buf id;
      Buffer.add_char buf '=';
      Buffer.add_string buf (result_digest_token result);
      Buffer.add_char buf '\n')
    pairs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let value_digest_of_results pairs =
  let lines =
    List.sort_uniq compare
      (List.map (fun (id, r) -> id ^ "=" ^ result_digest_token r) pairs)
  in
  Digest.to_hex (Digest.string (String.concat "\n" lines ^ "\n"))
