(** JSON-lines event sink for the batch engine.

    Every call to {!emit} appends exactly one line to the sink: a JSON
    object with at least ["event"] (the event name) and ["ts"] (Unix
    time, seconds, float). Writes are serialized by a mutex so domains
    can emit concurrently; lines are flushed as they are written so a
    crashed run still leaves a readable log.

    The engine emits two event kinds (documented in DESIGN.md):

    - ["job"] — one per finished job: ["id"], ["label"], ["spec"],
      ["wall_s"], ["cache_hit"], ["domain"] (worker slot), ["ok"] and
      either the outcome fields or ["error"];
    - ["batch"] — one per {!Executor.run_batch}: ["jobs"], ["errors"],
      ["wall_s"], ["domains"], ["cache_hits"], ["cache_misses"]
      (deltas over the batch), ["busy_s"] (per-slot array) and
      ["utilization"] (mean busy/wall). *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Single-line rendering. Non-finite floats become [null] (JSON has
      no [inf]/[nan]); strings are escaped per RFC 8259. *)

  val of_string : string -> (t, string) result
  (** Parse one JSON document — the subset {!to_string} emits (which is
      what the {!Journal} needs to read back). Numbers parse to [Int]
      when integral, [Float] otherwise; [\u] escapes above [0xFF]
      degrade to ['?']. The error carries the offset of the failure. *)

  val member : string -> t -> t option
  (** [member key (Obj fields)] looks [key] up; [None] on other
      constructors. *)
end

type t

val to_file : string -> t
(** Open (truncating) [path] as a sink. *)

val append_file : string -> t
(** Like {!to_file} but appends, for accumulating across runs. *)

val to_channel : out_channel -> t
(** Sink on an existing channel; {!close} flushes but does not close
    it. *)

val emit : t -> event:string -> (string * Json.t) list -> unit
(** Append one event line. Thread- and domain-safe. *)

val close : t -> unit
(** Flush, and close the channel if the sink owns it. Idempotent. *)

val with_file : string -> (t -> 'a) -> 'a
(** [with_file path f] opens, runs [f], closes (also on exception). *)
