module J = Telemetry.Json

type t = { oc : out_channel; mutex : Mutex.t; mutable closed : bool }

let magic = "tt-engine"
let version = 1

let header_line ~corpus =
  J.to_string
    (J.Obj
       [ ("journal", J.String magic);
         ("version", J.Int version);
         ("corpus", J.String corpus)
       ])

let entry_line ~id ~label result =
  J.to_string
    (J.Obj
       [ ("id", J.String id);
         ("label", J.String label);
         ("result", Job.result_to_json result)
       ])

let parse_entry json =
  match (J.member "id" json, J.member "label" json, J.member "result" json) with
  | Some (J.String id), Some (J.String label), Some result_json -> (
      match Job.result_of_json result_json with
      | Ok result -> Some (id, label, result)
      | Error _ -> None)
  | _ -> None

(* A crash can leave a torn final line (the writer flushes per entry but
   the process may die mid-write). Recovery keeps every entry up to the
   first line that fails to parse and ignores the rest — those jobs are
   simply recomputed. Alongside the entries we return the byte offset of
   the end of the last valid line, so the caller can truncate the torn
   tail before appending (otherwise the first new record would be
   written onto the torn line and lost with it). *)
let read_entries path ~corpus =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match input_line ic with
      | exception End_of_file -> Error "journal is empty"
      | first -> (
          match J.of_string first with
          | Error e -> Error ("journal header unreadable: " ^ e)
          | Ok hdr -> (
              match
                (J.member "journal" hdr, J.member "version" hdr, J.member "corpus" hdr)
              with
              | Some (J.String m), Some (J.Int v), Some (J.String c)
                when m = magic && v = version ->
                  if c <> corpus then
                    Error
                      (Printf.sprintf
                         "journal was written for a different corpus (journal %s, \
                          current %s) — the manifest or bench parameters changed"
                         c corpus)
                  else begin
                    let completed = Hashtbl.create 64 in
                    let valid = ref (pos_in ic) in
                    let rec loop () =
                      match input_line ic with
                      | exception End_of_file -> ()
                      | line -> (
                          if String.trim line = "" then begin
                            valid := pos_in ic;
                            loop ()
                          end
                          else
                            match J.of_string line with
                            | Error _ -> () (* torn tail: stop here *)
                            | Ok json -> (
                                match parse_entry json with
                                | None -> ()
                                | Some (id, _label, result) ->
                                    Hashtbl.replace completed id result;
                                    valid := pos_in ic;
                                    loop ()))
                    in
                    loop ();
                    Ok (completed, !valid)
                  end
              | _ -> Error "not a tt-engine journal")))

let open_writer path ~fresh ~corpus =
  let flags =
    if fresh then [ Open_wronly; Open_creat; Open_trunc ]
    else [ Open_wronly; Open_creat; Open_append ]
  in
  let oc = open_out_gen flags 0o644 path in
  if fresh then begin
    output_string oc (header_line ~corpus);
    output_char oc '\n';
    flush oc
  end;
  { oc; mutex = Mutex.create (); closed = false }

let create path ~corpus = open_writer path ~fresh:true ~corpus

let load_or_create path ~corpus =
  if not (Sys.file_exists path) then
    Ok (open_writer path ~fresh:true ~corpus, Hashtbl.create 16)
  else
    match read_entries path ~corpus with
    | Error e -> Error e
    | Ok (completed, valid) ->
        (* drop any torn tail so appended records start on a fresh line *)
        (try
           if (Unix.stat path).Unix.st_size > valid then Unix.truncate path valid
         with Unix.Unix_error _ -> ());
        Ok (open_writer path ~fresh:false ~corpus, completed)

let record t ~id ~label result =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not t.closed then begin
        output_string t.oc (entry_line ~id ~label result);
        output_char t.oc '\n';
        flush t.oc
      end)

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        close_out_noerr t.oc
      end)
