(** Content-addressed result memoization.

    Keys are content addresses — typically {!Job.id} — so a hit is by
    construction the same computation. The store is a mutex-protected
    hash table shared by all executor domains, with an optional on-disk
    second level: with [persist:dir], every computed value is also
    written to [dir/<key>] (via [Marshal], atomically through a
    temporary file), and a memory miss first consults the directory.
    This is what lets repeated corpus sweeps across {e separate}
    process invocations skip recomputation.

    Concurrency contract: {!find_or_compute} looks the key up under the
    lock but runs the computation {e outside} it, so unrelated keys
    never serialize each other. Two domains racing on the same fresh
    key may both compute it; both results are identical (computations
    are pure functions of the key) and the second insert is a no-op.
    Counters: every {!find_or_compute} call increments exactly one of
    [hits]/[misses]; a disk-level hit counts as a hit.

    On-disk entries are framed as [magic ^ md5(payload) ^ payload]
    (magic ["TTCACHE1"]) and the digest is verified before the payload
    reaches [Marshal.from_string] — bit flips, truncation and foreign
    files are all detected and treated as a {e deterministic miss}
    (counted by {!corrupt}), then overwritten by the recomputed value.
    Still, only point [persist] at directories you own: the digest is an
    integrity check, not an authentication one, and [Marshal] is not
    safe against adversarial files.

    With [faults], {!Fault.disk_fails} is consulted before every disk
    read and write: a failing read is a miss, a failing write is
    skipped. Either way the cache stays semantically transparent — the
    value is recomputed, never wrong. *)

type 'a t

val create :
  ?persist:string ->
  ?faults:Fault.t ->
  ?max_entries:int ->
  ?fetch:(string -> 'a option) ->
  unit ->
  'a t
(** [persist] is a directory, created if missing. [faults] injects
    deterministic I/O failures at the disk level (chaos testing).

    [fetch] is a third lookup level behind memory and disk: on a miss at
    both, {!find_or_compute} asks [fetch key] before computing. The
    shard tier uses it for cache peering — asking the ring owner of
    [key] over the wire — so warm results migrate instead of being
    recomputed. A [Some] result counts as a hit and is inserted in
    memory (and persisted, if configured); [None] or an exception
    degrades to a local compute. {!find} never consults [fetch] — that
    is what keeps a peer's [peek] from cascading across the ring.

    [max_entries] bounds the {e in-memory} level: when an insert would
    exceed the bound, the least-recently-touched entry is dropped first
    (LRU-ish — a logical-tick stamp per touch, O(max_entries) scan per
    eviction) and {!evictions} is incremented. Persisted files are never
    evicted, so under [persist] an evicted entry degrades to a disk hit,
    not a recomputation. The default is unbounded, preserving batch
    behavior; a long-lived server passes a bound so its resident set
    cannot grow without limit.
    @raise Invalid_argument when [max_entries < 1]. *)

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a * bool
(** [(value, hit)]. On a miss the computation runs outside the lock and
    the value is inserted (and persisted, if configured). If the
    computation raises, nothing is inserted and the exception
    propagates (the miss is still counted). *)

val find : 'a t -> string -> 'a option
(** Lookup without computing; checks the disk level too, but never the
    [fetch] hook. Does not touch the counters. *)

val hits : 'a t -> int

val misses : 'a t -> int

val corrupt : 'a t -> int
(** Number of persisted entries rejected by the header/digest check
    since creation (or {!clear}). *)

val evictions : 'a t -> int
(** Number of in-memory entries dropped by the [max_entries] bound
    since creation (or {!clear}). Always 0 when unbounded. *)

val length : 'a t -> int
(** Number of in-memory entries. *)

val clear : 'a t -> unit
(** Drop the in-memory table and reset the counters. Persisted files
    are left alone. *)
