module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then
          (* %.17g round-trips but is noisy; %g loses precision on
             timings. 12 significant digits keeps microseconds exact. *)
          Buffer.add_string buf (Printf.sprintf "%.12g" f)
        else Buffer.add_string buf "null"
    | String s -> escape buf s
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            write buf v)
          l;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            write buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 128 in
    write buf v;
    Buffer.contents buf
end

type t = {
  oc : out_channel;
  owned : bool;  (* whether [close] should close [oc] *)
  mu : Mutex.t;
  mutable closed : bool;
}

let of_channel ~owned oc = { oc; owned; mu = Mutex.create (); closed = false }
let to_file path = of_channel ~owned:true (open_out path)

let append_file path =
  of_channel ~owned:true (open_out_gen [ Open_append; Open_creat ] 0o644 path)

let to_channel oc = of_channel ~owned:false oc

let emit t ~event fields =
  let line =
    Json.to_string
      (Json.Obj
         (("event", Json.String event)
         :: ("ts", Json.Float (Unix.gettimeofday ()))
         :: fields))
  in
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      if not t.closed then begin
        output_string t.oc line;
        output_char t.oc '\n';
        flush t.oc
      end)

let close t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        if t.owned then close_out t.oc else flush t.oc
      end)

let with_file path f =
  let t = to_file path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
