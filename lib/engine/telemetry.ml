module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then
          (* %.17g round-trips but is noisy; %g loses precision on
             timings. 12 significant digits keeps microseconds exact. *)
          Buffer.add_string buf (Printf.sprintf "%.12g" f)
        else Buffer.add_string buf "null"
    | String s -> escape buf s
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            write buf v)
          l;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            write buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 128 in
    write buf v;
    Buffer.contents buf

  (* Recursive-descent parser for the subset this module emits (which is
     all the journal ever needs to read back). *)
  exception Bad_json of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      let m = String.length word in
      if !pos + m <= n && String.sub s !pos m = word then begin
        pos := !pos + m;
        v
      end
      else fail ("expected " ^ word)
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v = int_of_string ("0x" ^ String.sub s !pos 4) in
      pos := !pos + 4;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "truncated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; incr pos
               | '\\' -> Buffer.add_char buf '\\'; incr pos
               | '/' -> Buffer.add_char buf '/'; incr pos
               | 'n' -> Buffer.add_char buf '\n'; incr pos
               | 'r' -> Buffer.add_char buf '\r'; incr pos
               | 't' -> Buffer.add_char buf '\t'; incr pos
               | 'b' -> Buffer.add_char buf '\b'; incr pos
               | 'f' -> Buffer.add_char buf '\012'; incr pos
               | 'u' ->
                   incr pos;
                   let v = hex4 () in
                   (* the emitter only writes \u for control chars; wider
                      code points degrade to '?' rather than UTF-8 *)
                   Buffer.add_char buf (if v < 256 then Char.chr v else '?')
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c -> Buffer.add_char buf c; incr pos; go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numchar s.[!pos] do incr pos done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail ("bad number " ^ tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin incr pos; List [] end
          else begin
            let items = ref [ parse_value () ] in
            skip_ws ();
            while peek () = Some ',' do
              incr pos;
              items := parse_value () :: !items;
              skip_ws ()
            done;
            expect ']';
            List (Stdlib.List.rev !items)
          end
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin incr pos; Obj [] end
          else begin
            let field () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              (k, v)
            in
            let fields = ref [ field () ] in
            skip_ws ();
            while peek () = Some ',' do
              incr pos;
              fields := field () :: !fields;
              skip_ws ()
            done;
            expect '}';
            Obj (Stdlib.List.rev !fields)
          end
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad_json msg -> Error msg

  let member key = function
    | Obj fields -> Stdlib.List.assoc_opt key fields
    | _ -> None
end

type t = {
  oc : out_channel;
  owned : bool;  (* whether [close] should close [oc] *)
  mu : Mutex.t;
  mutable closed : bool;
}

let of_channel ~owned oc = { oc; owned; mu = Mutex.create (); closed = false }
let to_file path = of_channel ~owned:true (open_out path)

let append_file path =
  of_channel ~owned:true (open_out_gen [ Open_append; Open_creat ] 0o644 path)

let to_channel oc = of_channel ~owned:false oc

let emit t ~event fields =
  let line =
    Json.to_string
      (Json.Obj
         (("event", Json.String event)
         :: ("ts", Json.Float (Unix.gettimeofday ()))
         :: fields))
  in
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      if not t.closed then begin
        output_string t.oc line;
        output_char t.oc '\n';
        flush t.oc
      end)

let close t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        if t.owned then close_out t.oc else flush t.oc
      end)

let with_file path f =
  let t = to_file path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
